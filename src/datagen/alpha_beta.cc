#include "datagen/alpha_beta.h"

#include <cassert>
#include <cmath>

namespace lpb {

Relation AlphaBetaRelation(const std::string& name, uint64_t m, double alpha,
                           double beta) {
  assert(alpha >= 0.0 && beta >= 0.0 && alpha + beta <= 1.0 + 1e-12);
  const uint64_t ma = static_cast<uint64_t>(
      std::llround(std::pow(static_cast<double>(m), alpha)));
  const uint64_t mb = static_cast<uint64_t>(
      std::llround(std::pow(static_cast<double>(m), beta)));

  Relation rel(name, {"X", "Y"});
  // Id ranges: hubs [0, ma), pair-values [ma, ma + 2*ma*mb), diagonal after.
  const Value pair_base = ma;
  const Value diag_base = ma + 2 * ma * mb;

  // { (i, (i,j)) }: X-hubs of degree mb; Y-side pairs of degree 1.
  for (uint64_t i = 0; i < ma; ++i) {
    for (uint64_t j = 0; j < mb; ++j) {
      rel.AddRow({i, pair_base + i * mb + j});
    }
  }
  // { ((i,j), i) }: Y-hubs of degree mb; X-side pairs of degree 1.
  for (uint64_t i = 0; i < ma; ++i) {
    for (uint64_t j = 0; j < mb; ++j) {
      rel.AddRow({pair_base + ma * mb + i * mb + j, i});
    }
  }
  // Diagonal singletons to pad the size to ~m.
  const uint64_t pad = (m > 2 * ma * mb) ? m - 2 * ma * mb : 0;
  for (uint64_t k = 0; k < pad; ++k) {
    rel.AddRow({diag_base + k, diag_base + k});
  }
  return rel;
}

Relation UniformDegreeRelation(const std::string& name, uint64_t num_right,
                               uint64_t degree) {
  Relation rel(name, {"X", "Y"});
  rel.Reserve(num_right * degree);
  Value next_x = num_right;  // X-ids disjoint from Y-ids
  for (uint64_t y = 0; y < num_right; ++y) {
    for (uint64_t j = 0; j < degree; ++j) {
      rel.AddRow({next_x++, y});
    }
  }
  return rel;
}

}  // namespace lpb
