// Degree-sequence realization: builds a bipartite relation whose left
// degree sequence deg(Y|X) equals a prescribed sequence (cf. the
// Gale-Ryser construction referenced in footnote 5). Used by property
// tests to fabricate instances with exactly-known ℓp-norms.
#ifndef LPB_DATAGEN_DEGREE_REALIZE_H_
#define LPB_DATAGEN_DEGREE_REALIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relation/relation.h"

namespace lpb {

enum class PartnerMode {
  // Each left node gets fresh right partners: deg(X|Y) = (1,1,...,1).
  kFresh,
  // Right partners are drawn round-robin from a pool of `pool_size` values;
  // left node i with degree d_i connects to pool ids i, i+1, ..., i+d_i-1
  // (mod pool). Every d_i must be <= pool_size.
  kSharedPool,
};

// Relation R(X, Y) where X-node i has exactly degrees[i] distinct Y
// partners. With kSharedPool, `pool_size` (default: max degree) controls
// the right-side fan-in.
Relation RealizeDegreeSequence(const std::string& name,
                               const std::vector<uint64_t>& degrees,
                               PartnerMode mode = PartnerMode::kFresh,
                               uint64_t pool_size = 0);

}  // namespace lpb

#endif  // LPB_DATAGEN_DEGREE_REALIZE_H_
