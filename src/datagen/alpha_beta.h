// (α,β)-relations (Def. C.1) and uniform-degree bipartite relations — the
// synthetic instances used throughout Appendix C to separate the bounds.
#ifndef LPB_DATAGEN_ALPHA_BETA_H_
#define LPB_DATAGEN_ALPHA_BETA_H_

#include <cstdint>
#include <string>

#include "relation/relation.h"

namespace lpb {

// Binary relation R(X,Y) with |R| ≈ M where BOTH deg(Y|X) and deg(X|Y) are
// (α,β)-sequences: M^α nodes of degree M^β plus ~M - 2M^{α+β} nodes of
// degree 1 (the paper's footnote-5 construction:
//   { (i, (i,j)) } ∪ { ((i,j), i) } ∪ { (k, k) } ).
// Requires α + β <= 1. Values are packed into disjoint id ranges.
Relation AlphaBetaRelation(const std::string& name, uint64_t m, double alpha,
                           double beta);

// Bipartite relation R(X,Y) with `num_right` Y-values each matched to
// `degree` fresh X-values: deg(X|Y) = (degree, ..., degree) and
// deg(Y|X) = (1, ..., 1). Used for the Appendix C.3 gap instances.
Relation UniformDegreeRelation(const std::string& name, uint64_t num_right,
                               uint64_t degree);

}  // namespace lpb

#endif  // LPB_DATAGEN_ALPHA_BETA_H_
