// Synthetic graph generation with heavy-tailed (power-law) degree
// distributions — the stand-in for the SNAP datasets of Appendix C.1
// (see DESIGN.md, "Substitutions").
#ifndef LPB_DATAGEN_GRAPH_GEN_H_
#define LPB_DATAGEN_GRAPH_GEN_H_

#include <cstdint>
#include <string>

#include "relation/relation.h"

namespace lpb {

struct GraphSpec {
  std::string name = "graph";
  uint64_t num_nodes = 1000;
  uint64_t num_edges = 5000;
  // Zipf exponent of the endpoint sampler; larger = more skew. SNAP social
  // graphs are roughly in the 0.6 - 1.1 range.
  double zipf_theta = 0.9;
  // Mirror every edge (u,v) as (v,u), like an undirected SNAP graph stored
  // as a directed edge relation.
  bool symmetric = true;
  bool allow_self_loops = false;
  uint64_t seed = 42;
};

// Edge relation E(src, dst) with distinct edges; endpoints are sampled from
// a Zipf distribution over node ids, so node degrees are power-law
// distributed. The edge count is met exactly when enough distinct pairs
// exist (the generator retries duplicates up to a cap).
Relation GeneratePowerLawGraph(const GraphSpec& spec);

// The seven SNAP stand-ins used by bench_triangle / bench_onejoin, sized
// and skewed to mimic (scaled-down versions of) the paper's datasets:
// ca-GrQc, ca-HepTh, facebook, soc-Epinions, soc-LiveJournal, soc-pokec,
// twitter.
std::vector<GraphSpec> SnapStandInSpecs();

}  // namespace lpb

#endif  // LPB_DATAGEN_GRAPH_GEN_H_
