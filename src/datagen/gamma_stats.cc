#include "datagen/gamma_stats.h"

#include "relation/degree_sequence.h"

namespace lpb {

std::vector<ConcreteStatistic> RandomSimpleGammaStats(Rng& rng, int n,
                                                      int count) {
  std::vector<ConcreteStatistic> stats;
  const double norms[] = {1.0, 2.0, 3.0, kInfNorm};
  for (int k = 0; k < count; ++k) {
    ConcreteStatistic s;
    VarSet v = 0;
    const int width = 1 + static_cast<int>(rng.Uniform(3));
    for (int t = 0; t < width; ++t) v |= VarBit(rng.Uniform(n));
    if (rng.Bernoulli(0.5)) {
      const int u = static_cast<int>(rng.Uniform(n));
      s.sigma = Normalize({VarBit(u), v & ~VarBit(u)});
      if (s.sigma.v == 0) s.sigma.v = VarBit((u + 1) % n);
      s.p = norms[rng.Uniform(4)];
    } else {
      s.sigma = {0, v};
      s.p = 1.0;
    }
    s.log_b = 1.0 + 7.0 * rng.NextDouble();
    stats.push_back(s);
  }
  // A covering cardinality so the bound is finite.
  ConcreteStatistic cover;
  cover.sigma = {0, FullSet(n)};
  cover.p = 1.0;
  cover.log_b = 9.0;
  stats.push_back(cover);
  return stats;
}

}  // namespace lpb
