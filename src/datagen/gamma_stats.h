// Random simple-statistics generator for the cutting-plane Γn workloads.
//
// One definition shared by the differential harness's n = 8 acceptance
// test (tests/test_simplex_differential.cc) and bench_throughput's
// CI-gated gamma_n8 pivot workload — the pivot-count baselines in
// bench/baseline_throughput.json are only meaningful while the bench
// measures exactly the LP population the harness validates, so the
// generator must not fork.
#ifndef LPB_DATAGEN_GAMMA_STATS_H_
#define LPB_DATAGEN_GAMMA_STATS_H_

#include <vector>

#include "stats/statistic.h"
#include "util/random.h"

namespace lpb {

// `count` cardinality-style statistics over random small variable sets
// plus simple conditionals deg(V|u) with p drawn from {1, 2, 3, ∞} — the
// advisor's statistics shapes — followed by one covering cardinality
// (log_b = 9) so the bound is finite.
std::vector<ConcreteStatistic> RandomSimpleGammaStats(Rng& rng, int n,
                                                      int count);

}  // namespace lpb

#endif  // LPB_DATAGEN_GAMMA_STATS_H_
