// Synthetic JOB-style workload (the stand-in for IMDB + the Join Order
// Benchmark used in Appendix C.2 / Figure 1 — see DESIGN.md,
// "Substitutions").
//
// A scaled-down IMDB-like snowflake: a `title` hub, fact tables
// (cast_info, movie_companies, movie_keyword, movie_info, movie_info_idx,
// movie_link, aka_title, complete_cast, person_info) with Zipf-skewed
// foreign keys into it, and primary-key dimension tables (name,
// company_name, keyword, info_type, kind_type, company_type, role_type,
// link_type, comp_cast_type). Thirty-three acyclic join queries of 4-14
// relations mirror JOB's topology: 1-3 skewed star joins on the movie id
// plus PK/FK lookups, occasionally chained through movie_link.
#ifndef LPB_DATAGEN_JOB_GEN_H_
#define LPB_DATAGEN_JOB_GEN_H_

#include <cstdint>
#include <vector>

#include "query/query.h"
#include "relation/catalog.h"

namespace lpb {

struct JobWorkloadOptions {
  // Scale factor on every table size (1.0 ≈ 30k movies, 120k cast_info).
  double scale = 1.0;
  // Zipf exponent for fact-table foreign keys into `title`.
  double movie_skew = 0.30;
  uint64_t seed = 2024;
};

struct JobWorkload {
  Catalog catalog;
  std::vector<Query> queries;  // 33 acyclic join queries
};

JobWorkload GenerateJobWorkload(const JobWorkloadOptions& options = {});

// The 33 query texts (Datalog syntax, parseable by ParseQuery); exposed for
// tests and documentation.
std::vector<std::string> JobQueryTexts();

}  // namespace lpb

#endif  // LPB_DATAGEN_JOB_GEN_H_
