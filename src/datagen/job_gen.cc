#include "datagen/job_gen.h"

#include <cassert>
#include <cmath>

#include "query/parser.h"
#include "util/random.h"
#include "util/zipf.h"

namespace lpb {
namespace {

Relation IdTable(const std::string& name, uint64_t n) {
  Relation rel(name, {"id"});
  rel.Reserve(n);
  for (uint64_t i = 0; i < n; ++i) rel.AddRow({i});
  return rel;
}

// A fact table whose columns are sampled independently from per-column
// Zipf distributions; rows are deduplicated (set semantics).
Relation FactTable(const std::string& name,
                   const std::vector<std::string>& attrs, uint64_t rows,
                   const std::vector<ZipfSampler>& samplers, Rng& rng) {
  Relation rel(name, attrs);
  rel.Reserve(rows);
  std::vector<Value> row(attrs.size());
  for (uint64_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < samplers.size(); ++c) {
      row[c] = samplers[c].Sample(rng);
    }
    rel.AddRow(row);
  }
  rel.Deduplicate();
  return rel;
}

}  // namespace

std::vector<std::string> JobQueryTexts() {
  return {
      /*q1*/ "cast_info(M,P,R), title(M,KT), name(P), role_type(R), kind_type(KT)",
      /*q2*/ "movie_companies(M,C,CT), title(M,KT), company_name(C), company_type(CT), kind_type(KT)",
      /*q3*/ "movie_keyword(M,K), title(M,KT), keyword(K), kind_type(KT)",
      /*q4*/ "movie_info(M,IT1), movie_info_idx(M,IT2), title(M,KT), info_type(IT1), info_type(IT2)",
      /*q5*/ "movie_companies(M,C,CT), movie_keyword(M,K), title(M,KT), company_name(C), keyword(K)",
      /*q6*/ "cast_info(M,P,R), movie_keyword(M,K), title(M,KT), keyword(K), name(P)",
      /*q7*/ "cast_info(M,P,R), person_info(P,PIT), info_type(PIT), name(P), title(M,KT), movie_link(M,M2,LT), link_type(LT), title(M2,KT2)",
      /*q8*/ "cast_info(M,P,R), movie_companies(M,C,CT), title(M,KT), name(P), company_name(C), role_type(R), company_type(CT)",
      /*q9*/ "cast_info(M,P,R), movie_companies(M,C,CT), movie_keyword(M,K), title(M,KT), name(P), company_name(C), keyword(K), kind_type(KT)",
      /*q10*/ "cast_info(M,P,R), complete_cast(M,SU,ST), comp_cast_type(SU), comp_cast_type(ST), title(M,KT), name(P), role_type(R)",
      /*q11*/ "movie_companies(M,C,CT), movie_link(M,M2,LT), title(M,KT), title(M2,KT2), link_type(LT), company_name(C), company_type(CT), kind_type(KT)",
      /*q12*/ "movie_companies(M,C,CT), movie_info(M,IT1), movie_info_idx(M,IT2), title(M,KT), company_name(C), info_type(IT1), info_type(IT2), kind_type(KT)",
      /*q13*/ "movie_companies(M,C,CT), movie_info(M,IT1), movie_info_idx(M,IT2), title(M,KT), company_name(C), info_type(IT1), info_type(IT2), kind_type(KT), company_type(CT)",
      /*q14*/ "movie_info(M,IT1), movie_info_idx(M,IT2), movie_keyword(M,K), title(M,KT), keyword(K), info_type(IT1), info_type(IT2), kind_type(KT)",
      /*q15*/ "movie_companies(M,C,CT), movie_info(M,IT1), movie_keyword(M,K), aka_title(M), title(M,KT), company_name(C), keyword(K), info_type(IT1), company_type(CT)",
      /*q16*/ "cast_info(M,P,R), movie_keyword(M,K), complete_cast(M,SU,ST), title(M,KT), name(P), keyword(K), comp_cast_type(SU), comp_cast_type(ST)",
      /*q17*/ "cast_info(M,P,R), movie_keyword(M,K), title(M,KT), name(P), keyword(K), role_type(R), kind_type(KT)",
      /*q18*/ "cast_info(M,P,R), movie_info_idx(M,IT2), title(M,KT), info_type(IT2), name(P), role_type(R), kind_type(KT)",
      /*q19*/ "cast_info(M,P,R), person_info(P,PIT), movie_companies(M,C,CT), title(M,KT), name(P), info_type(PIT), company_name(C), company_type(CT), role_type(R), kind_type(KT)",
      /*q20*/ "cast_info(M,P,R), complete_cast(M,SU,ST), movie_keyword(M,K), title(M,KT), comp_cast_type(SU), comp_cast_type(ST), keyword(K), name(P), role_type(R), kind_type(KT)",
      /*q21*/ "movie_companies(M,C,CT), movie_link(M,M2,LT), movie_info(M,IT1), title(M,KT), title(M2,KT2), link_type(LT), company_name(C), info_type(IT1), kind_type(KT)",
      /*q22*/ "movie_companies(M,C,CT), movie_info(M,IT1), movie_info_idx(M,IT2), movie_keyword(M,K), title(M,KT), company_name(C), company_type(CT), keyword(K), info_type(IT1), info_type(IT2), kind_type(KT)",
      /*q23*/ "cast_info(M,P,R), movie_info(M,IT1), movie_keyword(M,K), aka_title(M), title(M,KT), name(P), role_type(R), keyword(K), info_type(IT1), kind_type(KT), complete_cast(M,SU,ST)",
      /*q24*/ "cast_info(M,P,R), movie_companies(M,C,CT), movie_keyword(M,K), movie_info(M,IT1), title(M,KT), name(P), company_name(C), keyword(K), info_type(IT1), role_type(R), company_type(CT), kind_type(KT)",
      /*q25*/ "cast_info(M,P,R), person_info(P,PIT), movie_keyword(M,K), title(M,KT), name(P), info_type(PIT), keyword(K), role_type(R), kind_type(KT)",
      /*q26*/ "cast_info(M,P,R), person_info(P,PIT), movie_companies(M,C,CT), movie_keyword(M,K), title(M,KT), name(P), info_type(PIT), company_name(C), keyword(K), role_type(R), company_type(CT), kind_type(KT)",
      /*q27*/ "movie_companies(M,C,CT), movie_link(M,M2,LT), title(M,KT), title(M2,KT2), movie_keyword(M,K), movie_info(M,IT1), link_type(LT), company_name(C), keyword(K), info_type(IT1), kind_type(KT), kind_type(KT2)",
      /*q28*/ "cast_info(M,P,R), movie_companies(M,C,CT), movie_keyword(M,K), movie_info(M,IT1), complete_cast(M,SU,ST), title(M,KT), name(P), company_name(C), keyword(K), info_type(IT1), role_type(R), company_type(CT), kind_type(KT), comp_cast_type(SU)",
      /*q29*/ "cast_info(M,P,R), person_info(P,PIT), movie_link(M,M2,LT), title(M,KT), title(M2,KT2), name(P), info_type(PIT), link_type(LT), kind_type(KT), kind_type(KT2), role_type(R), movie_keyword(M,K), keyword(K)",
      /*q30*/ "cast_info(M,P,R), movie_info(M,IT1), movie_info_idx(M,IT2), complete_cast(M,SU,ST), title(M,KT), name(P), info_type(IT1), info_type(IT2), comp_cast_type(SU), comp_cast_type(ST), role_type(R), kind_type(KT)",
      /*q31*/ "movie_keyword(M,K), movie_companies(M,C,CT), title(M,KT), keyword(K), company_name(C), company_type(CT)",
      /*q32*/ "movie_link(M,M2,LT), title(M,KT), title(M2,KT2), link_type(LT), kind_type(KT), kind_type(KT2)",
      /*q33*/ "cast_info(M,P,R), person_info(P,PIT), movie_companies(M,C,CT), movie_keyword(M,K), movie_info(M,IT1), title(M,KT), name(P), info_type(PIT), info_type(IT1), company_name(C), keyword(K), role_type(R), company_type(CT), kind_type(KT)",
  };
}

JobWorkload GenerateJobWorkload(const JobWorkloadOptions& options) {
  JobWorkload wl;
  Rng rng(options.seed);
  const double sc = options.scale;
  auto sz = [&](double base) {
    return static_cast<uint64_t>(std::llround(base * sc));
  };

  const uint64_t movies = sz(30000), persons = sz(50000);
  const uint64_t companies = sz(15000), keywords = sz(20000);
  const uint64_t info_types = 80, kinds = 7, ctypes = 4, roles = 11,
                 ltypes = 18, cctypes = 4;
  const double ms = options.movie_skew;

  // Shared samplers so correlated popularity (hot movies are hot in every
  // fact table, like real IMDB) arises naturally.
  ZipfSampler z_movie(movies, ms), z_movie_lo(movies, ms * 0.8);
  ZipfSampler z_person(persons, 0.25), z_company(companies, 0.45);
  ZipfSampler z_keyword(keywords, 0.50), z_it(info_types, 0.70);
  ZipfSampler z_kind(kinds, 0.80), z_ct(ctypes, 0.80);
  ZipfSampler z_role(roles, 0.80), z_lt(ltypes, 0.60);
  ZipfSampler z_cct(cctypes, 0.50), z_m2(movies, 0.05);

  // Hub: title(id, kind_id) — one row per movie (id is a key).
  {
    Relation title("title", {"id", "kind_id"});
    title.Reserve(movies);
    for (uint64_t m = 0; m < movies; ++m) title.AddRow({m, z_kind.Sample(rng)});
    wl.catalog.Add(std::move(title));
  }

  wl.catalog.Add(FactTable("cast_info", {"movie_id", "person_id", "role_id"},
                           sz(120000), {z_movie, z_person, z_role}, rng));
  wl.catalog.Add(FactTable("movie_companies",
                           {"movie_id", "company_id", "company_type_id"},
                           sz(60000), {z_movie, z_company, z_ct}, rng));
  wl.catalog.Add(FactTable("movie_keyword", {"movie_id", "keyword_id"},
                           sz(80000), {z_movie, z_keyword}, rng));
  wl.catalog.Add(FactTable("movie_info", {"movie_id", "info_type_id"},
                           sz(80000), {z_movie_lo, z_it}, rng));
  wl.catalog.Add(FactTable("movie_info_idx", {"movie_id", "info_type_id"},
                           sz(40000), {z_movie_lo, z_it}, rng));
  wl.catalog.Add(FactTable("movie_link",
                           {"movie_id", "linked_movie_id", "link_type_id"},
                           sz(15000), {z_movie_lo, z_m2, z_lt}, rng));
  wl.catalog.Add(FactTable("aka_title", {"movie_id"}, sz(20000),
                           {z_movie_lo}, rng));
  wl.catalog.Add(FactTable("complete_cast",
                           {"movie_id", "subject_id", "status_id"}, sz(15000),
                           {z_movie_lo, z_cct, z_cct}, rng));
  wl.catalog.Add(FactTable("person_info", {"person_id", "info_type_id"},
                           sz(60000), {z_person, z_it}, rng));

  wl.catalog.Add(IdTable("name", persons));
  wl.catalog.Add(IdTable("company_name", companies));
  wl.catalog.Add(IdTable("keyword", keywords));
  wl.catalog.Add(IdTable("info_type", info_types));
  wl.catalog.Add(IdTable("kind_type", kinds));
  wl.catalog.Add(IdTable("company_type", ctypes));
  wl.catalog.Add(IdTable("role_type", roles));
  wl.catalog.Add(IdTable("link_type", ltypes));
  wl.catalog.Add(IdTable("comp_cast_type", cctypes));

  int qnum = 0;
  for (const std::string& text : JobQueryTexts()) {
    std::string error;
    std::optional<Query> q = ParseQuery(text, &error);
    assert(q.has_value() && "bad built-in JOB query");
    q->set_name("q" + std::to_string(++qnum));
    wl.queries.push_back(std::move(*q));
  }
  return wl;
}

}  // namespace lpb
