#include "datagen/degree_realize.h"

#include <algorithm>
#include <cassert>

namespace lpb {

Relation RealizeDegreeSequence(const std::string& name,
                               const std::vector<uint64_t>& degrees,
                               PartnerMode mode, uint64_t pool_size) {
  Relation rel(name, {"X", "Y"});
  const uint64_t n_left = degrees.size();
  if (mode == PartnerMode::kSharedPool && pool_size == 0) {
    pool_size = degrees.empty()
                    ? 1
                    : *std::max_element(degrees.begin(), degrees.end());
  }
  Value fresh = n_left + pool_size;  // fresh right ids beyond the pool range
  for (uint64_t i = 0; i < n_left; ++i) {
    const uint64_t d = degrees[i];
    if (mode == PartnerMode::kSharedPool) {
      assert(d <= pool_size);
      for (uint64_t j = 0; j < d; ++j) {
        rel.AddRow({i, n_left + (i + j) % pool_size});
      }
    } else {
      for (uint64_t j = 0; j < d; ++j) rel.AddRow({i, fresh++});
    }
  }
  return rel;
}

}  // namespace lpb
