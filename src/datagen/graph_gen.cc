#include "datagen/graph_gen.h"

#include <set>
#include <utility>

#include "util/random.h"
#include "util/zipf.h"

namespace lpb {

Relation GeneratePowerLawGraph(const GraphSpec& spec) {
  Relation edges(spec.name, {"src", "dst"});
  Rng rng(spec.seed);
  ZipfSampler zipf(spec.num_nodes, spec.zipf_theta);

  std::set<std::pair<Value, Value>> seen;
  const uint64_t max_attempts = spec.num_edges * 50 + 1000;
  uint64_t attempts = 0;
  while (seen.size() < spec.num_edges && attempts < max_attempts) {
    ++attempts;
    Value u = zipf.Sample(rng);
    Value v = zipf.Sample(rng);
    if (!spec.allow_self_loops && u == v) continue;
    if (spec.symmetric && u > v) std::swap(u, v);
    seen.insert({u, v});
  }
  edges.Reserve(spec.symmetric ? 2 * seen.size() : seen.size());
  for (const auto& [u, v] : seen) {
    edges.AddRow({u, v});
    if (spec.symmetric) edges.AddRow({v, u});
  }
  return edges;
}

std::vector<GraphSpec> SnapStandInSpecs() {
  // Node/edge counts follow the originals for the small datasets and are
  // scaled down ~20-200x for the large ones (soc-LiveJournal has 68M edges
  // in the original); the Zipf exponents are chosen so that the max-degree
  // to avg-degree ratios roughly match the published degree distributions.
  return {
      {"ca_GrQc", 5242, 14496, 0.65, true, false, 101},
      {"ca_HepTh", 9877, 25998, 0.60, true, false, 102},
      {"facebook", 4039, 88234, 0.55, true, false, 103},
      {"soc_Epinions", 60000, 300000, 0.85, true, false, 104},
      {"soc_LiveJournal", 120000, 420000, 0.80, true, false, 105},
      {"soc_pokec", 100000, 380000, 0.75, true, false, 106},
      {"twitter", 70000, 320000, 0.90, true, false, 107},
  };
}

}  // namespace lpb
