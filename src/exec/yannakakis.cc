#include "exec/yannakakis.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "query/join_tree.h"

namespace lpb {
namespace {

struct VecHash {
  size_t operator()(const std::vector<Value>& v) const {
    size_t h = 0xcbf29ce484222325ull;
    for (Value x : v) {
      h ^= std::hash<Value>()(x);
      h *= 0x100000001b3ull;
    }
    return h;
  }
};

// A node's distinct tuples over its distinct variables (ascending ids),
// with the equality selection for repeated variables applied.
struct Node {
  std::vector<int> vars;
  std::vector<std::vector<Value>> rows;
  std::vector<uint64_t> weight;  // extensions into this node's subtree
};

Node BuildNode(const Atom& atom, const Relation& rel) {
  Node node;
  for (int v : VarRange(atom.var_set())) node.vars.push_back(v);
  std::vector<int> first_col(node.vars.size());
  for (size_t k = 0; k < node.vars.size(); ++k) {
    for (size_t j = 0; j < atom.vars.size(); ++j) {
      if (atom.vars[j] == node.vars[k]) {
        first_col[k] = static_cast<int>(j);
        break;
      }
    }
  }
  std::vector<Value> tuple(node.vars.size());
  for (size_t r = 0; r < rel.NumRows(); ++r) {
    bool ok = true;
    for (size_t j = 0; j < atom.vars.size() && ok; ++j) {
      for (size_t j2 = j + 1; j2 < atom.vars.size(); ++j2) {
        if (atom.vars[j] == atom.vars[j2] &&
            rel.At(r, static_cast<int>(j)) !=
                rel.At(r, static_cast<int>(j2))) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) continue;
    for (size_t k = 0; k < node.vars.size(); ++k) {
      tuple[k] = rel.At(r, first_col[k]);
    }
    node.rows.push_back(tuple);
  }
  std::sort(node.rows.begin(), node.rows.end());
  node.rows.erase(std::unique(node.rows.begin(), node.rows.end()),
                  node.rows.end());
  node.weight.assign(node.rows.size(), 1);
  return node;
}

// Positions in `vars` of the variables shared with `other_set`.
std::vector<int> SharedPositions(const std::vector<int>& vars,
                                 VarSet other_set) {
  std::vector<int> pos;
  for (size_t k = 0; k < vars.size(); ++k) {
    if (Contains(other_set, vars[k])) pos.push_back(static_cast<int>(k));
  }
  return pos;
}

}  // namespace

std::optional<uint64_t> CountAcyclic(const Query& query,
                                     const Catalog& catalog) {
  std::optional<JoinTree> tree = BuildJoinTree(query);
  if (!tree.has_value()) return std::nullopt;

  const int m = query.num_atoms();
  std::vector<Node> nodes;
  nodes.reserve(m);
  for (int i = 0; i < m; ++i) {
    nodes.push_back(BuildNode(query.atom(i), catalog.Get(query.atom(i).relation)));
  }

  // Bottom-up: fold each child's keyed weight sums into its parent.
  for (int i : tree->bottom_up) {
    if (tree->IsRoot(i)) continue;
    const int p = tree->parent[i];
    Node& child = nodes[i];
    Node& par = nodes[p];
    const VarSet par_set = query.atom(p).var_set();
    const VarSet child_set = query.atom(i).var_set();
    const std::vector<int> child_key = SharedPositions(child.vars, par_set);
    const std::vector<int> par_key = SharedPositions(par.vars, child_set);

    std::unordered_map<std::vector<Value>, uint64_t, VecHash> sums;
    std::vector<Value> key(child_key.size());
    for (size_t r = 0; r < child.rows.size(); ++r) {
      if (child.weight[r] == 0) continue;
      for (size_t k = 0; k < child_key.size(); ++k) {
        key[k] = child.rows[r][child_key[k]];
      }
      sums[key] += child.weight[r];
    }
    key.resize(par_key.size());
    for (size_t r = 0; r < par.rows.size(); ++r) {
      for (size_t k = 0; k < par_key.size(); ++k) {
        key[k] = par.rows[r][par_key[k]];
      }
      auto it = sums.find(key);
      par.weight[r] = (it == sums.end()) ? 0 : par.weight[r] * it->second;
    }
  }

  // Forest: the total is the product of per-root sums (disconnected parts
  // multiply).
  uint64_t total = 1;
  for (int i = 0; i < m; ++i) {
    if (!tree->IsRoot(i)) continue;
    uint64_t root_sum = 0;
    for (uint64_t w : nodes[i].weight) root_sum += w;
    total *= root_sum;
  }
  return total;
}

}  // namespace lpb
