// Generic worst-case-optimal join (Ngo-Porat-Ré-Rudra style) over sorted
// in-memory atom indexes.
//
// Evaluates a full conjunctive query variable-by-variable: at each variable
// the candidate values are the intersection of the matching values across
// all atoms containing it, enumerated from the atom with the currently
// smallest residual range and probed into the others by binary search.
// This is the evaluation substrate for true cardinalities in the
// experiments and the black-box evaluator inside the Sec 2.2 partitioning
// algorithm (our PANDA stand-in; see DESIGN.md).
#ifndef LPB_EXEC_GENERIC_JOIN_H_
#define LPB_EXEC_GENERIC_JOIN_H_

#include <cstdint>
#include <vector>

#include "query/query.h"
#include "relation/catalog.h"
#include "relation/relation.h"

namespace lpb {

struct JoinOptions {
  // Global variable order; empty selects a connectivity-aware greedy order
  // (most-covered variable first, preferring variables adjacent to already
  // ordered ones).
  std::vector<int> var_order;
};

// Number of output tuples of Q(D). Atoms with repeated variables (e.g.
// R(X,X)) apply the implied equality selection.
uint64_t CountJoin(const Query& query, const Catalog& catalog,
                   const JoinOptions& options = {});

// Materializes Q(D) as a relation whose columns follow the query's
// variable ids (attribute i = query.var_name(i)).
Relation MaterializeJoin(const Query& query, const Catalog& catalog,
                         const JoinOptions& options = {});

// The default variable order used when JoinOptions::var_order is empty.
std::vector<int> DefaultVariableOrder(const Query& query);

}  // namespace lpb

#endif  // LPB_EXEC_GENERIC_JOIN_H_
