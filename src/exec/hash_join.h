// Pairwise left-deep hash join — the baseline evaluator.
//
// Joins the query's atoms in the given (or textual) order, materializing
// every intermediate result. Used to cross-check the generic join and as
// the "traditional plan" side of the evaluation benchmarks: on skewed
// inputs its intermediate results blow up exactly where the paper's
// ℓp-bounds predict.
#ifndef LPB_EXEC_HASH_JOIN_H_
#define LPB_EXEC_HASH_JOIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/query.h"
#include "relation/catalog.h"
#include "relation/relation.h"

namespace lpb {

struct HashJoinStats {
  uint64_t output_count = 0;
  // Size of each intermediate (after joining atoms 0..i).
  std::vector<uint64_t> intermediate_sizes;
  // False when the query/order could not be executed (empty query, or an
  // atom_order whose length, range, or multiplicity doesn't match the
  // query); `error` says why and the counts above are empty.
  bool ok = true;
  std::string error;
};

// Evaluates the query with pairwise hash joins in atom order (or
// `atom_order` if non-empty). Returns the output count and intermediate
// sizes. Repeated variables inside an atom apply equality selections.
// A malformed `atom_order` (wrong length, out-of-range index, duplicate
// index) or an atomless query yields ok == false with empty stats instead
// of undefined execution.
HashJoinStats CountByHashJoin(const Query& query, const Catalog& catalog,
                              const std::vector<int>& atom_order = {});

}  // namespace lpb

#endif  // LPB_EXEC_HASH_JOIN_H_
