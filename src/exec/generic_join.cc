#include "exec/generic_join.h"

#include <algorithm>
#include <cassert>

namespace lpb {
namespace {

// An atom's data, projected to its distinct variables (in global join
// order), equality-selected for repeated variables, deduplicated and
// sorted lexicographically.
struct AtomIndex {
  std::vector<int> vars;                 // global var ids, in join order
  std::vector<std::vector<Value>> rows;  // sorted row-major tuples
};

AtomIndex BuildAtomIndex(const Atom& atom, const Relation& rel,
                         const std::vector<int>& order_pos) {
  AtomIndex index;
  // Distinct variables of the atom, sorted by global join order.
  for (int v : VarRange(atom.var_set())) index.vars.push_back(v);
  std::sort(index.vars.begin(), index.vars.end(),
            [&](int a, int b) { return order_pos[a] < order_pos[b]; });

  // First relation column per variable, plus equality checks for repeats.
  std::vector<int> first_col(index.vars.size());
  for (size_t k = 0; k < index.vars.size(); ++k) {
    for (size_t j = 0; j < atom.vars.size(); ++j) {
      if (atom.vars[j] == index.vars[k]) {
        first_col[k] = static_cast<int>(j);
        break;
      }
    }
  }

  index.rows.reserve(rel.NumRows());
  std::vector<Value> tuple(index.vars.size());
  for (size_t r = 0; r < rel.NumRows(); ++r) {
    bool ok = true;
    // Repeated variables (R(X,X)) imply an equality selection.
    for (size_t j = 0; j < atom.vars.size() && ok; ++j) {
      for (size_t j2 = j + 1; j2 < atom.vars.size(); ++j2) {
        if (atom.vars[j] == atom.vars[j2] &&
            rel.At(r, static_cast<int>(j)) !=
                rel.At(r, static_cast<int>(j2))) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) continue;
    for (size_t k = 0; k < index.vars.size(); ++k) {
      tuple[k] = rel.At(r, first_col[k]);
    }
    index.rows.push_back(tuple);
  }
  std::sort(index.rows.begin(), index.rows.end());
  index.rows.erase(std::unique(index.rows.begin(), index.rows.end()),
                   index.rows.end());
  return index;
}

struct AtomState {
  size_t lo = 0;
  size_t hi = 0;
  int depth = 0;  // number of this atom's variables already bound
};

// Subrange of [lo, hi) where column `depth` equals `val` (rows in the range
// share their first `depth` components, so that column is sorted).
std::pair<size_t, size_t> EqualRange(const AtomIndex& index, size_t lo,
                                     size_t hi, int depth, Value val) {
  auto begin = index.rows.begin();
  auto first = std::partition_point(
      begin + lo, begin + hi,
      [&](const std::vector<Value>& row) { return row[depth] < val; });
  auto last = std::partition_point(
      first, begin + hi,
      [&](const std::vector<Value>& row) { return row[depth] <= val; });
  return {static_cast<size_t>(first - begin),
          static_cast<size_t>(last - begin)};
}

class Joiner {
 public:
  Joiner(const Query& query, const Catalog& catalog,
         const JoinOptions& options, Relation* output)
      : output_(output) {
    order_ = options.var_order.empty() ? DefaultVariableOrder(query)
                                       : options.var_order;
    assert(static_cast<int>(order_.size()) == query.num_vars());
    std::vector<int> order_pos(query.num_vars());
    for (size_t i = 0; i < order_.size(); ++i) order_pos[order_[i]] = i;

    for (const Atom& atom : query.atoms()) {
      indexes_.push_back(
          BuildAtomIndex(atom, catalog.Get(atom.relation), order_pos));
    }
    states_.resize(indexes_.size());
    for (size_t a = 0; a < indexes_.size(); ++a) {
      states_[a] = {0, indexes_[a].rows.size(), 0};
    }
    if (output_ != nullptr) assignment_.resize(query.num_vars());
  }

  uint64_t Run() {
    count_ = 0;
    Recurse(0, states_);
    return count_;
  }

 private:
  void Recurse(size_t level, const std::vector<AtomState>& states) {
    if (level == order_.size()) {
      ++count_;
      if (output_ != nullptr) output_->AddRow(assignment_);
      return;
    }
    const int var = order_[level];

    // Atoms whose next unbound variable is `var`.
    std::vector<int> active;
    int seed = -1;
    for (size_t a = 0; a < indexes_.size(); ++a) {
      const AtomIndex& idx = indexes_[a];
      const AtomState& st = states[a];
      if (st.depth < static_cast<int>(idx.vars.size()) &&
          idx.vars[st.depth] == var) {
        active.push_back(static_cast<int>(a));
        if (seed < 0 || st.hi - st.lo < states[seed].hi - states[seed].lo) {
          seed = static_cast<int>(a);
        }
      }
    }
    assert(seed >= 0 && "full CQ: every variable occurs in some atom");

    // Fast leaf: at the last level with no materialization, the number of
    // outputs is the intersection size — no per-value recursion needed.
    const bool leaf = (level + 1 == order_.size()) && output_ == nullptr;

    const AtomIndex& seed_idx = indexes_[seed];
    std::vector<AtomState> next = states;
    size_t pos = states[seed].lo;
    while (pos < states[seed].hi) {
      const Value val = seed_idx.rows[pos][states[seed].depth];
      auto [s_lo, s_hi] =
          EqualRange(seed_idx, pos, states[seed].hi, states[seed].depth, val);
      pos = s_hi;

      bool present = true;
      for (int a : active) {
        if (a == seed) {
          next[a] = {s_lo, s_hi, states[a].depth + 1};
          continue;
        }
        auto [lo, hi] = EqualRange(indexes_[a], states[a].lo, states[a].hi,
                                   states[a].depth, val);
        if (lo == hi) {
          present = false;
          break;
        }
        next[a] = {lo, hi, states[a].depth + 1};
      }
      if (!present) continue;
      if (leaf) {
        ++count_;
        continue;
      }
      if (output_ != nullptr) assignment_[var] = val;
      Recurse(level + 1, next);
      // Restore the untouched states for the next candidate value.
      for (int a : active) next[a] = states[a];
    }
  }

  std::vector<int> order_;
  std::vector<AtomIndex> indexes_;
  std::vector<AtomState> states_;
  std::vector<Value> assignment_;
  Relation* output_;
  uint64_t count_ = 0;
};

}  // namespace

std::vector<int> DefaultVariableOrder(const Query& query) {
  const int n = query.num_vars();
  std::vector<int> coverage(n, 0);
  for (const Atom& atom : query.atoms()) {
    for (int v : VarRange(atom.var_set())) ++coverage[v];
  }
  std::vector<int> order;
  VarSet chosen = 0;
  while (static_cast<int>(order.size()) < n) {
    int best = -1;
    bool best_adjacent = false;
    for (int v = 0; v < n; ++v) {
      if (Contains(chosen, v)) continue;
      bool adjacent = false;
      for (const Atom& atom : query.atoms()) {
        const VarSet s = atom.var_set();
        if (Contains(s, v) && Intersects(s, chosen)) {
          adjacent = true;
          break;
        }
      }
      if (best < 0 ||
          (adjacent && !best_adjacent) ||
          (adjacent == best_adjacent && coverage[v] > coverage[best])) {
        best = v;
        best_adjacent = adjacent;
      }
    }
    order.push_back(best);
    chosen |= VarBit(best);
  }
  return order;
}

uint64_t CountJoin(const Query& query, const Catalog& catalog,
                   const JoinOptions& options) {
  Joiner joiner(query, catalog, options, nullptr);
  return joiner.Run();
}

Relation MaterializeJoin(const Query& query, const Catalog& catalog,
                         const JoinOptions& options) {
  Relation out(query.name().empty() ? "Q" : query.name(), query.var_names());
  Joiner joiner(query, catalog, options, &out);
  joiner.Run();
  return out;
}

}  // namespace lpb
