// The degree-partitioning evaluation algorithm of Sec 2.2 (Lemma 2.5 and
// Theorem 2.6).
//
// A relation satisfying an ℓp statistic ||deg_R(V|U)||_p <= B is split into
// O(2^p log N) parts that each *strongly* satisfy it — i.e. admit an ℓ∞
// bound d on the degree and an ℓ1 bound B^p/d^p on |Π_U| — turning the
// query into a disjoint union of subqueries over part combinations, each
// evaluated with the worst-case-optimal join (our PANDA black box).
#ifndef LPB_EXEC_PARTITION_H_
#define LPB_EXEC_PARTITION_H_

#include <cstdint>
#include <vector>

#include "query/query.h"
#include "relation/catalog.h"
#include "relation/relation.h"

namespace lpb {

// Strong satisfaction check (Eq. (22)): true iff
//   log2 |Π_U(R)| + p · log2 ||deg_R(V|U)||_∞ <= p · log_b + eps,
// i.e. R |=_s ((V|U), p), B) with witness d = max degree.
bool StronglySatisfiesLog2(const Relation& rel, const std::vector<int>& u_cols,
                           const std::vector<int>& v_cols, double p,
                           double log_b, double eps = 1e-9);

// Lemma 2.5: partitions `rel` into parts such that, whenever rel satisfies
// ||deg(V|U)||_p <= B, every part strongly satisfies that statistic. Parts
// are formed by (1) bucketing U-groups by ⌈log2 degree⌉ and (2) splitting
// each bucket into ⌈2^p⌉ chunks of nearly equal U-group count. Empty parts
// are dropped; the parts are disjoint and their union is rel.
std::vector<Relation> PartitionStrong(const Relation& rel,
                                      const std::vector<int>& u_cols,
                                      const std::vector<int>& v_cols,
                                      double p);

// Partition request for one atom of a query.
struct PartitionSpec {
  int atom = 0;
  std::vector<int> u_cols;  // relation column indices
  std::vector<int> v_cols;
  double p = 2.0;
};

struct PartitionedCountResult {
  uint64_t count = 0;
  uint64_t subqueries = 0;       // part combinations evaluated
  uint64_t nonempty_subqueries = 0;
};

// Theorem 2.6 driver: partitions the specified atoms' relations with
// PartitionStrong, evaluates every combination of parts with the generic
// join, and sums the (disjoint) counts. Equals CountJoin on the original
// database — asserted by tests.
PartitionedCountResult CountJoinPartitioned(
    const Query& query, const Catalog& catalog,
    const std::vector<PartitionSpec>& specs);

}  // namespace lpb

#endif  // LPB_EXEC_PARTITION_H_
