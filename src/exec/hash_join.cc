#include "exec/hash_join.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <unordered_map>

namespace lpb {
namespace {

struct VecHash {
  size_t operator()(const std::vector<Value>& v) const {
    size_t h = 0xcbf29ce484222325ull;
    for (Value x : v) {
      h ^= std::hash<Value>()(x);
      h *= 0x100000001b3ull;
    }
    return h;
  }
};

// Intermediate result: variable ids + row-major tuples.
struct Intermediate {
  std::vector<int> vars;
  std::vector<std::vector<Value>> rows;
};

// Projects an atom's relation to (distinct-variable, deduplicated,
// equality-selected) tuples; vars come out in ascending id order.
Intermediate AtomTuples(const Atom& atom, const Relation& rel) {
  Intermediate out;
  for (int v : VarRange(atom.var_set())) out.vars.push_back(v);
  std::vector<int> first_col(out.vars.size());
  for (size_t k = 0; k < out.vars.size(); ++k) {
    for (size_t j = 0; j < atom.vars.size(); ++j) {
      if (atom.vars[j] == out.vars[k]) {
        first_col[k] = static_cast<int>(j);
        break;
      }
    }
  }
  std::vector<Value> tuple(out.vars.size());
  for (size_t r = 0; r < rel.NumRows(); ++r) {
    bool ok = true;
    for (size_t j = 0; j < atom.vars.size() && ok; ++j) {
      for (size_t j2 = j + 1; j2 < atom.vars.size(); ++j2) {
        if (atom.vars[j] == atom.vars[j2] &&
            rel.At(r, static_cast<int>(j)) != rel.At(r, static_cast<int>(j2))) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) continue;
    for (size_t k = 0; k < out.vars.size(); ++k) {
      tuple[k] = rel.At(r, first_col[k]);
    }
    out.rows.push_back(tuple);
  }
  std::sort(out.rows.begin(), out.rows.end());
  out.rows.erase(std::unique(out.rows.begin(), out.rows.end()),
                 out.rows.end());
  return out;
}

Intermediate Join(const Intermediate& left, const Intermediate& right) {
  // Common and right-only variable positions.
  std::vector<std::pair<int, int>> common;  // (left pos, right pos)
  std::vector<int> right_only;              // right positions
  for (size_t j = 0; j < right.vars.size(); ++j) {
    auto it = std::find(left.vars.begin(), left.vars.end(), right.vars[j]);
    if (it != left.vars.end()) {
      common.push_back({static_cast<int>(it - left.vars.begin()),
                        static_cast<int>(j)});
    } else {
      right_only.push_back(static_cast<int>(j));
    }
  }

  Intermediate out;
  out.vars = left.vars;
  for (int j : right_only) out.vars.push_back(right.vars[j]);

  // Hash the right side on the common key.
  std::unordered_map<std::vector<Value>, std::vector<uint32_t>, VecHash>
      table;
  std::vector<Value> key(common.size());
  for (size_t r = 0; r < right.rows.size(); ++r) {
    for (size_t k = 0; k < common.size(); ++k) {
      key[k] = right.rows[r][common[k].second];
    }
    table[key].push_back(static_cast<uint32_t>(r));
  }

  std::vector<Value> tuple;
  for (const std::vector<Value>& lrow : left.rows) {
    for (size_t k = 0; k < common.size(); ++k) {
      key[k] = lrow[common[k].first];
    }
    auto it = table.find(key);
    if (it == table.end()) continue;
    for (uint32_t r : it->second) {
      tuple = lrow;
      for (int j : right_only) tuple.push_back(right.rows[r][j]);
      out.rows.push_back(tuple);
    }
  }
  return out;
}

}  // namespace

HashJoinStats CountByHashJoin(const Query& query, const Catalog& catalog,
                              const std::vector<int>& atom_order) {
  HashJoinStats stats;
  if (query.num_atoms() == 0) {
    stats.ok = false;
    stats.error = "query has no atoms";
    return stats;
  }
  std::vector<int> order = atom_order;
  if (order.empty()) {
    order.resize(query.num_atoms());
    std::iota(order.begin(), order.end(), 0);
  }
  // Orders come from callers assembling them by hand (optimizer plans,
  // example drivers) — validate instead of trusting: a wrong-length order
  // would silently skip atoms, an out-of-range index reads past the atom
  // list, and a duplicate both double-joins one atom and drops another.
  if (static_cast<int>(order.size()) != query.num_atoms()) {
    stats.ok = false;
    stats.error = "atom_order length " + std::to_string(order.size()) +
                  " != " + std::to_string(query.num_atoms()) + " atoms";
    return stats;
  }
  std::vector<bool> seen(order.size(), false);
  for (int a : order) {
    if (a < 0 || a >= query.num_atoms()) {
      stats.ok = false;
      stats.error = "atom_order index " + std::to_string(a) + " out of range";
      return stats;
    }
    if (seen[static_cast<size_t>(a)]) {
      stats.ok = false;
      stats.error = "atom_order repeats index " + std::to_string(a);
      return stats;
    }
    seen[static_cast<size_t>(a)] = true;
  }
  Intermediate acc = AtomTuples(query.atom(order[0]),
                                catalog.Get(query.atom(order[0]).relation));
  stats.intermediate_sizes.push_back(acc.rows.size());
  for (size_t i = 1; i < order.size(); ++i) {
    const Atom& atom = query.atom(order[i]);
    acc = Join(acc, AtomTuples(atom, catalog.Get(atom.relation)));
    stats.intermediate_sizes.push_back(acc.rows.size());
  }
  stats.output_count = acc.rows.size();
  return stats;
}

}  // namespace lpb
