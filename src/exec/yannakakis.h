// Yannakakis-style counting for α-acyclic full joins.
//
// Computes |Q(D)| in time O(input + #distinct keys) via a bottom-up
// dynamic program on a join tree: each node tuple carries the number of
// extensions into its subtree; parents multiply the per-child sums of
// matching tuples. No intermediate result is ever materialized, so star
// queries whose output is huge (JOB-style workloads) count in linear time
// where the worst-case-optimal join would enumerate.
#ifndef LPB_EXEC_YANNAKAKIS_H_
#define LPB_EXEC_YANNAKAKIS_H_

#include <cstdint>
#include <optional>

#include "query/query.h"
#include "relation/catalog.h"

namespace lpb {

// Returns |Q(D)| for an α-acyclic query, or std::nullopt if the query is
// not α-acyclic (callers fall back to CountJoin). Counts are computed in
// uint64_t; overflow is the caller's responsibility (outputs beyond 2^64
// are out of scope for the experiments).
std::optional<uint64_t> CountAcyclic(const Query& query,
                                     const Catalog& catalog);

}  // namespace lpb

#endif  // LPB_EXEC_YANNAKAKIS_H_
