#include "exec/partition.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

#include "exec/generic_join.h"
#include "relation/degree_sequence.h"

namespace lpb {

bool StronglySatisfiesLog2(const Relation& rel, const std::vector<int>& u_cols,
                           const std::vector<int>& v_cols, double p,
                           double log_b, double eps) {
  if (rel.NumRows() == 0) return true;
  const DegreeSequence deg = ComputeDegreeSequence(rel, u_cols, v_cols);
  const double log_groups = std::log2(static_cast<double>(deg.size()));
  const double log_max = std::log2(static_cast<double>(deg.MaxDegree()));
  return log_groups + p * log_max <= p * log_b + eps;
}

std::vector<Relation> PartitionStrong(const Relation& rel,
                                      const std::vector<int>& u_cols,
                                      const std::vector<int>& v_cols,
                                      double p) {
  // Degree of each row's U-value over distinct (U,V) pairs.
  std::vector<int> uv = u_cols;
  uv.insert(uv.end(), v_cols.begin(), v_cols.end());
  std::vector<uint32_t> order = rel.SortedOrder(u_cols);

  // Assign each row a (bucket, chunk) pair: bucket = ceil(log2 degree) of
  // its U-group, chunk = round-robin over U-groups within the bucket so
  // that each bucket is split into ~ceil(2^p) chunks of equal group count.
  const int num_chunks = static_cast<int>(std::ceil(std::exp2(p)));
  std::map<std::pair<int, int>, Relation> parts;
  std::map<int, int> next_chunk_in_bucket;

  size_t i = 0;
  std::vector<Value> row(rel.arity());
  while (i < order.size()) {
    // One U-group: rows [i, j).
    size_t j = i + 1;
    while (j < order.size() && rel.RowsEqualOn(order[i], order[j], u_cols)) {
      ++j;
    }
    // Distinct (U,V) degree of the group.
    std::vector<uint32_t> group(order.begin() + i, order.begin() + j);
    std::sort(group.begin(), group.end(), [&](uint32_t a, uint32_t b) {
      return rel.RowLessOn(a, b, uv);
    });
    uint64_t degree = 1;
    for (size_t k = 1; k < group.size(); ++k) {
      if (!rel.RowsEqualOn(group[k - 1], group[k], uv)) ++degree;
    }
    const int bucket =
        degree <= 1 ? 0
                    : static_cast<int>(std::ceil(
                          std::log2(static_cast<double>(degree))));
    const int chunk = next_chunk_in_bucket[bucket]++ % num_chunks;

    auto key = std::make_pair(bucket, chunk);
    auto it = parts.find(key);
    if (it == parts.end()) {
      it = parts.emplace(key, Relation(rel.name(), rel.attrs())).first;
    }
    for (size_t k = i; k < j; ++k) {
      for (int c = 0; c < rel.arity(); ++c) row[c] = rel.At(order[k], c);
      it->second.AddRow(row);
    }
    i = j;
  }

  std::vector<Relation> out;
  out.reserve(parts.size());
  for (auto& [key, part] : parts) out.push_back(std::move(part));
  return out;
}

PartitionedCountResult CountJoinPartitioned(
    const Query& query, const Catalog& catalog,
    const std::vector<PartitionSpec>& specs) {
  // Partition each specified atom's relation; unspecified atoms contribute
  // the single whole relation.
  std::vector<std::vector<Relation>> parts_per_atom(query.num_atoms());
  for (int a = 0; a < query.num_atoms(); ++a) {
    parts_per_atom[a] = {catalog.Get(query.atom(a).relation)};
  }
  for (const PartitionSpec& spec : specs) {
    assert(spec.atom >= 0 && spec.atom < query.num_atoms());
    parts_per_atom[spec.atom] =
        PartitionStrong(catalog.Get(query.atom(spec.atom).relation),
                        spec.u_cols, spec.v_cols, spec.p);
  }

  // Self-joins: evaluating part combinations requires each atom to read its
  // own part, so rebuild the query with a unique relation name per atom.
  Query renamed("Q_parts");
  for (int a = 0; a < query.num_atoms(); ++a) {
    std::vector<std::string> names;
    for (int v : query.atom(a).vars) names.push_back(query.var_name(v));
    renamed.AddAtom(query.atom(a).relation + "#" + std::to_string(a), names);
  }

  PartitionedCountResult result;
  std::vector<size_t> pick(query.num_atoms(), 0);
  while (true) {
    Catalog part_db;
    for (int a = 0; a < query.num_atoms(); ++a) {
      Relation part = parts_per_atom[a][pick[a]];
      part.set_name(query.atom(a).relation + "#" + std::to_string(a));
      part_db.Add(std::move(part));
    }
    const uint64_t c = CountJoin(renamed, part_db);
    ++result.subqueries;
    if (c > 0) ++result.nonempty_subqueries;
    result.count += c;

    // Advance the odometer.
    int a = 0;
    for (; a < query.num_atoms(); ++a) {
      if (++pick[a] < parts_per_atom[a].size()) break;
      pick[a] = 0;
    }
    if (a == query.num_atoms()) break;
  }
  return result;
}

}  // namespace lpb
