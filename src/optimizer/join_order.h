// Join-order optimization on top of batched pessimistic bounds — the
// paper's motivating application (Sec 1) promoted from an example into a
// module: an optimizer that picks plans by intermediate-size estimates,
// where the estimates are ℓp-norm *upper bounds* instead of error-prone
// traditional guesses, so underestimates can never sell a catastrophic
// plan as cheap.
//
// JoinOrderOptimizer runs DPsize enumeration over connected subgraphs of
// the query's join graph (atom subsets encoded as bitsets, reusing the
// util/bits.h VarSet machinery), memoizing one DpEntry per subset. The
// probing discipline is the whole point of the module: all candidate
// subplans of one DP level are priced in ONE CardinalityModel batch —
// with the advisor-backed model that is a single
// CardinalityAdvisor::EstimateLog2Batch call, so structure-sharing
// candidates re-price as a block through the compiled bound's cached
// factorization (one structure lookup, one per-bound lock, one multi-RHS
// resolve per group). See README.md in this directory for the DP shape,
// the batching contract, and the cost model.
#ifndef LPB_OPTIMIZER_JOIN_ORDER_H_
#define LPB_OPTIMIZER_JOIN_ORDER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "estimator/advisor.h"
#include "query/query.h"
#include "relation/catalog.h"
#include "util/bits.h"

namespace lpb {

// A set of query atoms, encoded as a bitmask (bit i = atom i). Reuses the
// VarSet bit machinery; capped at kMaxAtoms atoms per query because the
// memo table is indexed by mask.
using AtomSet = uint32_t;
inline constexpr int kMaxAtoms = 20;

// Physical join operator of the cost model: hash (build the smaller side,
// probe the larger) vs merge (sort both inputs).
enum class JoinMethod : uint8_t { kHash, kMerge };
const char* JoinMethodName(JoinMethod method);

// What the DP minimizes.
//   kTotalCost        — accumulated operator cost (scans + builds + probes
//                       + materialized outputs): the throughput objective.
//   kPeakIntermediate — the largest estimated materialized intermediate
//                       anywhere in the plan (a bottleneck DP): the
//                       paper's plan-quality metric, directly comparable
//                       with HashJoinStats::intermediate_sizes.
enum class CostObjective : uint8_t { kTotalCost, kPeakIntermediate };

struct JoinOrderOptions {
  // Restrict the DP to left-deep plans (every right input a single atom).
  // Left-deep plans execute exactly as CountByHashJoin's pairwise loop, so
  // this is the mode to use when the chosen plan is scored by execution.
  bool left_deep = false;
  CostObjective objective = CostObjective::kTotalCost;
  // Cost-model weights (kTotalCost): per-row cost of hash-table build,
  // hash probe, and sort work (merge pays sort_weight · rows · log2 rows
  // per input). Every operator additionally pays its output rows.
  double hash_build_weight = 2.0;
  double hash_probe_weight = 1.0;
  double sort_weight = 0.25;
};

// One memoized subplan: the best plan found for `atoms`, its estimated
// cardinality (the batched bound, in log2), and the winning decomposition.
// Leaf entries (single atoms) have leaf_atom >= 0 and left == right == 0.
struct DpEntry {
  AtomSet atoms = 0;
  VarSet vars = 0;          // union of the member atoms' variables
  double log2_rows = 0.0;   // estimated log2 |subplan output|
  double rows = 0.0;        // 2^log2_rows, saturating
  double cost = 0.0;        // objective value of the best plan
  // Secondary criterion ordering cost ties: the sum of estimated
  // accumulated intermediates. Under kPeakIntermediate whole swaths of
  // plans tie (the root's bound usually dominates every prefix), and
  // "first enumerated" picks needlessly bad orders among them.
  double tiebreak = 0.0;
  AtomSet left = 0;         // winning partition (0 for leaves)
  AtomSet right = 0;
  JoinMethod method = JoinMethod::kHash;
  bool cross_product = false;  // the winning join shares no variables
  int leaf_atom = -1;
};

// Enumeration counters. batch_calls counts CardinalityModel batches issued
// — exactly one per DP level that had candidates, which with the
// advisor-backed model is one EstimateLog2Batch call per level.
struct OptimizerStats {
  int atoms = 0;
  int dp_levels = 0;                // levels that issued a probe batch
  uint64_t batch_calls = 0;         // == dp_levels by construction
  uint64_t probes = 0;              // candidate subplans priced
  uint64_t memo_entries = 0;        // subsets with a plan
  uint64_t partitions_tried = 0;    // (left, right) pairs examined
  uint64_t memo_hits = 0;           // pairs where both halves were memoized
  uint64_t cross_partitions = 0;    // admissible pairs sharing no variables
  std::vector<uint64_t> probes_per_level;  // [k-1] = probes at level k
};

// A complete plan: nodes in bottom-up order, root last. Node left/right
// index into `nodes`; leaves carry the atom index.
struct JoinPlan {
  struct Node {
    int left = -1;
    int right = -1;
    int leaf_atom = -1;
    AtomSet atoms = 0;
    double log2_rows = 0.0;
    double cost = 0.0;
    JoinMethod method = JoinMethod::kHash;
    bool cross_product = false;
    bool IsLeaf() const { return leaf_atom >= 0; }
  };
  std::vector<Node> nodes;

  bool empty() const { return nodes.empty(); }
  double cost() const { return nodes.empty() ? 0.0 : nodes.back().cost; }
  double log2_rows() const {
    return nodes.empty() ? 0.0 : nodes.back().log2_rows;
  }
  // Leaves left to right — for a left-deep plan, exactly the atom order to
  // hand CountByHashJoin.
  std::vector<int> AtomOrder() const;
  // Largest estimated materialized size in the plan (log2): join outputs
  // plus, for left-deep plans, the driving leaf — mirroring what
  // HashJoinStats::intermediate_sizes materializes.
  double PeakLog2Rows() const;
  // Human-readable rendering, e.g. "((R HJ S) xMJ T)".
  std::string ToString(const Query& query) const;
};

// Cardinality oracle the DP prices candidate subplans through. One call
// per DP level, covering every candidate of that level.
class CardinalityModel {
 public:
  virtual ~CardinalityModel() = default;
  // log2 estimates aligned with `probes` (+infinity = cannot bound).
  virtual std::vector<double> EstimateLog2Batch(
      const std::vector<Query>& probes) = 0;
};

// The bound-driven model: every level is one batched advisor call.
class AdvisorCardinalityModel : public CardinalityModel {
 public:
  explicit AdvisorCardinalityModel(CardinalityAdvisor& advisor)
      : advisor_(advisor) {}
  std::vector<double> EstimateLog2Batch(
      const std::vector<Query>& probes) override {
    return advisor_.EstimateLog2Batch(probes);
  }

 private:
  CardinalityAdvisor& advisor_;
};

// The System-R style comparison model (estimator/traditional.h):
// uniformity + independence, so it underestimates skewed joins — the
// behavior the bound-driven plans are scored against.
class TraditionalCardinalityModel : public CardinalityModel {
 public:
  explicit TraditionalCardinalityModel(const Catalog& catalog)
      : catalog_(catalog) {}
  std::vector<double> EstimateLog2Batch(
      const std::vector<Query>& probes) override;

 private:
  const Catalog& catalog_;
};

// DPsize join-order optimizer. Not thread-safe; build one per query.
class JoinOrderOptimizer {
 public:
  // The query and model must outlive the optimizer. Queries over more than
  // kMaxAtoms atoms fall back to the greedy order (wrapped as a left-deep
  // plan) instead of exhausting the 2^m memo.
  JoinOrderOptimizer(const Query& query, CardinalityModel& model,
                     JoinOrderOptions options = {});

  // Runs the DP (once; subsequent calls return the cached plan).
  const JoinPlan& Optimize();

  const OptimizerStats& stats() const { return stats_; }

  // Read-only view of the memo after Optimize(): mask -> entry. Exposed
  // for tests (exhaustive-enumeration cross-checks price plan shapes
  // against the same cardinalities the DP used) and for explain output.
  const std::map<AtomSet, DpEntry>& memo() const { return memo_; }

 private:
  void Run();
  void RunGreedyFallback();
  // Objective value of joining `left` and `right` into a subplan with
  // `rows` output rows; fills `method`.
  double JoinCost(const DpEntry& left, const DpEntry& right, double rows,
                  JoinMethod& method) const;

  const Query& query_;
  CardinalityModel& model_;
  JoinOrderOptions options_;
  std::map<AtomSet, DpEntry> memo_;
  OptimizerStats stats_;
  JoinPlan plan_;
  bool ran_ = false;
};

// The greedy baseline, with the disconnected-extension fix: starting from
// `first_atom` (or the min-bound atom when < 0), repeatedly append the
// connected extension minimizing the prefix bound; when every remaining
// atom is disconnected from the prefix (a disconnected query), the
// *cheapest* disconnected extension is chosen by the same batched probe —
// never an arbitrary cross product. One CardinalityModel batch per step.
std::vector<int> GreedyJoinOrder(const Query& query, CardinalityModel& model,
                                 int first_atom = -1);

// The sub-query induced by a subset of atoms (ascending atom order);
// exposed for tests and explain tooling.
Query InducedSubquery(const Query& query, AtomSet atoms);

}  // namespace lpb

#endif  // LPB_OPTIMIZER_JOIN_ORDER_H_
