#include "optimizer/join_order.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "estimator/traditional.h"

namespace lpb {
namespace {

// Linear-space cardinality for the cost arithmetic, saturating well below
// double overflow so sums and products of plan costs stay finite even when
// a probe answers "cannot bound" (+infinity).
double SaturatingExp2(double log2) {
  if (!(log2 < 120.0)) return std::exp2(120.0);
  return std::exp2(std::max(log2, -120.0));
}

// Costs within this relative tolerance are ties. The two LP backends agree
// on bounds only to solver tolerance, so a strict `<` would let ulp noise
// pick different plans per backend; eps-ties instead fall through to the
// tiebreak sum and then to enumeration order, both backend-independent.
constexpr double kCostRelEps = 1e-5;

bool TolerantLess(double a, double b) {
  return a < b - kCostRelEps * std::max({std::abs(a), std::abs(b), 1.0});
}

// Strict weak ordering on (cost, tiebreak) with eps-ties.
bool Improves(double cost, double tiebreak, double best_cost,
              double best_tiebreak) {
  if (TolerantLess(cost, best_cost)) return true;
  if (TolerantLess(best_cost, cost)) return false;
  return TolerantLess(tiebreak, best_tiebreak);
}

VarSet AtomVars(const Query& query, int atom) {
  return query.atom(atom).var_set();
}

// Number of connected components of the query's join graph (atoms joined
// by a shared variable). Cross-product partitions are admissible only when
// this exceeds one — a connected query never needs them, and pruning them
// keeps the DP on connected subgraphs.
int JoinGraphComponents(const Query& query) {
  const int m = query.num_atoms();
  int components = 0;
  AtomSet seen = 0;
  for (int a = 0; a < m; ++a) {
    if (Contains(seen, a)) continue;
    ++components;
    AtomSet frontier = VarBit(a);
    VarSet vars = 0;
    while (frontier != 0) {
      seen |= frontier;
      for (int b : VarRange(frontier)) vars |= AtomVars(query, b);
      AtomSet next = 0;
      for (int b = 0; b < m; ++b) {
        if (!Contains(seen, b) && Intersects(AtomVars(query, b), vars)) {
          next |= VarBit(b);
        }
      }
      frontier = next;
    }
  }
  return components;
}

void AppendLeaves(const JoinPlan& plan, int node, std::vector<int>& out) {
  const JoinPlan::Node& n = plan.nodes[static_cast<size_t>(node)];
  if (n.IsLeaf()) {
    out.push_back(n.leaf_atom);
    return;
  }
  AppendLeaves(plan, n.left, out);
  AppendLeaves(plan, n.right, out);
}

void AppendNodeString(const JoinPlan& plan, int node, const Query& query,
                      std::string& out) {
  const JoinPlan::Node& n = plan.nodes[static_cast<size_t>(node)];
  if (n.IsLeaf()) {
    out += query.atom(n.leaf_atom).relation;
    return;
  }
  out += "(";
  AppendNodeString(plan, n.left, query, out);
  out += " ";
  if (n.cross_product) out += "x";
  out += JoinMethodName(n.method);
  out += " ";
  AppendNodeString(plan, n.right, query, out);
  out += ")";
}

}  // namespace

const char* JoinMethodName(JoinMethod method) {
  return method == JoinMethod::kHash ? "HJ" : "MJ";
}

Query InducedSubquery(const Query& query, AtomSet atoms) {
  Query sub(query.name() + "#" + std::to_string(atoms));
  for (int a : VarRange(atoms)) {
    std::vector<std::string> names;
    names.reserve(query.atom(a).vars.size());
    for (int v : query.atom(a).vars) names.push_back(query.var_name(v));
    sub.AddAtom(query.atom(a).relation, names);
  }
  return sub;
}

std::vector<int> JoinPlan::AtomOrder() const {
  std::vector<int> order;
  if (nodes.empty()) return order;
  order.reserve(nodes.size() / 2 + 1);
  AppendLeaves(*this, static_cast<int>(nodes.size()) - 1, order);
  return order;
}

double JoinPlan::PeakLog2Rows() const {
  if (nodes.empty()) return 0.0;
  // Join outputs are materialized accumulations; of the leaves, only the
  // driving (leftmost) one is accumulated — the others feed probes.
  double peak = -kInfNorm;
  for (const Node& node : nodes) {
    if (!node.IsLeaf()) peak = std::max(peak, node.log2_rows);
  }
  std::vector<int> order;
  AppendLeaves(*this, static_cast<int>(nodes.size()) - 1, order);
  for (const Node& node : nodes) {
    if (node.IsLeaf() && node.leaf_atom == order.front()) {
      peak = std::max(peak, node.log2_rows);
    }
  }
  return peak;
}

std::string JoinPlan::ToString(const Query& query) const {
  if (nodes.empty()) return "(empty)";
  std::string out;
  AppendNodeString(*this, static_cast<int>(nodes.size()) - 1, query, out);
  return out;
}

std::vector<double> TraditionalCardinalityModel::EstimateLog2Batch(
    const std::vector<Query>& probes) {
  std::vector<double> out;
  out.reserve(probes.size());
  for (const Query& probe : probes) {
    out.push_back(TraditionalEstimateLog2(probe, catalog_));
  }
  return out;
}

JoinOrderOptimizer::JoinOrderOptimizer(const Query& query,
                                       CardinalityModel& model,
                                       JoinOrderOptions options)
    : query_(query), model_(model), options_(options) {}

const JoinPlan& JoinOrderOptimizer::Optimize() {
  if (ran_) return plan_;
  ran_ = true;
  stats_.atoms = query_.num_atoms();
  if (query_.num_atoms() == 0) return plan_;
  if (query_.num_atoms() > kMaxAtoms) {
    RunGreedyFallback();
    return plan_;
  }
  Run();
  return plan_;
}

double JoinOrderOptimizer::JoinCost(const DpEntry& left, const DpEntry& right,
                                    double rows, JoinMethod& method) const {
  if (options_.objective == CostObjective::kPeakIntermediate) {
    // Bottleneck DP: the subplan's peak is the largest accumulation in
    // either child or the new output. In left-deep mode the right side is
    // always a single-atom projection feeding the probe — it is never an
    // accumulated intermediate (HashJoinStats::intermediate_sizes tracks
    // only the accumulator), so its scan does not count.
    method = JoinMethod::kHash;
    double peak = std::max(rows, left.cost);
    if (!(options_.left_deep && right.leaf_atom >= 0)) {
      peak = std::max(peak, right.cost);
    }
    return peak;
  }
  const double build = std::min(left.rows, right.rows);
  const double probe = std::max(left.rows, right.rows);
  const double hash = options_.hash_build_weight * build +
                      options_.hash_probe_weight * probe;
  const double merge =
      options_.sort_weight * (left.rows * std::log2(left.rows + 2.0) +
                              right.rows * std::log2(right.rows + 2.0));
  method = hash <= merge ? JoinMethod::kHash : JoinMethod::kMerge;
  return left.cost + right.cost + std::min(hash, merge) + rows;
}

void JoinOrderOptimizer::Run() {
  const int m = query_.num_atoms();
  const AtomSet full = FullSet(m);
  const bool allow_cross = JoinGraphComponents(query_) > 1;

  // Masks grouped by subset size — the DP levels.
  std::vector<std::vector<AtomSet>> by_size(static_cast<size_t>(m) + 1);
  for (AtomSet s = 1; s <= full; ++s) {
    by_size[static_cast<size_t>(SetSize(s))].push_back(s);
  }

  stats_.probes_per_level.assign(static_cast<size_t>(m), 0);

  for (int k = 1; k <= m; ++k) {
    // Pass 1: find this level's candidates — subsets with at least one
    // admissible decomposition into memoized halves (every singleton, and
    // beyond that exactly the connected subsets unless the query itself is
    // disconnected, where cross-product partitions become admissible).
    std::vector<AtomSet> candidates;
    std::vector<Query> probes;
    for (AtomSet s : by_size[static_cast<size_t>(k)]) {
      bool admissible = k == 1;
      if (k > 1) {
        const AtomSet low = VarBit(LowestVar(s));
        for (AtomSet left = (s - 1) & s; left != 0 && !admissible;
             left = (left - 1) & s) {
          if (!Intersects(left, low)) continue;  // canonical orientation
          const AtomSet right = s & ~left;
          if (options_.left_deep && SetSize(right) != 1 && SetSize(left) != 1) {
            continue;
          }
          auto lit = memo_.find(left);
          if (lit == memo_.end()) continue;
          auto rit = memo_.find(right);
          if (rit == memo_.end()) continue;
          admissible = Intersects(lit->second.vars, rit->second.vars) ||
                       allow_cross;
        }
      }
      if (!admissible) continue;
      candidates.push_back(s);
      probes.push_back(InducedSubquery(query_, s));
    }
    if (candidates.empty()) continue;

    // Pass 2: ONE model batch prices every candidate subplan of level k —
    // with the advisor model, one EstimateLog2Batch call whose
    // structure-sharing probes re-price as blocks.
    const std::vector<double> bounds = model_.EstimateLog2Batch(probes);
    ++stats_.dp_levels;
    ++stats_.batch_calls;
    stats_.probes += candidates.size();
    stats_.probes_per_level[static_cast<size_t>(k) - 1] = candidates.size();

    // Pass 3: pick each candidate's best decomposition.
    for (size_t c = 0; c < candidates.size(); ++c) {
      const AtomSet s = candidates[c];
      DpEntry entry;
      entry.atoms = s;
      entry.log2_rows = bounds[c];
      entry.rows = SaturatingExp2(bounds[c]);
      for (int a : VarRange(s)) entry.vars |= AtomVars(query_, a);
      if (k == 1) {
        entry.leaf_atom = LowestVar(s);
        entry.cost = entry.rows;  // scan
        entry.tiebreak = entry.rows;
        memo_.emplace(s, entry);
        continue;
      }
      bool found = false;
      const AtomSet low = VarBit(LowestVar(s));
      for (AtomSet left = (s - 1) & s; left != 0; left = (left - 1) & s) {
        // Each unordered partition once: the half holding the lowest atom
        // is canonically "left" (in left-deep mode the composite half
        // drives, so orientation is fixed by shape instead).
        if (!options_.left_deep && !Intersects(left, low)) continue;
        const AtomSet right = s & ~left;
        if (options_.left_deep && SetSize(right) != 1) continue;
        ++stats_.partitions_tried;
        auto lit = memo_.find(left);
        if (lit == memo_.end()) continue;
        auto rit = memo_.find(right);
        if (rit == memo_.end()) continue;
        ++stats_.memo_hits;
        const bool connected =
            Intersects(lit->second.vars, rit->second.vars);
        if (!connected) {
          if (!allow_cross) continue;
          ++stats_.cross_partitions;
        }
        JoinMethod method;
        const double cost =
            JoinCost(lit->second, rit->second, entry.rows, method);
        // Under the bottleneck objective the root bound often dominates
        // every decomposition, so cost alone ties across whole plan
        // families; the accumulated-intermediate sum orders those ties.
        const bool right_leaf_scan =
            options_.left_deep && rit->second.leaf_atom >= 0;
        const double tiebreak =
            options_.objective == CostObjective::kPeakIntermediate
                ? lit->second.tiebreak +
                      (right_leaf_scan ? 0.0 : rit->second.tiebreak) +
                      entry.rows
                : 0.0;
        if (!found || Improves(cost, tiebreak, entry.cost, entry.tiebreak)) {
          found = true;
          entry.cost = cost;
          entry.tiebreak = tiebreak;
          entry.left = left;
          entry.right = right;
          entry.method = method;
          entry.cross_product = !connected;
        }
      }
      assert(found);
      if (found) memo_.emplace(s, entry);
    }
  }
  stats_.memo_entries = memo_.size();

  // Extract the plan bottom-up from the full-set entry. The full set is
  // always memoized: connected queries reach it through connected
  // partitions, disconnected ones through cross products.
  assert(memo_.count(full) != 0);
  struct Emit {
    const std::map<AtomSet, DpEntry>& memo;
    JoinPlan& plan;
    int operator()(AtomSet s) const {
      const DpEntry& e = memo.at(s);
      JoinPlan::Node node;
      node.atoms = s;
      node.log2_rows = e.log2_rows;
      node.cost = e.cost;
      if (e.leaf_atom >= 0) {
        node.leaf_atom = e.leaf_atom;
      } else {
        node.left = (*this)(e.left);
        node.right = (*this)(e.right);
        node.method = e.method;
        node.cross_product = e.cross_product;
      }
      plan.nodes.push_back(node);
      return static_cast<int>(plan.nodes.size()) - 1;
    }
  };
  Emit{memo_, plan_}(full);
}

void JoinOrderOptimizer::RunGreedyFallback() {
  const std::vector<int> order = GreedyJoinOrder(query_, model_);
  // One batch prices every prefix for the plan annotations.
  std::vector<Query> probes;
  probes.reserve(order.size());
  AtomSet mask = 0;
  for (int a : order) {
    mask |= VarBit(a);
    probes.push_back(InducedSubquery(query_, mask));
  }
  const std::vector<double> bounds = model_.EstimateLog2Batch(probes);
  ++stats_.dp_levels;
  ++stats_.batch_calls;
  stats_.probes += bounds.size();

  DpEntry acc;
  acc.atoms = VarBit(order[0]);
  acc.vars = AtomVars(query_, order[0]);
  acc.log2_rows = bounds[0];
  acc.rows = SaturatingExp2(bounds[0]);
  acc.cost = acc.rows;
  acc.leaf_atom = order[0];
  JoinPlan::Node leaf;
  leaf.leaf_atom = order[0];
  leaf.atoms = acc.atoms;
  leaf.log2_rows = acc.log2_rows;
  leaf.cost = acc.cost;
  plan_.nodes.push_back(leaf);
  int left_index = 0;
  for (size_t i = 1; i < order.size(); ++i) {
    const int a = order[i];
    DpEntry rhs;
    rhs.atoms = VarBit(a);
    rhs.vars = AtomVars(query_, a);
    rhs.leaf_atom = a;
    // The fallback skips singleton probes; the chain costs only need the
    // accumulated bounds, so leaf sizes borrow the catalog-free neutral 1.
    rhs.log2_rows = 0.0;
    rhs.rows = 1.0;
    rhs.cost = options_.objective == CostObjective::kPeakIntermediate
                   ? 0.0
                   : rhs.rows;
    JoinPlan::Node rleaf;
    rleaf.leaf_atom = a;
    rleaf.atoms = rhs.atoms;
    plan_.nodes.push_back(rleaf);
    const int right_index = static_cast<int>(plan_.nodes.size()) - 1;

    DpEntry next;
    next.atoms = acc.atoms | rhs.atoms;
    next.vars = acc.vars | rhs.vars;
    next.log2_rows = bounds[i];
    next.rows = SaturatingExp2(bounds[i]);
    JoinMethod method;
    next.cost = JoinCost(acc, rhs, next.rows, method);
    JoinPlan::Node join;
    join.left = left_index;
    join.right = right_index;
    join.atoms = next.atoms;
    join.log2_rows = next.log2_rows;
    join.cost = next.cost;
    join.method = method;
    join.cross_product = !Intersects(acc.vars, rhs.vars);
    plan_.nodes.push_back(join);
    left_index = static_cast<int>(plan_.nodes.size()) - 1;
    acc = next;
  }
}

std::vector<int> GreedyJoinOrder(const Query& query, CardinalityModel& model,
                                 int first_atom) {
  const int m = query.num_atoms();
  std::vector<int> order;
  if (m == 0) return order;
  std::vector<int> remaining(static_cast<size_t>(m));
  std::iota(remaining.begin(), remaining.end(), 0);

  int first = first_atom;
  if (first < 0) {
    // Seed with the min-bound atom — one batch of singleton probes.
    std::vector<Query> probes;
    probes.reserve(remaining.size());
    for (int a : remaining) {
      probes.push_back(InducedSubquery(query, VarBit(a)));
    }
    const std::vector<double> bounds = model.EstimateLog2Batch(probes);
    size_t best = 0;
    for (size_t k = 1; k < bounds.size(); ++k) {
      if (bounds[k] < bounds[best]) best = k;
    }
    first = remaining[best];
  }
  order.push_back(first);
  remaining.erase(std::find(remaining.begin(), remaining.end(), first));
  AtomSet prefix = VarBit(first);
  VarSet covered = query.atom(first).var_set();

  while (!remaining.empty()) {
    // Connected extensions keep the plan a join; when every remaining atom
    // is disconnected from the prefix (a disconnected query), ALL of them
    // become candidates and the min-bound one wins — the cheapest
    // disconnected extension, never an arbitrary remaining.front().
    std::vector<int> candidates;
    for (int a : remaining) {
      if (Intersects(query.atom(a).var_set(), covered)) candidates.push_back(a);
    }
    if (candidates.empty()) candidates = remaining;
    // All candidate extensions of this step, bounded in one batched call:
    // candidates share statistic structures, so the advisor-backed model
    // groups them and re-prices each group's values as one block.
    std::vector<Query> probes;
    probes.reserve(candidates.size());
    for (int a : candidates) {
      probes.push_back(InducedSubquery(query, prefix | VarBit(a)));
    }
    const std::vector<double> bounds = model.EstimateLog2Batch(probes);
    size_t best = 0;
    for (size_t k = 1; k < bounds.size(); ++k) {
      if (bounds[k] < bounds[best]) best = k;
    }
    const int chosen = candidates[best];
    order.push_back(chosen);
    remaining.erase(std::find(remaining.begin(), remaining.end(), chosen));
    prefix |= VarBit(chosen);
    covered |= query.atom(chosen).var_set();
  }
  return order;
}

}  // namespace lpb
