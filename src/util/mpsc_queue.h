// Bounded multi-producer / single-consumer blocking queue.
//
// The admission queue of one AdvisorService worker (serve/
// advisor_service.h): client threads Push single requests, the pinned
// worker drains them in admission batches via PopBatch. Bounded so a
// burst backpressures submitters instead of growing the heap; mutex +
// condvar rather than a lock-free ring because the consumer immediately
// performs an LP block resolve that dwarfs the lock cost, and because a
// condvar gives the microbatch window (wait-a-little-for-more) for free.
#ifndef LPB_UTIL_MPSC_QUEUE_H_
#define LPB_UTIL_MPSC_QUEUE_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace lpb {

template <typename T>
class BoundedMpscQueue {
 public:
  explicit BoundedMpscQueue(size_t capacity)
      : capacity_(std::max<size_t>(1, capacity)) {}

  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  // Blocks while the queue is full. Returns the queue depth right after
  // the push (always >= 1), measured under the same lock — producers use
  // it to track high-water depth without a second acquisition. Returns 0
  // — leaving `item` untouched, so the caller can still complete it —
  // once Close() ran.
  size_t Push(T&& item) {
    size_t depth;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock,
                     [&] { return closed_ || items_.size() < capacity_; });
      if (closed_) return 0;
      items_.push_back(std::move(item));
      depth = items_.size();
    }
    not_empty_.notify_one();
    return depth;
  }

  // Pops up to `max` items into `out` (appending). Blocks until at least
  // one item is available (or the queue is closed); after the first item
  // keeps gathering — waiting up to `window` past the first pop — until
  // `max` is reached or the window expires. Returns the number popped;
  // 0 means closed *and* drained, the consumer's exit signal. With
  // window == 0 it grabs whatever is queued right now and returns.
  size_t PopBatch(std::vector<T>& out, size_t max,
                  std::chrono::microseconds window) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return 0;  // closed and drained
    size_t popped = 0;
    auto take = [&] {
      while (popped < max && !items_.empty()) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
        ++popped;
      }
    };
    take();
    not_full_.notify_all();
    if (popped >= max || window.count() <= 0) return popped;
    const auto deadline = std::chrono::steady_clock::now() + window;
    while (popped < max) {
      if (!not_empty_.wait_until(lock, deadline,
                                 [&] { return closed_ || !items_.empty(); })) {
        break;  // window expired
      }
      if (items_.empty()) break;  // closed while waiting
      take();
      not_full_.notify_all();
    }
    return popped;
  }

  // Stops accepting new items and wakes every waiter. Items already
  // queued remain poppable: PopBatch keeps draining them and returns 0
  // only once the queue is empty, so nothing submitted before Close is
  // ever dropped.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  const size_t capacity_;
  bool closed_ = false;
};

}  // namespace lpb

#endif  // LPB_UTIL_MPSC_QUEUE_H_
