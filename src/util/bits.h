// Bit-set utilities over variable sets encoded as 32-bit masks.
//
// Throughout the library a set of query variables {X_0, ..., X_{n-1}} is
// represented as a bitmask: bit i set means X_i is a member. Entropy vectors
// are indexed by these masks, so n is limited to kMaxVars.
#ifndef LPB_UTIL_BITS_H_
#define LPB_UTIL_BITS_H_

#include <bit>
#include <cstdint>

namespace lpb {

// A set of query variables, encoded as a bitmask.
using VarSet = uint32_t;

// Maximum number of distinct variables in a query. Entropy vectors have
// 2^n entries, so this caps memory at 2^20 doubles (8 MiB).
inline constexpr int kMaxVars = 20;

// Singleton set {i}.
constexpr VarSet VarBit(int i) { return VarSet{1} << i; }

// Full set {0, ..., n-1}.
constexpr VarSet FullSet(int n) {
  return n >= 32 ? ~VarSet{0} : (VarSet{1} << n) - 1;
}

constexpr bool Contains(VarSet s, int i) { return (s >> i) & 1; }
constexpr bool IsSubset(VarSet a, VarSet b) { return (a & ~b) == 0; }
constexpr bool Intersects(VarSet a, VarSet b) { return (a & b) != 0; }
constexpr int SetSize(VarSet s) { return std::popcount(s); }

// Index of the lowest set bit; undefined for s == 0.
constexpr int LowestVar(VarSet s) { return std::countr_zero(s); }

// Iterates over the elements (bit indices) of a VarSet:
//   for (int v : VarRange(s)) ...
class VarRange {
 public:
  explicit constexpr VarRange(VarSet s) : set_(s) {}

  class Iterator {
   public:
    explicit constexpr Iterator(VarSet s) : rest_(s) {}
    constexpr int operator*() const { return std::countr_zero(rest_); }
    constexpr Iterator& operator++() {
      rest_ &= rest_ - 1;
      return *this;
    }
    constexpr bool operator!=(const Iterator& o) const {
      return rest_ != o.rest_;
    }

   private:
    VarSet rest_;
  };

  constexpr Iterator begin() const { return Iterator(set_); }
  constexpr Iterator end() const { return Iterator(0); }

 private:
  VarSet set_;
};

// Iterates over all subsets of a VarSet (including the empty set and the
// set itself), in increasing mask order:
//   for (VarSet t : SubsetRange(s)) ...
class SubsetRange {
 public:
  explicit constexpr SubsetRange(VarSet s) : set_(s) {}

  class Iterator {
   public:
    constexpr Iterator(VarSet cur, VarSet set, bool done)
        : cur_(cur), set_(set), done_(done) {}
    constexpr VarSet operator*() const { return cur_; }
    constexpr Iterator& operator++() {
      if (cur_ == set_) {
        done_ = true;
      } else {
        cur_ = (cur_ - set_) & set_;  // next subset in increasing order
      }
      return *this;
    }
    constexpr bool operator!=(const Iterator& o) const {
      return done_ != o.done_ || cur_ != o.cur_;
    }

   private:
    VarSet cur_;
    VarSet set_;
    bool done_;
  };

  constexpr Iterator begin() const { return Iterator(0, set_, false); }
  constexpr Iterator end() const { return Iterator(set_, set_, true); }

 private:
  VarSet set_;
};

}  // namespace lpb

#endif  // LPB_UTIL_BITS_H_
