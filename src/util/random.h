// Deterministic, fast pseudo-random number generation (xoshiro256**).
//
// All data generators in the library take an explicit Rng so that every
// experiment is reproducible from a seed printed in its output.
#ifndef LPB_UTIL_RANDOM_H_
#define LPB_UTIL_RANDOM_H_

#include <cstdint>

namespace lpb {

// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
// implementation), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Uniform over [0, 2^64).
  uint64_t Next();

  // Uniform over [0, bound); bound must be > 0. Uses Lemire rejection to
  // avoid modulo bias.
  uint64_t Uniform(uint64_t bound);

  // Uniform over [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform over [0, 1).
  double NextDouble();

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t s_[4];
};

}  // namespace lpb

#endif  // LPB_UTIL_RANDOM_H_
