#include "util/random.h"

namespace lpb {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t state = seed;
  for (auto& s : s_) s = SplitMix64(state);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

}  // namespace lpb
