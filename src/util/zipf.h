// Zipf (power-law) sampling over [0, n).
//
// Used by the data generators to produce heavy-tailed degree distributions
// that mimic the SNAP social-network datasets used in the paper's
// Appendix C experiments.
#ifndef LPB_UTIL_ZIPF_H_
#define LPB_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace lpb {

// Samples k with probability proportional to 1 / (k+1)^theta, k in [0, n).
// Precomputes the CDF at construction; sampling is O(log n).
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double theta);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  std::vector<double> cdf_;
};

}  // namespace lpb

#endif  // LPB_UTIL_ZIPF_H_
