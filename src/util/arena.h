// Chunked bump allocator for per-solve scratch.
//
// The LP hot loops (lp/dense_tableau.cc, lp/revised_simplex.cc) burn a
// surprising share of their time in malloc: every cold Build used to
// allocate one vector per tableau row, and the revised backend's B⁻¹
// column memo re-allocated per factorization. An Arena turns all of that
// into pointer bumps against a few long-lived chunks: allocation is a
// couple of arithmetic ops, Reset() makes every chunk reusable without
// returning memory to the OS, and repeated solve/reset cycles of the same
// problem stabilize to zero allocator traffic.
//
// Blocks are aligned to kArenaAlign (32 bytes) so double arrays can be
// loaded with aligned AVX2 moves (lp/kernels.h) and long-double arrays
// start on a cache-friendly boundary. Allocations are uninitialized —
// callers that need zeroed memory fill it themselves (usually with a
// value they were about to write anyway).
//
// Not thread-safe: one Arena per solver instance, matching the
// single-threaded-per-instance contract of the LP backends.
#ifndef LPB_UTIL_ARENA_H_
#define LPB_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace lpb {

inline constexpr std::size_t kArenaAlign = 32;

class Arena {
 public:
  explicit Arena(std::size_t min_chunk_bytes = 1 << 16)
      : min_chunk_bytes_(min_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns a kArenaAlign-aligned uninitialized array of `count` Ts.
  // T must be trivially destructible (the arena never runs destructors).
  template <typename T>
  T* AllocArray(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena memory is reclaimed without running destructors");
    return static_cast<T*>(AllocBytes(count * sizeof(T)));
  }

  // Makes every chunk reusable. Previously returned pointers are invalid
  // after this (the memory is handed out again), but no chunk is freed —
  // a solver that resets and re-allocates the same shapes touches the
  // allocator only on its very first Build.
  void Reset() {
    current_ = 0;
    for (Chunk& chunk : chunks_) chunk.used = 0;
  }

  // Bytes currently held (capacity, not live allocations).
  std::size_t CapacityBytes() const {
    std::size_t total = 0;
    for (const Chunk& chunk : chunks_) total += chunk.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
    // The first kArenaAlign-aligned offset inside data.
    std::size_t base = 0;
  };

  void* AllocBytes(std::size_t bytes) {
    const std::size_t rounded = (bytes + kArenaAlign - 1) & ~(kArenaAlign - 1);
    while (current_ < chunks_.size()) {
      Chunk& chunk = chunks_[current_];
      if (chunk.used + rounded <= chunk.size) {
        void* p = chunk.data.get() + chunk.base + chunk.used;
        chunk.used += rounded;
        return p;
      }
      ++current_;
    }
    // New chunk: at least min_chunk_bytes_, and big enough for this
    // request outright (huge tableaus get a dedicated chunk rather than
    // an error path).
    Chunk chunk;
    chunk.size = rounded > min_chunk_bytes_ ? rounded : min_chunk_bytes_;
    chunk.data = std::make_unique<std::byte[]>(chunk.size + kArenaAlign);
    const auto addr = reinterpret_cast<std::uintptr_t>(chunk.data.get());
    chunk.base = (kArenaAlign - addr % kArenaAlign) % kArenaAlign;
    chunk.used = rounded;
    chunks_.push_back(std::move(chunk));
    current_ = chunks_.size() - 1;
    return chunks_.back().data.get() + chunks_.back().base;
  }

  std::size_t min_chunk_bytes_;
  std::size_t current_ = 0;
  std::vector<Chunk> chunks_;
};

}  // namespace lpb

#endif  // LPB_UTIL_ARENA_H_
