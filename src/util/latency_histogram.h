// Lock-free log-bucketed latency histogram (HdrHistogram-lite).
//
// Values (nanoseconds) land in buckets of ~12.5% relative width: 8
// sub-buckets per power of two, indexed by the top three bits below the
// leading bit. Record is three relaxed atomic adds plus a CAS max — cheap
// enough for every request on the serving hot path — and quantiles are
// read from a snapshot scan, so p50/p99/p999 carry at most one bucket
// width (~12.5%) of quantization error. Concurrent Record/Summarize is
// safe; a summary taken during recording is a momentary cut, not an
// atomic cross-bucket snapshot (fine for monitoring, which is all this
// is for).
#ifndef LPB_UTIL_LATENCY_HISTOGRAM_H_
#define LPB_UTIL_LATENCY_HISTOGRAM_H_

#include <atomic>
#include <bit>
#include <cstdint>

namespace lpb {

class LatencyHistogram {
 public:
  struct Summary {
    uint64_t count = 0;
    uint64_t max_ns = 0;
    double mean_ns = 0.0;
    double p50_ns = 0.0;
    double p99_ns = 0.0;
    double p999_ns = 0.0;
  };

  void Record(uint64_t nanos) {
    buckets_[BucketOf(nanos)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(nanos, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (nanos > seen &&
           !max_.compare_exchange_weak(seen, nanos,
                                       std::memory_order_relaxed)) {
    }
  }

  Summary Summarize() const {
    uint64_t counts[kBuckets];
    uint64_t total = 0;
    for (int b = 0; b < kBuckets; ++b) {
      counts[b] = buckets_[b].load(std::memory_order_relaxed);
      total += counts[b];
    }
    Summary out;
    out.count = total;
    out.max_ns = max_.load(std::memory_order_relaxed);
    if (total == 0) return out;
    out.mean_ns = static_cast<double>(sum_.load(std::memory_order_relaxed)) /
                  static_cast<double>(total);
    out.p50_ns = QuantileFrom(counts, total, 0.50);
    out.p99_ns = QuantileFrom(counts, total, 0.99);
    out.p999_ns = QuantileFrom(counts, total, 0.999);
    return out;
  }

 private:
  static constexpr int kSubBits = 3;
  static constexpr int kSub = 1 << kSubBits;  // sub-buckets per octave
  static constexpr int kBuckets = 64 * kSub;

  static int BucketOf(uint64_t v) {
    if (v < kSub) return static_cast<int>(v);  // exact small values
    const int msb = 63 - std::countl_zero(v);
    const int sub = static_cast<int>((v >> (msb - kSubBits)) & (kSub - 1));
    return msb * kSub + sub;
  }

  // Representative value (bucket midpoint) for quantile reads.
  static double BucketMid(int b) {
    if (b < kSub) return static_cast<double>(b);
    const int msb = b / kSub;
    const int sub = b % kSub;
    const uint64_t low =
        (uint64_t{1} << msb) +
        (static_cast<uint64_t>(sub) << (msb - kSubBits));
    const uint64_t width = uint64_t{1} << (msb - kSubBits);
    return static_cast<double>(low) + static_cast<double>(width) / 2.0;
  }

  static double QuantileFrom(const uint64_t (&counts)[kBuckets],
                             uint64_t total, double q) {
    const uint64_t target =
        static_cast<uint64_t>(q * static_cast<double>(total - 1)) + 1;
    uint64_t cumulative = 0;
    for (int b = 0; b < kBuckets; ++b) {
      cumulative += counts[b];
      if (cumulative >= target) return BucketMid(b);
    }
    return BucketMid(kBuckets - 1);
  }

  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

}  // namespace lpb

#endif  // LPB_UTIL_LATENCY_HISTOGRAM_H_
