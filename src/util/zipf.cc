#include "util/zipf.h"

#include <algorithm>
#include <cmath>

namespace lpb {

ZipfSampler::ZipfSampler(uint64_t n, double theta) : n_(n), theta_(theta) {
  cdf_.resize(n);
  double acc = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    acc += std::pow(static_cast<double>(k + 1), -theta);
    cdf_[k] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace lpb
