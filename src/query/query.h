// Full conjunctive (join) query representation (Eq. (6) of the paper):
//   Q(X) = R_1(V_1) ∧ ... ∧ R_m(V_m)
// Variables are interned to dense ids 0..n-1 so that variable sets can be
// bitmasks (util/bits.h) and entropy vectors can be arrays of size 2^n.
#ifndef LPB_QUERY_QUERY_H_
#define LPB_QUERY_QUERY_H_

#include <string>
#include <vector>

#include "util/bits.h"

namespace lpb {

// One atom R(X_{i1}, ..., X_{ik}). `vars[j]` is the query-variable id bound
// to the j-th column of the relation. The same relation name may appear in
// several atoms (self-joins).
struct Atom {
  std::string relation;
  std::vector<int> vars;

  VarSet var_set() const {
    VarSet s = 0;
    for (int v : vars) s |= VarBit(v);
    return s;
  }
};

class Query {
 public:
  Query() = default;
  explicit Query(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  int num_vars() const { return static_cast<int>(var_names_.size()); }
  int num_atoms() const { return static_cast<int>(atoms_.size()); }
  const std::vector<Atom>& atoms() const { return atoms_; }
  const Atom& atom(int i) const { return atoms_[i]; }

  const std::string& var_name(int v) const { return var_names_[v]; }
  const std::vector<std::string>& var_names() const { return var_names_; }

  // Id of the variable with the given name, or -1.
  int VarIndex(const std::string& name) const;

  // Interns a variable name, returning its id (existing or new).
  int AddVar(const std::string& name);

  // Adds an atom over named variables; unknown names are interned.
  // Returns the atom index.
  int AddAtom(const std::string& relation,
              const std::vector<std::string>& var_names);

  // All variables of the query as a bitmask.
  VarSet AllVars() const { return FullSet(num_vars()); }

  // Human-readable rendering, e.g. "R(X, Y), S(Y, Z)".
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<std::string> var_names_;
  std::vector<Atom> atoms_;
};

}  // namespace lpb

#endif  // LPB_QUERY_QUERY_H_
