// Join trees for α-acyclic queries (GYO-based construction).
//
// A join tree has one node per atom; for every variable, the nodes whose
// atoms contain it form a connected subtree (the running-intersection
// property). It exists iff the query is α-acyclic, and it drives the
// Yannakakis-style acyclic evaluation in exec/yannakakis.h.
#ifndef LPB_QUERY_JOIN_TREE_H_
#define LPB_QUERY_JOIN_TREE_H_

#include <optional>
#include <vector>

#include "query/query.h"
#include "util/bits.h"

namespace lpb {

struct JoinTree {
  // parent[i] = parent atom index of atom i, or -1 for the root. The tree
  // may be a forest for disconnected queries (several -1 entries).
  std::vector<int> parent;
  // Atom indices in a bottom-up order (every node precedes its parent).
  std::vector<int> bottom_up;

  int num_nodes() const { return static_cast<int>(parent.size()); }
  bool IsRoot(int i) const { return parent[i] < 0; }
};

// Builds a join tree via GYO ear removal. Returns std::nullopt when the
// query is not α-acyclic.
std::optional<JoinTree> BuildJoinTree(const Query& query);

// Verifies the running-intersection property of `tree` for `query`
// (used by tests; O(vars · atoms²)).
bool HasRunningIntersection(const Query& query, const JoinTree& tree);

}  // namespace lpb

#endif  // LPB_QUERY_JOIN_TREE_H_
