#include "query/query.h"

#include <cassert>

namespace lpb {

int Query::VarIndex(const std::string& name) const {
  for (int i = 0; i < num_vars(); ++i) {
    if (var_names_[i] == name) return i;
  }
  return -1;
}

int Query::AddVar(const std::string& name) {
  int idx = VarIndex(name);
  if (idx >= 0) return idx;
  assert(num_vars() < kMaxVars);
  var_names_.push_back(name);
  return num_vars() - 1;
}

int Query::AddAtom(const std::string& relation,
                   const std::vector<std::string>& names) {
  Atom atom;
  atom.relation = relation;
  atom.vars.reserve(names.size());
  for (const std::string& n : names) atom.vars.push_back(AddVar(n));
  atoms_.push_back(std::move(atom));
  return num_atoms() - 1;
}

std::string Query::ToString() const {
  std::string out;
  for (int i = 0; i < num_atoms(); ++i) {
    if (i > 0) out += ", ";
    out += atoms_[i].relation;
    out += "(";
    for (size_t j = 0; j < atoms_[i].vars.size(); ++j) {
      if (j > 0) out += ", ";
      out += var_names_[atoms_[i].vars[j]];
    }
    out += ")";
  }
  return out;
}

}  // namespace lpb
