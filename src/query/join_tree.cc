#include "query/join_tree.h"

#include <numeric>

namespace lpb {

std::optional<JoinTree> BuildJoinTree(const Query& query) {
  const int m = query.num_atoms();
  std::vector<VarSet> vars(m);
  for (int i = 0; i < m; ++i) vars[i] = query.atom(i).var_set();

  JoinTree tree;
  tree.parent.assign(m, -1);
  std::vector<bool> alive(m, true);
  int remaining = m;

  // GYO: repeatedly remove an "ear" — an atom whose variables shared with
  // the rest are covered by a single witness atom — and make the witness
  // its parent.
  bool progress = true;
  while (remaining > 1 && progress) {
    progress = false;
    for (int i = 0; i < m && remaining > 1; ++i) {
      if (!alive[i]) continue;
      VarSet shared = 0;
      for (int k = 0; k < m; ++k) {
        if (k != i && alive[k]) shared |= vars[i] & vars[k];
      }
      int witness = -1;
      for (int j = 0; j < m; ++j) {
        if (j != i && alive[j] && IsSubset(shared, vars[j])) {
          witness = j;
          break;
        }
      }
      if (witness < 0) continue;
      tree.parent[i] = witness;
      tree.bottom_up.push_back(i);
      alive[i] = false;
      --remaining;
      progress = true;
    }
  }
  if (remaining > 1) {
    // No ear found with >1 atoms left in some component: check whether the
    // leftovers are pairwise disconnected roots (legal forest) or a cyclic
    // core (not α-acyclic).
    for (int i = 0; i < m; ++i) {
      if (!alive[i]) continue;
      for (int j = i + 1; j < m; ++j) {
        if (alive[j] && Intersects(vars[i], vars[j])) return std::nullopt;
      }
    }
  }
  for (int i = 0; i < m; ++i) {
    if (alive[i]) tree.bottom_up.push_back(i);  // roots last
  }
  return tree;
}

bool HasRunningIntersection(const Query& query, const JoinTree& tree) {
  const int m = query.num_atoms();
  for (int v = 0; v < query.num_vars(); ++v) {
    std::vector<int> holders;
    for (int i = 0; i < m; ++i) {
      if (Contains(query.atom(i).var_set(), v)) holders.push_back(i);
    }
    if (holders.size() <= 1) continue;
    // Union-find over tree edges whose endpoints both hold v.
    std::vector<int> uf(m);
    std::iota(uf.begin(), uf.end(), 0);
    auto find = [&](int x) {
      while (uf[x] != x) x = uf[x] = uf[uf[x]];
      return x;
    };
    for (int i = 0; i < m; ++i) {
      const int p = tree.parent[i];
      if (p >= 0 && Contains(query.atom(i).var_set(), v) &&
          Contains(query.atom(p).var_set(), v)) {
        uf[find(i)] = find(p);
      }
    }
    const int root = find(holders[0]);
    for (int h : holders) {
      if (find(h) != root) return false;
    }
  }
  return true;
}

}  // namespace lpb
