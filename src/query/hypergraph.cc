#include "query/hypergraph.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <numeric>

namespace lpb {
namespace {

// Union-find over [0, n).
class DisjointSets {
 public:
  explicit DisjointSets(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }
  // Returns true if x and y were in different sets.
  bool Union(int x, int y) {
    x = Find(x);
    y = Find(y);
    if (x == y) return false;
    parent_[x] = y;
    return true;
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

Hypergraph::Hypergraph(const Query& query) : num_vars_(query.num_vars()) {
  edges_.reserve(query.num_atoms());
  for (const Atom& atom : query.atoms()) edges_.push_back(atom.var_set());
}

bool Hypergraph::IsAlphaAcyclic() const {
  std::vector<VarSet> edges = edges_;
  bool changed = true;
  while (changed && edges.size() > 1) {
    changed = false;
    // Remove isolated variables (occurring in exactly one edge).
    std::vector<int> occurrences(num_vars_, 0);
    for (VarSet e : edges) {
      for (int v : VarRange(e)) ++occurrences[v];
    }
    for (VarSet& e : edges) {
      for (int v : VarRange(e)) {
        if (occurrences[v] == 1) {
          e &= ~VarBit(v);
          changed = true;
        }
      }
    }
    // Remove edges contained in another edge.
    for (size_t i = 0; i < edges.size(); ++i) {
      for (size_t j = 0; j < edges.size(); ++j) {
        if (i == j) continue;
        if (IsSubset(edges[i], edges[j])) {
          edges.erase(edges.begin() + i);
          changed = true;
          --i;
          break;
        }
      }
    }
  }
  return edges.size() <= 1;
}

bool Hypergraph::IsBergeAcyclic() const {
  // Incidence graph nodes: used variables [0, num_vars_) and hyperedges
  // [num_vars_, num_vars_ + m). Forest iff #edges == #nodes - #components.
  const int m = num_edges();
  DisjointSets ds(num_vars_ + m);
  int incidences = 0;
  std::vector<bool> used(num_vars_, false);
  for (int e = 0; e < m; ++e) {
    for (int v : VarRange(edges_[e])) {
      used[v] = true;
      ++incidences;
      if (!ds.Union(v, num_vars_ + e)) return false;  // closed a cycle
    }
  }
  (void)incidences;
  return true;
}

bool Hypergraph::IsConnected() const {
  const int m = num_edges();
  if (m <= 1) return true;
  DisjointSets ds(m);
  int components = m;
  for (int i = 0; i < m; ++i) {
    for (int j = i + 1; j < m; ++j) {
      if (Intersects(edges_[i], edges_[j]) && ds.Union(i, j)) --components;
    }
  }
  return components == 1;
}

int Hypergraph::BinaryGirth() const {
  // Collect binary atoms as undirected variable pairs.
  std::vector<std::pair<int, int>> pairs;
  for (VarSet e : edges_) {
    if (SetSize(e) == 1) {
      // A binary atom R(X, X) is a self-loop on X.
      // (Unary atoms also land here; they are not cycles, so only count a
      // self-loop when the originating atom had two positions — we cannot
      // distinguish that from the VarSet alone, so unary sets are skipped.)
      continue;
    }
    if (SetSize(e) != 2) continue;
    int a = LowestVar(e);
    int b = LowestVar(e & (e - 1));
    pairs.emplace_back(a, b);
  }
  // Parallel edges between the same pair form a 2-cycle.
  std::vector<std::pair<int, int>> sorted = pairs;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i] == sorted[i - 1]) return 2;
  }

  // Girth = min over edges (u,v) of 1 + dist(u, v) in the graph minus that
  // edge. Exact, and cheap at query sizes.
  std::vector<std::vector<std::pair<int, int>>> adj(num_vars_);  // (nbr, edge)
  for (size_t i = 0; i < pairs.size(); ++i) {
    adj[pairs[i].first].emplace_back(pairs[i].second, static_cast<int>(i));
    adj[pairs[i].second].emplace_back(pairs[i].first, static_cast<int>(i));
  }
  int girth = 0;
  for (size_t skip = 0; skip < pairs.size(); ++skip) {
    const auto [src, dst] = pairs[skip];
    std::vector<int> dist(num_vars_, std::numeric_limits<int>::max());
    std::deque<int> queue{src};
    dist[src] = 0;
    while (!queue.empty()) {
      int u = queue.front();
      queue.pop_front();
      if (u == dst) break;
      for (auto [w, eid] : adj[u]) {
        if (eid == static_cast<int>(skip)) continue;
        if (dist[w] > dist[u] + 1) {
          dist[w] = dist[u] + 1;
          queue.push_back(w);
        }
      }
    }
    if (dist[dst] != std::numeric_limits<int>::max()) {
      int cycle = dist[dst] + 1;
      if (girth == 0 || cycle < girth) girth = cycle;
    }
  }
  return girth;
}

}  // namespace lpb
