// Structural analysis of a query's hypergraph: α-acyclicity (GYO ear
// removal), Berge-acyclicity, connectivity, and the girth of the binary
// atom graph (used by the comparison with Jayaraman et al. in Appendix B).
#ifndef LPB_QUERY_HYPERGRAPH_H_
#define LPB_QUERY_HYPERGRAPH_H_

#include <vector>

#include "query/query.h"
#include "util/bits.h"

namespace lpb {

class Hypergraph {
 public:
  explicit Hypergraph(const Query& query);

  int num_vars() const { return num_vars_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  const std::vector<VarSet>& edges() const { return edges_; }

  // α-acyclicity via GYO ear removal: repeatedly delete isolated variables
  // (occurring in exactly one edge) and edges contained in another edge;
  // acyclic iff everything is eliminated.
  bool IsAlphaAcyclic() const;

  // Berge-acyclicity: the bipartite incidence graph (variables vs edges,
  // counting only variables occurring in >= 1 edge) is a forest. Implies
  // α-acyclicity and that all degree sequences over single join variables
  // are "simple" in the paper's sense.
  bool IsBergeAcyclic() const;

  // True if the variable-intersection graph of the edges is connected
  // (edges sharing a variable are adjacent). Vacuously true with <= 1 edge.
  bool IsConnected() const;

  // Girth of the graph whose nodes are variables and whose edges are the
  // *binary* atoms (atoms of other arities are ignored). Returns the length
  // of the shortest cycle, or 0 if the binary graph is acyclic. Parallel
  // edges between the same pair of variables form a cycle of length 2; a
  // self-loop has girth 1.
  int BinaryGirth() const;

 private:
  int num_vars_;
  std::vector<VarSet> edges_;
};

}  // namespace lpb

#endif  // LPB_QUERY_HYPERGRAPH_H_
