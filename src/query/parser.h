// A tiny Datalog-style parser for join queries.
//
// Grammar (whitespace-insensitive):
//   query := [head ":-"] atom ("," atom)* ["."]
//   head  := ident "(" ident ("," ident)* ")"
//   atom  := ident "(" ident ("," ident)* ")"
// Example: "Q(X,Y,Z) :- R(X,Y), S(Y,Z), T(Z,X)". The head, if present, must
// list every body variable (full conjunctive queries only).
#ifndef LPB_QUERY_PARSER_H_
#define LPB_QUERY_PARSER_H_

#include <optional>
#include <string>

#include "query/query.h"

namespace lpb {

// Parses `text` into a Query. Returns std::nullopt and fills *error (if
// non-null) on malformed input.
std::optional<Query> ParseQuery(const std::string& text,
                                std::string* error = nullptr);

}  // namespace lpb

#endif  // LPB_QUERY_PARSER_H_
