#include "query/parser.h"

#include <cctype>
#include <vector>

namespace lpb {
namespace {

class Scanner {
 public:
  explicit Scanner(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeTurnstile() {
    SkipSpace();
    if (pos_ + 1 < text_.size() && text_[pos_] == ':' && text_[pos_ + 1] == '-') {
      pos_ += 2;
      return true;
    }
    return false;
  }

  // Identifier: [A-Za-z_][A-Za-z0-9_]*
  bool Ident(std::string* out) {
    SkipSpace();
    size_t start = pos_;
    auto is_start = [](char c) {
      return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
    };
    auto is_cont = [](char c) {
      return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    };
    if (pos_ >= text_.size() || !is_start(text_[pos_])) return false;
    ++pos_;
    while (pos_ < text_.size() && is_cont(text_[pos_])) ++pos_;
    *out = text_.substr(start, pos_ - start);
    return true;
  }

  size_t pos() const { return pos_; }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

struct RawAtom {
  std::string name;
  std::vector<std::string> vars;
};

bool ParseAtom(Scanner& scan, RawAtom* atom, std::string* error) {
  if (!scan.Ident(&atom->name)) {
    if (error) *error = "expected relation name";
    return false;
  }
  if (!scan.Consume('(')) {
    if (error) *error = "expected '(' after relation name";
    return false;
  }
  do {
    std::string var;
    if (!scan.Ident(&var)) {
      if (error) *error = "expected variable name";
      return false;
    }
    atom->vars.push_back(std::move(var));
  } while (scan.Consume(','));
  if (!scan.Consume(')')) {
    if (error) *error = "expected ')' after variable list";
    return false;
  }
  return true;
}

}  // namespace

std::optional<Query> ParseQuery(const std::string& text, std::string* error) {
  Scanner scan(text);
  RawAtom first;
  if (!ParseAtom(scan, &first, error)) return std::nullopt;

  std::vector<RawAtom> body;
  std::string head_name;
  std::vector<std::string> head_vars;
  bool has_head = false;

  if (scan.ConsumeTurnstile()) {
    has_head = true;
    head_name = first.name;
    head_vars = first.vars;
    RawAtom atom;
    if (!ParseAtom(scan, &atom, error)) return std::nullopt;
    body.push_back(std::move(atom));
  } else {
    body.push_back(std::move(first));
  }
  while (scan.Consume(',')) {
    RawAtom atom;
    if (!ParseAtom(scan, &atom, error)) return std::nullopt;
    body.push_back(std::move(atom));
  }
  scan.Consume('.');
  if (!scan.AtEnd()) {
    if (error) *error = "unexpected trailing input";
    return std::nullopt;
  }

  Query query(has_head ? head_name : "Q");
  // Intern head variables first so their ids follow the head order.
  for (const std::string& v : head_vars) query.AddVar(v);
  for (const RawAtom& atom : body) query.AddAtom(atom.name, atom.vars);

  if (has_head) {
    // Full conjunctive queries only: the head must cover all body variables.
    VarSet head_set = 0;
    for (const std::string& v : head_vars) head_set |= VarBit(query.VarIndex(v));
    if (head_set != query.AllVars()) {
      if (error) *error = "head must contain every body variable (full CQ)";
      return std::nullopt;
    }
  }
  return query;
}

}  // namespace lpb
