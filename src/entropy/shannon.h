// Shannon (elemental) information inequalities over n variables, and a
// decision procedure for validity of linear information inequalities over
// the polymatroid cone Γn (Sec 3: "Shannon inequalities are ... decidable
// in exponential time").
#ifndef LPB_ENTROPY_SHANNON_H_
#define LPB_ENTROPY_SHANNON_H_

#include <vector>

#include "entropy/set_function.h"
#include "util/bits.h"

namespace lpb {

// A sparse linear form Σ terms.coef · h(terms.set) over entropy vectors.
struct EntropyTerm {
  VarSet set = 0;
  double coef = 0.0;
};
using LinearForm = std::vector<EntropyTerm>;

// Evaluates a linear form at h.
double Evaluate(const LinearForm& form, const SetFunction& h);

// All elemental Shannon inequalities `form(h) >= 0` for n variables:
//   monotonicity:  h([n]) - h([n] - {i}) >= 0                (n of them)
//   submodularity: h(S∪{i}) + h(S∪{j}) - h(S∪{i,j}) - h(S) >= 0
//                  for i < j, S ⊆ [n]∖{i,j}                  (C(n,2)·2^(n-2))
// Every Shannon inequality is a nonnegative combination of these.
std::vector<LinearForm> ElementalInequalities(int n);

// True iff `form(h) >= 0` holds for every polymatroid h ∈ Γn (a Shannon
// inequality). Decided by minimizing form(h) over the normalized cone via
// the simplex solver.
bool IsValidShannon(int n, const LinearForm& form, double eps = 1e-7);

// The Zhang-Yeung non-Shannon inequality (60) over variables (A,B,X,Y) given
// as ids in `vars` (size 4):
//   I(X;Y) <= 2I(X;Y|A) + I(X;Y|B) + I(A;B) + I(A;Y|X) + I(A;X|Y),
// rewritten as a LinearForm F with F(h) >= 0. Valid for all entropic vectors
// but NOT for all polymatroids (Appendix D.2 builds the 35/36 gap from it).
LinearForm ZhangYeungForm(int n, const std::vector<int>& vars);

}  // namespace lpb

#endif  // LPB_ENTROPY_SHANNON_H_
