// Set functions h : 2^X -> R over a variable set of size n, stored densely
// and indexed by VarSet bitmask. This is the vector space R^{2^[n]} of the
// paper's Sec 3; polymatroids, entropic vectors, step functions and modular
// functions are all SetFunction instances.
#ifndef LPB_ENTROPY_SET_FUNCTION_H_
#define LPB_ENTROPY_SET_FUNCTION_H_

#include <cstddef>
#include <vector>

#include "util/bits.h"

namespace lpb {

class SetFunction {
 public:
  SetFunction() : n_(0), h_(1, 0.0) {}
  explicit SetFunction(int n) : n_(n), h_(size_t{1} << n, 0.0) {}

  int num_vars() const { return n_; }
  size_t size() const { return h_.size(); }

  double operator[](VarSet s) const { return h_[s]; }
  double& operator[](VarSet s) { return h_[s]; }

  // h(V | U) = h(U ∪ V) - h(U).
  double Conditional(VarSet v, VarSet u) const { return h_[u | v] - h_[u]; }

  SetFunction& operator+=(const SetFunction& o);
  SetFunction& operator*=(double c);
  friend SetFunction operator+(SetFunction a, const SetFunction& b) {
    a += b;
    return a;
  }
  friend SetFunction operator*(double c, SetFunction a) {
    a *= c;
    return a;
  }

  // Max |h(S) - o(S)| over all S.
  double MaxDiff(const SetFunction& o) const;

  // The step function h_W (Eq. (27)): h_W(U) = 1 if W ∩ U ≠ ∅ else 0.
  static SetFunction Step(int n, VarSet w);

  // The modular function Σ_i weights[i] · h_{X_i}: h(U) = Σ_{i∈U} weights[i].
  static SetFunction Modular(int n, const std::vector<double>& weights);

  // Positive linear combination Σ_W alpha[W] · h_W of step functions — a
  // normal polymatroid when all coefficients are >= 0 (Sec 3). `alpha` is
  // indexed by VarSet and alpha[0] is ignored.
  static SetFunction NormalCombination(int n, const std::vector<double>& alpha);

 private:
  int n_;
  std::vector<double> h_;
};

}  // namespace lpb

#endif  // LPB_ENTROPY_SET_FUNCTION_H_
