#include "entropy/relation_entropy.h"

#include <cassert>
#include <cmath>
#include <vector>

namespace lpb {

SetFunction EntropyOfRelation(const Relation& rel) {
  const int a = rel.arity();
  assert(a <= kMaxVars);
  Relation dedup = rel;
  dedup.Deduplicate();
  const double num_rows = static_cast<double>(dedup.NumRows());

  SetFunction h(a);
  if (dedup.NumRows() == 0) return h;
  const VarSet full = FullSet(a);
  for (VarSet s = 1; s <= full; ++s) {
    std::vector<int> cols;
    for (int c : VarRange(s)) cols.push_back(c);
    std::vector<uint32_t> order = dedup.SortedOrder(cols);
    // Uniform distribution over rows: a group of c rows sharing the same
    // projection has marginal probability c / N, contributing
    // -(c/N) log2(c/N).
    double entropy = 0.0;
    size_t group = 1;
    for (size_t i = 1; i <= order.size(); ++i) {
      if (i < order.size() && dedup.RowsEqualOn(order[i - 1], order[i], cols)) {
        ++group;
        continue;
      }
      const double p = static_cast<double>(group) / num_rows;
      entropy -= p * std::log2(p);
      group = 1;
    }
    h[s] = entropy;
  }
  return h;
}

bool IsTotallyUniform(const Relation& rel, double eps) {
  Relation dedup = rel;
  dedup.Deduplicate();
  if (dedup.NumRows() == 0) return true;
  SetFunction h = EntropyOfRelation(dedup);
  const VarSet full = FullSet(dedup.arity());
  for (VarSet s = 1; s <= full; ++s) {
    std::vector<int> cols;
    for (int c : VarRange(s)) cols.push_back(c);
    const double log_proj =
        std::log2(static_cast<double>(dedup.DistinctCount(cols)));
    if (std::abs(log_proj - h[s]) > eps) return false;
  }
  return true;
}

}  // namespace lpb
