// Entropy of a relation instance: the entropic vector of the uniform
// probability distribution over its tuples (Sec 3 and Sec 6). Used to
// verify Lemma 4.1, total uniformity of normal relations, and tightness.
#ifndef LPB_ENTROPY_RELATION_ENTROPY_H_
#define LPB_ENTROPY_RELATION_ENTROPY_H_

#include "entropy/set_function.h"
#include "relation/relation.h"

namespace lpb {

// Entropic vector of the uniform distribution over the (deduplicated) rows
// of `rel`, indexed by bitmasks over the relation's own columns
// (bit i = column i). h(∅) = 0, h(full) = log2 |rel|.
SetFunction EntropyOfRelation(const Relation& rel);

// True if every marginal of the uniform distribution over `rel` is itself
// uniform: log2 |Π_V(rel)| == h(V) for all V (Sec 6, "totally uniform").
bool IsTotallyUniform(const Relation& rel, double eps = 1e-9);

}  // namespace lpb

#endif  // LPB_ENTROPY_RELATION_ENTROPY_H_
