// Polymatroid predicates and constructions (Sec 3 and Appendix B).
#ifndef LPB_ENTROPY_POLYMATROID_H_
#define LPB_ENTROPY_POLYMATROID_H_

#include <vector>

#include "entropy/set_function.h"

namespace lpb {

// True if h satisfies the basic Shannon inequalities (24)-(26):
// h(∅)=0, monotonicity, submodularity (checked via the elemental forms).
bool IsPolymatroid(const SetFunction& h, double eps = 1e-9);

// True if h(U) = Σ_{i∈U} h({i}) for all U.
bool IsModular(const SetFunction& h, double eps = 1e-9);

// The modularization of Lemma B.3: given a polymatroid h and a variable
// order pi (a permutation of 0..n-1), returns the modular function h' with
// h'(X_{pi_k}) = h(X_{pi_k} | X_{pi_0} ... X_{pi_{k-1}}). It satisfies
// h'(X) = h(X), h'(U) <= h(U), and h'(Xj|Xi) <= h(Xj|Xi) for pi-earlier i.
SetFunction Modularize(const SetFunction& h, const std::vector<int>& order);

}  // namespace lpb

#endif  // LPB_ENTROPY_POLYMATROID_H_
