#include "entropy/set_function.h"

#include <cassert>
#include <cmath>

namespace lpb {

SetFunction& SetFunction::operator+=(const SetFunction& o) {
  assert(n_ == o.n_);
  for (size_t s = 0; s < h_.size(); ++s) h_[s] += o.h_[s];
  return *this;
}

SetFunction& SetFunction::operator*=(double c) {
  for (double& v : h_) v *= c;
  return *this;
}

double SetFunction::MaxDiff(const SetFunction& o) const {
  assert(n_ == o.n_);
  double worst = 0.0;
  for (size_t s = 0; s < h_.size(); ++s) {
    worst = std::max(worst, std::abs(h_[s] - o.h_[s]));
  }
  return worst;
}

SetFunction SetFunction::Step(int n, VarSet w) {
  SetFunction f(n);
  const VarSet full = FullSet(n);
  for (VarSet s = 1; s <= full; ++s) {
    f[s] = Intersects(s, w) ? 1.0 : 0.0;
  }
  return f;
}

SetFunction SetFunction::Modular(int n, const std::vector<double>& weights) {
  assert(static_cast<int>(weights.size()) == n);
  SetFunction f(n);
  const VarSet full = FullSet(n);
  for (VarSet s = 1; s <= full; ++s) {
    double acc = 0.0;
    for (int v : VarRange(s)) acc += weights[v];
    f[s] = acc;
  }
  return f;
}

SetFunction SetFunction::NormalCombination(int n,
                                           const std::vector<double>& alpha) {
  assert(alpha.size() == (size_t{1} << n));
  SetFunction f(n);
  const VarSet full = FullSet(n);
  for (VarSet w = 1; w <= full; ++w) {
    const double a = alpha[w];
    if (a == 0.0) continue;
    for (VarSet s = 1; s <= full; ++s) {
      if (Intersects(s, w)) f[s] += a;
    }
  }
  return f;
}

}  // namespace lpb
