#include "entropy/shannon.h"

#include <cassert>
#include <map>

#include "lp/lp_problem.h"
#include "lp/simplex.h"

namespace lpb {

double Evaluate(const LinearForm& form, const SetFunction& h) {
  double acc = 0.0;
  for (const EntropyTerm& t : form) acc += t.coef * h[t.set];
  return acc;
}

std::vector<LinearForm> ElementalInequalities(int n) {
  std::vector<LinearForm> out;
  const VarSet full = FullSet(n);
  for (int i = 0; i < n; ++i) {
    out.push_back({{full, 1.0}, {full & ~VarBit(i), -1.0}});
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const VarSet ij = VarBit(i) | VarBit(j);
      const VarSet rest = full & ~ij;
      for (VarSet s : SubsetRange(rest)) {
        LinearForm f = {{s | VarBit(i), 1.0},
                        {s | VarBit(j), 1.0},
                        {s | ij, -1.0}};
        if (s != 0) f.push_back({s, -1.0});
        out.push_back(std::move(f));
      }
    }
  }
  return out;
}

namespace {

// Converts a linear form into LP terms over variables indexed by mask-1
// (the ∅ coordinate is pinned to 0 and dropped). Merges repeated sets.
std::vector<LpTerm> ToLpTerms(const LinearForm& form) {
  std::map<VarSet, double> merged;
  for (const EntropyTerm& t : form) {
    if (t.set == 0) continue;  // h(∅) = 0
    merged[t.set] += t.coef;
  }
  std::vector<LpTerm> terms;
  terms.reserve(merged.size());
  for (const auto& [set, coef] : merged) {
    if (coef != 0.0) terms.push_back({static_cast<int>(set) - 1, coef});
  }
  return terms;
}

}  // namespace

bool IsValidShannon(int n, const LinearForm& form, double eps) {
  // form(h) >= 0 for all h in the cone Γn iff the minimum of form(h) over
  // the normalized slice {h ∈ Γn : Σ_S h(S) <= 1} is >= 0.
  const int num_vars = (1 << n) - 1;
  LpProblem lp(num_vars);
  for (const LpTerm& t : ToLpTerms(form)) {
    lp.SetObjective(t.var, -t.coef);  // maximize -form == minimize form
  }
  for (const LinearForm& ineq : ElementalInequalities(n)) {
    lp.AddConstraint(ToLpTerms(ineq), LpSense::kGe, 0.0);
  }
  std::vector<LpTerm> norm;
  norm.reserve(num_vars);
  for (int v = 0; v < num_vars; ++v) norm.push_back({v, 1.0});
  lp.AddConstraint(std::move(norm), LpSense::kLe, 1.0);

  LpResult res = SolveLp(lp);
  assert(res.status == LpStatus::kOptimal);
  return -res.objective >= -eps;
}

LinearForm ZhangYeungForm(int n, const std::vector<int>& vars) {
  assert(vars.size() == 4);
  const VarSet a = VarBit(vars[0]), b = VarBit(vars[1]);
  const VarSet x = VarBit(vars[2]), y = VarBit(vars[3]);
  (void)n;
  // I(X;Y) <= 2I(X;Y|A) + I(X;Y|B) + I(A;B) + I(A;Y|X) + I(A;X|Y), expanded
  // into entropies (matches the expansion in Appendix D.2):
  // 0 <= 3h(XY) - 2h(X) - 2h(Y) - 4h(AXY) - h(BXY)
  //      + 3h(AX) + 3h(AY) + h(BX) + h(BY) - h(AB) - h(A).
  return LinearForm{
      {x | y, 3.0},     {x, -2.0},        {y, -2.0},
      {a | x | y, -4.0}, {b | x | y, -1.0}, {a | x, 3.0},
      {a | y, 3.0},     {b | x, 1.0},     {b | y, 1.0},
      {a | b, -1.0},    {a, -1.0},
  };
}

}  // namespace lpb
