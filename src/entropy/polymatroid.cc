#include "entropy/polymatroid.h"

#include <cassert>

namespace lpb {

bool IsPolymatroid(const SetFunction& h, double eps) {
  const int n = h.num_vars();
  const VarSet full = FullSet(n);
  if (h[0] < -eps || h[0] > eps) return false;
  // Elemental monotonicity: h(X) >= h(X - {i}).
  for (int i = 0; i < n; ++i) {
    if (h[full] < h[full & ~VarBit(i)] - eps) return false;
  }
  // Elemental submodularity: h(S∪{i}) + h(S∪{j}) >= h(S∪{i,j}) + h(S).
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const VarSet ij = VarBit(i) | VarBit(j);
      const VarSet rest = full & ~ij;
      for (VarSet s : SubsetRange(rest)) {
        if (h[s | VarBit(i)] + h[s | VarBit(j)] < h[s | ij] + h[s] - eps) {
          return false;
        }
      }
    }
  }
  return true;
}

bool IsModular(const SetFunction& h, double eps) {
  const int n = h.num_vars();
  const VarSet full = FullSet(n);
  for (VarSet s = 1; s <= full; ++s) {
    double sum = 0.0;
    for (int v : VarRange(s)) sum += h[VarBit(v)];
    if (h[s] < sum - eps || h[s] > sum + eps) return false;
  }
  return true;
}

SetFunction Modularize(const SetFunction& h, const std::vector<int>& order) {
  const int n = h.num_vars();
  assert(static_cast<int>(order.size()) == n);
  std::vector<double> weights(n, 0.0);
  VarSet prefix = 0;
  for (int v : order) {
    weights[v] = h.Conditional(VarBit(v), prefix);
    prefix |= VarBit(v);
  }
  return SetFunction::Modular(n, weights);
}

}  // namespace lpb
