#include "stats/collector.h"

#include <cassert>
#include <map>
#include <tuple>

#include "relation/degree_sequence.h"

namespace lpb {
namespace {

// First column of `atom` bound to query variable v, or -1.
int ColumnOfVar(const Atom& atom, int v) {
  for (size_t j = 0; j < atom.vars.size(); ++j) {
    if (atom.vars[j] == v) return static_cast<int>(j);
  }
  return -1;
}

std::vector<int> ColumnsOfVarSet(const Atom& atom, VarSet s) {
  std::vector<int> cols;
  for (int v : VarRange(s)) {
    int c = ColumnOfVar(atom, v);
    assert(c >= 0);
    cols.push_back(c);
  }
  return cols;
}

using CacheKey = std::tuple<std::string, std::vector<int>, std::vector<int>>;

const DegreeSequence& CachedDegrees(const Relation& rel,
                                    const std::vector<int>& u_cols,
                                    const std::vector<int>& v_cols,
                                    std::map<CacheKey, DegreeSequence>& cache) {
  CacheKey key{rel.name(), u_cols, v_cols};
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, ComputeDegreeSequence(rel, u_cols, v_cols)).first;
  }
  return it->second;
}

}  // namespace

std::vector<ConcreteStatistic> CollectStatistics(
    const Query& query, const Catalog& catalog,
    const CollectorOptions& options) {
  std::vector<ConcreteStatistic> stats;
  std::map<CacheKey, DegreeSequence> cache;

  for (int a = 0; a < query.num_atoms(); ++a) {
    const Atom& atom = query.atom(a);
    const Relation& rel = catalog.Get(atom.relation);
    const VarSet atom_vars = atom.var_set();

    if (options.include_cardinalities) {
      const std::vector<int> v_cols = ColumnsOfVarSet(atom, atom_vars);
      const DegreeSequence& deg = CachedDegrees(rel, {}, v_cols, cache);
      ConcreteStatistic stat;
      stat.sigma = Conditional{0, atom_vars};
      stat.p = 1.0;
      stat.log_b = deg.Log2NormP(1.0);
      stat.guard_atom = a;
      stat.label = ToString(stat, query);
      stats.push_back(std::move(stat));
    }

    for (VarSet u : SubsetRange(atom_vars)) {
      const int usize = SetSize(u);
      if (usize == 0 || usize > options.max_u_size) continue;
      const VarSet v = atom_vars & ~u;
      if (v == 0) continue;
      const std::vector<int> u_cols = ColumnsOfVarSet(atom, u);
      const std::vector<int> v_cols = ColumnsOfVarSet(atom, v);
      const DegreeSequence& deg = CachedDegrees(rel, u_cols, v_cols, cache);
      for (double p : options.norms) {
        ConcreteStatistic stat;
        stat.sigma = Conditional{u, v};
        stat.p = p;
        stat.log_b = deg.Log2NormP(p);
        stat.guard_atom = a;
        stat.label = ToString(stat, query);
        stats.push_back(std::move(stat));
      }
    }
  }
  return stats;
}

double MeasureLog2Norm(const Query& query, int atom_index,
                       const Catalog& catalog, Conditional sigma, double p) {
  sigma = Normalize(sigma);
  const Atom& atom = query.atom(atom_index);
  const Relation& rel = catalog.Get(atom.relation);
  assert(IsSubset(sigma.All(), atom.var_set()));
  const std::vector<int> u_cols = ColumnsOfVarSet(atom, sigma.u);
  const std::vector<int> v_cols = ColumnsOfVarSet(atom, sigma.v);
  return ComputeDegreeSequence(rel, u_cols, v_cols).Log2NormP(p);
}

}  // namespace lpb
