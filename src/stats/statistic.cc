#include "stats/statistic.h"

#include <cmath>

#include "relation/degree_sequence.h"

namespace lpb {

LinearForm ConcreteStatistic::Lhs() const {
  const double inv_p = (p >= kInfNorm / 2) ? 0.0 : 1.0 / p;
  LinearForm form;
  if (sigma.All() != 0) form.push_back({sigma.All(), 1.0});
  if (sigma.u != 0) form.push_back({sigma.u, inv_p - 1.0});
  return form;
}

Conditional Normalize(Conditional sigma) {
  sigma.v &= ~sigma.u;
  return sigma;
}

namespace {

std::string VarList(VarSet s, const Query& query) {
  std::string out;
  bool first = true;
  for (int v : VarRange(s)) {
    if (!first) out += ",";
    out += query.var_name(v);
    first = false;
  }
  return out;
}

}  // namespace

std::string ToString(const Conditional& sigma, const Query& query) {
  return "(" + VarList(sigma.v, query) + "|" + VarList(sigma.u, query) + ")";
}

std::string ToString(const ConcreteStatistic& stat, const Query& query) {
  std::string guard = stat.guard_atom >= 0
                          ? query.atom(stat.guard_atom).relation
                          : std::string("?");
  std::string p_str = (stat.p >= kInfNorm / 2)
                          ? std::string("inf")
                          : std::to_string(stat.p);
  // Trim trailing zeros of the double rendering.
  while (p_str.size() > 1 && p_str.back() == '0') p_str.pop_back();
  if (!p_str.empty() && p_str.back() == '.') p_str.pop_back();
  return guard + ": " + ToString(stat.sigma, query) + " p=" + p_str +
         " log2B=" + std::to_string(stat.log_b);
}

bool AllSimple(const std::vector<ConcreteStatistic>& stats) {
  for (const ConcreteStatistic& s : stats) {
    if (!s.sigma.IsSimple()) return false;
  }
  return true;
}

}  // namespace lpb
