// Statistics collection: computes concrete ℓp-norm statistics from a
// database instance for a given query ("We follow the standard assumption
// in cardinality estimation that several ℓp-norms are pre-computed", Sec 1).
#ifndef LPB_STATS_COLLECTOR_H_
#define LPB_STATS_COLLECTOR_H_

#include <vector>

#include "query/query.h"
#include "relation/catalog.h"
#include "relation/degree_sequence.h"
#include "stats/statistic.h"

namespace lpb {

struct CollectorOptions {
  // Norm indices to collect for every degree sequence; kInfNorm allowed.
  std::vector<double> norms = {1.0, 2.0, kInfNorm};
  // Max size of the conditioning set U. 1 = simple statistics only (the
  // paper's JOB experiments use simple statistics exclusively).
  int max_u_size = 1;
  // Also emit the cardinality statistic |Π_vars(R)| (p=1, U=∅) per atom.
  bool include_cardinalities = true;
};

// For every atom R(V) of `query` and every U ⊆ V with 0 < |U| <=
// max_u_size, emits ||deg_R(V∖U | U)||_p <= (measured value) for each
// requested p, plus per-atom cardinality assertions. Duplicate (relation,
// conditional, p) combinations across self-join atoms are computed once and
// emitted once per guarding atom (the bound LP needs each atom's guard).
std::vector<ConcreteStatistic> CollectStatistics(
    const Query& query, const Catalog& catalog,
    const CollectorOptions& options = {});

// Single-statistic helper: the measured log2 ||deg_R(V|U)||_p where U/V are
// given as query-variable sets interpreted under `atom`'s binding. Variables
// bound to several columns of the atom (e.g. R(X,X)) use the first column.
double MeasureLog2Norm(const Query& query, int atom_index,
                       const Catalog& catalog, Conditional sigma, double p);

}  // namespace lpb

#endif  // LPB_STATS_COLLECTOR_H_
