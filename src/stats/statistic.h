// Abstract and concrete ℓp statistics on degree sequences (Sec 1.2).
//
// An abstract conditional σ = (V|U) over query variables, a norm index
// p ∈ (0, ∞], and a concrete value B form the statistic
//   ||deg_R(V|U)||_p <= B,
// guarded by the relation R of some atom. Its information-theoretic shadow
// (Lemma 4.1 / Eq. (7)) is the linear constraint
//   (1/p) h(U) + h(V|U) <= log2 B
// on entropy vectors, which is what the bound engines consume.
#ifndef LPB_STATS_STATISTIC_H_
#define LPB_STATS_STATISTIC_H_

#include <string>
#include <vector>

#include "entropy/shannon.h"
#include "query/query.h"
#include "util/bits.h"

namespace lpb {

// (V | U) over query variables. V is kept disjoint from U (Normalize).
struct Conditional {
  VarSet u = 0;  // the "given" side; |U| <= 1 makes the conditional simple
  VarSet v = 0;

  VarSet All() const { return u | v; }
  bool IsSimple() const { return SetSize(u) <= 1; }
};

struct ConcreteStatistic {
  Conditional sigma;
  double p = 1.0;       // norm index, kInfNorm for ℓ∞
  double log_b = 0.0;   // log2 of the asserted bound B
  int guard_atom = -1;  // index of the guarding atom in the query, or -1
  std::string label;    // human-readable provenance, e.g. "R: (Y|X) p=2"

  // The linear form (1/p)h(U) + h(U∪V) - h(U) as entropy terms; pairs with
  // `<= log_b` in the bound LPs.
  LinearForm Lhs() const;
};

// Normalizes σ so that V ∩ U = ∅ (deg(V|U) = deg(V∖U|U) since the U part
// of an edge is fixed).
Conditional Normalize(Conditional sigma);

// Renders "(Y,Z|X) p=2" style labels using the query's variable names.
std::string ToString(const Conditional& sigma, const Query& query);
std::string ToString(const ConcreteStatistic& stat, const Query& query);

// True if every statistic is simple (|U| <= 1) — the regime where the
// polymatroid bound is tight (Sec 6).
bool AllSimple(const std::vector<ConcreteStatistic>& stats);

}  // namespace lpb

#endif  // LPB_STATS_STATISTIC_H_
