#include "relation/csv.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace lpb {
namespace {

std::vector<std::string> SplitLine(const std::string& line, char delim) {
  std::vector<std::string> fields;
  std::string field;
  for (char c : line) {
    if (c == delim) {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c != '\r') {
      field += c;
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

std::string Trim(const std::string& s) {
  size_t a = 0, b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
  return s.substr(a, b - a);
}

bool ParseValue(const std::string& field, Value* out) {
  const std::string t = Trim(field);
  if (t.empty()) return false;
  Value v = 0;
  for (char c : t) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    v = v * 10 + static_cast<Value>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

std::optional<Relation> RelationFromCsv(const std::string& name,
                                        const std::string& text,
                                        const CsvOptions& options,
                                        std::string* error) {
  std::istringstream in(text);
  std::string line;
  int arity = -1;
  bool saw_header = false;
  std::vector<std::string> attrs;
  std::vector<std::vector<Value>> rows;
  size_t line_no = 0;

  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> fields = SplitLine(line, options.delimiter);
    if (options.has_header && !saw_header) {
      saw_header = true;
      arity = static_cast<int>(fields.size());
      for (std::string& f : fields) attrs.push_back(Trim(f));
      continue;
    }
    if (arity < 0) {
      arity = static_cast<int>(fields.size());
      for (int c = 0; c < arity; ++c) attrs.push_back("c" + std::to_string(c));
    }
    if (static_cast<int>(fields.size()) != arity) {
      if (error) {
        *error = "line " + std::to_string(line_no) + ": expected " +
                 std::to_string(arity) + " fields, got " +
                 std::to_string(fields.size());
      }
      return std::nullopt;
    }
    std::vector<Value> row(arity);
    for (int c = 0; c < arity; ++c) {
      if (!ParseValue(fields[c], &row[c])) {
        if (error) {
          *error = "line " + std::to_string(line_no) + ": field " +
                   std::to_string(c) + " is not an unsigned integer";
        }
        return std::nullopt;
      }
    }
    rows.push_back(std::move(row));
  }
  if (arity < 0) {
    if (error) *error = "no data rows";
    return std::nullopt;
  }
  Relation rel(name, std::move(attrs));
  rel.Reserve(rows.size());
  for (const auto& row : rows) rel.AddRow(row);
  return rel;
}

std::optional<Relation> LoadRelationCsv(const std::string& name,
                                        const std::string& path,
                                        const CsvOptions& options,
                                        std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  return RelationFromCsv(name, buf.str(), options, error);
}

std::string RelationToCsv(const Relation& rel, const CsvOptions& options) {
  std::string out;
  if (options.has_header) {
    for (int c = 0; c < rel.arity(); ++c) {
      if (c) out += options.delimiter;
      out += rel.attr(c);
    }
    out += '\n';
  }
  char buf[32];
  for (size_t r = 0; r < rel.NumRows(); ++r) {
    for (int c = 0; c < rel.arity(); ++c) {
      if (c) out += options.delimiter;
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(rel.At(r, c)));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

bool SaveRelationCsv(const Relation& rel, const std::string& path,
                     const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) return false;
  out << RelationToCsv(rel, options);
  return static_cast<bool>(out);
}

}  // namespace lpb
