#include "relation/relation.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace lpb {

Relation::Relation(std::string name, std::vector<std::string> attrs)
    : name_(std::move(name)), attrs_(std::move(attrs)) {
  cols_.resize(attrs_.size());
}

int Relation::AttrIndex(const std::string& name) const {
  for (int i = 0; i < arity(); ++i) {
    if (attrs_[i] == name) return i;
  }
  return -1;
}

void Relation::AddRow(const std::vector<Value>& row) {
  assert(static_cast<int>(row.size()) == arity());
  for (int i = 0; i < arity(); ++i) cols_[i].push_back(row[i]);
  ++num_rows_;
}

void Relation::AddRow(std::initializer_list<Value> row) {
  assert(static_cast<int>(row.size()) == arity());
  int i = 0;
  for (Value v : row) cols_[i++].push_back(v);
  ++num_rows_;
}

void Relation::Reserve(size_t rows) {
  for (auto& c : cols_) c.reserve(rows);
}

bool Relation::RowsEqualOn(uint32_t a, uint32_t b,
                           const std::vector<int>& cols) const {
  for (int c : cols) {
    if (cols_[c][a] != cols_[c][b]) return false;
  }
  return true;
}

bool Relation::RowLessOn(uint32_t a, uint32_t b,
                         const std::vector<int>& cols) const {
  for (int c : cols) {
    if (cols_[c][a] != cols_[c][b]) return cols_[c][a] < cols_[c][b];
  }
  return false;
}

std::vector<uint32_t> Relation::SortedOrder(
    const std::vector<int>& cols) const {
  std::vector<uint32_t> order(num_rows_);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return RowLessOn(a, b, cols);
  });
  return order;
}

size_t Relation::DistinctCount(const std::vector<int>& cols) const {
  if (num_rows_ == 0) return 0;
  std::vector<uint32_t> order = SortedOrder(cols);
  size_t distinct = 1;
  for (size_t i = 1; i < order.size(); ++i) {
    if (!RowsEqualOn(order[i - 1], order[i], cols)) ++distinct;
  }
  return distinct;
}

Relation Relation::Project(const std::vector<int>& cols) const {
  std::vector<std::string> names;
  names.reserve(cols.size());
  for (int c : cols) names.push_back(attrs_[c]);
  Relation out(name_, std::move(names));
  if (num_rows_ == 0) return out;
  std::vector<uint32_t> order = SortedOrder(cols);
  std::vector<Value> row(cols.size());
  for (size_t i = 0; i < order.size(); ++i) {
    if (i > 0 && RowsEqualOn(order[i - 1], order[i], cols)) continue;
    for (size_t j = 0; j < cols.size(); ++j) row[j] = cols_[cols[j]][order[i]];
    out.AddRow(row);
  }
  return out;
}

void Relation::Deduplicate() {
  std::vector<int> all(arity());
  std::iota(all.begin(), all.end(), 0);
  Relation deduped = Project(all);
  cols_ = std::move(deduped.cols_);
  num_rows_ = deduped.num_rows_;
}

}  // namespace lpb
