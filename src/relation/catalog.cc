#include "relation/catalog.h"

#include <cassert>
#include <utility>

namespace lpb {

void Catalog::Add(Relation rel) {
  std::string name = rel.name();
  assert(!name.empty());
  relations_.insert_or_assign(std::move(name), std::move(rel));
}

bool Catalog::Has(const std::string& name) const {
  return relations_.count(name) > 0;
}

const Relation& Catalog::Get(const std::string& name) const {
  auto it = relations_.find(name);
  assert(it != relations_.end());
  return it->second;
}

Relation* Catalog::GetMutable(const std::string& name) {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

}  // namespace lpb
