// Lossy degree-sequence compression (the SafeBound [7] idea referenced in
// Sec 1.3 / Appendix C.3): real degree sequences are too large to store, so
// systems keep a small *dominating* summary — the top-k degrees exactly
// plus per-bucket maxima for the tail. Any bound computed from the
// compressed sequence (DSB, ℓp-norms) remains a sound upper bound because
// the summary dominates the original coordinatewise.
#ifndef LPB_RELATION_COMPRESSED_SEQUENCE_H_
#define LPB_RELATION_COMPRESSED_SEQUENCE_H_

#include <cstdint>

#include "relation/degree_sequence.h"

namespace lpb {

struct CompressionOptions {
  // Number of head degrees stored exactly.
  int exact_head = 8;
  // Number of geometric buckets for the tail; each bucket is replaced by
  // its maximum degree.
  int tail_buckets = 8;
};

// Returns a degree sequence of the same length that dominates `d`
// coordinatewise (d'_i >= d_i) while storing only
// exact_head + tail_buckets distinct values.
DegreeSequence CompressDominating(const DegreeSequence& d,
                                  const CompressionOptions& options = {});

// Number of distinct degree values (the storage footprint of a summary).
size_t DistinctDegreeValues(const DegreeSequence& d);

}  // namespace lpb

#endif  // LPB_RELATION_COMPRESSED_SEQUENCE_H_
