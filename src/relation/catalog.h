// A named collection of relations: the database instance D of the paper.
#ifndef LPB_RELATION_CATALOG_H_
#define LPB_RELATION_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "relation/relation.h"

namespace lpb {

class Catalog {
 public:
  // Adds (or replaces) a relation under its own name.
  void Add(Relation rel);

  bool Has(const std::string& name) const;
  const Relation& Get(const std::string& name) const;
  Relation* GetMutable(const std::string& name);

  std::vector<std::string> Names() const;
  size_t size() const { return relations_.size(); }

 private:
  std::map<std::string, Relation> relations_;
};

}  // namespace lpb

#endif  // LPB_RELATION_CATALOG_H_
