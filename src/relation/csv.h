// CSV import/export for relations — lets users run the estimator on their
// own data (e.g. actual SNAP edge lists) without recompiling.
//
// Format: an optional header row with attribute names, then one row of
// unsigned integers per tuple. The delimiter defaults to ',' and may be
// any single character (tab for SNAP .txt files). Lines starting with '#'
// are skipped (SNAP convention).
#ifndef LPB_RELATION_CSV_H_
#define LPB_RELATION_CSV_H_

#include <optional>
#include <string>

#include "relation/relation.h"

namespace lpb {

struct CsvOptions {
  char delimiter = ',';
  // Treat the first non-comment row as attribute names. When false, the
  // attributes are named c0, c1, ...
  bool has_header = true;
};

// Parses CSV text into a relation named `name`. Returns std::nullopt and
// fills *error on malformed input (ragged rows, non-numeric fields).
std::optional<Relation> RelationFromCsv(const std::string& name,
                                        const std::string& text,
                                        const CsvOptions& options = {},
                                        std::string* error = nullptr);

// Reads a CSV file from disk; same semantics as RelationFromCsv.
std::optional<Relation> LoadRelationCsv(const std::string& name,
                                        const std::string& path,
                                        const CsvOptions& options = {},
                                        std::string* error = nullptr);

// Serializes a relation (header + rows).
std::string RelationToCsv(const Relation& rel, const CsvOptions& options = {});

// Writes a relation to disk; returns false on I/O failure.
bool SaveRelationCsv(const Relation& rel, const std::string& path,
                     const CsvOptions& options = {});

}  // namespace lpb

#endif  // LPB_RELATION_CSV_H_
