#include "relation/compressed_sequence.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace lpb {

DegreeSequence CompressDominating(const DegreeSequence& d,
                                  const CompressionOptions& options) {
  const auto& deg = d.degrees();
  const size_t n = deg.size();
  std::vector<uint64_t> out(deg.begin(), deg.end());
  const size_t head = std::min<size_t>(options.exact_head, n);
  if (head >= n) return DegreeSequence(std::move(out));

  // Tail: geometric buckets by rank, each replaced by its max (= first
  // element, as the sequence is sorted non-increasing).
  const size_t tail_len = n - head;
  const int buckets = std::max(1, options.tail_buckets);
  // Bucket b spans ranks [head + tail_len^{b/B}, head + tail_len^{(b+1)/B})
  // — geometric in rank so heavy ranks get fine resolution.
  size_t start = head;
  for (int b = 0; b < buckets && start < n; ++b) {
    size_t end;
    if (b + 1 == buckets) {
      end = n;
    } else {
      const double frac = std::pow(static_cast<double>(tail_len),
                                   static_cast<double>(b + 1) / buckets);
      end = std::min(n, head + std::max<size_t>(
                              static_cast<size_t>(std::llround(frac)),
                              start - head + 1));
    }
    const uint64_t bucket_max = out[start];  // sorted: first is the max
    for (size_t i = start; i < end; ++i) out[i] = bucket_max;
    start = end;
  }
  return DegreeSequence(std::move(out));
}

size_t DistinctDegreeValues(const DegreeSequence& d) {
  std::set<uint64_t> values(d.degrees().begin(), d.degrees().end());
  return values.size();
}

}  // namespace lpb
