#include "relation/degree_sequence.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>

namespace lpb {

DegreeSequence::DegreeSequence(std::vector<uint64_t> degrees)
    : degrees_(std::move(degrees)) {
  std::sort(degrees_.begin(), degrees_.end(), std::greater<uint64_t>());
  while (!degrees_.empty() && degrees_.back() == 0) degrees_.pop_back();
}

uint64_t DegreeSequence::Total() const {
  uint64_t total = 0;
  for (uint64_t d : degrees_) total += d;
  return total;
}

double DegreeSequence::NormP(double p) const {
  if (degrees_.empty()) return 0.0;
  return std::exp2(Log2NormP(p));
}

double DegreeSequence::Log2NormP(double p) const {
  assert(p > 0.0);
  if (degrees_.empty()) return -kInfNorm;
  if (p >= kInfNorm / 2) return std::log2(static_cast<double>(degrees_[0]));
  // log2 (sum_i d_i^p)^{1/p} via a base-2 log-sum-exp anchored at the max
  // term, so the result stays finite for large p (d^p overflows double for
  // p ~ 30 and d ~ 10^11).
  const double max_log = p * std::log2(static_cast<double>(degrees_[0]));
  double sum = 0.0;
  for (uint64_t d : degrees_) {
    sum += std::exp2(p * std::log2(static_cast<double>(d)) - max_log);
  }
  return (max_log + std::log2(sum)) / p;
}

bool DegreeSequence::DominatedBy(const DegreeSequence& other) const {
  if (degrees_.size() > other.degrees_.size()) return false;
  for (size_t i = 0; i < degrees_.size(); ++i) {
    if (degrees_[i] > other.degrees_[i]) return false;
  }
  return true;
}

DegreeSequence ComputeDegreeSequence(const Relation& rel,
                                     const std::vector<int>& u_cols,
                                     const std::vector<int>& v_cols) {
  if (rel.NumRows() == 0) return DegreeSequence();

  std::vector<int> uv = u_cols;
  uv.insert(uv.end(), v_cols.begin(), v_cols.end());
  std::vector<uint32_t> order = rel.SortedOrder(uv);

  std::vector<uint64_t> degrees;
  uint64_t current = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    const bool same_uv =
        i > 0 && rel.RowsEqualOn(order[i - 1], order[i], uv);
    if (same_uv) continue;  // duplicate (u, v) edge
    const bool same_u =
        i > 0 && rel.RowsEqualOn(order[i - 1], order[i], u_cols);
    if (same_u) {
      ++current;
    } else {
      if (current > 0) degrees.push_back(current);
      current = 1;
    }
  }
  if (current > 0) degrees.push_back(current);
  return DegreeSequence(std::move(degrees));
}

}  // namespace lpb
