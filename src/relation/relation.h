// In-memory column-store relations over unsigned 64-bit values.
//
// This is the relational substrate for the whole library: statistics are
// collected from Relation instances, queries are evaluated against them,
// and the data generators produce them. Values are opaque uint64_t ids
// (dictionary encoding of real data is out of scope for the paper's
// experiments, which are all over integer keys).
#ifndef LPB_RELATION_RELATION_H_
#define LPB_RELATION_RELATION_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace lpb {

using Value = uint64_t;

class Relation {
 public:
  Relation() = default;
  // Creates an empty relation with the given attribute names.
  Relation(std::string name, std::vector<std::string> attrs);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  int arity() const { return static_cast<int>(attrs_.size()); }
  size_t NumRows() const { return num_rows_; }
  const std::vector<std::string>& attrs() const { return attrs_; }
  const std::string& attr(int i) const { return attrs_[i]; }

  // Index of the attribute with the given name, or -1.
  int AttrIndex(const std::string& name) const;

  // Appends one row; `row` must have `arity()` values.
  void AddRow(const std::vector<Value>& row);
  void AddRow(std::initializer_list<Value> row);
  void Reserve(size_t rows);

  Value At(size_t row, int col) const { return cols_[col][row]; }
  const std::vector<Value>& Column(int col) const { return cols_[col]; }

  // Row indices sorted lexicographically by the given columns.
  std::vector<uint32_t> SortedOrder(const std::vector<int>& cols) const;

  // Number of distinct values of the given column tuple.
  size_t DistinctCount(const std::vector<int>& cols) const;

  // Distinct projection onto the given columns, as a new relation whose
  // attribute names are those of the projected columns.
  Relation Project(const std::vector<int>& cols) const;

  // Removes duplicate rows (full-row distinct).
  void Deduplicate();

  // True if rows a and b agree on the given columns.
  bool RowsEqualOn(uint32_t a, uint32_t b, const std::vector<int>& cols) const;

  // Lexicographic comparison of rows a and b on the given columns.
  bool RowLessOn(uint32_t a, uint32_t b, const std::vector<int>& cols) const;

 private:
  std::string name_;
  std::vector<std::string> attrs_;
  std::vector<std::vector<Value>> cols_;
  size_t num_rows_ = 0;
};

}  // namespace lpb

#endif  // LPB_RELATION_RELATION_H_
