// Degree sequences and their ℓp-norms (Sec 1.2 of the paper).
//
// For a relation R and attribute sets U, V, deg_R(V|U) is the sorted list of
// out-degrees of the U-side nodes in the bipartite graph whose edges are the
// distinct (u, v) pairs of Π_{U∪V}(R). The ℓp-norm of that sequence is the
// statistic the paper's bounds consume:
//   p = 1  -> |Π_{U∪V}(R)|   (a cardinality assertion)
//   p = ∞  -> max degree     (PANDA's statistic)
//   other p -> genuinely new statistics enabled by this paper.
#ifndef LPB_RELATION_DEGREE_SEQUENCE_H_
#define LPB_RELATION_DEGREE_SEQUENCE_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "relation/relation.h"

namespace lpb {

// Sentinel for the ℓ∞ norm; any p >= kInfinity/2 is treated as infinity.
inline constexpr double kInfNorm = std::numeric_limits<double>::infinity();

// A degree sequence d_1 >= d_2 >= ... >= d_m > 0.
class DegreeSequence {
 public:
  DegreeSequence() = default;
  // Sorts `degrees` in non-increasing order; zero entries are dropped.
  explicit DegreeSequence(std::vector<uint64_t> degrees);

  const std::vector<uint64_t>& degrees() const { return degrees_; }
  size_t size() const { return degrees_.size(); }
  bool empty() const { return degrees_.empty(); }
  uint64_t MaxDegree() const { return degrees_.empty() ? 0 : degrees_[0]; }

  // Sum of all degrees (the ℓ1 norm; number of bipartite edges).
  uint64_t Total() const;

  // ||d||_p, p in (0, ∞]. For p = kInfNorm returns the max degree.
  double NormP(double p) const;

  // log2 ||d||_p, computed in log space for numerical robustness with
  // large p. Returns -inf for an empty sequence.
  double Log2NormP(double p) const;

  // True if every prefix satisfies d_i <= other.d_i (with missing entries
  // treated as 0) — the dominance order used by the Degree Sequence Bound.
  bool DominatedBy(const DegreeSequence& other) const;

 private:
  std::vector<uint64_t> degrees_;
};

// Computes deg_R(V|U) where u_cols/v_cols are column indices into `rel`
// (disjoint). With u_cols empty the result is the single-element sequence
// (|Π_V(R)|); duplicate (u,v) pairs in R are counted once.
DegreeSequence ComputeDegreeSequence(const Relation& rel,
                                     const std::vector<int>& u_cols,
                                     const std::vector<int>& v_cols);

}  // namespace lpb

#endif  // LPB_RELATION_DEGREE_SEQUENCE_H_
