#include "lp/lp_backend.h"

#include <cstdlib>
#include <cstring>

#include "lp/dense_tableau.h"
#include "lp/revised_simplex.h"

namespace lpb {

void LpBackendImpl::ResolveWithRhsBatch(
    std::span<const std::vector<double>> rhs_batch, std::vector<LpResult>& out) {
  // Reference semantics for the batch contract: the sequential scalar
  // cascade. Backends override only to amortize, never to reorder. Move-
  // assigning into the resized slot (rather than push_back into a fresh
  // vector) keeps the caller's element capacity alive across batches.
  out.resize(rhs_batch.size());
  for (std::size_t c = 0; c < rhs_batch.size(); ++c) {
    out[c] = ResolveWithRhs(rhs_batch[c]);
  }
}

bool LpBackendImpl::AddConstraintsWarm(const std::vector<LpConstraint>& rows,
                                       const std::vector<double>& rhs,
                                       LpResult& result) {
  // Backends opt in explicitly; declining tells the caller to rebuild and
  // solve cold, which is always correct.
  (void)rows;
  (void)rhs;
  (void)result;
  return false;
}

NormalizedRows NormalizeRows(const LpProblem& problem,
                             const std::vector<double>& rhs) {
  const int rows = problem.num_constraints();
  NormalizedRows out;
  out.sense.resize(rows);
  out.row_sign.assign(rows, 1.0);
  for (int i = 0; i < rows; ++i) {
    const LpConstraint& c = problem.constraint(i);
    const double b = rhs.empty() ? c.rhs : rhs[i];
    LpSense s = c.sense;
    if (b < 0.0 || (s == LpSense::kGe && b == 0.0)) {
      out.row_sign[i] = -1.0;
      if (s == LpSense::kLe) {
        s = LpSense::kGe;
      } else if (s == LpSense::kGe) {
        s = LpSense::kLe;
      }
    }
    out.sense[i] = s;
    if (s != LpSense::kEq) ++out.num_slack;
    if (s != LpSense::kLe) ++out.num_art;
  }
  return out;
}

double NormalizedRhsEntry(const LpProblem& problem,
                          const std::vector<double>& row_sign, double perturb,
                          int i, const std::vector<double>& rhs) {
  const double b = rhs.empty() ? problem.constraint(i).rhs : rhs[i];
  // Graded degeneracy breaking (see SimplexOptions::perturb).
  return row_sign[i] * b + perturb * (1 + i % 101);
}

const char* LpBackendName(LpBackendKind kind) {
  switch (kind) {
    case LpBackendKind::kDefault:
      return "default";
    case LpBackendKind::kDense:
      return "dense";
    case LpBackendKind::kRevised:
      return "revised";
  }
  return "unknown";
}

LpBackendKind ResolveLpBackend(const SimplexOptions& options) {
  if (options.backend != LpBackendKind::kDefault) return options.backend;
  // Read the environment on every resolution (not a cached static): tests
  // and experiment drivers flip LPB_LP_BACKEND within one process.
  const char* env = std::getenv("LPB_LP_BACKEND");
  if (env != nullptr && std::strcmp(env, "revised") == 0) {
    return LpBackendKind::kRevised;
  }
  // Dense remains the default until revised-backend parity is proven on a
  // workload (see src/lp/README.md); unknown values also fall back here.
  return LpBackendKind::kDense;
}

const char* PricingRuleName(PricingRule rule) {
  switch (rule) {
    case PricingRule::kDefault:
      return "default";
    case PricingRule::kDantzig:
      return "dantzig";
    case PricingRule::kDevex:
      return "devex";
  }
  return "unknown";
}

PricingRule ResolveLpPricing(const SimplexOptions& options) {
  if (options.pricing != PricingRule::kDefault) return options.pricing;
  // Like ResolveLpBackend, read the environment on every resolution so
  // drivers can flip LPB_LP_PRICING within one process.
  const char* env = std::getenv("LPB_LP_PRICING");
  if (env != nullptr && std::strcmp(env, "devex") == 0) {
    return PricingRule::kDevex;
  }
  // Dantzig remains the default until Devex has soaked in the CI pricing
  // lane (see ROADMAP); unknown values also fall back here.
  return PricingRule::kDantzig;
}

const char* BasisUpdateName(BasisUpdateKind kind) {
  switch (kind) {
    case BasisUpdateKind::kDefault:
      return "default";
    case BasisUpdateKind::kEta:
      return "eta";
    case BasisUpdateKind::kForrestTomlin:
      return "ft";
  }
  return "unknown";
}

BasisUpdateKind ResolveBasisUpdate(const SimplexOptions& options) {
  if (options.basis_update != BasisUpdateKind::kDefault) {
    return options.basis_update;
  }
  const char* env = std::getenv("LPB_LP_UPDATE");
  if (env != nullptr && std::strcmp(env, "eta") == 0) {
    return BasisUpdateKind::kEta;
  }
  return BasisUpdateKind::kForrestTomlin;
}

const char* SimdModeName(SimdMode mode) {
  switch (mode) {
    case SimdMode::kDefault:
      return "default";
    case SimdMode::kAuto:
      return "auto";
    case SimdMode::kScalar:
      return "scalar";
  }
  return "unknown";
}

SimdMode ResolveSimdMode(const SimplexOptions& options) {
  if (options.simd != SimdMode::kDefault) return options.simd;
  // Like the other knobs, read the environment on every resolution so the
  // SIMD parity tests can flip LPB_LP_SIMD within one process.
  const char* env = std::getenv("LPB_LP_SIMD");
  if (env != nullptr && std::strcmp(env, "scalar") == 0) {
    return SimdMode::kScalar;
  }
  // Results are bit-identical either way, so auto is always safe; unknown
  // values also fall back here.
  return SimdMode::kAuto;
}

const char* CutWarmStartName(CutWarmStart mode) {
  switch (mode) {
    case CutWarmStart::kDefault:
      return "default";
    case CutWarmStart::kOn:
      return "on";
    case CutWarmStart::kOff:
      return "off";
  }
  return "unknown";
}

CutWarmStart ResolveCutWarmStart(const SimplexOptions& options) {
  if (options.cut_warm_start != CutWarmStart::kDefault) {
    return options.cut_warm_start;
  }
  // Like the other knobs, read the environment on every resolution so the
  // warm-vs-cold differential tests can flip LPB_LP_CUT_WARM in-process.
  const char* env = std::getenv("LPB_LP_CUT_WARM");
  if (env != nullptr &&
      (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0)) {
    return CutWarmStart::kOff;
  }
  // Warm and cold converge to the same bound (differentially tested), so
  // warm is the default; unknown values also fall back here.
  return CutWarmStart::kOn;
}

const char* LpKernelName(LpKernelId id) {
  switch (id) {
    case kLpKernelAxpy:
      return "axpy_d";
    case kLpKernelDot:
      return "dot_d";
    case kLpKernelNormalizeRhs:
      return "normalize_rhs_d";
    case kLpKernelEqual:
      return "equal_d";
    case kLpKernelGather:
      return "gather_axpy_ld";
    case kLpKernelSweep:
      return "sweep_ld";
    case kLpKernelScale:
      return "scale_ld";
    case kLpKernelFtranBlock:
      return "ftran_block_ld";
    case kNumLpKernels:
      break;
  }
  return "unknown";
}

std::unique_ptr<LpBackendImpl> MakeLpBackend(const LpProblem& problem,
                                             const SimplexOptions& options) {
  if (ResolveLpBackend(options) == LpBackendKind::kRevised) {
    return std::make_unique<RevisedSimplex>(problem, options);
  }
  return std::make_unique<DenseTableau>(problem, options);
}

}  // namespace lpb
