#include "lp/lp_problem.h"

#include <cassert>
#include <utility>

namespace lpb {

void LpProblem::SetObjective(int var, double coef) {
  assert(var >= 0 && var < num_vars());
  objective_[var] = coef;
}

int LpProblem::AddConstraint(std::vector<LpTerm> terms, LpSense sense,
                             double rhs) {
  for (const LpTerm& t : terms) {
    assert(t.var >= 0 && t.var < num_vars());
    (void)t;
  }
  constraints_.push_back(LpConstraint{std::move(terms), sense, rhs});
  return static_cast<int>(constraints_.size()) - 1;
}

double LpProblem::EvalLhs(int i, const std::vector<double>& x) const {
  double acc = 0.0;
  for (const LpTerm& t : constraints_[i].terms) acc += t.coef * x[t.var];
  return acc;
}

}  // namespace lpb
