#include "lp/dense_tableau.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lpb {
namespace {

constexpr long double kLexEps = 1e-12L;

}  // namespace

DenseTableau::DenseTableau(const LpProblem& problem,
                           const SimplexOptions& options)
    : problem_(problem),
      options_(options),
      kernels_(&GetLpKernels(ResolveSimdMode(options))) {}

DenseTableau::Scalar DenseTableau::NormalizedRhs(
    int i, const std::vector<double>& rhs) const {
  return NormalizedRhsEntry(problem_, row_sign_, options_.perturb, i, rhs);
}

void DenseTableau::Build(const std::vector<double>& rhs) {
  const int n = problem_.num_vars();
  rows_ = problem_.num_constraints();
  has_basis_ = false;
  cached_duals_.clear();
  result_cache_valid_ = false;
  reprice_valid_ = false;
  witness_scan_ok_ = false;

  // Row normalization shared with the revised backend (lp/lp_backend.h):
  // from it we know how many slack and artificial columns are needed.
  NormalizedRows normalized = NormalizeRows(problem_, rhs);
  const std::vector<LpSense>& sense = normalized.sense;
  row_sign_ = std::move(normalized.row_sign);

  first_art_ = n + normalized.num_slack;
  cols_ = first_art_ + normalized.num_art;
  stride_ = cols_ + 1;

  // One flat block from the arena instead of a vector per row. Reset first:
  // everything below is rebuilt, and the re-pricing scratch is invalid
  // anyway (reprice_valid_ cleared above), so reclaiming the chunks is
  // safe — repeated Builds of the same problem shape never hit malloc.
  arena_.Reset();
  t_ = arena_.AllocArray<Scalar>(static_cast<std::size_t>(rows_) * stride_);
  std::fill(t_, t_ + static_cast<std::size_t>(rows_) * stride_, Scalar{0.0});
  problem_rhs_ = arena_.AllocArray<double>(rows_);
  perturb_term_ = arena_.AllocArray<double>(rows_);
  norm_b_ = arena_.AllocArray<double>(rows_);
  last_b_ = arena_.AllocArray<double>(rows_);
  reprice_ = arena_.AllocArray<Scalar>(rows_);
  for (int i = 0; i < rows_; ++i) {
    problem_rhs_[i] = problem_.constraint(i).rhs;
    // The graded perturbation of NormalizedRhsEntry, precomputed so the
    // re-pricing normalization is one vectorizable sign*b + term pass.
    perturb_term_[i] = options_.perturb * (1 + i % 101);
  }

  basis_.assign(rows_, kNoCol);
  dual_col_.assign(rows_, kNoCol);

  int next_slack = n;
  int next_art = first_art_;
  for (int i = 0; i < rows_; ++i) {
    const LpConstraint& c = problem_.constraint(i);
    Scalar* row = Row(i);
    for (const LpTerm& term : c.terms) row[term.var] += row_sign_[i] * term.coef;
    row[cols_] = NormalizedRhs(i, rhs);

    switch (sense[i]) {
      case LpSense::kLe: {
        int slack = next_slack++;
        row[slack] = 1.0;
        basis_[i] = slack;
        dual_col_[i] = slack;
        break;
      }
      case LpSense::kGe: {
        int surplus = next_slack++;
        int art = next_art++;
        row[surplus] = -1.0;
        row[art] = 1.0;
        basis_[i] = art;
        dual_col_[i] = art;
        break;
      }
      case LpSense::kEq: {
        int art = next_art++;
        row[art] = 1.0;
        basis_[i] = art;
        dual_col_[i] = art;
        break;
      }
    }
  }

  phase2_cost_.assign(cols_, 0.0);
  for (int j = 0; j < n; ++j) phase2_cost_[j] = problem_.objective_coef(j);
}

void DenseTableau::ComputeReducedCosts(const std::vector<double>& cost) {
  reduced_.assign(cols_, 0.0);
  // reduced = cost - cB' * T. Accumulate row-wise for cache friendliness;
  // each row is one elimination-shaped sweep (reduced[j] -= cb * row[j]).
  for (int i = 0; i < rows_; ++i) {
    const Scalar cb = cost[basis_[i]];
    if (cb == 0.0) continue;
    LpSweepLd(reduced_.data(), Row(i), cb, cols_);
  }
  for (int j = 0; j < cols_; ++j) reduced_[j] += cost[j];
}

void DenseTableau::Pivot(int row, int col) {
  reprice_valid_ = false;  // B changes: incremental re-pricing is stale
  witness_scan_ok_ = false;
  Scalar* prow = Row(row);
  const Scalar p = prow[col];
  const Scalar inv = 1.0L / p;
  LpScaleLd(prow, inv, cols_ + 1);
  prow[col] = 1.0;  // exact
  for (int i = 0; i < rows_; ++i) {
    if (i == row) continue;
    Scalar* r = Row(i);
    const Scalar f = r[col];
    if (f == 0.0) continue;
    LpSweepLd(r, prow, f, cols_ + 1);
    r[col] = 0.0;  // exact
  }
  basis_[row] = col;
}

bool DenseTableau::RunPhase(const std::vector<double>& cost, bool phase_two) {
  const double eps = options_.eps;
  frozen_.assign(cols_, false);
  while (true) {
    if (iterations_ >= max_iterations_) return false;
    // Recompute reduced costs from scratch each iteration: same asymptotic
    // cost as the pivot itself and immune to incremental drift (which
    // produced false unbounded verdicts on the engine's cutting-plane LPs).
    ComputeReducedCosts(cost);

    // Dantzig pricing.
    int enter = kNoCol;
    double best = eps;
    for (int j = 0; j < cols_; ++j) {
      if (phase_two && j >= first_art_) break;  // artificials may not re-enter
      if (frozen_[j]) continue;
      if (reduced_[j] > best) {
        enter = j;
        best = static_cast<double>(reduced_[j]);
      }
    }
    if (enter == kNoCol) return true;  // optimal for this phase

    // Ratio test with lexicographic tie-breaking: guarantees termination
    // on the heavily degenerate cutting-plane LPs (Dantzig/Harris
    // tie-breaks stall for 100k+ iterations there). The tableau is kept in
    // long double because lexicographic pivoting occasionally selects
    // small pivot elements, whose reciprocals amplify rounding error.
    int leave = -1;
    Scalar best_ratio = std::numeric_limits<Scalar>::infinity();
    for (int i = 0; i < rows_; ++i) {
      const Scalar a = Row(i)[enter];
      if (a <= eps) continue;
      const Scalar ratio = Row(i)[cols_] / a;
      if (leave == -1 || ratio < best_ratio - kLexEps) {
        best_ratio = ratio;
        leave = i;
        continue;
      }
      if (ratio > best_ratio + kLexEps) continue;
      // Tie: lexicographic comparison of the rows scaled by their pivot
      // entries, over the slack/artificial block (initially the identity,
      // so rows are lexicographically positive and the classic termination
      // argument applies).
      const Scalar a_leave = Row(leave)[enter];
      for (int j = problem_.num_vars(); j < cols_; ++j) {
        const Scalar d = Row(i)[j] / a - Row(leave)[j] / a_leave;
        if (d < -kLexEps) {
          leave = i;
          best_ratio = ratio;
          break;
        }
        if (d > kLexEps) break;
      }
    }
    if (leave == -1) {
      // Guard against numerically dead columns: all entries ~0 yet a barely
      // positive reduced cost is noise, not a certificate of
      // unboundedness. Freeze the column and move on.
      if (reduced_[enter] <= 1e-6) {
        frozen_[enter] = true;
        continue;
      }
      unbounded_ = true;
      return true;
    }
    Pivot(leave, enter);
    ++iterations_;
    if (phase_two) {
      ++stats_.phase2_pivots;
    } else {
      ++stats_.phase1_pivots;
    }
  }
}

DenseTableau::DualOutcome DenseTableau::RunDualSimplex() {
  const double eps = options_.eps;
  while (true) {
    if (iterations_ >= max_iterations_) return DualOutcome::kIterationLimit;

    // Leaving row: most negative basic value.
    int leave = -1;
    Scalar most = -eps;
    for (int i = 0; i < rows_; ++i) {
      if (Row(i)[cols_] < most) {
        most = Row(i)[cols_];
        leave = i;
      }
    }
    if (leave == -1) return DualOutcome::kOptimal;  // primal feasible

    // Entering column: dual ratio test over eligible (negative) entries of
    // the leaving row. Reduced costs are <= 0 at a dual-feasible basis, so
    // the ratio reduced/a is >= 0; the minimum keeps dual feasibility.
    // Artificial columns may not (re-)enter, matching phase 2.
    ComputeReducedCosts(phase2_cost_);
    int enter = kNoCol;
    Scalar best_ratio = std::numeric_limits<Scalar>::infinity();
    for (int j = 0; j < first_art_; ++j) {
      const Scalar a = Row(leave)[j];
      if (a >= -eps) continue;
      const Scalar ratio = reduced_[j] / a;
      if (ratio < best_ratio - kLexEps) {
        best_ratio = ratio;
        enter = j;
      }
    }
    if (enter == kNoCol) return DualOutcome::kInfeasible;  // dual ray
    Pivot(leave, enter);
    ++iterations_;
    ++stats_.dual_pivots;
  }
}

void DenseTableau::EvictArtificials() {
  for (int i = 0; i < rows_; ++i) {
    if (basis_[i] < first_art_) continue;
    // Basic artificial (at value ~0 after a feasible phase 1). Pivot in any
    // non-artificial column with a nonzero entry; if none exists the row is
    // redundant and the artificial stays basic at zero, which is harmless.
    for (int j = 0; j < first_art_; ++j) {
      if (std::abs(static_cast<double>(Row(i)[j])) > options_.eps) {
        Pivot(i, j);
        ++iterations_;
        ++stats_.phase1_pivots;  // artificial eviction is phase-1 cleanup
        break;
      }
    }
  }
}

void DenseTableau::FillKernelStats() {
  for (int k = 0; k < kNumLpKernels; ++k) {
    stats_.kernel_calls[k] =
        g_lp_kernel_counters.calls[k] - kernel_base_.calls[k];
    stats_.kernel_cycles[k] =
        g_lp_kernel_counters.cycles[k] - kernel_base_.cycles[k];
  }
}

LpResult DenseTableau::ExtractOptimal(LpEvalPath path, bool repeat) {
  LpResult result;
  result.status = LpStatus::kOptimal;
  result.iterations = iterations_;
  result.path = path;
  if (repeat && result_cache_valid_) {
    // The RHS column is bitwise-unchanged since the extraction that filled
    // the cache, so x/objective/duals here are the cached ones by
    // construction — serve them as flat copies and skip the tableau walk.
    result.x = cached_x_;
    result.objective = cached_objective_;
    result.duals = cached_duals_;
    has_basis_ = true;
    FillKernelStats();
    result.stats = stats_;
    return result;
  }
  result.x.assign(problem_.num_vars(), 0.0);
  for (int i = 0; i < rows_; ++i) {
    if (basis_[i] < problem_.num_vars()) {
      result.x[basis_[i]] = static_cast<double>(Row(i)[cols_]);
    }
  }
  result.objective =
      LpDotD(*kernels_, phase2_cost_.data(), result.x.data(),
             problem_.num_vars());
  cached_x_ = result.x;
  cached_objective_ = result.objective;
  result_cache_valid_ = true;

  if (path == LpEvalPath::kWitness && !cached_duals_.empty()) {
    // Same basis, same cost: the duals are the previous solve's.
    result.duals = cached_duals_;
  } else {
    // Duals: the reduced cost under the +e_i column of constraint i is -y_i.
    ComputeReducedCosts(phase2_cost_);
    result.duals.assign(rows_, 0.0);
    for (int i = 0; i < rows_; ++i) {
      result.duals[i] =
          static_cast<double>(-reduced_[dual_col_[i]]) * row_sign_[i];
    }
    cached_duals_ = result.duals;
  }
  has_basis_ = true;
  FillKernelStats();
  result.stats = stats_;
  return result;
}

LpResult DenseTableau::Failure(LpStatus status) {
  LpResult result;
  result.status = status;
  result.iterations = iterations_;
  FillKernelStats();
  result.stats = stats_;
  // The LpResult contract: x/duals are sized (zeros) even on failure so
  // callers indexing them unconditionally never read stale data.
  result.x.assign(problem_.num_vars(), 0.0);
  result.duals.assign(problem_.num_constraints(), 0.0);
  return result;
}

LpResult DenseTableau::Solve(const std::vector<double>& rhs) {
  stats_.ResetPivots();
  kernel_base_ = g_lp_kernel_counters;
  return SolveInternal(rhs);
}

LpResult DenseTableau::SolveInternal(const std::vector<double>& rhs) {
  iterations_ = 0;
  Build(rhs);
  max_iterations_ = options_.max_iterations > 0
                        ? options_.max_iterations
                        : 50 * (rows_ + cols_) + 1000;

  // Phase 1: maximize -sum(artificials), feasible iff optimum is 0.
  if (first_art_ < cols_) {
    std::vector<double> cost(cols_, 0.0);
    for (int j = first_art_; j < cols_; ++j) cost[j] = -1.0;
    if (!RunPhase(cost, /*phase_two=*/false)) {
      return Failure(LpStatus::kIterationLimit);
    }
    Scalar infeas = 0.0;
    for (int i = 0; i < rows_; ++i) {
      if (basis_[i] >= first_art_) infeas += Row(i)[cols_];
    }
    if (infeas > 1e-7) {
      return Failure(LpStatus::kInfeasible);
    }
    EvictArtificials();
  }

  // Phase 2: real objective (artificial costs are zero and they are barred
  // from entering the basis).
  unbounded_ = false;
  if (!RunPhase(phase2_cost_, /*phase_two=*/true)) {
    return Failure(LpStatus::kIterationLimit);
  }
  if (unbounded_) {
    return Failure(LpStatus::kUnbounded);
  }
  return ExtractOptimal(LpEvalPath::kCold);
}

void DenseTableau::RepriceRhs(const std::vector<double>& rhs) {
  // Normalize the whole RHS in one vectorized pass (this is the historical
  // per-entry NormalizedRhsEntry — all-double arithmetic — with the graded
  // perturbation precomputed in Build). Profiling showed the per-entry
  // cross-TU call was ~13% of the batch path on its own.
  const double* b = rhs.empty() ? problem_rhs_ : rhs.data();
  LpNormalizeRhsD(*kernels_, row_sign_.data(), b, perturb_term_, norm_b_,
                  rows_);

  // Unchanged-RHS fast exit: bitwise-equal normalized RHS means the
  // tableau's RHS column is already B⁻¹b — no deltas, no mirror pass, and
  // no tick of the drift interval (an untouched column accumulates none).
  if (reprice_valid_ && LpEqualD(*kernels_, norm_b_, last_b_, rows_)) {
    rhs_unchanged_ = true;
    return;
  }
  rhs_unchanged_ = false;

  // Column dual_col_[j] of the current tableau is the j-th column of B⁻¹.
  if (reprice_valid_ && reprices_since_full_ < kFullRepriceInterval) {
    // Incremental: B⁻¹b_new = B⁻¹b_old + Σ_j Δ_j · (B⁻¹ e_j) over the rows
    // whose normalized RHS actually moved — the k-statistic what-if probe
    // costs O(rows × k). Exact comparison is deliberate: an unchanged
    // coordinate contributes an exact zero delta.
    ++reprices_since_full_;
    for (int j = 0; j < rows_; ++j) {
      const double bj = norm_b_[j];
      if (bj == last_b_[j]) continue;
      const Scalar d = static_cast<Scalar>(bj) - static_cast<Scalar>(last_b_[j]);
      last_b_[j] = bj;
      LpGatherAxpyLd(reprice_, Row(0) + dual_col_[j], stride_, d, rows_);
    }
  } else {
    // Full re-price: only rows with a nonzero normalized RHS contribute —
    // in the bound LPs that is just the statistics rows, so this is a
    // (rows × nnz(b')) multiply, not (rows × rows). Also the periodic
    // refresh that squashes incremental-accumulation drift.
    std::fill(reprice_, reprice_ + rows_, Scalar{0.0});
    for (int j = 0; j < rows_; ++j) {
      const double bj = norm_b_[j];
      last_b_[j] = bj;
      if (bj == 0.0) continue;
      LpGatherAxpyLd(reprice_, Row(0) + dual_col_[j], stride_,
                     static_cast<Scalar>(bj), rows_);
    }
    reprice_valid_ = true;
    reprices_since_full_ = 0;
  }
  for (int i = 0; i < rows_; ++i) Row(i)[cols_] = reprice_[i];
}

LpResult DenseTableau::ResolveWithRhs(const std::vector<double>& rhs) {
  kernel_base_ = g_lp_kernel_counters;
  if (!has_basis_) {
    stats_.ResetPivots();
    return SolveInternal(rhs);
  }
  iterations_ = 0;
  stats_.ResetPivots();
  max_iterations_ = options_.max_iterations > 0
                        ? options_.max_iterations
                        : 50 * (rows_ + cols_) + 1000;

  // Re-price the RHS column under the cached basis: the new basic solution
  // is B⁻¹ b'_norm (incremental against the previous re-price when the
  // basis is unchanged; see RepriceRhs).
  RepriceRhs(rhs);
  // Memoized scan: an unchanged RHS column that already passed the scan
  // below passes it again — rescanning identical bits is pure overhead.
  if (rhs_unchanged_ && witness_scan_ok_) {
    return ExtractOptimal(LpEvalPath::kWitness, /*repeat=*/true);
  }
  bool feasible = true;
  for (int i = 0; i < rows_; ++i) {
    const Scalar fresh = Row(i)[cols_];
    if (fresh < -options_.eps) feasible = false;
    // A basic artificial forced away from zero means the cached basis
    // cannot represent this RHS at all (a previously-redundant row became
    // inconsistent); only a cold solve can decide feasibility.
    if (basis_[i] >= first_art_ &&
        std::abs(static_cast<double>(fresh)) > 1e-7) {
      return SolveInternal(rhs);
    }
  }
  if (feasible) {
    // Witness reuse: the basis is still optimal; zero pivots needed.
    witness_scan_ok_ = true;
    return ExtractOptimal(LpEvalPath::kWitness);
  }
  witness_scan_ok_ = false;

  switch (RunDualSimplex()) {
    case DualOutcome::kOptimal:
      return ExtractOptimal(LpEvalPath::kWarm);
    case DualOutcome::kInfeasible:
    case DualOutcome::kIterationLimit:
      // A dual ray certifies primal infeasibility in exact arithmetic, but
      // re-deriving it from a cold two-phase solve is cheap insurance
      // against numerical drift in the warmed tableau — and the fallback
      // also covers the (rare) dual-simplex stall.
      return SolveInternal(rhs);
  }
  return SolveInternal(rhs);  // unreachable
}

bool DenseTableau::AddConstraintsWarm(const std::vector<LpConstraint>& rows,
                                      const std::vector<double>& rhs,
                                      LpResult& result) {
  const int k = static_cast<int>(rows.size());
  const int old_rows = rows_;
  const int new_rows = old_rows + k;
  if (k == 0 || !has_basis_ || first_art_ != cols_ ||
      static_cast<int>(rhs.size()) != new_rows) {
    return false;
  }
  // Every appended row must normalize to <= (the NormalizeRows flip rule:
  // negate when b < 0, or when a >= row has b == 0) so its slack can enter
  // the basis directly. Pure validation — state is untouched on decline.
  std::vector<double> new_sign(k, 1.0);
  for (int i = 0; i < k; ++i) {
    const double b = rhs[old_rows + i];
    LpSense s = rows[i].sense;
    if (b < 0.0 || (s == LpSense::kGe && b == 0.0)) {
      new_sign[i] = -1.0;
      if (s == LpSense::kLe) {
        s = LpSense::kGe;
      } else if (s == LpSense::kGe) {
        s = LpSense::kLe;
      }
    }
    if (s != LpSense::kLe) return false;
  }

  // Commit point: from here every path produces a result (worst case an
  // internal cold solve of the grown problem) and returns true.
  kernel_base_ = g_lp_kernel_counters;
  stats_.ResetPivots();
  stats_.row_appends += k;

  // Re-price the old RHS column against the caller's rhs while the old
  // machinery is still sized for it — the incremental B⁻¹-column path when
  // only a few statistics moved, exactly as a warm resolve would.
  RepriceRhs(rhs);

  const int old_cols = cols_;
  const int old_stride = stride_;
  for (int i = 0; i < k; ++i) {
    problem_.AddConstraint(rows[i].terms, rows[i].sense, rows[i].rhs);
    row_sign_.push_back(new_sign[i]);
    basis_.push_back(old_cols + i);
    dual_col_.push_back(old_cols + i);
  }
  rows_ = new_rows;
  cols_ = old_cols + k;
  first_art_ = cols_;
  stride_ = cols_ + 1;
  phase2_cost_.resize(cols_, 0.0);

  // Re-layout the tableau with k more rows and a wider stride. The old
  // block lives in the arena, so it is copied out before the Reset; old
  // rows get zeros in the new slack columns (B_new⁻¹ is block lower
  // triangular) and keep their RHS in the widened last column.
  std::vector<Scalar> old_t(
      t_, t_ + static_cast<std::size_t>(old_rows) * old_stride);
  arena_.Reset();
  t_ = arena_.AllocArray<Scalar>(static_cast<std::size_t>(rows_) * stride_);
  std::fill(t_, t_ + static_cast<std::size_t>(rows_) * stride_, Scalar{0.0});
  problem_rhs_ = arena_.AllocArray<double>(rows_);
  perturb_term_ = arena_.AllocArray<double>(rows_);
  norm_b_ = arena_.AllocArray<double>(rows_);
  last_b_ = arena_.AllocArray<double>(rows_);
  reprice_ = arena_.AllocArray<Scalar>(rows_);
  for (int i = 0; i < rows_; ++i) {
    problem_rhs_[i] = problem_.constraint(i).rhs;
    perturb_term_[i] = options_.perturb * (1 + i % 101);
  }
  for (int i = 0; i < old_rows; ++i) {
    const Scalar* src = old_t.data() + static_cast<std::size_t>(i) * old_stride;
    Scalar* dst = Row(i);
    std::copy(src, src + old_cols, dst);
    dst[cols_] = src[old_cols];  // RHS moves to the widened last column
  }
  reprice_valid_ = false;
  rhs_unchanged_ = false;
  witness_scan_ok_ = false;
  result_cache_valid_ = false;
  cached_duals_.clear();

  // Each new row enters as its raw normalized form — structural terms plus
  // its unit slack — eliminated against the basic rows: the old basic
  // columns are unit columns of the current tableau, so the sweep yields
  // exactly row old_rows+i of B_new⁻¹·A_new. A negative resulting RHS is
  // precisely a cut the old optimum violates.
  for (int i = 0; i < k; ++i) {
    Scalar* row = Row(old_rows + i);
    for (const LpTerm& term : rows[i].terms) {
      if (term.var >= 0 && term.var < problem_.num_vars()) {
        row[term.var] += new_sign[i] * term.coef;
      }
    }
    row[old_cols + i] = 1.0;
    row[cols_] = NormalizedRhs(old_rows + i, rhs);
    for (int r = 0; r < old_rows; ++r) {
      const Scalar f = row[basis_[r]];
      if (f == 0.0) continue;
      LpSweepLd(row, Row(r), f, cols_ + 1);
      row[basis_[r]] = 0.0;  // exact
    }
  }

  iterations_ = 0;
  unbounded_ = false;
  max_iterations_ = options_.max_iterations > 0
                        ? options_.max_iterations
                        : 50 * (rows_ + cols_) + 1000;
  const int dual_before = stats_.dual_pivots;
  const DualOutcome outcome = RunDualSimplex();
  stats_.dual_repair_pivots += stats_.dual_pivots - dual_before;
  switch (outcome) {
    case DualOutcome::kOptimal:
      result = ExtractOptimal(LpEvalPath::kWarm);
      return true;
    case DualOutcome::kInfeasible:
    case DualOutcome::kIterationLimit:
      break;
  }
  result = SolveInternal(rhs);
  return true;
}

}  // namespace lpb
