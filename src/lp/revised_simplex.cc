#include "lp/revised_simplex.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace lpb {
namespace {

constexpr long double kLexEps = 1e-12L;
constexpr long double kInf = std::numeric_limits<long double>::infinity();

}  // namespace

RevisedSimplex::RevisedSimplex(const LpProblem& problem,
                               const SimplexOptions& options)
    : problem_(problem),
      options_(options),
      pricing_(ResolveLpPricing(options)),
      update_kind_(ResolveBasisUpdate(options)),
      kernels_(&GetLpKernels(ResolveSimdMode(options))) {
  LuOptions lu_options;
  lu_options.forrest_tomlin =
      update_kind_ == BasisUpdateKind::kForrestTomlin;
  lu_options.max_updates = options_.max_basis_updates;
  lu_ = LuBasis(lu_options);
}

RevisedSimplex::Scalar RevisedSimplex::NormalizedRhs(
    int i, const std::vector<double>& rhs) const {
  return NormalizedRhsEntry(problem_, row_sign_, options_.perturb, i, rhs);
}

void RevisedSimplex::Build(const std::vector<double>& rhs) {
  const int n = problem_.num_vars();
  rows_ = problem_.num_constraints();
  has_basis_ = false;
  cached_duals_.clear();
  result_cache_valid_ = false;
  binv_valid_.assign(rows_, 0);
  InvalidateReprice();

  // Arena-backed re-pricing scratch: one Reset and a few pointer bumps per
  // cold Build (the chunks are reused, so repeated Builds of the same
  // shape never hit the allocator). The B⁻¹ pool is uninitialized on
  // purpose — binv_valid_ gates every read.
  arena_.Reset();
  problem_rhs_ = arena_.AllocArray<double>(rows_);
  perturb_term_ = arena_.AllocArray<double>(rows_);
  norm_b_ = arena_.AllocArray<double>(rows_);
  last_b_ = arena_.AllocArray<double>(rows_);
  x_reprice_ = arena_.AllocArray<double>(rows_);
  binv_pool_ =
      arena_.AllocArray<double>(static_cast<std::size_t>(rows_) * rows_);
  binv_block_ = arena_.AllocArray<Scalar>(static_cast<std::size_t>(rows_) *
                                          kBinvBlockLanes);
  for (int i = 0; i < rows_; ++i) {
    problem_rhs_[i] = problem_.constraint(i).rhs;
    // The graded perturbation of NormalizedRhsEntry, precomputed so RHS
    // normalization is one vectorizable sign*b + term kernel pass.
    perturb_term_[i] = options_.perturb * (1 + i % 101);
  }

  // Row normalization shared with the dense backend (lp/lp_backend.h) —
  // backend parity depends on the two applying the identical transform.
  NormalizedRows normalized = NormalizeRows(problem_, rhs);
  const std::vector<LpSense>& sense = normalized.sense;
  row_sign_ = std::move(normalized.row_sign);
  first_art_ = n + normalized.num_slack;
  cols_ = first_art_ + normalized.num_art;

  // Column-major assembly. Structural columns bucket the constraint terms
  // by variable; the slack/surplus and artificial blocks are unit columns
  // appended in the same global numbering the dense tableau uses.
  a_ = SparseMatrix(rows_);
  std::vector<std::vector<SparseEntry>> structural(n);
  for (int i = 0; i < rows_; ++i) {
    for (const LpTerm& term : problem_.constraint(i).terms) {
      structural[term.var].push_back({i, row_sign_[i] * term.coef});
    }
  }
  for (int j = 0; j < n; ++j) a_.AppendColumn(std::move(structural[j]));

  b_.assign(rows_, 0.0);
  std::vector<int> slack_col(rows_, kNoCol);
  std::vector<int> art_col(rows_, kNoCol);
  std::vector<double> slack_sign(rows_, 0.0);
  int next_slack = n;
  int next_art = first_art_;
  for (int i = 0; i < rows_; ++i) {
    b_[i] = NormalizedRhs(i, rhs);
    switch (sense[i]) {
      case LpSense::kLe:
        slack_col[i] = next_slack++;
        slack_sign[i] = 1.0;
        break;
      case LpSense::kGe:
        slack_col[i] = next_slack++;
        slack_sign[i] = -1.0;
        art_col[i] = next_art++;
        break;
      case LpSense::kEq:
        art_col[i] = next_art++;
        break;
    }
  }
  for (int i = 0; i < rows_; ++i) {
    if (slack_col[i] != kNoCol) a_.AppendColumn({{i, slack_sign[i]}});
  }
  for (int i = 0; i < rows_; ++i) {
    if (art_col[i] != kNoCol) a_.AppendColumn({{i, 1.0}});
  }

  // Starting basis: slack for <=, artificial for >= and = — the identity,
  // which both seeds a trivial factorization and starts the lexicographic
  // invariant (rows of [B⁻¹b | B⁻¹] positive).
  basis_.assign(rows_, kNoCol);
  in_basis_.assign(cols_, kNoCol);
  for (int i = 0; i < rows_; ++i) {
    const int bcol = art_col[i] != kNoCol ? art_col[i] : slack_col[i];
    basis_[i] = bcol;
    in_basis_[bcol] = i;
  }
  MarkBasisChanged();

  phase2_cost_.assign(cols_, 0.0);
  for (int j = 0; j < n; ++j) phase2_cost_[j] = problem_.objective_coef(j);

  // Initial factorization of the identity starting basis — not counted as
  // a refactorization in stats_ (those measure re-work after the first).
  if (!lu_.Factorize(a_, basis_)) {
    numerical_failure_ = true;
    return;
  }
  x_basic_ = b_;
  lu_.Ftran(x_basic_);
}

bool RevisedSimplex::Refactorize() {
  InvalidateReprice();
  ++stats_.refactorizations;
  if (!lu_.Factorize(a_, basis_)) {
    numerical_failure_ = true;
    return false;
  }
  x_basic_ = b_;
  lu_.Ftran(x_basic_);
  return true;
}

void RevisedSimplex::InvalidateReprice() {
  reprice_valid_ = false;
  witness_scan_ok_ = false;
  x_basic_stale_ = false;  // callers recompute x_basic_ from b_ directly
  std::fill(binv_valid_.begin(), binv_valid_.end(), 0);
}

void RevisedSimplex::MaterializeBinvColumns(const int* rows, int n) {
  missing_.clear();
  for (int k = 0; k < n; ++k) {
    if (!binv_valid_[rows[k]]) missing_.push_back(rows[k]);
  }
  std::size_t p = 0;
  while (p < missing_.size()) {
    const int lanes = static_cast<int>(
        std::min<std::size_t>(kBinvBlockLanes, missing_.size() - p));
    if (lanes == 1) {
      // A lone column: the plain FTRAN, skipping the block staging.
      const int j = missing_[p];
      unit_.assign(rows_, 0.0);
      unit_[j] = 1.0;
      lu_.Ftran(unit_);
      double* colj = binv_pool_ + static_cast<std::size_t>(j) * rows_;
      for (int i = 0; i < rows_; ++i) colj[i] = static_cast<double>(unit_[i]);
      binv_valid_[j] = 1;
      ++p;
      continue;
    }
    // Blocked: `lanes` unit vectors through one FtranBlock — the L/U entry
    // lists are traversed once for the whole block instead of once per
    // column (each lane's arithmetic is bitwise the solo FTRAN's).
    std::fill(binv_block_,
              binv_block_ + static_cast<std::size_t>(rows_) * lanes,
              Scalar{0.0});
    for (int l = 0; l < lanes; ++l) {
      binv_block_[static_cast<std::size_t>(missing_[p + l]) * lanes + l] = 1.0;
    }
    lu_.FtranBlock(binv_block_, lanes);
    for (int l = 0; l < lanes; ++l) {
      const int j = missing_[p + l];
      double* colj = binv_pool_ + static_cast<std::size_t>(j) * rows_;
      for (int i = 0; i < rows_; ++i) {
        colj[i] = static_cast<double>(
            binv_block_[static_cast<std::size_t>(i) * lanes + l]);
      }
      binv_valid_[j] = 1;
    }
    p += lanes;
  }
}

RevisedSimplex::ScanVerdict RevisedSimplex::ScanBasics() const {
  // Artificial slots are tracked per basis header, not per scan: they are
  // empty after any successful phase-1 eviction, and rebuilding the list
  // on basis changes (pivots are rare next to scans on the witness-heavy
  // paths) keeps the per-scan artificial check O(#artificial slots).
  // Verdict precedence (artificial before infeasible) matches the
  // historical early-breaking loops: both report kArtificial whenever any
  // off-zero basic artificial exists.
  if (art_slots_dirty_) {
    art_slots_.clear();
    for (int i = 0; i < rows_; ++i) {
      if (basis_[i] >= first_art_) art_slots_.push_back(i);
    }
    art_slots_dirty_ = false;
  }
  for (int i : art_slots_) {
    if (std::abs(BasicValue(i)) > 1e-7) return ScanVerdict::kArtificial;
  }
  // What remains is a pure min reduction over the basic values; four
  // accumulators break the serial min dependency so the sweep runs at
  // load bandwidth on the common stale-master (double) path.
  double most_negative = 0.0;
  if (x_basic_stale_) {
    const double* x = x_reprice_;
    double m0 = 0.0, m1 = 0.0, m2 = 0.0, m3 = 0.0;
    int i = 0;
    for (; i + 4 <= rows_; i += 4) {
      m0 = std::min(m0, x[i]);
      m1 = std::min(m1, x[i + 1]);
      m2 = std::min(m2, x[i + 2]);
      m3 = std::min(m3, x[i + 3]);
    }
    for (; i < rows_; ++i) m0 = std::min(m0, x[i]);
    most_negative = std::min(std::min(m0, m1), std::min(m2, m3));
  } else {
    for (int i = 0; i < rows_; ++i) {
      most_negative =
          std::min(most_negative, static_cast<double>(x_basic_[i]));
    }
  }
  if (most_negative < -options_.eps) return ScanVerdict::kInfeasible;
  return ScanVerdict::kFeasible;
}

void RevisedSimplex::RepriceRhs(const std::vector<double>& rhs) {
  // Normalize the whole RHS in one kernel pass (the historical per-entry
  // NormalizedRhsEntry, all-double arithmetic, with the perturbation term
  // precomputed in Build).
  const double* bsrc = rhs.empty() ? problem_rhs_ : rhs.data();
  LpNormalizeRhsD(*kernels_, row_sign_.data(), bsrc, perturb_term_, norm_b_,
                  rows_);
  rhs_unchanged_ = false;
  if (reprice_valid_ && reprices_since_full_ < kFullRepriceInterval &&
      options_.perturb == 0.0) {
    // Incremental: x_new = x_old + Σ_j Δ_j · (B⁻¹ e_j) over the moved
    // coordinates — memoized double B⁻¹ columns folded in with the fma
    // axpy kernel. Exact comparison is deliberate: an unchanged coordinate
    // contributes an exact zero delta. (A user-supplied perturbation
    // forces the full path; perturbed resolves are rare and cold-heavy,
    // and keeping them out of the delta path keeps it exactly the
    // unperturbed b-difference.)
    // The delta scan doubles as the unchanged-RHS fast exit: no moved
    // coordinate means x (= B⁻¹ last_b_) is already the answer — no delta
    // work, no tick of the drift interval (an untouched x accumulates
    // none). This is the steady state of a batch re-pricing the same
    // template values. Chunked bitwise pre-filter: almost every
    // coordinate is bitwise-unchanged between re-prices, so 8-wide
    // memcmp blocks (inlined SSE compares) skip straight past them and
    // only mismatching blocks fall to the per-element compare. Bitwise
    // inequality over-approximates value inequality only for ±0.0 pairs,
    // which then contribute an exact zero delta — harmless.
    if (static_cast<int>(moved_.size()) < rows_) moved_.resize(rows_);
    int moved_n = 0;
    int j = 0;
    for (; j + 8 <= rows_; j += 8) {
      if (std::memcmp(norm_b_ + j, last_b_ + j, 8 * sizeof(double)) == 0) {
        continue;
      }
      for (int t = j; t < j + 8; ++t) {
        moved_[moved_n] = t;
        moved_n += norm_b_[t] != last_b_[t] ? 1 : 0;
      }
    }
    for (; j < rows_; ++j) {
      moved_[moved_n] = j;
      moved_n += norm_b_[j] != last_b_[j] ? 1 : 0;
    }
    if (moved_n == 0) {
      rhs_unchanged_ = true;
      return;
    }
    ++reprices_since_full_;
    MaterializeBinvColumns(moved_.data(), moved_n);
    for (int k = 0; k < moved_n; ++k) {
      const int j = moved_[k];
      const double d = norm_b_[j] - last_b_[j];
      last_b_[j] = norm_b_[j];
      b_[j] = norm_b_[j];
      LpAxpyD(*kernels_, d,
              binv_pool_ + static_cast<std::size_t>(j) * rows_, x_reprice_,
              rows_);
    }
    // The double master copy is now ahead of the pivot-precision x_basic_;
    // the widen is deferred (WidenReprice) so witness-served re-prices —
    // scan plus extraction, both reading the double master — never pay it.
    // Drift of the double accumulation is bounded by the periodic full
    // re-price, same as before.
    x_basic_stale_ = true;
  } else if (reprice_valid_ && LpEqualD(*kernels_, norm_b_, last_b_, rows_)) {
    // Bitwise-unchanged RHS reaching here (drift interval expired, or a
    // perturbed resolve): same fast exit as the delta scan's.
    rhs_unchanged_ = true;
    return;
  } else {
    for (int i = 0; i < rows_; ++i) b_[i] = norm_b_[i];
    x_basic_ = b_;
    lu_.Ftran(x_basic_);
    x_basic_stale_ = false;
    for (int i = 0; i < rows_; ++i) {
      x_reprice_[i] = static_cast<double>(x_basic_[i]);
      last_b_[i] = norm_b_[i];
    }
    reprice_valid_ = true;
    reprices_since_full_ = 0;
  }
}

void RevisedSimplex::ComputeDuals(const std::vector<double>& cost) {
  cb_.assign(rows_, 0.0);
  for (int i = 0; i < rows_; ++i) cb_[i] = cost[basis_[i]];
  y_ = cb_;
  lu_.Btran(y_);
}

int RevisedSimplex::ChooseLeavingSlot(const std::vector<Scalar>& w) {
  // Scale-aware eligibility: a true zero of the column survives FTRAN as
  // noise of order cond(B)·u·‖w‖, which crosses any absolute threshold
  // once the basis degrades — and pivoting on such noise is what degrades
  // it. The dense backend gets away with an absolute eps only because its
  // long-double tableau keeps the noise floor ~1e-19. Anchoring the
  // threshold to ‖w‖∞ keeps noise entries out of the ratio test.
  Scalar scale = 0.0;
  for (int i = 0; i < rows_; ++i) scale = std::max(scale, std::abs(w[i]));
  const Scalar eps = options_.eps * std::max<Scalar>(1.0, scale);
  // Pass 1: minimum ratio; collect every slot within kLexEps of it.
  Scalar best_ratio = kInf;
  tied_.clear();
  for (int i = 0; i < rows_; ++i) {
    const Scalar a = w[i];
    if (a <= eps) continue;
    const Scalar ratio = x_basic_[i] / a;
    if (ratio < best_ratio - kLexEps) {
      best_ratio = ratio;
      tied_.clear();
      tied_.push_back(i);
    } else if (ratio <= best_ratio + kLexEps) {
      tied_.push_back(i);
    }
  }
  if (tied_.empty()) return -1;
  if (bland_mode_) {
    // Bland's leaving rule: among the min-ratio rows, the smallest basic
    // column index. Combined with smallest-index pricing this provably
    // terminates from any basis — no invariant to maintain, so it is the
    // fallback of record when float rounding erodes the lexicographic
    // comparisons below (see RunPhase).
    int leave = tied_.front();
    for (int i : tied_) {
      if (basis_[i] < basis_[leave]) leave = i;
    }
    return leave;
  }
  // Pass 2: lexicographic tie-break on the rows of B⁻¹ scaled by the pivot
  // entries — the same invariant the dense tableau maintains over its
  // slack/artificial block. Rather than materializing one B⁻¹ *row* per
  // tied slot (a BTRAN per challenger — quadratic on the massively
  // degenerate cutting-plane LPs, where most of the basis ties at ratio
  // zero), compare coordinate by coordinate: one FTRAN materializes column
  // r of B⁻¹ across *all* tied slots at once, and survivors of each
  // coordinate shrink fast (usually to one after a column or two).
  for (int r = 0; r < rows_ && tied_.size() > 1; ++r) {
    unit_.assign(rows_, 0.0);
    unit_[r] = 1.0;
    lu_.Ftran(unit_);  // unit_[i] = (B⁻¹)[i, r], slot-indexed
    Scalar best = kInf;
    for (int i : tied_) best = std::min(best, unit_[i] / w[i]);
    survivors_.clear();
    for (int i : tied_) {
      if (unit_[i] / w[i] <= best + kLexEps) survivors_.push_back(i);
    }
    tied_.swap(survivors_);
  }
  return tied_.front();
}

bool RevisedSimplex::ApplyPivot(int enter, int leave_slot,
                                const std::vector<Scalar>& w) {
  // Every pivot changes B, so the re-price baseline and the witness
  // verdict are stale — but the memoized B⁻¹ columns need not be thrown
  // away: B_new = B_old·E with E the identity except column `leave_slot`
  // = w, so each cached column updates in place with one product-form
  // sweep (below). Only the refactorizing paths flush the memo, which
  // also bounds its accumulated drift by the refactorization cadence —
  // the same bound the FT/eta updates themselves live under.
  reprice_valid_ = false;
  witness_scan_ok_ = false;
  MarkBasisChanged();  // covers both the pivot and the rollback below
  const int out = basis_[leave_slot];
  in_basis_[out] = kNoCol;
  basis_[leave_slot] = enter;
  in_basis_[enter] = leave_slot;
  // Basis update — Forrest–Tomlin rewrites U in place, the legacy mode
  // appends a product-form eta. On rejection (unstable update) or an
  // exhausted update/fill budget, refactorize against the new basis
  // header. Refactorization also recomputes the basic values from b_,
  // squashing accumulated drift.
  // spike_ is the pre-U intermediate the entering column's FTRAN captured
  // (every ApplyPivot call site FTRANs the entering column immediately
  // before, with no factorization change in between), so the update skips
  // its own forward solve.
  const bool updated = lu_.Update(a_, enter, w, leave_slot, &spike_);
  if (updated) {
    if (update_kind_ == BasisUpdateKind::kForrestTomlin) {
      ++stats_.ft_updates;
    } else {
      ++stats_.eta_updates;
    }
  } else {
    ++stats_.rejected_updates;
  }
  if (!updated || lu_.NeedsRefactorize()) {
    ++stats_.refactorizations;
    std::fill(binv_valid_.begin(), binv_valid_.end(), 0);
    if (!lu_.Factorize(a_, basis_)) {
      // The post-pivot basis is numerically singular: the pivot element
      // cleared eps only through drift in the eta stack. Roll the header
      // back and rebuild the previous basis, which factorized before.
      in_basis_[enter] = kNoCol;
      basis_[leave_slot] = out;
      in_basis_[out] = leave_slot;
      if (!Refactorize()) numerical_failure_ = true;
      return false;
    }
    x_basic_ = b_;
    lu_.Ftran(x_basic_);
    x_basic_stale_ = false;
    return true;
  }
  // Carry the B⁻¹ memo through the pivot: B_new⁻¹ = E⁻¹·B_old⁻¹, and
  // E⁻¹y is the standard product-form sweep (t = y_r/w_r; y -= t·w;
  // y_r = t) — O(rows) per cached column instead of a fresh unit FTRAN
  // the next time the column's coordinate moves.
  bool narrowed = false;
  const double w_leave = static_cast<double>(w[leave_slot]);
  for (int j = 0; j < rows_; ++j) {
    if (!binv_valid_[j]) continue;
    if (!narrowed) {
      pivot_w_.resize(rows_);
      for (int i = 0; i < rows_; ++i) {
        pivot_w_[i] = static_cast<double>(w[i]);
      }
      narrowed = true;
    }
    double* col = binv_pool_ + static_cast<std::size_t>(j) * rows_;
    const double t = col[leave_slot] / w_leave;
    if (t != 0.0) {
      LpAxpyD(*kernels_, -t, pivot_w_.data(), col, rows_);
    }
    col[leave_slot] = t;
  }
  const Scalar theta = x_basic_[leave_slot] / w[leave_slot];
  if (theta != 0.0) {
    LpSweepLd(x_basic_.data(), w.data(), theta, rows_);
  }
  x_basic_[leave_slot] = theta;
  return true;
}

bool RevisedSimplex::RunPhase(const std::vector<double>& cost,
                              bool phase_two) {
  const double eps = options_.eps;
  frozen_.assign(cols_, false);
  int consecutive_rejects = 0;
  int stalled = 0;  // degenerate (zero-step) pivots since the last progress
  bland_mode_ = false;
  // Fresh Devex reference framework per phase: every column starts at
  // weight 1 (the framework is the phase-start nonbasic set).
  if (pricing_ == PricingRule::kDevex) devex_w_.assign(cols_, 1.0);
  price_list_.clear();
  while (true) {
    if (numerical_failure_ || iterations_ >= max_iterations_) return false;

    // Anti-cycling, layered: the lexicographic ratio test below is the
    // primary rule (exact-arithmetic termination, same as the dense
    // backend), but its floating-point comparisons can erode on extremely
    // degenerate LPs — so after a long run of zero-step pivots, switch to
    // Bland's rule (smallest-index pricing + smallest-index tie-break),
    // whose termination guarantee holds from any basis with no invariant
    // to preserve. Dantzig/Devex pricing resumes as soon as a pivot moves.
    bland_mode_ = stalled > kBlandStallThreshold;
    // Diagnostic heartbeat (see "Debugging" in src/lp/README.md).
    if (iterations_ % 5000 == 0 && iterations_ > 0 &&
        std::getenv("LPB_RS_DEBUG") != nullptr) {
      Scalar obj = 0.0;
      for (int i = 0; i < rows_; ++i) obj += cost[basis_[i]] * x_basic_[i];
      std::fprintf(
          stderr,
          "RS iter=%d obj=%.9f stalled=%d bland=%d updates=%d rows=%d\n",
          iterations_, static_cast<double>(obj), stalled, bland_mode_ ? 1 : 0,
          lu_.update_count(), rows_);
    }

    // Price: y = B⁻ᵀ c_B once, then one sparse dot per priced column.
    ComputeDuals(cost);
    int enter = kNoCol;
    double best = eps;
    const int limit = phase_two ? first_art_ : cols_;  // artificials barred
    if (bland_mode_) {
      // Bland's entering rule: the smallest eligible index, always over a
      // full sweep (partial pricing would break its termination argument).
      for (int j = 0; j < limit; ++j) {
        if (in_basis_[j] != kNoCol || frozen_[j]) continue;
        const double reduced =
            cost[j] - static_cast<double>(a_.DotColumn(j, y_));
        if (reduced > best) {
          best = reduced;
          enter = j;
          break;
        }
      }
    } else {
      enter = PriceEntering(cost, limit, best);
    }
    if (enter == kNoCol) return true;  // optimal for this phase

    w_.assign(rows_, 0.0);
    for (const SparseEntry* e = a_.ColBegin(enter); e != a_.ColEnd(enter);
         ++e) {
      w_[e->row] = e->value;
    }
    lu_.Ftran(w_, &spike_);

    // Cross-check the BTRAN-priced reduced cost against the FTRAN image
    // (c_j - c_B'w must match c_j - y'A_j). Disagreement means the update
    // chain has drifted; refactorize and re-price rather than pivot on
    // fiction. Skip when the factorization is already fresh.
    if (lu_.update_count() > 0) {
      Scalar cbw = 0.0;
      for (int i = 0; i < rows_; ++i) cbw += cb_[i] * w_[i];
      const double ftran_reduced =
          cost[enter] - static_cast<double>(cbw);
      if (std::abs(ftran_reduced - best) >
          1e-7 * std::max(1.0, std::abs(best))) {
        if (!Refactorize()) return false;
        continue;
      }
    }

    const int leave = ChooseLeavingSlot(w_);
    if (leave == -1) {
      // Same guard as the dense backend: a barely positive reduced cost
      // over a numerically dead column is noise, not a ray.
      if (best <= 1e-6) {
        frozen_[enter] = true;
        continue;
      }
      unbounded_ = true;
      return true;
    }
    // Devex weights ride the pivot row of the *old* basis, so they are
    // staged before the factorization absorbs the pivot — and committed
    // only if the pivot actually goes through (a rejected-and-rolled-back
    // pivot must not leave phantom weight updates behind).
    if (pricing_ == PricingRule::kDevex) {
      PrepareDevexWeights(enter, leave, w_, limit);
    }
    const Scalar step = x_basic_[leave] / w_[leave];
    if (!ApplyPivot(enter, leave, w_)) {
      if (numerical_failure_) return false;
      // The pivot was drift: the rolled-back basis has just been
      // refactorized (accurate, eta-free), so re-price and retry — the
      // honest FTRAN image usually prices the column out or picks a real
      // pivot. Freezing is a last resort after repeated rejections, since
      // wrongly freezing a live column (e.g. the objective variable)
      // silently caps the optimum.
      if (std::getenv("LPB_RS_DEBUG") != nullptr) {
        std::fprintf(stderr,
                     "RS reject: enter=%d leave=%d w_leave=%.3e best=%.3e "
                     "rejects=%d\n",
                     enter, leave, static_cast<double>(w_[leave]), best,
                     consecutive_rejects + 1);
      }
      if (++consecutive_rejects > 2) {
        frozen_[enter] = true;
        consecutive_rejects = 0;
      }
      continue;
    }
    if (pricing_ == PricingRule::kDevex) CommitDevexWeights();
    consecutive_rejects = 0;
    if (step > 1e-12) {
      stalled = 0;
    } else {
      ++stalled;
    }
    ++iterations_;
    if (phase_two) {
      ++stats_.phase2_pivots;
    } else {
      ++stats_.phase1_pivots;
    }
  }
}

int RevisedSimplex::PriceEntering(const std::vector<double>& cost, int limit,
                                  double& best) {
  const double eps = options_.eps;
  const bool partial = limit >= kPartialPricingMinCols;
  // Criterion: reduced cost (Dantzig) or reduced²/γ (Devex); ties break to
  // the lower index via strict comparison, keeping the rule deterministic.
  auto criterion = [&](int j, double reduced) {
    return pricing_ == PricingRule::kDevex ? reduced * reduced / devex_w_[j]
                                           : reduced;
  };
  if (partial && !price_list_.empty()) {
    // Candidate pass: re-price only the list, compacting out columns that
    // went basic, got frozen, or priced out since the last sweep.
    int enter = kNoCol;
    double best_score = 0.0;
    size_t keep = 0;
    for (int j : price_list_) {
      if (in_basis_[j] != kNoCol || frozen_[j]) continue;
      const double reduced =
          cost[j] - static_cast<double>(a_.DotColumn(j, y_));
      if (reduced <= eps) continue;
      price_list_[keep++] = j;
      const double score = criterion(j, reduced);
      if (score > best_score) {
        best_score = score;
        enter = j;
        best = reduced;
      }
    }
    price_list_.resize(keep);
    if (enter != kNoCol) return enter;
    // List ran dry — fall through to a full sweep (which alone may declare
    // optimality).
  }
  int enter = kNoCol;
  double best_score = 0.0;
  std::vector<std::pair<double, int>>& ranked = ranked_;
  ranked.clear();
  for (int j = 0; j < limit; ++j) {
    if (in_basis_[j] != kNoCol || frozen_[j]) continue;
    const double reduced = cost[j] - static_cast<double>(a_.DotColumn(j, y_));
    if (reduced <= eps) continue;
    const double score = criterion(j, reduced);
    if (partial) ranked.emplace_back(score, j);
    if (score > best_score) {
      best_score = score;
      enter = j;
      best = reduced;
    }
  }
  if (partial) {
    // Keep the best few dozen candidates for the following iterations.
    const size_t list_size =
        std::min(ranked.size(), static_cast<size_t>(64 + limit / 32));
    std::partial_sort(ranked.begin(), ranked.begin() + list_size,
                      ranked.end(), [](const auto& a, const auto& b) {
                        return a.first > b.first ||
                               (a.first == b.first && a.second < b.second);
                      });
    price_list_.clear();
    for (size_t k = 0; k < list_size; ++k) {
      price_list_.push_back(ranked[k].second);
    }
  }
  return enter;
}

void RevisedSimplex::PrepareDevexWeights(int enter, int leave_slot,
                                         const std::vector<Scalar>& w,
                                         int limit) {
  devex_pending_.clear();
  devex_pending_out_ = kNoCol;
  const Scalar alpha_q = w[leave_slot];
  if (alpha_q == 0.0) return;
  const int out = basis_[leave_slot];
  const double gamma_q = std::max(devex_w_[enter], 1.0);
  // Pivot row r of B⁻¹A: one unit BTRAN against the pre-pivot basis, then
  // a sparse dot per priced column — the same shape as a pricing pass.
  unit_.assign(rows_, 0.0);
  unit_[leave_slot] = 1.0;
  lu_.Btran(unit_);
  for (int j = 0; j < limit; ++j) {
    if (j == enter || in_basis_[j] != kNoCol || frozen_[j]) continue;
    const Scalar alpha = a_.DotColumn(j, unit_);
    if (alpha == 0.0) continue;
    const double ratio = static_cast<double>(alpha / alpha_q);
    const double candidate = ratio * ratio * gamma_q;
    if (candidate > devex_w_[j]) devex_pending_.emplace_back(j, candidate);
  }
  const double alpha_q2 = static_cast<double>(alpha_q * alpha_q);
  devex_pending_out_ = out;
  devex_pending_out_w_ = std::max(gamma_q / alpha_q2, 1.0);
  devex_pending_reset_ =
      devex_pending_out_w_ > kDevexWeightLimit || gamma_q > kDevexWeightLimit;
}

void RevisedSimplex::CommitDevexWeights() {
  for (const auto& [j, weight] : devex_pending_) {
    if (weight > devex_w_[j]) devex_w_[j] = weight;
  }
  devex_pending_.clear();
  if (devex_pending_out_ == kNoCol) return;
  devex_w_[devex_pending_out_] = devex_pending_out_w_;
  devex_pending_out_ = kNoCol;
  if (devex_pending_reset_) {
    // Weight blow-up: the reference framework no longer approximates the
    // steepest-edge norms — restart it from the current nonbasic set.
    devex_w_.assign(cols_, 1.0);
    ++stats_.devex_resets;
    devex_pending_reset_ = false;
  }
}

RevisedSimplex::DualOutcome RevisedSimplex::RunDualSimplex() {
  WidenReprice();  // pivot sweeps update x_basic_ in pivot precision
  const double eps = options_.eps;
  while (true) {
    if (numerical_failure_ || iterations_ >= max_iterations_) {
      return DualOutcome::kIterationLimit;
    }

    // Leaving slot: most negative basic value.
    int leave = -1;
    Scalar most = -eps;
    for (int i = 0; i < rows_; ++i) {
      if (x_basic_[i] < most) {
        most = x_basic_[i];
        leave = i;
      }
    }
    if (leave == -1) return DualOutcome::kOptimal;  // primal feasible

    // Entering column: dual ratio test over the negative entries of the
    // leaving row, which is materialized with one unit BTRAN. Artificials
    // may not re-enter, matching phase 2.
    ComputeDuals(phase2_cost_);
    unit_.assign(rows_, 0.0);
    unit_[leave] = 1.0;
    row_l_ = unit_;
    lu_.Btran(row_l_);
    // Same scale-aware eligibility as the primal ratio test: entries of
    // the leaving row that are noise at the row's magnitude must not be
    // pivoted on.
    Scalar scale = 0.0;
    for (int i = 0; i < rows_; ++i) {
      scale = std::max(scale, std::abs(row_l_[i]));
    }
    const Scalar alpha_eps = eps * std::max<Scalar>(1.0, scale);
    int enter = kNoCol;
    Scalar best_ratio = kInf;
    for (int j = 0; j < first_art_; ++j) {
      if (in_basis_[j] != kNoCol) continue;
      const Scalar alpha = a_.DotColumn(j, row_l_);
      if (alpha >= -alpha_eps) continue;
      const Scalar reduced = phase2_cost_[j] - a_.DotColumn(j, y_);
      const Scalar ratio = reduced / alpha;
      if (ratio < best_ratio - kLexEps) {
        best_ratio = ratio;
        enter = j;
      }
    }
    if (enter == kNoCol) return DualOutcome::kInfeasible;  // dual ray

    w_.assign(rows_, 0.0);
    for (const SparseEntry* e = a_.ColBegin(enter); e != a_.ColEnd(enter);
         ++e) {
      w_[e->row] = e->value;
    }
    lu_.Ftran(w_, &spike_);
    if (std::abs(w_[leave]) <= eps) {
      // The FTRAN image disagrees with the BTRAN row (numerical drift):
      // bail to the caller's cold fallback rather than divide by noise.
      return DualOutcome::kIterationLimit;
    }
    if (!ApplyPivot(enter, leave, w_)) {
      return DualOutcome::kIterationLimit;  // caller falls back to cold
    }
    ++iterations_;
    ++stats_.dual_pivots;
  }
}

void RevisedSimplex::EvictArtificials() {
  for (int i = 0; i < rows_; ++i) {
    if (numerical_failure_) return;
    if (basis_[i] < first_art_) continue;
    // Basic artificial at value ~0 after a feasible phase 1: pivot in any
    // non-artificial column with a nonzero entry in this row of B⁻¹A; if
    // none exists the row is redundant and the artificial stays basic at
    // zero, which is harmless.
    unit_.assign(rows_, 0.0);
    unit_[i] = 1.0;
    row_l_ = unit_;
    lu_.Btran(row_l_);
    for (int j = 0; j < first_art_; ++j) {
      if (in_basis_[j] != kNoCol) continue;
      if (std::abs(static_cast<double>(a_.DotColumn(j, row_l_))) <=
          options_.eps) {
        continue;
      }
      w_.assign(rows_, 0.0);
      for (const SparseEntry* e = a_.ColBegin(j); e != a_.ColEnd(j); ++e) {
        w_[e->row] = e->value;
      }
      lu_.Ftran(w_, &spike_);
      if (std::abs(w_[i]) <= options_.eps) continue;
      if (!ApplyPivot(j, i, w_)) {
        if (numerical_failure_) return;
        continue;  // try another column; the artificial can also stay
      }
      ++iterations_;
      ++stats_.phase1_pivots;  // artificial eviction is phase-1 cleanup
      break;
    }
  }
}

void RevisedSimplex::FillKernelStats() {
  for (int k = 0; k < kNumLpKernels; ++k) {
    stats_.kernel_calls[k] =
        g_lp_kernel_counters.calls[k] - kernel_base_.calls[k];
    stats_.kernel_cycles[k] =
        g_lp_kernel_counters.cycles[k] - kernel_base_.cycles[k];
  }
}

void RevisedSimplex::ExtractOptimal(LpEvalPath path, LpResult& result,
                                    bool repeat) {
  result.status = LpStatus::kOptimal;
  result.iterations = iterations_;
  result.path = path;
  if (repeat && result_cache_valid_) {
    // x_basic_ is bitwise-unchanged since the extraction that filled the
    // cache (the caller holds rhs_unchanged_ && witness_scan_ok_), so the
    // x/objective/duals here are the cached ones by construction. Serving
    // them as flat double copies skips the per-entry long-double→double
    // scatter and the objective dot on the repeated-RHS hot path.
    result.x = cached_x_;
    result.objective = cached_objective_;
    result.pricing = pricing_;
    result.duals = cached_duals_;
    has_basis_ = true;
    FillKernelStats();
    result.stats = stats_;
    return;
  }
  result.x.assign(problem_.num_vars(), 0.0);
  // BasicValue: reads the double re-price master directly when x_basic_
  // is lagging it — the extracted doubles are bitwise what the widened
  // copy would narrow back to, so no widen is forced here.
  for (int i = 0; i < rows_; ++i) {
    if (basis_[i] < problem_.num_vars()) {
      result.x[basis_[i]] = BasicValue(i);
    }
  }
  result.objective = LpDotD(*kernels_, phase2_cost_.data(), result.x.data(),
                            problem_.num_vars());
  cached_x_ = result.x;
  cached_objective_ = result.objective;
  result_cache_valid_ = true;
  result.pricing = pricing_;

  if (path == LpEvalPath::kWitness && !cached_duals_.empty()) {
    // Same basis, same cost: the duals are the previous solve's.
    result.duals = cached_duals_;
  } else {
    // One BTRAN: y = B⁻ᵀ c_B are the duals of the normalized rows; undo
    // the row signs to express them against the caller's constraints.
    ComputeDuals(phase2_cost_);
    result.duals.assign(rows_, 0.0);
    for (int i = 0; i < rows_; ++i) {
      result.duals[i] = static_cast<double>(y_[i]) * row_sign_[i];
    }
    cached_duals_ = result.duals;
  }
  has_basis_ = true;
  FillKernelStats();
  result.stats = stats_;
}

void RevisedSimplex::Failure(LpStatus status, LpResult& result) {
  result.status = status;
  result.objective = 0.0;
  result.iterations = iterations_;
  result.path = LpEvalPath::kCold;
  result.pricing = pricing_;
  FillKernelStats();
  result.stats = stats_;
  // The LpResult contract: x/duals are sized (zeros) even on failure so
  // callers indexing them unconditionally never read stale data.
  result.x.assign(problem_.num_vars(), 0.0);
  result.duals.assign(problem_.num_constraints(), 0.0);
}

LpResult RevisedSimplex::Solve(const std::vector<double>& rhs) {
  LpResult result;
  stats_.ResetPivots();
  kernel_base_ = g_lp_kernel_counters;
  SolveFromScratch(rhs, result);
  return result;
}

void RevisedSimplex::SolveFromScratch(const std::vector<double>& rhs,
                                      LpResult& result) {
  // First attempt: anti-degeneracy perturbation with exact cleanup (see
  // SolveCore). On the heavily degenerate bound LPs the unperturbed
  // simplex can reach the optimal objective and then wander the optimal
  // face for 100k+ zero-step pivots without proving optimality; the
  // perturbed problem is nondegenerate, so pricing races to the optimum
  // and the cleanup restores exactness. A user-supplied perturbation
  // (options_.perturb) disables the internal one — matching the dense
  // backend, the caller then owns the perturbed semantics.
  if (options_.perturb == 0.0) {
    SolveCore(rhs, /*anti_degeneracy=*/true, result);
    if (!cleanup_failed_) return;
  }
  SolveCore(rhs, /*anti_degeneracy=*/false, result);
}

void RevisedSimplex::SolveCore(const std::vector<double>& rhs,
                               bool anti_degeneracy, LpResult& result) {
  iterations_ = 0;
  numerical_failure_ = false;
  cleanup_failed_ = false;
  Build(rhs);
  max_iterations_ = options_.max_iterations > 0
                        ? options_.max_iterations
                        : 50 * (rows_ + cols_) + 1000;
  if (numerical_failure_) return Failure(LpStatus::kIterationLimit, result);
  if (anti_degeneracy) {
    // Graded positive shifts, the same shape as SimplexOptions::perturb.
    // Magnitude: far above the long-double noise floor, far below the
    // data; exactness is restored by the cleanup below, not by keeping
    // this small.
    for (int i = 0; i < rows_; ++i) {
      b_[i] += kAntiDegeneracyEps * (1 + i % 101);
    }
    x_basic_ = b_;
    lu_.Ftran(x_basic_);
  }

  // Phase 1: maximize -sum(artificials), feasible iff optimum is 0.
  if (first_art_ < cols_) {
    std::vector<double> cost(cols_, 0.0);
    for (int j = first_art_; j < cols_; ++j) cost[j] = -1.0;
    if (!RunPhase(cost, /*phase_two=*/false)) {
      cleanup_failed_ = anti_degeneracy;
      return Failure(LpStatus::kIterationLimit, result);
    }
    Scalar infeas = 0.0;
    for (int i = 0; i < rows_; ++i) {
      if (basis_[i] >= first_art_) infeas += x_basic_[i];
    }
    if (infeas > 1e-7) {
      // An infeasibility verdict under perturbation is not trustworthy:
      // shifting linearly dependent equality rows by different amounts
      // manufactures inconsistency a feasible problem never had. Only the
      // unperturbed run may declare infeasible.
      cleanup_failed_ = anti_degeneracy;
      return Failure(LpStatus::kInfeasible, result);
    }
    EvictArtificials();
    if (numerical_failure_) {
      cleanup_failed_ = anti_degeneracy;
      return Failure(LpStatus::kIterationLimit, result);
    }
  }

  // Phase 2: the real objective; artificials are barred from entering.
  unbounded_ = false;
  if (!RunPhase(phase2_cost_, /*phase_two=*/true)) {
    cleanup_failed_ = anti_degeneracy;
    return Failure(LpStatus::kIterationLimit, result);
  }
  if (unbounded_) {
    // The certifying ray lives in the recession cone, which no RHS shift
    // changes — but "unbounded" also asserts the problem is *feasible*,
    // and the perturbation does change that (a problem infeasible by less
    // than the shifts can open up). Trust the verdict only if the current
    // basis is also feasible at the true RHS; otherwise re-run
    // unperturbed.
    if (anti_degeneracy) {
      for (int i = 0; i < rows_; ++i) b_[i] = NormalizedRhs(i, rhs);
      x_basic_ = b_;
      lu_.Ftran(x_basic_);
      for (int i = 0; i < rows_; ++i) {
        if (x_basic_[i] < -options_.eps ||
            (basis_[i] >= first_art_ &&
             std::abs(static_cast<double>(x_basic_[i])) > 1e-7)) {
          cleanup_failed_ = true;
          break;
        }
      }
    }
    return Failure(LpStatus::kUnbounded, result);
  }
  if (!anti_degeneracy) return ExtractOptimal(LpEvalPath::kCold, result);

  // Cleanup: drop the perturbation and re-price the true RHS under the
  // perturbed-optimal basis. The basis stays dual-feasible (costs are
  // untouched), so at worst a few dual-simplex pivots repair the slightly
  // negative basic values; if anything fails, Solve() re-runs without the
  // perturbation.
  for (int i = 0; i < rows_; ++i) b_[i] = NormalizedRhs(i, rhs);
  x_basic_ = b_;
  lu_.Ftran(x_basic_);
  bool feasible = true;
  for (int i = 0; i < rows_; ++i) {
    if (x_basic_[i] < -options_.eps) feasible = false;
    if (basis_[i] >= first_art_ &&
        std::abs(static_cast<double>(x_basic_[i])) > 1e-7) {
      cleanup_failed_ = true;
      return Failure(LpStatus::kIterationLimit, result);
    }
  }
  if (feasible) return ExtractOptimal(LpEvalPath::kCold, result);
  if (RunDualSimplex() == DualOutcome::kOptimal) {
    return ExtractOptimal(LpEvalPath::kCold, result);
  }
  cleanup_failed_ = true;
  return Failure(LpStatus::kIterationLimit, result);
}

void RevisedSimplex::ResolveCascade(const std::vector<double>& rhs,
                                    LpResult& result) {
  // Re-price the RHS under the cached factorization: B⁻¹b' — incremental
  // against the previous re-price when the factorization is unchanged
  // (O(rows × moved coordinates)), one fresh FTRAN otherwise. No pivots,
  // no matrix rebuild either way (see RepriceRhs).
  RepriceRhs(rhs);
  // Memoized scan: an unchanged x_basic_ that already passed the scan
  // below passes it again — rescanning identical bits is pure overhead.
  if (rhs_unchanged_ && witness_scan_ok_) {
    return ExtractOptimal(LpEvalPath::kWitness, result, /*repeat=*/true);
  }

  switch (ScanBasics()) {
    case ScanVerdict::kArtificial:
      // A basic artificial forced away from zero means the cached basis
      // cannot represent this RHS at all (a previously-redundant row
      // became inconsistent); only a cold solve can decide feasibility.
      return SolveFromScratch(rhs, result);
    case ScanVerdict::kFeasible:
      // Witness reuse: the basis is still optimal; zero pivots needed.
      witness_scan_ok_ = true;
      return ExtractOptimal(LpEvalPath::kWitness, result);
    case ScanVerdict::kInfeasible:
      break;
  }
  witness_scan_ok_ = false;

  switch (RunDualSimplex()) {
    case DualOutcome::kOptimal:
      return ExtractOptimal(LpEvalPath::kWarm, result);
    case DualOutcome::kInfeasible:
    case DualOutcome::kIterationLimit:
      // A dual ray certifies primal infeasibility in exact arithmetic, but
      // a cold two-phase solve is cheap insurance against drift in the
      // warmed factorization — and also covers the dual-simplex stall.
      return SolveFromScratch(rhs, result);
  }
  return SolveFromScratch(rhs, result);  // unreachable
}

LpResult RevisedSimplex::ResolveWithRhs(const std::vector<double>& rhs) {
  LpResult result;
  kernel_base_ = g_lp_kernel_counters;
  stats_.ResetPivots();
  if (!has_basis_) {
    SolveFromScratch(rhs, result);
    return result;
  }
  iterations_ = 0;
  numerical_failure_ = false;
  max_iterations_ = options_.max_iterations > 0
                        ? options_.max_iterations
                        : 50 * (rows_ + cols_) + 1000;
  ResolveCascade(rhs, result);
  return result;
}

bool RevisedSimplex::AddConstraintsWarm(const std::vector<LpConstraint>& rows,
                                        const std::vector<double>& rhs,
                                        LpResult& result) {
  const int k = static_cast<int>(rows.size());
  const int new_rows = rows_ + k;
  // Decline checks run strictly before any mutation (the contract lets
  // the caller fall back to a cold rebuild on false).
  if (k == 0 || !has_basis_ || numerical_failure_ || !lu_.factorized() ||
      first_art_ != cols_ ||
      static_cast<int>(rhs.size()) != new_rows) {
    return false;
  }
  // Each appended row must normalize (same rule as NormalizeRows) to a <=
  // row, whose slack can enter the basis directly; anything needing an
  // artificial breaks the slacks-are-the-tail column layout.
  std::vector<double> new_sign(k, 1.0);
  for (int i = 0; i < k; ++i) {
    const double b = rhs[rows_ + i];
    LpSense s = rows[i].sense;
    if (b < 0.0 || (s == LpSense::kGe && b == 0.0)) {
      new_sign[i] = -1.0;
      s = s == LpSense::kLe ? LpSense::kGe
          : s == LpSense::kGe ? LpSense::kLe
                              : LpSense::kEq;
    }
    if (s != LpSense::kLe) return false;
  }

  // Commit point: from here every path produces a result (worst case an
  // internal cold re-solve of the grown problem).
  kernel_base_ = g_lp_kernel_counters;
  stats_.ResetPivots();
  stats_.row_appends += k;
  for (const LpConstraint& c : rows) {
    problem_.AddConstraint(c.terms, c.sense, c.rhs);
  }

  // Scatter the sign-normalized new rows into the existing structural
  // columns, then append one unit slack column per row at the tail of the
  // column space (no artificials exist, so the global numbering —
  // structural, then slacks — is preserved).
  std::vector<std::vector<std::pair<int, double>>> row_entries(k);
  for (int i = 0; i < k; ++i) {
    row_entries[i].reserve(rows[i].terms.size());
    for (const LpTerm& term : rows[i].terms) {
      row_entries[i].emplace_back(term.var, new_sign[i] * term.coef);
    }
  }
  a_.AppendRows(k, row_entries);
  for (int i = 0; i < k; ++i) {
    a_.AppendColumn({{rows_ + i, 1.0}});
    row_sign_.push_back(new_sign[i]);
    basis_.push_back(cols_ + i);
  }
  const int first_new_row = rows_;
  rows_ = new_rows;
  cols_ += k;
  first_art_ = cols_;
  MarkBasisChanged();
  in_basis_.resize(cols_, kNoCol);
  for (int i = 0; i < k; ++i) in_basis_[basis_[first_new_row + i]] =
      first_new_row + i;
  phase2_cost_.resize(cols_, 0.0);

  // Re-layout the arena scratch for the larger row count (the B⁻¹ pool is
  // rows_², so growth re-allocates it regardless); the re-pricing state is
  // invalidated below, so nothing here needs preserving.
  arena_.Reset();
  problem_rhs_ = arena_.AllocArray<double>(rows_);
  perturb_term_ = arena_.AllocArray<double>(rows_);
  norm_b_ = arena_.AllocArray<double>(rows_);
  last_b_ = arena_.AllocArray<double>(rows_);
  x_reprice_ = arena_.AllocArray<double>(rows_);
  binv_pool_ =
      arena_.AllocArray<double>(static_cast<std::size_t>(rows_) * rows_);
  binv_block_ = arena_.AllocArray<Scalar>(static_cast<std::size_t>(rows_) *
                                          kBinvBlockLanes);
  for (int i = 0; i < rows_; ++i) {
    problem_rhs_[i] = problem_.constraint(i).rhs;
    perturb_term_[i] = options_.perturb * (1 + i % 101);
  }
  binv_valid_.assign(rows_, 0);
  InvalidateReprice();
  result_cache_valid_ = false;
  cached_duals_.clear();

  b_.resize(rows_);
  for (int i = 0; i < rows_; ++i) b_[i] = NormalizedRhs(i, rhs);

  // Grow the LU factorization by the bordered slack columns; refactorize
  // when the growth is refused (pending legacy etas, degenerate layout) or
  // the appended fill trips the budget. The grown basis [[B,0],[C,I]] is
  // nonsingular whenever B was, so a refactorization failure here is a
  // genuine numerical breakdown — handled by the cold fallback below.
  iterations_ = 0;
  numerical_failure_ = false;
  max_iterations_ = options_.max_iterations > 0
                        ? options_.max_iterations
                        : 50 * (rows_ + cols_) + 1000;
  bool factor_ok = lu_.AppendBorderedRows(a_, basis_, first_new_row);
  if (factor_ok && lu_.NeedsRefactorize()) factor_ok = false;
  if (!factor_ok) {
    ++stats_.append_refactorizations;
    ++stats_.refactorizations;
    if (!lu_.Factorize(a_, basis_)) {
      SolveFromScratch(rhs, result);
      return true;
    }
  }
  x_basic_ = b_;
  lu_.Ftran(x_basic_);

  // The extended basis is dual feasible by construction — the new slacks
  // cost 0 and the new rows' duals are 0, so every reduced cost of the
  // previous optimum is unchanged — and the only primal infeasibilities
  // are the appended rows the old optimum violates. Dual simplex repairs
  // exactly those.
  const int dual_before = stats_.dual_pivots;
  const DualOutcome outcome = RunDualSimplex();
  stats_.dual_repair_pivots += stats_.dual_pivots - dual_before;
  switch (outcome) {
    case DualOutcome::kOptimal:
      ExtractOptimal(LpEvalPath::kWarm, result);
      return true;
    case DualOutcome::kInfeasible:
    case DualOutcome::kIterationLimit:
      // Same insurance as ResolveCascade: decide infeasibility (or repair
      // a numerical stall) with a cold solve of the grown problem.
      SolveFromScratch(rhs, result);
      return true;
  }
  SolveFromScratch(rhs, result);  // unreachable
  return true;
}

void RevisedSimplex::ResolveWithRhsBatch(
    std::span<const std::vector<double>> rhs_batch,
    std::vector<LpResult>& out) {
  // Each column runs the same ResolveCascade as the scalar path — the
  // batch contract (lp_backend.h) promises results identical to the
  // scalar sequence. What the block amortizes: every witness-valid column
  // is one incremental re-price (or FTRAN) through the same cached
  // factorization plus a read of the shared cached duals (the cost-row
  // BTRAN ran once, at the solve that cached the basis), with no per-call
  // dispatch or limit recomputation in between — and the results land in
  // the caller's reused vector, so the per-column x/duals allocations of
  // the old value-returning path are gone too.
  out.resize(rhs_batch.size());
  const int batch_max_iterations = options_.max_iterations > 0
                                       ? options_.max_iterations
                                       : 50 * (rows_ + cols_) + 1000;
  for (std::size_t c = 0; c < rhs_batch.size(); ++c) {
    LpResult& result = out[c];
    kernel_base_ = g_lp_kernel_counters;
    stats_.ResetPivots();
    if (!has_basis_) {
      // First solve, or a stale column above lost the basis: cold solve,
      // exactly as the scalar cascade would.
      SolveFromScratch(rhs_batch[c], result);
      continue;
    }
    iterations_ = 0;
    numerical_failure_ = false;
    max_iterations_ = batch_max_iterations;
    ResolveCascade(rhs_batch[c], result);
  }
}

void RevisedSimplex::ResolveWithRhsBatchRelaxed(
    std::span<const std::vector<double>> rhs_batch,
    std::vector<LpResult>& out) {
  if (!has_basis_) {
    ResolveWithRhsBatch(rhs_batch, out);
    return;
  }
  out.resize(rhs_batch.size());
  const int batch_max_iterations = options_.max_iterations > 0
                                       ? options_.max_iterations
                                       : 50 * (rows_ + cols_) + 1000;
  // Pass 1: witness-only, against the pinned current basis. No pivots
  // happen here, so the factorization — and with it the B⁻¹-column memo
  // feeding the incremental re-price — stays valid for every column of
  // the pass. A column the pinned basis cannot serve (primal-infeasible
  // x, or a basic artificial forced off zero) is deferred, not pivoted:
  // the witness verdicts of the remaining columns do not depend on it.
  stale_cols_.clear();
  for (std::size_t c = 0; c < rhs_batch.size(); ++c) {
    LpResult& result = out[c];
    kernel_base_ = g_lp_kernel_counters;
    stats_.ResetPivots();
    iterations_ = 0;
    numerical_failure_ = false;
    max_iterations_ = batch_max_iterations;
    RepriceRhs(rhs_batch[c]);
    if (rhs_unchanged_ && witness_scan_ok_) {
      ExtractOptimal(LpEvalPath::kWitness, result, /*repeat=*/true);
      continue;
    }
    if (ScanBasics() == ScanVerdict::kFeasible) {
      witness_scan_ok_ = true;
      ExtractOptimal(LpEvalPath::kWitness, result);
      continue;
    }
    witness_scan_ok_ = false;
    stale_cols_.push_back(c);
  }
  // Pass 2: the deferred columns, grouped by the basis that serves them.
  // A batch's RHS columns cluster around a handful of optimal bases, so
  // after each pivot episode (one deferred column run through the full
  // scalar cascade) the repaired basis typically covers several of the
  // columns still waiting — sweeping them here with the same witness test
  // as pass 1 turns O(stale) pivot episodes into O(distinct bases).
  // Objectives still match the scalar sequence's (same LP, same RHS); the
  // basis a column is read off may legitimately differ.
  std::size_t head = 0;
  while (head < stale_cols_.size()) {
    const std::size_t c = stale_cols_[head++];
    LpResult& result = out[c];
    kernel_base_ = g_lp_kernel_counters;
    stats_.ResetPivots();
    if (!has_basis_) {
      SolveFromScratch(rhs_batch[c], result);
      continue;
    }
    iterations_ = 0;
    numerical_failure_ = false;
    max_iterations_ = batch_max_iterations;
    ResolveCascade(rhs_batch[c], result);
    if (!has_basis_) continue;
    if (result.status == LpStatus::kOptimal && !reprice_valid_ &&
        options_.perturb == 0.0) {
      // The episode pivoted (a still-valid baseline skips this): re-seed
      // the incremental re-price baseline from the cascade's own basics —
      // x_basic_ is B⁻¹b_ for the repaired basis, maintained through the
      // pivot sweeps — so the witness sweep below prices the remaining
      // deferred columns incrementally instead of opening with a full
      // FTRAN. Drift inherited from the sweeps is bounded the same way
      // theirs is (refactorization cadence), and kFullRepriceInterval
      // still forces periodic fresh FTRANs.
      for (int i = 0; i < rows_; ++i) {
        x_reprice_[i] = static_cast<double>(x_basic_[i]);
        last_b_[i] = static_cast<double>(b_[i]);
      }
      x_basic_stale_ = false;
      reprice_valid_ = true;
      reprices_since_full_ = 0;
    }
    // Serve every remaining deferred column the repaired basis already
    // covers; the rest compact in place and wait for the next episode.
    std::size_t keep = head;
    for (std::size_t r = head; r < stale_cols_.size(); ++r) {
      const std::size_t d = stale_cols_[r];
      LpResult& res = out[d];
      kernel_base_ = g_lp_kernel_counters;
      stats_.ResetPivots();
      iterations_ = 0;
      numerical_failure_ = false;
      max_iterations_ = batch_max_iterations;
      RepriceRhs(rhs_batch[d]);
      if (rhs_unchanged_ && witness_scan_ok_) {
        ExtractOptimal(LpEvalPath::kWitness, res, /*repeat=*/true);
        continue;
      }
      if (ScanBasics() == ScanVerdict::kFeasible) {
        witness_scan_ok_ = true;
        ExtractOptimal(LpEvalPath::kWitness, res);
        continue;
      }
      witness_scan_ok_ = false;
      stale_cols_[keep++] = d;
    }
    stale_cols_.resize(keep);
  }
}

}  // namespace lpb
