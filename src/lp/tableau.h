// Compile-once / solve-many simplex handle.
//
// SimplexTableau splits the LP lifecycle that SolveLp() fuses: the
// constraint *matrix* and objective are fixed at construction ("compile"),
// while the right-hand side is a parameter of each solve. This matches the
// bound LPs of the paper exactly — Eq. (36)'s matrix depends only on the
// query structure and the statistic shapes, and the concrete ℓp-norm values
// log_b enter solely through the RHS — so a query template is compiled once
// and re-evaluated per statistics snapshot.
//
// Three evaluation paths, cheapest first (LpResult::path reports which ran):
//   * kWitness — the optimal basis cached by the previous solve is still
//     primal-feasible at the new RHS. Since the matrix and objective are
//     unchanged, the basis is still dual-feasible by construction, so the
//     result is read off the cached factorization with zero pivots: the new
//     basic solution is B⁻¹b' (only the nonzero RHS entries contribute) and
//     the duals — the paper's witness weights w_i — are unchanged.
//   * kWarm — the cached basis went primal-infeasible; dual-simplex pivots
//     restore feasibility starting from the still-dual-feasible basis,
//     typically in a handful of iterations for small RHS perturbations.
//   * kCold — no cached basis (first solve, or the previous solve did not
//     end optimal), or the warm path failed; full two-phase primal simplex.
//
// The pivoting itself is delegated to one of two backends chosen at
// construction (SimplexOptions::backend, or the LPB_LP_BACKEND environment
// variable when the option is kDefault): the dense long-double tableau
// (lp/dense_tableau.h, the default) or the sparse revised simplex with an
// LU-factorized basis (lp/revised_simplex.h). Both honor the identical
// contract; LpResult::backend reports which one served a result. See
// src/lp/README.md for the selection and parity story.
#ifndef LPB_LP_TABLEAU_H_
#define LPB_LP_TABLEAU_H_

#include <memory>
#include <span>
#include <vector>

#include "lp/lp_backend.h"
#include "lp/lp_problem.h"
#include "lp/simplex.h"

namespace lpb {

class SimplexTableau {
 public:
  // Compiles the column layout and row normalization from `problem`. The
  // problem is copied; the tableau owns everything it needs.
  explicit SimplexTableau(const LpProblem& problem,
                          const SimplexOptions& options = {});

  int num_constraints() const { return num_constraints_; }

  // Which backend this tableau pivots with (resolved, never kDefault).
  LpBackendKind backend() const { return kind_; }

  // Cold two-phase solve. `rhs` (size num_constraints) overrides the
  // problem's right-hand sides; empty uses the problem's own. On an optimal
  // finish the final basis is cached for ResolveWithRhs.
  LpResult Solve(const std::vector<double>& rhs = {});

  // Warm re-solve against a new RHS, reusing the cached optimal basis (see
  // file comment for the witness / warm / cold cascade). Behaves like
  // Solve(rhs) when no basis is cached.
  LpResult ResolveWithRhs(const std::vector<double>& rhs);

  // Multi-RHS warm re-solve: runs the cascade on every column of
  // `rhs_batch` in order, producing results identical to per-column
  // ResolveWithRhs calls (the cached basis evolves across columns exactly
  // as it would across scalar calls). The revised backend amortizes the
  // block: one cached LU factorization serves an FTRAN per column and the
  // cached duals (one cost-row BTRAN) serve every witness-valid column;
  // only columns whose basis goes stale pay dual-simplex or cold work.
  std::vector<LpResult> ResolveWithRhsBatch(
      std::span<const std::vector<double>> rhs_batch);
  // Allocation-free form: results land in `out` (resized and fully
  // overwritten), so a caller looping over batches reuses the vector and
  // each element's x/duals capacity instead of re-allocating per column.
  void ResolveWithRhsBatch(std::span<const std::vector<double>> rhs_batch,
                           std::vector<LpResult>& out);

  // Order-relaxed block resolve: same objective values and statuses as
  // ResolveWithRhsBatch, but witness-valid columns are served first
  // against one pinned basis (keeping the B⁻¹-column memo and the
  // incremental re-price baseline valid for the whole pass) and stale
  // columns pivot afterwards — so a handful of pivoting columns no longer
  // forces every later column back to full FTRAN re-prices. Not bitwise
  // identical to the scalar sequence; used by the cutting-plane batch
  // path, whose parity contract is tolerance, not bits (bound_engine.h).
  void ResolveWithRhsBatchRelaxed(
      std::span<const std::vector<double>> rhs_batch,
      std::vector<LpResult>& out);

  // Incremental row append on top of the cached optimal basis (the
  // cutting-plane growth path): installs `rows` with their slacks basic —
  // the previous optimum keeps its duals, so the extended basis is dual
  // feasible by construction — and runs dual simplex to repair only the
  // rows the old optimum violates. `rhs` is the full new RHS including the
  // appended rows. Returns false when the backend declines (no cached
  // basis, a row that does not normalize to <=, or an existing artificial
  // column); on decline the tableau is unchanged and the caller must
  // recompile + solve cold. See LpBackendImpl::AddConstraintsWarm.
  bool AddConstraintsWarm(const std::vector<LpConstraint>& rows,
                          const std::vector<double>& rhs, LpResult& result);

  // True after a solve that ended kOptimal: ResolveWithRhs can warm-start.
  bool has_optimal_basis() const { return impl_->has_optimal_basis(); }
  // Basic column index per row of the cached basis (internal column ids:
  // structural columns first, then slack/surplus, then artificial).
  const std::vector<int>& basis() const { return impl_->basis(); }

 private:
  LpBackendKind kind_;
  int num_constraints_;
  std::unique_ptr<LpBackendImpl> impl_;
};

}  // namespace lpb

#endif  // LPB_LP_TABLEAU_H_
