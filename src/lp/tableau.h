// Compile-once / solve-many simplex tableau.
//
// SimplexTableau splits the LP lifecycle that SolveLp() fuses: the
// constraint *matrix* and objective are fixed at construction ("compile"),
// while the right-hand side is a parameter of each solve. This matches the
// bound LPs of the paper exactly — Eq. (36)'s matrix depends only on the
// query structure and the statistic shapes, and the concrete ℓp-norm values
// log_b enter solely through the RHS — so a query template is compiled once
// and re-evaluated per statistics snapshot.
//
// Three evaluation paths, cheapest first (LpResult::path reports which ran):
//   * kWitness — the optimal basis cached by the previous solve is still
//     primal-feasible at the new RHS. Since the matrix and objective are
//     unchanged, the basis is still dual-feasible by construction, so the
//     result is read off the cached factorization with zero pivots: the new
//     basic solution is B⁻¹b' (only the nonzero RHS entries contribute) and
//     the duals — the paper's witness weights w_i — are unchanged.
//   * kWarm — the cached basis went primal-infeasible; dual-simplex pivots
//     restore feasibility starting from the still-dual-feasible basis,
//     typically in a handful of iterations for small RHS perturbations.
//   * kCold — no cached basis (first solve, or the previous solve did not
//     end optimal), or the warm path failed; full two-phase primal simplex.
#ifndef LPB_LP_TABLEAU_H_
#define LPB_LP_TABLEAU_H_

#include <vector>

#include "lp/lp_problem.h"
#include "lp/simplex.h"

namespace lpb {

class SimplexTableau {
 public:
  // Compiles the column layout and row normalization from `problem`. The
  // problem is copied; the tableau owns everything it needs.
  explicit SimplexTableau(const LpProblem& problem,
                          const SimplexOptions& options = {});

  int num_constraints() const { return problem_.num_constraints(); }

  // Cold two-phase solve. `rhs` (size num_constraints) overrides the
  // problem's right-hand sides; empty uses the problem's own. On an optimal
  // finish the final basis is cached for ResolveWithRhs.
  LpResult Solve(const std::vector<double>& rhs = {});

  // Warm re-solve against a new RHS, reusing the cached optimal basis (see
  // file comment for the witness / warm / cold cascade). Behaves like
  // Solve(rhs) when no basis is cached.
  LpResult ResolveWithRhs(const std::vector<double>& rhs);

  // True after a solve that ended kOptimal: ResolveWithRhs can warm-start.
  bool has_optimal_basis() const { return has_basis_; }
  // Basic column index per row of the cached basis (internal column ids:
  // structural columns first, then slack/surplus, then artificial).
  const std::vector<int>& basis() const { return basis_; }

 private:
  using Scalar = long double;

  static constexpr int kNoCol = -1;

  void Build(const std::vector<double>& rhs);
  // Runs one primal simplex phase on `cost`; returns false on iteration
  // limit. Sets unbounded_ if a ray is detected (meaningful in phase 2).
  bool RunPhase(const std::vector<double>& cost, bool phase_two);
  // Dual simplex from a dual-feasible basis toward primal feasibility.
  enum class DualOutcome { kOptimal, kInfeasible, kIterationLimit };
  DualOutcome RunDualSimplex();
  void ComputeReducedCosts(const std::vector<double>& cost);
  void Pivot(int row, int col);
  // After phase 1: pivot basic artificials out where possible.
  void EvictArtificials();
  // Normalized RHS entry for row i (row sign + optional perturbation).
  Scalar NormalizedRhs(int i, const std::vector<double>& rhs) const;
  // Reads the optimal result off the current tableau.
  LpResult ExtractOptimal(LpEvalPath path);

  LpProblem problem_;
  SimplexOptions options_;

  int rows_ = 0;
  int cols_ = 0;        // total variable columns (structural+slack+artificial)
  int first_art_ = 0;   // first artificial column index
  std::vector<std::vector<Scalar>> t_;  // rows_ x (cols_ + 1)
  std::vector<int> basis_;              // basic column per row
  std::vector<Scalar> reduced_;         // reduced costs, size cols_
  // For each original constraint: the column whose original A-column is
  // +e_i (slack for LE, artificial for GE/EQ) and the row sign applied
  // during normalization. Column dual_col_[i] of the current tableau is
  // therefore the i-th column of B⁻¹ — used both to recover duals and to
  // re-price a new RHS without rebuilding.
  std::vector<int> dual_col_;
  std::vector<double> row_sign_;
  std::vector<double> phase2_cost_;     // structural objective, padded to cols_

  int iterations_ = 0;
  int max_iterations_ = 0;
  bool unbounded_ = false;
  bool has_basis_ = false;
  // Duals of the cached basis. The witness path reuses them verbatim —
  // duals depend only on (basis, cost), both unchanged there — skipping
  // the O(rows × cols) reduced-cost recomputation on the hot path.
  std::vector<double> cached_duals_;
  // Columns disabled for the current phase (numerically dead, see RunPhase).
  std::vector<bool> frozen_;
};

}  // namespace lpb

#endif  // LPB_LP_TABLEAU_H_
