// Dense inner-loop kernels of the LP backends, with runtime SIMD dispatch.
//
// The batch estimate path is dominated by straight-line dense loops — RHS
// normalization, B⁻¹ delta re-pricing, objective dots, pivot-row sweeps —
// not by pivoting logic. This layer extracts those loops so they can be
// (a) counted and cycle-timed per kernel (the perf gate pins a regression
// to a kernel, not a backend), and (b) vectorized where the element type
// allows it.
//
// == The bitwise contract ==
//
// Every kernel has exactly one numerical semantics, specified below in
// scalar terms; the AVX2/FMA variants realize the *same* operation order
// and widths, so `LPB_LP_SIMD=auto` and `=scalar` produce bit-identical
// results (enforced by tests/test_lp_kernels.cc across sizes and
// alignments, and end-to-end by the parity matrix of test_batch_eval.cc):
//
//   * axpy_d:           y[i] = fma(a, x[i], y[i]) — element-wise fused
//                       multiply-add, one rounding per element, so vector
//                       lanes and scalar loop agree exactly.
//   * dot_d:            four independent accumulators, element i folded
//                       into accumulator i mod 4 with fma, reduced as
//                       (s0 + s2) + (s1 + s3). This IS the AVX2 lane
//                       layout; the scalar loop just spells it out.
//   * normalize_rhs_d:  out[i] = sign[i] * b[i] + term[i] — two roundings
//                       per element, identical in vector and scalar form
//                       (and bitwise equal to the historical per-entry
//                       NormalizedRhsEntry with term[i] the precomputed
//                       perturbation, including the +0.0 when perturb=0).
//   * equal_d:          whether x[i] != y[i] for no i — a pure predicate
//                       (IEEE != per element, so NaN compares unequal in
//                       both variants), no rounding anywhere. Powers the
//                       unchanged-RHS fast exit of the re-pricing paths.
//
// The pivot-decision paths (ratio tests, reduced costs, FTRAN/BTRAN) are
// long double by design — see lp/dense_tableau.h and lp/lu_basis.h — and
// x86 SIMD has no long-double lanes, so those kernels (sweep_ld, scale_ld,
// gather_axpy_ld, and LuBasis::FtranBlock) are scalar in *both* modes.
// They still live here for the layout win (flat arena-backed rows instead
// of vector-of-vectors) and for the per-kernel call/cycle accounting.
//
// == Dispatch ==
//
// GetLpKernels(mode) returns the function table: the AVX2+FMA table when
// the CPU supports both and the mode allows it, the scalar table
// otherwise. Mode comes from SimplexOptions::simd, resolved against the
// LPB_LP_SIMD environment variable by ResolveSimdMode (lp/lp_backend.h)
// following the same kDefault-reads-env convention as the backend and
// pricing knobs. AVX2 code is compiled with a per-function target
// attribute, so the translation unit itself needs no -mavx2 and the
// binary stays runnable on any x86-64 (and non-x86 builds simply have no
// vector table).
//
// == Accounting ==
//
// Every kernel invocation bumps a thread-local call counter; cycle
// counting (rdtsc) is off by default and enabled by LPB_LP_KERNEL_CYCLES=1
// or SetLpKernelCycleTiming(true), because a serializing timestamp pair
// per kernel call would skew the very throughput the bench gates on —
// bench_throughput times its regimes with cycles off and collects the
// cycle table in one extra sweep with them on. Backends snapshot the
// thread-local counters at each public entry and report the delta in
// LpSolveStats::kernel_calls / kernel_cycles.
#ifndef LPB_LP_KERNELS_H_
#define LPB_LP_KERNELS_H_

#include <atomic>

#include "lp/simplex.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace lpb {

// ---------------------------------------------------------------------------
// Per-kernel call/cycle accounting (thread-local, so the TSan lane and the
// concurrent-advisor tests need no synchronization).

struct LpKernelCounters {
  unsigned long long calls[kNumLpKernels] = {};
  unsigned long long cycles[kNumLpKernels] = {};
};

// The calling thread's cumulative counters since thread start. Backends
// snapshot this at public entry points and delta it into LpSolveStats.
// A plain extern thread_local (not an accessor function) so the timer's
// bump inlines into the kernel call sites.
extern thread_local LpKernelCounters g_lp_kernel_counters;

// Cycle timing toggle, latched from LPB_LP_KERNEL_CYCLES at startup.
extern std::atomic<bool> g_lp_kernel_cycle_timing;
inline bool LpKernelCycleTimingEnabled() {
  return g_lp_kernel_cycle_timing.load(std::memory_order_relaxed);
}
void SetLpKernelCycleTiming(bool enabled);

inline unsigned long long LpKernelRdtsc() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return 0;
#endif
}

// RAII scope: always counts the call; adds rdtsc cycles only when timing
// is enabled (one relaxed load when it is not).
class LpKernelTimer {
 public:
  explicit LpKernelTimer(LpKernelId id)
      : id_(id), timed_(LpKernelCycleTimingEnabled()) {
    if (timed_) start_ = LpKernelRdtsc();
  }
  ~LpKernelTimer() {
    ++g_lp_kernel_counters.calls[id_];
    if (timed_) g_lp_kernel_counters.cycles[id_] += LpKernelRdtsc() - start_;
  }
  LpKernelTimer(const LpKernelTimer&) = delete;
  LpKernelTimer& operator=(const LpKernelTimer&) = delete;

 private:
  LpKernelId id_;
  bool timed_;
  unsigned long long start_ = 0;
};

// ---------------------------------------------------------------------------
// Dispatched double-precision kernels. Raw function pointers; call through
// the Lp*D wrappers below so the accounting cannot be forgotten.

struct LpKernels {
  // y[i] = fma(a, x[i], y[i]) for i in [0, n).
  void (*axpy_d)(double a, const double* x, double* y, int n);
  // Four-accumulator fma dot; see the bitwise contract above.
  double (*dot_d)(const double* x, const double* y, int n);
  // out[i] = sign[i] * b[i] + term[i] for i in [0, n).
  void (*normalize_rhs_d)(const double* sign, const double* b,
                          const double* term, double* out, int n);
  // True iff x[i] != y[i] for no i in [0, n) (IEEE !=, so NaN is unequal).
  bool (*equal_d)(const double* x, const double* y, int n);
};

// True when this CPU can run the AVX2+FMA table.
bool CpuHasAvx2Fma();

// The table for `mode` (kDefault is resolved by the caller via
// ResolveSimdMode; passing it here is treated as kAuto). Returned
// reference has static storage duration.
const LpKernels& GetLpKernels(SimdMode mode);

// "avx2" or "scalar" — what GetLpKernels(mode) actually dispatched to on
// this machine. Surfaced in the bench JSON header so perf artifacts are
// comparable across runners.
const char* LpKernelDispatchName(SimdMode mode);

inline void LpAxpyD(const LpKernels& k, double a, const double* x, double* y,
                    int n) {
  LpKernelTimer timer(kLpKernelAxpy);
  k.axpy_d(a, x, y, n);
}

inline double LpDotD(const LpKernels& k, const double* x, const double* y,
                     int n) {
  LpKernelTimer timer(kLpKernelDot);
  return k.dot_d(x, y, n);
}

inline void LpNormalizeRhsD(const LpKernels& k, const double* sign,
                            const double* b, const double* term, double* out,
                            int n) {
  LpKernelTimer timer(kLpKernelNormalizeRhs);
  k.normalize_rhs_d(sign, b, term, out, n);
}

inline bool LpEqualD(const LpKernels& k, const double* x, const double* y,
                     int n) {
  LpKernelTimer timer(kLpKernelEqual);
  return k.equal_d(x, y, n);
}

// ---------------------------------------------------------------------------
// Long-double kernels (pivot-precision paths): scalar in both modes — x86
// SIMD has no long-double lanes — but flat-pointer shaped for the
// arena-backed tableau layout and counted like every other kernel.

// row[j] -= f * prow[j] for j in [0, n). The dense tableau's pivot sweep
// and its reduced-cost accumulation are both this shape.
inline void LpSweepLd(long double* row, const long double* prow,
                      long double f, int n) {
  LpKernelTimer timer(kLpKernelSweep);
  for (int j = 0; j < n; ++j) row[j] -= f * prow[j];
}

// v[j] *= inv for j in [0, n) — the pivot-row normalization.
inline void LpScaleLd(long double* v, long double inv, int n) {
  LpKernelTimer timer(kLpKernelScale);
  for (int j = 0; j < n; ++j) v[j] *= inv;
}

// out[i] += col[i * stride] * d for i in [0, n) — a B⁻¹ column of the
// row-major dense tableau (stride = row length) folded into the re-priced
// RHS.
inline void LpGatherAxpyLd(long double* out, const long double* col,
                           int stride, long double d, int n) {
  LpKernelTimer timer(kLpKernelGather);
  for (int i = 0; i < n; ++i) out[i] += col[static_cast<long>(i) * stride] * d;
}

}  // namespace lpb

#endif  // LPB_LP_KERNELS_H_
