// Column-major (CSC) sparse matrix storage for the revised simplex.
//
// The normalized constraint matrices of the bound LPs are extremely sparse:
// a statistic row touches a handful of the 2^n - 1 entropy variables, a
// Shannon cut touches at most four, and the slack/surplus/artificial block
// is unit columns. Storing columns sparsely is what turns a simplex
// iteration from a rows x cols tableau sweep into a few O(nnz) solves —
// the whole premise of lp/revised_simplex.h.
//
// The matrix is append-only: columns are added once at Build time and never
// modified (the revised simplex never rewrites A; all state lives in the
// basis factorization). Entries within a column are kept sorted by row and
// coalesced, matching the dense tableau's "+=" assembly of repeated terms.
#ifndef LPB_LP_SPARSE_MATRIX_H_
#define LPB_LP_SPARSE_MATRIX_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace lpb {

// One nonzero entry of a sparse column.
struct SparseEntry {
  int row = 0;
  double value = 0.0;
};

class SparseMatrix {
 public:
  SparseMatrix() = default;
  explicit SparseMatrix(int rows) : rows_(rows) {}

  int rows() const { return rows_; }
  int cols() const { return static_cast<int>(col_start_.size()) - 1; }
  size_t nnz() const { return entries_.size(); }

  // Appends a column and returns its index. Entries are sorted by row,
  // duplicate rows are summed, and exact zeros are dropped.
  int AppendColumn(std::vector<SparseEntry> entries);

  // Grows the matrix by `new_rows` rows, scattering `row_entries[k]` — the
  // (column, value) nonzeros of appended row rows() + k over the *existing*
  // columns — into the CSC arrays (one O(nnz) rebuild of the flat entry
  // vector, not per-entry insertion). Values for a repeated column are
  // summed and exact zeros dropped, matching AppendColumn. New columns for
  // the appended rows' slacks are added afterwards by the caller via
  // AppendColumn. This is the warm cut-append path of lp/revised_simplex.h;
  // the matrix is otherwise append-only (see the header comment).
  void AppendRows(
      int new_rows,
      const std::vector<std::vector<std::pair<int, double>>>& row_entries);

  // [begin, end) of column j's entries.
  const SparseEntry* ColBegin(int j) const {
    return entries_.data() + col_start_[j];
  }
  const SparseEntry* ColEnd(int j) const {
    return entries_.data() + col_start_[j + 1];
  }
  int ColNnz(int j) const { return col_start_[j + 1] - col_start_[j]; }

  // x' A[:, j] — the per-column work of revised-simplex pricing. Templated
  // so the revised backend can accumulate in long double (its working
  // precision; see lp/revised_simplex.h) against double matrix entries.
  template <typename T>
  T DotColumn(int j, const std::vector<T>& x) const {
    T dot = 0.0;
    for (const SparseEntry* e = ColBegin(j); e != ColEnd(j); ++e) {
      dot += x[e->row] * e->value;
    }
    return dot;
  }

 private:
  int rows_ = 0;
  std::vector<int> col_start_{0};
  std::vector<SparseEntry> entries_;
};

}  // namespace lpb

#endif  // LPB_LP_SPARSE_MATRIX_H_
