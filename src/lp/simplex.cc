#include "lp/simplex.h"

#include "lp/tableau.h"

namespace lpb {

// The one-shot entry point: compile a tableau (dense or revised backend,
// per options/LPB_LP_BACKEND), run the two-phase simplex, throw the
// tableau away. Callers that re-solve the same matrix with different
// right-hand sides should hold a SimplexTableau instead (lp/tableau.h)
// and use ResolveWithRhs.
LpResult SolveLp(const LpProblem& problem, const SimplexOptions& options) {
  SimplexTableau tableau(problem, options);
  return tableau.Solve();
}

}  // namespace lpb
