#include "lp/simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace lpb {
namespace {

using Scalar = long double;
constexpr Scalar kLexEps = 1e-12L;

// Dense simplex tableau. Columns are laid out as:
//   [0, n)                 structural variables
//   [n, n + #slack)        slack (LE) / surplus (GE) columns
//   [n + #slack, total)    artificial variables (GE and EQ rows)
// plus one trailing right-hand-side column per row.
class Tableau {
 public:
  Tableau(const LpProblem& problem, const SimplexOptions& options)
      : problem_(problem), options_(options) {}

  LpResult Solve();

 private:
  static constexpr int kNoCol = -1;

  void Build();
  // Runs one simplex phase on `cost`; returns false on iteration limit.
  // Sets unbounded_ if a ray is detected (only meaningful in phase 2).
  bool RunPhase(const std::vector<double>& cost, bool phase_two);
  void ComputeReducedCosts(const std::vector<double>& cost);
  void Pivot(int row, int col);
  // After phase 1: pivot basic artificials out where possible.
  void EvictArtificials();

  const LpProblem& problem_;
  const SimplexOptions& options_;

  int rows_ = 0;
  int cols_ = 0;        // total variable columns (structural+slack+artificial)
  int first_art_ = 0;   // first artificial column index
  std::vector<std::vector<Scalar>> t_;  // rows_ x (cols_ + 1)
  std::vector<int> basis_;              // basic column per row
  std::vector<Scalar> reduced_;         // reduced costs, size cols_
  // For each original constraint: the column whose original A-column is
  // +e_i (slack for LE, artificial for GE/EQ) and the row sign applied
  // during normalization. Used to recover duals.
  std::vector<int> dual_col_;
  std::vector<double> row_sign_;

  int iterations_ = 0;
  int max_iterations_ = 0;
  bool unbounded_ = false;
  // Columns disabled for the current phase (numerically dead, see RunPhase).
  std::vector<bool> frozen_;
};

void Tableau::Build() {
  const int n = problem_.num_vars();
  rows_ = problem_.num_constraints();

  // First pass: normalized sense per row so we know how many slack and
  // artificial columns we need. Rows are flipped when the rhs is negative,
  // and also when a >= row has rhs 0 — the flipped row is a <= row whose
  // slack gives a feasible basis, avoiding an artificial variable entirely
  // (the common case for the engines' homogeneous Shannon cuts).
  std::vector<LpSense> sense(rows_);
  row_sign_.assign(rows_, 1.0);
  int num_slack = 0;
  int num_art = 0;
  for (int i = 0; i < rows_; ++i) {
    const LpConstraint& c = problem_.constraint(i);
    LpSense s = c.sense;
    if (c.rhs < 0.0 || (s == LpSense::kGe && c.rhs == 0.0)) {
      row_sign_[i] = -1.0;
      if (s == LpSense::kLe) {
        s = LpSense::kGe;
      } else if (s == LpSense::kGe) {
        s = LpSense::kLe;
      }
    }
    sense[i] = s;
    if (s != LpSense::kEq) ++num_slack;
    if (s != LpSense::kLe) ++num_art;
  }

  first_art_ = n + num_slack;
  cols_ = first_art_ + num_art;
  t_.assign(rows_, std::vector<Scalar>(cols_ + 1, 0.0));
  basis_.assign(rows_, kNoCol);
  dual_col_.assign(rows_, kNoCol);

  int next_slack = n;
  int next_art = first_art_;
  for (int i = 0; i < rows_; ++i) {
    const LpConstraint& c = problem_.constraint(i);
    std::vector<Scalar>& row = t_[i];
    for (const LpTerm& term : c.terms) row[term.var] += row_sign_[i] * term.coef;
    row[cols_] = row_sign_[i] * c.rhs;
    // Lexicographic-style degeneracy breaking (see SimplexOptions).
    row[cols_] += options_.perturb * (1 + i % 101);

    switch (sense[i]) {
      case LpSense::kLe: {
        int slack = next_slack++;
        row[slack] = 1.0;
        basis_[i] = slack;
        dual_col_[i] = slack;
        break;
      }
      case LpSense::kGe: {
        int surplus = next_slack++;
        int art = next_art++;
        row[surplus] = -1.0;
        row[art] = 1.0;
        basis_[i] = art;
        dual_col_[i] = art;
        break;
      }
      case LpSense::kEq: {
        int art = next_art++;
        row[art] = 1.0;
        basis_[i] = art;
        dual_col_[i] = art;
        break;
      }
    }
  }
}

void Tableau::ComputeReducedCosts(const std::vector<double>& cost) {
  reduced_.assign(cols_, 0.0);
  // reduced = cost - cB' * T. Accumulate row-wise for cache friendliness.
  for (int i = 0; i < rows_; ++i) {
    const Scalar cb = cost[basis_[i]];
    if (cb == 0.0) continue;
    const std::vector<Scalar>& row = t_[i];
    for (int j = 0; j < cols_; ++j) reduced_[j] -= cb * row[j];
  }
  for (int j = 0; j < cols_; ++j) reduced_[j] += cost[j];
}

void Tableau::Pivot(int row, int col) {
  std::vector<Scalar>& prow = t_[row];
  const Scalar p = prow[col];
  const Scalar inv = 1.0L / p;
  for (Scalar& v : prow) v *= inv;
  prow[col] = 1.0;  // exact
  for (int i = 0; i < rows_; ++i) {
    if (i == row) continue;
    std::vector<Scalar>& r = t_[i];
    const Scalar f = r[col];
    if (f == 0.0) continue;
    for (int j = 0; j <= cols_; ++j) r[j] -= f * prow[j];
    r[col] = 0.0;  // exact
  }
  basis_[row] = col;
}

bool Tableau::RunPhase(const std::vector<double>& cost, bool phase_two) {
  const double eps = options_.eps;
  frozen_.assign(cols_, false);
  while (true) {
    if (iterations_ >= max_iterations_) return false;
    // Recompute reduced costs from scratch each iteration: same asymptotic
    // cost as the pivot itself and immune to incremental drift (which
    // produced false unbounded verdicts on the engine's cutting-plane LPs).
    ComputeReducedCosts(cost);

    // Dantzig pricing.
    int enter = kNoCol;
    double best = eps;
    for (int j = 0; j < cols_; ++j) {
      if (phase_two && j >= first_art_) break;  // artificials may not re-enter
      if (frozen_[j]) continue;
      if (reduced_[j] > best) {
        enter = j;
        best = reduced_[j];
      }
    }
    if (enter == kNoCol) return true;  // optimal for this phase

    // Ratio test with lexicographic tie-breaking: guarantees termination
    // on the heavily degenerate cutting-plane LPs (Dantzig/Harris
    // tie-breaks stall for 100k+ iterations there). The tableau is kept in
    // long double because lexicographic pivoting occasionally selects
    // small pivot elements, whose reciprocals amplify rounding error.
    int leave = -1;
    Scalar best_ratio = std::numeric_limits<Scalar>::infinity();
    for (int i = 0; i < rows_; ++i) {
      const Scalar a = t_[i][enter];
      if (a <= eps) continue;
      const Scalar ratio = t_[i][cols_] / a;
      if (leave == -1 || ratio < best_ratio - kLexEps) {
        best_ratio = ratio;
        leave = i;
        continue;
      }
      if (ratio > best_ratio + kLexEps) continue;
      // Tie: lexicographic comparison of the rows scaled by their pivot
      // entries, over the slack/artificial block (initially the identity,
      // so rows are lexicographically positive and the classic termination
      // argument applies).
      const Scalar a_leave = t_[leave][enter];
      for (int j = problem_.num_vars(); j < cols_; ++j) {
        const Scalar d = t_[i][j] / a - t_[leave][j] / a_leave;
        if (d < -kLexEps) {
          leave = i;
          best_ratio = ratio;
          break;
        }
        if (d > kLexEps) break;
      }
    }
    if (leave == -1) {
      // Guard against numerically dead columns: all entries ~0 yet a barely
      // positive reduced cost is noise, not a certificate of
      // unboundedness. Freeze the column and move on.
      if (reduced_[enter] <= 1e-6) {
        frozen_[enter] = true;
        continue;
      }
      unbounded_ = true;
      return true;
    }
    Pivot(leave, enter);
    ++iterations_;
  }
}

void Tableau::EvictArtificials() {
  for (int i = 0; i < rows_; ++i) {
    if (basis_[i] < first_art_) continue;
    // Basic artificial (at value ~0 after a feasible phase 1). Pivot in any
    // non-artificial column with a nonzero entry; if none exists the row is
    // redundant and the artificial stays basic at zero, which is harmless.
    for (int j = 0; j < first_art_; ++j) {
      if (std::abs(t_[i][j]) > options_.eps) {
        Pivot(i, j);
        ++iterations_;
        break;
      }
    }
  }
}

LpResult Tableau::Solve() {
  Build();
  LpResult result;
  max_iterations_ = options_.max_iterations > 0
                        ? options_.max_iterations
                        : 50 * (rows_ + cols_) + 1000;

  // Phase 1: maximize -sum(artificials), feasible iff optimum is 0.
  if (first_art_ < cols_) {
    std::vector<double> cost(cols_, 0.0);
    for (int j = first_art_; j < cols_; ++j) cost[j] = -1.0;
    if (!RunPhase(cost, /*phase_two=*/false)) {
      result.status = LpStatus::kIterationLimit;
      result.iterations = iterations_;
      return result;
    }
    Scalar infeas = 0.0;
    for (int i = 0; i < rows_; ++i) {
      if (basis_[i] >= first_art_) infeas += t_[i][cols_];
    }
    if (infeas > 1e-7) {
      result.status = LpStatus::kInfeasible;
      result.iterations = iterations_;
      return result;
    }
    EvictArtificials();
  }

  // Phase 2: real objective (artificial costs are zero and they are barred
  // from entering the basis).
  std::vector<double> cost(cols_, 0.0);
  for (int j = 0; j < problem_.num_vars(); ++j) {
    cost[j] = problem_.objective_coef(j);
  }
  unbounded_ = false;
  if (!RunPhase(cost, /*phase_two=*/true)) {
    result.status = LpStatus::kIterationLimit;
    result.iterations = iterations_;
    return result;
  }
  if (unbounded_) {
    result.status = LpStatus::kUnbounded;
    result.iterations = iterations_;
    return result;
  }

  result.status = LpStatus::kOptimal;
  result.iterations = iterations_;
  result.x.assign(problem_.num_vars(), 0.0);
  double obj = 0.0;
  for (int i = 0; i < rows_; ++i) {
    if (basis_[i] < problem_.num_vars()) {
      result.x[basis_[i]] = t_[i][cols_];
    }
  }
  for (int j = 0; j < problem_.num_vars(); ++j) {
    obj += cost[j] * result.x[j];
  }
  result.objective = obj;

  // Duals: the reduced cost under the +e_i column of constraint i is -y_i
  // (phase-2 reduced costs are current after the final ComputeReducedCosts).
  ComputeReducedCosts(cost);
  result.duals.assign(rows_, 0.0);
  for (int i = 0; i < rows_; ++i) {
    result.duals[i] = static_cast<double>(-reduced_[dual_col_[i]]) * row_sign_[i];
  }
  return result;
}

}  // namespace

LpResult SolveLp(const LpProblem& problem, const SimplexOptions& options) {
  Tableau tableau(problem, options);
  return tableau.Solve();
}

}  // namespace lpb
