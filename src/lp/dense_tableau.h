// Dense long-double tableau backend (the original solver).
//
// Implements the full SimplexTableau contract — two-phase primal simplex
// with Dantzig pricing and a lexicographic ratio test, dual-simplex warm
// re-solves, witness reuse — on an explicit rows x cols tableau kept in
// long double (lexicographic pivoting occasionally selects tiny pivot
// elements whose reciprocals amplify rounding error). Every pivot sweeps
// the whole tableau, so cost per iteration is O(rows x cols); see
// lp/revised_simplex.h for the sparse backend that avoids that sweep.
//
// The tableau and the re-pricing scratch live in a per-instance Arena as
// one flat rows x (cols+1) block (util/arena.h): a cold Build is a
// pointer bump plus a fill instead of rows+3 vector allocations, and the
// inner loops run through the kernel layer (lp/kernels.h) so they show up
// in the per-kernel call/cycle table of LpSolveStats.
#ifndef LPB_LP_DENSE_TABLEAU_H_
#define LPB_LP_DENSE_TABLEAU_H_

#include <vector>

#include "lp/kernels.h"
#include "lp/lp_backend.h"
#include "lp/lp_problem.h"
#include "lp/simplex.h"
#include "util/arena.h"

namespace lpb {

class DenseTableau : public LpBackendImpl {
 public:
  explicit DenseTableau(const LpProblem& problem,
                        const SimplexOptions& options = {});

  LpResult Solve(const std::vector<double>& rhs) override;
  LpResult ResolveWithRhs(const std::vector<double>& rhs) override;
  // Incremental row append (see LpBackendImpl::AddConstraintsWarm): the
  // tableau is re-laid out in place with k more rows and k more columns,
  // each new row entering as its raw normalized form eliminated against
  // the current basic rows — exactly the B_new⁻¹ image, since the old
  // basic columns are unit columns — with its slack basic, and dual
  // simplex repairs the rows the old optimum violates. Declines (state
  // untouched) when there is no cached optimal basis, an artificial
  // column exists, or a row does not normalize to <=.
  bool AddConstraintsWarm(const std::vector<LpConstraint>& rows,
                          const std::vector<double>& rhs,
                          LpResult& result) override;
  bool has_optimal_basis() const override { return has_basis_; }
  const std::vector<int>& basis() const override { return basis_; }

 private:
  using Scalar = long double;

  static constexpr int kNoCol = -1;

  void Build(const std::vector<double>& rhs);
  // The cold solve behind Solve(); shared with ResolveWithRhs's fallbacks
  // so a cascade accumulates into stats_ instead of resetting it.
  LpResult SolveInternal(const std::vector<double>& rhs);
  // Runs one primal simplex phase on `cost`; returns false on iteration
  // limit. Sets unbounded_ if a ray is detected (meaningful in phase 2).
  bool RunPhase(const std::vector<double>& cost, bool phase_two);
  // Dual simplex from a dual-feasible basis toward primal feasibility.
  enum class DualOutcome { kOptimal, kInfeasible, kIterationLimit };
  DualOutcome RunDualSimplex();
  void ComputeReducedCosts(const std::vector<double>& cost);
  void Pivot(int row, int col);
  // After phase 1: pivot basic artificials out where possible.
  void EvictArtificials();
  // Normalized RHS entry for row i (row sign + optional perturbation).
  Scalar NormalizedRhs(int i, const std::vector<double>& rhs) const;
  // Computes B⁻¹b' for `rhs` into reprice_ (and mirrors it into the
  // tableau's RHS column). Incremental when the basis is unchanged since
  // the last re-price: only rows whose normalized RHS moved contribute a
  // delta against the corresponding B⁻¹ column, so a what-if probe that
  // perturbs k statistics costs O(rows x k), not O(rows x nnz(b')). A
  // full re-price runs every kFullRepriceInterval calls to bound drift.
  void RepriceRhs(const std::vector<double>& rhs);
  // Reads the optimal result off the current tableau. `repeat` asserts the
  // RHS column is bitwise-unchanged since the previous extraction (the
  // caller holds rhs_unchanged_ && witness_scan_ok_), letting the
  // repeated-RHS hot path serve the cached x/objective/duals as flat
  // copies instead of re-walking the tableau (same contract as the revised
  // backend, lp/revised_simplex.h).
  LpResult ExtractOptimal(LpEvalPath path, bool repeat = false);
  // Non-optimal result with x/duals sized per the LpResult contract.
  LpResult Failure(LpStatus status);
  // Copies this call's kernel-counter deltas into stats_ (see
  // lp/kernels.h); called on every exit path so LpResult::stats carries
  // the whole cascade.
  void FillKernelStats();

  // Row i of the flat tableau (stride_ = cols_ + 1 entries per row).
  Scalar* Row(int i) { return t_ + static_cast<std::size_t>(i) * stride_; }
  const Scalar* Row(int i) const {
    return t_ + static_cast<std::size_t>(i) * stride_;
  }

  LpProblem problem_;
  SimplexOptions options_;
  const LpKernels* kernels_;  // dispatch table per SimplexOptions::simd

  int rows_ = 0;
  int cols_ = 0;        // total variable columns (structural+slack+artificial)
  int first_art_ = 0;   // first artificial column index
  int stride_ = 0;      // cols_ + 1 (row length incl. the RHS column)
  // Flat rows_ x stride_ tableau in arena_, rebuilt per cold Build.
  Scalar* t_ = nullptr;
  std::vector<int> basis_;              // basic column per row
  std::vector<Scalar> reduced_;         // reduced costs, size cols_
  // For each original constraint: the column whose original A-column is
  // +e_i (slack for LE, artificial for GE/EQ) and the row sign applied
  // during normalization. Column dual_col_[i] of the current tableau is
  // therefore the i-th column of B⁻¹ — used both to recover duals and to
  // re-price a new RHS without rebuilding.
  std::vector<int> dual_col_;
  std::vector<double> row_sign_;
  std::vector<double> phase2_cost_;     // structural objective, padded to cols_

  // Arena-backed per-row scratch, (re)allocated in Build. The normalized
  // RHS pipeline is all double — NormalizedRhsEntry computes in double —
  // so norm_b_/last_b_ hold doubles with zero precision change, and the
  // normalization runs through the vectorized kernel.
  Arena arena_;
  double* problem_rhs_ = nullptr;   // constraint(i).rhs, for the empty-rhs case
  double* perturb_term_ = nullptr;  // perturb * (1 + i % 101)
  double* norm_b_ = nullptr;        // row_sign * b + perturb_term (this call)
  double* last_b_ = nullptr;        // normalized RHS of the last re-price
  Scalar* reprice_ = nullptr;       // B⁻¹ last_b_

  // Incremental re-pricing state (see RepriceRhs). Any pivot or rebuild
  // invalidates it; a periodic full re-price bounds delta-accumulation
  // drift.
  static constexpr int kFullRepriceInterval = 64;
  bool reprice_valid_ = false;
  int reprices_since_full_ = 0;
  // Exact memoization of the warm-resolve fast path (same contract as the
  // revised backend, lp/revised_simplex.h): rhs_unchanged_ — this call's
  // normalized RHS was bitwise-equal to the previous re-price's, so the
  // tableau's RHS column is untouched; witness_scan_ok_ — that column
  // already passed the feasibility scan. Together they let a repeated-RHS
  // resolve skip straight to the witness extraction.
  bool rhs_unchanged_ = false;
  bool witness_scan_ok_ = false;

  int iterations_ = 0;
  int max_iterations_ = 0;
  bool unbounded_ = false;
  bool has_basis_ = false;
  // Duals of the cached basis. The witness path reuses them verbatim —
  // duals depend only on (basis, cost), both unchanged there — skipping
  // the O(rows × cols) reduced-cost recomputation on the hot path.
  std::vector<double> cached_duals_;
  // Extraction cache for the repeated-witness fast path: the x/objective
  // of the last ExtractOptimal, valid only while the RHS column is
  // untouched (the rhs_unchanged_ && witness_scan_ok_ gate, refreshed by
  // every non-repeat extraction).
  std::vector<double> cached_x_;
  double cached_objective_ = 0.0;
  bool result_cache_valid_ = false;
  // Columns disabled for the current phase (numerically dead, see RunPhase).
  std::vector<bool> frozen_;
  // Per-call pivot counters (LpResult::stats); the dense tableau has no
  // factorization, so of the pivot counters only the phase/dual fields are
  // ever nonzero. The kernel table is filled on every exit.
  LpSolveStats stats_;
  // Thread-local kernel counters at the last public entry (Solve /
  // ResolveWithRhs); FillKernelStats reports the delta.
  LpKernelCounters kernel_base_;
};

}  // namespace lpb

#endif  // LPB_LP_DENSE_TABLEAU_H_
