// LU-factorized simplex basis with product-form updates.
//
// Maintains B = [A[:, basis[0]], ..., A[:, basis[m-1]]] as P' L U Q' plus a
// short eta file, supporting the two solves every revised-simplex iteration
// needs:
//   FTRAN  x = B⁻¹ b   (entering-column transform, basic values)
//   BTRAN  y = B⁻ᵀ c   (duals / pricing, B⁻¹ rows for the ratio test)
//
// Factorization is Gilbert–Peierls left-looking sparse LU: each basis
// column is transformed by a sparse triangular solve whose nonzero pattern
// comes from a DFS over the partially built L, so work is proportional to
// arithmetic actually performed. Pivoting is Markowitz-style threshold
// pivoting — among candidate rows whose magnitude is within rel_pivot_tol
// of the column max, prefer the row with the smallest static Markowitz
// degree (its nonzero count in the basis matrix) — and columns are
// pre-ordered by increasing nonzero count, so unit slack/artificial
// columns (the bulk of early bases) factor in O(1) with zero fill.
//
// All factors and solves are kept in long double, for the same reason the
// dense tableau is (lp/dense_tableau.h): the lexicographic ratio test
// legitimately pivots on tiny elements, and in plain double the FTRAN
// image of a *true zero* (noise ~ cond(B)·u) becomes indistinguishable
// from such a pivot — which is how degenerate solves go off the rails.
//
// Basis changes apply a product-form (eta) update: B_new = B_old · E with E
// the identity except column r = w = B_old⁻¹ a_enter, so FTRAN/BTRAN gain
// one sparse rank-1 transform per pivot. When the eta file reaches
// max_etas, or an update pivot w_r is too small to be stable, the caller
// refactorizes from scratch (refactorize-on-threshold; a Forrest–Tomlin
// update that rewrites U in place is a possible follow-on, see
// src/lp/README.md).
#ifndef LPB_LP_LU_BASIS_H_
#define LPB_LP_LU_BASIS_H_

#include <utility>
#include <vector>

#include "lp/sparse_matrix.h"

namespace lpb {

struct LuOptions {
  double abs_pivot_tol = 1e-11;  // reject pivots below this outright
  double rel_pivot_tol = 0.1;    // threshold for Markowitz tie candidates
  int max_etas = 32;             // refactorize after this many updates
  // Minimum |w_r| / ||w||_inf for an eta pivot. The simplex's
  // lexicographic ratio test legitimately pivots on tiny elements, but an
  // eta file dividing by them amplifies noise in every later solve.
  // Rejecting them forces a refactorization, whose internal threshold
  // pivoting picks a stable elimination order regardless of which element
  // the simplex pivoted on.
  double eta_rel_tol = 1e-4;
};

class LuBasis {
 public:
  // Working precision of factors and solves (see file comment).
  using Scalar = long double;

  explicit LuBasis(LuOptions options = {}) : options_(options) {}

  // Factorizes the basis columns of `a`. Returns false if the basis is
  // numerically singular (no acceptable pivot in some column); the
  // factorization is then unusable until the next successful Factorize.
  bool Factorize(const SparseMatrix& a, const std::vector<int>& basis);

  bool factorized() const { return factorized_; }
  int m() const { return m_; }
  int eta_count() const { return static_cast<int>(etas_.size()); }
  bool NeedsRefactorize() const { return eta_count() >= options_.max_etas; }

  // x := B⁻¹ x. In: x indexed by constraint row. Out: x indexed by basis
  // slot (x[i] is the value of basic variable basis[i]).
  void Ftran(std::vector<Scalar>& x) const;

  // y := B⁻ᵀ y. In: y indexed by basis slot (e.g. the basic costs).
  // Out: y indexed by constraint row (e.g. the duals). Btran(e_slot)
  // yields row `slot` of B⁻¹ — the ratio test's lexicographic tie-break.
  void Btran(std::vector<Scalar>& y) const;

  // Records the basis change "column of slot r replaced by the column whose
  // FTRAN image is w" as an eta transform. Returns false (leaving the
  // factorization unchanged) when |w[r]| is too small to pivot on — the
  // caller must refactorize against the updated basis header instead.
  bool Update(const std::vector<Scalar>& w, int r);

 private:
  struct LuEntry {
    int row = 0;
    Scalar value = 0.0;
  };

  LuOptions options_;
  bool factorized_ = false;
  int m_ = 0;

  // Row permutation: pivot_row_[k] = original row pivotal at position k;
  // row_pos_ is its inverse. Column permutation: col_slot_[k] = basis slot
  // factored at position k; slot_pos_ its inverse.
  std::vector<int> pivot_row_;
  std::vector<int> row_pos_;
  std::vector<int> col_slot_;
  std::vector<int> slot_pos_;

  // L (unit diagonal) stored by column: entries (original row, multiplier)
  // strictly below the pivot. U stored by column: off-diagonal entries
  // (position t < k, value) plus the diagonal diag_[k].
  std::vector<std::vector<LuEntry>> l_cols_;
  std::vector<std::vector<std::pair<int, Scalar>>> u_cols_;
  std::vector<Scalar> diag_;

  struct Eta {
    int slot = 0;
    Scalar diag = 0.0;
    std::vector<LuEntry> off;  // (slot, w) entries, slot != this->slot
  };
  std::vector<Eta> etas_;

  // Scratch for Factorize/Ftran/Btran (single-threaded per instance, like
  // the CompiledBound that owns the tableau).
  mutable std::vector<Scalar> work_;
  mutable std::vector<Scalar> pos_work_;
  mutable std::vector<char> visited_;
  mutable std::vector<std::pair<int, int>> dfs_stack_;  // (position, edge idx)
  mutable std::vector<int> topo_;
  mutable std::vector<int> cand_;      // non-pivotal rows touched this column
  mutable std::vector<int> row_mark_;  // dedup stamps for cand_
};

}  // namespace lpb

#endif  // LPB_LP_LU_BASIS_H_
