// LU-factorized simplex basis with Forrest–Tomlin (or product-form eta)
// updates.
//
// Maintains B = [A[:, basis[0]], ..., A[:, basis[m-1]]] in factored form,
// supporting the two solves every revised-simplex iteration needs:
//   FTRAN  x = B⁻¹ b   (entering-column transform, basic values)
//   BTRAN  y = B⁻ᵀ y   (duals / pricing, B⁻¹ rows for the ratio test)
//
// Factorization is Gilbert–Peierls left-looking sparse LU: each basis
// column is transformed by a sparse triangular solve whose nonzero pattern
// comes from a DFS over the partially built L, so work is proportional to
// arithmetic actually performed. Pivoting is Markowitz-style threshold
// pivoting — among candidate rows whose magnitude is within rel_pivot_tol
// of the column max, prefer the row with the smallest static Markowitz
// degree (its nonzero count in the basis matrix) — and columns are
// pre-ordered by increasing nonzero count, so unit slack/artificial
// columns (the bulk of early bases) factor in O(1) with zero fill.
//
// Storage is permutation-invariant: L is kept in its fixed factorization
// sequence (a product of column transforms, never reordered), U is stored
// by *basis slot* with entries referencing *original rows*, and the
// triangular order lives in separate position maps (pivot_row_/col_slot_
// and their inverses). A basis update therefore only rotates the position
// maps — no stored index is ever relabeled.
//
// Basis changes apply a Forrest–Tomlin update by default: the entering
// column's spike (its image under L and the prior updates) replaces the
// leaving column of U, the leaving position is cycled to the end, and the
// now-bottom row of U is eliminated by a sparse triangular solve whose
// multipliers are recorded as one row transform applied inside every later
// FTRAN/BTRAN. U stays genuinely triangular in place, so update chains run
// long (max_updates, default 64) before a refactorization — the
// refactorize-every-32-pivots cadence of the legacy product-form eta file
// (still selectable via LuOptions::forrest_tomlin = false) is gone from
// the warm-resolve hot path. Two guards force an early refactorization:
//   * stability — the new diagonal must clear an absolute and a
//     spike-relative threshold, and must agree with the value predicted
//     from the ratio-test pivot (u_new = u_pp · w_r in exact arithmetic);
//     disagreement means the factors have drifted. A failed test leaves
//     the factorization untouched and returns false so the caller
//     refactorizes against the updated basis header.
//   * fill — the update appends the spike to U and the multipliers to the
//     transform list; when their combined nonzeros exceed fill_limit ×
//     the freshly factored size, NeedsRefactorize() trips.
//
// All factors and solves are kept in long double, for the same reason the
// dense tableau is (lp/dense_tableau.h): the lexicographic ratio test
// legitimately pivots on tiny elements, and in plain double the FTRAN
// image of a *true zero* (noise ~ cond(B)·u) becomes indistinguishable
// from such a pivot — which is how degenerate solves go off the rails.
#ifndef LPB_LP_LU_BASIS_H_
#define LPB_LP_LU_BASIS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "lp/sparse_matrix.h"

namespace lpb {

struct LuOptions {
  double abs_pivot_tol = 1e-11;  // reject pivots below this outright
  double rel_pivot_tol = 0.1;    // threshold for Markowitz tie candidates
  // Forrest–Tomlin in-place U update (default) vs legacy product-form
  // etas. The revised simplex maps SimplexOptions::basis_update here.
  bool forrest_tomlin = true;
  // Updates carried between refactorizations. 0 = automatic: 64 for
  // Forrest–Tomlin, 32 for the eta file (the eta stack re-applies every
  // transform on every solve, so it saturates sooner).
  int max_updates = 0;
  // Minimum |w_r| / ||w||_inf for an eta pivot (eta mode). The simplex's
  // lexicographic ratio test legitimately pivots on tiny elements, but an
  // eta file dividing by them amplifies noise in every later solve.
  double eta_rel_tol = 1e-4;
  // FT stability: the new diagonal must be at least ft_rel_tol × ||spike||∞
  // and must agree with the pivot-predicted value to ft_agree_tol
  // (relative). Failing either refuses the update (caller refactorizes).
  double ft_rel_tol = 1e-7;
  double ft_agree_tol = 1e-6;
  // Refactorize when U-plus-transform nonzeros exceed this multiple of the
  // freshly factored nonzero count (bounded fill).
  double fill_limit = 3.0;
};

class LuBasis {
 public:
  // Working precision of factors and solves (see file comment).
  using Scalar = long double;

  explicit LuBasis(LuOptions options = {});

  // Factorizes the basis columns of `a`. Returns false if the basis is
  // numerically singular (no acceptable pivot in some column); the
  // factorization is then unusable until the next successful Factorize.
  bool Factorize(const SparseMatrix& a, const std::vector<int>& basis);

  bool factorized() const { return factorized_; }
  int m() const { return m_; }
  // Basis updates absorbed since the last Factorize (FT or eta).
  int update_count() const { return updates_; }
  bool NeedsRefactorize() const {
    return updates_ >= max_updates_ ||
           static_cast<double>(u_nnz_ + transform_nnz_) >
               options_.fill_limit * static_cast<double>(u_nnz0_ + m_);
  }

  // x := B⁻¹ x. In: x indexed by constraint row. Out: x indexed by basis
  // slot (x[i] is the value of basic variable basis[i]). When `spike_out`
  // is non-null it receives the row-indexed intermediate after the L pass
  // and the Forrest–Tomlin transforms, before the U backsolve — exactly
  // the spike a subsequent Update of this column needs, saving Update the
  // duplicate forward solve (pass it via Update's `spike` parameter; it
  // is only valid while the factorization is unchanged).
  void Ftran(std::vector<Scalar>& x,
             std::vector<Scalar>* spike_out = nullptr) const;

  // Blocked multi-RHS FTRAN: solves `lanes` (≤ kMaxFtranBlockLanes)
  // right-hand sides at once, laid out lane-interleaved — element i of
  // lane l at x[i * lanes + l] — so each L/U entry's metadata is loaded
  // once and applied across all lanes from one cache line. Every lane is
  // bitwise-identical to a sequential Ftran of that lane alone: the
  // per-lane operation order is unchanged (only the interleaving across
  // independent lanes differs), including the skip-on-exact-zero guards.
  // No spike capture — the block path is for B⁻¹ column materialization
  // (lp/revised_simplex.cc), not for pivoting.
  static constexpr int kMaxFtranBlockLanes = 8;
  void FtranBlock(Scalar* x, int lanes) const;

  // y := B⁻ᵀ y. In: y indexed by basis slot (e.g. the basic costs).
  // Out: y indexed by constraint row (e.g. the duals). Btran(e_slot)
  // yields row `slot` of B⁻¹ — the ratio test's lexicographic tie-break.
  void Btran(std::vector<Scalar>& y) const;

  // Bordered growth for the warm cut-append path (lp/revised_simplex.h):
  // extends the factorization of B to
  //     B_new = [[B, 0], [C, D]]
  // where the caller has already grown `a` by the new rows (C = the new
  // rows' coefficients on the old basic columns) and appended one unit
  // slack column per new row to both `a` and `basis` (D = their diagonal).
  // The new rows become the *leading* positions of the triangular order —
  // their U columns are pure diagonals and the old columns' new-row
  // entries (C) append to their stored U columns, which keeps U
  // position-triangular without touching L, the Forrest–Tomlin transforms,
  // or any existing entry. Appended U entries count toward the fill budget
  // (NeedsRefactorize), which is what eventually forces a clean
  // refactorization on long append chains.
  //
  // Preconditions checked (returns false leaving the factorization
  // untouched, so the caller can refactorize instead): a successful
  // Factorize is live, no legacy product-form etas are pending (their slot
  // transform does not commute with the border; Forrest–Tomlin transforms
  // do), `first_new_row` == m(), and each appended basis column is a unit
  // column on exactly one new row with a pivotable diagonal, the new rows
  // covered exactly once.
  bool AppendBorderedRows(const SparseMatrix& a, const std::vector<int>& basis,
                          int first_new_row);

  // Records the basis change "column of slot r replaced by column `col` of
  // `a`, whose FTRAN image is w". Forrest–Tomlin mode rewrites U in place;
  // eta mode appends a product-form transform (and ignores a/col). An
  // optional `spike` — the intermediate captured by Ftran(x, &spike) for
  // this very column under this very factorization — skips the update's
  // own forward solve. Returns false — leaving the factorization
  // unchanged — when the update would be numerically unstable; the caller
  // must refactorize against the updated basis header instead.
  bool Update(const SparseMatrix& a, int col, const std::vector<Scalar>& w,
              int r, const std::vector<Scalar>* spike = nullptr);

 private:
  struct LuEntry {
    int row = 0;
    Scalar value = 0.0;
  };

  bool UpdateForrestTomlin(const SparseMatrix& a, int col,
                           const std::vector<Scalar>& w, int r,
                           const std::vector<Scalar>* spike);
  bool UpdateEta(const std::vector<Scalar>& w, int r);

  LuOptions options_;
  int max_updates_ = 0;  // resolved from options_.max_updates
  bool factorized_ = false;
  int m_ = 0;
  int updates_ = 0;

  // Position maps, mutated by FT updates (a cyclic left-rotation of the
  // replaced position to the end). pivot_row_[k] = original row pivotal at
  // position k; row_pos_ its inverse. col_slot_[k] = basis slot at
  // position k; slot_pos_ its inverse.
  std::vector<int> pivot_row_;
  std::vector<int> row_pos_;
  std::vector<int> col_slot_;
  std::vector<int> slot_pos_;

  // L (unit diagonal) as a product of column transforms in the fixed
  // factorization sequence: l_cols_[k] holds (original row, multiplier)
  // strictly below pivot row l_pivot_row_[k]. Never reordered by updates.
  std::vector<std::vector<LuEntry>> l_cols_;
  std::vector<int> l_pivot_row_;

  // U stored by basis slot: off-diagonal entries (original row, value) at
  // rows pivotal earlier in position order, plus the diagonal diag_[slot].
  std::vector<std::vector<LuEntry>> u_cols_;
  std::vector<Scalar> diag_;
  int64_t u_nnz_ = 0;           // current off-diagonal U entries
  int64_t u_nnz0_ = 0;          // off-diagonal U entries at Factorize
  int64_t transform_nnz_ = 0;   // FT-row-transform + eta entries

  // One Forrest–Tomlin row transform R = I - e_row μᵀ (row space): applied
  // oldest-first inside FTRAN after the L pass, newest-first transposed
  // inside BTRAN before the Lᵀ pass.
  struct FtEta {
    int row = 0;
    std::vector<LuEntry> mu;
  };
  std::vector<FtEta> ft_etas_;

  // Legacy product-form eta (slot space), applied outside the base solves.
  struct Eta {
    int slot = 0;
    Scalar diag = 0.0;
    std::vector<LuEntry> off;  // (slot, w) entries, slot != this->slot
  };
  std::vector<Eta> etas_;

  // Scratch for Factorize/Ftran/Btran/Update (single-threaded per
  // instance, like the CompiledBound that owns the tableau).
  mutable std::vector<Scalar> work_;
  mutable std::vector<Scalar> pos_work_;
  mutable std::vector<Scalar> block_pos_work_;  // FtranBlock, m_ x lanes
  mutable std::vector<Scalar> spike_;    // FT spike, row-indexed
  mutable std::vector<Scalar> mu_work_;  // FT multipliers, row-indexed
  mutable std::vector<LuEntry> mu_entries_;
  mutable std::vector<std::pair<int, int>> row_hits_;  // (slot, entry index)
  mutable std::vector<char> visited_;
  mutable std::vector<std::pair<int, int>> dfs_stack_;  // (position, edge idx)
  mutable std::vector<int> topo_;
  mutable std::vector<int> cand_;      // non-pivotal rows touched this column
  mutable std::vector<int> row_mark_;  // dedup stamps for cand_
};

}  // namespace lpb

#endif  // LPB_LP_LU_BASIS_H_
