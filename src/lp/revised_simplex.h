// Sparse revised simplex backend over an LU-factorized basis.
//
// Solves the same normalized standard form as the dense tableau
// (lp/dense_tableau.h) — maximize c'x over Ax {<=,>=,=} b, x >= 0, rows
// sign-normalized, slack/surplus/artificial columns appended — but never
// materializes B⁻¹A. Each iteration does three sparse solves against the
// factorized basis (lp/lu_basis.h):
//
//   BTRAN  y = B⁻ᵀ c_B                duals; reduced cost of column j is
//                                     c_j - y·A_j, an O(nnz(A_j)) dot
//   FTRAN  w = B⁻¹ A_enter            the pivot column, for the ratio test
//   update B := B'                    Forrest–Tomlin in-place U rewrite
//                                     (or a product-form eta, per options)
//
// so an iteration costs O(nnz(A) + m + update work) instead of the dense
// tableau's O(rows x cols) sweep — the difference between grinding and
// finishing on the cutting-plane Γn relaxations past n ≈ 7.
//
// Pricing is selectable (SimplexOptions::pricing / LPB_LP_PRICING):
// Dantzig's most-positive-reduced-cost rule, or Devex reference-framework
// pricing — approximate steepest-edge weights γ_j ≈ ‖B⁻¹A_j‖² maintained
// per pivot from the pivot row (one extra BTRAN + sparse dots), entering
// column argmax d_j²/γ_j, and a full reference reset when the weights blow
// up. Devex pays ~2x per-iteration pricing cost to cut the *number* of
// iterations on the heavily degenerate cutting-plane relaxations, where
// Dantzig burns hundreds of zero-step pivots per cut round. On wide
// problems (cols ≥ kPartialPricingMinCols) both rules additionally price
// over a candidate list: a full sweep ranks the eligible columns and keeps
// the best few dozen, later iterations re-price only those, and the next
// full sweep runs when the list goes dry — optimality is only ever
// declared by a full sweep.
//
// Anti-cycling: the ratio test breaks ties lexicographically on the rows
// of [B⁻¹b | B⁻¹], exactly the invariant the dense solver maintains over
// its slack/artificial block (tied rows are materialized on demand with a
// unit BTRAN). The starting basis is the identity, so rows begin
// lexicographically positive and the classic termination argument applies
// to both backends alike.
//
// Warm re-solves mirror the dense cascade: FTRAN re-prices the new RHS
// under the cached factorization (witness), dual simplex repairs primal
// infeasibility from the still-dual-feasible basis (warm), and anything
// the factorization cannot represent falls back to a cold two-phase solve.
//
// Hot-path layout (this is the backend the batch estimate regime runs):
// the RHS normalization, the B⁻¹ column memo, and the incremental
// re-pricing deltas are double-precision kernels (lp/kernels.h) over
// arena-backed scratch (util/arena.h) — NormalizedRhsEntry always computed
// in double, so nothing is lost — while every pivot-decision quantity
// (FTRAN/BTRAN images, ratio tests, basic values) stays long double. All
// solver exits write into a caller-owned LpResult, so a batch loop reuses
// one result vector and its x/duals capacity instead of re-allocating per
// column.
#ifndef LPB_LP_REVISED_SIMPLEX_H_
#define LPB_LP_REVISED_SIMPLEX_H_

#include <utility>
#include <vector>

#include "lp/kernels.h"
#include "lp/lp_backend.h"
#include "lp/lp_problem.h"
#include "lp/lu_basis.h"
#include "lp/simplex.h"
#include "lp/sparse_matrix.h"
#include "util/arena.h"

namespace lpb {

class RevisedSimplex : public LpBackendImpl {
 public:
  explicit RevisedSimplex(const LpProblem& problem,
                          const SimplexOptions& options = {});

  LpResult Solve(const std::vector<double>& rhs) override;
  LpResult ResolveWithRhs(const std::vector<double>& rhs) override;
  // Multi-RHS resolve: every column flows through the one cached LU
  // factorization (an incremental re-price or FTRAN per column, no
  // per-column rebuild), witness validation is per column, and the
  // cost-row BTRAN is shared — the cached duals serve every witness-valid
  // column in the block. A column whose basis goes stale runs the scalar
  // dual-simplex/cold cascade, and the columns after it continue against
  // the updated factorization, keeping results identical to sequential
  // ResolveWithRhs calls. Results land in `out` (fully overwritten), so a
  // caller looping over batches reuses the element capacity.
  void ResolveWithRhsBatch(std::span<const std::vector<double>> rhs_batch,
                           std::vector<LpResult>& out) override;
  using LpBackendImpl::ResolveWithRhsBatch;  // value-returning forwarder
  // Order-relaxed block resolve (see lp/lp_backend.h): a witness-only
  // first pass against the pinned current basis — no pivots, so the
  // B⁻¹-column memo and the incremental re-price baseline survive the
  // whole pass — then the deferred stale columns run the scalar cascade
  // in their original order. Value-equivalent, not bitwise-equal, to the
  // strict batch; the cutting-plane batch path rides this.
  void ResolveWithRhsBatchRelaxed(
      std::span<const std::vector<double>> rhs_batch,
      std::vector<LpResult>& out) override;
  // Warm cut append (see lp/lp_backend.h for the contract): the new rows
  // join the sparse matrix via SparseMatrix::AppendRows, their slacks
  // enter the basis, and the LU factorization grows by bordered slack
  // columns (LuBasis::AppendBorderedRows) — refactorizing only when the
  // bordered growth is refused or the fill budget trips. Dual simplex then
  // repairs the rows the previous optimum violates. Declines (pre-
  // mutation, state untouched) when there is no cached optimal basis, an
  // artificial column exists, or a new row does not normalize to a
  // slack-feasible <= row.
  bool AddConstraintsWarm(const std::vector<LpConstraint>& rows,
                          const std::vector<double>& rhs,
                          LpResult& result) override;
  bool has_optimal_basis() const override { return has_basis_; }
  const std::vector<int>& basis() const override { return basis_; }

 private:
  // Working precision, matching LuBasis::Scalar and the dense tableau (the
  // lexicographic ratio test needs a noise floor far below its pivot
  // eligibility threshold; double's is not).
  using Scalar = long double;

  static constexpr int kNoCol = -1;
  // Degenerate (zero-step) pivots tolerated before the phase falls back
  // from Dantzig/Devex + lexicographic to Bland's rule (see RunPhase).
  static constexpr int kBlandStallThreshold = 100;
  // Base magnitude of the internal anti-degeneracy RHS perturbation
  // (graded per row, removed exactly by the cleanup pass in SolveCore).
  static constexpr double kAntiDegeneracyEps = 1e-7;
  // Candidate-list (partial) pricing engages at this column count.
  static constexpr int kPartialPricingMinCols = 512;
  // Devex weights past this trigger a reference-framework reset.
  static constexpr double kDevexWeightLimit = 1e8;
  // Lanes per blocked FTRAN when materializing missing B⁻¹ columns.
  static constexpr int kBinvBlockLanes = LuBasis::kMaxFtranBlockLanes;

  void Build(const std::vector<double>& rhs);
  // Sets b_ from `rhs` and computes x_basic_ = B⁻¹b. Incremental when the
  // factorization is unchanged since the last re-price: each moved RHS
  // coordinate contributes Δ_j times column j of B⁻¹ (materialized by
  // blocked FTRANs and memoized per factorization in binv_pool_), so a
  // k-statistic what-if probe costs O(rows × k) instead of a full FTRAN.
  // Every kFullRepriceInterval calls a fresh FTRAN bounds drift.
  void RepriceRhs(const std::vector<double>& rhs);
  // Ensures binv_pool_ holds B⁻¹ e_j for the first `n` entries of `rows`
  // (missing columns are materialized kBinvBlockLanes at a time with
  // FtranBlock).
  void MaterializeBinvColumns(const int* rows, int n);
  // Called whenever the basis or its factorization changes.
  void InvalidateReprice();
  // After an incremental re-price, x_reprice_ is the master copy and
  // x_basic_ lags it (x_basic_stale_): the witness scan and extraction
  // read the double master directly, so only paths that actually pivot
  // pay the long-double widen. Call before any pivot-precision use of
  // x_basic_.
  void WidenReprice() {
    if (!x_basic_stale_) return;
    for (int i = 0; i < rows_; ++i) x_basic_[i] = x_reprice_[i];
    x_basic_stale_ = false;
  }
  // Basic value of slot i for feasibility scans and extraction. Exact
  // whichever copy is current: the widen is a double→long-double
  // promotion, so reading the un-widened master is bitwise the same
  // value the promoted copy would narrow back to.
  double BasicValue(int i) const {
    return x_basic_stale_ ? x_reprice_[i] : static_cast<double>(x_basic_[i]);
  }
  // The witness feasibility scan over the basic values, hoisted out of
  // the cascade and block-resolve loops: kFeasible when the cached basis
  // serves this RHS as-is, kInfeasible when dual simplex must repair
  // negative basics, kArtificial when a basic artificial sits off zero
  // (the basis cannot represent the RHS; only a cold solve decides).
  enum class ScanVerdict { kFeasible, kInfeasible, kArtificial };
  ScanVerdict ScanBasics() const;
  // Any mutation of basis_ marks the artificial-slot list stale; the next
  // ScanBasics rebuilds it (see art_slots_).
  void MarkBasisChanged() { art_slots_dirty_ = true; }
  // The cold-solve driver (anti-degeneracy attempt + unperturbed rerun)
  // behind the public Solve(); shared with the cascade's cold fallback so
  // a fallback accumulates into the call's stats_ instead of resetting it.
  void SolveFromScratch(const std::vector<double>& rhs, LpResult& result);
  // The cold two-phase solve behind Solve(). With `anti_degeneracy`, the
  // normalized RHS gets graded positive shifts so the ratio test is
  // (almost) never tied, and a cleanup pass restores the true RHS from
  // the perturbed-optimal basis; sets cleanup_failed_ when that repair
  // does not go through (Solve then re-runs unperturbed).
  void SolveCore(const std::vector<double>& rhs, bool anti_degeneracy,
                 LpResult& result);
  Scalar NormalizedRhs(int i, const std::vector<double>& rhs) const;
  // Refactorizes the basis and recomputes basic values from b_. Returns
  // false (setting numerical_failure_) if the basis went singular.
  bool Refactorize();
  // Primal phase on `cost`; false on iteration limit or numerical failure.
  bool RunPhase(const std::vector<double>& cost, bool phase_two);
  // Entering-column choice for RunPhase's non-Bland iterations: Dantzig or
  // Devex criterion, over the candidate list when partial pricing is
  // active (falling back to — and rebuilding the list from — a full sweep
  // when the list goes dry). Returns kNoCol only after a full sweep found
  // no eligible column; `best` is the entering column's reduced cost.
  int PriceEntering(const std::vector<double>& cost, int limit, double& best);
  // Devex weight maintenance for the chosen (enter, leave_slot) pivot, in
  // two halves: Prepare runs against the *pre-pivot* basis (one BTRAN
  // materializes the pivot row, and every nonbasic column's candidate
  // weight is staged — all columns, not just the candidate list: stale
  // weights were measured to cost far more pivots than the full update
  // pass costs to maintain), and Commit applies the staged weights only
  // once ApplyPivot has actually taken the pivot (a rejected-and-rolled-
  // back pivot must not leave phantom updates behind). Commit also resets
  // the reference framework when weights blow past kDevexWeightLimit.
  void PrepareDevexWeights(int enter, int leave_slot,
                           const std::vector<Scalar>& w, int limit);
  void CommitDevexWeights();
  enum class DualOutcome { kOptimal, kInfeasible, kIterationLimit };
  DualOutcome RunDualSimplex();
  // The witness / dual-simplex / cold cascade against the cached basis —
  // the shared per-column body of ResolveWithRhs and ResolveWithRhsBatch.
  // Callers must have reset the iteration bookkeeping and checked
  // has_basis_.
  void ResolveCascade(const std::vector<double>& rhs, LpResult& result);
  // Ratio test with the lexicographic tie-break; -1 if no row qualifies.
  int ChooseLeavingSlot(const std::vector<Scalar>& w);
  // Swaps `enter` into the basis at `leave_slot` using the FTRAN image `w`
  // of the entering column; updates basic values and the factorization.
  // Returns false — with the previous basis restored and refactorized —
  // when the post-pivot basis turns out numerically singular (the pivot
  // element only looked acceptable through eta-stack drift); the caller
  // must not retry the same entering column.
  bool ApplyPivot(int enter, int leave_slot, const std::vector<Scalar>& w);
  void EvictArtificials();
  // y_ := B⁻ᵀ cost_B (row space).
  void ComputeDuals(const std::vector<double>& cost);
  // Exit writers: every LpResult field is set (result objects are reused
  // across batch columns, so a skipped field would be a stale read).
  // `repeat` asserts x_basic_ is bitwise-unchanged since the previous
  // extraction (the memoized witness branch of ResolveCascade): the x
  // vector and objective are then served from the extraction cache —
  // flat double memcpys — instead of re-scattering and re-dotting.
  void ExtractOptimal(LpEvalPath path, LpResult& result, bool repeat = false);
  void Failure(LpStatus status, LpResult& result);
  // Copies this call's kernel-counter deltas into stats_ (lp/kernels.h).
  void FillKernelStats();

  LpProblem problem_;
  SimplexOptions options_;
  PricingRule pricing_ = PricingRule::kDantzig;        // resolved, pinned
  BasisUpdateKind update_kind_ = BasisUpdateKind::kForrestTomlin;
  const LpKernels* kernels_;  // dispatch table per SimplexOptions::simd

  int rows_ = 0;
  int cols_ = 0;       // structural + slack/surplus + artificial
  int first_art_ = 0;  // first artificial column index
  SparseMatrix a_;     // normalized constraint matrix, all columns
  std::vector<Scalar> b_;  // normalized RHS of the last Build/Resolve
  std::vector<double> row_sign_;
  std::vector<double> phase2_cost_;  // structural objective, padded to cols_

  std::vector<int> basis_;     // slot -> column
  std::vector<int> in_basis_;  // column -> slot, or kNoCol
  std::vector<Scalar> x_basic_;  // basic values per slot
  LuBasis lu_;

  // Arena-backed re-pricing scratch, (re)allocated per cold Build. The
  // normalized-RHS pipeline is all double (NormalizedRhsEntry computes in
  // double), so the double buffers lose nothing; the pivot-precision
  // consumers read the widened x_basic_.
  Arena arena_;
  double* problem_rhs_ = nullptr;   // constraint(i).rhs, for the empty-rhs case
  double* perturb_term_ = nullptr;  // perturb * (1 + i % 101)
  double* norm_b_ = nullptr;        // row_sign * b + perturb_term (this call)
  double* last_b_ = nullptr;        // normalized RHS of the last re-price
  double* x_reprice_ = nullptr;     // B⁻¹ last_b_ (double master copy)
  // Memoized B⁻¹ columns, column-major: column j at binv_pool_ + j*rows_.
  // Stored in double — they only ever feed the double delta axpy.
  double* binv_pool_ = nullptr;
  std::vector<char> binv_valid_;
  // FtranBlock staging (rows_ x kBinvBlockLanes, lane-interleaved).
  Scalar* binv_block_ = nullptr;

  // Incremental re-pricing state (see RepriceRhs), invalidated by
  // InvalidateReprice on any basis/factorization change.
  static constexpr int kFullRepriceInterval = 64;
  bool reprice_valid_ = false;
  int reprices_since_full_ = 0;
  // Set by RepriceRhs when the normalized RHS was bitwise-unchanged from
  // the previous re-price (x_basic_ untouched); with witness_scan_ok_ —
  // "the x currently in x_basic_ passed the cascade's feasibility scan" —
  // ResolveCascade skips straight to the witness extraction. Both are
  // exact memoizations (identical values ⇒ identical verdict), so the
  // fast path changes no result bit.
  bool rhs_unchanged_ = false;
  bool witness_scan_ok_ = false;
  // True while x_reprice_ is ahead of x_basic_ (see WidenReprice).
  bool x_basic_stale_ = false;
  std::vector<int> moved_;    // rows whose normalized RHS changed
  std::vector<int> missing_;  // moved rows without a memoized B⁻¹ column
  std::vector<double> pivot_w_;  // narrowed pivot column for the memo update
  // Slots whose basic column is an artificial, rebuilt lazily per basis
  // header (see ScanBasics / MarkBasisChanged). Mutable: the scan is a
  // logically-const query and the list is a cache of basis_.
  mutable std::vector<int> art_slots_;
  mutable bool art_slots_dirty_ = true;
  // Columns deferred to the pivoting pass of the relaxed block resolve.
  std::vector<std::size_t> stale_cols_;

  int iterations_ = 0;
  int max_iterations_ = 0;
  bool unbounded_ = false;
  bool has_basis_ = false;
  bool numerical_failure_ = false;
  bool bland_mode_ = false;  // Bland's-rule fallback engaged (RunPhase)
  bool cleanup_failed_ = false;  // perturbation cleanup fell through
  std::vector<double> cached_duals_;
  // Extraction cache for the repeated-witness fast path: the x/objective
  // of the last ExtractOptimal, valid only while x_basic_ is untouched
  // (consumed strictly behind the rhs_unchanged_ && witness_scan_ok_
  // gate, refreshed by every non-repeat extraction).
  std::vector<double> cached_x_;
  double cached_objective_ = 0.0;
  bool result_cache_valid_ = false;
  std::vector<bool> frozen_;

  // Per-call counters (LpResult::stats): reset at the public entry points
  // (Solve, ResolveWithRhs, each batch column) and accumulated across the
  // whole cascade, including cold fallbacks and the anti-degeneracy rerun.
  LpSolveStats stats_;
  // Thread-local kernel counters at the last public entry; FillKernelStats
  // reports the delta (see lp/kernels.h).
  LpKernelCounters kernel_base_;
  // Devex reference weights per column (reset to 1 per phase and on
  // blow-up), the staged updates of the pending pivot (see
  // PrepareDevexWeights/CommitDevexWeights), and the candidate list of
  // partial pricing.
  std::vector<double> devex_w_;
  std::vector<std::pair<int, double>> devex_pending_;  // (col, new weight)
  int devex_pending_out_ = kNoCol;
  double devex_pending_out_w_ = 1.0;
  bool devex_pending_reset_ = false;
  std::vector<int> price_list_;

  // Scratch (slot/row space, size rows_).
  std::vector<Scalar> y_;     // duals
  std::vector<Scalar> w_;     // FTRAN image of the entering column
  // Pre-U intermediate of the entering column's FTRAN (the FT spike),
  // captured so ApplyPivot's basis update skips the duplicate forward
  // solve. Valid only between the capturing Ftran and the pivot.
  std::vector<Scalar> spike_;
  std::vector<Scalar> cb_;    // basic costs
  std::vector<Scalar> unit_;  // unit-vector solves (B⁻¹ columns/rows)
  std::vector<Scalar> row_l_;  // leaving row of B⁻¹ (dual simplex, evict)
  std::vector<int> tied_;       // ratio-test tie candidates
  std::vector<int> survivors_;  // tie candidates surviving a coordinate
  std::vector<std::pair<double, int>> ranked_;  // pricing-sweep scratch
};

}  // namespace lpb

#endif  // LPB_LP_REVISED_SIMPLEX_H_
