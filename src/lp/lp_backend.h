// Internal solver-backend interface behind SimplexTableau.
//
// SimplexTableau (lp/tableau.h) is the public compile-once/solve-many
// handle; the actual pivoting lives in one of two interchangeable
// implementations selected per SimplexOptions::backend (or the
// LPB_LP_BACKEND environment variable when the option is kDefault):
//
//   * DenseTableau (lp/dense_tableau.h) — the original long-double dense
//     tableau. Simple, numerically forgiving, O(rows x cols) per pivot.
//   * RevisedSimplex (lp/revised_simplex.h) — sparse revised simplex over
//     an LU-factorized basis; pivots cost O(nnz) solves instead of a full
//     tableau sweep, which is what makes cutting-plane Gamma_n bounds
//     tractable past n ~ 7.
//
// Both implement the identical contract documented on SimplexTableau
// (two-phase cold solve, witness/warm/cold RHS re-solve cascade, dual
// extraction sign conventions, lexicographic anti-cycling), so results are
// interchangeable up to floating-point noise — a property enforced by the
// randomized differential harness (tests/test_simplex_differential.cc).
#ifndef LPB_LP_LP_BACKEND_H_
#define LPB_LP_LP_BACKEND_H_

#include <memory>
#include <span>
#include <vector>

#include "lp/lp_problem.h"
#include "lp/simplex.h"

namespace lpb {

class LpBackendImpl {
 public:
  virtual ~LpBackendImpl() = default;

  // Cold two-phase solve; empty `rhs` uses the problem's own right-hand
  // sides. Caches the final basis on an optimal finish.
  virtual LpResult Solve(const std::vector<double>& rhs) = 0;
  // Warm re-solve against a new RHS (witness / dual-simplex / cold
  // cascade); behaves like Solve(rhs) when no basis is cached.
  virtual LpResult ResolveWithRhs(const std::vector<double>& rhs) = 0;
  // Multi-RHS warm re-solve: resolves every column of `rhs_batch` in order,
  // with results identical to calling ResolveWithRhs per column (the basis
  // mutates between columns exactly as it would across scalar calls). The
  // base implementation is that scalar loop; backends override to amortize
  // per-call setup across the block — the revised backend FTRANs all
  // columns through one cached LU factorization and shares the cost-row
  // BTRAN (the cached duals) across every witness-valid column, falling
  // back to the scalar cascade only for columns whose basis goes stale.
  //
  // The out-parameter form is the primary one: `out` is resized to the
  // batch and every element is fully overwritten (every LpResult field set,
  // no stale reads), so a caller looping over batches can reuse one result
  // vector and its per-element x/duals capacity instead of re-allocating
  // ~2 vectors per estimate — which profiling showed was a quarter of the
  // batch path. The value-returning form is a convenience forwarder.
  virtual void ResolveWithRhsBatch(
      std::span<const std::vector<double>> rhs_batch,
      std::vector<LpResult>& out);
  std::vector<LpResult> ResolveWithRhsBatch(
      std::span<const std::vector<double>> rhs_batch) {
    std::vector<LpResult> out;
    ResolveWithRhsBatch(rhs_batch, out);
    return out;
  }

  virtual bool has_optimal_basis() const = 0;
  // Basic column per row, internal column ids (structural, then
  // slack/surplus, then artificial).
  virtual const std::vector<int>& basis() const = 0;
};

// Row normalization shared by both backends — backend parity (enforced by
// the differential harness) depends on them applying the *identical*
// transformation, so it lives here rather than being duplicated. Rows are
// flipped when the RHS is negative, and also when a >= row has RHS 0: the
// flipped row is a <= row whose slack gives a feasible basis, avoiding an
// artificial variable entirely (the common case for the engines'
// homogeneous Shannon cuts).
struct NormalizedRows {
  std::vector<LpSense> sense;     // per row, post-flip
  std::vector<double> row_sign;   // +1 / -1 per row
  int num_slack = 0;              // slack/surplus columns needed
  int num_art = 0;                // artificial columns needed
};
NormalizedRows NormalizeRows(const LpProblem& problem,
                             const std::vector<double>& rhs);

// The normalized RHS entry of row i: the row sign applied to the caller's
// value (empty `rhs` = the problem's own) plus the graded perturbation.
double NormalizedRhsEntry(const LpProblem& problem,
                          const std::vector<double>& row_sign, double perturb,
                          int i, const std::vector<double>& rhs);

// Resolves kDefault against the LPB_LP_BACKEND environment variable
// ("dense" / "revised"; anything else falls back to dense). Never returns
// kDefault.
LpBackendKind ResolveLpBackend(const SimplexOptions& options);

// Resolves kDefault against LPB_LP_PRICING ("dantzig" / "devex"; anything
// else falls back to dantzig). Never returns kDefault.
PricingRule ResolveLpPricing(const SimplexOptions& options);

// Resolves kDefault against LPB_LP_UPDATE ("eta" / "ft"; anything else
// falls back to Forrest–Tomlin). Never returns kDefault.
BasisUpdateKind ResolveBasisUpdate(const SimplexOptions& options);

// Resolves kDefault against LPB_LP_SIMD ("auto" / "scalar"; anything else
// falls back to auto). Never returns kDefault.
SimdMode ResolveSimdMode(const SimplexOptions& options);

// Constructs the backend selected by `options` for `problem`.
std::unique_ptr<LpBackendImpl> MakeLpBackend(const LpProblem& problem,
                                             const SimplexOptions& options);

}  // namespace lpb

#endif  // LPB_LP_LP_BACKEND_H_
