// Internal solver-backend interface behind SimplexTableau.
//
// SimplexTableau (lp/tableau.h) is the public compile-once/solve-many
// handle; the actual pivoting lives in one of two interchangeable
// implementations selected per SimplexOptions::backend (or the
// LPB_LP_BACKEND environment variable when the option is kDefault):
//
//   * DenseTableau (lp/dense_tableau.h) — the original long-double dense
//     tableau. Simple, numerically forgiving, O(rows x cols) per pivot.
//   * RevisedSimplex (lp/revised_simplex.h) — sparse revised simplex over
//     an LU-factorized basis; pivots cost O(nnz) solves instead of a full
//     tableau sweep, which is what makes cutting-plane Gamma_n bounds
//     tractable past n ~ 7.
//
// Both implement the identical contract documented on SimplexTableau
// (two-phase cold solve, witness/warm/cold RHS re-solve cascade, dual
// extraction sign conventions, lexicographic anti-cycling), so results are
// interchangeable up to floating-point noise — a property enforced by the
// randomized differential harness (tests/test_simplex_differential.cc).
#ifndef LPB_LP_LP_BACKEND_H_
#define LPB_LP_LP_BACKEND_H_

#include <memory>
#include <span>
#include <vector>

#include "lp/lp_problem.h"
#include "lp/simplex.h"

namespace lpb {

class LpBackendImpl {
 public:
  virtual ~LpBackendImpl() = default;

  // Cold two-phase solve; empty `rhs` uses the problem's own right-hand
  // sides. Caches the final basis on an optimal finish.
  virtual LpResult Solve(const std::vector<double>& rhs) = 0;
  // Warm re-solve against a new RHS (witness / dual-simplex / cold
  // cascade); behaves like Solve(rhs) when no basis is cached.
  virtual LpResult ResolveWithRhs(const std::vector<double>& rhs) = 0;
  // Multi-RHS warm re-solve: resolves every column of `rhs_batch` in order,
  // with results identical to calling ResolveWithRhs per column (the basis
  // mutates between columns exactly as it would across scalar calls). The
  // base implementation is that scalar loop; backends override to amortize
  // per-call setup across the block — the revised backend FTRANs all
  // columns through one cached LU factorization and shares the cost-row
  // BTRAN (the cached duals) across every witness-valid column, falling
  // back to the scalar cascade only for columns whose basis goes stale.
  //
  // The out-parameter form is the primary one: `out` is resized to the
  // batch and every element is fully overwritten (every LpResult field set,
  // no stale reads), so a caller looping over batches can reuse one result
  // vector and its per-element x/duals capacity instead of re-allocating
  // ~2 vectors per estimate — which profiling showed was a quarter of the
  // batch path. The value-returning form is a convenience forwarder.
  virtual void ResolveWithRhsBatch(
      std::span<const std::vector<double>> rhs_batch,
      std::vector<LpResult>& out);
  std::vector<LpResult> ResolveWithRhsBatch(
      std::span<const std::vector<double>> rhs_batch) {
    std::vector<LpResult> out;
    ResolveWithRhsBatch(rhs_batch, out);
    return out;
  }

  // Order-relaxed multi-RHS resolve: every column gets the same *value*
  // (objective, status, duals' weights) it would get from the scalar
  // sequence, but columns the cached basis can serve as a witness are
  // processed first, against one pinned basis, and only then do the stale
  // columns run the pivoting cascade in their original order. The point:
  // a mid-block pivot invalidates the factorization-keyed B⁻¹-column memo
  // and the incremental re-price baseline, so under the strict in-order
  // contract a handful of pivoting columns forces every later column back
  // to full FTRAN re-prices; pinning the basis for the witness pass keeps
  // the memos valid across the whole block. This is sound because a
  // witness verdict is order-independent — the pinned basis is dual
  // feasible (costs never change), so any column it serves primal-feasibly
  // gets the true optimum no matter which pivots other columns will take.
  // Bitwise identity with the scalar sequence is NOT promised (a deferred
  // column may reach its optimum through a different equal-value basis);
  // callers needing the strict contract use ResolveWithRhsBatch. The base
  // implementation is the strict path; the revised backend overrides.
  virtual void ResolveWithRhsBatchRelaxed(
      std::span<const std::vector<double>> rhs_batch,
      std::vector<LpResult>& out) {
    ResolveWithRhsBatch(rhs_batch, out);
  }

  // Incremental row append on top of the cached optimal basis. Installs
  // the new constraints with their slacks basic — the previous optimum
  // keeps its duals (new rows get dual 0), so the extended basis is dual
  // feasible by construction — then runs dual simplex to repair only the
  // rows the old optimum violates. This is what makes cutting-plane
  // growth rounds cheap: O(violated-rows) dual pivots instead of a full
  // two-phase re-solve from the identity basis.
  //
  // `rows` are the new constraints (same term/sense/rhs shape as
  // LpProblem::AddConstraint); the backend appends them to its own copy
  // of the problem. `rhs` is the full new RHS including the appended
  // rows. Callers that keep their own LpProblem (for a later cold
  // rebuild) must mirror the append there themselves.
  //
  // Returns kOptimal/kUnbounded/etc. with path kWarm on success. Returns
  // false via the bool when the backend declines the append — no cached
  // optimal basis, a row that normalizes to something other than a
  // slack-feasible <= row, or an existing artificial column (appends
  // assume slack columns are the tail of the column space). On decline
  // the backend state is unchanged and the caller must rebuild + solve
  // cold; `result` is untouched. The default implementation always
  // declines.
  virtual bool AddConstraintsWarm(const std::vector<LpConstraint>& rows,
                                  const std::vector<double>& rhs,
                                  LpResult& result);

  virtual bool has_optimal_basis() const = 0;
  // Basic column per row, internal column ids (structural, then
  // slack/surplus, then artificial).
  virtual const std::vector<int>& basis() const = 0;
};

// Row normalization shared by both backends — backend parity (enforced by
// the differential harness) depends on them applying the *identical*
// transformation, so it lives here rather than being duplicated. Rows are
// flipped when the RHS is negative, and also when a >= row has RHS 0: the
// flipped row is a <= row whose slack gives a feasible basis, avoiding an
// artificial variable entirely (the common case for the engines'
// homogeneous Shannon cuts).
struct NormalizedRows {
  std::vector<LpSense> sense;     // per row, post-flip
  std::vector<double> row_sign;   // +1 / -1 per row
  int num_slack = 0;              // slack/surplus columns needed
  int num_art = 0;                // artificial columns needed
};
NormalizedRows NormalizeRows(const LpProblem& problem,
                             const std::vector<double>& rhs);

// The normalized RHS entry of row i: the row sign applied to the caller's
// value (empty `rhs` = the problem's own) plus the graded perturbation.
double NormalizedRhsEntry(const LpProblem& problem,
                          const std::vector<double>& row_sign, double perturb,
                          int i, const std::vector<double>& rhs);

// Resolves kDefault against the LPB_LP_BACKEND environment variable
// ("dense" / "revised"; anything else falls back to dense). Never returns
// kDefault.
LpBackendKind ResolveLpBackend(const SimplexOptions& options);

// Resolves kDefault against LPB_LP_PRICING ("dantzig" / "devex"; anything
// else falls back to dantzig). Never returns kDefault.
PricingRule ResolveLpPricing(const SimplexOptions& options);

// Resolves kDefault against LPB_LP_UPDATE ("eta" / "ft"; anything else
// falls back to Forrest–Tomlin). Never returns kDefault.
BasisUpdateKind ResolveBasisUpdate(const SimplexOptions& options);

// Resolves kDefault against LPB_LP_SIMD ("auto" / "scalar"; anything else
// falls back to auto). Never returns kDefault.
SimdMode ResolveSimdMode(const SimplexOptions& options);

// Resolves kDefault against LPB_LP_CUT_WARM ("0" / "off" disable; anything
// else — including unset — enables). Never returns kDefault.
CutWarmStart ResolveCutWarmStart(const SimplexOptions& options);

// Constructs the backend selected by `options` for `problem`.
std::unique_ptr<LpBackendImpl> MakeLpBackend(const LpProblem& problem,
                                             const SimplexOptions& options);

}  // namespace lpb

#endif  // LPB_LP_LP_BACKEND_H_
