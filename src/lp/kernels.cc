#include "lp/kernels.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define LPB_HAVE_AVX2_KERNELS 1
#endif

namespace lpb {

thread_local LpKernelCounters g_lp_kernel_counters;

namespace {

bool InitCycleTimingFromEnv() {
  const char* env = std::getenv("LPB_LP_KERNEL_CYCLES");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

}  // namespace

std::atomic<bool> g_lp_kernel_cycle_timing{InitCycleTimingFromEnv()};

void SetLpKernelCycleTiming(bool enabled) {
  g_lp_kernel_cycle_timing.store(enabled, std::memory_order_relaxed);
}

namespace {

// ---------------------------------------------------------------------------
// Scalar reference implementations. These DEFINE the semantics; the AVX2
// variants below must match them bit for bit (see the header comment).
// std::fma is a single rounding per element — identical to the hardware
// vfmadd lanes — and no loop here is reassociable by the compiler at the
// project's -O2 (no -ffast-math), so the scalar order is stable.

void AxpyScalar(double a, const double* x, double* y, int n) {
  for (int i = 0; i < n; ++i) y[i] = std::fma(a, x[i], y[i]);
}

double DotScalar(const double* x, const double* y, int n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 = std::fma(x[i], y[i], s0);
    s1 = std::fma(x[i + 1], y[i + 1], s1);
    s2 = std::fma(x[i + 2], y[i + 2], s2);
    s3 = std::fma(x[i + 3], y[i + 3], s3);
  }
  // Remainder elements fold into lanes 0..2 in order, matching the
  // masked-lane handling of the vector variant.
  if (i < n) s0 = std::fma(x[i], y[i], s0);
  if (i + 1 < n) s1 = std::fma(x[i + 1], y[i + 1], s1);
  if (i + 2 < n) s2 = std::fma(x[i + 2], y[i + 2], s2);
  return (s0 + s2) + (s1 + s3);
}

void NormalizeRhsScalar(const double* sign, const double* b, const double* term,
                        double* out, int n) {
  for (int i = 0; i < n; ++i) out[i] = sign[i] * b[i] + term[i];
}

bool EqualScalar(const double* x, const double* y, int n) {
  for (int i = 0; i < n; ++i) {
    if (x[i] != y[i]) return false;
  }
  return true;
}

constexpr LpKernels kScalarKernels = {AxpyScalar, DotScalar,
                                      NormalizeRhsScalar, EqualScalar};

#if LPB_HAVE_AVX2_KERNELS

// ---------------------------------------------------------------------------
// AVX2+FMA variants. Per-function target attributes keep the rest of the
// binary baseline x86-64; loads are unaligned (vmovupd costs the same as
// vmovapd on aligned data since Nehalem) so callers never have to prove
// alignment, though arena-backed buffers are 32-byte aligned anyway.

__attribute__((target("avx2,fma"))) void AxpyAvx2(double a, const double* x,
                                                  double* y, int n) {
  const __m256d va = _mm256_set1_pd(a);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    const __m256d vy = _mm256_loadu_pd(y + i);
    _mm256_storeu_pd(y + i, _mm256_fmadd_pd(va, vx, vy));
  }
  for (; i < n; ++i) y[i] = std::fma(a, x[i], y[i]);
}

__attribute__((target("avx2,fma"))) double DotAvx2(const double* x,
                                                   const double* y, int n) {
  __m256d acc = _mm256_setzero_pd();
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    const __m256d vy = _mm256_loadu_pd(y + i);
    acc = _mm256_fmadd_pd(vx, vy, acc);
  }
  alignas(32) double s[4];
  _mm256_store_pd(s, acc);
  // Remainder elements continue the same lane assignment (i mod 4 == 0,1,2
  // here because i is a multiple of 4), so this matches DotScalar exactly.
  if (i < n) s[0] = std::fma(x[i], y[i], s[0]);
  if (i + 1 < n) s[1] = std::fma(x[i + 1], y[i + 1], s[1]);
  if (i + 2 < n) s[2] = std::fma(x[i + 2], y[i + 2], s[2]);
  return (s[0] + s[2]) + (s[1] + s[3]);
}

__attribute__((target("avx2,fma"))) void NormalizeRhsAvx2(const double* sign,
                                                          const double* b,
                                                          const double* term,
                                                          double* out, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vs = _mm256_loadu_pd(sign + i);
    const __m256d vb = _mm256_loadu_pd(b + i);
    const __m256d vt = _mm256_loadu_pd(term + i);
    // mul then add, two roundings — NOT fmadd, to stay bitwise-equal to
    // the scalar sign[i]*b[i] + term[i].
    _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_mul_pd(vs, vb), vt));
  }
  for (; i < n; ++i) out[i] = sign[i] * b[i] + term[i];
}

__attribute__((target("avx2"))) bool EqualAvx2(const double* x,
                                               const double* y, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    const __m256d vy = _mm256_loadu_pd(y + i);
    // Unordered != (NEQ_UQ): NaN lanes report unequal, same as the scalar
    // operator!=. Pure predicate, so the variants agree by construction.
    const __m256d neq = _mm256_cmp_pd(vx, vy, _CMP_NEQ_UQ);
    if (_mm256_movemask_pd(neq) != 0) return false;
  }
  for (; i < n; ++i) {
    if (x[i] != y[i]) return false;
  }
  return true;
}

constexpr LpKernels kAvx2Kernels = {AxpyAvx2, DotAvx2, NormalizeRhsAvx2,
                                    EqualAvx2};

#endif  // LPB_HAVE_AVX2_KERNELS

}  // namespace

bool CpuHasAvx2Fma() {
#if LPB_HAVE_AVX2_KERNELS
  static const bool has =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return has;
#else
  return false;
#endif
}

const LpKernels& GetLpKernels(SimdMode mode) {
#if LPB_HAVE_AVX2_KERNELS
  if (mode != SimdMode::kScalar && CpuHasAvx2Fma()) return kAvx2Kernels;
#else
  (void)mode;
#endif
  return kScalarKernels;
}

const char* LpKernelDispatchName(SimdMode mode) {
  return &GetLpKernels(mode) == &kScalarKernels ? "scalar" : "avx2";
}

}  // namespace lpb
