#include "lp/lu_basis.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "lp/kernels.h"

namespace lpb {

LuBasis::LuBasis(LuOptions options) : options_(options) {
  max_updates_ = options_.max_updates > 0 ? options_.max_updates
                 : options_.forrest_tomlin ? 64
                                           : 32;
}

bool LuBasis::Factorize(const SparseMatrix& a, const std::vector<int>& basis) {
  m_ = static_cast<int>(basis.size());
  factorized_ = false;
  updates_ = 0;
  etas_.clear();
  ft_etas_.clear();
  u_nnz_ = 0;
  transform_nnz_ = 0;
  pivot_row_.assign(m_, -1);
  row_pos_.assign(m_, -1);
  col_slot_.assign(m_, -1);
  slot_pos_.assign(m_, -1);
  l_cols_.assign(m_, {});
  l_pivot_row_.assign(m_, -1);
  u_cols_.assign(m_, {});
  diag_.assign(m_, 0.0);
  work_.assign(m_, 0.0);
  pos_work_.assign(m_, 0.0);
  spike_.assign(m_, 0.0);
  mu_work_.assign(m_, 0.0);
  visited_.assign(m_, 0);
  row_mark_.assign(m_, -1);

  // Static Markowitz row degrees: nonzeros per row across the basis
  // columns. A dynamic count over the active submatrix would be tighter
  // but needs linked row/column structures; the static count already
  // steers pivots away from dense rows, which is what keeps fill low on
  // the bound LPs.
  std::vector<int> row_degree(m_, 0);
  for (int s = 0; s < m_; ++s) {
    for (const SparseEntry* e = a.ColBegin(basis[s]); e != a.ColEnd(basis[s]);
         ++e) {
      ++row_degree[e->row];
    }
  }

  // Markowitz-style column pre-ordering: factor sparse columns first, so
  // the unit slack/artificial columns of a fresh basis contribute zero
  // fill before any structural column is touched.
  std::vector<int> order(m_);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int x, int y) {
    return a.ColNnz(basis[x]) < a.ColNnz(basis[y]);
  });

  // DFS over the partially built L: edge t -> row_pos_[row] for every
  // pivotal row of l_cols_[t]. Reverse post-order is a topological order,
  // so processing topo_ back-to-front applies updates before reads.
  auto dfs = [&](int root) {
    if (visited_[root]) return;
    dfs_stack_.clear();
    dfs_stack_.emplace_back(root, 0);
    visited_[root] = 1;
    while (!dfs_stack_.empty()) {
      const int t = dfs_stack_.back().first;
      int& edge = dfs_stack_.back().second;
      const std::vector<LuEntry>& lcol = l_cols_[t];
      bool descended = false;
      while (edge < static_cast<int>(lcol.size())) {
        const int pos = row_pos_[lcol[edge].row];
        ++edge;
        if (pos >= 0 && !visited_[pos]) {
          visited_[pos] = 1;
          dfs_stack_.emplace_back(pos, 0);
          descended = true;
          break;
        }
      }
      if (!descended) {
        topo_.push_back(t);
        dfs_stack_.pop_back();
      }
    }
  };

  auto add_candidate = [&](int row, int stamp) {
    if (row_mark_[row] != stamp) {
      row_mark_[row] = stamp;
      cand_.push_back(row);
    }
  };

  for (int k = 0; k < m_; ++k) {
    const int slot = order[k];
    const int col = basis[slot];
    topo_.clear();
    cand_.clear();

    // Reach + scatter of the column to factor.
    for (const SparseEntry* e = a.ColBegin(col); e != a.ColEnd(col); ++e) {
      if (row_pos_[e->row] >= 0) {
        dfs(row_pos_[e->row]);
      } else {
        add_candidate(e->row, k);
      }
    }
    for (const SparseEntry* e = a.ColBegin(col); e != a.ColEnd(col); ++e) {
      work_[e->row] += e->value;
    }

    // Sparse triangular solve x = L⁻¹ (P b), visiting only reached
    // positions; fill lands on non-pivotal rows and joins the pivot
    // candidates.
    for (size_t idx = topo_.size(); idx-- > 0;) {
      const int t = topo_[idx];
      const Scalar xt = work_[pivot_row_[t]];
      if (xt == 0.0) continue;
      for (const LuEntry& e : l_cols_[t]) {
        if (row_pos_[e.row] < 0) add_candidate(e.row, k);
        work_[e.row] -= e.value * xt;
      }
    }

    // Markowitz threshold pivoting over the non-pivotal candidates.
    Scalar max_abs = 0.0;
    for (int row : cand_) {
      max_abs = std::max(max_abs, std::abs(work_[row]));
    }
    if (max_abs < options_.abs_pivot_tol) {
      if (std::getenv("LPB_LU_DEBUG")) {
        std::fprintf(stderr,
                     "LU singular: k=%d/%d col=%d cand=%zu max_abs=%.3e "
                     "topo=%zu\n",
                     k, m_, col, cand_.size(), static_cast<double>(max_abs),
                     topo_.size());
      }
      // Numerically singular basis: clean scratch state and bail.
      for (int row : cand_) work_[row] = 0.0;
      for (int t : topo_) {
        work_[pivot_row_[t]] = 0.0;
        visited_[t] = 0;
      }
      return false;
    }
    int pivot = -1;
    for (int row : cand_) {
      if (std::abs(work_[row]) < options_.rel_pivot_tol * max_abs) continue;
      if (pivot == -1 || row_degree[row] < row_degree[pivot] ||
          (row_degree[row] == row_degree[pivot] &&
           std::abs(work_[row]) > std::abs(work_[pivot]))) {
        pivot = row;
      }
    }

    pivot_row_[k] = pivot;
    row_pos_[pivot] = k;
    col_slot_[k] = slot;
    slot_pos_[slot] = k;
    l_pivot_row_[k] = pivot;
    diag_[slot] = work_[pivot];
    for (int t : topo_) {
      const Scalar v = work_[pivot_row_[t]];
      if (v != 0.0) u_cols_[slot].push_back({pivot_row_[t], v});
      work_[pivot_row_[t]] = 0.0;
      visited_[t] = 0;
    }
    u_nnz_ += static_cast<int64_t>(u_cols_[slot].size());
    const Scalar inv = 1.0L / diag_[slot];
    for (int row : cand_) {
      if (row != pivot && work_[row] != 0.0) {
        l_cols_[k].push_back({row, work_[row] * inv});
      }
      work_[row] = 0.0;
    }
  }

  u_nnz0_ = u_nnz_;
  factorized_ = true;
  return true;
}

void LuBasis::Ftran(std::vector<Scalar>& x,
                    std::vector<Scalar>* spike_out) const {
  // Forward solve with L — a fixed product of column transforms, applied
  // in factorization order regardless of any later position rotation.
  for (int k = 0; k < m_; ++k) {
    const Scalar xt = x[l_pivot_row_[k]];
    if (xt == 0.0) continue;
    for (const LuEntry& e : l_cols_[k]) x[e.row] -= e.value * xt;
  }
  // Forrest–Tomlin row transforms, oldest first: x[ρ] -= μ·x.
  for (const FtEta& eta : ft_etas_) {
    Scalar acc = 0.0;
    for (const LuEntry& e : eta.mu) acc += e.value * x[e.row];
    x[eta.row] -= acc;
  }
  if (spike_out != nullptr) *spike_out = x;
  // Backward solve with U in position order; the result lands per slot.
  for (int k = m_; k-- > 0;) {
    const int slot = col_slot_[k];
    const Scalar zk = x[pivot_row_[k]] / diag_[slot];
    pos_work_[slot] = zk;
    if (zk == 0.0) continue;
    for (const LuEntry& e : u_cols_[slot]) x[e.row] -= e.value * zk;
  }
  for (int i = 0; i < m_; ++i) x[i] = pos_work_[i];
  // Legacy product-form etas, oldest first: x := E⁻¹ x per basis change.
  for (const Eta& eta : etas_) {
    const Scalar v = x[eta.slot] / eta.diag;
    x[eta.slot] = v;
    if (v == 0.0) continue;
    for (const LuEntry& e : eta.off) x[e.row] -= e.value * v;
  }
}

void LuBasis::FtranBlock(Scalar* x, int lanes) const {
  LpKernelTimer timer(kLpKernelFtranBlock);
  // Mirrors Ftran pass for pass; every lane's own arithmetic sequence —
  // including the skip-on-exact-zero guards, which also preserve signed
  // zeros — is identical to a solo Ftran of that lane. Only the entry
  // metadata traversal is shared across lanes.
  for (int k = 0; k < m_; ++k) {
    const Scalar* xt = x + static_cast<std::size_t>(l_pivot_row_[k]) * lanes;
    for (const LuEntry& e : l_cols_[k]) {
      Scalar* xr = x + static_cast<std::size_t>(e.row) * lanes;
      for (int l = 0; l < lanes; ++l) {
        const Scalar v = xt[l];
        if (v == 0.0) continue;
        xr[l] -= e.value * v;
      }
    }
  }
  for (const FtEta& eta : ft_etas_) {
    Scalar acc[kMaxFtranBlockLanes] = {};
    for (const LuEntry& e : eta.mu) {
      const Scalar* xr = x + static_cast<std::size_t>(e.row) * lanes;
      for (int l = 0; l < lanes; ++l) acc[l] += e.value * xr[l];
    }
    Scalar* xrho = x + static_cast<std::size_t>(eta.row) * lanes;
    for (int l = 0; l < lanes; ++l) xrho[l] -= acc[l];
  }
  block_pos_work_.resize(static_cast<std::size_t>(m_) * lanes);
  for (int k = m_; k-- > 0;) {
    const int slot = col_slot_[k];
    const Scalar* xp = x + static_cast<std::size_t>(pivot_row_[k]) * lanes;
    Scalar* pw = block_pos_work_.data() + static_cast<std::size_t>(slot) * lanes;
    for (int l = 0; l < lanes; ++l) pw[l] = xp[l] / diag_[slot];
    for (const LuEntry& e : u_cols_[slot]) {
      Scalar* xr = x + static_cast<std::size_t>(e.row) * lanes;
      for (int l = 0; l < lanes; ++l) {
        const Scalar zk = pw[l];
        if (zk == 0.0) continue;
        xr[l] -= e.value * zk;
      }
    }
  }
  std::copy(block_pos_work_.begin(),
            block_pos_work_.begin() + static_cast<std::size_t>(m_) * lanes, x);
  for (const Eta& eta : etas_) {
    Scalar* xs = x + static_cast<std::size_t>(eta.slot) * lanes;
    for (int l = 0; l < lanes; ++l) xs[l] = xs[l] / eta.diag;
    for (const LuEntry& e : eta.off) {
      Scalar* xr = x + static_cast<std::size_t>(e.row) * lanes;
      for (int l = 0; l < lanes; ++l) {
        const Scalar v = xs[l];
        if (v == 0.0) continue;
        xr[l] -= e.value * v;
      }
    }
  }
}

void LuBasis::Btran(std::vector<Scalar>& y) const {
  // Legacy etas transpose-inverted, newest first (slot space).
  for (size_t idx = etas_.size(); idx-- > 0;) {
    const Eta& eta = etas_[idx];
    Scalar s = 0.0;
    for (const LuEntry& e : eta.off) s += e.value * y[e.row];
    y[eta.slot] = (y[eta.slot] - s) / eta.diag;
  }
  // Forward solve with Uᵀ in position order; the result lands per row.
  for (int k = 0; k < m_; ++k) {
    const int slot = col_slot_[k];
    Scalar s = y[slot];
    for (const LuEntry& e : u_cols_[slot]) s -= e.value * work_[e.row];
    work_[pivot_row_[k]] = s / diag_[slot];
  }
  // Forrest–Tomlin transforms transposed, newest first: y -= μ y[ρ].
  for (size_t idx = ft_etas_.size(); idx-- > 0;) {
    const FtEta& eta = ft_etas_[idx];
    const Scalar t = work_[eta.row];
    if (t == 0.0) continue;
    for (const LuEntry& e : eta.mu) work_[e.row] -= e.value * t;
  }
  // Backward solve with Lᵀ in reverse factorization order (rows referenced
  // by l_cols_[k] are pivotal later in the L sequence, already final).
  for (int k = m_; k-- > 0;) {
    Scalar s = work_[l_pivot_row_[k]];
    for (const LuEntry& e : l_cols_[k]) s -= e.value * work_[e.row];
    work_[l_pivot_row_[k]] = s;
  }
  for (int i = 0; i < m_; ++i) y[i] = work_[i];
}

bool LuBasis::AppendBorderedRows(const SparseMatrix& a,
                                 const std::vector<int>& basis,
                                 int first_new_row) {
  const int new_m = static_cast<int>(basis.size());
  const int k_new = new_m - m_;
  if (!factorized_ || !etas_.empty() || first_new_row != m_ || k_new <= 0 ||
      a.rows() != new_m) {
    return false;
  }

  // Validate the appended slots before mutating anything: each must be a
  // unit column on exactly one new row (that row's slack), diagonals
  // pivotable, rows covered exactly once.
  std::vector<Scalar> new_diag(k_new, 0.0);
  std::vector<int> new_row_of_slot(k_new, -1);
  std::vector<char> row_seen(k_new, 0);
  for (int s = m_; s < new_m; ++s) {
    const int col = basis[s];
    if (col < 0 || col >= a.cols() || a.ColNnz(col) != 1) return false;
    const SparseEntry& e = *a.ColBegin(col);
    if (e.row < first_new_row || e.row >= new_m) return false;
    if (row_seen[e.row - first_new_row]) return false;
    if (std::abs(e.value) < options_.abs_pivot_tol) return false;
    row_seen[e.row - first_new_row] = 1;
    new_row_of_slot[s - m_] = e.row;
    new_diag[s - m_] = e.value;
  }

  // The new rows take the *leading* positions: their U columns are pure
  // diagonals, so every old column's new-row entry references an
  // earlier-in-position row and U stays triangular. The L pass, the FT
  // transforms, and the Lᵀ/μᵀ passes of Btran only touch old rows, so the
  // border block C passes through them untouched — appending the raw
  // A-entries at new rows to the old slots' stored U columns is exact even
  // mid-update-chain.
  pivot_row_.insert(pivot_row_.begin(), new_row_of_slot.begin(),
                    new_row_of_slot.end());
  col_slot_.insert(col_slot_.begin(), k_new, -1);
  for (int k = 0; k < k_new; ++k) col_slot_[k] = m_ + k;
  row_pos_.assign(new_m, -1);
  slot_pos_.assign(new_m, -1);
  for (int k = 0; k < new_m; ++k) {
    row_pos_[pivot_row_[k]] = k;
    slot_pos_[col_slot_[k]] = k;
  }

  // Pad the L sequence with identity transforms so the fixed-order loops
  // cover [0, new_m); their pivot rows are the new rows, whose columns are
  // empty, so the pads are exact no-ops.
  for (int k = 0; k < k_new; ++k) {
    l_cols_.emplace_back();
    l_pivot_row_.push_back(first_new_row + k);
  }

  u_cols_.resize(new_m);
  diag_.resize(new_m, 0.0);
  for (int s = m_; s < new_m; ++s) diag_[s] = new_diag[s - m_];
  for (int s = 0; s < m_; ++s) {
    for (const SparseEntry* e = a.ColBegin(basis[s]); e != a.ColEnd(basis[s]);
         ++e) {
      if (e->row >= first_new_row && e->value != 0.0) {
        u_cols_[s].push_back({e->row, static_cast<Scalar>(e->value)});
        ++u_nnz_;
      }
    }
  }
  // u_nnz0_ deliberately unchanged: the appended entries count as fill
  // against the fresh-factorization size, so long append chains trip
  // NeedsRefactorize instead of accreting an ever-denser U.

  work_.resize(new_m, 0.0);
  pos_work_.resize(new_m, 0.0);
  spike_.resize(new_m, 0.0);
  mu_work_.resize(new_m, 0.0);
  visited_.resize(new_m, 0);
  row_mark_.resize(new_m, -1);
  m_ = new_m;
  return true;
}

bool LuBasis::Update(const SparseMatrix& a, int col,
                     const std::vector<Scalar>& w, int r,
                     const std::vector<Scalar>* spike) {
  if (options_.forrest_tomlin) {
    return UpdateForrestTomlin(a, col, w, r, spike);
  }
  return UpdateEta(w, r);
}

bool LuBasis::UpdateForrestTomlin(const SparseMatrix& a, int col,
                                  const std::vector<Scalar>& w, int r,
                                  const std::vector<Scalar>* spike) {
  const int p = slot_pos_[r];
  const int rho = pivot_row_[p];

  // Spike: the entering column pushed through L and the prior FT
  // transforms — the forward half of Ftran, row-indexed. Replaces column
  // p of U (in position terms) once the update commits. The simplex just
  // FTRANed this very column for the ratio test, so the caller usually
  // hands the captured intermediate in and the forward solve is skipped.
  if (spike != nullptr) {
    for (int i = 0; i < m_; ++i) spike_[i] = (*spike)[i];
  } else {
    for (const SparseEntry* e = a.ColBegin(col); e != a.ColEnd(col); ++e) {
      spike_[e->row] += e->value;
    }
    for (int k = 0; k < m_; ++k) {
      const Scalar xt = spike_[l_pivot_row_[k]];
      if (xt == 0.0) continue;
      for (const LuEntry& e : l_cols_[k]) spike_[e.row] -= e.value * xt;
    }
    for (const FtEta& eta : ft_etas_) {
      Scalar acc = 0.0;
      for (const LuEntry& e : eta.mu) acc += e.value * spike_[e.row];
      spike_[eta.row] -= acc;
    }
  }
  Scalar spike_max = 0.0;
  for (int i = 0; i < m_; ++i) {
    spike_max = std::max(spike_max, std::abs(spike_[i]));
  }

  auto clear_scratch = [&] {
    for (int i = 0; i < m_; ++i) spike_[i] = 0.0;
    for (const LuEntry& e : mu_entries_) mu_work_[e.row] = 0.0;
    mu_entries_.clear();
    row_hits_.clear();
  };

  // Cycling position p to the end leaves U triangular except for the
  // now-bottom row ρ, whose entries sit in the trailing columns. Scan them
  // (without mutating — a rejected update must leave the factorization
  // untouched) and eliminate left to right: the multipliers solve the
  // triangular system μᵀ U_trail = row_ρ, computed pull-style against the
  // column-stored U.
  mu_entries_.clear();
  row_hits_.clear();
  Scalar unew = spike_[rho];
  for (int k = p + 1; k < m_; ++k) {
    const int slot = col_slot_[k];
    const std::vector<LuEntry>& ucol = u_cols_[slot];
    Scalar val = 0.0;
    for (size_t idx = 0; idx < ucol.size(); ++idx) {
      const LuEntry& e = ucol[idx];
      if (e.row == rho) {
        val += e.value;
        row_hits_.emplace_back(slot, static_cast<int>(idx));
      } else {
        const Scalar mu = mu_work_[e.row];
        if (mu != 0.0) val -= mu * e.value;
      }
    }
    if (val == 0.0) continue;
    const Scalar mu = val / diag_[slot];
    mu_work_[pivot_row_[k]] = mu;
    mu_entries_.push_back({pivot_row_[k], mu});
    unew -= mu * spike_[pivot_row_[k]];
  }

  // Stability: the new diagonal must be pivotable at the spike's scale,
  // and must agree with the value the ratio-test pivot predicts
  // (u_new = u_pp · w_r exactly, via det B_new / det B_old = w_r) —
  // disagreement means the factors have drifted and only a fresh
  // factorization restores clean numerics.
  const Scalar predicted = diag_[r] * w[r];
  const Scalar diff = std::abs(unew - predicted);
  if (std::abs(unew) < options_.abs_pivot_tol ||
      std::abs(unew) < options_.ft_rel_tol * spike_max ||
      (diff > options_.abs_pivot_tol &&
       diff > options_.ft_agree_tol *
                  std::max(std::abs(unew), std::abs(predicted)))) {
    if (std::getenv("LPB_LU_DEBUG")) {
      std::fprintf(stderr,
                   "FT reject: slot=%d pos=%d/%d unew=%.3e predicted=%.3e "
                   "spike_max=%.3e\n",
                   r, p, m_, static_cast<double>(unew),
                   static_cast<double>(predicted),
                   static_cast<double>(spike_max));
    }
    clear_scratch();
    return false;
  }

  // Commit. Remove the eliminated row-ρ entries (swap-erase; entry order
  // within a column is irrelevant to the solves), replace column r with
  // the spike, rotate position p to the end, and record the transform.
  for (size_t h = row_hits_.size(); h-- > 0;) {
    std::vector<LuEntry>& ucol = u_cols_[row_hits_[h].first];
    ucol[row_hits_[h].second] = ucol.back();
    ucol.pop_back();
  }
  u_nnz_ -= static_cast<int64_t>(row_hits_.size());
  u_nnz_ -= static_cast<int64_t>(u_cols_[r].size());
  u_cols_[r].clear();
  for (int i = 0; i < m_; ++i) {
    if (i != rho && spike_[i] != 0.0) u_cols_[r].push_back({i, spike_[i]});
  }
  u_nnz_ += static_cast<int64_t>(u_cols_[r].size());
  diag_[r] = unew;
  std::rotate(pivot_row_.begin() + p, pivot_row_.begin() + p + 1,
              pivot_row_.end());
  std::rotate(col_slot_.begin() + p, col_slot_.begin() + p + 1,
              col_slot_.end());
  for (int k = p; k < m_; ++k) {
    row_pos_[pivot_row_[k]] = k;
    slot_pos_[col_slot_[k]] = k;
  }
  if (!mu_entries_.empty()) {
    transform_nnz_ += static_cast<int64_t>(mu_entries_.size());
    ft_etas_.push_back({rho, mu_entries_});
    for (const LuEntry& e : mu_entries_) mu_work_[e.row] = 0.0;
    mu_entries_.clear();
  }
  for (int i = 0; i < m_; ++i) spike_[i] = 0.0;
  row_hits_.clear();
  ++updates_;
  return true;
}

bool LuBasis::UpdateEta(const std::vector<Scalar>& w, int r) {
  Scalar max_abs = 0.0;
  for (Scalar v : w) max_abs = std::max(max_abs, std::abs(v));
  // A tiny eta pivot relative to the spike magnifies every later solve;
  // refuse and let the caller refactorize against the new basis header.
  if (std::abs(w[r]) < options_.abs_pivot_tol ||
      std::abs(w[r]) < options_.eta_rel_tol * max_abs) {
    return false;
  }
  Eta eta;
  eta.slot = r;
  eta.diag = w[r];
  for (int i = 0; i < m_; ++i) {
    if (i != r && w[i] != 0.0) eta.off.push_back({i, w[i]});
  }
  transform_nnz_ += static_cast<int64_t>(eta.off.size());
  etas_.push_back(std::move(eta));
  ++updates_;
  return true;
}

}  // namespace lpb
