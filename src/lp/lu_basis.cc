#include "lp/lu_basis.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>

namespace lpb {

bool LuBasis::Factorize(const SparseMatrix& a, const std::vector<int>& basis) {
  m_ = static_cast<int>(basis.size());
  factorized_ = false;
  etas_.clear();
  pivot_row_.assign(m_, -1);
  row_pos_.assign(m_, -1);
  col_slot_.assign(m_, -1);
  slot_pos_.assign(m_, -1);
  l_cols_.assign(m_, {});
  u_cols_.assign(m_, {});
  diag_.assign(m_, 0.0);
  work_.assign(m_, 0.0);
  pos_work_.assign(m_, 0.0);
  visited_.assign(m_, 0);
  row_mark_.assign(m_, -1);

  // Static Markowitz row degrees: nonzeros per row across the basis
  // columns. A dynamic count over the active submatrix would be tighter
  // but needs linked row/column structures; the static count already
  // steers pivots away from dense rows, which is what keeps fill low on
  // the bound LPs.
  std::vector<int> row_degree(m_, 0);
  for (int s = 0; s < m_; ++s) {
    for (const SparseEntry* e = a.ColBegin(basis[s]); e != a.ColEnd(basis[s]);
         ++e) {
      ++row_degree[e->row];
    }
  }

  // Markowitz-style column pre-ordering: factor sparse columns first, so
  // the unit slack/artificial columns of a fresh basis contribute zero
  // fill before any structural column is touched.
  std::vector<int> order(m_);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int x, int y) {
    return a.ColNnz(basis[x]) < a.ColNnz(basis[y]);
  });

  // DFS over the partially built L: edge t -> row_pos_[row] for every
  // pivotal row of l_cols_[t]. Reverse post-order is a topological order,
  // so processing topo_ back-to-front applies updates before reads.
  auto dfs = [&](int root) {
    if (visited_[root]) return;
    dfs_stack_.clear();
    dfs_stack_.emplace_back(root, 0);
    visited_[root] = 1;
    while (!dfs_stack_.empty()) {
      const int t = dfs_stack_.back().first;
      int& edge = dfs_stack_.back().second;
      const std::vector<LuEntry>& lcol = l_cols_[t];
      bool descended = false;
      while (edge < static_cast<int>(lcol.size())) {
        const int pos = row_pos_[lcol[edge].row];
        ++edge;
        if (pos >= 0 && !visited_[pos]) {
          visited_[pos] = 1;
          dfs_stack_.emplace_back(pos, 0);
          descended = true;
          break;
        }
      }
      if (!descended) {
        topo_.push_back(t);
        dfs_stack_.pop_back();
      }
    }
  };

  auto add_candidate = [&](int row, int stamp) {
    if (row_mark_[row] != stamp) {
      row_mark_[row] = stamp;
      cand_.push_back(row);
    }
  };

  for (int k = 0; k < m_; ++k) {
    const int slot = order[k];
    const int col = basis[slot];
    topo_.clear();
    cand_.clear();

    // Reach + scatter of the column to factor.
    for (const SparseEntry* e = a.ColBegin(col); e != a.ColEnd(col); ++e) {
      if (row_pos_[e->row] >= 0) {
        dfs(row_pos_[e->row]);
      } else {
        add_candidate(e->row, k);
      }
    }
    for (const SparseEntry* e = a.ColBegin(col); e != a.ColEnd(col); ++e) {
      work_[e->row] += e->value;
    }

    // Sparse triangular solve x = L⁻¹ (P b), visiting only reached
    // positions; fill lands on non-pivotal rows and joins the pivot
    // candidates.
    for (size_t idx = topo_.size(); idx-- > 0;) {
      const int t = topo_[idx];
      const Scalar xt = work_[pivot_row_[t]];
      if (xt == 0.0) continue;
      for (const LuEntry& e : l_cols_[t]) {
        if (row_pos_[e.row] < 0) add_candidate(e.row, k);
        work_[e.row] -= e.value * xt;
      }
    }

    // Markowitz threshold pivoting over the non-pivotal candidates.
    Scalar max_abs = 0.0;
    for (int row : cand_) {
      max_abs = std::max(max_abs, std::abs(work_[row]));
    }
    if (max_abs < options_.abs_pivot_tol) {
      if (std::getenv("LPB_LU_DEBUG")) {
        std::fprintf(stderr,
                     "LU singular: k=%d/%d col=%d cand=%zu max_abs=%.3e "
                     "topo=%zu\n",
                     k, m_, col, cand_.size(), static_cast<double>(max_abs),
                     topo_.size());
      }
      // Numerically singular basis: clean scratch state and bail.
      for (int row : cand_) work_[row] = 0.0;
      for (int t : topo_) {
        work_[pivot_row_[t]] = 0.0;
        visited_[t] = 0;
      }
      return false;
    }
    int pivot = -1;
    for (int row : cand_) {
      if (std::abs(work_[row]) < options_.rel_pivot_tol * max_abs) continue;
      if (pivot == -1 || row_degree[row] < row_degree[pivot] ||
          (row_degree[row] == row_degree[pivot] &&
           std::abs(work_[row]) > std::abs(work_[pivot]))) {
        pivot = row;
      }
    }

    pivot_row_[k] = pivot;
    row_pos_[pivot] = k;
    col_slot_[k] = slot;
    slot_pos_[slot] = k;
    diag_[k] = work_[pivot];
    for (int t : topo_) {
      const Scalar v = work_[pivot_row_[t]];
      if (v != 0.0) u_cols_[k].emplace_back(t, v);
      work_[pivot_row_[t]] = 0.0;
      visited_[t] = 0;
    }
    const Scalar inv = 1.0L / diag_[k];
    for (int row : cand_) {
      if (row != pivot && work_[row] != 0.0) {
        l_cols_[k].push_back({row, work_[row] * inv});
      }
      work_[row] = 0.0;
    }
  }

  factorized_ = true;
  return true;
}

void LuBasis::Ftran(std::vector<Scalar>& x) const {
  // Forward solve with L (unit diagonal), consuming x row by pivot order.
  for (int k = 0; k < m_; ++k) {
    const Scalar xt = x[pivot_row_[k]];
    pos_work_[k] = xt;
    if (xt == 0.0) continue;
    for (const LuEntry& e : l_cols_[k]) x[e.row] -= e.value * xt;
  }
  // Backward solve with U.
  for (int k = m_; k-- > 0;) {
    const Scalar zk = pos_work_[k] / diag_[k];
    pos_work_[k] = zk;
    if (zk == 0.0) continue;
    for (const auto& [t, v] : u_cols_[k]) pos_work_[t] -= v * zk;
  }
  // Positions back to basis slots (x is dead after the L pass).
  for (int k = 0; k < m_; ++k) x[col_slot_[k]] = pos_work_[k];
  // Product-form etas, oldest first: x := E⁻¹ x per basis change.
  for (const Eta& eta : etas_) {
    const Scalar v = x[eta.slot] / eta.diag;
    x[eta.slot] = v;
    if (v == 0.0) continue;
    for (const LuEntry& e : eta.off) x[e.row] -= e.value * v;
  }
}

void LuBasis::Btran(std::vector<Scalar>& y) const {
  // Etas transpose-inverted, newest first.
  for (size_t idx = etas_.size(); idx-- > 0;) {
    const Eta& eta = etas_[idx];
    Scalar s = 0.0;
    for (const LuEntry& e : eta.off) s += e.value * y[e.row];
    y[eta.slot] = (y[eta.slot] - s) / eta.diag;
  }
  // Slots to positions.
  for (int k = 0; k < m_; ++k) pos_work_[k] = y[col_slot_[k]];
  // Forward solve with Uᵀ.
  for (int k = 0; k < m_; ++k) {
    Scalar s = pos_work_[k];
    for (const auto& [t, v] : u_cols_[k]) s -= v * pos_work_[t];
    pos_work_[k] = s / diag_[k];
  }
  // Backward solve with Lᵀ (rows referenced by L are pivotal at positions
  // greater than k, so their entries are already final).
  for (int k = m_; k-- > 0;) {
    Scalar s = pos_work_[k];
    for (const LuEntry& e : l_cols_[k]) {
      s -= e.value * pos_work_[row_pos_[e.row]];
    }
    pos_work_[k] = s;
  }
  // Positions back to constraint rows.
  for (int k = 0; k < m_; ++k) y[pivot_row_[k]] = pos_work_[k];
}

bool LuBasis::Update(const std::vector<Scalar>& w, int r) {
  Scalar max_abs = 0.0;
  for (Scalar v : w) max_abs = std::max(max_abs, std::abs(v));
  // A tiny eta pivot relative to the spike magnifies every later solve;
  // refuse and let the caller refactorize against the new basis header.
  if (std::abs(w[r]) < options_.abs_pivot_tol ||
      std::abs(w[r]) < options_.eta_rel_tol * max_abs) {
    return false;
  }
  Eta eta;
  eta.slot = r;
  eta.diag = w[r];
  for (int i = 0; i < m_; ++i) {
    if (i != r && w[i] != 0.0) eta.off.push_back({i, w[i]});
  }
  etas_.push_back(std::move(eta));
  return true;
}

}  // namespace lpb
