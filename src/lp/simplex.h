// Dense two-phase primal simplex solver.
//
// Solves `maximize c'x s.t. Ax {<=,>=,=} b, x >= 0` on a dense tableau.
// Phase 1 drives artificial variables out of the basis; phase 2 optimizes
// the real objective. Pricing is Dantzig's rule; the leaving row is chosen
// by a lexicographic ratio test, which guarantees termination on the
// heavily degenerate cutting-plane LPs of the bound engine. Dual values for every constraint are recovered from the final
// objective row — the bound engines use them as the witness coefficients
// w_i of the paper's information inequality (8).
#ifndef LPB_LP_SIMPLEX_H_
#define LPB_LP_SIMPLEX_H_

#include <vector>

#include "lp/lp_problem.h"

namespace lpb {

enum class LpStatus {
  kOptimal,
  kUnbounded,
  kInfeasible,
  kIterationLimit,
};

// How a result was obtained (see lp/tableau.h): a full two-phase solve
// (kCold), dual-simplex pivots from a cached optimal basis (kWarm), or a
// pure read-off of the still-optimal cached basis (kWitness).
enum class LpEvalPath { kCold, kWarm, kWitness };

// Which solver implementation runs under SolveLp / SimplexTableau.
//   kDefault — consult the LPB_LP_BACKEND environment variable ("dense" or
//              "revised"); dense when unset. This is the only value that
//              honors the env var, so tests pinning a backend stay pinned.
//   kDense   — the dense long-double tableau (lp/dense_tableau.h).
//   kRevised — the sparse revised simplex with an LU-factorized basis
//              (lp/revised_simplex.h).
enum class LpBackendKind { kDefault, kDense, kRevised };

// "dense" / "revised"; kDefault renders as "default".
const char* LpBackendName(LpBackendKind kind);

// Pricing rule of the revised backend's primal phases (the dense tableau
// always prices with Dantzig's rule).
//   kDefault — consult LPB_LP_PRICING ("dantzig" or "devex"); dantzig when
//              unset. Like LpBackendKind::kDefault, this is the only value
//              that honors the env var, so tests pinning a rule stay pinned.
//   kDantzig — most positive reduced cost (the original rule).
//   kDevex   — Devex reference-framework pricing: approximate steepest-edge
//              weights updated per pivot, reference frame reset on weight
//              blow-up. Cuts iteration counts on the heavily degenerate
//              cutting-plane relaxations; see src/lp/README.md for the
//              default-flip criteria.
// Wide problems additionally price over a candidate list under either rule
// (partial pricing); see lp/revised_simplex.h.
enum class PricingRule { kDefault, kDantzig, kDevex };

// "dantzig" / "devex"; kDefault renders as "default".
const char* PricingRuleName(PricingRule rule);

// How the revised backend's LU basis absorbs a pivot (lp/lu_basis.h).
//   kDefault       — consult LPB_LP_UPDATE ("eta" or "ft"); Forrest–Tomlin
//                    when unset.
//   kForrestTomlin — rewrite U in place (spike column + row elimination);
//                    long update chains between refactorizations.
//   kEta           — legacy product-form eta file (refactorize-on-threshold).
enum class BasisUpdateKind { kDefault, kEta, kForrestTomlin };

// "eta" / "ft"; kDefault renders as "default".
const char* BasisUpdateName(BasisUpdateKind kind);

// SIMD dispatch of the double-precision LP kernels (lp/kernels.h).
//   kDefault — consult LPB_LP_SIMD ("auto" or "scalar"); auto when unset.
//              Like the other kDefault knobs, this is the only value that
//              honors the env var, so tests pinning a mode stay pinned.
//   kAuto    — use the AVX2+FMA variants when the CPU supports them.
//   kScalar  — force the scalar fallbacks. Bitwise-identical results to
//              kAuto by construction (see lp/kernels.h); this mode exists
//              so CI can prove it.
// The long-double pivot-precision kernels are scalar under every mode —
// x86 SIMD has no long-double lanes.
enum class SimdMode { kDefault, kAuto, kScalar };

// "auto" / "scalar"; kDefault renders as "default".
const char* SimdModeName(SimdMode mode);

// Whether the cutting-plane engines carry the previous round's optimal
// basis across cut-growth rounds (AddConstraintsWarm + dual-simplex repair,
// see lp/lp_backend.h) instead of rebuilding the tableau and re-solving
// cold from the identity basis.
//   kDefault — consult LPB_LP_CUT_WARM ("0"/"off" disables); on when unset.
//              Like the other kDefault knobs, this is the only value that
//              honors the env var, so tests pinning a mode stay pinned.
//   kOn      — append cut rows warm; fall back to a cold rebuild only when
//              the backend declines the append (see AddConstraintsWarm).
//   kOff     — always rebuild + cold-solve per round (the pre-PR-7 path).
// Warm and cold converge to the same bound (the cut oracle separates on
// the optimal vertex either way); the knob exists as a correctness
// fallback and for the warm-vs-cold differential tests.
enum class CutWarmStart { kDefault, kOn, kOff };

// "on" / "off"; kDefault renders as "default".
const char* CutWarmStartName(CutWarmStart mode);

// Kernel identifiers for the per-kernel call/cycle table carried by
// LpSolveStats (filled from the thread-local counters of lp/kernels.h).
enum LpKernelId {
  kLpKernelAxpy = 0,      // y[i] = fma(a, x[i], y[i])         (double, SIMD)
  kLpKernelDot,           // 4-accumulator fma dot             (double, SIMD)
  kLpKernelNormalizeRhs,  // out[i] = sign[i]*b[i] + term[i]   (double, SIMD)
  kLpKernelEqual,         // all-equal predicate (IEEE !=)     (double, SIMD)
  kLpKernelGather,        // strided B^-1 column axpy          (long double)
  kLpKernelSweep,         // pivot-row elimination sweep       (long double)
  kLpKernelScale,         // pivot-row normalization           (long double)
  kLpKernelFtranBlock,    // blocked multi-RHS FTRAN           (long double)
  kNumLpKernels,
};

// Short stable name ("axpy_d", "dot_d", ...) used as the JSON key of the
// bench kernel table.
const char* LpKernelName(LpKernelId id);

// Per-call solver statistics, reported on every LpResult and aggregated
// upward into BoundResult::lp_stats and the advisor's AdvisorMetrics. All
// counters cover one logical solver call (a Solve including its internal
// anti-degeneracy rerun, a ResolveWithRhs including any cascade fallback,
// or one column of a batch resolve).
struct LpSolveStats {
  int phase1_pivots = 0;      // primal phase-1 pivots
  int phase2_pivots = 0;      // primal phase-2 pivots
  int dual_pivots = 0;        // dual-simplex (warm repair) pivots
  int refactorizations = 0;   // full LU factorizations after the first
  int ft_updates = 0;         // Forrest–Tomlin in-place U updates taken
  int eta_updates = 0;        // product-form eta updates taken
  int rejected_updates = 0;   // updates refused (unstable), forcing refactor
  int devex_resets = 0;       // Devex reference-framework resets
  // Warm cut-round accounting (see AddConstraintsWarm in lp/lp_backend.h).
  int warm_cut_rounds = 0;          // cut rounds served by a warm row append
  int dual_repair_pivots = 0;       // dual pivots spent repairing appended
                                    // rows (a subset of dual_pivots)
  int row_appends = 0;              // rows installed via AddConstraintsWarm
  int append_refactorizations = 0;  // full refactorizations forced by an
                                    // append (fill budget / validation)

  // Per-kernel invocation counts and (when LPB_LP_KERNEL_CYCLES=1 or
  // SetLpKernelCycleTiming(true)) rdtsc cycles for this call, indexed by
  // LpKernelId. Cycles are zero when timing is off — counting is always on,
  // timing costs a serializing timestamp pair per kernel call.
  unsigned long long kernel_calls[kNumLpKernels] = {};
  unsigned long long kernel_cycles[kNumLpKernels] = {};

  int TotalPivots() const {
    return phase1_pivots + phase2_pivots + dual_pivots;
  }
  // Zeroes the pivot counters only. The kernel arrays are rewritten
  // wholesale by the backends' FillKernelStats on every exit path, so
  // clearing them per batch column (256 bytes) would be pure overhead;
  // use `*this = {}` when the struct escapes without a FillKernelStats.
  void ResetPivots() {
    phase1_pivots = 0;
    phase2_pivots = 0;
    dual_pivots = 0;
    refactorizations = 0;
    ft_updates = 0;
    eta_updates = 0;
    rejected_updates = 0;
    devex_resets = 0;
    warm_cut_rounds = 0;
    dual_repair_pivots = 0;
    row_appends = 0;
    append_refactorizations = 0;
  }
  void Add(const LpSolveStats& o) {
    phase1_pivots += o.phase1_pivots;
    phase2_pivots += o.phase2_pivots;
    dual_pivots += o.dual_pivots;
    refactorizations += o.refactorizations;
    ft_updates += o.ft_updates;
    eta_updates += o.eta_updates;
    rejected_updates += o.rejected_updates;
    devex_resets += o.devex_resets;
    warm_cut_rounds += o.warm_cut_rounds;
    dual_repair_pivots += o.dual_repair_pivots;
    row_appends += o.row_appends;
    append_refactorizations += o.append_refactorizations;
    for (int k = 0; k < kNumLpKernels; ++k) {
      kernel_calls[k] += o.kernel_calls[k];
      kernel_cycles[k] += o.kernel_cycles[k];
    }
  }
};

struct LpResult {
  // NOTE: the default is deliberately a *failure* status. A default-
  // constructed LpResult must never read as solved; every solver path is
  // required to set `status` explicitly and to size `x`/`duals` as
  // documented below even on failure (see tests/test_revised_simplex.cc
  // regression tests).
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  // Primal solution, size = problem.num_vars(). Meaningful when kOptimal;
  // on any other status the solver still sizes it (all zeros) so callers
  // indexing unconditionally cannot read stale or out-of-range data.
  std::vector<double> x;
  // Dual value per constraint, size = problem.num_constraints() (zeros on
  // non-optimal statuses, like `x`).
  // Sign convention: for a <= constraint of a maximization problem the dual
  // is >= 0, for >= it is <= 0; duals satisfy sum_i y_i b_i = objective.
  std::vector<double> duals;
  int iterations = 0;
  // Which evaluation path produced this result (always kCold for SolveLp).
  LpEvalPath path = LpEvalPath::kCold;
  // Which solver backend produced this result (never kDefault).
  LpBackendKind backend = LpBackendKind::kDense;
  // Which pricing rule the primal phases ran (never kDefault; always
  // kDantzig from the dense backend).
  PricingRule pricing = PricingRule::kDantzig;
  // Pivot / update / refactorization counters for this call.
  LpSolveStats stats;
};

struct SimplexOptions {
  double eps = 1e-9;          // pivot / feasibility tolerance
  int max_iterations = 0;     // 0 = automatic (50 * (rows + cols) + 1000)
  // Optional right-hand-side perturbation (b_i += perturb * (1 + i mod 101)).
  // Degeneracy is handled by the lexicographic ratio test, so this defaults
  // to off; it remains available for experimentation.
  double perturb = 0.0;
  // Solver implementation. kDefault reads LPB_LP_BACKEND and falls back to
  // the dense tableau; set kDense/kRevised to pin a backend regardless of
  // the environment.
  LpBackendKind backend = LpBackendKind::kDefault;
  // Pricing rule for the revised backend's primal phases (ignored by the
  // dense tableau, which always runs Dantzig). kDefault reads
  // LPB_LP_PRICING and falls back to Dantzig; set kDantzig/kDevex to pin.
  PricingRule pricing = PricingRule::kDefault;
  // Basis-update scheme of the revised backend (ignored by dense).
  // kDefault reads LPB_LP_UPDATE and falls back to Forrest–Tomlin.
  BasisUpdateKind basis_update = BasisUpdateKind::kDefault;
  // Basis updates carried between full refactorizations (revised backend).
  // 0 = automatic: 64 for Forrest–Tomlin, 32 for the eta file. The fill
  // budget in lp/lu_basis.h can force an earlier refactorization either way.
  int max_basis_updates = 0;
  // SIMD dispatch of the double-precision kernels (lp/kernels.h). kDefault
  // reads LPB_LP_SIMD and falls back to kAuto; results are bit-identical
  // under every mode, so this is a pure performance/debugging knob.
  SimdMode simd = SimdMode::kDefault;
  // Warm-started cut rounds in the cutting-plane engines (see the enum
  // above). kDefault reads LPB_LP_CUT_WARM and falls back to on.
  CutWarmStart cut_warm_start = CutWarmStart::kDefault;
};

// Solves the LP. The problem is copied into an internal tableau; `problem`
// is not modified.
LpResult SolveLp(const LpProblem& problem, const SimplexOptions& options = {});

}  // namespace lpb

#endif  // LPB_LP_SIMPLEX_H_
