// Dense two-phase primal simplex solver.
//
// Solves `maximize c'x s.t. Ax {<=,>=,=} b, x >= 0` on a dense tableau.
// Phase 1 drives artificial variables out of the basis; phase 2 optimizes
// the real objective. Pricing is Dantzig's rule; the leaving row is chosen
// by a lexicographic ratio test, which guarantees termination on the
// heavily degenerate cutting-plane LPs of the bound engine. Dual values for every constraint are recovered from the final
// objective row — the bound engines use them as the witness coefficients
// w_i of the paper's information inequality (8).
#ifndef LPB_LP_SIMPLEX_H_
#define LPB_LP_SIMPLEX_H_

#include <vector>

#include "lp/lp_problem.h"

namespace lpb {

enum class LpStatus {
  kOptimal,
  kUnbounded,
  kInfeasible,
  kIterationLimit,
};

// How a result was obtained (see lp/tableau.h): a full two-phase solve
// (kCold), dual-simplex pivots from a cached optimal basis (kWarm), or a
// pure read-off of the still-optimal cached basis (kWitness).
enum class LpEvalPath { kCold, kWarm, kWitness };

// Which solver implementation runs under SolveLp / SimplexTableau.
//   kDefault — consult the LPB_LP_BACKEND environment variable ("dense" or
//              "revised"); dense when unset. This is the only value that
//              honors the env var, so tests pinning a backend stay pinned.
//   kDense   — the dense long-double tableau (lp/dense_tableau.h).
//   kRevised — the sparse revised simplex with an LU-factorized basis
//              (lp/revised_simplex.h).
enum class LpBackendKind { kDefault, kDense, kRevised };

// "dense" / "revised"; kDefault renders as "default".
const char* LpBackendName(LpBackendKind kind);

struct LpResult {
  // NOTE: the default is deliberately a *failure* status. A default-
  // constructed LpResult must never read as solved; every solver path is
  // required to set `status` explicitly and to size `x`/`duals` as
  // documented below even on failure (see tests/test_revised_simplex.cc
  // regression tests).
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  // Primal solution, size = problem.num_vars(). Meaningful when kOptimal;
  // on any other status the solver still sizes it (all zeros) so callers
  // indexing unconditionally cannot read stale or out-of-range data.
  std::vector<double> x;
  // Dual value per constraint, size = problem.num_constraints() (zeros on
  // non-optimal statuses, like `x`).
  // Sign convention: for a <= constraint of a maximization problem the dual
  // is >= 0, for >= it is <= 0; duals satisfy sum_i y_i b_i = objective.
  std::vector<double> duals;
  int iterations = 0;
  // Which evaluation path produced this result (always kCold for SolveLp).
  LpEvalPath path = LpEvalPath::kCold;
  // Which solver backend produced this result (never kDefault).
  LpBackendKind backend = LpBackendKind::kDense;
};

struct SimplexOptions {
  double eps = 1e-9;          // pivot / feasibility tolerance
  int max_iterations = 0;     // 0 = automatic (50 * (rows + cols) + 1000)
  // Optional right-hand-side perturbation (b_i += perturb * (1 + i mod 101)).
  // Degeneracy is handled by the lexicographic ratio test, so this defaults
  // to off; it remains available for experimentation.
  double perturb = 0.0;
  // Solver implementation. kDefault reads LPB_LP_BACKEND and falls back to
  // the dense tableau; set kDense/kRevised to pin a backend regardless of
  // the environment.
  LpBackendKind backend = LpBackendKind::kDefault;
};

// Solves the LP. The problem is copied into an internal tableau; `problem`
// is not modified.
LpResult SolveLp(const LpProblem& problem, const SimplexOptions& options = {});

}  // namespace lpb

#endif  // LPB_LP_SIMPLEX_H_
