// Dense two-phase primal simplex solver.
//
// Solves `maximize c'x s.t. Ax {<=,>=,=} b, x >= 0` on a dense tableau.
// Phase 1 drives artificial variables out of the basis; phase 2 optimizes
// the real objective. Pricing is Dantzig's rule; the leaving row is chosen
// by a lexicographic ratio test, which guarantees termination on the
// heavily degenerate cutting-plane LPs of the bound engine. Dual values for every constraint are recovered from the final
// objective row — the bound engines use them as the witness coefficients
// w_i of the paper's information inequality (8).
#ifndef LPB_LP_SIMPLEX_H_
#define LPB_LP_SIMPLEX_H_

#include <vector>

#include "lp/lp_problem.h"

namespace lpb {

enum class LpStatus {
  kOptimal,
  kUnbounded,
  kInfeasible,
  kIterationLimit,
};

// How a result was obtained (see lp/tableau.h): a full two-phase solve
// (kCold), dual-simplex pivots from a cached optimal basis (kWarm), or a
// pure read-off of the still-optimal cached basis (kWitness).
enum class LpEvalPath { kCold, kWarm, kWitness };

struct LpResult {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  // Primal solution, size = problem.num_vars(). Valid when kOptimal.
  std::vector<double> x;
  // Dual value per constraint, size = problem.num_constraints().
  // Sign convention: for a <= constraint of a maximization problem the dual
  // is >= 0, for >= it is <= 0; duals satisfy sum_i y_i b_i = objective.
  std::vector<double> duals;
  int iterations = 0;
  // Which evaluation path produced this result (always kCold for SolveLp).
  LpEvalPath path = LpEvalPath::kCold;
};

struct SimplexOptions {
  double eps = 1e-9;          // pivot / feasibility tolerance
  int max_iterations = 0;     // 0 = automatic (50 * (rows + cols) + 1000)
  // Optional right-hand-side perturbation (b_i += perturb * (1 + i mod 101)).
  // Degeneracy is handled by the lexicographic ratio test, so this defaults
  // to off; it remains available for experimentation.
  double perturb = 0.0;
};

// Solves the LP. The problem is copied into an internal tableau; `problem`
// is not modified.
LpResult SolveLp(const LpProblem& problem, const SimplexOptions& options = {});

}  // namespace lpb

#endif  // LPB_LP_SIMPLEX_H_
