#include "lp/sparse_matrix.h"

#include <algorithm>

namespace lpb {

int SparseMatrix::AppendColumn(std::vector<SparseEntry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const SparseEntry& a, const SparseEntry& b) {
              return a.row < b.row;
            });
  for (const SparseEntry& e : entries) {
    if (!entries_.empty() &&
        static_cast<int>(entries_.size()) > col_start_.back() &&
        entries_.back().row == e.row) {
      entries_.back().value += e.value;
      if (entries_.back().value == 0.0) entries_.pop_back();
    } else if (e.value != 0.0) {
      entries_.push_back(e);
    }
  }
  col_start_.push_back(static_cast<int>(entries_.size()));
  return cols() - 1;
}

}  // namespace lpb
