#include "lp/sparse_matrix.h"

#include <algorithm>

namespace lpb {

int SparseMatrix::AppendColumn(std::vector<SparseEntry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const SparseEntry& a, const SparseEntry& b) {
              return a.row < b.row;
            });
  for (const SparseEntry& e : entries) {
    if (!entries_.empty() &&
        static_cast<int>(entries_.size()) > col_start_.back() &&
        entries_.back().row == e.row) {
      entries_.back().value += e.value;
      if (entries_.back().value == 0.0) entries_.pop_back();
    } else if (e.value != 0.0) {
      entries_.push_back(e);
    }
  }
  col_start_.push_back(static_cast<int>(entries_.size()));
  return cols() - 1;
}

void SparseMatrix::AppendRows(
    int new_rows,
    const std::vector<std::vector<std::pair<int, double>>>& row_entries) {
  // Bucket the incoming entries by column: per_col[j] holds the (row,
  // value) additions to column j, rows already absolute. Each new row's
  // entries land in increasing row order per column automatically (k is
  // monotone), so the per-column merge below stays sorted without a sort.
  const int cols = this->cols();
  std::vector<std::vector<SparseEntry>> per_col(cols);
  for (size_t k = 0; k < row_entries.size(); ++k) {
    const int row = rows_ + static_cast<int>(k);
    for (const auto& [col, value] : row_entries[k]) {
      if (value == 0.0 || col < 0 || col >= cols) continue;
      if (!per_col[col].empty() && per_col[col].back().row == row) {
        per_col[col].back().value += value;
        if (per_col[col].back().value == 0.0) per_col[col].pop_back();
      } else {
        per_col[col].push_back({row, value});
      }
    }
  }
  rows_ += new_rows;

  size_t added = 0;
  for (const std::vector<SparseEntry>& extra : per_col) added += extra.size();
  if (added == 0) return;

  // One linear rebuild of the flat entry vector: columns keep their order,
  // every column's new entries (rows >= old rows_) append after its
  // existing ones, and col_start_ is re-based as we go.
  std::vector<SparseEntry> merged;
  merged.reserve(entries_.size() + added);
  std::vector<int> new_start(col_start_.size());
  new_start[0] = 0;
  for (int j = 0; j < cols; ++j) {
    merged.insert(merged.end(), entries_.begin() + col_start_[j],
                  entries_.begin() + col_start_[j + 1]);
    merged.insert(merged.end(), per_col[j].begin(), per_col[j].end());
    new_start[j + 1] = static_cast<int>(merged.size());
  }
  entries_ = std::move(merged);
  col_start_ = std::move(new_start);
}

}  // namespace lpb
