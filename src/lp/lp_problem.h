// Linear program model: maximize c'x subject to linear constraints, x >= 0.
//
// This is the substrate for every bound in the library (Sec 5 of the paper
// computes the polymatroid bound as the optimum of a linear program). No LP
// library is available offline, so the solver in simplex.h is built from
// scratch; this header defines the solver-independent problem description.
#ifndef LPB_LP_LP_PROBLEM_H_
#define LPB_LP_LP_PROBLEM_H_

#include <string>
#include <vector>

namespace lpb {

// One term `coef * x_var` of a linear expression.
struct LpTerm {
  int var = 0;
  double coef = 0.0;
};

enum class LpSense { kLe, kGe, kEq };

struct LpConstraint {
  std::vector<LpTerm> terms;
  LpSense sense = LpSense::kLe;
  double rhs = 0.0;
};

// A linear program in the form
//   maximize    c'x
//   subject to  <constraints>, x >= 0.
// Minimization is expressed by negating the objective at the call site.
class LpProblem {
 public:
  explicit LpProblem(int num_vars) : objective_(num_vars, 0.0) {}

  int num_vars() const { return static_cast<int>(objective_.size()); }
  int num_constraints() const { return static_cast<int>(constraints_.size()); }

  // Sets the objective coefficient of variable `var` (default 0).
  void SetObjective(int var, double coef);
  double objective_coef(int var) const { return objective_[var]; }
  const std::vector<double>& objective() const { return objective_; }

  // Adds a constraint; returns its index (used to look up duals).
  int AddConstraint(std::vector<LpTerm> terms, LpSense sense, double rhs);

  const LpConstraint& constraint(int i) const { return constraints_[i]; }
  const std::vector<LpConstraint>& constraints() const { return constraints_; }

  // Evaluates the left-hand side of constraint i at point x.
  double EvalLhs(int i, const std::vector<double>& x) const;

 private:
  std::vector<double> objective_;
  std::vector<LpConstraint> constraints_;
};

}  // namespace lpb

#endif  // LPB_LP_LP_PROBLEM_H_
