#include "lp/tableau.h"

namespace lpb {

SimplexTableau::SimplexTableau(const LpProblem& problem,
                               const SimplexOptions& options)
    : kind_(ResolveLpBackend(options)),
      num_constraints_(problem.num_constraints()) {
  SimplexOptions resolved = options;
  resolved.backend = kind_;
  impl_ = MakeLpBackend(problem, resolved);
}

LpResult SimplexTableau::Solve(const std::vector<double>& rhs) {
  LpResult result = impl_->Solve(rhs);
  result.backend = kind_;
  return result;
}

LpResult SimplexTableau::ResolveWithRhs(const std::vector<double>& rhs) {
  LpResult result = impl_->ResolveWithRhs(rhs);
  result.backend = kind_;
  return result;
}

std::vector<LpResult> SimplexTableau::ResolveWithRhsBatch(
    std::span<const std::vector<double>> rhs_batch) {
  std::vector<LpResult> results;
  ResolveWithRhsBatch(rhs_batch, results);
  return results;
}

void SimplexTableau::ResolveWithRhsBatch(
    std::span<const std::vector<double>> rhs_batch,
    std::vector<LpResult>& out) {
  impl_->ResolveWithRhsBatch(rhs_batch, out);
  for (LpResult& result : out) result.backend = kind_;
}

void SimplexTableau::ResolveWithRhsBatchRelaxed(
    std::span<const std::vector<double>> rhs_batch,
    std::vector<LpResult>& out) {
  impl_->ResolveWithRhsBatchRelaxed(rhs_batch, out);
  for (LpResult& result : out) result.backend = kind_;
}

bool SimplexTableau::AddConstraintsWarm(const std::vector<LpConstraint>& rows,
                                        const std::vector<double>& rhs,
                                        LpResult& result) {
  if (!impl_->AddConstraintsWarm(rows, rhs, result)) return false;
  num_constraints_ += static_cast<int>(rows.size());
  result.backend = kind_;
  return true;
}

}  // namespace lpb
