#include "lp/tableau.h"

namespace lpb {

SimplexTableau::SimplexTableau(const LpProblem& problem,
                               const SimplexOptions& options)
    : kind_(ResolveLpBackend(options)),
      num_constraints_(problem.num_constraints()) {
  SimplexOptions resolved = options;
  resolved.backend = kind_;
  impl_ = MakeLpBackend(problem, resolved);
}

LpResult SimplexTableau::Solve(const std::vector<double>& rhs) {
  LpResult result = impl_->Solve(rhs);
  result.backend = kind_;
  return result;
}

LpResult SimplexTableau::ResolveWithRhs(const std::vector<double>& rhs) {
  LpResult result = impl_->ResolveWithRhs(rhs);
  result.backend = kind_;
  return result;
}

std::vector<LpResult> SimplexTableau::ResolveWithRhsBatch(
    std::span<const std::vector<double>> rhs_batch) {
  std::vector<LpResult> results = impl_->ResolveWithRhsBatch(rhs_batch);
  for (LpResult& result : results) result.backend = kind_;
  return results;
}

}  // namespace lpb
