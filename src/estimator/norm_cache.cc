#include "estimator/norm_cache.h"

#include <algorithm>
#include <functional>
#include <utility>

namespace lpb {
namespace {

// Approximate heap footprint of one cached entry: the key is stored twice
// (map node + LRU list node), plus the norms vector and node overheads.
size_t EntryBytes(const ShardedNormCache::Key& key,
                  const std::vector<double>& norms) {
  const size_t key_bytes = std::get<0>(key).size() +
                           std::get<1>(key).size() * sizeof(int) +
                           std::get<2>(key).size() * sizeof(int) +
                           sizeof(ShardedNormCache::Key);
  return 2 * key_bytes + norms.size() * sizeof(double) + 128;
}

}  // namespace

ShardedNormCache::ShardedNormCache(NormCacheOptions options)
    : options_(options) {
  const int shards = std::max(1, options_.shards);
  shards_.reserve(shards);
  for (int s = 0; s < shards; ++s) shards_.push_back(std::make_unique<Shard>());
  if (options_.byte_budget > 0) {
    per_shard_budget_ = std::max<size_t>(1, options_.byte_budget / shards);
  }
}

size_t ShardedNormCache::ShardIndexOf(const std::string& relation) const {
  return std::hash<std::string>{}(relation) % shards_.size();
}

ShardedNormCache::Shard& ShardedNormCache::ShardOf(
    const std::string& relation) {
  return *shards_[ShardIndexOf(relation)];
}

const ShardedNormCache::Shard& ShardedNormCache::ShardOf(
    const std::string& relation) const {
  return *shards_[ShardIndexOf(relation)];
}

ShardedNormCache::Lookup ShardedNormCache::GetLocked(Shard& shard,
                                                     const Key& key) {
  Lookup out;
  auto gen_it = shard.relation_generation.find(std::get<0>(key));
  out.generation =
      gen_it == shard.relation_generation.end() ? 0 : gen_it->second;
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.misses;
    return out;
  }
  // Refresh recency: splice the entry's node to the back of the LRU list.
  shard.lru.splice(shard.lru.end(), shard.lru, it->second.lru_it);
  ++shard.hits;
  out.found = true;
  out.norms = it->second.norms;
  return out;
}

ShardedNormCache::Lookup ShardedNormCache::Get(const Key& key) {
  Shard& shard = ShardOf(std::get<0>(key));
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.lock_acquisitions;
  return GetLocked(shard, key);
}

void ShardedNormCache::PutLocked(Shard& shard, const Key& key,
                                 std::vector<double> norms,
                                 uint64_t generation) {
  auto gen_it = shard.relation_generation.find(std::get<0>(key));
  const uint64_t current =
      gen_it == shard.relation_generation.end() ? 0 : gen_it->second;
  if (current != generation) return;  // this relation was invalidated
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    // A racing thread computed the same entry; identical values, so just
    // refresh recency.
    shard.lru.splice(shard.lru.end(), shard.lru, it->second.lru_it);
    return;
  }
  Entry entry;
  entry.bytes = EntryBytes(key, norms);
  entry.norms = std::move(norms);
  entry.lru_it = shard.lru.insert(shard.lru.end(), key);
  shard.bytes += entry.bytes;
  shard.map.emplace(key, std::move(entry));
  if (per_shard_budget_ == 0) return;
  while (shard.bytes > per_shard_budget_ && shard.map.size() > 1) {
    // Evict from the LRU front; never evict the entry just inserted (the
    // size() > 1 guard), so an oversized single entry still serves.
    auto victim = shard.map.find(shard.lru.front());
    shard.bytes -= victim->second.bytes;
    shard.lru.pop_front();
    shard.map.erase(victim);
    ++shard.evictions;
  }
}

void ShardedNormCache::Put(const Key& key, std::vector<double> norms,
                           uint64_t generation) {
  Shard& shard = ShardOf(std::get<0>(key));
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.lock_acquisitions;
  PutLocked(shard, key, std::move(norms), generation);
}

std::vector<ShardedNormCache::Lookup> ShardedNormCache::GetBatch(
    std::span<const Key> keys) {
  std::vector<Lookup> out(keys.size());
  // Bucket key indices by shard, then visit each touched shard once. The
  // shard count is small and fixed, so the bucket vector is cheap; shards
  // are locked one at a time in index order (never nested), so batches
  // racing each other or scalar calls cannot deadlock.
  std::vector<std::vector<size_t>> by_shard(shards_.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    by_shard[ShardIndexOf(std::get<0>(keys[i]))].push_back(i);
  }
  for (size_t s = 0; s < by_shard.size(); ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.lock_acquisitions;
    for (size_t i : by_shard[s]) out[i] = GetLocked(shard, keys[i]);
  }
  return out;
}

void ShardedNormCache::PutBatch(std::vector<PutItem> items) {
  std::vector<std::vector<size_t>> by_shard(shards_.size());
  for (size_t i = 0; i < items.size(); ++i) {
    by_shard[ShardIndexOf(std::get<0>(items[i].key))].push_back(i);
  }
  for (size_t s = 0; s < by_shard.size(); ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.lock_acquisitions;
    for (size_t i : by_shard[s]) {
      PutLocked(shard, items[i].key, std::move(items[i].norms),
                items[i].generation);
    }
  }
}

void ShardedNormCache::InvalidateRelation(const std::string& relation) {
  Shard& shard = ShardOf(relation);
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.lock_acquisitions;
  // In-flight computations for this relation must not re-insert; other
  // relations in the shard are unaffected.
  ++shard.relation_generation[relation];
  for (auto it = shard.map.begin(); it != shard.map.end();) {
    if (std::get<0>(it->first) == relation) {
      shard.bytes -= it->second.bytes;
      shard.lru.erase(it->second.lru_it);
      it = shard.map.erase(it);
    } else {
      ++it;
    }
  }
}

size_t ShardedNormCache::Size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

size_t ShardedNormCache::Bytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->bytes;
  }
  return total;
}

uint64_t ShardedNormCache::Evictions() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->evictions;
  }
  return total;
}

uint64_t ShardedNormCache::Hits() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->hits;
  }
  return total;
}

uint64_t ShardedNormCache::Misses() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->misses;
  }
  return total;
}

uint64_t ShardedNormCache::LockAcquisitions() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lock_acquisitions;
  }
  return total;
}

}  // namespace lpb
