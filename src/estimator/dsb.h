// The Degree Sequence Bound (DSB) of Deeds et al. [6] for a single join
// Q(X,Y,Z) = R(X,Y) ∧ S(Y,Z), Eq. (49):
//   DSB = Σ_i a_i · b_i
// where a, b are the degree sequences deg_R(X|Y) and deg_S(Z|Y) sorted in
// non-increasing order. Tight for Berge-acyclic queries; Appendix C.3
// contrasts it with the ℓp polymatroid bound (which can be a factor
// Θ(M^{1/9}) larger on the (0,1/3)/(0,2/3) instance, reproduced in
// bench_dsb_gap).
#ifndef LPB_ESTIMATOR_DSB_H_
#define LPB_ESTIMATOR_DSB_H_

#include <cstdint>

#include "relation/degree_sequence.h"

namespace lpb {

// Σ_i a_i b_i over the common prefix of the two sorted sequences.
uint64_t SingleJoinDsb(const DegreeSequence& a, const DegreeSequence& b);

// log2 of the DSB (0-size joins map to -infinity).
double SingleJoinDsbLog2(const DegreeSequence& a, const DegreeSequence& b);

}  // namespace lpb

#endif  // LPB_ESTIMATOR_DSB_H_
