#include "estimator/comparison.h"

#include <cmath>
#include <cstdio>

#include "bounds/agm.h"
#include "bounds/normal_engine.h"
#include "estimator/dsb.h"
#include "estimator/traditional.h"
#include "exec/generic_join.h"
#include "exec/yannakakis.h"
#include "stats/collector.h"

namespace lpb {
namespace {

// The single join variable of a two-atom query, or -1.
int SingleJoinVar(const Query& query) {
  if (query.num_atoms() != 2) return -1;
  const VarSet shared =
      query.atom(0).var_set() & query.atom(1).var_set();
  if (SetSize(shared) != 1) return -1;
  return LowestVar(shared);
}

int ColumnOfVar(const Atom& atom, int v) {
  for (size_t j = 0; j < atom.vars.size(); ++j) {
    if (atom.vars[j] == v) return static_cast<int>(j);
  }
  return -1;
}

}  // namespace

std::vector<EstimateReport> CompareEstimators(const Query& query,
                                              const Catalog& catalog,
                                              const ComparisonOptions& options) {
  std::vector<EstimateReport> out;

  if (options.include_truth) {
    std::optional<uint64_t> fast = CountAcyclic(query, catalog);
    const uint64_t truth = fast.has_value() ? *fast : CountJoin(query, catalog);
    out.push_back({"true", truth == 0
                               ? -std::numeric_limits<double>::infinity()
                               : std::log2(static_cast<double>(truth)),
                   false});
  }

  CollectorOptions copt;
  copt.norms = options.norms;
  auto stats = CollectStatistics(query, catalog, copt);
  const int n = query.num_vars();

  out.push_back(
      {"AGM {1}", AgmBound(query, catalog).log2_bound, true});
  out.push_back({"PANDA {1,inf}",
                 LpNormBound(n, FilterPandaStatistics(stats)).log2_bound,
                 true});
  out.push_back({"lp-norm bound", LpNormBound(n, stats).log2_bound, true});
  out.push_back(
      {"traditional", TraditionalEstimateLog2(query, catalog), false});

  const int jv = SingleJoinVar(query);
  if (jv >= 0) {
    const Atom& a0 = query.atom(0);
    const Atom& a1 = query.atom(1);
    const Relation& r0 = catalog.Get(a0.relation);
    const Relation& r1 = catalog.Get(a1.relation);
    auto other_cols = [](const Atom& atom, int key_col) {
      std::vector<int> cols;
      for (size_t j = 0; j < atom.vars.size(); ++j) {
        if (static_cast<int>(j) != key_col) cols.push_back(static_cast<int>(j));
      }
      return cols;
    };
    const int c0 = ColumnOfVar(a0, jv), c1 = ColumnOfVar(a1, jv);
    DegreeSequence d0 = ComputeDegreeSequence(r0, {c0}, other_cols(a0, c0));
    DegreeSequence d1 = ComputeDegreeSequence(r1, {c1}, other_cols(a1, c1));
    out.push_back({"DSB", SingleJoinDsbLog2(d0, d1), true});
  }
  return out;
}

std::string FormatComparison(const std::vector<EstimateReport>& reports) {
  std::string out;
  char buf[128];
  double truth = std::nan("");
  for (const auto& r : reports) {
    if (r.name == "true") truth = r.log2_value;
  }
  for (const auto& r : reports) {
    if (std::isnan(truth) || r.name == "true") {
      std::snprintf(buf, sizeof(buf), "%-16s 2^%-8.2f %s\n", r.name.c_str(),
                    r.log2_value, r.is_upper_bound ? "(bound)" : "");
    } else {
      std::snprintf(buf, sizeof(buf), "%-16s 2^%-8.2f %8.2fx truth %s\n",
                    r.name.c_str(), r.log2_value,
                    std::exp2(r.log2_value - truth),
                    r.is_upper_bound ? "(bound)" : "");
    }
    out += buf;
  }
  return out;
}

}  // namespace lpb
