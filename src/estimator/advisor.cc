#include "estimator/advisor.h"

#include <cassert>
#include <cmath>

#include "bounds/normal_engine.h"

namespace lpb {
namespace {

int ColumnOfVar(const Atom& atom, int v) {
  for (size_t j = 0; j < atom.vars.size(); ++j) {
    if (atom.vars[j] == v) return static_cast<int>(j);
  }
  return -1;
}

std::vector<int> ColumnsOf(const Atom& atom, VarSet s) {
  std::vector<int> cols;
  for (int v : VarRange(s)) cols.push_back(ColumnOfVar(atom, v));
  return cols;
}

}  // namespace

CardinalityAdvisor::CardinalityAdvisor(const Catalog& catalog,
                                       AdvisorOptions options)
    : catalog_(catalog), options_(std::move(options)) {}

const std::vector<double>& CardinalityAdvisor::CachedNorms(
    const std::string& relation, const std::vector<int>& u_cols,
    const std::vector<int>& v_cols) {
  Key key{relation, u_cols, v_cols};
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    const DegreeSequence deg =
        ComputeDegreeSequence(catalog_.Get(relation), u_cols, v_cols);
    std::vector<double> norms;
    norms.reserve(options_.norms.size());
    for (double p : options_.norms) norms.push_back(deg.Log2NormP(p));
    it = cache_.emplace(std::move(key), std::move(norms)).first;
  }
  return it->second;
}

std::vector<ConcreteStatistic> CardinalityAdvisor::AssembleStatistics(
    const Query& query) {
  std::vector<ConcreteStatistic> stats;
  for (int a = 0; a < query.num_atoms(); ++a) {
    const Atom& atom = query.atom(a);
    const VarSet atom_vars = atom.var_set();

    // Cardinality assertion (ℓ1 over (vars | ∅)).
    {
      const std::vector<int> v_cols = ColumnsOf(atom, atom_vars);
      // ℓ1 of deg(V|∅) = |Π_V(R)|; reuse the cache with p = 1 position if
      // present, otherwise compute through the same path with norms[0].
      const std::vector<double>& norms =
          CachedNorms(atom.relation, {}, v_cols);
      for (size_t k = 0; k < options_.norms.size(); ++k) {
        if (options_.norms[k] == 1.0) {
          ConcreteStatistic s;
          s.sigma = {0, atom_vars};
          s.p = 1.0;
          s.log_b = norms[k];
          s.guard_atom = a;
          stats.push_back(s);
          break;
        }
      }
    }

    // Simple per-variable conditionals.
    for (int v : VarRange(atom_vars)) {
      const VarSet u = VarBit(v);
      const VarSet rest = atom_vars & ~u;
      if (rest == 0) continue;
      const std::vector<double>& norms = CachedNorms(
          atom.relation, ColumnsOf(atom, u), ColumnsOf(atom, rest));
      for (size_t k = 0; k < options_.norms.size(); ++k) {
        ConcreteStatistic s;
        s.sigma = {u, rest};
        s.p = options_.norms[k];
        s.log_b = norms[k];
        s.guard_atom = a;
        stats.push_back(s);
      }
    }
  }
  return stats;
}

double CardinalityAdvisor::EstimateLog2(const Query& query) {
  auto stats = AssembleStatistics(query);
  return LpNormBound(query.num_vars(), stats, options_.engine).log2_bound;
}

double CardinalityAdvisor::Estimate(const Query& query) {
  return std::exp2(EstimateLog2(query));
}

CardinalityAdvisor::Explanation CardinalityAdvisor::Explain(
    const Query& query) {
  Explanation out;
  out.stats = AssembleStatistics(query);
  for (ConcreteStatistic& s : out.stats) s.label = ToString(s, query);
  out.bound = LpNormBound(query.num_vars(), out.stats, options_.engine);
  return out;
}

void CardinalityAdvisor::Invalidate(const std::string& relation) {
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (std::get<0>(it->first) == relation) {
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace lpb
