#include "estimator/advisor.h"

#include <cassert>
#include <cmath>
#include <utility>

#include "bounds/normal_engine.h"

namespace lpb {
namespace {

int ColumnOfVar(const Atom& atom, int v) {
  for (size_t j = 0; j < atom.vars.size(); ++j) {
    if (atom.vars[j] == v) return static_cast<int>(j);
  }
  return -1;
}

std::vector<int> ColumnsOf(const Atom& atom, VarSet s) {
  std::vector<int> cols;
  for (int v : VarRange(s)) cols.push_back(ColumnOfVar(atom, v));
  return cols;
}

// One degree-sequence lookup a query's statistics assembly needs: the
// norm-store key plus how its cached norms materialize into statistics
// (every maintained norm for a conditional, only the ℓ1 entry for a
// cardinality assertion). The scalar and batched assembly paths share
// this enumeration, which is what makes their outputs bitwise identical.
struct StatRequest {
  ShardedNormCache::Key key;
  Conditional sigma;
  bool cardinality = false;  // emit only the p == 1 norm (ℓ1 of deg(V|∅))
  int guard_atom = -1;
};

std::vector<StatRequest> EnumerateStatRequests(const Query& query) {
  std::vector<StatRequest> requests;
  for (int a = 0; a < query.num_atoms(); ++a) {
    const Atom& atom = query.atom(a);
    const VarSet atom_vars = atom.var_set();

    // Cardinality assertion (ℓ1 over (vars | ∅)).
    {
      StatRequest r;
      r.key = {atom.relation, {}, ColumnsOf(atom, atom_vars)};
      r.sigma = {0, atom_vars};
      r.cardinality = true;
      r.guard_atom = a;
      requests.push_back(std::move(r));
    }

    // Simple per-variable conditionals.
    for (int v : VarRange(atom_vars)) {
      const VarSet u = VarBit(v);
      const VarSet rest = atom_vars & ~u;
      if (rest == 0) continue;
      StatRequest r;
      r.key = {atom.relation, ColumnsOf(atom, u), ColumnsOf(atom, rest)};
      r.sigma = {u, rest};
      r.guard_atom = a;
      requests.push_back(std::move(r));
    }
  }
  return requests;
}

// Materializes one request's statistics from its cached norm vector
// (aligned with `norm_ps`, the advisor's maintained norm indices).
void AppendStats(const StatRequest& request,
                 const std::vector<double>& log_norms,
                 const std::vector<double>& norm_ps,
                 std::vector<ConcreteStatistic>& stats) {
  for (size_t k = 0; k < norm_ps.size(); ++k) {
    if (request.cardinality && norm_ps[k] != 1.0) continue;
    ConcreteStatistic s;
    s.sigma = request.sigma;
    s.p = norm_ps[k];
    s.log_b = log_norms[k];
    s.guard_atom = request.guard_atom;
    stats.push_back(s);
    if (request.cardinality) break;
  }
}

}  // namespace

CardinalityAdvisor::CardinalityAdvisor(const Catalog& catalog,
                                       AdvisorOptions options)
    : catalog_(catalog),
      options_(std::move(options)),
      norms_(options_.norm_cache),
      compiled_(std::make_shared<const CompiledMap>()) {}

std::vector<double> CardinalityAdvisor::CachedNorms(
    const std::string& relation, const std::vector<int>& u_cols,
    const std::vector<int>& v_cols) {
  ShardedNormCache::Key key{relation, u_cols, v_cols};
  ShardedNormCache::Lookup lookup = norms_.Get(key);
  if (lookup.found) return std::move(lookup.norms);
  // Compute outside the shard lock: degree-sequence extraction is
  // O(N log N) and must not serialize concurrent estimators. A racing
  // thread may compute the same entry; both arrive at identical values, so
  // last-write-wins is harmless. Put refuses the insert if an Invalidate
  // ran meanwhile (the norms may reflect pre-update data — serve them for
  // this call but do not cache).
  const DegreeSequence deg =
      ComputeDegreeSequence(catalog_.Get(relation), u_cols, v_cols);
  std::vector<double> norms;
  norms.reserve(options_.norms.size());
  for (double p : options_.norms) norms.push_back(deg.Log2NormP(p));
  norms_.Put(key, norms, lookup.generation);
  return norms;
}

std::vector<ConcreteStatistic> CardinalityAdvisor::AssembleStatistics(
    const Query& query) {
  std::vector<ConcreteStatistic> stats;
  for (const StatRequest& request : EnumerateStatRequests(query)) {
    const std::vector<double> norms =
        CachedNorms(std::get<0>(request.key), std::get<1>(request.key),
                    std::get<2>(request.key));
    AppendStats(request, norms, options_.norms, stats);
  }
  return stats;
}

std::vector<std::vector<ConcreteStatistic>>
CardinalityAdvisor::AssembleStatisticsBatch(std::span<const Query> queries) {
  // Enumerate every query's degree-sequence lookups and dedup the keys
  // across the batch (first-appearance order): under admission batching
  // the batch mixes a few hot templates, so most requests resolve to a
  // slot another query already claimed.
  std::vector<std::vector<StatRequest>> requests(queries.size());
  std::vector<ShardedNormCache::Key> distinct;
  std::map<ShardedNormCache::Key, size_t> slot_of;
  std::vector<std::vector<size_t>> slots(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    requests[i] = EnumerateStatRequests(queries[i]);
    slots[i].reserve(requests[i].size());
    for (const StatRequest& r : requests[i]) {
      auto [it, inserted] = slot_of.emplace(r.key, distinct.size());
      if (inserted) distinct.push_back(r.key);
      slots[i].push_back(it->second);
    }
  }

  // One GetBatch over the distinct keys: each touched store shard's mutex
  // is taken once for the whole batch (norm_cache.h). Misses are computed
  // outside any lock — same O(N log N) extraction and the same Log2NormP
  // sequence as the scalar path — and re-inserted through one PutBatch,
  // each under the generation its GetBatch observed (a concurrent
  // Invalidate refuses the stale insert but this batch still serves its
  // computed values, exactly like the scalar path).
  std::vector<ShardedNormCache::Lookup> lookups = norms_.GetBatch(distinct);
  std::vector<ShardedNormCache::PutItem> puts;
  for (size_t s = 0; s < distinct.size(); ++s) {
    if (lookups[s].found) continue;
    const ShardedNormCache::Key& key = distinct[s];
    const DegreeSequence deg = ComputeDegreeSequence(
        catalog_.Get(std::get<0>(key)), std::get<1>(key), std::get<2>(key));
    std::vector<double>& norms = lookups[s].norms;
    norms.reserve(options_.norms.size());
    for (double p : options_.norms) norms.push_back(deg.Log2NormP(p));
    puts.push_back({key, norms, lookups[s].generation});
  }
  if (!puts.empty()) norms_.PutBatch(std::move(puts));

  std::vector<std::vector<ConcreteStatistic>> out(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    for (size_t j = 0; j < requests[i].size(); ++j) {
      AppendStats(requests[i][j], lookups[slots[i][j]].norms, options_.norms,
                  out[i]);
    }
  }
  return out;
}

std::shared_ptr<CardinalityAdvisor::CompiledEntry>
CardinalityAdvisor::LookupOrCompile(const BoundStructure& structure,
                                    const std::string& key) {
  // Hot path: one atomic load of the immutable snapshot — no lock, so a
  // writer burst (a batch of fresh templates compiling) never serializes
  // concurrent readers of already-compiled structures.
  {
    std::shared_ptr<const CompiledMap> snapshot =
        compiled_.load(std::memory_order_acquire);
    auto it = snapshot->find(key);
    if (it != snapshot->end()) {
      compiled_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Compile outside the writer lock — Γn compilation materializes the
  // elemental lattice. If another thread compiled the same structure
  // meanwhile, its entry wins and ours is dropped.
  const BoundEngine* engine = FindBoundEngine(options_.bound_engine);
  if (engine == nullptr) engine = FindBoundEngine("auto");
  auto fresh = std::make_shared<CompiledEntry>();
  fresh->bound = engine->Compile(structure, options_.engine);
  std::lock_guard<std::mutex> lock(compiled_writer_mu_);
  std::shared_ptr<const CompiledMap> current =
      compiled_.load(std::memory_order_acquire);
  auto it = current->find(key);
  if (it != current->end()) {
    compiled_hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  // Copy-on-write publish: readers keep whatever snapshot they hold; the
  // next lookup sees the new map.
  auto next = std::make_shared<CompiledMap>(*current);
  auto [pos, inserted] = next->emplace(key, std::move(fresh));
  compiled_.store(std::shared_ptr<const CompiledMap>(std::move(next)),
                  std::memory_order_release);
  compiled_misses_.fetch_add(1, std::memory_order_relaxed);
  (void)inserted;
  return pos->second;
}

void CardinalityAdvisor::RecordEval(const BoundResult& result) {
  switch (result.eval_path) {
    case LpEvalPath::kWitness:
      witness_hits_.fetch_add(1, std::memory_order_relaxed);
      break;
    case LpEvalPath::kWarm:
      warm_resolves_.fetch_add(1, std::memory_order_relaxed);
      break;
    case LpEvalPath::kCold:
      cold_solves_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  const LpSolveStats& stats = result.lp_stats;
  if (stats.TotalPivots() > 0) {
    lp_pivots_.fetch_add(static_cast<uint64_t>(stats.TotalPivots()),
                         std::memory_order_relaxed);
  }
  if (stats.refactorizations > 0) {
    lp_refactorizations_.fetch_add(
        static_cast<uint64_t>(stats.refactorizations),
        std::memory_order_relaxed);
  }
  if (stats.ft_updates > 0) {
    lp_ft_updates_.fetch_add(static_cast<uint64_t>(stats.ft_updates),
                             std::memory_order_relaxed);
  }
  if (stats.eta_updates > 0) {
    lp_eta_updates_.fetch_add(static_cast<uint64_t>(stats.eta_updates),
                              std::memory_order_relaxed);
  }
  if (stats.devex_resets > 0) {
    lp_devex_resets_.fetch_add(static_cast<uint64_t>(stats.devex_resets),
                               std::memory_order_relaxed);
  }
  if (stats.warm_cut_rounds > 0) {
    lp_warm_cut_rounds_.fetch_add(static_cast<uint64_t>(stats.warm_cut_rounds),
                                  std::memory_order_relaxed);
  }
  if (stats.dual_repair_pivots > 0) {
    lp_dual_repair_pivots_.fetch_add(
        static_cast<uint64_t>(stats.dual_repair_pivots),
        std::memory_order_relaxed);
  }
  if (stats.row_appends > 0) {
    lp_row_appends_.fetch_add(static_cast<uint64_t>(stats.row_appends),
                              std::memory_order_relaxed);
  }
  if (stats.append_refactorizations > 0) {
    lp_append_refactorizations_.fetch_add(
        static_cast<uint64_t>(stats.append_refactorizations),
        std::memory_order_relaxed);
  }
}

BoundResult CardinalityAdvisor::EvaluateCompiled(
    int n, const std::vector<ConcreteStatistic>& stats, bool want_h_opt) {
  const BoundStructure structure = StructureOf(n, stats);
  std::shared_ptr<CompiledEntry> entry =
      LookupOrCompile(structure, StructureKey(structure));

  BoundResult result;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    result = entry->bound->Evaluate(ValuesOf(stats), want_h_opt);
  }
  estimates_.fetch_add(1, std::memory_order_relaxed);
  RecordEval(result);
  return result;
}

double CardinalityAdvisor::EstimateLog2(const Query& query) {
  // The empty conjunction has exactly one (empty) answer tuple: log2 1 = 0.
  // Guarded here because no bound engine accepts a 0-variable structure.
  if (query.num_atoms() == 0) {
    estimates_.fetch_add(1, std::memory_order_relaxed);
    return 0.0;
  }
  auto stats = AssembleStatistics(query);
  return EvaluateCompiled(query.num_vars(), stats, /*want_h_opt=*/false)
      .log2_bound;
}

double CardinalityAdvisor::Estimate(const Query& query) {
  return std::exp2(EstimateLog2(query));
}

std::vector<double> CardinalityAdvisor::EstimateLog2Batch(
    const Query& query, std::span<const std::vector<double>> log_b_batch) {
  batch_calls_.fetch_add(1, std::memory_order_relaxed);
  batch_probes_.fetch_add(log_b_batch.size(), std::memory_order_relaxed);
  if (query.num_atoms() == 0) {
    // Empty conjunction: one empty answer tuple regardless of statistics.
    // Only the empty value vector matches the (empty) statistics set.
    std::vector<double> out(log_b_batch.size(), kInfNorm);
    for (size_t c = 0; c < log_b_batch.size(); ++c) {
      if (log_b_batch[c].empty()) out[c] = 0.0;
    }
    estimates_.fetch_add(log_b_batch.size(), std::memory_order_relaxed);
    return out;
  }
  const auto stats = AssembleStatistics(query);
  const BoundStructure structure = StructureOf(query.num_vars(), stats);

  // Callers hand-construct these vectors, so enforce the alignment
  // contract here rather than in a debug-only assert downstream: a
  // mis-sized vector cannot be priced against this structure and gets the
  // "cannot bound" answer (+inf), while the well-sized rest still rides
  // the batch path.
  std::vector<double> out(log_b_batch.size(), kInfNorm);
  std::vector<size_t> valid;
  valid.reserve(log_b_batch.size());
  for (size_t c = 0; c < log_b_batch.size(); ++c) {
    if (log_b_batch[c].size() == stats.size()) valid.push_back(c);
  }
  if (valid.empty()) return out;
  std::vector<std::vector<double>> valid_values;
  if (valid.size() != log_b_batch.size()) {
    valid_values.reserve(valid.size());
    for (size_t c : valid) valid_values.push_back(log_b_batch[c]);
  }

  std::shared_ptr<CompiledEntry> entry =
      LookupOrCompile(structure, StructureKey(structure));
  std::vector<BoundResult> results;
  {
    // One lock for the whole block: the batch is one evaluation sequence
    // on the shared compiled bound (see CompiledEntry). The common
    // all-valid case passes the caller's block through without copying.
    std::lock_guard<std::mutex> lock(entry->mu);
    results = valid.size() == log_b_batch.size()
                  ? entry->bound->EvaluateBatch(log_b_batch,
                                                /*want_h_opt=*/false)
                  : entry->bound->EvaluateBatch(valid_values,
                                                /*want_h_opt=*/false);
  }
  estimates_.fetch_add(results.size(), std::memory_order_relaxed);
  for (size_t k = 0; k < results.size(); ++k) {
    RecordEval(results[k]);
    out[valid[k]] = results[k].log2_bound;
  }
  return out;
}

std::vector<double> CardinalityAdvisor::EstimateLog2Batch(
    const std::vector<Query>& queries) {
  batch_calls_.fetch_add(1, std::memory_order_relaxed);
  batch_probes_.fetch_add(queries.size(), std::memory_order_relaxed);
  // Batched front half: all queries' statistics assembled through one
  // norm-store GetBatch/PutBatch round (keys deduped across the batch).
  const std::vector<std::vector<ConcreteStatistic>> all_stats =
      AssembleStatisticsBatch(queries);
  // Group queries by compiled structure (first-appearance order) so every
  // group pays one structure lookup and one per-bound lock, and its value
  // vectors ride the batch path together.
  struct Group {
    BoundStructure structure;
    std::string key;
    std::vector<size_t> indices;
    std::vector<std::vector<double>> values;
  };
  std::vector<Group> groups;
  std::map<std::string, size_t> group_of;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (queries[i].num_atoms() == 0) {
      // Empty conjunction: log2 1 = 0, no structure to compile.
      estimates_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const std::vector<ConcreteStatistic>& stats = all_stats[i];
    BoundStructure structure = StructureOf(queries[i].num_vars(), stats);
    std::string key = StructureKey(structure);
    auto [it, inserted] = group_of.emplace(key, groups.size());
    if (inserted) {
      groups.push_back(Group{std::move(structure), std::move(key), {}, {}});
    }
    Group& group = groups[it->second];
    group.indices.push_back(i);
    group.values.push_back(ValuesOf(stats));
  }

  std::vector<double> out(queries.size(), 0.0);
  for (const Group& group : groups) {
    std::shared_ptr<CompiledEntry> entry =
        LookupOrCompile(group.structure, group.key);
    std::vector<BoundResult> results;
    {
      std::lock_guard<std::mutex> lock(entry->mu);
      results = entry->bound->EvaluateBatch(group.values,
                                            /*want_h_opt=*/false);
    }
    estimates_.fetch_add(results.size(), std::memory_order_relaxed);
    for (size_t k = 0; k < results.size(); ++k) {
      RecordEval(results[k]);
      out[group.indices[k]] = results[k].log2_bound;
    }
  }
  return out;
}

std::vector<double> CardinalityAdvisor::EstimateBatch(
    const std::vector<Query>& queries) {
  std::vector<double> out = EstimateLog2Batch(queries);
  for (double& v : out) v = std::exp2(v);
  return out;
}

CardinalityAdvisor::Explanation CardinalityAdvisor::Explain(
    const Query& query) {
  Explanation out;
  out.stats = AssembleStatistics(query);
  for (ConcreteStatistic& s : out.stats) s.label = ToString(s, query);
  out.bound =
      EvaluateCompiled(query.num_vars(), out.stats, /*want_h_opt=*/true);
  out.metrics = metrics();
  out.lp_backend = LpBackendName(out.bound.lp_backend);
  return out;
}

size_t CardinalityAdvisor::CacheSize() const { return norms_.Size(); }

size_t CardinalityAdvisor::CacheBytes() const { return norms_.Bytes(); }

size_t CardinalityAdvisor::CompiledCacheSize() const {
  return compiled_.load(std::memory_order_acquire)->size();
}

AdvisorMetrics CardinalityAdvisor::metrics() const {
  AdvisorMetrics m;
  m.estimates = estimates_.load(std::memory_order_relaxed);
  m.batch_calls = batch_calls_.load(std::memory_order_relaxed);
  m.batch_probes = batch_probes_.load(std::memory_order_relaxed);
  m.compiled_hits = compiled_hits_.load(std::memory_order_relaxed);
  m.compiled_misses = compiled_misses_.load(std::memory_order_relaxed);
  m.witness_hits = witness_hits_.load(std::memory_order_relaxed);
  m.warm_resolves = warm_resolves_.load(std::memory_order_relaxed);
  m.cold_solves = cold_solves_.load(std::memory_order_relaxed);
  m.norm_evictions = norms_.Evictions();
  m.norm_hits = norms_.Hits();
  m.norm_misses = norms_.Misses();
  m.norm_shard_locks = norms_.LockAcquisitions();
  m.lp_pivots = lp_pivots_.load(std::memory_order_relaxed);
  m.lp_refactorizations =
      lp_refactorizations_.load(std::memory_order_relaxed);
  m.lp_ft_updates = lp_ft_updates_.load(std::memory_order_relaxed);
  m.lp_eta_updates = lp_eta_updates_.load(std::memory_order_relaxed);
  m.lp_devex_resets = lp_devex_resets_.load(std::memory_order_relaxed);
  m.lp_warm_cut_rounds = lp_warm_cut_rounds_.load(std::memory_order_relaxed);
  m.lp_dual_repair_pivots =
      lp_dual_repair_pivots_.load(std::memory_order_relaxed);
  m.lp_row_appends = lp_row_appends_.load(std::memory_order_relaxed);
  m.lp_append_refactorizations =
      lp_append_refactorizations_.load(std::memory_order_relaxed);
  return m;
}

void CardinalityAdvisor::Invalidate(const std::string& relation) {
  norms_.InvalidateRelation(relation);
}

}  // namespace lpb
