#include "estimator/advisor.h"

#include <cassert>
#include <cmath>
#include <utility>

#include "bounds/normal_engine.h"

namespace lpb {
namespace {

int ColumnOfVar(const Atom& atom, int v) {
  for (size_t j = 0; j < atom.vars.size(); ++j) {
    if (atom.vars[j] == v) return static_cast<int>(j);
  }
  return -1;
}

std::vector<int> ColumnsOf(const Atom& atom, VarSet s) {
  std::vector<int> cols;
  for (int v : VarRange(s)) cols.push_back(ColumnOfVar(atom, v));
  return cols;
}

}  // namespace

CardinalityAdvisor::CardinalityAdvisor(const Catalog& catalog,
                                       AdvisorOptions options)
    : catalog_(catalog), options_(std::move(options)) {}

std::vector<double> CardinalityAdvisor::CachedNorms(
    const std::string& relation, const std::vector<int>& u_cols,
    const std::vector<int>& v_cols) {
  Key key{relation, u_cols, v_cols};
  uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(norms_mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    generation = norms_generation_;
  }
  // Compute outside the lock: degree-sequence extraction is O(N log N) and
  // must not serialize concurrent estimators. A racing thread may compute
  // the same entry; both arrive at identical values, so last-write-wins is
  // harmless.
  const DegreeSequence deg =
      ComputeDegreeSequence(catalog_.Get(relation), u_cols, v_cols);
  std::vector<double> norms;
  norms.reserve(options_.norms.size());
  for (double p : options_.norms) norms.push_back(deg.Log2NormP(p));
  std::lock_guard<std::mutex> lock(norms_mu_);
  if (generation != norms_generation_) {
    // An Invalidate ran while we computed: these norms may reflect
    // pre-update data. Serve them for this call but do not cache.
    return norms;
  }
  return cache_.emplace(std::move(key), std::move(norms)).first->second;
}

std::vector<ConcreteStatistic> CardinalityAdvisor::AssembleStatistics(
    const Query& query) {
  std::vector<ConcreteStatistic> stats;
  for (int a = 0; a < query.num_atoms(); ++a) {
    const Atom& atom = query.atom(a);
    const VarSet atom_vars = atom.var_set();

    // Cardinality assertion (ℓ1 over (vars | ∅)).
    {
      const std::vector<int> v_cols = ColumnsOf(atom, atom_vars);
      // ℓ1 of deg(V|∅) = |Π_V(R)|; reuse the cache with p = 1 position if
      // present, otherwise compute through the same path with norms[0].
      const std::vector<double> norms = CachedNorms(atom.relation, {}, v_cols);
      for (size_t k = 0; k < options_.norms.size(); ++k) {
        if (options_.norms[k] == 1.0) {
          ConcreteStatistic s;
          s.sigma = {0, atom_vars};
          s.p = 1.0;
          s.log_b = norms[k];
          s.guard_atom = a;
          stats.push_back(s);
          break;
        }
      }
    }

    // Simple per-variable conditionals.
    for (int v : VarRange(atom_vars)) {
      const VarSet u = VarBit(v);
      const VarSet rest = atom_vars & ~u;
      if (rest == 0) continue;
      const std::vector<double> norms = CachedNorms(
          atom.relation, ColumnsOf(atom, u), ColumnsOf(atom, rest));
      for (size_t k = 0; k < options_.norms.size(); ++k) {
        ConcreteStatistic s;
        s.sigma = {u, rest};
        s.p = options_.norms[k];
        s.log_b = norms[k];
        s.guard_atom = a;
        stats.push_back(s);
      }
    }
  }
  return stats;
}

BoundResult CardinalityAdvisor::EvaluateCompiled(
    int n, const std::vector<ConcreteStatistic>& stats, bool want_h_opt) {
  const BoundStructure structure = StructureOf(n, stats);
  const std::string key = StructureKey(structure);

  std::shared_ptr<CompiledEntry> entry;
  {
    std::shared_lock<std::shared_mutex> lock(compiled_mu_);
    auto it = compiled_.find(key);
    if (it != compiled_.end()) entry = it->second;
  }
  if (entry) {
    compiled_hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Compile outside the map lock — Γn compilation materializes the
    // elemental lattice. If another thread compiled the same structure
    // meanwhile, its entry wins and ours is dropped.
    const BoundEngine* engine = FindBoundEngine(options_.bound_engine);
    if (engine == nullptr) engine = FindBoundEngine("auto");
    auto fresh = std::make_shared<CompiledEntry>();
    fresh->bound = engine->Compile(structure, options_.engine);
    std::unique_lock<std::shared_mutex> lock(compiled_mu_);
    auto [it, inserted] = compiled_.emplace(key, std::move(fresh));
    entry = it->second;
    if (inserted) {
      compiled_misses_.fetch_add(1, std::memory_order_relaxed);
    } else {
      compiled_hits_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  BoundResult result;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    result = entry->bound->Evaluate(ValuesOf(stats), want_h_opt);
  }
  estimates_.fetch_add(1, std::memory_order_relaxed);
  switch (result.eval_path) {
    case LpEvalPath::kWitness:
      witness_hits_.fetch_add(1, std::memory_order_relaxed);
      break;
    case LpEvalPath::kWarm:
      warm_resolves_.fetch_add(1, std::memory_order_relaxed);
      break;
    case LpEvalPath::kCold:
      cold_solves_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  return result;
}

double CardinalityAdvisor::EstimateLog2(const Query& query) {
  auto stats = AssembleStatistics(query);
  return EvaluateCompiled(query.num_vars(), stats, /*want_h_opt=*/false)
      .log2_bound;
}

double CardinalityAdvisor::Estimate(const Query& query) {
  return std::exp2(EstimateLog2(query));
}

CardinalityAdvisor::Explanation CardinalityAdvisor::Explain(
    const Query& query) {
  Explanation out;
  out.stats = AssembleStatistics(query);
  for (ConcreteStatistic& s : out.stats) s.label = ToString(s, query);
  out.bound =
      EvaluateCompiled(query.num_vars(), out.stats, /*want_h_opt=*/true);
  out.metrics = metrics();
  out.lp_backend = LpBackendName(out.bound.lp_backend);
  return out;
}

size_t CardinalityAdvisor::CacheSize() const {
  std::lock_guard<std::mutex> lock(norms_mu_);
  return cache_.size();
}

size_t CardinalityAdvisor::CompiledCacheSize() const {
  std::shared_lock<std::shared_mutex> lock(compiled_mu_);
  return compiled_.size();
}

AdvisorMetrics CardinalityAdvisor::metrics() const {
  AdvisorMetrics m;
  m.estimates = estimates_.load(std::memory_order_relaxed);
  m.compiled_hits = compiled_hits_.load(std::memory_order_relaxed);
  m.compiled_misses = compiled_misses_.load(std::memory_order_relaxed);
  m.witness_hits = witness_hits_.load(std::memory_order_relaxed);
  m.warm_resolves = warm_resolves_.load(std::memory_order_relaxed);
  m.cold_solves = cold_solves_.load(std::memory_order_relaxed);
  return m;
}

void CardinalityAdvisor::Invalidate(const std::string& relation) {
  std::lock_guard<std::mutex> lock(norms_mu_);
  ++norms_generation_;  // in-flight CachedNorms computations must not cache
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (std::get<0>(it->first) == relation) {
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace lpb
