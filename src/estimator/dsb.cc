#include "estimator/dsb.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lpb {

uint64_t SingleJoinDsb(const DegreeSequence& a, const DegreeSequence& b) {
  const size_t m = std::min(a.size(), b.size());
  uint64_t acc = 0;
  for (size_t i = 0; i < m; ++i) acc += a.degrees()[i] * b.degrees()[i];
  return acc;
}

double SingleJoinDsbLog2(const DegreeSequence& a, const DegreeSequence& b) {
  const uint64_t dsb = SingleJoinDsb(a, b);
  if (dsb == 0) return -std::numeric_limits<double>::infinity();
  return std::log2(static_cast<double>(dsb));
}

}  // namespace lpb
