#include "estimator/traditional.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace lpb {

double TraditionalEstimateLog2(const Query& query, const Catalog& catalog) {
  double log_est = 0.0;
  for (const Atom& atom : query.atoms()) {
    const Relation& rel = catalog.Get(atom.relation);
    if (rel.NumRows() == 0) return -std::numeric_limits<double>::infinity();
    log_est += std::log2(static_cast<double>(rel.NumRows()));
  }
  for (int v = 0; v < query.num_vars(); ++v) {
    std::vector<double> distinct;
    for (const Atom& atom : query.atoms()) {
      if (!Contains(atom.var_set(), v)) continue;
      const Relation& rel = catalog.Get(atom.relation);
      // First column bound to v (self-loop atoms use the first occurrence).
      for (size_t j = 0; j < atom.vars.size(); ++j) {
        if (atom.vars[j] == v) {
          distinct.push_back(static_cast<double>(
              rel.DistinctCount({static_cast<int>(j)})));
          break;
        }
      }
    }
    if (distinct.size() < 2) continue;
    // Divide by every distinct count except the smallest.
    std::sort(distinct.begin(), distinct.end());
    for (size_t i = 1; i < distinct.size(); ++i) {
      if (distinct[i] > 0) log_est -= std::log2(distinct[i]);
    }
  }
  return log_est;
}

double TraditionalEstimate(const Query& query, const Catalog& catalog) {
  return std::exp2(TraditionalEstimateLog2(query, catalog));
}

}  // namespace lpb
