// Relation-sharded ℓp-norm statistics store.
//
// The advisor's original norm cache was one std::map behind one mutex —
// every concurrent estimator thread serialized on it for every statistic
// lookup, which capped scaling at a handful of cores. This store shards by
// *relation name*: all entries of one relation live in one shard (so
// Invalidate touches exactly one shard), while lookups for different
// relations — the common concurrent pattern, since a query's atoms name
// different relations — proceed under different mutexes.
//
// Each shard is an LRU map with a byte budget: entries are charged an
// estimate of their heap footprint, and inserting past the shard's share
// of the budget evicts least-recently-used entries. Eviction is purely a
// memory bound — an evicted entry is recomputed from the catalog on the
// next lookup, it never changes results.
//
// Staleness: each shard carries a *per-relation* generation counter
// bumped by InvalidateRelation. Get returns the generation observed under
// the shard lock; Put refuses to insert when that relation's generation
// has moved on, so a norm computation that raced an invalidation cannot
// re-insert stale values (the caller still uses the computed norms for
// its own call) — while invalidating one relation never discards
// concurrent computations for other relations that share its shard.
//
// Batch entry points: GetBatch/PutBatch group their keys by shard and
// take each touched shard's mutex once for the whole batch, instead of
// once per key — the lock-traffic contract the advisor's batched
// statistics assembly (estimator/advisor.h, AssembleStatisticsBatch)
// relies on. Per key they run the same code as Get/Put (same LRU refresh,
// same generation refusal), so results are bitwise those of the scalar
// sequence.
#ifndef LPB_ESTIMATOR_NORM_CACHE_H_
#define LPB_ESTIMATOR_NORM_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <tuple>
#include <vector>

namespace lpb {

struct NormCacheOptions {
  // Shard count; clamped to >= 1. Relations hash onto shards, so this is
  // the concurrency ceiling for lookups of distinct relations.
  int shards = 16;
  // Total byte budget across all shards (split evenly); 0 = unbounded.
  size_t byte_budget = 8u << 20;
};

class ShardedNormCache {
 public:
  // (relation, U columns, V columns) — one degree sequence's identity.
  using Key = std::tuple<std::string, std::vector<int>, std::vector<int>>;

  struct Lookup {
    bool found = false;
    std::vector<double> norms;  // valid when found
    // The key's relation generation observed under the lock; pass to Put.
    uint64_t generation = 0;
  };

  explicit ShardedNormCache(NormCacheOptions options = {});

  // Looks the key up in its relation's shard, refreshing LRU recency on a
  // hit. Always reports the relation's generation, so a miss can be
  // followed by a compute + Put.
  Lookup Get(const Key& key);

  // Inserts (or refreshes) the entry unless the key's relation generation
  // no longer equals `generation` — an invalidation of *that relation*
  // ran while the caller computed — then evicts LRU entries until the
  // shard is back under its byte share.
  void Put(const Key& key, std::vector<double> norms, uint64_t generation);

  // Batched lookup: keys are grouped by shard and each touched shard's
  // mutex is taken exactly once for the whole batch (LockAcquisitions
  // grows by the number of *distinct* shards, not by keys.size()), so a
  // multi-query statistics assembly stops paying one lock round-trip per
  // statistic. Per key the result — found/norms/generation, LRU recency
  // refresh, hit/miss accounting — is identical to calling Get in
  // sequence. Returned lookups align with `keys`.
  std::vector<Lookup> GetBatch(std::span<const Key> keys);

  // Batched insert, the Put counterpart of GetBatch: one mutex visit per
  // distinct shard, each item subject to the same per-relation generation
  // refusal as Put (an item whose relation was invalidated since its
  // GetBatch is dropped; the rest of the batch still lands).
  struct PutItem {
    Key key;
    std::vector<double> norms;
    uint64_t generation = 0;
  };
  void PutBatch(std::vector<PutItem> items);

  // Drops every entry of `relation` and bumps its generation so in-flight
  // computations cannot re-insert pre-invalidation values.
  void InvalidateRelation(const std::string& relation);

  size_t Size() const;        // entries across all shards
  size_t Bytes() const;       // charged bytes across all shards
  uint64_t Evictions() const; // cumulative LRU evictions
  uint64_t Hits() const;      // cumulative Get/GetBatch hits
  uint64_t Misses() const;    // cumulative Get/GetBatch misses
  // Data-path shard-mutex acquisitions (Get/Put/GetBatch/PutBatch/
  // InvalidateRelation). Monitoring reads (Size, Bytes, counters) are not
  // counted, so tests can assert "one acquisition per distinct shard per
  // batch" exactly.
  uint64_t LockAcquisitions() const;

 private:
  struct Entry {
    std::vector<double> norms;
    std::list<Key>::iterator lru_it;  // position in the shard's LRU list
    size_t bytes = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::map<Key, Entry> map;
    std::list<Key> lru;  // front = least recently used
    size_t bytes = 0;
    // Generation per relation (absent = 0), bumped by InvalidateRelation;
    // bounded by the number of relations ever invalidated in this shard.
    std::map<std::string, uint64_t> relation_generation;
    uint64_t evictions = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t lock_acquisitions = 0;
  };

  // Per-key bodies of Get/Put, shared verbatim by the scalar and batch
  // entry points (the batch results are bitwise those of the scalar
  // sequence because they run the same code). Caller holds shard.mu.
  Lookup GetLocked(Shard& shard, const Key& key);
  void PutLocked(Shard& shard, const Key& key, std::vector<double> norms,
                 uint64_t generation);

  size_t ShardIndexOf(const std::string& relation) const;
  Shard& ShardOf(const std::string& relation);
  const Shard& ShardOf(const std::string& relation) const;

  NormCacheOptions options_;
  size_t per_shard_budget_ = 0;  // 0 = unbounded
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace lpb

#endif  // LPB_ESTIMATOR_NORM_CACHE_H_
