// Traditional (textbook / System-R style) cardinality estimator — the
// stand-in for DuckDB's estimator in the paper's experiment tables.
//
// Implements formula (15)/(16) generalized to multiway joins: the estimate
// is Π_j |R_j| divided, for every join variable v shared by k atoms, by the
// product of all but the smallest distinct counts of v — exactly the
// Selinger selectivity 1/max(V(R,v), V(S,v)) applied along a chain of the
// k atoms in ascending distinct-count order. It assumes uniformity and
// independence, so it *under*-estimates skewed acyclic joins and
// *over*-estimates the triangle query, the behaviours Appendix C reports
// for DuckDB.
#ifndef LPB_ESTIMATOR_TRADITIONAL_H_
#define LPB_ESTIMATOR_TRADITIONAL_H_

#include "query/query.h"
#include "relation/catalog.h"

namespace lpb {

// Returns log2 of the estimated output size. Returns -infinity for an
// estimate of zero (some relation is empty).
double TraditionalEstimateLog2(const Query& query, const Catalog& catalog);

// Convenience: the estimate itself (2^log2).
double TraditionalEstimate(const Query& query, const Catalog& catalog);

}  // namespace lpb

#endif  // LPB_ESTIMATOR_TRADITIONAL_H_
