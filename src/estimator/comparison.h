// One-call comparison facade: runs every estimator / bound in the library
// on a query and reports them side by side (the rows of the paper's
// experiment tables). Used by the benches and the examples, and handy as a
// debugging dashboard for users.
#ifndef LPB_ESTIMATOR_COMPARISON_H_
#define LPB_ESTIMATOR_COMPARISON_H_

#include <string>
#include <vector>

#include "query/query.h"
#include "relation/catalog.h"
#include "relation/degree_sequence.h"

namespace lpb {

struct EstimateReport {
  std::string name;       // "AGM {1}", "lp {1..5,inf}", "traditional", ...
  double log2_value = 0;  // log2 of the bound / estimate
  bool is_upper_bound = false;  // true for provable bounds
};

struct ComparisonOptions {
  // Norms for the full ℓp bound.
  std::vector<double> norms = {1.0, 2.0, 3.0, 4.0, kInfNorm};
  // Also compute the true cardinality (can be expensive); reported under
  // the name "true".
  bool include_truth = true;
};

// Runs: true cardinality (optional), AGM, PANDA, full ℓp bound,
// traditional estimate, and — for two-atom queries joining on one variable
// — the DSB. Bounds are computed from statistics collected on the fly.
std::vector<EstimateReport> CompareEstimators(
    const Query& query, const Catalog& catalog,
    const ComparisonOptions& options = {});

// Pretty-prints a report table to a string.
std::string FormatComparison(const std::vector<EstimateReport>& reports);

}  // namespace lpb

#endif  // LPB_ESTIMATOR_COMPARISON_H_
