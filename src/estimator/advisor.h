// CardinalityAdvisor: the paper's "future work" packaged as an API —
// a pessimistic cardinality estimation service for query optimizers.
//
// Two caches make the hot path cheap enough for optimizer traffic:
//   * statistics store — ℓp norms per (relation, conditional), computed
//     lazily (O(N log N) per degree sequence, footnote 1) and reused across
//     queries. The store is sharded by relation (estimator/norm_cache.h):
//     concurrent estimator threads looking up different relations take
//     different mutexes, and each shard is an LRU map under a byte budget,
//     so statistics memory stays bounded on wide catalogs (an evicted
//     entry is recomputed on the next lookup — eviction never changes
//     results).
//   * compiled-bound cache — the bound LP compiled once per *structure*
//     (variable count + statistic shapes; the query hypergraph enters the
//     LP only through those shapes) via bounds/bound_engine.h and
//     re-evaluated per statistics. For a repeated query template the
//     estimate is a statistics lookup plus a dual-witness dot product; the
//     LP is re-solved (warm, then cold) only when the cached basis stops
//     being optimal.
//
// Batch evaluation: an optimizer probing a join-order search space asks
// for thousands of what-if estimates against the same compiled structure.
// EstimateLog2Batch amortizes the per-call machinery — statistics
// assembly, structure lookup, and the per-bound mutex are paid once per
// batch, and the value vectors flow through the LP backend's multi-RHS
// resolve (one cached LU factorization, shared dual witness) instead of
// one scalar cascade per probe.
//
// Thread safety: all estimation entry points may be called concurrently.
// The compiled cache is read lock-free: the map lives behind an RCU-style
// atomic shared_ptr snapshot, so the hot (hit) path is one atomic load —
// no reader ever serializes against a writer burst. Compiling a new
// structure copies the map under a writer mutex and swaps the snapshot.
// Each compiled bound carries its own mutex because Evaluate mutates the
// cached basis (a batch holds it for the whole block). Invalidate may run
// concurrently with estimates.
#ifndef LPB_ESTIMATOR_ADVISOR_H_
#define LPB_ESTIMATOR_ADVISOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "bounds/bound_engine.h"
#include "bounds/engine.h"
#include "estimator/norm_cache.h"
#include "query/query.h"
#include "relation/catalog.h"
#include "relation/degree_sequence.h"
#include "stats/statistic.h"

namespace lpb {

struct AdvisorOptions {
  // Norms maintained for every per-column degree sequence.
  std::vector<double> norms = {1.0, 2.0, 3.0, 4.0, kInfNorm};
  // Engine options for the occasional non-simple statistics set.
  EngineOptions engine;
  // Bound engine used for compiled bounds (see FindBoundEngine); "auto"
  // picks the normal engine when sound, the Γn engine otherwise.
  std::string bound_engine = "auto";
  // Sharding and eviction of the statistics store (see norm_cache.h):
  // relations hash onto `shards` LRU maps, each holding an even share of
  // `byte_budget` (0 = unbounded).
  NormCacheOptions norm_cache;
};

// Cumulative counters. Every estimate falls into exactly one of
// witness/warm/cold. Scalar estimates also split into exactly one of
// compiled hit/miss; a *batch* performs one compiled-cache lookup per
// structure group, so under batching `estimates` can exceed
// `compiled_hits + compiled_misses`.
struct AdvisorMetrics {
  uint64_t estimates = 0;        // bound evaluations served
  uint64_t batch_calls = 0;      // EstimateLog2Batch invocations (both forms)
  uint64_t batch_probes = 0;     // probes requested across those batches
  uint64_t compiled_hits = 0;    // structure found in the compiled cache
  uint64_t compiled_misses = 0;  // structure compiled on this call
  uint64_t witness_hits = 0;     // cached dual witness reused (dot product)
  uint64_t warm_resolves = 0;    // dual-simplex pivots from the cached basis
  uint64_t cold_solves = 0;      // full LP solve
  uint64_t norm_evictions = 0;   // statistics-store LRU evictions
  // Statistics-store traffic (estimator/norm_cache.h): lookup hits and
  // misses (a miss is an O(N log N) degree-sequence recompute) and
  // data-path shard-mutex acquisitions. Batched assembly keeps the last
  // near "distinct shards touched per batch" instead of "statistics per
  // batch"; the bench JSON surfaces all three so cache efficacy is gated,
  // not guessed.
  uint64_t norm_hits = 0;
  uint64_t norm_misses = 0;
  uint64_t norm_shard_locks = 0;
  // LP solver work behind the estimates, summed from BoundResult::lp_stats
  // (lp/simplex.h): simplex pivots across all phases, basis
  // refactorizations, Forrest–Tomlin vs product-form eta updates taken,
  // and Devex reference resets. bench_throughput surfaces these so the CI
  // perf gate can assert on iteration counts, not just wall-clock.
  uint64_t lp_pivots = 0;
  uint64_t lp_refactorizations = 0;
  uint64_t lp_ft_updates = 0;
  uint64_t lp_eta_updates = 0;
  uint64_t lp_devex_resets = 0;
  // Cut-growth accounting for the Γn cutting-plane engine: rounds whose new
  // cut rows were appended onto the live basis (vs rebuilt cold), the dual
  // pivots spent repairing those appended rows, total rows appended, and
  // appends whose LU fill tripped an immediate refactorization.
  uint64_t lp_warm_cut_rounds = 0;
  uint64_t lp_dual_repair_pivots = 0;
  uint64_t lp_row_appends = 0;
  uint64_t lp_append_refactorizations = 0;
};

class CardinalityAdvisor {
 public:
  // The advisor keeps a reference to the catalog; it must outlive the
  // advisor. Statistics and compiled bounds are built lazily and cached.
  CardinalityAdvisor(const Catalog& catalog, AdvisorOptions options = {});

  // log2 upper bound on |Q(D)|; +infinity if the statistics cannot bound
  // the query (should not happen for full CQs with maintained norms).
  double EstimateLog2(const Query& query);

  // Upper bound in linear space (2^EstimateLog2, saturating).
  double Estimate(const Query& query);

  // Batched what-if probing: bounds `query` under each hypothetical
  // statistics-value vector in `log_b_batch` (rows aligned with
  // Explain(query).stats — the advisor's own statistics assembly order;
  // a vector of any other size cannot be priced and yields +infinity).
  // Statistics assembly, the structure lookup, and the per-bound lock are
  // paid once; the values flow through the compiled bound's batch path
  // (bounds/bound_engine.h). Results are identical to overwriting the
  // stats' log_b and estimating one vector at a time.
  std::vector<double> EstimateLog2Batch(
      const Query& query, std::span<const std::vector<double>> log_b_batch);

  // Batched estimation over many queries (e.g. every candidate join
  // prefix of one search step). Queries sharing a statistics structure —
  // the norm in template workloads — are grouped and evaluated under one
  // compiled-bound lock via the batch path. Returns log2 bounds aligned
  // with `queries`.
  std::vector<double> EstimateLog2Batch(const std::vector<Query>& queries);
  // Linear-space variant of the above (2^log2 per entry, saturating).
  std::vector<double> EstimateBatch(const std::vector<Query>& queries);

  // Batched front half of the estimate path: the statistics of many
  // queries assembled through ONE norm-store GetBatch over the distinct
  // (relation, U, V) degree-sequence keys of the whole batch (plus one
  // PutBatch for whatever had to be computed). Keys repeated across the
  // batch's queries — the norm under admission batching, where concurrent
  // requests mix a few hot templates — are resolved once, and each
  // touched cache shard's mutex is visited once per batch instead of once
  // per statistic. Per query the returned statistics are bitwise those of
  // the scalar assembly the Explain path performs (same enumeration
  // order, same norm computation). A 0-atom query yields an empty vector.
  std::vector<std::vector<ConcreteStatistic>> AssembleStatisticsBatch(
      std::span<const Query> queries);

  // Full result (certificate weights, optimal polymatroid) plus the
  // statistics it was computed from and a metrics snapshot taken after the
  // call — bound.eval_path says whether this particular estimate reused
  // the cached witness, warm-resolved, or solved cold, and lp_backend
  // names the LP solver backend ("dense" or "revised", lp/tableau.h;
  // selected via AdvisorOptions::engine.simplex.backend or
  // LPB_LP_BACKEND) that served it.
  struct Explanation {
    BoundResult bound;
    std::vector<ConcreteStatistic> stats;
    AdvisorMetrics metrics;
    std::string lp_backend;
  };
  Explanation Explain(const Query& query);

  // Number of distinct cached degree sequences (statistics maintenance
  // footprint) and their charged bytes.
  size_t CacheSize() const;
  size_t CacheBytes() const;
  // Number of distinct compiled bound structures.
  size_t CompiledCacheSize() const;

  // Snapshot of the cumulative evaluation counters.
  AdvisorMetrics metrics() const;

  // Drops cached statistics for one relation (call after updates). Only
  // that relation's shard is touched. Compiled bounds survive: they depend
  // only on structure, never on statistic values, so the next estimate
  // re-reads fresh norms and re-prices the cached basis against them.
  void Invalidate(const std::string& relation);

 private:
  // A compiled bound plus the mutex serializing Evaluate/EvaluateBatch on
  // it (both mutate the cached basis and, for Γn, the cut set). A batch
  // holds the mutex for its whole block — the locking contract callers
  // rely on is per-*evaluation-sequence*, not per-call.
  struct CompiledEntry {
    std::mutex mu;
    std::unique_ptr<CompiledBound> bound;
  };

  // Cached log2 norms for one degree sequence, aligned with options_.norms.
  // Returns by value: the copy keeps the caller independent of concurrent
  // Invalidate calls and LRU evictions.
  std::vector<double> CachedNorms(const std::string& relation,
                                  const std::vector<int>& u_cols,
                                  const std::vector<int>& v_cols);

  std::vector<ConcreteStatistic> AssembleStatistics(const Query& query);

  // The compiled-bound map is immutable once published: every write copies
  // the current map and swaps the snapshot pointer (RCU). Readers hold the
  // snapshot shared_ptr for the duration of their lookup, so a concurrent
  // swap never invalidates what they see.
  using CompiledMap = std::map<std::string, std::shared_ptr<CompiledEntry>>;

  // Finds or compiles the bound entry for `structure` (whose canonical key
  // is `key`), bumping the compiled hit/miss counters once. Lock-free on
  // the hit path (one atomic snapshot load).
  std::shared_ptr<CompiledEntry> LookupOrCompile(
      const BoundStructure& structure, const std::string& key);

  // Looks up or compiles the bound for this statistics structure, then
  // evaluates it at the statistics' values, updating metrics.
  BoundResult EvaluateCompiled(int n,
                               const std::vector<ConcreteStatistic>& stats,
                               bool want_h_opt);

  // Folds one evaluation's path and LP solver work into the counters.
  void RecordEval(const BoundResult& result);

  const Catalog& catalog_;
  AdvisorOptions options_;

  ShardedNormCache norms_;

  // RCU snapshot of the compiled-bound map (never null) and the mutex
  // serializing writers (copy-insert-swap; readers never take it).
  // NOTE: libstdc++ implements atomic<shared_ptr> with an embedded
  // lock-bit protocol TSan cannot model (GCC bug 101761), so the TSan CI
  // lane runs with the .github/tsan.supp suppression for _Sp_atomic.
  std::atomic<std::shared_ptr<const CompiledMap>> compiled_;
  std::mutex compiled_writer_mu_;

  std::atomic<uint64_t> estimates_{0};
  std::atomic<uint64_t> batch_calls_{0};
  std::atomic<uint64_t> batch_probes_{0};
  std::atomic<uint64_t> compiled_hits_{0};
  std::atomic<uint64_t> compiled_misses_{0};
  std::atomic<uint64_t> witness_hits_{0};
  std::atomic<uint64_t> warm_resolves_{0};
  std::atomic<uint64_t> cold_solves_{0};
  std::atomic<uint64_t> lp_pivots_{0};
  std::atomic<uint64_t> lp_refactorizations_{0};
  std::atomic<uint64_t> lp_ft_updates_{0};
  std::atomic<uint64_t> lp_eta_updates_{0};
  std::atomic<uint64_t> lp_devex_resets_{0};
  std::atomic<uint64_t> lp_warm_cut_rounds_{0};
  std::atomic<uint64_t> lp_dual_repair_pivots_{0};
  std::atomic<uint64_t> lp_row_appends_{0};
  std::atomic<uint64_t> lp_append_refactorizations_{0};
};

}  // namespace lpb

#endif  // LPB_ESTIMATOR_ADVISOR_H_
