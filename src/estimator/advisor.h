// CardinalityAdvisor: the paper's "future work" packaged as an API —
// a pessimistic cardinality estimation service for query optimizers.
//
// The advisor precomputes ℓp-norm statistics per (relation, conditional)
// once, caches them, and then answers EstimateLog2(query) by assembling the
// cached statistics into the bound LP. This mirrors how a real system would
// deploy the paper: statistics maintenance is offline (O(N log N) per
// degree sequence, footnote 1), estimation is a small LP per query.
#ifndef LPB_ESTIMATOR_ADVISOR_H_
#define LPB_ESTIMATOR_ADVISOR_H_

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "bounds/engine.h"
#include "query/query.h"
#include "relation/catalog.h"
#include "relation/degree_sequence.h"
#include "stats/statistic.h"

namespace lpb {

struct AdvisorOptions {
  // Norms maintained for every per-column degree sequence.
  std::vector<double> norms = {1.0, 2.0, 3.0, 4.0, kInfNorm};
  // Engine options for the occasional non-simple statistics set.
  EngineOptions engine;
};

class CardinalityAdvisor {
 public:
  // The advisor keeps a reference to the catalog; it must outlive the
  // advisor. Statistics are computed lazily and cached.
  CardinalityAdvisor(const Catalog& catalog, AdvisorOptions options = {});

  // log2 upper bound on |Q(D)|; +infinity if the statistics cannot bound
  // the query (should not happen for full CQs with maintained norms).
  double EstimateLog2(const Query& query);

  // Upper bound in linear space (2^EstimateLog2, saturating).
  double Estimate(const Query& query);

  // Full result (certificate weights, optimal polymatroid) plus the
  // statistics it was computed from.
  struct Explanation {
    BoundResult bound;
    std::vector<ConcreteStatistic> stats;
  };
  Explanation Explain(const Query& query);

  // Number of distinct cached degree sequences (statistics maintenance
  // footprint).
  size_t CacheSize() const { return cache_.size(); }

  // Drops cached statistics for one relation (call after updates).
  void Invalidate(const std::string& relation);

 private:
  // Cache key: relation name + U column list + V column list.
  using Key = std::tuple<std::string, std::vector<int>, std::vector<int>>;

  // Cached log2 norms for one degree sequence, aligned with options_.norms.
  const std::vector<double>& CachedNorms(const std::string& relation,
                                         const std::vector<int>& u_cols,
                                         const std::vector<int>& v_cols);

  std::vector<ConcreteStatistic> AssembleStatistics(const Query& query);

  const Catalog& catalog_;
  AdvisorOptions options_;
  std::map<Key, std::vector<double>> cache_;
};

}  // namespace lpb

#endif  // LPB_ESTIMATOR_ADVISOR_H_
