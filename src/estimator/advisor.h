// CardinalityAdvisor: the paper's "future work" packaged as an API —
// a pessimistic cardinality estimation service for query optimizers.
//
// Two caches make the hot path cheap enough for optimizer traffic:
//   * statistics cache — ℓp norms per (relation, conditional), computed
//     lazily (O(N log N) per degree sequence, footnote 1) and reused across
//     queries;
//   * compiled-bound cache — the bound LP compiled once per *structure*
//     (variable count + statistic shapes; the query hypergraph enters the
//     LP only through those shapes) via bounds/bound_engine.h and
//     re-evaluated per statistics. For a repeated query template the
//     estimate is a statistics lookup plus a dual-witness dot product; the
//     LP is re-solved (warm, then cold) only when the cached basis stops
//     being optimal.
//
// Thread safety: Estimate/EstimateLog2/Explain may be called concurrently.
// The compiled cache takes a shared lock on the hot (hit) path; each
// compiled bound carries its own mutex because Evaluate mutates the cached
// basis. Invalidate may run concurrently with estimates.
#ifndef LPB_ESTIMATOR_ADVISOR_H_
#define LPB_ESTIMATOR_ADVISOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <tuple>
#include <vector>

#include "bounds/bound_engine.h"
#include "bounds/engine.h"
#include "query/query.h"
#include "relation/catalog.h"
#include "relation/degree_sequence.h"
#include "stats/statistic.h"

namespace lpb {

struct AdvisorOptions {
  // Norms maintained for every per-column degree sequence.
  std::vector<double> norms = {1.0, 2.0, 3.0, 4.0, kInfNorm};
  // Engine options for the occasional non-simple statistics set.
  EngineOptions engine;
  // Bound engine used for compiled bounds (see FindBoundEngine); "auto"
  // picks the normal engine when sound, the Γn engine otherwise.
  std::string bound_engine = "auto";
};

// Cumulative counters; every estimate falls into exactly one of hit/miss
// and, below that, exactly one of witness/warm/cold.
struct AdvisorMetrics {
  uint64_t estimates = 0;        // bound evaluations served
  uint64_t compiled_hits = 0;    // structure found in the compiled cache
  uint64_t compiled_misses = 0;  // structure compiled on this call
  uint64_t witness_hits = 0;     // cached dual witness reused (dot product)
  uint64_t warm_resolves = 0;    // dual-simplex pivots from the cached basis
  uint64_t cold_solves = 0;      // full LP solve
};

class CardinalityAdvisor {
 public:
  // The advisor keeps a reference to the catalog; it must outlive the
  // advisor. Statistics and compiled bounds are built lazily and cached.
  CardinalityAdvisor(const Catalog& catalog, AdvisorOptions options = {});

  // log2 upper bound on |Q(D)|; +infinity if the statistics cannot bound
  // the query (should not happen for full CQs with maintained norms).
  double EstimateLog2(const Query& query);

  // Upper bound in linear space (2^EstimateLog2, saturating).
  double Estimate(const Query& query);

  // Full result (certificate weights, optimal polymatroid) plus the
  // statistics it was computed from and a metrics snapshot taken after the
  // call — bound.eval_path says whether this particular estimate reused
  // the cached witness, warm-resolved, or solved cold, and lp_backend
  // names the LP solver backend ("dense" or "revised", lp/tableau.h;
  // selected via AdvisorOptions::engine.simplex.backend or
  // LPB_LP_BACKEND) that served it.
  struct Explanation {
    BoundResult bound;
    std::vector<ConcreteStatistic> stats;
    AdvisorMetrics metrics;
    std::string lp_backend;
  };
  Explanation Explain(const Query& query);

  // Number of distinct cached degree sequences (statistics maintenance
  // footprint).
  size_t CacheSize() const;
  // Number of distinct compiled bound structures.
  size_t CompiledCacheSize() const;

  // Snapshot of the cumulative evaluation counters.
  AdvisorMetrics metrics() const;

  // Drops cached statistics for one relation (call after updates).
  // Compiled bounds survive: they depend only on structure, never on
  // statistic values, so the next estimate re-reads fresh norms and
  // re-prices the cached basis against them.
  void Invalidate(const std::string& relation);

 private:
  // Cache key: relation name + U column list + V column list.
  using Key = std::tuple<std::string, std::vector<int>, std::vector<int>>;

  // A compiled bound plus the mutex serializing Evaluate on it (Evaluate
  // mutates the cached basis and, for Γn, the cut set).
  struct CompiledEntry {
    std::mutex mu;
    std::unique_ptr<CompiledBound> bound;
  };

  // Cached log2 norms for one degree sequence, aligned with options_.norms.
  // Returns by value: map references are stable, but the copy keeps the
  // caller independent of concurrent Invalidate calls.
  std::vector<double> CachedNorms(const std::string& relation,
                                  const std::vector<int>& u_cols,
                                  const std::vector<int>& v_cols);

  std::vector<ConcreteStatistic> AssembleStatistics(const Query& query);

  // Looks up or compiles the bound for this statistics structure, then
  // evaluates it at the statistics' values, updating metrics.
  BoundResult EvaluateCompiled(int n,
                               const std::vector<ConcreteStatistic>& stats,
                               bool want_h_opt);

  const Catalog& catalog_;
  AdvisorOptions options_;

  mutable std::mutex norms_mu_;  // guards cache_ and norms_generation_
  std::map<Key, std::vector<double>> cache_;
  // Bumped by Invalidate so norm computations that started before the
  // invalidation cannot re-insert stale entries afterwards.
  uint64_t norms_generation_ = 0;

  mutable std::shared_mutex compiled_mu_;  // guards compiled_ (the map only)
  std::map<std::string, std::shared_ptr<CompiledEntry>> compiled_;

  std::atomic<uint64_t> estimates_{0};
  std::atomic<uint64_t> compiled_hits_{0};
  std::atomic<uint64_t> compiled_misses_{0};
  std::atomic<uint64_t> witness_hits_{0};
  std::atomic<uint64_t> warm_resolves_{0};
  std::atomic<uint64_t> cold_solves_{0};
};

}  // namespace lpb

#endif  // LPB_ESTIMATOR_ADVISOR_H_
