#include "bounds/shannon_cuts.h"

#include <algorithm>

#include "relation/degree_sequence.h"

namespace lpb {

LinearForm ShannonCut::Form(int n) const {
  if (j < 0) {
    const VarSet full = FullSet(n);
    return {{full, 1.0}, {full & ~VarBit(i), -1.0}};
  }
  const VarSet bi = VarBit(i), bj = VarBit(j);
  LinearForm f = {{s | bi, 1.0}, {s | bj, 1.0}, {s | bi | bj, -1.0}};
  if (s != 0) f.push_back({s, -1.0});
  return f;
}

double ShannonCutValue(const ShannonCut& cut, int n,
                       const std::vector<double>& x) {
  auto h = [&](VarSet set) { return set == 0 ? 0.0 : x[set - 1]; };
  if (cut.j < 0) {
    const VarSet full = FullSet(n);
    return h(full) - h(full & ~VarBit(cut.i));
  }
  const VarSet bi = VarBit(cut.i), bj = VarBit(cut.j);
  return h(cut.s | bi) + h(cut.s | bj) - h(cut.s | bi | bj) - h(cut.s);
}

std::vector<ShannonCut> FindViolatedShannonCuts(int n,
                                                const std::vector<double>& x,
                                                const std::set<uint64_t>& present,
                                                int max_cuts, double eps) {
  std::vector<std::pair<double, ShannonCut>> violated;
  const VarSet full = FullSet(n);
  for (int i = 0; i < n; ++i) {
    ShannonCut cut{i, -1, 0};
    double v = ShannonCutValue(cut, n, x);
    if (v < -eps && !present.count(cut.Key())) violated.push_back({v, cut});
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const VarSet rest = full & ~(VarBit(i) | VarBit(j));
      for (VarSet s : SubsetRange(rest)) {
        ShannonCut cut{i, j, s};
        double v = ShannonCutValue(cut, n, x);
        if (v < -eps && !present.count(cut.Key())) {
          violated.push_back({v, cut});
        }
      }
    }
  }
  std::sort(violated.begin(), violated.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (static_cast<int>(violated.size()) > max_cuts) violated.resize(max_cuts);
  std::vector<ShannonCut> cuts;
  cuts.reserve(violated.size());
  for (const auto& [v, cut] : violated) cuts.push_back(cut);
  return cuts;
}

ShannonScanTable BuildShannonScanTable(int n) {
  ShannonScanTable table;
  table.n = n;
  const VarSet full = FullSet(n);
  auto push = [&table](VarSet a, VarSet b, VarSet c, VarSet d) {
    table.idx.push_back(static_cast<int32_t>(a));
    table.idx.push_back(static_cast<int32_t>(b));
    table.idx.push_back(static_cast<int32_t>(c));
    table.idx.push_back(static_cast<int32_t>(d));
  };
  for (int i = 0; i < n; ++i) push(full, 0, full & ~VarBit(i), 0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const VarSet bi = VarBit(i), bj = VarBit(j);
      const VarSet rest = full & ~(bi | bj);
      for (VarSet s : SubsetRange(rest)) push(s | bi, s | bj, s | bi | bj, s);
    }
  }
  return table;
}

bool AnyViolatedShannonCut(const ShannonScanTable& table,
                           const std::vector<double>& x, double eps,
                           std::vector<double>& scratch) {
  const size_t vars = (static_cast<size_t>(1) << table.n) - 1;
  scratch.resize(vars + 1);
  scratch[0] = 0.0;
  std::copy(x.begin(), x.begin() + vars, scratch.begin() + 1);
  const double* y = scratch.data();
  const int32_t* p = table.idx.data();
  const size_t cuts = table.idx.size() / 4;
  // Four independent min accumulators: each lane is loads plus three
  // adds and a min, so the reduction is ILP-bound, not branch-bound.
  double m0 = 0.0, m1 = 0.0, m2 = 0.0, m3 = 0.0;
  size_t k = 0;
  for (; k + 4 <= cuts; k += 4, p += 16) {
    m0 = std::min(m0, y[p[0]] + y[p[1]] - y[p[2]] - y[p[3]]);
    m1 = std::min(m1, y[p[4]] + y[p[5]] - y[p[6]] - y[p[7]]);
    m2 = std::min(m2, y[p[8]] + y[p[9]] - y[p[10]] - y[p[11]]);
    m3 = std::min(m3, y[p[12]] + y[p[13]] - y[p[14]] - y[p[15]]);
  }
  for (; k < cuts; ++k, p += 4) {
    m0 = std::min(m0, y[p[0]] + y[p[1]] - y[p[2]] - y[p[3]]);
  }
  return std::min(std::min(m0, m1), std::min(m2, m3)) < -eps;
}

std::vector<ShannonCut> SeedShannonCuts(int n) {
  const VarSet full = FullSet(n);
  std::vector<ShannonCut> cuts;
  for (int i = 0; i < n; ++i) cuts.push_back(ShannonCut{i, -1, 0});
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const VarSet ij = VarBit(i) | VarBit(j);
      cuts.push_back(ShannonCut{i, j, 0});
      cuts.push_back(ShannonCut{i, j, full & ~ij});
      const VarSet rest = full & ~ij;
      for (int k : VarRange(rest)) cuts.push_back(ShannonCut{i, j, VarBit(k)});
    }
  }
  return cuts;
}

double GammaBoxBound(int n, const std::vector<double>& ps,
                     const std::vector<double>& log_bs) {
  double box = 10.0;
  for (size_t i = 0; i < ps.size(); ++i) {
    const double p_factor =
        (ps[i] >= kInfNorm / 2) ? 1.0 : std::min<double>(ps[i], n);
    box += std::max(log_bs[i], 0.0) * std::max(1.0, p_factor);
  }
  return box;
}

std::vector<LpTerm> FormToTerms(const LinearForm& form) {
  std::vector<LpTerm> terms;
  for (const EntropyTerm& t : form) {
    if (t.set == 0 || t.coef == 0.0) continue;  // h(∅) is pinned to 0
    terms.push_back({static_cast<int>(t.set) - 1, t.coef});
  }
  return terms;
}

}  // namespace lpb
