#include "bounds/worst_case.h"

#include <cassert>
#include <cmath>
#include <map>
#include <set>
#include <utility>

namespace lpb {

Relation BasicNormalRelation(const std::vector<std::string>& attrs, VarSet w,
                             uint64_t n) {
  Relation rel("T", attrs);
  rel.Reserve(n);
  std::vector<Value> row(attrs.size(), 0);
  for (uint64_t k = 0; k < n; ++k) {
    for (size_t c = 0; c < attrs.size(); ++c) {
      row[c] = Contains(w, static_cast<int>(c)) ? k : 0;
    }
    rel.AddRow(row);
  }
  return rel;
}

Relation DomainProduct(const Relation& t, const Relation& t_prime) {
  assert(t.arity() == t_prime.arity());
  const int a = t.arity();
  Relation out("T", t.attrs());
  out.Reserve(t.NumRows() * t_prime.NumRows());
  // Dense per-column dictionary for value pairs.
  std::vector<std::map<std::pair<Value, Value>, Value>> dict(a);
  std::vector<Value> row(a);
  for (size_t i = 0; i < t.NumRows(); ++i) {
    for (size_t j = 0; j < t_prime.NumRows(); ++j) {
      for (int c = 0; c < a; ++c) {
        auto key = std::make_pair(t.At(i, c), t_prime.At(j, c));
        auto [it, inserted] =
            dict[c].emplace(key, static_cast<Value>(dict[c].size()));
        row[c] = it->second;
      }
      out.AddRow(row);
    }
  }
  return out;
}

WorstCaseInstance BuildWorstCaseDatabase(const Query& query,
                                         const std::vector<double>& alpha,
                                         double min_alpha) {
  const int n = query.num_vars();
  assert(alpha.size() == (size_t{1} << n));
  // Self-joins would require one relation to satisfy several projections at
  // once, which Lemma 6.2 does not cover; require distinct relation names.
  {
    std::set<std::string> names;
    for (const Atom& atom : query.atoms()) {
      const bool inserted = names.insert(atom.relation).second;
      assert(inserted && "worst-case construction requires distinct atoms");
      (void)inserted;
    }
  }

  WorstCaseInstance out;
  out.beta.assign(alpha.size(), 0.0);
  // Identity for ⊗: the single all-zero row.
  Relation t = BasicNormalRelation(query.var_names(), 0, 1);
  const VarSet full = FullSet(n);
  for (VarSet w = 1; w <= full; ++w) {
    if (alpha[w] < min_alpha) continue;
    const uint64_t n_w =
        static_cast<uint64_t>(std::floor(std::exp2(alpha[w])));
    if (n_w <= 1) continue;
    out.beta[w] = std::log2(static_cast<double>(n_w));
    t = DomainProduct(t, BasicNormalRelation(query.var_names(), w, n_w));
  }

  for (const Atom& atom : query.atoms()) {
    std::vector<int> cols(atom.vars.begin(), atom.vars.end());
    Relation proj = t.Project(cols);
    proj.set_name(atom.relation);
    out.database.Add(std::move(proj));
  }
  out.witness = std::move(t);
  return out;
}

}  // namespace lpb
