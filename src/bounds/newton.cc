#include "bounds/newton.h"

#include <algorithm>
#include <cmath>
#include <complex>
#include <functional>

namespace lpb {

std::vector<double> PowerSums(const DegreeSequence& d, int m) {
  std::vector<double> sums(m, 0.0);
  for (int p = 1; p <= m; ++p) {
    long double acc = 0.0;
    for (uint64_t deg : d.degrees()) {
      acc += powl(static_cast<long double>(deg), p);
    }
    sums[p - 1] = static_cast<double>(acc);
  }
  return sums;
}

std::vector<double> ElementarySymmetric(const std::vector<double>& s) {
  const int m = static_cast<int>(s.size());
  std::vector<long double> e(m + 1, 0.0);
  e[0] = 1.0;
  for (int k = 1; k <= m; ++k) {
    long double acc = 0.0;
    for (int p = 1; p <= k; ++p) {
      const long double term = e[k - p] * static_cast<long double>(s[p - 1]);
      acc += (p % 2 == 1) ? term : -term;
    }
    e[k] = acc / k;
  }
  return std::vector<double>(e.begin() + 1, e.end());
}

std::vector<double> DegreesFromPowerSums(const std::vector<double>& power_sums,
                                         bool round_to_integers,
                                         int max_iterations) {
  const int m = static_cast<int>(power_sums.size());
  if (m == 0) return {};
  std::vector<double> e = ElementarySymmetric(power_sums);

  // Monic polynomial coefficients: λ^m - e1 λ^{m-1} + ... + (-1)^m e_m.
  // coef[k] multiplies λ^{m-1-k} below (leading 1 handled separately).
  std::vector<std::complex<long double>> coef(m);
  for (int k = 1; k <= m; ++k) {
    coef[k - 1] = (k % 2 == 1) ? -static_cast<long double>(e[k - 1])
                               : static_cast<long double>(e[k - 1]);
  }
  auto eval = [&](std::complex<long double> x) {
    std::complex<long double> acc = 1.0;
    for (int k = 0; k < m; ++k) acc = acc * x + coef[k];
    return acc;
  };

  // Durand-Kerner from a scaled non-real starting configuration.
  const long double radius =
      std::max<long double>(1.0, powl(power_sums[m - 1], 1.0L / m));
  std::vector<std::complex<long double>> roots(m);
  for (int i = 0; i < m; ++i) {
    const long double angle = 0.4L + 2.0L * M_PIl * i / m;
    roots[i] = radius * std::complex<long double>(cosl(angle), sinl(angle));
  }
  // Repeated roots (very common in degree sequences) make Durand-Kerner
  // converge only linearly around root clusters, so a tight per-iteration
  // delta test never fires. Instead run until deltas are small OR the
  // iteration budget is exhausted, then validate the reconstruction by
  // recomputing the power sums: symmetric functions of a root cluster are
  // far more accurate than the individual roots.
  for (int it = 0; it < max_iterations; ++it) {
    long double worst_delta = 0.0;
    for (int i = 0; i < m; ++i) {
      std::complex<long double> denom = 1.0;
      for (int j = 0; j < m; ++j) {
        if (j != i) denom *= roots[i] - roots[j];
      }
      const std::complex<long double> delta = eval(roots[i]) / denom;
      roots[i] -= delta;
      worst_delta = std::max(
          worst_delta, std::abs(delta) / (1.0L + std::abs(roots[i])));
    }
    if (worst_delta < 1e-13L) break;
  }

  std::vector<double> degrees(m);
  for (int i = 0; i < m; ++i) {
    degrees[i] = static_cast<double>(roots[i].real());
    if (round_to_integers) degrees[i] = std::round(degrees[i]);
  }
  std::sort(degrees.begin(), degrees.end(), std::greater<double>());

  // Validation: the recovered sequence must reproduce the input power sums.
  for (int p = 1; p <= m; ++p) {
    long double sum = 0.0;
    for (double deg : degrees) sum += powl(static_cast<long double>(deg), p);
    const long double target = power_sums[p - 1];
    if (std::abs(static_cast<double>(sum - target)) >
        1e-4 * (1.0 + std::abs(target))) {
      return {};
    }
  }
  return degrees;
}

}  // namespace lpb
