#include "bounds/agm.h"

#include <cassert>

#include "lp/lp_problem.h"
#include "lp/simplex.h"
#include "relation/degree_sequence.h"
#include "stats/collector.h"

namespace lpb {

std::vector<double> AtomLogSizes(const Query& query, const Catalog& catalog) {
  std::vector<double> log_sizes;
  log_sizes.reserve(query.num_atoms());
  for (int a = 0; a < query.num_atoms(); ++a) {
    log_sizes.push_back(MeasureLog2Norm(
        query, a, catalog, Conditional{0, query.atom(a).var_set()}, 1.0));
  }
  return log_sizes;
}

AgmResult AgmBound(const Query& query, const std::vector<double>& log_sizes) {
  const int m = query.num_atoms();
  assert(static_cast<int>(log_sizes.size()) == m);
  // minimize Σ x_j log|R_j|  ==  maximize Σ x_j (-log|R_j|).
  LpProblem lp(m);
  for (int j = 0; j < m; ++j) lp.SetObjective(j, -log_sizes[j]);
  for (int v = 0; v < query.num_vars(); ++v) {
    std::vector<LpTerm> terms;
    for (int j = 0; j < m; ++j) {
      if (Contains(query.atom(j).var_set(), v)) terms.push_back({j, 1.0});
    }
    lp.AddConstraint(std::move(terms), LpSense::kGe, 1.0);
  }
  LpResult res = SolveLp(lp);
  assert(res.status == LpStatus::kOptimal);
  AgmResult out;
  out.log2_bound = -res.objective;
  out.cover = res.x;
  return out;
}

AgmResult AgmBound(const Query& query, const Catalog& catalog) {
  return AgmBound(query, AtomLogSizes(query, catalog));
}

}  // namespace lpb
