#include "bounds/sensitivity.h"

#include <algorithm>
#include <cstdio>

#include "entropy/shannon.h"

namespace lpb {

std::vector<SensitivityEntry> AnalyzeSensitivity(
    const BoundResult& result, const std::vector<ConcreteStatistic>& stats,
    double eps) {
  std::vector<SensitivityEntry> out;
  out.reserve(stats.size());
  for (size_t i = 0; i < stats.size(); ++i) {
    SensitivityEntry e;
    e.stat_index = static_cast<int>(i);
    e.weight = i < result.weights.size() ? result.weights[i] : 0.0;
    e.slack = stats[i].log_b - Evaluate(stats[i].Lhs(), result.h_opt);
    e.binding = e.slack <= eps;
    out.push_back(e);
  }
  return out;
}

std::string FormatSensitivity(const std::vector<SensitivityEntry>& entries,
                              const std::vector<ConcreteStatistic>& stats) {
  std::vector<SensitivityEntry> sorted = entries;
  std::sort(sorted.begin(), sorted.end(),
            [](const SensitivityEntry& a, const SensitivityEntry& b) {
              return a.weight > b.weight;
            });
  std::string out;
  char buf[256];
  for (const SensitivityEntry& e : sorted) {
    const std::string& label = stats[e.stat_index].label.empty()
                                   ? "stat#" + std::to_string(e.stat_index)
                                   : stats[e.stat_index].label;
    std::snprintf(buf, sizeof(buf), "  w=%-8.4f slack=%-8.4f %s %s\n",
                  e.weight, e.slack, e.binding ? "[binding]" : "[slack]  ",
                  label.c_str());
    out += buf;
  }
  return out;
}

}  // namespace lpb
