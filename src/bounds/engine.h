// The polymatroid bound engine (Contributions 1 & 4 of the paper).
//
// Computes Log-L-Bound_Γn(Σ, b) = max { h(X) : h ∈ Γn, h |= (Σ, b) }
// (Eq. (36)), which by Theorem 5.2 equals Log-U-Bound_Γn — the best upper
// bound on log2 |Q(D)| derivable from Shannon inequalities and the given
// ℓp-norm statistics (Theorem 1.1). The LP has one variable per nonempty
// subset of query variables; Shannon constraints are either fully
// materialized (small n) or generated lazily by a cutting-plane loop that
// adds the most violated elemental inequalities until the optimum is
// Shannon-feasible.
//
// == Compile/evaluate architecture ==
//
// The bound LP factors cleanly into structure and values: the constraint
// matrix depends only on the query's variable count and the statistic
// *shapes* (σ = (V|U), p), while the concrete ℓp-norm values log_b enter
// solely through the right-hand side. Two evaluation styles exploit this:
//
//   * One-shot (this header): PolymatroidBound / NormalPolymatroidBound /
//     LpNormBound build and solve a fresh LP per call. Use these for
//     single bounds, for the worst-case-database α* coefficients, and in
//     tests as the reference the compiled path must reproduce.
//   * Compile-once / evaluate-many (bounds/bound_engine.h): a BoundEngine
//     compiles a structure into a CompiledBound whose Evaluate(log_b)
//     first tries the cached dual witness (the previous optimal basis,
//     re-priced with one matrix-vector product and a dot product), then a
//     warm dual-simplex re-solve, then a cold solve. Use this — via
//     CardinalityAdvisor — whenever the same query template is estimated
//     against many statistics snapshots.
//
// == Engine selection ==
//
//   * "normal" (Nn, bounds/normal_engine.h): exact and fast whenever every
//     statistic is simple (|U| <= 1, Theorem 6.1) — the common case of
//     per-join-column degree sequences; scales to n = 20. Unsound for
//     non-simple statistics.
//   * "gamma" (Γn, this header): the general engine. Full elemental
//     lattice for n <= full_lattice_max_n, cutting-plane beyond that
//     (experimental past n ≈ 7; see EngineOptions).
//   * "auto": normal when all shapes are simple, gamma otherwise — what
//     the advisor uses.
//   * "agm" / "panda": the classic special cases, as shape filters on top
//     of "auto" ({1}: cardinalities only; {1,∞}).
#ifndef LPB_BOUNDS_ENGINE_H_
#define LPB_BOUNDS_ENGINE_H_

#include <vector>

#include "entropy/set_function.h"
#include "lp/simplex.h"
#include "stats/statistic.h"

namespace lpb {

struct EngineOptions {
  // Materialize every elemental inequality when n <= this; otherwise run
  // the cutting-plane loop. NOTE: the dense-tableau simplex grinds on the
  // extremely degenerate relaxations the cutting plane produces beyond
  // n ≈ 7, so the cutting-plane mode is best treated as experimental for
  // larger n; every workload in the paper either fits the full lattice
  // (n <= 8, arbitrary statistics) or uses simple statistics, where the
  // normal-polymatroid engine is exact (Theorem 6.1) and fast to n = 20.
  int full_lattice_max_n = 8;
  int max_cut_rounds = 500;
  int cuts_per_round = 256;
  double feasibility_eps = 1e-7;
  // LP solver configuration, including the backend (dense tableau vs
  // sparse revised simplex; see lp/tableau.h). The revised backend is what
  // makes cutting-plane Γn compiles tractable past n ≈ 7.
  SimplexOptions simplex;
};

struct BoundResult {
  // True if the LP solved; false on solver failure (see status).
  LpStatus status = LpStatus::kIterationLimit;
  // log2 of the output-size bound; +infinity when the statistics do not
  // bound the query at all (LP unbounded).
  double log2_bound = 0.0;
  // Dual weight w_i per input statistic: the coefficients of the witness
  // Σ-inequality (8) certifying the bound; Σ_i w_i log_b_i == log2_bound.
  std::vector<double> weights;
  // The optimal polymatroid h* (lower-bound witness of Theorem 5.2).
  SetFunction h_opt;
  int cut_rounds = 0;
  int lp_iterations = 0;
  // How the underlying LP was evaluated. Always kCold for the one-shot
  // entry points; CompiledBound::Evaluate reports witness/warm reuse here.
  LpEvalPath eval_path = LpEvalPath::kCold;
  // Which LP backend served this bound (dense tableau or revised simplex);
  // surfaced through CardinalityAdvisor::Explain.
  LpBackendKind lp_backend = LpBackendKind::kDense;
  // Which pricing rule the LP's primal phases ran (always kDantzig from
  // the dense backend).
  PricingRule lp_pricing = PricingRule::kDantzig;
  // Solver pivot/update/refactorization counters, summed over every LP
  // call this evaluation made (unlike lp_iterations, which reports the
  // final solve only, these cover all cut-growth rounds too). Aggregated
  // into AdvisorMetrics and the bench_throughput pivot gates.
  LpSolveStats lp_stats;

  bool ok() const { return status == LpStatus::kOptimal; }
  bool unbounded() const { return status == LpStatus::kUnbounded; }
};

// Computes the polymatroid bound over n query variables from the given
// concrete statistics (each statistic contributes the constraint
// (1/p)h(U) + h(V|U) <= log_b, Lemma 4.1).
BoundResult PolymatroidBound(int n, const std::vector<ConcreteStatistic>& stats,
                             const EngineOptions& options = {});

// Filters for the classic special cases:
//   AGM ({1}): only cardinality assertions (p == 1, U == ∅);
//   PANDA ({1,∞}): only p ∈ {1, ∞} statistics.
std::vector<ConcreteStatistic> FilterAgmStatistics(
    const std::vector<ConcreteStatistic>& stats);
std::vector<ConcreteStatistic> FilterPandaStatistics(
    const std::vector<ConcreteStatistic>& stats);

}  // namespace lpb

#endif  // LPB_BOUNDS_ENGINE_H_
