// Compile-once / evaluate-many bound pipeline.
//
// The bound LP of Eq. (36) splits into a *structure* — the query's variable
// count plus the shapes (σ, p) of the available statistics, which fix the
// constraint matrix and objective — and *values* — the concrete ℓp-norm
// measurements log_b, which only enter the right-hand side. A BoundEngine
// compiles a structure once into a CompiledBound; each Evaluate(log_b) then
// reuses the cached optimal basis of the previous evaluation:
//
//   1. witness reuse — if the cached basis is still primal-feasible at the
//      new RHS (checked by re-pricing B⁻¹b', a rows × nnz(b') product), the
//      bound is the cached dual witness applied to the new values,
//      Σ_i w_i · log_b_i — a dot product, no simplex pivots at all;
//   2. warm re-solve — otherwise dual-simplex pivots from the still-dual-
//      feasible cached basis (lp/tableau.h);
//   3. cold solve — full two-phase simplex as a last resort.
//
// This is the LP analogue of a plan skeleton reused across invocations:
// optimizer probes against a repeated query template pay for statistics
// lookup plus a dot product, not an LP build-and-solve.
#ifndef LPB_BOUNDS_BOUND_ENGINE_H_
#define LPB_BOUNDS_BOUND_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bounds/engine.h"
#include "stats/statistic.h"

namespace lpb {

// The shape of a statistic: everything except the concrete value. Guard
// atoms and labels are provenance, not LP inputs, so they are excluded —
// two queries whose statistics agree on (n, σ, p) share one CompiledBound
// even when the guarded relations differ.
struct StatisticShape {
  Conditional sigma;
  double p = 1.0;
};

// The structural half of a bound computation. The statistic shapes fully
// determine the LP (the query hypergraph enters only through them), so this
// is the cache key for compiled bounds.
struct BoundStructure {
  int n = 0;
  std::vector<StatisticShape> shapes;

  bool AllShapesSimple() const;
};

// Splits a concrete statistics vector into its shape and value halves;
// Evaluate's `log_b` argument is aligned with StructureOf(...).shapes.
BoundStructure StructureOf(int n, const std::vector<ConcreteStatistic>& stats);
std::vector<double> ValuesOf(const std::vector<ConcreteStatistic>& stats);

// Canonical byte encoding of a structure, usable as a hash/map cache key.
std::string StructureKey(const BoundStructure& structure);

// Shape predicates of the classic filtered bounds — the single definition
// shared by the "agm"/"panda" engines and FilterAgmStatistics /
// FilterPandaStatistics (bounds/engine.h).
bool IsAgmShape(const StatisticShape& shape);    // p = 1, U = ∅
bool IsPandaShape(const StatisticShape& shape);  // p ∈ {1, ∞}

// Cumulative evaluation-path counters of one CompiledBound.
struct EvalCounters {
  uint64_t evaluations = 0;
  uint64_t witness_hits = 0;   // cached basis still optimal: dot product only
  uint64_t warm_resolves = 0;  // dual-simplex pivots from the cached basis
  uint64_t cold_solves = 0;    // full two-phase solve (incl. cut growth)
};

// A bound compiled for one structure. Not thread-safe: Evaluate and
// EvaluateBatch mutate the cached basis (and, for the Γn engine, the cut
// set); callers sharing a CompiledBound across threads must serialize both
// (the advisor keeps a per-entry mutex, held across a whole batch).
class CompiledBound {
 public:
  virtual ~CompiledBound() = default;

  // Evaluates the bound at the given statistic values (aligned with
  // structure().shapes). `want_h_opt` materializes the optimal polymatroid
  // h* in the result — an O(2^n) copy that pure estimation loops skip.
  BoundResult Evaluate(const std::vector<double>& log_b,
                       bool want_h_opt = true);

  // Evaluates the bound at every value vector of `log_b_batch`, in order.
  // For the fixed-matrix engines, results (including eval paths and
  // counters) are identical to calling Evaluate per vector — the cached
  // basis evolves across the batch exactly as it would across scalar
  // calls — but the batch amortizes the per-evaluation machinery: the
  // LP-backed engines push the whole block through
  // SimplexTableau::ResolveWithRhsBatch, so witness-valid columns share
  // one factorization and one cached-duals read (see lp/tableau.h). The
  // cutting-plane Γn engine shares its cut pool across the batch instead:
  // converged columns ride the block resolve and only columns that still
  // separate new cuts pay scalar top-up rounds, so bounds match the scalar
  // sequence to floating-point tolerance (both converge the same cut
  // family) rather than bitwise. `want_h_opt` defaults to *false* here,
  // unlike Evaluate: batched callers are optimizer probe loops that only
  // want the bound values.
  std::vector<BoundResult> EvaluateBatch(
      std::span<const std::vector<double>> log_b_batch,
      bool want_h_opt = false);

  const BoundStructure& structure() const { return structure_; }
  const EvalCounters& counters() const { return counters_; }

 protected:
  explicit CompiledBound(BoundStructure structure)
      : structure_(std::move(structure)) {}
  virtual BoundResult EvaluateImpl(const std::vector<double>& log_b,
                                   bool want_h_opt) = 0;
  // Batch hook. The base implementation is the sequential scalar loop —
  // always correct, since the scalar sequence is the batch's contract; the
  // gamma (full-lattice mode) and normal engines override it to hand
  // maximal runs of columns to the tableau's multi-RHS resolve.
  virtual std::vector<BoundResult> EvaluateBatchImpl(
      std::span<const std::vector<double>> log_b_batch, bool want_h_opt);

  BoundStructure structure_;

 private:
  void Record(const BoundResult& result);

  EvalCounters counters_;
};

// A family of bounds: knows which structures it can soundly handle and how
// to compile them. Engines are stateless singletons owned by the registry.
class BoundEngine {
 public:
  virtual ~BoundEngine() = default;

  virtual std::string_view name() const = 0;
  // False when compiling this structure would yield an unsound bound
  // (e.g. the normal engine on non-simple shapes).
  virtual bool Supports(const BoundStructure& structure) const = 0;
  virtual std::unique_ptr<CompiledBound> Compile(
      const BoundStructure& structure,
      const EngineOptions& options = {}) const = 0;
};

// Registry. Engines: "gamma" (Γn), "normal" (Nn, simple shapes only),
// "auto" (normal when sound, else gamma — the advisor's default), and the
// shape-filtered classics "agm" ({1}) and "panda" ({1,∞}). Returns nullptr
// for unknown names.
const BoundEngine* FindBoundEngine(std::string_view name);
std::vector<std::string_view> BoundEngineNames();

}  // namespace lpb

#endif  // LPB_BOUNDS_BOUND_ENGINE_H_
