#include "bounds/modular.h"

#include <cassert>

#include "lp/lp_problem.h"
#include "lp/simplex.h"
#include "relation/degree_sequence.h"

namespace lpb {

ModularBoundResult ModularBound(int n,
                                const std::vector<ConcreteStatistic>& stats) {
  assert(n >= 1 && n <= kMaxVars);
  LpProblem lp(n);
  for (int i = 0; i < n; ++i) lp.SetObjective(i, 1.0);
  for (const ConcreteStatistic& stat : stats) {
    const double inv_p = (stat.p >= kInfNorm / 2) ? 0.0 : 1.0 / stat.p;
    std::vector<LpTerm> terms;
    for (int i = 0; i < n; ++i) {
      double coef = 0.0;
      if (Contains(stat.sigma.u, i)) {
        coef = inv_p;
      } else if (Contains(stat.sigma.v, i)) {
        coef = 1.0;
      }
      if (coef != 0.0) terms.push_back({i, coef});
    }
    lp.AddConstraint(std::move(terms), LpSense::kLe, stat.log_b);
  }

  LpResult lp_result = SolveLp(lp);
  ModularBoundResult result;
  result.base.status = lp_result.status;
  result.base.lp_iterations = lp_result.iterations;
  if (lp_result.status == LpStatus::kUnbounded) {
    result.base.log2_bound = kInfNorm;
    return result;
  }
  if (lp_result.status != LpStatus::kOptimal) return result;
  result.base.log2_bound = lp_result.objective;
  result.base.weights = lp_result.duals;
  result.var_weights = lp_result.x;
  result.base.h_opt = SetFunction::Modular(n, lp_result.x);
  return result;
}

}  // namespace lpb
