#include "bounds/normal_engine.h"

#include <cassert>

#include "lp/lp_problem.h"
#include "lp/simplex.h"
#include "relation/degree_sequence.h"

namespace lpb {

LpProblem BuildNormalBoundLp(int n,
                             const std::vector<ConcreteStatistic>& stats) {
  const VarSet full = FullSet(n);
  const int num_vars = static_cast<int>(full);  // α_W for W = 1 .. full

  // maximize Σ_W α_W  (h_W(X) = 1 for every nonempty W)
  LpProblem lp(num_vars);
  for (int w = 0; w < num_vars; ++w) lp.SetObjective(w, 1.0);

  // Per statistic: Σ_W α_W · [ (1/p)·1{W∩U≠∅} + 1{W∩V≠∅ ∧ W∩U=∅} ] <= log_b.
  for (const ConcreteStatistic& stat : stats) {
    const double inv_p = (stat.p >= kInfNorm / 2) ? 0.0 : 1.0 / stat.p;
    std::vector<LpTerm> terms;
    for (VarSet w = 1; w <= full; ++w) {
      double coef = 0.0;
      if (Intersects(w, stat.sigma.u)) {
        coef += inv_p;
      } else if (Intersects(w, stat.sigma.v)) {
        coef += 1.0;
      }
      if (coef != 0.0) terms.push_back({static_cast<int>(w) - 1, coef});
    }
    lp.AddConstraint(std::move(terms), LpSense::kLe, stat.log_b);
  }
  return lp;
}

NormalBoundResult NormalPolymatroidBound(
    int n, const std::vector<ConcreteStatistic>& stats, bool require_simple,
    const SimplexOptions& simplex) {
  assert(n >= 1 && n <= kMaxVars);
  if (require_simple) assert(AllSimple(stats));
  const VarSet full = FullSet(n);
  const int num_vars = static_cast<int>(full);  // α_W for W = 1 .. full

  LpResult lp_result = SolveLp(BuildNormalBoundLp(n, stats), simplex);
  NormalBoundResult result;
  result.base.status = lp_result.status;
  result.base.lp_iterations = lp_result.iterations;
  result.base.lp_backend = lp_result.backend;
  result.base.lp_pricing = lp_result.pricing;
  result.base.lp_stats = lp_result.stats;
  if (lp_result.status == LpStatus::kUnbounded) {
    result.base.log2_bound = kInfNorm;
    return result;
  }
  if (lp_result.status != LpStatus::kOptimal) return result;

  result.base.log2_bound = lp_result.objective;
  result.base.weights = lp_result.duals;
  result.alpha.assign(num_vars + 1, 0.0);
  for (int w = 0; w < num_vars; ++w) result.alpha[w + 1] = lp_result.x[w];
  result.base.h_opt = SetFunction::NormalCombination(n, result.alpha);
  return result;
}

BoundResult LpNormBound(int n, const std::vector<ConcreteStatistic>& stats,
                        const EngineOptions& options) {
  if (AllSimple(stats)) {
    return NormalPolymatroidBound(n, stats, /*require_simple=*/true,
                                  options.simplex)
        .base;
  }
  return PolymatroidBound(n, stats, options);
}

}  // namespace lpb
