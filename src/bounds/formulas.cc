#include "bounds/formulas.h"

#include <algorithm>
#include <cassert>

namespace lpb {

double TriangleAgmLog2(double log_r, double log_s, double log_t) {
  return 0.5 * (log_r + log_s + log_t);
}

double TrianglePandaLog2(double log_r, double log_inf_s_zy) {
  return log_r + log_inf_s_zy;
}

double TriangleL2Log2(double log2_r_yx, double log2_s_zy, double log2_t_xz) {
  return (2.0 / 3.0) * (log2_r_yx + log2_s_zy + log2_t_xz);
}

double TriangleL3Log2(double log3_r_yx, double log3_s_yz, double log_t) {
  return (3.0 * log3_r_yx + 3.0 * log3_s_yz + 5.0 * log_t) / 6.0;
}

double JoinPandaLog2(double log_r, double log_s, double log_inf_r_xy,
                     double log_inf_s_zy) {
  return std::min(log_s + log_inf_r_xy, log_r + log_inf_s_zy);
}

double JoinL2Log2(double log2_r_xy, double log2_s_zy) {
  return log2_r_xy + log2_s_zy;
}

double JoinHolderLog2(double logp_r_xy, double logq_s_zy, double log_m,
                      double p, double q) {
  assert(1.0 / p + 1.0 / q <= 1.0 + 1e-12);
  return logp_r_xy + logq_s_zy + (1.0 - 1.0 / p - 1.0 / q) * log_m;
}

double JoinEq19Log2(double logp_r_xy, double logq_s_zy, double log_s,
                    double p, double q) {
  assert(1.0 / p + 1.0 / q <= 1.0 + 1e-12);
  const double e = q / (p * (q - 1.0));
  assert(e <= 1.0 + 1e-12);
  return logp_r_xy + e * logq_s_zy + (1.0 - e) * log_s;
}

double ChainLog2(double log_r1, double log2_r2_back, double last_logp,
                 const std::vector<double>& mid_logp1, double p) {
  assert(p >= 2.0);
  double acc = (p - 2.0) * log_r1 + 2.0 * log2_r2_back + p * last_logp;
  for (double v : mid_logp1) acc += (p - 1.0) * v;
  return acc / p;
}

double CycleLog2(const std::vector<double>& logq_per_atom, double q) {
  double acc = 0.0;
  for (double v : logq_per_atom) acc += v;
  return acc * q / (q + 1.0);
}

double CycleAgmLog2(double log_r, int k) { return 0.5 * k * log_r; }

double CyclePandaLog2(double log_r, double log_inf, int k) {
  return log_r + (k - 2) * log_inf;
}

double LoomisWhitney4Log2(double log2_a, double log_b, double log2_c,
                          double log_d) {
  return (2.0 * log2_a + log_b + 2.0 * log2_c + log_d) / 4.0;
}

}  // namespace lpb
