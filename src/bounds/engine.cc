#include "bounds/engine.h"

#include <algorithm>
#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

#include "entropy/shannon.h"
#include "lp/lp_problem.h"
#include "relation/degree_sequence.h"

namespace lpb {
namespace {

// Box bound on h(X) used during cutting-plane solves keeps the relaxation
// bounded; a converged optimum at the box means the statistics genuinely do
// not bound the query. The box is derived from the statistics (sum of
// p-weighted budgets) rather than a huge constant: any witness inequality
// (8) certifying a finite bound uses weight at most p_i on statistic i once
// the h(U_i) side must also be covered, so the box dominates every finite
// bound, while staying small enough that the simplex does not grind across
// an enormous degenerate face at the box.
double BoxBound(int n, const std::vector<ConcreteStatistic>& stats) {
  double box = 10.0;
  for (const ConcreteStatistic& s : stats) {
    const double p_factor =
        (s.p >= kInfNorm / 2) ? 1.0 : std::min<double>(s.p, n);
    box += std::max(s.log_b, 0.0) * std::max(1.0, p_factor);
  }
  return box;
}

std::vector<LpTerm> FormToTerms(const LinearForm& form) {
  std::vector<LpTerm> terms;
  for (const EntropyTerm& t : form) {
    if (t.set == 0 || t.coef == 0.0) continue;  // h(∅) is pinned to 0
    terms.push_back({static_cast<int>(t.set) - 1, t.coef});
  }
  return terms;
}

// An elemental Shannon cut, identified for dedup purposes.
struct Cut {
  int i;     // first variable
  int j;     // second variable, or -1 for monotonicity
  VarSet s;  // conditioning set (submodularity only)

  uint64_t Key() const {
    return (static_cast<uint64_t>(i) << 40) |
           (static_cast<uint64_t>(j + 1) << 32) | s;
  }
  LinearForm Form(int n) const {
    if (j < 0) {
      const VarSet full = FullSet(n);
      return {{full, 1.0}, {full & ~VarBit(i), -1.0}};
    }
    const VarSet bi = VarBit(i), bj = VarBit(j);
    LinearForm f = {{s | bi, 1.0}, {s | bj, 1.0}, {s | bi | bj, -1.0}};
    if (s != 0) f.push_back({s, -1.0});
    return f;
  }
};

// Violation of the cut at the point h (negative = violated).
double CutValue(const Cut& cut, int n, const std::vector<double>& x) {
  auto h = [&](VarSet set) { return set == 0 ? 0.0 : x[set - 1]; };
  if (cut.j < 0) {
    const VarSet full = FullSet(n);
    return h(full) - h(full & ~VarBit(cut.i));
  }
  const VarSet bi = VarBit(cut.i), bj = VarBit(cut.j);
  return h(cut.s | bi) + h(cut.s | bj) - h(cut.s | bi | bj) - h(cut.s);
}

// Scans every elemental inequality and returns the most violated ones.
std::vector<Cut> FindViolatedCuts(int n, const std::vector<double>& x,
                                  const std::set<uint64_t>& present,
                                  int max_cuts, double eps) {
  std::vector<std::pair<double, Cut>> violated;
  const VarSet full = FullSet(n);
  for (int i = 0; i < n; ++i) {
    Cut cut{i, -1, 0};
    double v = CutValue(cut, n, x);
    if (v < -eps && !present.count(cut.Key())) violated.push_back({v, cut});
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const VarSet rest = full & ~(VarBit(i) | VarBit(j));
      for (VarSet s : SubsetRange(rest)) {
        Cut cut{i, j, s};
        double v = CutValue(cut, n, x);
        if (v < -eps && !present.count(cut.Key())) {
          violated.push_back({v, cut});
        }
      }
    }
  }
  std::sort(violated.begin(), violated.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (static_cast<int>(violated.size()) > max_cuts) violated.resize(max_cuts);
  std::vector<Cut> cuts;
  cuts.reserve(violated.size());
  for (const auto& [v, cut] : violated) cuts.push_back(cut);
  return cuts;
}

BoundResult MakeResult(const LpResult& lp, int n, int num_stats,
                       int cut_rounds) {
  BoundResult result;
  result.status = lp.status;
  result.cut_rounds = cut_rounds;
  result.lp_iterations = lp.iterations;
  if (lp.status == LpStatus::kUnbounded) {
    result.log2_bound = kInfNorm;
    return result;
  }
  if (lp.status != LpStatus::kOptimal) return result;
  result.log2_bound = lp.objective;
  result.weights.assign(lp.duals.begin(), lp.duals.begin() + num_stats);
  result.h_opt = SetFunction(n);
  const VarSet full = FullSet(n);
  for (VarSet s = 1; s <= full; ++s) result.h_opt[s] = lp.x[s - 1];
  return result;
}

}  // namespace

BoundResult PolymatroidBound(int n, const std::vector<ConcreteStatistic>& stats,
                             const EngineOptions& options) {
  assert(n >= 1 && n <= kMaxVars);
  const int num_vars = (1 << n) - 1;
  const VarSet full = FullSet(n);

  LpProblem lp(num_vars);
  lp.SetObjective(static_cast<int>(full) - 1, 1.0);
  // Statistics constraints come first so duals[i] is the weight of stats[i].
  for (const ConcreteStatistic& stat : stats) {
    lp.AddConstraint(FormToTerms(stat.Lhs()), LpSense::kLe, stat.log_b);
  }
  const int num_stats = static_cast<int>(stats.size());

  if (n <= options.full_lattice_max_n) {
    for (const LinearForm& ineq : ElementalInequalities(n)) {
      lp.AddConstraint(FormToTerms(ineq), LpSense::kGe, 0.0);
    }
    return MakeResult(SolveLp(lp), n, num_stats, /*cut_rounds=*/0);
  }

  // Cutting-plane mode. Box the objective so the relaxation stays bounded,
  // then seed with the monotonicity cuts and the submodularities whose
  // conditioning set is small (|S| <= 1) or maximal — the cuts that drive
  // chain-style bounds — so the first relaxations are already close to
  // bounded and the solver does not grind on the box face.
  const double box = BoxBound(n, stats);
  lp.AddConstraint({{static_cast<int>(full) - 1, 1.0}}, LpSense::kLe, box);
  std::set<uint64_t> present;
  auto add_cut = [&](const Cut& cut) {
    present.insert(cut.Key());
    lp.AddConstraint(FormToTerms(cut.Form(n)), LpSense::kGe, 0.0);
  };
  for (int i = 0; i < n; ++i) add_cut(Cut{i, -1, 0});
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const VarSet ij = VarBit(i) | VarBit(j);
      add_cut(Cut{i, j, 0});
      add_cut(Cut{i, j, full & ~ij});
      const VarSet rest = full & ~ij;
      for (int k : VarRange(rest)) add_cut(Cut{i, j, VarBit(k)});
    }
  }

  LpResult lp_result;
  int round = 0;
  for (; round < options.max_cut_rounds; ++round) {
    lp_result = SolveLp(lp);
    if (lp_result.status != LpStatus::kOptimal) break;
    std::vector<Cut> cuts =
        FindViolatedCuts(n, lp_result.x, present, options.cuts_per_round,
                         options.feasibility_eps);
    if (cuts.empty()) break;
    for (const Cut& cut : cuts) add_cut(cut);
  }

  BoundResult result = MakeResult(lp_result, n, num_stats, round);
  if (result.ok() && result.log2_bound >= box * (1.0 - 1e-9)) {
    // Shannon-feasible optimum pinned at the box: genuinely unbounded.
    result.status = LpStatus::kUnbounded;
    result.log2_bound = kInfNorm;
  }
  return result;
}

std::vector<ConcreteStatistic> FilterAgmStatistics(
    const std::vector<ConcreteStatistic>& stats) {
  std::vector<ConcreteStatistic> out;
  for (const ConcreteStatistic& s : stats) {
    if (s.p == 1.0 && s.sigma.u == 0) out.push_back(s);
  }
  return out;
}

std::vector<ConcreteStatistic> FilterPandaStatistics(
    const std::vector<ConcreteStatistic>& stats) {
  std::vector<ConcreteStatistic> out;
  for (const ConcreteStatistic& s : stats) {
    if (s.p == 1.0 || s.p >= kInfNorm / 2) out.push_back(s);
  }
  return out;
}

}  // namespace lpb
