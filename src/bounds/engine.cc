#include "bounds/engine.h"

#include <cassert>
#include <cmath>
#include <set>

#include "bounds/bound_engine.h"
#include "bounds/shannon_cuts.h"
#include "entropy/shannon.h"
#include "lp/lp_problem.h"
#include "relation/degree_sequence.h"

namespace lpb {
namespace {

double BoxBound(int n, const std::vector<ConcreteStatistic>& stats) {
  std::vector<double> ps, log_bs;
  ps.reserve(stats.size());
  log_bs.reserve(stats.size());
  for (const ConcreteStatistic& s : stats) {
    ps.push_back(s.p);
    log_bs.push_back(s.log_b);
  }
  return GammaBoxBound(n, ps, log_bs);
}

BoundResult MakeResult(const LpResult& lp, int n, int num_stats,
                       int cut_rounds) {
  BoundResult result;
  result.status = lp.status;
  result.cut_rounds = cut_rounds;
  result.lp_iterations = lp.iterations;
  result.lp_backend = lp.backend;
  result.lp_pricing = lp.pricing;
  result.lp_stats = lp.stats;
  if (lp.status == LpStatus::kUnbounded) {
    result.log2_bound = kInfNorm;
    return result;
  }
  if (lp.status != LpStatus::kOptimal) return result;
  result.log2_bound = lp.objective;
  result.weights.assign(lp.duals.begin(), lp.duals.begin() + num_stats);
  result.h_opt = SetFunction(n);
  const VarSet full = FullSet(n);
  for (VarSet s = 1; s <= full; ++s) result.h_opt[s] = lp.x[s - 1];
  return result;
}

}  // namespace

BoundResult PolymatroidBound(int n, const std::vector<ConcreteStatistic>& stats,
                             const EngineOptions& options) {
  assert(n >= 1 && n <= kMaxVars);
  const int num_vars = (1 << n) - 1;
  const VarSet full = FullSet(n);

  LpProblem lp(num_vars);
  lp.SetObjective(static_cast<int>(full) - 1, 1.0);
  // Statistics constraints come first so duals[i] is the weight of stats[i].
  for (const ConcreteStatistic& stat : stats) {
    lp.AddConstraint(FormToTerms(stat.Lhs()), LpSense::kLe, stat.log_b);
  }
  const int num_stats = static_cast<int>(stats.size());

  if (n <= options.full_lattice_max_n) {
    for (const LinearForm& ineq : ElementalInequalities(n)) {
      lp.AddConstraint(FormToTerms(ineq), LpSense::kGe, 0.0);
    }
    return MakeResult(SolveLp(lp, options.simplex), n, num_stats,
                      /*cut_rounds=*/0);
  }

  // Cutting-plane mode. Box the objective so the relaxation stays bounded,
  // then seed with the cuts that drive chain-style bounds (see
  // SeedShannonCuts).
  const double box = BoxBound(n, stats);
  lp.AddConstraint({{static_cast<int>(full) - 1, 1.0}}, LpSense::kLe, box);
  std::set<uint64_t> present;
  auto add_cut = [&](const ShannonCut& cut) {
    present.insert(cut.Key());
    lp.AddConstraint(FormToTerms(cut.Form(n)), LpSense::kGe, 0.0);
  };
  for (const ShannonCut& cut : SeedShannonCuts(n)) add_cut(cut);

  LpResult lp_result;
  int round = 0;
  for (; round < options.max_cut_rounds; ++round) {
    lp_result = SolveLp(lp, options.simplex);
    if (lp_result.status != LpStatus::kOptimal) break;
    std::vector<ShannonCut> cuts =
        FindViolatedShannonCuts(n, lp_result.x, present, options.cuts_per_round,
                                options.feasibility_eps);
    if (cuts.empty()) break;
    for (const ShannonCut& cut : cuts) add_cut(cut);
  }

  BoundResult result = MakeResult(lp_result, n, num_stats, round);
  if (result.ok() && result.log2_bound >= box * (1.0 - 1e-9)) {
    // Shannon-feasible optimum pinned at the box: genuinely unbounded.
    result.status = LpStatus::kUnbounded;
    result.log2_bound = kInfNorm;
  }
  return result;
}

std::vector<ConcreteStatistic> FilterAgmStatistics(
    const std::vector<ConcreteStatistic>& stats) {
  std::vector<ConcreteStatistic> out;
  for (const ConcreteStatistic& s : stats) {
    if (IsAgmShape({s.sigma, s.p})) out.push_back(s);
  }
  return out;
}

std::vector<ConcreteStatistic> FilterPandaStatistics(
    const std::vector<ConcreteStatistic>& stats) {
  std::vector<ConcreteStatistic> out;
  for (const ConcreteStatistic& s : stats) {
    if (IsPandaShape({s.sigma, s.p})) out.push_back(s);
  }
  return out;
}

}  // namespace lpb
