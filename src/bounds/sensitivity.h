// Dual-based sensitivity analysis of a computed bound.
//
// The bound engines return the LP duals w_i of the statistics constraints
// — the coefficients of the witness inequality (8). Standard LP
// sensitivity reads off:
//   * w_i > 0  <=>  the statistic is *binding*: improving it by δ bits
//     (collecting a sharper norm) lowers the bound by ~w_i·δ bits;
//   * slack > 0 <=> the statistic is redundant at the optimum: small
//     improvements cannot change the bound at all.
// This turns the engine into an advisor for WHICH statistics a system
// should maintain — the practical question behind the paper's observation
// that the JOB queries used norms from all over {1..30, ∞}.
#ifndef LPB_BOUNDS_SENSITIVITY_H_
#define LPB_BOUNDS_SENSITIVITY_H_

#include <string>
#include <vector>

#include "bounds/engine.h"
#include "stats/statistic.h"

namespace lpb {

struct SensitivityEntry {
  int stat_index = 0;
  double weight = 0.0;  // dual w_i: d(bound)/d(log_b_i)
  double slack = 0.0;   // log_b_i - h*(lhs_i): 0 when binding
  bool binding = false;
};

// Per-statistic sensitivities for a solved bound. `result.h_opt` and
// `result.weights` must come from PolymatroidBound / NormalPolymatroidBound
// on exactly these statistics.
std::vector<SensitivityEntry> AnalyzeSensitivity(
    const BoundResult& result, const std::vector<ConcreteStatistic>& stats,
    double eps = 1e-6);

// Human-readable report, most influential statistics first.
std::string FormatSensitivity(const std::vector<SensitivityEntry>& entries,
                              const std::vector<ConcreteStatistic>& stats);

}  // namespace lpb

#endif  // LPB_BOUNDS_SENSITIVITY_H_
