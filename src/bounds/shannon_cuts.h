// Elemental-inequality cut oracle shared by the Γn bound engines.
//
// The cutting-plane mode of the polymatroid bound (bounds/engine.cc) and
// its compiled counterpart (bounds/bound_engine.cc) relax Γn to a growing
// set of elemental Shannon inequalities. This header holds the pieces both
// need: the cut representation, the violation scan, the seed cut set, and
// the statistics-derived box that keeps the relaxation bounded.
#ifndef LPB_BOUNDS_SHANNON_CUTS_H_
#define LPB_BOUNDS_SHANNON_CUTS_H_

#include <cstdint>
#include <set>
#include <vector>

#include "entropy/shannon.h"
#include "lp/lp_problem.h"
#include "util/bits.h"

namespace lpb {

// An elemental Shannon cut, identified for dedup purposes.
struct ShannonCut {
  int i = 0;     // first variable
  int j = -1;    // second variable, or -1 for monotonicity
  VarSet s = 0;  // conditioning set (submodularity only)

  uint64_t Key() const {
    return (static_cast<uint64_t>(i) << 40) |
           (static_cast<uint64_t>(j + 1) << 32) | s;
  }
  LinearForm Form(int n) const;
};

// Violation of the cut at the point h = x (negative = violated); x is the
// LP solution vector indexed by VarSet - 1.
double ShannonCutValue(const ShannonCut& cut, int n,
                       const std::vector<double>& x);

// Scans every elemental inequality and returns the most violated ones not
// already in `present` (keyed by ShannonCut::Key), at most `max_cuts`.
std::vector<ShannonCut> FindViolatedShannonCuts(int n,
                                                const std::vector<double>& x,
                                                const std::set<uint64_t>& present,
                                                int max_cuts, double eps);

// Flat index form of the full elemental scan, for the converged steady
// state where almost every evaluation ends with "no cut violated". Each
// inequality is four indices (a, b, c, d) into a shifted copy y of the
// solution (y[0] = h(∅) = 0, y[k] = x[k - 1]), with violation
// y[a] + y[b] - y[c] - y[d]; monotonicity cuts point b and d at slot 0.
// The uniform quadruple layout turns the scan into a branchless min
// reduction — no subset enumeration, no per-cut key lookups.
struct ShannonScanTable {
  std::vector<int32_t> idx;  // 4 entries per inequality
  int n = 0;
};

ShannonScanTable BuildShannonScanTable(int n);

// True when any elemental inequality is violated by more than eps at x —
// ignoring `present`, so a clean result proves FindViolatedShannonCuts
// would return empty (cuts already in the pool are LP rows, satisfied at
// any optimum to the solver's tighter tolerance). Callers use this as the
// cheap pre-check and fall back to the exact scan only when it fires.
// `scratch` holds the shifted copy between calls.
bool AnyViolatedShannonCut(const ShannonScanTable& table,
                           const std::vector<double>& x, double eps,
                           std::vector<double>& scratch);

// The seed cut set for a fresh cutting-plane solve: the monotonicity cuts
// and the submodularities whose conditioning set is small (|S| <= 1) or
// maximal — the cuts that drive chain-style bounds — so the first
// relaxations are already close to bounded and the solver does not grind
// on the box face.
std::vector<ShannonCut> SeedShannonCuts(int n);

// Box bound on h(X) used during cutting-plane solves: keeps the relaxation
// bounded; a converged optimum at the box means the statistics genuinely do
// not bound the query. The box is derived from the statistics (sum of
// p-weighted budgets) rather than a huge constant: any witness inequality
// (8) certifying a finite bound uses weight at most p_i on statistic i once
// the h(U_i) side must also be covered, so the box dominates every finite
// bound, while staying small enough that the simplex does not grind across
// an enormous degenerate face at the box. `ps` and `log_bs` are the per-
// statistic norm indices and values.
double GammaBoxBound(int n, const std::vector<double>& ps,
                     const std::vector<double>& log_bs);

// Lowers a sparse entropy linear form to LP terms over the h-variable
// layout (variable h(S) lives at column S - 1; h(∅) is pinned to 0).
std::vector<LpTerm> FormToTerms(const LinearForm& form);

}  // namespace lpb

#endif  // LPB_BOUNDS_SHANNON_CUTS_H_
