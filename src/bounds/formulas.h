// Closed-form ℓp bounds derived by hand in the paper, all in log2 domain.
//
// Each function takes measured log2-norms (log2 ||deg||_p, log2 |R|, ...)
// and returns log2 of the corresponding output-size bound. They serve as
// independent cross-checks of the LP engines (the engine optimum must never
// exceed any of these) and as the formulas quoted in the experiment tables.
#ifndef LPB_BOUNDS_FORMULAS_H_
#define LPB_BOUNDS_FORMULAS_H_

#include <vector>

namespace lpb {

// --- Triangle query Q(X,Y,Z) = R(X,Y) ∧ S(Y,Z) ∧ T(Z,X) ------------------

// AGM bound (2): (|R| |S| |T|)^{1/2}.
double TriangleAgmLog2(double log_r, double log_s, double log_t);

// PANDA bound (3): |R| · ||deg_S(Z|Y)||_∞.
double TrianglePandaLog2(double log_r, double log_inf_s_zy);

// ℓ2 bound (4): ( Π ||deg||_2^2 )^{1/3}.
double TriangleL2Log2(double log2_r_yx, double log2_s_zy, double log2_t_xz);

// ℓ3/ℓ1 bound (5): ( ||deg_R(Y|X)||_3^3 ||deg_S(Y|Z)||_3^3 |T|^5 )^{1/6}.
double TriangleL3Log2(double log3_r_yx, double log3_s_yz, double log_t);

// --- Single join Q(X,Y,Z) = R(X,Y) ∧ S(Y,Z) ------------------------------

// PANDA bound (17): min(|S|·||deg_R(X|Y)||_∞, |R|·||deg_S(Z|Y)||_∞).
double JoinPandaLog2(double log_r, double log_s, double log_inf_r_xy,
                     double log_inf_s_zy);

// Cauchy-Schwarz / ℓ2 bound (18): ||deg_R(X|Y)||_2 · ||deg_S(Z|Y)||_2.
double JoinL2Log2(double log2_r_xy, double log2_s_zy);

// Hölder bound (48): ||deg_R(X|Y)||_p ||deg_S(Z|Y)||_q M^{1-1/p-1/q},
// M = min(|Π_Y R|, |Π_Y S|); requires 1/p + 1/q <= 1.
double JoinHolderLog2(double logp_r_xy, double logq_s_zy, double log_m,
                      double p, double q);

// Bound (19): ||deg_R(X|Y)||_p · ||deg_S(Z|Y)||_q^{q/(p(q-1))}
//             · |S|^{1 - q/(p(q-1))}; requires 1/p + 1/q <= 1.
double JoinEq19Log2(double logp_r_xy, double logq_s_zy, double log_s,
                    double p, double q);

// --- Chain query Q = R_1(X1,X2) ∧ ... ∧ R_{n-1}(X_{n-1},X_n) --------------

// Bound from inequality (20), any real p >= 2:
//   |Q|^p <= |R_1|^{p-2} · ||deg_{R_2}(X1|X2)||_2^2
//            · Π_{i=2..n-2} ||deg_{R_i}(X_{i+1}|X_i)||_{p-1}^{p-1}
//            · ||deg_{R_{n-1}}(X_n|X_{n-1})||_p^p.
// `mid_logp1` holds log2||deg_{R_i}(X_{i+1}|X_i)||_{p-1} for i = 2..n-2.
double ChainLog2(double log_r1, double log2_r2_back, double last_logp,
                 const std::vector<double>& mid_logp1, double p);

// --- Cycle query of length k: Q = R_0(X0,X1) ∧ ... ∧ R_{k-1}(X_{k-1},X0) --

// Bound (21): |Q| <= Π_i ||deg_{R_i}(X_{i+1 mod k}|X_i)||_q^{q/(q+1)}.
double CycleLog2(const std::vector<double>& logq_per_atom, double q);

// Cycle AGM / PANDA baselines (52) for identical relations:
//   AGM: |R|^{k/2};  PANDA: |R| · ||deg_R(Y|X)||_∞^{k-2}.
double CycleAgmLog2(double log_r, int k);
double CyclePandaLog2(double log_r, double log_inf, int k);

// --- Loomis-Whitney n=4 (App. C.6) ----------------------------------------
// |Q|^4 <= ||deg_A(YZ|X)||_2^2 · |B| · ||deg_C(WX|Z)||_2^2 · |D|.
double LoomisWhitney4Log2(double log2_a, double log_b, double log2_c,
                          double log_d);

}  // namespace lpb

#endif  // LPB_BOUNDS_FORMULAS_H_
