// Worst-case instance construction (Sec 6: normal relations & databases).
//
// Given the optimal normal polymatroid h* = Σ_W α*_W h_W of the normal
// engine, Lemma 6.2 builds a totally uniform "normal relation"
//   T = ⊗_W T^W_{N_W},  N_W = ⌊2^{α*_W}⌋,
// whose projections onto the query atoms form a database D that satisfies
// the statistics while |Q(D)| = |T| >= 2^{h*(X)} / 2^c — proving the
// polymatroid bound tight for simple statistics (Corollary 6.3).
#ifndef LPB_BOUNDS_WORST_CASE_H_
#define LPB_BOUNDS_WORST_CASE_H_

#include <cstdint>
#include <vector>

#include "query/query.h"
#include "relation/catalog.h"
#include "relation/relation.h"
#include "util/bits.h"

namespace lpb {

// The basic normal relation T^W_N of Def. 6.4 over attributes `attrs`
// (one per query variable): N rows, row k holding k on the W-columns and
// 0 elsewhere.
Relation BasicNormalRelation(const std::vector<std::string>& attrs, VarSet w,
                             uint64_t n);

// Domain product T ⊗ T' (Sec 6): same attributes, one row per row pair,
// each attribute value the pair of the operands' values. Pairs are
// dictionary-encoded into fresh dense ids per column, which preserves
// cardinalities, degrees and entropies.
Relation DomainProduct(const Relation& t, const Relation& t_prime);

struct WorstCaseInstance {
  // The normal relation T over all query variables.
  Relation witness;
  // The database D: one relation per atom, R_j = Π_{vars(atom_j)}(T),
  // named after the atom's relation.
  Catalog database;
  // Rounded exponents β_W = log2 ⌊2^{α_W}⌋ actually used.
  std::vector<double> beta;
};

// Builds the worst-case database from step-function coefficients α
// (indexed by VarSet, size 2^n; α[0] ignored). Coefficients below
// `min_alpha` are dropped (they round to a single value anyway).
WorstCaseInstance BuildWorstCaseDatabase(const Query& query,
                                         const std::vector<double>& alpha,
                                         double min_alpha = 1e-9);

}  // namespace lpb

#endif  // LPB_BOUNDS_WORST_CASE_H_
