// Appendix A: the 1-to-1 correspondence between a degree sequence of length
// m and its first m ℓp-norms, via Newton's identities.
//
// Forward direction: power sums ||d||_p^p for p = 1..m. Backward direction:
// Newton's identities recover the elementary symmetric polynomials
// e_1..e_m, and the degree sequence is the multiset of roots of
//   λ^m - e_1 λ^{m-1} + e_2 λ^{m-2} - ... + (-1)^m e_m,
// found here with Durand-Kerner iteration (degrees are positive reals, so
// the roots are real and the iteration is well behaved for the moderate m
// this is meant for; see tests for accuracy envelopes).
#ifndef LPB_BOUNDS_NEWTON_H_
#define LPB_BOUNDS_NEWTON_H_

#include <cstdint>
#include <vector>

#include "relation/degree_sequence.h"

namespace lpb {

// Power sums S_p = Σ_i d_i^p for p = 1..m (long double accumulation).
std::vector<double> PowerSums(const DegreeSequence& d, int m);

// Elementary symmetric polynomials e_1..e_m from power sums S_1..S_m
// (Newton's identities: k e_k = Σ_{p=1..k} (-1)^{p-1} e_{k-p} S_p).
std::vector<double> ElementarySymmetric(const std::vector<double>& power_sums);

// Recovers the (sorted, non-increasing) degree sequence of length m from
// its first m power sums. `round_to_integers` snaps results to the nearest
// integer (degree sequences are integral). Returns an empty vector if the
// root iteration fails to converge.
std::vector<double> DegreesFromPowerSums(const std::vector<double>& power_sums,
                                         bool round_to_integers = true,
                                         int max_iterations = 2000);

}  // namespace lpb

#endif  // LPB_BOUNDS_NEWTON_H_
