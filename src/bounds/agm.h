// The AGM bound computed directly as a fractional edge cover LP
// (Atserias-Grohe-Marx 2013): log2 AGM = min Σ_j x_j log2 |R_j| subject to
// Σ_{j : v ∈ atom_j} x_j >= 1 for every variable v, x >= 0.
//
// Equivalent to the polymatroid bound restricted to cardinality statistics;
// kept as an independent implementation for cross-validation and for the
// {1}-bound column of the paper's experiment tables.
#ifndef LPB_BOUNDS_AGM_H_
#define LPB_BOUNDS_AGM_H_

#include <vector>

#include "query/query.h"
#include "relation/catalog.h"

namespace lpb {

struct AgmResult {
  double log2_bound = 0.0;
  // Fractional edge-cover weight per atom.
  std::vector<double> cover;
};

// log2 cardinalities per atom (deduplicated projections onto atom vars).
std::vector<double> AtomLogSizes(const Query& query, const Catalog& catalog);

// AGM bound from explicit per-atom log2 sizes.
AgmResult AgmBound(const Query& query, const std::vector<double>& log_sizes);

// AGM bound measured from a database instance.
AgmResult AgmBound(const Query& query, const Catalog& catalog);

}  // namespace lpb

#endif  // LPB_BOUNDS_AGM_H_
