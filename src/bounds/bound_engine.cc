#include "bounds/bound_engine.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <optional>
#include <set>
#include <utility>

#include "bounds/normal_engine.h"
#include "bounds/shannon_cuts.h"
#include "entropy/shannon.h"
#include "lp/lp_problem.h"
#include "lp/tableau.h"
#include "relation/degree_sequence.h"

namespace lpb {

bool BoundStructure::AllShapesSimple() const {
  for (const StatisticShape& shape : shapes) {
    if (!shape.sigma.IsSimple()) return false;
  }
  return true;
}

BoundStructure StructureOf(int n, const std::vector<ConcreteStatistic>& stats) {
  BoundStructure structure;
  structure.n = n;
  structure.shapes.reserve(stats.size());
  for (const ConcreteStatistic& s : stats) {
    structure.shapes.push_back({s.sigma, s.p});
  }
  return structure;
}

std::vector<double> ValuesOf(const std::vector<ConcreteStatistic>& stats) {
  std::vector<double> values;
  values.reserve(stats.size());
  for (const ConcreteStatistic& s : stats) values.push_back(s.log_b);
  return values;
}

std::string StructureKey(const BoundStructure& structure) {
  std::string key;
  key.reserve(1 + structure.shapes.size() * 16);
  key.push_back(static_cast<char>(structure.n));
  for (const StatisticShape& shape : structure.shapes) {
    char buf[16];
    std::memcpy(buf, &shape.sigma.u, 4);
    std::memcpy(buf + 4, &shape.sigma.v, 4);
    std::memcpy(buf + 8, &shape.p, 8);
    key.append(buf, sizeof(buf));
  }
  return key;
}

BoundResult CompiledBound::Evaluate(const std::vector<double>& log_b,
                                    bool want_h_opt) {
  assert(log_b.size() == structure_.shapes.size());
  BoundResult result = EvaluateImpl(log_b, want_h_opt);
  Record(result);
  return result;
}

std::vector<BoundResult> CompiledBound::EvaluateBatch(
    std::span<const std::vector<double>> log_b_batch, bool want_h_opt) {
#ifndef NDEBUG
  for (const std::vector<double>& log_b : log_b_batch) {
    assert(log_b.size() == structure_.shapes.size());
  }
#endif
  std::vector<BoundResult> results = EvaluateBatchImpl(log_b_batch, want_h_opt);
  assert(results.size() == log_b_batch.size());
  for (const BoundResult& result : results) Record(result);
  return results;
}

std::vector<BoundResult> CompiledBound::EvaluateBatchImpl(
    std::span<const std::vector<double>> log_b_batch, bool want_h_opt) {
  std::vector<BoundResult> results;
  results.reserve(log_b_batch.size());
  for (const std::vector<double>& log_b : log_b_batch) {
    results.push_back(EvaluateImpl(log_b, want_h_opt));
  }
  return results;
}

void CompiledBound::Record(const BoundResult& result) {
  ++counters_.evaluations;
  switch (result.eval_path) {
    case LpEvalPath::kWitness:
      ++counters_.witness_hits;
      break;
    case LpEvalPath::kWarm:
      ++counters_.warm_resolves;
      break;
    case LpEvalPath::kCold:
      ++counters_.cold_solves;
      break;
  }
}

namespace {

bool AllNonNegative(const std::vector<double>& values) {
  return std::all_of(values.begin(), values.end(),
                     [](double v) { return v >= 0.0; });
}

// An unbounded verdict is structural: the certifying ray lives in the
// recession cone {h feasible-direction : stats-lhs(h) <= 0}, which does not
// depend on the RHS. Any later value vector with log_b >= 0 keeps the
// origin feasible, so the LP stays unbounded — no solve needed.
BoundResult StructurallyUnboundedResult(LpBackendKind backend) {
  BoundResult out;
  out.status = LpStatus::kUnbounded;
  out.log2_bound = kInfNorm;
  out.eval_path = LpEvalPath::kWitness;
  out.lp_backend = backend;
  return out;
}

BoundResult MakeGammaResult(const LpResult& lp, int n, int num_stats,
                            int cut_rounds, bool want_h_opt) {
  BoundResult result;
  result.status = lp.status;
  result.cut_rounds = cut_rounds;
  result.lp_iterations = lp.iterations;
  result.eval_path = lp.path;
  result.lp_backend = lp.backend;
  result.lp_pricing = lp.pricing;
  result.lp_stats = lp.stats;
  if (lp.status == LpStatus::kUnbounded) {
    result.log2_bound = kInfNorm;
    return result;
  }
  if (lp.status != LpStatus::kOptimal) return result;
  result.log2_bound = lp.objective;
  result.weights.assign(lp.duals.begin(), lp.duals.begin() + num_stats);
  if (want_h_opt) {
    result.h_opt = SetFunction(n);
    const VarSet full = FullSet(n);
    for (VarSet s = 1; s <= full; ++s) result.h_opt[s] = lp.x[s - 1];
  }
  return result;
}

// Shared batch driver for the single-LP engines (normal, full-lattice Γn):
// gathers maximal runs of columns not served by the structural-unbounded
// shortcut, pushes each run through the tableau's multi-RHS resolve, and
// finalizes columns in order.
//
// A mid-run unbounded verdict flips the shortcut flag for the columns
// after it, and their block resolves have already run — but those
// resolves are scalar-identical by construction: an unbounded solve
// caches no basis, and with the recession ray fixed every later in-run
// resolve is a history-independent cold solve that can only end
// unbounded or infeasible (never optimal, so no basis ever reappears).
// Columns the scalar sequence would have *shortcut* (nonnegative values)
// therefore just get their result replaced with the shortcut result —
// their speculative solve touched no state the scalar sequence could
// observe — and every other column keeps its block result unchanged.
// Allocation discipline: the run's RHS buffers and the LpResult vector
// persist across runs (fill_rhs writes into a reused std::vector, and the
// tableau's out-param batch overload reuses each LpResult's x/duals
// capacity), so the steady-state per-column cost is the LP work itself,
// not allocator traffic.
// Caller-owned scratch for BatchThroughTableau: the run's RHS buffers and
// the LpResult vector survive across batches (each engine keeps one as a
// member), so their steady-state cost is a fill, not an allocation — and
// fill_rhs callbacks may exploit the persistence (a buffer already sized
// for this LP keeps its zero tail, see the Γn engine).
struct BatchScratch {
  std::vector<std::vector<double>> run;
  std::vector<LpResult> lps;
};

template <typename FillRhs, typename Finalize>
std::vector<BoundResult> BatchThroughTableau(
    std::span<const std::vector<double>> batch, SimplexTableau& tableau,
    bool& structurally_unbounded, BatchScratch& scratch,
    const FillRhs& fill_rhs, const Finalize& finalize) {
  std::vector<BoundResult> out(batch.size());
  std::vector<std::vector<double>>& run = scratch.run;
  std::vector<LpResult>& lps = scratch.lps;
  size_t i = 0;
  while (i < batch.size()) {
    if (structurally_unbounded && AllNonNegative(batch[i])) {
      out[i++] = StructurallyUnboundedResult(tableau.backend());
      continue;
    }
    size_t run_size = 0;
    size_t end = i;
    while (end < batch.size() &&
           !(structurally_unbounded && AllNonNegative(batch[end]))) {
      if (run.size() <= run_size) run.emplace_back();
      fill_rhs(batch[end], run[run_size]);
      ++run_size;
      ++end;
    }
    tableau.ResolveWithRhsBatch(
        std::span<const std::vector<double>>(run.data(), run_size), lps);
    bool flipped_mid_run = false;
    for (size_t k = 0; k < lps.size(); ++k) {
      if (flipped_mid_run && AllNonNegative(batch[i + k])) {
        out[i + k] = StructurallyUnboundedResult(tableau.backend());
        continue;
      }
      out[i + k] = finalize(lps[k]);
      if (out[i + k].unbounded() && !structurally_unbounded) {
        structurally_unbounded = true;
        flipped_mid_run = true;
      }
    }
    i = end;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Γn engine: full elemental lattice for small n, cutting-plane beyond. The
// compiled cut set persists across evaluations — cuts separating one value
// vector usually separate its neighbors too, so later Evaluates converge
// in zero or few extra rounds.
//
// Cut pipeline: each evaluation resolves against the compiled pool
// (witness / dual-simplex warm start), then alternates separation and
// growth. A growth round appends the violated cuts through the tableau's
// incremental row append (SimplexTableau::AddConstraintsWarm) — new rows
// enter with their slacks basic on top of the previous round's optimal
// basis and dual simplex repairs only the violated rows — falling back to
// a cold recompile + two-phase solve when the backend declines or warm
// starts are off (SimplexOptions::cut_warm_start / LPB_LP_CUT_WARM=0).
// Warm and cold rounds converge to the same bound: both stop only when no
// compiled-pool-missing cut separates the optimum, and each round's LP is
// the same finite LP family member. Batches share the pool: converged
// columns ride the multi-RHS block resolve, and only columns that still
// separate new cuts pay scalar top-up rounds (see EvaluateBatchCutting).

class CompiledGammaBound : public CompiledBound {
 public:
  CompiledGammaBound(BoundStructure structure, const EngineOptions& options)
      : CompiledBound(std::move(structure)),
        options_(options),
        num_stats_(static_cast<int>(structure_.shapes.size())),
        full_mode_(structure_.n <= options_.full_lattice_max_n),
        lp_((1 << structure_.n) - 1) {
    const int n = structure_.n;
    assert(n >= 1 && n <= kMaxVars);
    const VarSet full = FullSet(n);
    lp_.SetObjective(static_cast<int>(full) - 1, 1.0);
    // Statistics rows come first so duals[i] is the weight of shapes[i];
    // their RHS is a per-evaluation parameter.
    for (const StatisticShape& shape : structure_.shapes) {
      ConcreteStatistic stat;
      stat.sigma = shape.sigma;
      stat.p = shape.p;
      lp_.AddConstraint(FormToTerms(stat.Lhs()), LpSense::kLe, 0.0);
      ps_.push_back(shape.p);
    }
    if (full_mode_) {
      for (const LinearForm& ineq : ElementalInequalities(n)) {
        lp_.AddConstraint(FormToTerms(ineq), LpSense::kGe, 0.0);
      }
    } else {
      box_row_ = lp_.AddConstraint({{static_cast<int>(full) - 1, 1.0}},
                                   LpSense::kLe, 0.0);
      for (const ShannonCut& cut : SeedShannonCuts(n)) AddCut(cut);
      // Flat any-violation pre-check for the converged steady state: most
      // evaluations end with "no new cut", and the branchless table scan
      // answers that without the subset-enumerating exact scan.
      scan_table_ = BuildShannonScanTable(n);
    }
    // The tableau owns the factorized basis that witness re-pricing and
    // warm dual-simplex re-solves run against; with the revised backend
    // that is the LU factorization plus eta file of lp/lu_basis.h, so a
    // witness evaluation is one FTRAN (BTRAN only on basis changes), not a
    // dense objective-row read.
    tableau_.emplace(lp_, options_.simplex);
  }

 protected:
  BoundResult EvaluateImpl(const std::vector<double>& log_b,
                           bool want_h_opt) override {
    const int n = structure_.n;
    if (structurally_unbounded_ && AllNonNegative(log_b)) {
      return StructurallyUnboundedResult(tableau_->backend());
    }

    std::vector<double> rhs(lp_.num_constraints(), 0.0);
    std::copy(log_b.begin(), log_b.end(), rhs.begin());
    double box = 0.0;
    if (!full_mode_) {
      box = GammaBoxBound(n, ps_, log_b);
      rhs[box_row_] = box;
    }

    LpResult lp_result = tableau_->ResolveWithRhs(rhs);
    // Every LP call of this evaluation counts toward the result's pivot
    // statistics — cut-growth rounds included, unlike lp_iterations.
    LpSolveStats stats_sum = lp_result.stats;
    int rounds = 0;
    bool cold_grew = false;
    bool cut_converged = full_mode_;
    if (!full_mode_) {
      // Cut loop: the new optimum may violate elemental inequalities that
      // no earlier evaluation needed. Each growth round first tries the
      // warm row append — the new rows enter with their slacks basic on
      // top of the previous round's optimal basis, and dual simplex
      // repairs only the violated rows — and falls back to a cold
      // recompile + two-phase solve when the backend declines (or when
      // warm starts are disabled via SimplexOptions::cut_warm_start /
      // LPB_LP_CUT_WARM=0).
      const bool warm =
          ResolveCutWarmStart(options_.simplex) == CutWarmStart::kOn;
      while (rounds < options_.max_cut_rounds &&
             lp_result.status == LpStatus::kOptimal) {
        // Pre-check first: a clean table scan proves the exact scan would
        // return empty (present cuts are LP rows, satisfied at any
        // optimum to the solver's tighter eps), and the converged case is
        // the common one after the pool warms up.
        if (!AnyViolatedShannonCut(scan_table_, lp_result.x,
                                   options_.feasibility_eps, scan_scratch_)) {
          cut_converged = true;
          break;
        }
        std::vector<ShannonCut> cuts = FindViolatedShannonCuts(
            n, lp_result.x, present_, options_.cuts_per_round,
            options_.feasibility_eps);
        if (cuts.empty()) {
          cut_converged = true;
          break;
        }
        std::vector<LpConstraint> new_rows;
        new_rows.reserve(cuts.size());
        for (const ShannonCut& cut : cuts) {
          present_.insert(cut.Key());
          new_rows.push_back(
              {FormToTerms(cut.Form(n)), LpSense::kGe, 0.0});
          rhs.push_back(0.0);
        }
        // The engine's own problem grows on every path: a later cold
        // recompile must see the full cut set.
        for (const LpConstraint& c : new_rows) {
          lp_.AddConstraint(c.terms, c.sense, c.rhs);
        }
        if (warm && tableau_->AddConstraintsWarm(new_rows, rhs, lp_result)) {
          stats_sum.Add(lp_result.stats);
          ++stats_sum.warm_cut_rounds;
        } else {
          tableau_.emplace(lp_, options_.simplex);
          lp_result = tableau_->Solve(rhs);
          stats_sum.Add(lp_result.stats);
          cold_grew = true;
        }
        ++rounds;
      }
    }

    BoundResult result =
        MakeGammaResult(lp_result, n, num_stats_, rounds, want_h_opt);
    result.lp_stats = stats_sum;
    if (cold_grew) result.eval_path = LpEvalPath::kCold;
    if (!full_mode_ && result.ok() &&
        result.log2_bound >= box * (1.0 - 1e-9)) {
      // Shannon-feasible optimum pinned at the box: genuinely unbounded.
      result.status = LpStatus::kUnbounded;
      result.log2_bound = kInfNorm;
    }
    // Cache the verdict only when it is structural: a Shannon-converged
    // box pin (or, in full mode, a solver ray) certifies a recession ray
    // that outlives any RHS. A round-limit exit pinned at the box is an
    // approximation failure for *these* values, not a property of the
    // structure — later values must get a fresh chance to converge.
    if (result.unbounded() && cut_converged) structurally_unbounded_ = true;
    return result;
  }

  std::vector<BoundResult> EvaluateBatchImpl(
      std::span<const std::vector<double>> log_b_batch,
      bool want_h_opt) override {
    const int n = structure_.n;
    if (!full_mode_) {
      return EvaluateBatchCutting(log_b_batch, want_h_opt);
    }
    return BatchThroughTableau(
        log_b_batch, *tableau_, structurally_unbounded_, batch_scratch_,
        [this](const std::vector<double>& log_b, std::vector<double>& rhs) {
          // Only the first num_stats entries are ever nonzero; a persistent
          // buffer already sized for this LP keeps its zero tail, so the
          // per-column cost is the statistics copy, not an O(rows) clear.
          // (Full mode never grows lp_, so a matching size is conclusive.)
          if (rhs.size() != static_cast<size_t>(lp_.num_constraints())) {
            rhs.assign(lp_.num_constraints(), 0.0);
          }
          std::copy(log_b.begin(), log_b.end(), rhs.begin());
        },
        [&](const LpResult& lp) {
          return MakeGammaResult(lp, n, num_stats_, 0, want_h_opt);
        });
  }

  // Cutting-plane batch: a shared per-batch cut pool. The compiled cut set
  // usually already separates every column after the first few evaluations,
  // so whole runs of columns ride the multi-RHS block resolve; only a
  // column whose block optimum still separates new cuts pays scalar top-up
  // rounds (growing the pool), after which the remaining columns re-gather
  // under the grown matrix — preserving the scalar sequence's ordering
  // semantics (later columns are always priced against every cut an
  // earlier column added).
  std::vector<BoundResult> EvaluateBatchCutting(
      std::span<const std::vector<double>> log_b_batch, bool want_h_opt) {
    const int n = structure_.n;
    std::vector<BoundResult> out(log_b_batch.size());
    std::vector<std::vector<double>>& run = batch_scratch_.run;
    std::vector<LpResult>& lps = batch_scratch_.lps;
    size_t i = 0;
    while (i < log_b_batch.size()) {
      if (structurally_unbounded_ && AllNonNegative(log_b_batch[i])) {
        out[i++] = StructurallyUnboundedResult(tableau_->backend());
        continue;
      }
      // Gather the maximal run of columns the structural shortcut cannot
      // serve and resolve it as one block against the current cut pool.
      size_t run_size = 0;
      size_t end = i;
      while (end < log_b_batch.size() &&
             !(structurally_unbounded_ && AllNonNegative(log_b_batch[end]))) {
        if (run.size() <= run_size) run.emplace_back();
        FillCutRhs(log_b_batch[end], run[run_size]);
        ++run_size;
        ++end;
      }
      // The relaxed block resolve (lp/tableau.h): witness-valid columns
      // are served against one pinned basis — pivoting columns no longer
      // flush the B⁻¹ memo for everything after them — at the cost of
      // bitwise identity with the scalar sequence, which cutting mode
      // never promised (its parity contract is tolerance).
      tableau_->ResolveWithRhsBatchRelaxed(
          std::span<const std::vector<double>>(run.data(), run_size), lps);
      // Finalize columns in order. The first column whose block optimum
      // still separates cuts is re-evaluated scalar (warm top-up rounds
      // grow the pool); everything after it re-gathers, since its block
      // result was priced against the pre-growth matrix.
      size_t done = i;
      for (size_t k = 0; k < run_size; ++k) {
        const size_t col = i + k;
        const LpResult& lp = lps[k];
        if (lp.status == LpStatus::kOptimal &&
            AnyViolatedShannonCut(scan_table_, lp.x,
                                  options_.feasibility_eps, scan_scratch_) &&
            !FindViolatedShannonCuts(n, lp.x, present_,
                                     options_.cuts_per_round,
                                     options_.feasibility_eps)
                 .empty()) {
          out[col] = EvaluateImpl(log_b_batch[col], want_h_opt);
          done = col + 1;
          break;
        }
        // Cut-converged (or non-optimal, where the scalar path runs no cut
        // rounds either): the block result is the scalar result.
        BoundResult result = MakeGammaResult(lp, n, num_stats_, 0, want_h_opt);
        if (result.ok() &&
            result.log2_bound >= run[k][box_row_] * (1.0 - 1e-9)) {
          result.status = LpStatus::kUnbounded;
          result.log2_bound = kInfNorm;
        }
        const bool flips = result.unbounded() &&
                           lp.status == LpStatus::kOptimal &&
                           !structurally_unbounded_;
        if (flips) structurally_unbounded_ = true;
        out[col] = result;
        done = col + 1;
        // A flip makes later columns shortcut-eligible; their block
        // results were priced speculatively, so re-gather them.
        if (flips) break;
      }
      i = done;
    }
    return out;
  }

 private:
  void AddCut(const ShannonCut& cut) {
    present_.insert(cut.Key());
    lp_.AddConstraint(FormToTerms(cut.Form(structure_.n)), LpSense::kGe, 0.0);
  }

  // Cutting-mode RHS for one column: statistics values, the per-column box
  // bound, zeros on every cut row. The persistent buffer is re-sized only
  // when the cut pool grew since the last batch.
  void FillCutRhs(const std::vector<double>& log_b, std::vector<double>& rhs) {
    if (rhs.size() != static_cast<size_t>(lp_.num_constraints())) {
      rhs.assign(lp_.num_constraints(), 0.0);
    }
    std::copy(log_b.begin(), log_b.end(), rhs.begin());
    rhs[box_row_] = GammaBoxBound(structure_.n, ps_, log_b);
  }

  EngineOptions options_;
  int num_stats_;
  bool full_mode_;
  LpProblem lp_;
  std::optional<SimplexTableau> tableau_;
  std::vector<double> ps_;
  std::set<uint64_t> present_;
  ShannonScanTable scan_table_;
  std::vector<double> scan_scratch_;
  int box_row_ = -1;
  bool structurally_unbounded_ = false;
  BatchScratch batch_scratch_;
};

class GammaEngine : public BoundEngine {
 public:
  std::string_view name() const override { return "gamma"; }
  bool Supports(const BoundStructure& structure) const override {
    return structure.n >= 1 && structure.n <= kMaxVars;
  }
  std::unique_ptr<CompiledBound> Compile(
      const BoundStructure& structure,
      const EngineOptions& options) const override {
    return std::make_unique<CompiledGammaBound>(structure, options);
  }
};

// ---------------------------------------------------------------------------
// Nn engine: exact for simple shapes (Theorem 6.1) with a far smaller LP —
// only the statistics are rows, so witness re-pricing is O(stats²).

class CompiledNormalBound : public CompiledBound {
 public:
  CompiledNormalBound(BoundStructure structure, const EngineOptions& options)
      : CompiledBound(std::move(structure)),
        tableau_(BuildNormalBoundLp(structure_.n, PlaceholderStats()),
                 options.simplex) {}

 protected:
  BoundResult EvaluateImpl(const std::vector<double>& log_b,
                           bool want_h_opt) override {
    if (structurally_unbounded_ && AllNonNegative(log_b)) {
      return StructurallyUnboundedResult(tableau_.backend());
    }
    BoundResult result = ResultFromLp(tableau_.ResolveWithRhs(log_b),
                                      want_h_opt);
    if (result.unbounded()) structurally_unbounded_ = true;
    return result;
  }

  std::vector<BoundResult> EvaluateBatchImpl(
      std::span<const std::vector<double>> log_b_batch,
      bool want_h_opt) override {
    // The Nn LP's RHS is the value vector itself, so each run feeds the
    // tableau's multi-RHS resolve directly.
    return BatchThroughTableau(
        log_b_batch, tableau_, structurally_unbounded_, batch_scratch_,
        [](const std::vector<double>& log_b, std::vector<double>& rhs) {
          rhs.assign(log_b.begin(), log_b.end());
        },
        [&](const LpResult& lp) { return ResultFromLp(lp, want_h_opt); });
  }

 private:
  BoundResult ResultFromLp(const LpResult& lp, bool want_h_opt) {
    BoundResult result;
    result.status = lp.status;
    result.lp_iterations = lp.iterations;
    result.eval_path = lp.path;
    result.lp_backend = lp.backend;
    result.lp_pricing = lp.pricing;
    result.lp_stats = lp.stats;
    if (lp.status == LpStatus::kUnbounded) {
      result.log2_bound = kInfNorm;
      return result;
    }
    if (lp.status != LpStatus::kOptimal) return result;
    result.log2_bound = lp.objective;
    result.weights = lp.duals;
    if (want_h_opt) {
      const int num_vars = static_cast<int>(FullSet(structure_.n));
      std::vector<double> alpha(num_vars + 1, 0.0);
      for (int w = 0; w < num_vars; ++w) alpha[w + 1] = lp.x[w];
      result.h_opt = SetFunction::NormalCombination(structure_.n, alpha);
    }
    return result;
  }
  // Shape-only statistics (log_b = 0) for the matrix builder; the real
  // values arrive per evaluation as the RHS vector.
  std::vector<ConcreteStatistic> PlaceholderStats() const {
    std::vector<ConcreteStatistic> stats;
    stats.reserve(structure_.shapes.size());
    for (const StatisticShape& shape : structure_.shapes) {
      ConcreteStatistic stat;
      stat.sigma = shape.sigma;
      stat.p = shape.p;
      stats.push_back(stat);
    }
    return stats;
  }

  SimplexTableau tableau_;
  bool structurally_unbounded_ = false;
  BatchScratch batch_scratch_;
};

class NormalEngine : public BoundEngine {
 public:
  std::string_view name() const override { return "normal"; }
  bool Supports(const BoundStructure& structure) const override {
    return structure.n >= 1 && structure.n <= kMaxVars &&
           structure.AllShapesSimple();
  }
  std::unique_ptr<CompiledBound> Compile(
      const BoundStructure& structure,
      const EngineOptions& options) const override {
    assert(Supports(structure));
    return std::make_unique<CompiledNormalBound>(structure, options);
  }
};

// ---------------------------------------------------------------------------
// "auto": dispatch at compile time, mirroring LpNormBound's dispatch.

class AutoEngine : public BoundEngine {
 public:
  std::string_view name() const override { return "auto"; }
  bool Supports(const BoundStructure& structure) const override {
    return structure.n >= 1 && structure.n <= kMaxVars;
  }
  std::unique_ptr<CompiledBound> Compile(
      const BoundStructure& structure,
      const EngineOptions& options) const override;
};

// ---------------------------------------------------------------------------
// Shape-filtered engines (AGM, PANDA): compile the surviving sub-structure
// with the auto engine and remap witness weights back to the full shape
// list, so Σ w_i log_b_i still certifies against the caller's statistics.

class FilteredBound : public CompiledBound {
 public:
  FilteredBound(BoundStructure structure, std::vector<int> keep,
                std::unique_ptr<CompiledBound> inner)
      : CompiledBound(std::move(structure)),
        keep_(std::move(keep)),
        inner_(std::move(inner)) {}

 protected:
  BoundResult EvaluateImpl(const std::vector<double>& log_b,
                           bool want_h_opt) override {
    BoundResult result = inner_->Evaluate(Project(log_b), want_h_opt);
    RemapWeights(result);
    return result;
  }

  std::vector<BoundResult> EvaluateBatchImpl(
      std::span<const std::vector<double>> log_b_batch,
      bool want_h_opt) override {
    std::vector<std::vector<double>> sub_batch;
    sub_batch.reserve(log_b_batch.size());
    for (const std::vector<double>& log_b : log_b_batch) {
      sub_batch.push_back(Project(log_b));
    }
    std::vector<BoundResult> results =
        inner_->EvaluateBatch(sub_batch, want_h_opt);
    for (BoundResult& result : results) RemapWeights(result);
    return results;
  }

 private:
  std::vector<double> Project(const std::vector<double>& log_b) const {
    std::vector<double> sub(keep_.size());
    for (size_t k = 0; k < keep_.size(); ++k) sub[k] = log_b[keep_[k]];
    return sub;
  }

  // Scatter the sub-structure witness back onto the full shape list, so
  // Σ w_i log_b_i still certifies against the caller's statistics.
  void RemapWeights(BoundResult& result) const {
    std::vector<double> weights(structure_.shapes.size(), 0.0);
    for (size_t k = 0; k < keep_.size() && k < result.weights.size(); ++k) {
      weights[keep_[k]] = result.weights[k];
    }
    result.weights = std::move(weights);
  }

  std::vector<int> keep_;
  std::unique_ptr<CompiledBound> inner_;
};

class FilteredEngine : public BoundEngine {
 public:
  using Predicate = bool (*)(const StatisticShape&);
  FilteredEngine(std::string_view name, Predicate pred)
      : name_(name), pred_(pred) {}

  std::string_view name() const override { return name_; }
  bool Supports(const BoundStructure& structure) const override {
    return structure.n >= 1 && structure.n <= kMaxVars;
  }
  std::unique_ptr<CompiledBound> Compile(
      const BoundStructure& structure,
      const EngineOptions& options) const override;

 private:
  std::string_view name_;
  Predicate pred_;
};

const GammaEngine& Gamma() {
  static const GammaEngine engine;
  return engine;
}
const NormalEngine& Normal() {
  static const NormalEngine engine;
  return engine;
}
const AutoEngine& Auto() {
  static const AutoEngine engine;
  return engine;
}

std::unique_ptr<CompiledBound> AutoEngine::Compile(
    const BoundStructure& structure, const EngineOptions& options) const {
  if (Normal().Supports(structure)) return Normal().Compile(structure, options);
  return Gamma().Compile(structure, options);
}

std::unique_ptr<CompiledBound> FilteredEngine::Compile(
    const BoundStructure& structure, const EngineOptions& options) const {
  BoundStructure sub;
  sub.n = structure.n;
  std::vector<int> keep;
  for (size_t i = 0; i < structure.shapes.size(); ++i) {
    if (pred_(structure.shapes[i])) {
      keep.push_back(static_cast<int>(i));
      sub.shapes.push_back(structure.shapes[i]);
    }
  }
  return std::make_unique<FilteredBound>(structure, std::move(keep),
                                         Auto().Compile(sub, options));
}

}  // namespace

bool IsAgmShape(const StatisticShape& shape) {
  return shape.p == 1.0 && shape.sigma.u == 0;
}
bool IsPandaShape(const StatisticShape& shape) {
  return shape.p == 1.0 || shape.p >= kInfNorm / 2;
}

const BoundEngine* FindBoundEngine(std::string_view name) {
  static const FilteredEngine agm("agm", &IsAgmShape);
  static const FilteredEngine panda("panda", &IsPandaShape);
  static const BoundEngine* const engines[] = {&Gamma(), &Normal(), &Auto(),
                                               &agm, &panda};
  for (const BoundEngine* engine : engines) {
    if (engine->name() == name) return engine;
  }
  return nullptr;
}

std::vector<std::string_view> BoundEngineNames() {
  return {"gamma", "normal", "auto", "agm", "panda"};
}

}  // namespace lpb
