// The modular bound of Appendix B (the Jayaraman-Ropell-Rudra LP (42)).
//
// Optimizes h(X) over MODULAR functions h = Σ_i w_i h_{X_i} only. By the
// duality of Sec 5 this equals the best product-database bound, and it is
// the (dual of the) LP used by [14]. It is NOT a sound output bound in
// general: modular functions are a strict subset of the normal
// polymatroids, so the optimum can undercut the true worst case (Example
// B.1). Theorem B.2 restores soundness when every statistic is a
// (X_j | X_i) pair statistic with a common p and the query's binary graph
// has girth > p; tests exercise both sides.
#ifndef LPB_BOUNDS_MODULAR_H_
#define LPB_BOUNDS_MODULAR_H_

#include <vector>

#include "bounds/engine.h"
#include "stats/statistic.h"

namespace lpb {

struct ModularBoundResult {
  BoundResult base;
  // Optimal per-variable weights: h* = Σ_i weight[i] · h_{X_i}.
  std::vector<double> var_weights;
};

// max h(X) over modular h >= 0 subject to the statistics (each statistic
// contributes Σ_{i∈U} w_i / p + Σ_{i∈V∖U} w_i <= log_b).
ModularBoundResult ModularBound(int n,
                                const std::vector<ConcreteStatistic>& stats);

}  // namespace lpb

#endif  // LPB_BOUNDS_MODULAR_H_
