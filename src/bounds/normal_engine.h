// The normal-polymatroid bound engine (Sec 6 / Theorem 6.1).
//
// Optimizes h(X) over Nn, the cone of normal polymatroids h = Σ_W α_W h_W
// with α_W >= 0. The LP has one variable per nonempty W ⊆ X and only the
// statistics as constraints (every nonnegative combination of step
// functions is automatically a polymatroid), so it is dramatically smaller
// than the Γn LP. By Theorem 6.1 the optimum EQUALS the polymatroid bound
// whenever all statistics are simple (|U| <= 1) — the common case in
// practice (per-join-column degree sequences) — and the optimal α* feeds
// the worst-case database construction of Lemma 6.2.
//
// CAUTION: for non-simple statistics Nn ⊊ Γn makes this a lower bound on
// the polymatroid bound, NOT a valid output-size bound; callers must check
// AllSimple() (NormalPolymatroidBound asserts it unless told otherwise).
#ifndef LPB_BOUNDS_NORMAL_ENGINE_H_
#define LPB_BOUNDS_NORMAL_ENGINE_H_

#include <vector>

#include "bounds/engine.h"
#include "stats/statistic.h"

namespace lpb {

struct NormalBoundResult {
  BoundResult base;
  // Optimal step-function coefficients α*_W, indexed by VarSet (entry 0
  // unused). h_opt == Σ_W alpha[W] · h_W.
  std::vector<double> alpha;
};

// Computes max h(X) over normal polymatroids satisfying the statistics.
// If `require_simple` (default), asserts AllSimple(stats). `simplex`
// selects the LP solver configuration/backend (lp/simplex.h).
NormalBoundResult NormalPolymatroidBound(
    int n, const std::vector<ConcreteStatistic>& stats,
    bool require_simple = true, const SimplexOptions& simplex = {});

// Builds the Nn LP: maximize Σ_W α_W over α >= 0 with one <= row per
// statistic (rhs = stat.log_b), in statistics order. The matrix depends
// only on the statistic *shapes* (σ, p), never on the values — the
// compiled-bound pipeline (bounds/bound_engine.h) builds it once per
// structure and re-solves per log_b vector.
LpProblem BuildNormalBoundLp(int n,
                             const std::vector<ConcreteStatistic>& stats);

// Convenience dispatcher: uses the normal engine when all statistics are
// simple (valid and fast, Theorem 6.1), otherwise the Γn cutting-plane
// engine.
BoundResult LpNormBound(int n, const std::vector<ConcreteStatistic>& stats,
                        const EngineOptions& options = {});

}  // namespace lpb

#endif  // LPB_BOUNDS_NORMAL_ENGINE_H_
