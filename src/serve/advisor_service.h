// AdvisorService: a concurrent serving front end for CardinalityAdvisor.
//
// The advisor's batch paths (estimator/advisor.h) are an order of
// magnitude cheaper per estimate than its scalar path — one statistics
// assembly round, one compiled-bound lock, one multi-RHS block resolve
// per batch — but an optimizer fleet submits *single* estimates from many
// threads. This service turns that traffic back into batches by
// **admission batching**: requests land on a bounded MPSC queue per
// pinned worker (util/mpsc_queue.h), and a worker draining its queue
// coalesces every request that arrived within a microbatch window
// (tunable count/time thresholds, AdvisorServiceOptions) into ONE
// EstimateLog2Batch call, completing each caller's future with its own
// estimate. Concurrent single estimates thus ride a single block resolve
// instead of N scalar warm resolves, and the batched statistics assembly
// dedups their (relation, U, V) degree-sequence keys across the batch.
//
// Request dedup: before resolving, a worker dedups *identical* queries
// (same Query::ToString()) within the admission batch and evaluates each
// distinct query once, fanning the result out to every request that
// asked it. This is exact, not approximate sharing: all evaluations in
// one EstimateLog2Batch call see the same statistics snapshot and the
// same compiled basis, so identical queries in one batch are guaranteed
// identical results — the fan-out returns the very double the request
// would have computed. Under skewed traffic (a few hot templates) this
// is the main amortization: a 256-request batch over 33 templates pays
// for ~30 evaluations.
//
// Latency vs throughput: batch_window_us bounds how long the *first*
// request of a batch waits for company; under load the queue refills
// faster than the window so workers run back-to-back full batches and the
// window never engages. max_batch bounds the block-resolve size (and the
// tail latency of the requests coalesced behind the first).
//
// Shutdown contract: Shutdown() (also run by the destructor) stops
// admission, lets the workers drain every request already queued —
// completing their futures normally — and joins. A Submit racing or
// following Shutdown completes its future immediately with quiet NaN
// ("not served") and counts as rejected; no request ever hangs or loses
// its future.
//
// Thread safety: every public method may be called concurrently, with any
// mix of SubmitLog2 / EstimateLog2 / Invalidate / metrics / Shutdown.
#ifndef LPB_SERVE_ADVISOR_SERVICE_H_
#define LPB_SERVE_ADVISOR_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "estimator/advisor.h"
#include "query/query.h"
#include "util/latency_histogram.h"
#include "util/mpsc_queue.h"

namespace lpb {

struct AdvisorServiceOptions {
  // Worker threads, each pinned (best effort) to core w % ncpu and owning
  // one admission queue. <= 0 picks std::thread::hardware_concurrency().
  int workers = 0;
  // Bounded capacity of each worker's admission queue; a full queue
  // backpressures submitters (Push blocks) instead of growing the heap.
  size_t queue_capacity = 1024;
  // Admission-batch ceiling: at most this many coalesced requests per
  // EstimateLog2Batch block resolve.
  int max_batch = 64;
  // Microbatch window: after popping the first request of a batch, the
  // worker waits up to this long for more before resolving. 0 = resolve
  // whatever is queued right now (lowest latency, coalesces only what
  // already piled up).
  int batch_window_us = 100;
  // Best-effort CPU affinity for workers (Linux only; ignored elsewhere).
  bool pin_workers = true;
};

// Cumulative serving counters plus the per-request latency summary
// (submit-to-completion, measured inside the service).
struct AdvisorServiceMetrics {
  uint64_t submitted = 0;      // requests accepted onto a queue
  uint64_t completed = 0;      // futures fulfilled with an estimate
  uint64_t rejected = 0;       // submitted during/after Shutdown (NaN)
  uint64_t batches = 0;        // EstimateLog2Batch calls issued by workers
  uint64_t coalesced = 0;      // requests across those batches
  uint64_t evaluated = 0;      // distinct queries evaluated after dedup
  uint64_t max_coalesced = 0;  // largest admission batch observed
  uint64_t max_queue_depth = 0;  // high-water queue depth sampled at submit
  LatencyHistogram::Summary latency;

  double MeanBatchSize() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(coalesced) /
                              static_cast<double>(batches);
  }

  // Requests served per distinct query evaluated — the dedup win on top
  // of coalescing (1.0 = no repeats in any batch).
  double DedupFactor() const {
    return evaluated == 0 ? 1.0
                          : static_cast<double>(coalesced) /
                                static_cast<double>(evaluated);
  }
};

class AdvisorService {
 public:
  // The advisor must outlive the service. The service adds no caching of
  // its own: estimates come from the advisor's compiled-bound and
  // statistics caches, so results equal direct advisor calls.
  explicit AdvisorService(CardinalityAdvisor& advisor,
                          AdvisorServiceOptions options = {});
  ~AdvisorService();

  AdvisorService(const AdvisorService&) = delete;
  AdvisorService& operator=(const AdvisorService&) = delete;

  // Submits one estimate; the future resolves to the query's log2 bound
  // (identical to advisor.EstimateLog2) once a worker's admission batch
  // containing it completes. After Shutdown the future is already
  // resolved, with quiet NaN.
  std::future<double> SubmitLog2(Query query);

  // Zero-copy submit: the service shares ownership of the query instead
  // of deep-copying it (a JOB query is ~10 small heap blocks, which at
  // serving rates is the dominant client-side cost). Callers replaying a
  // fixed template set should wrap each template in a shared_ptr once
  // and submit handle copies. The pointee must not be mutated while the
  // request is in flight.
  std::future<double> SubmitLog2(std::shared_ptr<const Query> query);

  // Synchronous convenience: SubmitLog2 + get(). Still rides admission
  // batching — concurrent callers coalesce.
  double EstimateLog2(const Query& query);

  // Forwards to the advisor's statistics invalidation; safe concurrently
  // with serving (in-flight batches keep their already-assembled values,
  // exactly like direct advisor calls racing Invalidate).
  void Invalidate(const std::string& relation);

  // Stops admission, drains queued requests to completion, joins workers.
  // Idempotent and safe to call concurrently.
  void Shutdown();

  AdvisorServiceMetrics metrics() const;

 private:
  struct Request {
    std::shared_ptr<const Query> query;
    std::promise<double> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop(int worker);

  CardinalityAdvisor& advisor_;
  AdvisorServiceOptions options_;
  std::vector<std::unique_ptr<BoundedMpscQueue<Request>>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> next_queue_{0};  // round-robin submit cursor
  std::atomic<bool> stopping_{false};
  std::mutex join_mu_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> coalesced_{0};
  std::atomic<uint64_t> evaluated_{0};
  std::atomic<uint64_t> max_coalesced_{0};
  std::atomic<uint64_t> max_queue_depth_{0};
  LatencyHistogram latency_;
};

}  // namespace lpb

#endif  // LPB_SERVE_ADVISOR_SERVICE_H_
