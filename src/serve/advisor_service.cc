#include "serve/advisor_service.h"

#include <algorithm>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace lpb {
namespace {

void MaxRelaxed(std::atomic<uint64_t>& slot, uint64_t value) {
  uint64_t seen = slot.load(std::memory_order_relaxed);
  while (value > seen &&
         !slot.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

// Structural identity for request dedup. The advisor's estimate is a
// function of the query's atoms (relation names + interned var ids) and
// its variable count — nothing else — so two queries equal under this
// predicate are guaranteed the same estimate within one batch. FNV-1a
// over that structure, no allocation.
uint64_t HashQueryStructure(const Query& q) {
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<uint64_t>(q.num_vars()));
  for (const Atom& atom : q.atoms()) {
    for (const char c : atom.relation) mix(static_cast<unsigned char>(c));
    mix(0xFF);
    for (const int v : atom.vars) mix(static_cast<uint64_t>(v) + 1);
    mix(0xFE);
  }
  return h;
}

bool SameQueryStructure(const Query& a, const Query& b) {
  if (a.num_vars() != b.num_vars() || a.num_atoms() != b.num_atoms()) {
    return false;
  }
  for (int i = 0; i < a.num_atoms(); ++i) {
    if (a.atom(i).vars != b.atom(i).vars ||
        a.atom(i).relation != b.atom(i).relation) {
      return false;
    }
  }
  return true;
}

void PinToCore(int worker) {
#if defined(__linux__)
  const unsigned ncpu = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(worker) % ncpu, &set);
  // Best effort: containers and cpusets may refuse; serving works
  // unpinned, just with more migration jitter in the tail.
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)worker;
#endif
}

}  // namespace

AdvisorService::AdvisorService(CardinalityAdvisor& advisor,
                               AdvisorServiceOptions options)
    : advisor_(advisor), options_(options) {
  int workers = options_.workers;
  if (workers <= 0) {
    workers = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  options_.workers = workers;
  options_.max_batch = std::max(1, options_.max_batch);
  queues_.reserve(workers);
  workers_.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    queues_.push_back(
        std::make_unique<BoundedMpscQueue<Request>>(options_.queue_capacity));
  }
  // Queues first, then threads: a worker only touches its own queue slot.
  for (int w = 0; w < workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

AdvisorService::~AdvisorService() { Shutdown(); }

std::future<double> AdvisorService::SubmitLog2(Query query) {
  return SubmitLog2(std::make_shared<const Query>(std::move(query)));
}

std::future<double> AdvisorService::SubmitLog2(
    std::shared_ptr<const Query> query) {
  std::promise<double> promise;
  std::future<double> future = promise.get_future();
  if (stopping_.load(std::memory_order_acquire)) {
    promise.set_value(std::numeric_limits<double>::quiet_NaN());
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return future;
  }
  Request request{std::move(query), std::move(promise),
                  std::chrono::steady_clock::now()};
  const size_t w = next_queue_.fetch_add(1, std::memory_order_relaxed) %
                   queues_.size();
  const size_t depth = queues_[w]->Push(std::move(request));
  if (depth == 0) {
    // Shutdown closed the queue after our stopping_ check; the request
    // was left intact, so complete it as rejected.
    request.promise.set_value(std::numeric_limits<double>::quiet_NaN());
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return future;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  MaxRelaxed(max_queue_depth_, depth);
  return future;
}

double AdvisorService::EstimateLog2(const Query& query) {
  return SubmitLog2(query).get();
}

void AdvisorService::Invalidate(const std::string& relation) {
  advisor_.Invalidate(relation);
}

void AdvisorService::Shutdown() {
  stopping_.store(true, std::memory_order_release);
  for (auto& queue : queues_) queue->Close();
  std::lock_guard<std::mutex> lock(join_mu_);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void AdvisorService::WorkerLoop(int worker) {
  if (options_.pin_workers) PinToCore(worker);
  BoundedMpscQueue<Request>& queue = *queues_[worker];
  const auto window = std::chrono::microseconds(
      std::max(0, options_.batch_window_us));
  const size_t max_batch = static_cast<size_t>(options_.max_batch);
  std::vector<Request> batch;
  std::vector<Query> queries;
  std::vector<size_t> slot;  // request index -> distinct-query index
  std::unordered_map<uint64_t, std::vector<size_t>> distinct;  // hash->idx
  while (true) {
    batch.clear();
    const size_t n = queue.PopBatch(batch, max_batch, window);
    if (n == 0) break;  // closed and drained
    // Dedup identical queries within the admission batch: every
    // evaluation in one EstimateLog2Batch call sees the same statistics
    // snapshot and compiled basis, so identical queries are guaranteed
    // identical results — fanning one evaluation out is exact. Keyed by
    // structural hash with exact structural-equality verification (hash
    // collisions never merge distinct queries).
    queries.clear();
    queries.reserve(n);  // no reallocation: distinct count <= n
    slot.clear();
    slot.reserve(n);
    distinct.clear();
    for (Request& request : batch) {
      const uint64_t h = HashQueryStructure(*request.query);
      std::vector<size_t>& bucket = distinct[h];
      size_t idx = queries.size();
      for (const size_t candidate : bucket) {
        if (SameQueryStructure(queries[candidate], *request.query)) {
          idx = candidate;
          break;
        }
      }
      if (idx == queries.size()) {
        // Materialize the distinct query for the advisor call — the only
        // deep copy on the serving path, paid per distinct rather than
        // per request.
        queries.push_back(*request.query);
        bucket.push_back(idx);
      }
      slot.push_back(idx);
    }
    // One advisor call for the distinct queries of the whole admission
    // batch: queries sharing a statistics structure ride one
    // compiled-bound lock and one multi-RHS block resolve, and the
    // batched assembly dedups their norm keys.
    const std::vector<double> estimates = advisor_.EstimateLog2Batch(queries);
    const auto now = std::chrono::steady_clock::now();
    for (size_t i = 0; i < batch.size(); ++i) {
      latency_.Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              now - batch[i].enqueued)
              .count()));
      batch[i].promise.set_value(estimates[slot[i]]);
    }
    batches_.fetch_add(1, std::memory_order_relaxed);
    coalesced_.fetch_add(n, std::memory_order_relaxed);
    evaluated_.fetch_add(queries.size(), std::memory_order_relaxed);
    completed_.fetch_add(n, std::memory_order_relaxed);
    MaxRelaxed(max_coalesced_, n);
  }
}

AdvisorServiceMetrics AdvisorService::metrics() const {
  AdvisorServiceMetrics m;
  m.submitted = submitted_.load(std::memory_order_relaxed);
  m.completed = completed_.load(std::memory_order_relaxed);
  m.rejected = rejected_.load(std::memory_order_relaxed);
  m.batches = batches_.load(std::memory_order_relaxed);
  m.coalesced = coalesced_.load(std::memory_order_relaxed);
  m.evaluated = evaluated_.load(std::memory_order_relaxed);
  m.max_coalesced = max_coalesced_.load(std::memory_order_relaxed);
  m.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  m.latency = latency_.Summarize();
  return m;
}

}  // namespace lpb
