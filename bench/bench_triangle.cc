// Reproduces the Appendix C.1 "Triangle query" table: ratios of the {1}
// (AGM), {1,∞} (PANDA), {2} and full ℓp bounds and of the traditional
// estimate to the true triangle count, on the seven SNAP stand-in graphs.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "bounds/normal_engine.h"
#include "datagen/graph_gen.h"
#include "estimator/traditional.h"
#include "exec/generic_join.h"
#include "query/parser.h"
#include "stats/collector.h"

namespace lpb {
namespace {

struct Row {
  std::string dataset;
  uint64_t truth;
  double agm, panda, l2, full;
  double duck;
};

Row RunDataset(const GraphSpec& spec) {
  Catalog db;
  Relation g = GeneratePowerLawGraph(spec);
  g.set_name("E");
  db.Add(std::move(g));
  Query q = *ParseQuery("E(X,Y), E(Y,Z), E(Z,X)");

  Row row;
  row.dataset = spec.name;
  row.truth = CountJoin(q, db);

  CollectorOptions all;
  all.norms = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0,
               11.0, 12.0, 13.0, 14.0, 15.0, kInfNorm};
  auto stats = CollectStatistics(q, db, all);

  CollectorOptions two;
  two.norms = {2.0};
  two.include_cardinalities = false;
  auto stats2 = CollectStatistics(q, db, two);

  const int n = q.num_vars();
  row.agm =
      Ratio(LpNormBound(n, FilterAgmStatistics(stats)).log2_bound, row.truth);
  row.panda = Ratio(LpNormBound(n, FilterPandaStatistics(stats)).log2_bound,
                    row.truth);
  row.l2 = Ratio(LpNormBound(n, stats2).log2_bound, row.truth);
  row.full = Ratio(LpNormBound(n, stats).log2_bound, row.truth);
  row.duck = Ratio(TraditionalEstimateLog2(q, db), row.truth);
  return row;
}

void PrintTable() {
  std::printf(
      "== Triangle query Q(X,Y,Z) = E(X,Y) ∧ E(Y,Z) ∧ E(Z,X) "
      "(App. C.1, SNAP stand-ins) ==\n");
  std::printf("ratios of bound/estimate to the true cardinality; 1 = "
              "perfect, lower is better\n");
  std::printf("%-18s %12s %10s %10s %10s %12s %10s\n", "dataset", "true",
              "{1}", "{1,inf}", "{2}", "{1..15,inf}", "trad(DuckDB)");
  for (const GraphSpec& spec : SnapStandInSpecs()) {
    Row r = RunDataset(spec);
    std::printf("%-18s %12llu %10s %10s %10s %12s %10s\n", r.dataset.c_str(),
                static_cast<unsigned long long>(r.truth), Sci(r.agm).c_str(),
                Sci(r.panda).c_str(), Sci(r.l2).c_str(), Sci(r.full).c_str(),
                Sci(r.duck).c_str());
  }
  std::printf("\n");
}

void BM_TriangleBoundComputation(benchmark::State& state) {
  GraphSpec spec = SnapStandInSpecs()[0];  // ca_GrQc
  Catalog db;
  Relation g = GeneratePowerLawGraph(spec);
  g.set_name("E");
  db.Add(std::move(g));
  Query q = *ParseQuery("E(X,Y), E(Y,Z), E(Z,X)");
  CollectorOptions opt;
  opt.norms = {1.0, 2.0, 3.0, kInfNorm};
  auto stats = CollectStatistics(q, db, opt);
  for (auto _ : state) {
    auto bound = LpNormBound(q.num_vars(), stats);
    benchmark::DoNotOptimize(bound.log2_bound);
  }
}
BENCHMARK(BM_TriangleBoundComputation);

void BM_TriangleStatisticsCollection(benchmark::State& state) {
  GraphSpec spec = SnapStandInSpecs()[0];
  Catalog db;
  Relation g = GeneratePowerLawGraph(spec);
  g.set_name("E");
  db.Add(std::move(g));
  Query q = *ParseQuery("E(X,Y), E(Y,Z), E(Z,X)");
  CollectorOptions opt;
  opt.norms = {1.0, 2.0, 3.0, kInfNorm};
  for (auto _ : state) {
    auto stats = CollectStatistics(q, db, opt);
    benchmark::DoNotOptimize(stats.size());
  }
}
BENCHMARK(BM_TriangleStatisticsCollection);

void BM_TriangleTrueCount(benchmark::State& state) {
  GraphSpec spec = SnapStandInSpecs()[0];
  Catalog db;
  Relation g = GeneratePowerLawGraph(spec);
  g.set_name("E");
  db.Add(std::move(g));
  Query q = *ParseQuery("E(X,Y), E(Y,Z), E(Z,X)");
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountJoin(q, db));
  }
}
BENCHMARK(BM_TriangleTrueCount);

}  // namespace
}  // namespace lpb

int main(int argc, char** argv) {
  lpb::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
