#!/usr/bin/env python3
"""CI perf-regression gate for bench_throughput's JSON artifact.

Usage:
    compare_throughput.py BASELINE.json NEW.json [--tolerance 0.25]
                          [--min-batch-speedup 2.0] [--strict-absolute]
                          [--pivot-tolerance 0.15] [--max-devex-ratio 0.85]
                          [--kernel-share-tolerance 0.25]
                          [--kernel-calls-tolerance 0.25]

Fails (exit 1) when
  * any warm or batch regime's *cold-normalized* estimates/s (the JSON's
    "speedup" field: est/s divided by the same run's cold est/s) falls
    more than --tolerance below the baseline's for the same backend, or
  * the batch regime serves fewer than --min-batch-speedup times the
    scalar warm regime's estimates/s on either backend (the batch
    evaluation acceptance bar), or
  * a gamma_n8 or gamma_n10 pricing lane's total simplex pivot count
    grows more than --pivot-tolerance above its baseline (the fixed-seed
    cutting-plane Γn compiles — pivot counts are deterministic per seed,
    so this gates the revised backend's iteration count, not wall-clock;
    the n = 10 lane additionally carries a deliberately generous
    wall-clock ceiling, --gamma-n10-max-seconds, because that compile
    took minutes before warm row appends and the ceiling catches a
    wholesale fallback to cold re-solves even on a slow runner), or
  * the revised backend's cutting-plane batch regime (gamma_cut_batch)
    serves fewer than --min-cut-batch-ratio times its own scalar
    evaluate-sequence rate — both rates come from the same process, so
    the ratio is machine-independent; the dense backend's ratio is
    printed for visibility only (its batch path is the row-reuse
    fallback, not the shared-pool resolve), or
  * a serve lane (the AdvisorService admission-batching regime: 16
    client threads x pipelined single estimates with invalidation churn)
    aggregates fewer than --min-serve-speedup times the same-process
    single-threaded scalar-warm rate (warm_ratio — the serving
    acceptance bar: admission batching must recover the batch path's
    amortization from scalar traffic), or its mean coalesced batch size
    falls below --min-serve-coalesce (coalescing-effectiveness bar:
    batches must actually form), or its p99 latency exceeds
    --serve-p99-max-ms (a deliberately generous absolute ceiling — a
    microbatch window is 100us, so a p99 in the hundreds of ms means
    requests are stuck behind a stalled queue, not a slow machine), or
    its norm-cache hit rate falls below --min-norm-hit-rate (the Zipf
    template mix repeats keys; a cold cache here means batched assembly
    stopped reusing the store), or its warm_ratio falls more than
    --tolerance below the baseline's for the same backend (skipped with
    a note when the baseline predates the serve section), or any
    requests were rejected (shutdown races the measured window), or
  * the devex_cold lane needs more than --max-devex-ratio of the
    dantzig_cold lane's pivots (the Devex pricing acceptance bar:
    measured ~0.73 at introduction, i.e. ~27% fewer pivots than the
    candidate-list Dantzig lane. The bar moved to the cold-growth lanes
    when warm row appends landed: warm rounds repair via dual simplex,
    where column pricing plays no part), or
  * the warm-append devex lane needs more than --max-warm-cold-ratio of
    the cold-growth devex lane's pivots on the same seeds (the warm
    row-append acceptance bar: measured ~0.15 at introduction — appended
    rows enter with slacks basic on the previous optimum and dual simplex
    repairs only the violated rows, instead of a two-phase re-solve per
    cut round), or
  * a kernel's call count in a regime's table (a fixed number of workload
    sweeps, so calls are deterministic per build) grows more than
    --kernel-calls-tolerance above its baseline — the sharpest signal:
    a broken unchanged-RHS fast exit or B^-1 memoization shows up here as
    a call-count explosion long before wall-clock notices, or
  * an optimizer lane's enumeration counters (probes, batch_calls) grow
    above baseline — DPsize candidate admissibility is connectivity-driven
    and independent of estimate values, so these counts are exactly
    deterministic per workload: any growth means the one-batch-per-DP-level
    probing discipline broke (gated with zero tolerance; refresh the
    baseline when the workload or DP legitimately changes). A bound lane
    whose advisor_batch_calls differs from its own batch_calls fails the
    same check from the advisor's side, or
  * the executed plan-quality sums regress: the bound-driven DP's summed
    peak intermediate (optimizer_plan_quality.bound_peak_sum) must not
    exceed the traditional-model DP's or the greedy baseline's on the
    fixed-seed JOB scoring set — all three plans execute in the same
    process on the same data, so the comparison is machine-independent.
    Raw plans/s is informational unless --strict-absolute, or
  * a kernel's share of a regime's total kernel cycles grows more than
    --kernel-share-tolerance above its baseline share — shares are
    ratios within one process, so this pins a *slower kernel* (same
    calls, more cycles) to a name without flaking on absolute machine
    speed. The hot kernels run ~100 cycles/call, so their measured
    shares still wobble with timer-interrupt placement; the tolerance is
    deliberately loose and the call gate is the tight one.

The kernel-share gate is skipped (with a warning) when the baseline was
recorded under a different CPU feature set, compiler, or SIMD dispatch
than the new artifact — the headers carry cpu_avx2 / cpu_fma / compiler /
simd_dispatch for exactly this comparison. A feature mismatch alone never
fails the gate: runners legitimately differ. The call-count gate runs
either way (dispatch changes which code implements a kernel, never how
often it is called).

The gating checks are ratios of numbers measured in the same process on
the same machine (or deterministic pivot counts), so they catch real
warm/batch-path regressions without flaking on runner-to-runner speed
differences. Raw est/s is printed for visibility and compared only under
--strict-absolute (useful on a dedicated runner); the checked-in
baseline's absolute numbers come from the reference dev box scaled to 60%
(see its "_note").

Refresh bench/baseline_throughput.json from a CI artifact whenever a PR
legitimately shifts throughput or pivot counts.
"""

import argparse
import json
import sys


def by_backend(runs):
    return {run["backend"]: run for run in runs}


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("new")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional drop vs baseline")
    parser.add_argument("--min-batch-speedup", type=float, default=2.0,
                        help="required batch/warm estimates-per-second ratio")
    parser.add_argument("--strict-absolute", action="store_true",
                        help="also gate on raw est/s (same-machine baselines)")
    parser.add_argument("--pivot-tolerance", type=float, default=0.15,
                        help="allowed fractional gamma_n8/n10 pivot growth")
    parser.add_argument("--gamma-n10-max-seconds", type=float, default=60.0,
                        help="wall-clock ceiling for the gamma_n10 compile "
                             "(generous: ~0.5s on the dev box; minutes means "
                             "warm row appends fell back to cold re-solves)")
    parser.add_argument("--min-cut-batch-ratio", type=float, default=2.0,
                        help="required batch/scalar ratio for the revised "
                             "backend's cutting-plane batch regime")
    parser.add_argument("--min-serve-speedup", type=float, default=3.0,
                        help="required serve/warm aggregate throughput ratio "
                             "(16 clients vs single-threaded scalar warm)")
    parser.add_argument("--min-serve-coalesce", type=float, default=1.2,
                        help="required mean coalesced admission-batch size")
    parser.add_argument("--serve-p99-max-ms", type=float, default=500.0,
                        help="absolute p99 latency ceiling for the serve "
                             "regime (generous: ~2ms on the dev box)")
    parser.add_argument("--min-norm-hit-rate", type=float, default=0.5,
                        help="required norm-cache hit rate in the serve "
                             "regime's Zipf template mix")
    parser.add_argument("--max-devex-ratio", type=float, default=0.85,
                        help="max devex/dantzig pivot ratio on the "
                             "gamma_n8 cold-growth lanes")
    parser.add_argument("--max-warm-cold-ratio", type=float, default=0.6,
                        help="max warm-append/cold-growth pivot ratio on "
                             "the gamma_n8 devex lanes")
    parser.add_argument("--kernel-share-tolerance", type=float, default=0.25,
                        help="allowed absolute growth of a kernel's share "
                             "of its regime's total kernel cycles")
    parser.add_argument("--kernel-calls-tolerance", type=float, default=0.25,
                        help="allowed fractional growth of a kernel's call "
                             "count in a regime's kernel table")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.new) as f:
        new = json.load(f)

    failures = []

    # Feature-set comparability check: warn (never fail) when the baseline
    # artifact came from a different CPU/compiler/dispatch, and skip the
    # per-kernel cycle-share gate in that case — cycle distributions are
    # only meaningful within one feature set.
    features_match = True
    for key in ("cpu_avx2", "cpu_fma", "compiler", "simd_dispatch"):
        base_v, new_v = baseline.get(key), new.get(key)
        if base_v != new_v:
            features_match = False
            print(f"WARNING: baseline {key}={base_v!r} but new {key}={new_v!r}"
                  f" — per-kernel cycle shares are not comparable",
                  file=sys.stderr)
    print(f"{'metric':<34} {'baseline':>12} {'new':>12} {'ratio':>8}")
    for section in ("warm", "batch"):
        base_runs = by_backend(baseline.get(section, []))
        new_runs = by_backend(new.get(section, []))
        for backend, base_run in sorted(base_runs.items()):
            if backend not in new_runs:
                failures.append(f"{section}/{backend}: missing from new JSON")
                continue
            new_run = new_runs[backend]
            for metric, gated in (("speedup", True),
                                  ("est_per_s", args.strict_absolute)):
                base_v, new_v = base_run[metric], new_run[metric]
                ratio = new_v / base_v if base_v > 0 else float("inf")
                tag = "" if gated else " (info)"
                print(f"{section + ' ' + backend + ' ' + metric + tag:<34} "
                      f"{base_v:>12.1f} {new_v:>12.1f} {ratio:>7.2f}x")
                if gated and new_v < (1.0 - args.tolerance) * base_v:
                    failures.append(
                        f"{section}/{backend}: {metric} {new_v:.1f} is "
                        f">{args.tolerance:.0%} below baseline {base_v:.1f}")

    # Per-kernel gates over the fixed-sweep kernel tables. Calls are
    # deterministic per build (same workload, same sweep count), so the
    # call gate is tight and runs regardless of the feature headers; a
    # call-count explosion means a fast exit or memoization broke. Cycle
    # *shares* are machine-independent ratios but still noisy for the
    # ~100-cycle kernels, so that gate is loose and only runs when the
    # feature headers match.
    for section in ("warm", "batch", "batch_what_if"):
        base_runs = by_backend(baseline.get(section, []))
        new_runs = by_backend(new.get(section, []))
        for backend, base_run in sorted(base_runs.items()):
            new_run = new_runs.get(backend)
            if new_run is None or "kernels" not in base_run:
                continue
            base_total = sum(k["cycles"] for k in base_run["kernels"])
            new_total = sum(k["cycles"] for k in new_run.get("kernels", []))
            new_by_name = {k["name"]: k for k in new_run.get("kernels", [])}
            for kern in base_run["kernels"]:
                new_kern = new_by_name.get(kern["name"],
                                           {"calls": 0, "cycles": 0})
                base_calls, new_calls = kern["calls"], new_kern["calls"]
                ratio = new_calls / base_calls if base_calls else float("inf")
                label = f"{section} {backend} {kern['name']} calls"
                print(f"{label:<34} {base_calls:>12} {new_calls:>12} "
                      f"{ratio:>7.2f}x")
                if new_calls > (1.0 + args.kernel_calls_tolerance) * base_calls:
                    failures.append(
                        f"{section}/{backend}: kernel {kern['name']} "
                        f"called {new_calls}x vs baseline {base_calls} "
                        f"(>{args.kernel_calls_tolerance:.0%} growth — "
                        f"fast-exit/memoization regression?)")
                if not features_match or base_total <= 0 or new_total <= 0:
                    continue
                base_share = kern["cycles"] / base_total
                new_share = new_kern["cycles"] / new_total
                label = f"{section} {backend} {kern['name']} share"
                print(f"{label:<34} {base_share:>12.3f} "
                      f"{new_share:>12.3f}")
                if new_share > base_share + args.kernel_share_tolerance:
                    failures.append(
                        f"{section}/{backend}: kernel {kern['name']} "
                        f"cycle share {new_share:.2f} is more than "
                        f"{args.kernel_share_tolerance:.2f} above "
                        f"baseline {base_share:.2f}")

    # gamma_n8 / gamma_n10 pivot gates: deterministic per seed, so a tight
    # tolerance is safe (the slack absorbs compiler-to-compiler
    # floating-point drift). The n = 10 lane also gets a generous
    # wall-clock ceiling: pivot counts stay honest under an accidental
    # cold fallback only because cold and warm happen to pivot similarly
    # per round — the *time* blows up from seconds to minutes, and the
    # ceiling is what notices.
    new_gamma = {}
    for section in ("gamma_n8", "gamma_n10"):
        base_gamma = {run["pricing"]: run
                      for run in baseline.get(section, [])}
        new_gamma = {run["pricing"]: run for run in new.get(section, [])}
        for pricing, base_run in sorted(base_gamma.items()):
            if pricing not in new_gamma:
                failures.append(f"{section}/{pricing}: missing from new JSON")
                continue
            base_p = base_run["pivots"]
            new_p = new_gamma[pricing]["pivots"]
            ratio = new_p / base_p if base_p > 0 else float("inf")
            print(f"{section + ' ' + pricing + ' pivots':<34} "
                  f"{base_p:>12} {new_p:>12} {ratio:>7.2f}x")
            if new_p > (1.0 + args.pivot_tolerance) * base_p:
                failures.append(
                    f"{section}/{pricing}: {new_p} pivots is "
                    f">{args.pivot_tolerance:.0%} above baseline {base_p}")
        if section == "gamma_n10":
            for pricing, run in sorted(new_gamma.items()):
                seconds = run.get("seconds", 0.0)
                print(f"{section + ' ' + pricing + ' seconds':<34} "
                      f"{'':>12} {seconds:>12.2f}")
                if seconds > args.gamma_n10_max_seconds:
                    failures.append(
                        f"{section}/{pricing}: compile took {seconds:.1f}s "
                        f"(ceiling {args.gamma_n10_max_seconds:.0f}s — warm "
                        f"row appends falling back to cold re-solves?)")
    # The Devex pricing bar lives on the *cold-growth* lanes: warm row
    # appends repair via dual simplex, so the warm lanes pivot identically
    # under either pricing rule and say nothing about column pricing.
    new_gamma = {run["pricing"]: run for run in new.get("gamma_n8", [])}
    if "dantzig_cold" in new_gamma and "devex_cold" in new_gamma:
        dantzig_p = new_gamma["dantzig_cold"]["pivots"]
        devex_p = new_gamma["devex_cold"]["pivots"]
        ratio = devex_p / dantzig_p if dantzig_p > 0 else float("inf")
        print(f"{'gamma_n8 devex/dantzig (cold)':<34} {'':>12} {'':>12} "
              f"{ratio:>7.2f}x")
        if ratio > args.max_devex_ratio:
            failures.append(
                f"gamma_n8: cold-growth devex needs {ratio:.2f}x the "
                f"dantzig pivots (max {args.max_devex_ratio:.2f}x)")
    # Warm-append pivot-drop bar: warm cut rounds must pivot at most
    # --max-warm-cold-ratio of the cold recompile loop on the same seeds
    # (the row-append acceptance criterion; measured ~0.15 at
    # introduction, i.e. ~85% fewer pivots).
    if "devex" in new_gamma and "devex_cold" in new_gamma:
        warm_p = new_gamma["devex"]["pivots"]
        cold_p = new_gamma["devex_cold"]["pivots"]
        ratio = warm_p / cold_p if cold_p > 0 else float("inf")
        print(f"{'gamma_n8 warm/cold (devex)':<34} {'':>12} {'':>12} "
              f"{ratio:>7.2f}x")
        if ratio > args.max_warm_cold_ratio:
            failures.append(
                f"gamma_n8: warm-append devex needs {ratio:.2f}x the "
                f"cold-growth pivots (max {args.max_warm_cold_ratio:.2f}x "
                f"— warm row appends not engaging?)")

    warm_runs = by_backend(new.get("warm", []))
    for backend, batch_run in sorted(by_backend(new.get("batch", [])).items()):
        if backend not in warm_runs:
            failures.append(f"batch/{backend}: no matching warm run")
            continue
        speedup = batch_run["est_per_s"] / warm_runs[backend]["est_per_s"]
        print(f"{'batch/warm ' + backend:<34} {'':>12} {'':>12} "
              f"{speedup:>7.2f}x")
        if speedup < args.min_batch_speedup:
            failures.append(
                f"batch/{backend}: only {speedup:.2f}x scalar warm "
                f"(need >= {args.min_batch_speedup:.1f}x)")

    # Serve lanes: every gated number is a same-process ratio (warm_ratio
    # divides by the scalar-warm rate measured minutes earlier in the same
    # binary; mean_batch and the hit rate are pure counters), so the gates
    # travel across runners. The p99 ceiling is absolute but generous —
    # it exists to catch a stalled queue, not a slow machine.
    base_serve = by_backend(baseline.get("serve", []))
    if not base_serve and new.get("serve"):
        print("note: baseline has no serve section — baseline-relative "
              "serve gates skipped (refresh the baseline)")
    for backend, run in sorted(by_backend(new.get("serve", [])).items()):
        label = f"serve {backend}"
        ratio = run.get("warm_ratio", 0.0)
        print(f"{label + ' warm_ratio':<34} {'':>12} {'':>12} "
              f"{ratio:>7.2f}x")
        if ratio < args.min_serve_speedup:
            failures.append(
                f"serve/{backend}: aggregate throughput only {ratio:.2f}x "
                f"scalar warm (need >= {args.min_serve_speedup:.1f}x — "
                f"admission batching not amortizing?)")
        mean_batch = run.get("mean_batch", 0.0)
        print(f"{label + ' mean_batch':<34} {'':>12} {mean_batch:>12.2f}")
        if mean_batch < args.min_serve_coalesce:
            failures.append(
                f"serve/{backend}: mean coalesced batch {mean_batch:.2f} "
                f"(need >= {args.min_serve_coalesce:.1f} — concurrent "
                f"requests are not coalescing)")
        p99_ms = run.get("p99_us", 0.0) / 1000.0
        print(f"{label + ' p99_ms':<34} {'':>12} {p99_ms:>12.2f}")
        if p99_ms > args.serve_p99_max_ms:
            failures.append(
                f"serve/{backend}: p99 {p99_ms:.1f}ms over the "
                f"{args.serve_p99_max_ms:.0f}ms ceiling (stalled queue?)")
        hit_rate = run.get("norm_hit_rate", 0.0)
        print(f"{label + ' norm_hit_rate':<34} {'':>12} {hit_rate:>12.3f}")
        if hit_rate < args.min_norm_hit_rate:
            failures.append(
                f"serve/{backend}: norm-cache hit rate {hit_rate:.2f} "
                f"(need >= {args.min_norm_hit_rate:.2f})")
        if run.get("rejected", 0):
            failures.append(
                f"serve/{backend}: {run['rejected']} requests rejected "
                f"during the measured window")
        base_run = base_serve.get(backend)
        if base_run is not None:
            base_ratio = base_run.get("warm_ratio", 0.0)
            rel = ratio / base_ratio if base_ratio > 0 else float("inf")
            print(f"{label + ' warm_ratio vs base':<34} "
                  f"{base_ratio:>12.2f} {ratio:>12.2f} {rel:>7.2f}x")
            if ratio < (1.0 - args.tolerance) * base_ratio:
                failures.append(
                    f"serve/{backend}: warm_ratio {ratio:.2f} is "
                    f">{args.tolerance:.0%} below baseline {base_ratio:.2f}")
            tag = "" if args.strict_absolute else " (info)"
            base_eps = base_run.get("est_per_s", 0.0)
            new_eps = run.get("est_per_s", 0.0)
            print(f"{label + ' est_per_s' + tag:<34} {base_eps:>12.1f} "
                  f"{new_eps:>12.1f}")
            if (args.strict_absolute
                    and new_eps < (1.0 - args.tolerance) * base_eps):
                failures.append(
                    f"serve/{backend}: est_per_s {new_eps:.1f} is "
                    f">{args.tolerance:.0%} below baseline {base_eps:.1f}")

    # Optimizer lanes: enumeration counters are exactly deterministic
    # (connectivity-driven, estimate-value-independent), so probe/batch
    # growth is gated with zero tolerance. The advisor-side batch counter
    # must agree with the optimizer's own count on the bound lanes — one
    # EstimateLog2Batch call per DP level, verified from both sides.
    base_opt = {(r["model"], r["backend"]): r
                for r in baseline.get("optimizer", [])}
    new_opt = {(r["model"], r["backend"]): r
               for r in new.get("optimizer", [])}
    for key, base_run in sorted(base_opt.items()):
        label = f"optimizer {key[0]}/{key[1]}"
        if key not in new_opt:
            failures.append(f"{label}: missing from new JSON")
            continue
        new_run = new_opt[key]
        for metric in ("probes", "batch_calls"):
            base_v, new_v = base_run[metric], new_run[metric]
            ratio = new_v / base_v if base_v else float("inf")
            print(f"{label + ' ' + metric:<34} {base_v:>12} {new_v:>12} "
                  f"{ratio:>7.2f}x")
            if new_v > base_v:
                failures.append(
                    f"{label}: {metric} grew {base_v} -> {new_v} "
                    f"(deterministic count — batching discipline broke?)")
        plans = new_run.get("plans_per_s", 0.0)
        base_plans = base_run.get("plans_per_s", 0.0)
        tag = "" if args.strict_absolute else " (info)"
        print(f"{label + ' plans_per_s' + tag:<34} {base_plans:>12.1f} "
              f"{plans:>12.1f}")
        if args.strict_absolute and plans < (1.0 - args.tolerance) * base_plans:
            failures.append(
                f"{label}: plans_per_s {plans:.1f} is "
                f">{args.tolerance:.0%} below baseline {base_plans:.1f}")
    for key, run in sorted(new_opt.items()):
        if key[0] != "bound":
            continue
        # batch_calls counts one workload sweep; the advisor counter spans
        # the whole timed run of `repeats` sweeps.
        expected = run.get("batch_calls", 0) * run.get("repeats", 0)
        if run.get("advisor_batch_calls") != expected:
            failures.append(
                f"optimizer {key[0]}/{key[1]}: advisor saw "
                f"{run.get('advisor_batch_calls')} batches but the DP "
                f"issued {run.get('batch_calls')} x {run.get('repeats')} "
                f"sweeps — a level probed the advisor more than once")

    # Executed plan quality: all three plans ran in the same process on
    # the same fixed-seed data, so the sums are deterministic and the
    # bound-driven DP must not materialize more than the traditional DP
    # or the greedy baseline in aggregate.
    pq = new.get("optimizer_plan_quality")
    if pq is None and "optimizer_plan_quality" in baseline:
        failures.append("optimizer_plan_quality: missing from new JSON")
    if pq is not None:
        bound = pq["bound_peak_sum"]
        for rival in ("traditional", "greedy"):
            rival_sum = pq[f"{rival}_peak_sum"]
            ratio = bound / rival_sum if rival_sum else float("inf")
            print(f"{'plan quality bound/' + rival:<34} {rival_sum:>12} "
                  f"{bound:>12} {ratio:>7.2f}x")
            if bound > rival_sum:
                failures.append(
                    f"optimizer_plan_quality: bound-driven peak sum {bound} "
                    f"exceeds {rival} {rival_sum} on the JOB scoring set")

    # Cutting-plane batch regime: the shared-pool multi-RHS resolve must
    # beat the scalar evaluate sequence on the revised backend. Both rates
    # are measured in the same process, so the ratio travels across
    # runners. Dense is informational: its batch path is the row-reuse
    # fallback, and the shared pool only helps it amortize separation.
    for run in new.get("gamma_cut_batch", []):
        backend = run["backend"]
        ratio = (run["batch_est_per_s"] / run["scalar_est_per_s"]
                 if run["scalar_est_per_s"] > 0 else float("inf"))
        gated = backend == "revised"
        tag = "" if gated else " (info)"
        print(f"{'cut batch/scalar ' + backend + tag:<34} "
              f"{'':>12} {'':>12} {ratio:>7.2f}x")
        if gated and ratio < args.min_cut_batch_ratio:
            failures.append(
                f"gamma_cut_batch/{backend}: batch only {ratio:.2f}x the "
                f"scalar sequence (need >= {args.min_cut_batch_ratio:.1f}x)")

    if failures:
        print("\nPERF GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nperf gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
