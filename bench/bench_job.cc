// Reproduces Figure 1 (Appendix C.2): for each of the 33 JOB-style acyclic
// queries, the ratio to the true cardinality of (a) our ℓp bound with the
// norm set it used, (b) the AGM {1}-bound, (c) the PANDA {1,∞}-bound and
// (d) the traditional (DuckDB stand-in) estimate.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "bounds/agm.h"
#include "bounds/normal_engine.h"
#include "datagen/job_gen.h"
#include "estimator/traditional.h"
#include "exec/generic_join.h"
#include "stats/collector.h"

namespace lpb {
namespace {

CollectorOptions FullNorms() {
  CollectorOptions opt;
  for (int p = 1; p <= 30; ++p) opt.norms.push_back(p);
  opt.norms.push_back(kInfNorm);
  return opt;
}

void PrintTable(const JobWorkload& wl) {
  std::printf(
      "== JOB benchmark, 33 acyclic queries (Figure 1; synthetic IMDB "
      "stand-in) ==\n");
  std::printf("ratios of bound/estimate to the true cardinality\n");
  std::printf("%-5s %5s %12s %10s %-22s %10s %10s %10s\n", "query", "#rel",
              "true", "ours", "norms used", "AGM:{1}", "PANDA", "DuckDB");
  CollectorOptions opt = FullNorms();
  for (const Query& q : wl.queries) {
    const uint64_t truth = CountJoin(q, wl.catalog);
    auto stats = CollectStatistics(q, wl.catalog, opt);
    auto ours = LpNormBound(q.num_vars(), stats);
    auto panda =
        LpNormBound(q.num_vars(), FilterPandaStatistics(stats));
    AgmResult agm = AgmBound(q, wl.catalog);
    const double duck = TraditionalEstimateLog2(q, wl.catalog);
    std::printf("%-5s %5d %12llu %10s %-22s %10s %10s %10s\n",
                q.name().c_str(), q.num_atoms(),
                static_cast<unsigned long long>(truth),
                Sci(Ratio(ours.log2_bound, truth)).c_str(),
                UsedNorms(ours, stats).c_str(),
                Sci(Ratio(agm.log2_bound, truth)).c_str(),
                Sci(Ratio(panda.log2_bound, truth)).c_str(),
                Sci(Ratio(duck, truth)).c_str());
  }
  std::printf("\n");
}

const JobWorkload& SharedWorkload() {
  static JobWorkload wl = [] {
    JobWorkloadOptions opt;
    opt.scale = 0.25;
    return GenerateJobWorkload(opt);
  }();
  return wl;
}

void BM_JobBoundPerQuery(benchmark::State& state) {
  const JobWorkload& wl = SharedWorkload();
  const Query& q = wl.queries[static_cast<size_t>(state.range(0))];
  auto stats = CollectStatistics(q, wl.catalog, FullNorms());
  for (auto _ : state) {
    auto bound = LpNormBound(q.num_vars(), stats);
    benchmark::DoNotOptimize(bound.log2_bound);
  }
  state.SetLabel(q.name());
}
BENCHMARK(BM_JobBoundPerQuery)->Arg(0)->Arg(8)->Arg(27)->Arg(32);

void BM_JobStatsCollection(benchmark::State& state) {
  const JobWorkload& wl = SharedWorkload();
  const Query& q = wl.queries[8];  // q9: three fact stars
  for (auto _ : state) {
    auto stats = CollectStatistics(q, wl.catalog, FullNorms());
    benchmark::DoNotOptimize(stats.size());
  }
}
BENCHMARK(BM_JobStatsCollection);

void BM_JobTrueCount(benchmark::State& state) {
  const JobWorkload& wl = SharedWorkload();
  const Query& q = wl.queries[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountJoin(q, wl.catalog));
  }
}
BENCHMARK(BM_JobTrueCount);

}  // namespace
}  // namespace lpb

int main(int argc, char** argv) {
  lpb::PrintTable(lpb::SharedWorkload());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
