// Shared helpers for the paper-table benchmark binaries.
//
// Each bench binary first prints the paper's table (rows = ratios of each
// bound/estimate to the true cardinality, as in Appendix C) and then runs
// the google-benchmark timings registered in the same file.
#ifndef LPB_BENCH_BENCH_COMMON_H_
#define LPB_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bounds/engine.h"
#include "relation/degree_sequence.h"
#include "stats/statistic.h"

namespace lpb {

// Ratio of a log2-bound to a true count, in linear space.
inline double Ratio(double log2_bound, uint64_t truth) {
  if (truth == 0) return std::numeric_limits<double>::infinity();
  return std::exp2(log2_bound - std::log2(static_cast<double>(truth)));
}

// "1.62e+00"-style rendering used in the paper's Figure 1.
inline std::string Sci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

// Distinct norm indices with nonzero dual weight — the "Norms" column of
// Figure 1.
inline std::string UsedNorms(const BoundResult& bound,
                             const std::vector<ConcreteStatistic>& stats) {
  std::vector<double> used;
  for (size_t i = 0; i < stats.size(); ++i) {
    if (i < bound.weights.size() && bound.weights[i] > 1e-6) {
      double p = stats[i].p;
      bool seen = false;
      for (double q : used) {
        if ((q >= kInfNorm / 2 && p >= kInfNorm / 2) ||
            std::abs(q - p) < 1e-9) {
          seen = true;
        }
      }
      if (!seen) used.push_back(p);
    }
  }
  std::sort(used.begin(), used.end());
  std::string out = "{";
  for (size_t i = 0; i < used.size(); ++i) {
    if (i) out += ",";
    if (used[i] >= kInfNorm / 2) {
      out += "inf";
    } else {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%g", used[i]);
      out += buf;
    }
  }
  return out + "}";
}

}  // namespace lpb

#endif  // LPB_BENCH_BENCH_COMMON_H_
