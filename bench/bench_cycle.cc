// Reproduces Example 2.3 / Appendix C.5: on the (1/(p+1), 1/(p+1))-relation
// instance for the (p+1)-cycle query, the ℓp-norm bound (21) with q = p is
// the best bound — AGM and PANDA are asymptotically worse, and every
// smaller q is dominated.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "bounds/formulas.h"
#include "bounds/normal_engine.h"
#include "datagen/alpha_beta.h"
#include "exec/generic_join.h"
#include "query/query.h"
#include "stats/collector.h"

namespace lpb {
namespace {

Query CycleQuery(int k) {
  Query q("cycle" + std::to_string(k));
  for (int i = 0; i < k; ++i) {
    q.AddAtom("R", {"X" + std::to_string(i), "X" + std::to_string((i + 1) % k)});
  }
  return q;
}

void PrintTable() {
  std::printf(
      "== Cycle query of length p+1 on the (1/(p+1),1/(p+1))-relation "
      "(Example 2.3 / App. C.5) ==\n");
  std::printf(
      "log2 of each bound; (21) with q = p is the best, matching the "
      "paper's claim that every ℓp shows up\n");
  std::printf("%-3s %-9s %10s %8s %8s", "p", "|R|", "log2|Q|", "AGM",
              "PANDA");
  for (int qn = 1; qn <= 5; ++qn) std::printf("  eq21(q=%d)", qn);
  std::printf(" %10s\n", "engine");

  for (int p = 2; p <= 5; ++p) {
    const int k = p + 1;
    const uint64_t base = (p <= 3) ? 16 : 8;
    uint64_t m = 1;
    for (int i = 0; i < k; ++i) m *= base;  // M = base^{p+1}
    Catalog db;
    db.Add(AlphaBetaRelation("R", m, 1.0 / k, 1.0 / k));
    Query q = CycleQuery(k);
    const uint64_t truth = CountJoin(q, db);

    const Relation& r = db.Get("R");
    DegreeSequence deg = ComputeDegreeSequence(r, {0}, {1});
    const double log_r = std::log2(static_cast<double>(r.NumRows()));
    const double log_inf = deg.Log2NormP(kInfNorm);

    std::printf("%-3d %-9llu %10.2f %8.2f %8.2f", p,
                static_cast<unsigned long long>(r.NumRows()),
                truth == 0 ? 0.0 : std::log2(static_cast<double>(truth)),
                CycleAgmLog2(log_r, k), CyclePandaLog2(log_r, log_inf, k));
    for (int qn = 1; qn <= 5; ++qn) {
      std::vector<double> logs(k, deg.Log2NormP(qn));
      std::printf("  %9.2f", CycleLog2(logs, qn));
    }

    CollectorOptions opt;
    for (int qq = 1; qq <= p; ++qq) opt.norms.push_back(qq);
    opt.norms.push_back(kInfNorm);
    auto stats = CollectStatistics(q, db, opt);
    auto bound = LpNormBound(q.num_vars(), stats);
    std::printf(" %10.2f\n", bound.log2_bound);
  }
  std::printf("\n");
}

void BM_CycleBound(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const int k = p + 1;
  uint64_t m = 1;
  for (int i = 0; i < k; ++i) m *= 8;
  Catalog db;
  db.Add(AlphaBetaRelation("R", m, 1.0 / k, 1.0 / k));
  Query q = CycleQuery(k);
  CollectorOptions opt;
  for (int qq = 1; qq <= p; ++qq) opt.norms.push_back(qq);
  opt.norms.push_back(kInfNorm);
  auto stats = CollectStatistics(q, db, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LpNormBound(q.num_vars(), stats).log2_bound);
  }
}
BENCHMARK(BM_CycleBound)->Arg(2)->Arg(3)->Arg(4);

}  // namespace
}  // namespace lpb

int main(int argc, char** argv) {
  lpb::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
