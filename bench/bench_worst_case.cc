// Sec 6 tightness: for simple statistics the polymatroid bound is achieved
// (up to a query-dependent constant) by a normal database. Reproduces
// Example 6.7: the normal (diagonal) instance reaches ~B while every
// product database is capped at B^{3/5}.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "bounds/normal_engine.h"
#include "bounds/worst_case.h"
#include "exec/generic_join.h"
#include "query/parser.h"

namespace lpb {
namespace {

ConcreteStatistic Stat(VarSet u, VarSet v, double p, double log_b) {
  ConcreteStatistic s;
  s.sigma = {u, v};
  s.p = p;
  s.log_b = log_b;
  return s;
}

std::vector<ConcreteStatistic> Example67Stats(double b) {
  // ||deg(Y|X)||_4^4 <= B etc. and |S_i| <= B (Eq. 40).
  return {
      Stat(0, 0b001, 1.0, b),          Stat(0, 0b010, 1.0, b),
      Stat(0, 0b100, 1.0, b),          Stat(0b001, 0b010, 4.0, b / 4),
      Stat(0b010, 0b100, 4.0, b / 4),  Stat(0b100, 0b001, 4.0, b / 4),
  };
}

void PrintTable() {
  std::printf(
      "== Worst-case normal database vs product database (Example 6.7) "
      "==\n");
  std::printf("%-8s %10s %14s %14s %16s\n", "log2 B", "bound",
              "|Q(normal D)|", "achieved/2^bd", "product cap B^(3/5)");
  Query q = *ParseQuery("R1(X,Y), R2(Y,Z), R3(Z,X), S1(X), S2(Y), S3(Z)");
  for (double b : {4.0, 6.0, 8.0, 10.0, 12.0}) {
    auto bound = NormalPolymatroidBound(q.num_vars(), Example67Stats(b));
    if (!bound.base.ok()) continue;
    WorstCaseInstance wc = BuildWorstCaseDatabase(q, bound.alpha);
    const uint64_t count = CountJoin(q, wc.database);
    std::printf("%-8.1f %10.3f %14llu %14.3f %16.1f\n", b,
                bound.base.log2_bound,
                static_cast<unsigned long long>(count),
                static_cast<double>(count) / std::exp2(bound.base.log2_bound),
                std::exp2(3.0 * b / 5.0));
  }
  std::printf(
      "(achieved/2^bound >= 1/2^c by Cor. 6.3; the product cap is far "
      "below the normal instance)\n\n");
}

void BM_WorstCaseConstruction(benchmark::State& state) {
  Query q = *ParseQuery("R1(X,Y), R2(Y,Z), R3(Z,X), S1(X), S2(Y), S3(Z)");
  auto bound = NormalPolymatroidBound(q.num_vars(), Example67Stats(10.0));
  for (auto _ : state) {
    WorstCaseInstance wc = BuildWorstCaseDatabase(q, bound.alpha);
    benchmark::DoNotOptimize(wc.witness.NumRows());
  }
}
BENCHMARK(BM_WorstCaseConstruction);

void BM_NormalBoundExample67(benchmark::State& state) {
  Query q = *ParseQuery("R1(X,Y), R2(Y,Z), R3(Z,X), S1(X), S2(Y), S3(Z)");
  auto stats = Example67Stats(10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        NormalPolymatroidBound(q.num_vars(), stats).base.log2_bound);
  }
}
BENCHMARK(BM_NormalBoundExample67);

}  // namespace
}  // namespace lpb

int main(int argc, char** argv) {
  lpb::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
