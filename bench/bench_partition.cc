// Sec 2.2 / Theorem 2.6: the degree-partitioning evaluation. Shows that
// (a) the partitioned union count equals the direct count, (b) every part
// strongly satisfies its ℓp statistic (Lemma 2.5), and times partitioned
// evaluation against the plain worst-case-optimal join and the pairwise
// hash join whose intermediates blow up on skew.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "datagen/graph_gen.h"
#include "exec/generic_join.h"
#include "exec/hash_join.h"
#include "exec/partition.h"
#include "query/parser.h"
#include "relation/degree_sequence.h"

namespace lpb {
namespace {

Catalog SkewedDb() {
  GraphSpec spec;
  spec.name = "E";
  spec.num_nodes = 20000;
  spec.num_edges = 80000;
  spec.zipf_theta = 0.9;
  Catalog db;
  db.Add(GeneratePowerLawGraph(spec));
  return db;
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void PrintTable() {
  Catalog db = SkewedDb();
  std::printf("== Degree-partitioned evaluation (Sec 2.2, Thm 2.6) ==\n");
  const Relation& e = db.Get("E");
  DegreeSequence deg = ComputeDegreeSequence(e, {0}, {1});
  std::printf("E: %zu edges, max degree %llu, ||deg||_2 = %.1f\n",
              e.NumRows(),
              static_cast<unsigned long long>(deg.MaxDegree()),
              deg.NormP(2.0));

  auto parts = PartitionStrong(e, {0}, {1}, 2.0);
  const double log_b = deg.Log2NormP(2.0);
  size_t strong = 0;
  for (const Relation& p : parts) {
    if (StronglySatisfiesLog2(p, {0}, {1}, 2.0, log_b)) ++strong;
  }
  std::printf(
      "PartitionStrong(p=2): %zu parts, %zu/%zu strongly satisfy the "
      "l2-statistic (Lemma 2.5)\n",
      parts.size(), strong, parts.size());

  for (const char* text : {"E(X,Y), E(Y,Z)", "E(X,Y), E(Y,Z), E(Z,X)"}) {
    Query q = *ParseQuery(text);
    auto t0 = std::chrono::steady_clock::now();
    const uint64_t direct = CountJoin(q, db);
    const double t_direct = Seconds(t0);

    // Partition the first two atoms; partitioning all three atoms of the
    // triangle is O((log N)^3) subqueries, which Theorem 2.6 permits but a
    // benchmark does not need.
    std::vector<PartitionSpec> specs;
    for (int a = 0; a < std::min(q.num_atoms(), 2); ++a) {
      specs.push_back({a, {0}, {1}, 2.0});
    }
    t0 = std::chrono::steady_clock::now();
    auto part = CountJoinPartitioned(q, db, specs);
    const double t_part = Seconds(t0);

    t0 = std::chrono::steady_clock::now();
    const uint64_t hash = CountByHashJoin(q, db).output_count;
    const double t_hash = Seconds(t0);

    std::printf(
        "%-28s |Q| = %llu  [wcoj %.3fs | partitioned %.3fs over %llu "
        "subqueries (%llu nonempty) | hash %.3fs]  counts %s\n",
        text, static_cast<unsigned long long>(direct), t_direct, t_part,
        static_cast<unsigned long long>(part.subqueries),
        static_cast<unsigned long long>(part.nonempty_subqueries), t_hash,
        (direct == part.count && direct == hash) ? "AGREE" : "DISAGREE!");
  }
  std::printf("\n");
}

void BM_PartitionStrong(benchmark::State& state) {
  Catalog db = SkewedDb();
  const Relation& e = db.Get("E");
  for (auto _ : state) {
    auto parts = PartitionStrong(e, {0}, {1}, 2.0);
    benchmark::DoNotOptimize(parts.size());
  }
}
BENCHMARK(BM_PartitionStrong);

void BM_DirectJoin(benchmark::State& state) {
  Catalog db = SkewedDb();
  Query q = *ParseQuery("E(X,Y), E(Y,Z)");
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountJoin(q, db));
  }
}
BENCHMARK(BM_DirectJoin);

void BM_PartitionedJoin(benchmark::State& state) {
  Catalog db = SkewedDb();
  Query q = *ParseQuery("E(X,Y), E(Y,Z)");
  std::vector<PartitionSpec> specs = {{0, {0}, {1}, 2.0}, {1, {0}, {1}, 2.0}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountJoinPartitioned(q, db, specs).count);
  }
}
BENCHMARK(BM_PartitionedJoin);

}  // namespace
}  // namespace lpb

int main(int argc, char** argv) {
  lpb::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
