// Ablation study (design-choice analysis from DESIGN.md): how does the
// bound degrade as the available norm set shrinks? Mirrors the paper's
// observation that the JOB optima draw on norms from all over {1..30, ∞}
// and that dropping ℓ2 from the triangle statistics costs 1.3-4.7x
// (App. C.1).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "bounds/normal_engine.h"
#include "datagen/graph_gen.h"
#include "datagen/job_gen.h"
#include "exec/yannakakis.h"
#include "exec/generic_join.h"
#include "query/parser.h"
#include "stats/collector.h"

namespace lpb {
namespace {

double BoundWithNorms(const Query& q, const Catalog& db,
                      std::vector<double> norms) {
  CollectorOptions opt;
  opt.norms = std::move(norms);
  auto stats = CollectStatistics(q, db, opt);
  return LpNormBound(q.num_vars(), stats).log2_bound;
}

void PrintTable() {
  std::printf("== Norm-set ablation ==\n");

  // Triangle on a skewed graph: drop norms one class at a time.
  {
    GraphSpec spec = SnapStandInSpecs()[0];  // ca_GrQc
    Catalog db;
    Relation g = GeneratePowerLawGraph(spec);
    g.set_name("E");
    db.Add(std::move(g));
    Query q = *ParseQuery("E(X,Y), E(Y,Z), E(Z,X)");
    const uint64_t truth = CountJoin(q, db);
    std::printf("triangle on %s (true %llu):\n", spec.name.c_str(),
                static_cast<unsigned long long>(truth));
    struct Case {
      const char* label;
      std::vector<double> norms;
    };
    const Case cases[] = {
        {"{1}", {1.0}},
        {"{1,inf}", {1.0, kInfNorm}},
        {"{1,2,inf}", {1.0, 2.0, kInfNorm}},
        {"{1,3,inf} (no l2)", {1.0, 3.0, kInfNorm}},
        {"{1,4,inf}", {1.0, 4.0, kInfNorm}},
        {"{1..5,inf}", {1.0, 2.0, 3.0, 4.0, 5.0, kInfNorm}},
    };
    for (const Case& c : cases) {
      const double b = BoundWithNorms(q, db, c.norms);
      std::printf("  %-20s ratio %10s\n", c.label, Sci(Ratio(b, truth)).c_str());
    }
  }

  // A JOB query: cumulative norm sets.
  {
    JobWorkloadOptions jopt;
    jopt.scale = 0.2;
    JobWorkload wl = GenerateJobWorkload(jopt);
    const Query& q = wl.queries[8];  // q9
    auto fast = CountAcyclic(q, wl.catalog);
    const uint64_t truth = fast.value_or(0);
    std::printf("JOB %s (true %llu):\n", q.name().c_str(),
                static_cast<unsigned long long>(truth));
    std::vector<double> norms = {1.0, kInfNorm};
    std::printf("  %-20s ratio %10s\n", "{1,inf}",
                Sci(Ratio(BoundWithNorms(q, wl.catalog, norms), truth)).c_str());
    for (int p = 2; p <= 8; ++p) {
      norms.push_back(p);
      char label[32];
      std::snprintf(label, sizeof(label), "{1..%d,inf}", p);
      std::printf("  %-20s ratio %10s\n", label,
                  Sci(Ratio(BoundWithNorms(q, wl.catalog, norms), truth))
                      .c_str());
    }
  }
  std::printf("\n");
}

void BM_AblationBoundSmallNormSet(benchmark::State& state) {
  JobWorkloadOptions jopt;
  jopt.scale = 0.1;
  JobWorkload wl = GenerateJobWorkload(jopt);
  const Query& q = wl.queries[8];
  CollectorOptions opt;
  opt.norms = {1.0, 2.0, kInfNorm};
  auto stats = CollectStatistics(q, wl.catalog, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LpNormBound(q.num_vars(), stats).log2_bound);
  }
}
BENCHMARK(BM_AblationBoundSmallNormSet);

void BM_AblationBoundLargeNormSet(benchmark::State& state) {
  JobWorkloadOptions jopt;
  jopt.scale = 0.1;
  JobWorkload wl = GenerateJobWorkload(jopt);
  const Query& q = wl.queries[8];
  CollectorOptions opt;
  for (int p = 1; p <= 30; ++p) opt.norms.push_back(p);
  opt.norms.push_back(kInfNorm);
  auto stats = CollectStatistics(q, wl.catalog, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LpNormBound(q.num_vars(), stats).log2_bound);
  }
}
BENCHMARK(BM_AblationBoundLargeNormSet);

void BM_YannakakisVsWcoj(benchmark::State& state) {
  JobWorkloadOptions jopt;
  jopt.scale = 0.1;
  JobWorkload wl = GenerateJobWorkload(jopt);
  const Query& q = wl.queries[8];
  const bool fast = state.range(0) == 1;
  for (auto _ : state) {
    if (fast) {
      benchmark::DoNotOptimize(CountAcyclic(q, wl.catalog).value());
    } else {
      benchmark::DoNotOptimize(CountJoin(q, wl.catalog));
    }
  }
  state.SetLabel(fast ? "yannakakis" : "wcoj");
}
BENCHMARK(BM_YannakakisVsWcoj)->Arg(0)->Arg(1);

}  // namespace
}  // namespace lpb

int main(int argc, char** argv) {
  lpb::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
