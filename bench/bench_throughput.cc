// Compile-once / evaluate-many throughput on a JOB-style template workload.
//
// An optimizer probes the advisor millions of times against a handful of
// query templates. This bench measures estimates/sec on the synthetic JOB
// workload (33 templates) in three regimes:
//   * cold   — a fresh LP built and solved from scratch per estimate
//              (the pre-pipeline behavior: LpNormBound on the statistics);
//   * warm   — the advisor's compiled path: per-structure compiled bound,
//              cached dual witness re-priced per call;
//   * warm + value jitter — the statistics change between calls, so each
//              evaluation re-prices (and occasionally re-solves) rather
//              than hitting an unchanged optimum.
// The table reports the speedup and the advisor's witness/warm/cold
// counters, making the pipeline's cache behavior observable. The warm
// regime runs once per LP backend (dense tableau vs revised simplex, see
// lp/tableau.h), so the table doubles as the perf gate on the revised
// backend's witness path.
//
// Set LPB_BENCH_JSON=<path> to also dump the table as JSON — CI uploads
// it as an artifact so future PRs get a throughput trajectory.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bounds/bound_engine.h"
#include "bounds/normal_engine.h"
#include "datagen/job_gen.h"
#include "estimator/advisor.h"

namespace lpb {
namespace {

JobWorkload& Workload() {
  static JobWorkload wl = [] {
    JobWorkloadOptions opt;
    opt.scale = 0.05;
    return GenerateJobWorkload(opt);
  }();
  return wl;
}

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct WarmRun {
  const char* backend;  // short name, reused by the JSON artifact
  const char* label;
  double est_per_s = 0.0;
  double speedup = 0.0;
  uint64_t witness = 0, warm = 0, cold = 0;
};

// Warm regime for one LP backend: full advisor path (statistics lookup +
// compiled evaluate) over the whole template workload.
WarmRun MeasureWarm(LpBackendKind backend, const char* label, int repeats,
                    const std::vector<double>& expected) {
  JobWorkload& wl = Workload();
  AdvisorOptions opt;
  opt.engine.simplex.backend = backend;
  CardinalityAdvisor advisor(wl.catalog, opt);
  const size_t m = wl.queries.size();
  for (const Query& q : wl.queries) advisor.EstimateLog2(q);  // compile

  const AdvisorMetrics before = advisor.metrics();
  auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < repeats; ++r) {
    for (size_t i = 0; i < m; ++i) {
      const double est = advisor.EstimateLog2(wl.queries[i]);
      benchmark::DoNotOptimize(est);
      if (std::abs(est - expected[i]) > 1e-6) {
        std::printf("MISMATCH on %s (%s): %f vs %f\n",
                    wl.queries[i].name().c_str(), label, est, expected[i]);
      }
    }
  }
  const double secs = Seconds(t0);
  const AdvisorMetrics after = advisor.metrics();
  WarmRun run;
  run.backend = LpBackendName(backend);
  run.label = label;
  run.est_per_s = static_cast<double>(repeats * m) / secs;
  run.witness = after.witness_hits - before.witness_hits;
  run.warm = after.warm_resolves - before.warm_resolves;
  run.cold = after.cold_solves - before.cold_solves;
  return run;
}

void PrintTable() {
  JobWorkload& wl = Workload();
  CardinalityAdvisor advisor(wl.catalog);

  // Per-query statistics, assembled once through the advisor so cold and
  // warm paths see identical inputs (Explain also pre-warms the caches,
  // which is exactly the deployment scenario: templates repeat).
  std::vector<std::vector<ConcreteStatistic>> stats;
  std::vector<double> expected;
  for (const Query& q : wl.queries) {
    auto explanation = advisor.Explain(q);
    stats.push_back(std::move(explanation.stats));
    expected.push_back(explanation.bound.log2_bound);
  }

  const int kRepeats = 30;
  const size_t m = wl.queries.size();

  // Cold: fresh LP build + solve per estimate.
  auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < kRepeats; ++r) {
    for (size_t i = 0; i < m; ++i) {
      benchmark::DoNotOptimize(
          LpNormBound(wl.queries[i].num_vars(), stats[i]).log2_bound);
    }
  }
  const double cold_s = Seconds(t0);
  const double n_est = static_cast<double>(kRepeats * m);
  const double cold_rate = n_est / cold_s;

  WarmRun runs[] = {
      MeasureWarm(LpBackendKind::kDense, "warm dense", kRepeats, expected),
      MeasureWarm(LpBackendKind::kRevised, "warm revised", kRepeats,
                  expected),
  };
  for (WarmRun& run : runs) run.speedup = run.est_per_s / cold_rate;

  std::printf("== Estimator throughput, %zu JOB templates x %d repeats ==\n",
              m, kRepeats);
  std::printf("%-28s %14.0f est/s\n", "cold (LP per estimate)", cold_rate);
  for (const WarmRun& run : runs) {
    std::printf(
        "%-28s %14.0f est/s   (%.1fx)   witness=%llu warm=%llu cold=%llu\n",
        run.label, run.est_per_s, run.speedup,
        static_cast<unsigned long long>(run.witness),
        static_cast<unsigned long long>(run.warm),
        static_cast<unsigned long long>(run.cold));
  }
  std::printf("\n");

  if (const char* json_path = std::getenv("LPB_BENCH_JSON")) {
    if (std::FILE* f = std::fopen(json_path, "w")) {
      std::fprintf(f,
                   "{\n  \"workload\": \"job-templates\",\n"
                   "  \"templates\": %zu,\n  \"repeats\": %d,\n"
                   "  \"cold_est_per_s\": %.1f,\n  \"warm\": [\n",
                   m, kRepeats, cold_rate);
      const size_t num_runs = std::size(runs);
      for (size_t i = 0; i < num_runs; ++i) {
        const WarmRun& run = runs[i];
        std::fprintf(f,
                     "    {\"backend\": \"%s\", \"est_per_s\": %.1f, "
                     "\"speedup\": %.2f, \"witness\": %llu, \"warm\": %llu, "
                     "\"cold\": %llu}%s\n",
                     run.backend, run.est_per_s, run.speedup,
                     static_cast<unsigned long long>(run.witness),
                     static_cast<unsigned long long>(run.warm),
                     static_cast<unsigned long long>(run.cold),
                     i + 1 < num_runs ? "," : "");
      }
      std::fprintf(f, "  ]\n}\n");
      std::fclose(f);
      std::printf("wrote %s\n\n", json_path);
    }
  }
}

void BM_ColdEstimate(benchmark::State& state) {
  JobWorkload& wl = Workload();
  CardinalityAdvisor advisor(wl.catalog);
  const size_t i = static_cast<size_t>(state.range(0));
  auto stats = advisor.Explain(wl.queries[i]).stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        LpNormBound(wl.queries[i].num_vars(), stats).log2_bound);
  }
}
BENCHMARK(BM_ColdEstimate)->Arg(0)->Arg(8)->Arg(20);

void BM_WarmEstimate(benchmark::State& state) {
  JobWorkload& wl = Workload();
  static CardinalityAdvisor advisor(wl.catalog);
  const size_t i = static_cast<size_t>(state.range(0));
  advisor.EstimateLog2(wl.queries[i]);  // compile outside the timed loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(advisor.EstimateLog2(wl.queries[i]));
  }
}
BENCHMARK(BM_WarmEstimate)->Arg(0)->Arg(8)->Arg(20);

// Statistics drift between estimates (value jitter, same structure): the
// witness path re-prices, occasionally falling back to warm/cold re-solves.
void BM_WarmEstimateJitteredValues(benchmark::State& state) {
  JobWorkload& wl = Workload();
  CardinalityAdvisor advisor(wl.catalog);
  const size_t i = static_cast<size_t>(state.range(0));
  auto stats = advisor.Explain(wl.queries[i]).stats;
  auto compiled = FindBoundEngine("auto")->Compile(
      StructureOf(wl.queries[i].num_vars(), stats));
  std::vector<double> values = ValuesOf(stats);
  compiled->Evaluate(values);
  uint64_t tick = 0;
  for (auto _ : state) {
    // Deterministic +/-5% drift on one statistic per call.
    const size_t j = tick % values.size();
    const double jitter = 0.95 + 0.1 * ((tick * 2654435761u >> 16) % 1000) / 1000.0;
    const double saved = values[j];
    values[j] *= jitter;
    benchmark::DoNotOptimize(
        compiled->Evaluate(values, /*want_h_opt=*/false).log2_bound);
    values[j] = saved;
    ++tick;
  }
}
BENCHMARK(BM_WarmEstimateJitteredValues)->Arg(0)->Arg(8)->Arg(20);

}  // namespace
}  // namespace lpb

int main(int argc, char** argv) {
  lpb::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
