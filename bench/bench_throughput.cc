// Compile-once / evaluate-many throughput on a JOB-style template workload.
//
// An optimizer probes the advisor millions of times against a handful of
// query templates. This bench measures estimates/sec on the synthetic JOB
// workload (33 templates) in four regimes:
//   * cold   — a fresh LP built and solved from scratch per estimate
//              (the pre-pipeline behavior: LpNormBound on the statistics);
//   * warm   — the advisor's compiled path: per-structure compiled bound,
//              cached dual witness re-priced per call;
//   * batch  — the advisor's batched what-if path: per template, one
//              statistics assembly + structure lookup + per-bound lock for
//              a whole block of value vectors, re-priced through the LP
//              backend's multi-RHS resolve (EstimateLog2Batch);
//   * warm + value jitter — the statistics change between calls, so each
//              evaluation re-prices (and occasionally re-solves) rather
//              than hitting an unchanged optimum.
// The table reports the speedups and the advisor's witness/warm/cold
// counters, making the pipeline's cache behavior observable. The warm and
// batch regimes run once per LP backend (dense tableau vs revised simplex,
// see lp/tableau.h), so the table doubles as the perf gate on the revised
// backend's witness and block re-pricing paths.
//
// A second, pivot-count workload complements the throughput regimes: the
// fixed-seed cutting-plane Γn compile at n = 8 (the revised backend's
// flagship LP) runs warm-append and cold-growth lanes under both pricing
// rules (Dantzig and Devex, lp/revised_simplex.h) and reports total
// simplex pivots, basis refactorizations, and the warm row-append
// counters from LpSolveStats. Pivot counts are deterministic for a fixed
// seed, so the CI gate can assert on iteration counts — devex must beat
// dantzig on the cold lanes (warm rounds repair via dual simplex, where
// column pricing plays no part), and the warm lanes must pivot well
// under the cold ones — rather than on machine-dependent wall-clock
// alone. A one-seed n = 10 lane rides the same harness: warm row appends
// are what make that compile take seconds rather than minutes, and the
// gate pins its pivot count plus a loose wall-clock ceiling. A
// cutting-plane batch regime (shared cut pool + multi-RHS resolve vs the
// scalar evaluate sequence, steady state) rounds out the table; the
// revised lane's batch/scalar ratio is gated at >= 2x.
//
// An optimizer regime closes the loop on the motivating application
// (src/optimizer/): full DPsize join ordering per JOB template, reported
// as plans/s with the enumeration counters (probes, one advisor batch
// per DP level) that the CI gate pins exactly — they are deterministic,
// connectivity-driven counts. An untimed plan-quality section executes
// the bound-driven, traditional-model, and greedy plans on the <= 8-atom
// templates and sums the actual peak materialized intermediates; the gate
// requires the bound-driven sum to be no worse than either rival.
//
// Set LPB_BENCH_JSON=<path> to also dump the table as JSON — CI uploads
// it as an artifact and bench/compare_throughput.py gates regressions
// against bench/baseline_throughput.json: warm or batch cold-normalized
// throughput (the "speedup" field) >25% below baseline fails the
// workflow, as does batch < 2x scalar warm, a gamma_n8/gamma_n10
// pivot-count regression >15%, devex needing more than
// --max-devex-ratio of the cold dantzig lane's pivots, warm appends
// needing more than --max-warm-cold-ratio of the cold-growth pivots, a
// gamma_n10 compile over the wall-clock ceiling, or the revised cut
// batch under --min-cut-batch-ratio of its scalar rate; raw est/s is
// informational (machine-dependent) unless --strict-absolute.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bounds/bound_engine.h"
#include "bounds/normal_engine.h"
#include "datagen/gamma_stats.h"
#include "datagen/job_gen.h"
#include "estimator/advisor.h"
#include "exec/hash_join.h"
#include "lp/kernels.h"
#include "lp/lp_backend.h"
#include "optimizer/join_order.h"
#include "relation/degree_sequence.h"
#include "serve/advisor_service.h"
#include "util/random.h"
#include "util/zipf.h"

namespace lpb {
namespace {

// Value vectors per template in the batch regime — the scale of one
// optimizer what-if burst against one structure.
constexpr int kBatchSize = 64;

// Every timed regime keeps sweeping the workload until it has measured at
// least this long — sub-50ms samples swing 2x run to run, which no perf
// gate tolerance can absorb.
constexpr double kMinMeasureSeconds = 0.5;

// CPU feature flags for the JSON header, finer-grained than the combined
// CpuHasAvx2Fma dispatch predicate (an avx2-without-fma machine dispatches
// scalar, and the artifact should say why).
bool CpuFlagAvx2() {
#if defined(__x86_64__) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool CpuFlagFma() {
#if defined(__x86_64__) && defined(__GNUC__)
  return __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const char* CompilerId() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

JobWorkload& Workload() {
  static JobWorkload wl = [] {
    JobWorkloadOptions opt;
    opt.scale = 0.05;
    return GenerateJobWorkload(opt);
  }();
  return wl;
}

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct RegimeRun {
  const char* backend;  // short name, reused by the JSON artifact
  const char* label;
  double est_per_s = 0.0;
  double speedup = 0.0;     // vs the cold regime
  int batch_size = 1;       // value vectors per advisor call
  int repeats = 0;          // workload sweeps this regime actually ran
  uint64_t witness = 0, warm = 0, cold = 0;
  // LP work behind the regime (AdvisorMetrics deltas): simplex pivots and
  // basis refactorizations. The warm regime's refactorizations-per-resolve
  // is the Forrest–Tomlin acceptance metric — the eta-file scheme
  // refactorized every 32 updates, FT carries 64 plus a fill budget.
  uint64_t pivots = 0, refactorizations = 0;
  // Per-kernel call/cycle table (lp/kernels.h), collected in ONE extra
  // workload sweep with cycle timing on — the timed measurement above runs
  // with timing off, so the rdtsc pairs never skew the gated est/s.
  unsigned long long kernel_calls[kNumLpKernels] = {};
  unsigned long long kernel_cycles[kNumLpKernels] = {};
};

// Workload sweeps per kernel-table collection. The hot kernels run a few
// hundred cycles per call, so a single sweep's cycle totals are dominated
// by whichever calls absorbed a timer interrupt — several sweeps average
// that out enough for the share-based gate in compare_throughput.py.
// (Calls, by contrast, are exactly deterministic across runs, which is
// what the stricter per-kernel call-count gate relies on.)
constexpr int kKernelTableSweeps = 16;

// Runs `sweep` kKernelTableSweeps times with kernel cycle timing enabled
// and stores the thread-local counter deltas in `run`. The timed regime
// measurement runs with timing off; this extra pass is the only place the
// rdtsc pairs execute, so they never skew the gated est/s. Calls are
// deterministic per sweep; cycles are machine-dependent but their shares
// within one regime are what the gate compares.
template <typename SweepFn>
void CollectKernelTable(RegimeRun& run, const SweepFn& sweep) {
  SetLpKernelCycleTiming(true);
  const LpKernelCounters base = g_lp_kernel_counters;
  for (int s = 0; s < kKernelTableSweeps; ++s) sweep();
  SetLpKernelCycleTiming(false);
  for (int k = 0; k < kNumLpKernels; ++k) {
    run.kernel_calls[k] = g_lp_kernel_counters.calls[k] - base.calls[k];
    run.kernel_cycles[k] = g_lp_kernel_counters.cycles[k] - base.cycles[k];
  }
}

void FillLpWork(RegimeRun& run, const AdvisorMetrics& before,
                const AdvisorMetrics& after) {
  run.witness = after.witness_hits - before.witness_hits;
  run.warm = after.warm_resolves - before.warm_resolves;
  run.cold = after.cold_solves - before.cold_solves;
  run.pivots = after.lp_pivots - before.lp_pivots;
  run.refactorizations =
      after.lp_refactorizations - before.lp_refactorizations;
}

// Warm regime for one LP backend: full advisor path (statistics lookup +
// compiled evaluate) over the whole template workload, one call at a time.
RegimeRun MeasureWarm(LpBackendKind backend, const char* label, int repeats,
                      const std::vector<double>& expected) {
  JobWorkload& wl = Workload();
  AdvisorOptions opt;
  opt.engine.simplex.backend = backend;
  CardinalityAdvisor advisor(wl.catalog, opt);
  const size_t m = wl.queries.size();
  for (const Query& q : wl.queries) advisor.EstimateLog2(q);  // compile

  const AdvisorMetrics before = advisor.metrics();
  int sweeps = 0;
  double secs = 0.0;
  auto t0 = std::chrono::steady_clock::now();
  do {
    for (size_t i = 0; i < m; ++i) {
      const double est = advisor.EstimateLog2(wl.queries[i]);
      benchmark::DoNotOptimize(est);
      if (std::abs(est - expected[i]) > 1e-6) {
        std::printf("MISMATCH on %s (%s): %f vs %f\n",
                    wl.queries[i].name().c_str(), label, est, expected[i]);
      }
    }
    ++sweeps;
    secs = Seconds(t0);
  } while (sweeps < repeats || secs < kMinMeasureSeconds);
  const AdvisorMetrics after = advisor.metrics();
  RegimeRun run;
  run.backend = LpBackendName(backend);
  run.label = label;
  run.repeats = sweeps;
  run.est_per_s = static_cast<double>(sweeps) * m / secs;
  FillLpWork(run, before, after);
  CollectKernelTable(run, [&] {
    for (size_t i = 0; i < m; ++i) {
      benchmark::DoNotOptimize(advisor.EstimateLog2(wl.queries[i]));
    }
  });
  return run;
}

// Batch regime for one LP backend: per template, one EstimateLog2Batch
// call re-pricing kBatchSize value vectors. With `jitter` false the block
// carries the template's own statistics values — the same estimates the
// warm regime serves one call at a time, so batch/warm is a direct
// measure of what batching amortizes. With `jitter` true each vector
// perturbs one statistic (a real what-if sweep), exercising per-column
// witness validation and occasional warm re-solves.
RegimeRun MeasureBatch(LpBackendKind backend, const char* label, int repeats,
                       const std::vector<double>& expected, bool jitter) {
  JobWorkload& wl = Workload();
  AdvisorOptions opt;
  opt.engine.simplex.backend = backend;
  CardinalityAdvisor advisor(wl.catalog, opt);
  const size_t m = wl.queries.size();

  // Per-template batches: the real values, each vector optionally with a
  // deterministic +/-2% jitter on one statistic.
  std::vector<std::vector<std::vector<double>>> batches(m);
  for (size_t i = 0; i < m; ++i) {
    const auto stats = advisor.Explain(wl.queries[i]).stats;  // also compiles
    const std::vector<double> base = ValuesOf(stats);
    batches[i].reserve(kBatchSize);
    for (int c = 0; c < kBatchSize; ++c) {
      std::vector<double> values = base;
      if (jitter) {
        const size_t j = static_cast<size_t>(c) % values.size();
        values[j] *= 0.98 + 0.04 * ((c * 2654435761u >> 16) % 1000) / 1000.0;
      }
      batches[i].push_back(std::move(values));
    }
  }

  const AdvisorMetrics before = advisor.metrics();
  int sweeps = 0;
  double secs = 0.0;
  auto t0 = std::chrono::steady_clock::now();
  do {
    for (size_t i = 0; i < m; ++i) {
      const std::vector<double> ests =
          advisor.EstimateLog2Batch(wl.queries[i], batches[i]);
      benchmark::DoNotOptimize(ests.data());
      const double tolerance = jitter ? 1.0 : 1e-6;
      if (std::abs(ests[0] - expected[i]) > tolerance) {
        std::printf("BATCH MISMATCH on %s (%s): %f vs %f\n",
                    wl.queries[i].name().c_str(), label, ests[0], expected[i]);
      }
    }
    ++sweeps;
    secs = Seconds(t0);
  } while (sweeps < repeats || secs < kMinMeasureSeconds);
  const AdvisorMetrics after = advisor.metrics();
  RegimeRun run;
  run.backend = LpBackendName(backend);
  run.label = label;
  run.batch_size = kBatchSize;
  run.repeats = sweeps;
  run.est_per_s = static_cast<double>(sweeps) * m * kBatchSize / secs;
  FillLpWork(run, before, after);
  CollectKernelTable(run, [&] {
    for (size_t i = 0; i < m; ++i) {
      const std::vector<double> ests =
          advisor.EstimateLog2Batch(wl.queries[i], batches[i]);
      benchmark::DoNotOptimize(ests.data());
    }
  });
  return run;
}

// ---------------------------------------------------------------------------
// Fixed-seed Γn pivot workload: compile the cutting-plane bound at n = 8
// under one pricing rule and count the LP work. Pivot counts are
// deterministic per seed (no wall-clock in the loop), which is what lets
// compare_throughput.py gate on them.

struct GammaRun {
  const char* pricing;
  uint64_t pivots = 0;
  uint64_t phase1 = 0, phase2 = 0, dual = 0;
  uint64_t refactorizations = 0;
  uint64_t ft_updates = 0;
  uint64_t rejected = 0;
  uint64_t devex_resets = 0;
  // Cut-growth accounting (lp/simplex.h): rounds served by the warm
  // row-append path, dual pivots spent repairing appended rows, rows
  // appended, and appends whose LU fill forced a refactorization.
  uint64_t warm_cut_rounds = 0;
  uint64_t dual_repair_pivots = 0;
  uint64_t row_appends = 0;
  uint64_t append_refactorizations = 0;
  double seconds = 0.0;
};

// The statistics generator of the differential harness's n = 8 acceptance
// test — one shared definition (datagen/gamma_stats.h), so the gated
// pivot counts always measure the LP population the harness validates.
std::vector<ConcreteStatistic> GammaStats(uint64_t seed, int n, int count) {
  Rng rng(seed);
  return RandomSimpleGammaStats(rng, n, count);
}

GammaRun MeasureGammaPivots(PricingRule rule, const char* label, int n,
                            std::initializer_list<uint64_t> seeds,
                            int stat_count,
                            CutWarmStart warm_start = CutWarmStart::kOn) {
  GammaRun run;
  run.pricing = label;
  auto t0 = std::chrono::steady_clock::now();
  for (uint64_t seed : seeds) {
    const std::vector<ConcreteStatistic> stats =
        GammaStats(12345 ^ seed, n, stat_count);
    EngineOptions cut;
    cut.full_lattice_max_n = 4;  // force cutting-plane mode
    cut.simplex.backend = LpBackendKind::kRevised;
    cut.simplex.pricing = rule;
    // Pin the update scheme and the cut warm start too: a stray
    // LPB_LP_UPDATE=eta or LPB_LP_CUT_WARM=0 in the runner environment
    // must not skew the CI-gated counters off the path the baseline was
    // recorded from. The *_cold lanes pin kOff instead: they measure the
    // recompile-per-round growth loop, where column pricing still
    // differentiates the rules (warm appends repair via dual simplex, so
    // the warm lanes pivot identically under either rule).
    cut.simplex.basis_update = BasisUpdateKind::kForrestTomlin;
    cut.simplex.cut_warm_start = warm_start;
    auto compiled =
        FindBoundEngine("gamma")->Compile(StructureOf(n, stats), cut);
    // Compile-and-evaluate, then one warm re-evaluation at scaled values —
    // the cut-growth path plus the warm witness path, both counted.
    const BoundResult cold = compiled->Evaluate(ValuesOf(stats), false);
    std::vector<double> scaled = ValuesOf(stats);
    for (double& v : scaled) v *= 1.05;
    const BoundResult warm = compiled->Evaluate(scaled, false);
    for (const BoundResult* r : {&cold, &warm}) {
      run.pivots += static_cast<uint64_t>(r->lp_stats.TotalPivots());
      run.phase1 += static_cast<uint64_t>(r->lp_stats.phase1_pivots);
      run.phase2 += static_cast<uint64_t>(r->lp_stats.phase2_pivots);
      run.dual += static_cast<uint64_t>(r->lp_stats.dual_pivots);
      run.refactorizations +=
          static_cast<uint64_t>(r->lp_stats.refactorizations);
      run.ft_updates += static_cast<uint64_t>(r->lp_stats.ft_updates);
      run.rejected += static_cast<uint64_t>(r->lp_stats.rejected_updates);
      run.devex_resets += static_cast<uint64_t>(r->lp_stats.devex_resets);
      run.warm_cut_rounds += static_cast<uint64_t>(r->lp_stats.warm_cut_rounds);
      run.dual_repair_pivots +=
          static_cast<uint64_t>(r->lp_stats.dual_repair_pivots);
      run.row_appends += static_cast<uint64_t>(r->lp_stats.row_appends);
      run.append_refactorizations +=
          static_cast<uint64_t>(r->lp_stats.append_refactorizations);
    }
  }
  run.seconds = Seconds(t0);
  return run;
}

// ---------------------------------------------------------------------------
// Cutting-plane batch regime: one compiled Γn cutting bound in steady state
// (cut pool converged), a block of jittered value vectors — scalar Evaluate
// per vector vs one EvaluateBatch riding the shared cut pool and the
// multi-RHS resolve. The revised lane is the gated one: its block resolve
// amortizes the factorization and cached-duals reads across witness-valid
// columns; the dense backend's batch resolve is a sequential loop, so its
// ratio is informational.

struct CutBatchRun {
  const char* backend;
  double scalar_per_s = 0.0;
  double batch_per_s = 0.0;
  int batch_size = kBatchSize;
  int repeats = 0;
};

CutBatchRun MeasureCutBatch(LpBackendKind backend) {
  const int n = 7;
  // Wider than the JOB-regime kBatchSize: the revised backend's relaxed
  // block resolve pays one pivot episode per *distinct optimal basis* in
  // the block (not per column), so a larger block amortizes the episode,
  // the post-episode re-seed, and the block's one full FTRAN re-price
  // over more witness-served columns.
  constexpr int kCutBlock = 512;
  const std::vector<ConcreteStatistic> stats = GammaStats(0xabcdull, n, 10);
  EngineOptions cut;
  cut.full_lattice_max_n = 4;  // force cutting-plane mode
  cut.simplex.backend = backend;
  cut.simplex.basis_update = BasisUpdateKind::kForrestTomlin;
  cut.simplex.cut_warm_start = CutWarmStart::kOn;
  const BoundStructure structure = StructureOf(n, stats);
  const BoundEngine* engine = FindBoundEngine("gamma");
  auto scalar_bound = engine->Compile(structure, cut);
  auto batch_bound = engine->Compile(structure, cut);

  // Jittered block: same deterministic +/-2% scheme as the JOB batch
  // regime, so most columns stay witness-valid once the pool converges.
  std::vector<std::vector<double>> batch;
  batch.reserve(kCutBlock);
  const std::vector<double> base = ValuesOf(stats);
  for (int c = 0; c < kCutBlock; ++c) {
    std::vector<double> values = base;
    const size_t j = static_cast<size_t>(c) % values.size();
    values[j] *= 0.98 + 0.04 * ((c * 2654435761u >> 16) % 1000) / 1000.0;
    batch.push_back(std::move(values));
  }
  // Converge both cut pools outside the timed loops.
  for (const std::vector<double>& values : batch) {
    benchmark::DoNotOptimize(scalar_bound->Evaluate(values, false).log2_bound);
  }
  benchmark::DoNotOptimize(batch_bound->EvaluateBatch(batch, false).data());

  CutBatchRun run;
  run.backend = LpBackendName(backend);
  run.batch_size = kCutBlock;
  int sweeps = 0;
  double secs = 0.0;
  auto t0 = std::chrono::steady_clock::now();
  do {
    for (const std::vector<double>& values : batch) {
      benchmark::DoNotOptimize(
          scalar_bound->Evaluate(values, false).log2_bound);
    }
    ++sweeps;
    secs = Seconds(t0);
  } while (secs < kMinMeasureSeconds);
  run.scalar_per_s = static_cast<double>(sweeps) * kCutBlock / secs;

  sweeps = 0;
  t0 = std::chrono::steady_clock::now();
  do {
    const std::vector<BoundResult> results =
        batch_bound->EvaluateBatch(batch, false);
    benchmark::DoNotOptimize(results.data());
    ++sweeps;
    secs = Seconds(t0);
  } while (secs < kMinMeasureSeconds);
  run.batch_per_s = static_cast<double>(sweeps) * kCutBlock / secs;
  run.repeats = sweeps;
  return run;
}

// ---------------------------------------------------------------------------
// Serve regime (src/serve/): N client threads submit single estimates to
// an AdvisorService over a Zipf-skewed template mix, with an invalidation
// ticker churning statistics concurrently — the advisor-as-a-service
// deployment scenario. Each client keeps a small pipeline of outstanding
// futures (an optimizer pricing several candidates at once), so the
// admission queues refill while workers resolve and batches coalesce past
// the client count even on few cores. The gate compares aggregate
// throughput against the same-process single-threaded scalar-warm rate
// (warm_ratio): admission batching must recover the batch path's
// amortization from purely scalar traffic, so the ratio is gated >= 3x
// alongside mean coalesced batch size > 1, a p99 ceiling, and the
// norm-cache hit rate. Two effects stack to clear 3x on a single core:
// deep admission batches amortize the multi-RHS resolve, and worker-side
// dedup of identical queries (the Zipf mix repeats hot templates) turns
// a ~1000-request batch into ~33 distinct evaluations (dedup_factor).

struct ServeRun {
  const char* backend;
  int clients = 0;
  int workers = 0;
  int pipeline = 0;
  double est_per_s = 0.0;
  double warm_ratio = 0.0;  // vs the scalar-warm regime, same process
  double p50_us = 0.0, p99_us = 0.0, p999_us = 0.0;
  double mean_batch = 0.0;
  double dedup_factor = 0.0;  // requests per distinct evaluated query
  uint64_t max_batch = 0;
  uint64_t batches = 0;
  uint64_t requests = 0;
  uint64_t evaluated = 0;
  uint64_t rejected = 0;
  uint64_t max_queue_depth = 0;
  // Norm-cache traffic during the measured window (AdvisorMetrics deltas)
  // plus the store's resident footprint after it.
  uint64_t norm_hits = 0, norm_misses = 0, norm_shard_locks = 0;
  size_t cache_bytes = 0;
  uint64_t invalidations = 0;
};

ServeRun MeasureServe(LpBackendKind backend, double warm_rate) {
  JobWorkload& wl = Workload();
  AdvisorOptions opt;
  opt.engine.simplex.backend = backend;
  CardinalityAdvisor advisor(wl.catalog, opt);
  for (const Query& q : wl.queries) advisor.EstimateLog2(q);  // compile

  ServeRun run;
  run.backend = LpBackendName(backend);
  run.clients = 16;
  run.pipeline = 128;
  AdvisorServiceOptions sopt;
  // One worker even on wide machines: admission batching wants requests
  // to pile up behind a busy worker (deep batches maximize both the
  // multi-RHS amortization and the identical-query dedup), and the
  // resolve itself is single-threaded per batch anyway.
  sopt.workers = 1;
  sopt.max_batch = 2048;
  sopt.batch_window_us = 100;
  sopt.queue_capacity = 4096;
  run.workers = sopt.workers;
  AdvisorService service(advisor, sopt);

  // Templates wrapped once for the zero-copy submit path: clients hand
  // the service shared ownership instead of deep-copying a Query per
  // request (the deep copy would otherwise dominate client-side cost).
  std::vector<std::shared_ptr<const Query>> shared;
  shared.reserve(wl.queries.size());
  for (const Query& q : wl.queries) {
    shared.push_back(std::make_shared<const Query>(q));
  }

  const AdvisorMetrics before = advisor.metrics();
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline =
      t0 + std::chrono::duration<double>(2 * kMinMeasureSeconds);
  std::vector<std::thread> clients;
  clients.reserve(run.clients);
  for (int c = 0; c < run.clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(7000 + c);
      // Zipf-skewed template mix: a few hot templates dominate, as in a
      // plan cache — the case admission-batch query dedup is built for.
      ZipfSampler zipf(wl.queries.size(), 0.8);
      std::vector<std::future<double>> inflight;
      while (std::chrono::steady_clock::now() < deadline) {
        inflight.clear();
        for (int k = 0; k < run.pipeline; ++k) {
          inflight.push_back(service.SubmitLog2(shared[zipf.Sample(rng)]));
        }
        for (std::future<double>& f : inflight) {
          benchmark::DoNotOptimize(f.get());
        }
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread ticker([&] {
    Rng rng(4242);
    const std::vector<std::string> names = wl.catalog.Names();
    while (!stop.load(std::memory_order_relaxed)) {
      service.Invalidate(names[rng.Uniform(names.size())]);
      ++run.invalidations;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  for (std::thread& client : clients) client.join();
  const double secs = Seconds(t0);
  stop.store(true);
  ticker.join();
  service.Shutdown();

  const AdvisorServiceMetrics sm = service.metrics();
  const AdvisorMetrics after = advisor.metrics();
  run.est_per_s = static_cast<double>(sm.completed) / secs;
  run.warm_ratio = warm_rate > 0 ? run.est_per_s / warm_rate : 0.0;
  run.p50_us = sm.latency.p50_ns / 1e3;
  run.p99_us = sm.latency.p99_ns / 1e3;
  run.p999_us = sm.latency.p999_ns / 1e3;
  run.mean_batch = sm.MeanBatchSize();
  run.dedup_factor = sm.DedupFactor();
  run.max_batch = sm.max_coalesced;
  run.batches = sm.batches;
  run.requests = sm.completed;
  run.evaluated = sm.evaluated;
  run.rejected = sm.rejected;
  run.max_queue_depth = sm.max_queue_depth;
  run.norm_hits = after.norm_hits - before.norm_hits;
  run.norm_misses = after.norm_misses - before.norm_misses;
  run.norm_shard_locks = after.norm_shard_locks - before.norm_shard_locks;
  run.cache_bytes = advisor.CacheBytes();
  return run;
}

// ---------------------------------------------------------------------------
// Optimizer regime (src/optimizer/): full DPsize join-order optimization
// over every JOB template, plans/s. The enumeration counters are exactly
// deterministic (connectivity-driven, independent of estimate values), so
// compare_throughput.py gates probe and batch counts with zero tolerance:
// a probe-count explosion means the one-batch-per-DP-level discipline
// broke. The bound lanes run once per LP backend; the advisor-side batch
// counters double-check the discipline from the advisor's side
// (advisor_batch_calls must equal the optimizer's own batch_calls).

struct OptimizerRun {
  const char* model;    // "bound" or "traditional"
  const char* backend;  // LP backend for the bound lanes, "-" otherwise
  double plans_per_s = 0.0;
  int repeats = 0;
  size_t queries = 0;
  // One workload sweep's enumeration counters (deterministic per build).
  uint64_t probes = 0;
  uint64_t batch_calls = 0;
  uint64_t dp_levels = 0;
  uint64_t memo_entries = 0;
  std::vector<uint64_t> probes_per_level;  // summed over the workload
  // AdvisorMetrics deltas across the whole timed run (bound lanes only).
  uint64_t advisor_batch_calls = 0;
  uint64_t advisor_batch_probes = 0;
  uint64_t witness = 0, warm = 0, cold = 0;
};

OptimizerRun MeasureOptimizer(bool bound_model, LpBackendKind backend,
                              const char* model_label, int repeats) {
  JobWorkload& wl = Workload();
  AdvisorOptions aopt;
  aopt.engine.simplex.backend = backend;
  CardinalityAdvisor advisor(wl.catalog, aopt);
  AdvisorCardinalityModel advisor_model(advisor);
  TraditionalCardinalityModel trad_model(wl.catalog);
  CardinalityModel& model =
      bound_model ? static_cast<CardinalityModel&>(advisor_model)
                  : static_cast<CardinalityModel&>(trad_model);
  // Left-deep bottleneck DP: the mode whose plans execute verbatim through
  // CountByHashJoin, and the one the plan-quality section scores.
  JoinOrderOptions jopt;
  jopt.left_deep = true;
  jopt.objective = CostObjective::kPeakIntermediate;

  OptimizerRun run;
  run.model = model_label;
  run.backend = bound_model ? LpBackendName(backend) : "-";
  run.queries = wl.queries.size();

  // One untimed sweep: warms the advisor's compiled-bound caches (the
  // deployment scenario — templates repeat) and collects the
  // deterministic enumeration counters.
  for (const Query& q : wl.queries) {
    JoinOrderOptimizer dp(q, model, jopt);
    dp.Optimize();
    const OptimizerStats& s = dp.stats();
    run.probes += s.probes;
    run.batch_calls += s.batch_calls;
    run.dp_levels += static_cast<uint64_t>(s.dp_levels);
    run.memo_entries += s.memo_entries;
    if (run.probes_per_level.size() < s.probes_per_level.size()) {
      run.probes_per_level.resize(s.probes_per_level.size(), 0);
    }
    for (size_t k = 0; k < s.probes_per_level.size(); ++k) {
      run.probes_per_level[k] += s.probes_per_level[k];
    }
  }

  const AdvisorMetrics before = advisor.metrics();
  int sweeps = 0;
  double secs = 0.0;
  auto t0 = std::chrono::steady_clock::now();
  do {
    for (const Query& q : wl.queries) {
      JoinOrderOptimizer dp(q, model, jopt);
      benchmark::DoNotOptimize(dp.Optimize().cost());
    }
    ++sweeps;
    secs = Seconds(t0);
  } while (sweeps < repeats || secs < kMinMeasureSeconds);
  const AdvisorMetrics after = advisor.metrics();
  run.repeats = sweeps;
  run.plans_per_s =
      static_cast<double>(sweeps) * static_cast<double>(run.queries) / secs;
  run.advisor_batch_calls = after.batch_calls - before.batch_calls;
  run.advisor_batch_probes = after.batch_probes - before.batch_probes;
  run.witness = after.witness_hits - before.witness_hits;
  run.warm = after.warm_resolves - before.warm_resolves;
  run.cold = after.cold_solves - before.cold_solves;
  return run;
}

// Untimed plan-quality comparison: optimize every scoring-set query (the
// JOB templates small enough to execute at bench scale) under the bound
// model, the traditional model, and the greedy baseline, execute all
// three plans through CountByHashJoin, and sum the *actual* peak
// materialized intermediates. The synthetic workload is fixed-seed, so
// the sums are deterministic and compare_throughput.py gates
// bound <= traditional and bound <= greedy exactly.

struct PlanQuality {
  int queries = 0;
  uint64_t bound_peak_sum = 0;
  uint64_t traditional_peak_sum = 0;
  uint64_t greedy_peak_sum = 0;
  int bound_worse_than_traditional = 0;  // per-query count, informational
  int bound_worse_than_greedy = 0;
};

uint64_t PeakIntermediate(const HashJoinStats& s) {
  uint64_t peak = 0;
  for (uint64_t v : s.intermediate_sizes) peak = std::max(peak, v);
  return peak;
}

PlanQuality MeasurePlanQuality() {
  JobWorkload& wl = Workload();
  CardinalityAdvisor advisor(wl.catalog);
  AdvisorCardinalityModel bound_model(advisor);
  TraditionalCardinalityModel trad_model(wl.catalog);
  JoinOrderOptions jopt;
  jopt.left_deep = true;
  jopt.objective = CostObjective::kPeakIntermediate;

  PlanQuality quality;
  for (const Query& q : wl.queries) {
    if (q.num_atoms() > 8) continue;  // keep the executed joins affordable
    JoinOrderOptimizer bound_dp(q, bound_model, jopt);
    JoinOrderOptimizer trad_dp(q, trad_model, jopt);
    const std::vector<int> bound_order = bound_dp.Optimize().AtomOrder();
    const std::vector<int> trad_order = trad_dp.Optimize().AtomOrder();
    const std::vector<int> greedy_order = GreedyJoinOrder(q, bound_model);
    const HashJoinStats bound_run =
        CountByHashJoin(q, wl.catalog, bound_order);
    const HashJoinStats trad_run = CountByHashJoin(q, wl.catalog, trad_order);
    const HashJoinStats greedy_run =
        CountByHashJoin(q, wl.catalog, greedy_order);
    if (!bound_run.ok || !trad_run.ok || !greedy_run.ok) {
      std::printf("PLAN EXEC FAILED on %s: %s\n", q.name().c_str(),
                  (!bound_run.ok  ? bound_run.error
                   : !trad_run.ok ? trad_run.error
                                  : greedy_run.error)
                      .c_str());
      continue;
    }
    const uint64_t bound_peak = PeakIntermediate(bound_run);
    const uint64_t trad_peak = PeakIntermediate(trad_run);
    const uint64_t greedy_peak = PeakIntermediate(greedy_run);
    ++quality.queries;
    quality.bound_peak_sum += bound_peak;
    quality.traditional_peak_sum += trad_peak;
    quality.greedy_peak_sum += greedy_peak;
    if (bound_peak > trad_peak) ++quality.bound_worse_than_traditional;
    if (bound_peak > greedy_peak) ++quality.bound_worse_than_greedy;
  }
  return quality;
}

void PrintCounters(const RegimeRun& run) {
  std::printf(
      "%-28s %14.0f est/s   (%.1fx)   witness=%llu warm=%llu cold=%llu "
      "pivots=%llu refac=%llu\n",
      run.label, run.est_per_s, run.speedup,
      static_cast<unsigned long long>(run.witness),
      static_cast<unsigned long long>(run.warm),
      static_cast<unsigned long long>(run.cold),
      static_cast<unsigned long long>(run.pivots),
      static_cast<unsigned long long>(run.refactorizations));
}

// Human-readable per-kernel cycles/call for one regime — the table the CI
// perf artifact keeps next to the throughput numbers, so a regression can
// be pinned to a kernel, not just a backend.
void PrintKernelTable(const RegimeRun& run) {
  std::printf("  kernels (%s):", run.label);
  for (int k = 0; k < kNumLpKernels; ++k) {
    if (run.kernel_calls[k] == 0) continue;
    std::printf(" %s=%llu/%.0fc", LpKernelName(static_cast<LpKernelId>(k)),
                run.kernel_calls[k],
                static_cast<double>(run.kernel_cycles[k]) /
                    static_cast<double>(run.kernel_calls[k]));
  }
  std::printf("\n");
}

void DumpRunsJson(std::FILE* f, const char* section,
                  const std::vector<RegimeRun>& runs) {
  std::fprintf(f, "  \"%s\": [\n", section);
  for (size_t i = 0; i < runs.size(); ++i) {
    const RegimeRun& run = runs[i];
    std::fprintf(f,
                 "    {\"backend\": \"%s\", \"est_per_s\": %.1f, "
                 "\"speedup\": %.2f, \"batch_size\": %d, "
                 "\"repeats\": %d, "
                 "\"witness\": %llu, \"warm\": %llu, \"cold\": %llu, "
                 "\"pivots\": %llu, \"refactorizations\": %llu,\n"
                 "     \"kernels\": [",
                 run.backend, run.est_per_s, run.speedup, run.batch_size,
                 run.repeats,
                 static_cast<unsigned long long>(run.witness),
                 static_cast<unsigned long long>(run.warm),
                 static_cast<unsigned long long>(run.cold),
                 static_cast<unsigned long long>(run.pivots),
                 static_cast<unsigned long long>(run.refactorizations));
    bool first = true;
    for (int k = 0; k < kNumLpKernels; ++k) {
      if (run.kernel_calls[k] == 0) continue;
      std::fprintf(f, "%s\n      {\"name\": \"%s\", \"calls\": %llu, "
                   "\"cycles\": %llu}",
                   first ? "" : ",", LpKernelName(static_cast<LpKernelId>(k)),
                   run.kernel_calls[k], run.kernel_cycles[k]);
      first = false;
    }
    std::fprintf(f, "]}%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]");
}

void PrintTable() {
  JobWorkload& wl = Workload();
  CardinalityAdvisor advisor(wl.catalog);

  // Per-query statistics, assembled once through the advisor so cold and
  // warm paths see identical inputs (Explain also pre-warms the caches,
  // which is exactly the deployment scenario: templates repeat).
  std::vector<std::vector<ConcreteStatistic>> stats;
  std::vector<double> expected;
  for (const Query& q : wl.queries) {
    auto explanation = advisor.Explain(q);
    stats.push_back(std::move(explanation.stats));
    expected.push_back(explanation.bound.log2_bound);
  }

  const int kRepeats = 30;
  const size_t m = wl.queries.size();

  // Cold: fresh LP build + solve per estimate.
  auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < kRepeats; ++r) {
    for (size_t i = 0; i < m; ++i) {
      benchmark::DoNotOptimize(
          LpNormBound(wl.queries[i].num_vars(), stats[i]).log2_bound);
    }
  }
  const double cold_s = Seconds(t0);
  const double n_est = static_cast<double>(kRepeats * m);
  const double cold_rate = n_est / cold_s;

  std::vector<RegimeRun> warm_runs = {
      MeasureWarm(LpBackendKind::kDense, "warm dense", kRepeats, expected),
      MeasureWarm(LpBackendKind::kRevised, "warm revised", kRepeats,
                  expected),
  };
  // Fewer repeats for the batch regimes: each repeat serves
  // kBatchSize x the estimates.
  const int batch_repeats = std::max(1, kRepeats / 4);
  std::vector<RegimeRun> batch_runs = {
      MeasureBatch(LpBackendKind::kDense, "batch dense", batch_repeats,
                   expected, /*jitter=*/false),
      MeasureBatch(LpBackendKind::kRevised, "batch revised", batch_repeats,
                   expected, /*jitter=*/false),
  };
  std::vector<RegimeRun> jitter_runs = {
      MeasureBatch(LpBackendKind::kDense, "batch dense what-if",
                   batch_repeats, expected, /*jitter=*/true),
      MeasureBatch(LpBackendKind::kRevised, "batch revised what-if",
                   batch_repeats, expected, /*jitter=*/true),
  };
  for (RegimeRun& run : warm_runs) run.speedup = run.est_per_s / cold_rate;
  for (RegimeRun& run : batch_runs) run.speedup = run.est_per_s / cold_rate;
  for (RegimeRun& run : jitter_runs) run.speedup = run.est_per_s / cold_rate;

  // Pivot-count workload: the fixed-seed Γn cutting-plane compile at
  // n = 8, once per pricing rule (pinned, so LPB_LP_PRICING cannot skew
  // the dantzig baseline lane).
  std::vector<GammaRun> gamma_runs = {
      MeasureGammaPivots(PricingRule::kDantzig, "dantzig", 8,
                         {0x5151ull, 0x1234ull, 0x9999ull}, 12),
      MeasureGammaPivots(PricingRule::kDevex, "devex", 8,
                         {0x5151ull, 0x1234ull, 0x9999ull}, 12),
      // Cold-growth lanes (cut_warm_start off): the recompile-per-round
      // loop the devex-vs-dantzig pricing bar was calibrated on, and the
      // denominator for the warm-append pivot-drop gate.
      MeasureGammaPivots(PricingRule::kDantzig, "dantzig_cold", 8,
                         {0x5151ull, 0x1234ull, 0x9999ull}, 12,
                         CutWarmStart::kOff),
      MeasureGammaPivots(PricingRule::kDevex, "devex_cold", 8,
                         {0x5151ull, 0x1234ull, 0x9999ull}, 12,
                         CutWarmStart::kOff),
  };
  // The n = 10 lane exists because warm row appends make it affordable at
  // all — the pre-append cold-growth loop re-solved two-phase per round
  // and took minutes here. One seed, devex: the gate pins pivots (exact)
  // and a generous wall-clock ceiling (machine-dependent).
  std::vector<GammaRun> gamma10_runs = {
      MeasureGammaPivots(PricingRule::kDevex, "devex", 10, {0x5151ull}, 14),
  };
  // Cutting-plane batch regime: shared cut pool + multi-RHS resolve vs the
  // scalar evaluate sequence, steady state.
  std::vector<CutBatchRun> cut_batch_runs = {
      MeasureCutBatch(LpBackendKind::kDense),
      MeasureCutBatch(LpBackendKind::kRevised),
  };
  // Serve regime: 16 clients x pipelined single estimates through the
  // AdvisorService; warm_ratio divides by the same-process warm regime
  // above, so the gate is machine-independent.
  std::vector<ServeRun> serve_runs = {
      MeasureServe(LpBackendKind::kDense, warm_runs[0].est_per_s),
      MeasureServe(LpBackendKind::kRevised, warm_runs[1].est_per_s),
  };
  // Optimizer regime: full DPsize join ordering per template. The bound
  // lanes run once per LP backend; the traditional lane is the
  // no-LP-at-all comparison point.
  const int optimizer_repeats = std::max(1, kRepeats / 10);
  std::vector<OptimizerRun> optimizer_runs = {
      MeasureOptimizer(true, LpBackendKind::kDense, "bound",
                       optimizer_repeats),
      MeasureOptimizer(true, LpBackendKind::kRevised, "bound",
                       optimizer_repeats),
      MeasureOptimizer(false, LpBackendKind::kDense, "traditional",
                       optimizer_repeats),
  };
  const PlanQuality plan_quality = MeasurePlanQuality();

  std::printf("== Estimator throughput, %zu JOB templates x %d repeats ==\n",
              m, kRepeats);
  std::printf("%-28s %14.0f est/s\n", "cold (LP per estimate)", cold_rate);
  for (const RegimeRun& run : warm_runs) PrintCounters(run);
  for (const RegimeRun& run : batch_runs) PrintCounters(run);
  for (const RegimeRun& run : jitter_runs) PrintCounters(run);
  std::printf("-- per-kernel calls/cycles-per-call (one timing-on sweep) --\n");
  for (const auto* runs : {&warm_runs, &batch_runs, &jitter_runs}) {
    for (const RegimeRun& run : *runs) PrintKernelTable(run);
  }
  for (size_t i = 0; i < warm_runs.size() && i < batch_runs.size(); ++i) {
    std::printf("%-28s %14.2fx  (batch of %d vs scalar warm, %s)\n",
                "batch/scalar", batch_runs[i].est_per_s / warm_runs[i].est_per_s,
                batch_runs[i].batch_size, warm_runs[i].backend);
  }
  auto print_gamma = [](const GammaRun& run) {
    std::printf(
        "%-28s pivots=%-6llu (p1=%llu p2=%llu dual=%llu)  refac=%llu "
        "ft=%llu rejected=%llu resets=%llu\n"
        "%-28s warm_rounds=%llu repair=%llu appends=%llu append_refac=%llu  "
        "%.2fs\n",
        run.pricing, static_cast<unsigned long long>(run.pivots),
        static_cast<unsigned long long>(run.phase1),
        static_cast<unsigned long long>(run.phase2),
        static_cast<unsigned long long>(run.dual),
        static_cast<unsigned long long>(run.refactorizations),
        static_cast<unsigned long long>(run.ft_updates),
        static_cast<unsigned long long>(run.rejected),
        static_cast<unsigned long long>(run.devex_resets), "",
        static_cast<unsigned long long>(run.warm_cut_rounds),
        static_cast<unsigned long long>(run.dual_repair_pivots),
        static_cast<unsigned long long>(run.row_appends),
        static_cast<unsigned long long>(run.append_refactorizations),
        run.seconds);
  };
  std::printf("\n== Cutting-plane Gamma_n pivot counts, n = 8, 3 seeds ==\n");
  for (const GammaRun& run : gamma_runs) print_gamma(run);
  if (gamma_runs.size() == 4 && gamma_runs[2].pivots > 0) {
    std::printf("%-28s %14.2f  (cold-growth devex / dantzig pivots)\n",
                "devex/dantzig (cold)",
                static_cast<double>(gamma_runs[3].pivots) /
                    static_cast<double>(gamma_runs[2].pivots));
    std::printf("%-28s %14.2f  (warm-append devex / cold devex pivots)\n",
                "warm/cold (devex)",
                static_cast<double>(gamma_runs[1].pivots) /
                    static_cast<double>(gamma_runs[3].pivots));
  }
  std::printf("\n== Cutting-plane Gamma_n pivot counts, n = 10, 1 seed ==\n");
  for (const GammaRun& run : gamma10_runs) print_gamma(run);
  std::printf("\n== Cutting-plane batch vs scalar sequence, n = 7 ==\n");
  for (const CutBatchRun& run : cut_batch_runs) {
    std::printf(
        "%-28s scalar %10.0f est/s   batch-of-%d %10.0f est/s   (%.2fx)\n",
        run.backend, run.scalar_per_s, run.batch_size, run.batch_per_s,
        run.batch_per_s / run.scalar_per_s);
  }
  std::printf("\n== Advisor serving, admission batching ==\n");
  for (const ServeRun& run : serve_runs) {
    std::printf(
        "%-8s %d clients x pipeline %d, %d workers: %10.0f est/s "
        "(%.2fx scalar warm)\n"
        "         p50=%.0fus p99=%.0fus p999=%.0fus  batches=%llu "
        "mean=%.1f max=%llu dedup=%.1fx depth=%llu rejected=%llu\n"
        "         norm hits=%llu misses=%llu shard_locks=%llu "
        "cache=%zuB invalidations=%llu\n",
        run.backend, run.clients, run.pipeline, run.workers, run.est_per_s,
        run.warm_ratio, run.p50_us, run.p99_us, run.p999_us,
        static_cast<unsigned long long>(run.batches), run.mean_batch,
        static_cast<unsigned long long>(run.max_batch), run.dedup_factor,
        static_cast<unsigned long long>(run.max_queue_depth),
        static_cast<unsigned long long>(run.rejected),
        static_cast<unsigned long long>(run.norm_hits),
        static_cast<unsigned long long>(run.norm_misses),
        static_cast<unsigned long long>(run.norm_shard_locks),
        run.cache_bytes,
        static_cast<unsigned long long>(run.invalidations));
  }
  std::printf("\n== Join-order optimizer, DPsize over %zu JOB templates ==\n",
              m);
  for (const OptimizerRun& run : optimizer_runs) {
    std::printf(
        "%-12s %-8s %10.1f plans/s   probes=%llu batches=%llu levels=%llu "
        "memo=%llu\n",
        run.model, run.backend, run.plans_per_s,
        static_cast<unsigned long long>(run.probes),
        static_cast<unsigned long long>(run.batch_calls),
        static_cast<unsigned long long>(run.dp_levels),
        static_cast<unsigned long long>(run.memo_entries));
    if (run.advisor_batch_calls > 0) {
      std::printf(
          "%-12s %-8s advisor: batches=%llu probes=%llu witness=%llu "
          "warm=%llu cold=%llu\n",
          "", "", static_cast<unsigned long long>(run.advisor_batch_calls),
          static_cast<unsigned long long>(run.advisor_batch_probes),
          static_cast<unsigned long long>(run.witness),
          static_cast<unsigned long long>(run.warm),
          static_cast<unsigned long long>(run.cold));
    }
  }
  std::printf(
      "plan quality (executed, %d queries <= 8 atoms): peak-intermediate "
      "sums bound=%llu traditional=%llu greedy=%llu (bound worse on %d/%d "
      "vs traditional, %d/%d vs greedy)\n",
      plan_quality.queries,
      static_cast<unsigned long long>(plan_quality.bound_peak_sum),
      static_cast<unsigned long long>(plan_quality.traditional_peak_sum),
      static_cast<unsigned long long>(plan_quality.greedy_peak_sum),
      plan_quality.bound_worse_than_traditional, plan_quality.queries,
      plan_quality.bound_worse_than_greedy, plan_quality.queries);
  std::printf("\n");

  if (const char* json_path = std::getenv("LPB_BENCH_JSON")) {
    if (std::FILE* f = std::fopen(json_path, "w")) {
      // CPU/compiler/dispatch header: per-kernel cycle tables are only
      // comparable between artifacts produced by the same feature set —
      // compare_throughput.py warns (without failing) on a mismatch.
      std::fprintf(f,
                   "{\n  \"workload\": \"job-templates\",\n"
                   "  \"templates\": %zu,\n  \"cold_warm_repeats\": %d,\n"
                   "  \"batch_size\": %d,\n"
                   "  \"cpu_avx2\": %s,\n  \"cpu_fma\": %s,\n"
                   "  \"compiler\": \"%s\",\n  \"simd_dispatch\": \"%s\",\n"
                   "  \"cold_est_per_s\": %.1f,\n",
                   m, kRepeats, kBatchSize, CpuFlagAvx2() ? "true" : "false",
                   CpuFlagFma() ? "true" : "false", CompilerId(),
                   LpKernelDispatchName(ResolveSimdMode(SimplexOptions{})),
                   cold_rate);
      DumpRunsJson(f, "warm", warm_runs);
      std::fprintf(f, ",\n");
      DumpRunsJson(f, "batch", batch_runs);
      std::fprintf(f, ",\n");
      DumpRunsJson(f, "batch_what_if", jitter_runs);
      auto dump_gamma = [f](const char* section,
                            const std::vector<GammaRun>& runs) {
        std::fprintf(f, ",\n  \"%s\": [\n", section);
        for (size_t i = 0; i < runs.size(); ++i) {
          const GammaRun& run = runs[i];
          std::fprintf(
              f,
              "    {\"pricing\": \"%s\", \"pivots\": %llu, "
              "\"phase1\": %llu, \"phase2\": %llu, \"dual\": %llu, "
              "\"refactorizations\": %llu, \"ft_updates\": %llu, "
              "\"rejected_updates\": %llu, \"devex_resets\": %llu, "
              "\"warm_cut_rounds\": %llu, \"dual_repair_pivots\": %llu, "
              "\"row_appends\": %llu, \"append_refactorizations\": %llu, "
              "\"seconds\": %.3f}%s\n",
              run.pricing, static_cast<unsigned long long>(run.pivots),
              static_cast<unsigned long long>(run.phase1),
              static_cast<unsigned long long>(run.phase2),
              static_cast<unsigned long long>(run.dual),
              static_cast<unsigned long long>(run.refactorizations),
              static_cast<unsigned long long>(run.ft_updates),
              static_cast<unsigned long long>(run.rejected),
              static_cast<unsigned long long>(run.devex_resets),
              static_cast<unsigned long long>(run.warm_cut_rounds),
              static_cast<unsigned long long>(run.dual_repair_pivots),
              static_cast<unsigned long long>(run.row_appends),
              static_cast<unsigned long long>(run.append_refactorizations),
              run.seconds, i + 1 < runs.size() ? "," : "");
        }
        std::fprintf(f, "  ]");
      };
      dump_gamma("gamma_n8", gamma_runs);
      dump_gamma("gamma_n10", gamma10_runs);
      std::fprintf(f, ",\n  \"gamma_cut_batch\": [\n");
      for (size_t i = 0; i < cut_batch_runs.size(); ++i) {
        const CutBatchRun& run = cut_batch_runs[i];
        std::fprintf(f,
                     "    {\"backend\": \"%s\", \"scalar_est_per_s\": %.1f, "
                     "\"batch_est_per_s\": %.1f, \"batch_size\": %d, "
                     "\"ratio\": %.2f}%s\n",
                     run.backend, run.scalar_per_s, run.batch_per_s,
                     run.batch_size, run.batch_per_s / run.scalar_per_s,
                     i + 1 < cut_batch_runs.size() ? "," : "");
      }
      std::fprintf(f, "  ],\n  \"serve\": [\n");
      for (size_t i = 0; i < serve_runs.size(); ++i) {
        const ServeRun& run = serve_runs[i];
        const uint64_t norm_lookups = run.norm_hits + run.norm_misses;
        std::fprintf(
            f,
            "    {\"backend\": \"%s\", \"clients\": %d, \"workers\": %d, "
            "\"pipeline\": %d, \"est_per_s\": %.1f, \"warm_ratio\": %.2f,\n"
            "     \"p50_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f, "
            "\"mean_batch\": %.2f, \"max_batch\": %llu, \"batches\": %llu, "
            "\"requests\": %llu, \"evaluated\": %llu, "
            "\"dedup_factor\": %.2f, \"rejected\": %llu, "
            "\"max_queue_depth\": %llu,\n"
            "     \"norm_hits\": %llu, \"norm_misses\": %llu, "
            "\"norm_hit_rate\": %.3f, \"norm_shard_locks\": %llu, "
            "\"cache_bytes\": %zu, \"invalidations\": %llu}%s\n",
            run.backend, run.clients, run.workers, run.pipeline,
            run.est_per_s, run.warm_ratio, run.p50_us, run.p99_us,
            run.p999_us, run.mean_batch,
            static_cast<unsigned long long>(run.max_batch),
            static_cast<unsigned long long>(run.batches),
            static_cast<unsigned long long>(run.requests),
            static_cast<unsigned long long>(run.evaluated), run.dedup_factor,
            static_cast<unsigned long long>(run.rejected),
            static_cast<unsigned long long>(run.max_queue_depth),
            static_cast<unsigned long long>(run.norm_hits),
            static_cast<unsigned long long>(run.norm_misses),
            norm_lookups == 0 ? 0.0
                              : static_cast<double>(run.norm_hits) /
                                    static_cast<double>(norm_lookups),
            static_cast<unsigned long long>(run.norm_shard_locks),
            run.cache_bytes,
            static_cast<unsigned long long>(run.invalidations),
            i + 1 < serve_runs.size() ? "," : "");
      }
      std::fprintf(f, "  ],\n  \"optimizer\": [\n");
      for (size_t i = 0; i < optimizer_runs.size(); ++i) {
        const OptimizerRun& run = optimizer_runs[i];
        std::fprintf(
            f,
            "    {\"model\": \"%s\", \"backend\": \"%s\", "
            "\"plans_per_s\": %.1f, \"repeats\": %d, \"queries\": %zu,\n"
            "     \"probes\": %llu, \"batch_calls\": %llu, "
            "\"dp_levels\": %llu, \"memo_entries\": %llu,\n"
            "     \"advisor_batch_calls\": %llu, "
            "\"advisor_batch_probes\": %llu, "
            "\"witness\": %llu, \"warm\": %llu, \"cold\": %llu,\n"
            "     \"probes_per_level\": [",
            run.model, run.backend, run.plans_per_s, run.repeats, run.queries,
            static_cast<unsigned long long>(run.probes),
            static_cast<unsigned long long>(run.batch_calls),
            static_cast<unsigned long long>(run.dp_levels),
            static_cast<unsigned long long>(run.memo_entries),
            static_cast<unsigned long long>(run.advisor_batch_calls),
            static_cast<unsigned long long>(run.advisor_batch_probes),
            static_cast<unsigned long long>(run.witness),
            static_cast<unsigned long long>(run.warm),
            static_cast<unsigned long long>(run.cold));
        for (size_t k = 0; k < run.probes_per_level.size(); ++k) {
          std::fprintf(f, "%s%llu", k ? ", " : "",
                       static_cast<unsigned long long>(
                           run.probes_per_level[k]));
        }
        std::fprintf(f, "]}%s\n",
                     i + 1 < optimizer_runs.size() ? "," : "");
      }
      std::fprintf(
          f,
          "  ],\n  \"optimizer_plan_quality\": {\"queries\": %d, "
          "\"bound_peak_sum\": %llu, \"traditional_peak_sum\": %llu, "
          "\"greedy_peak_sum\": %llu, "
          "\"bound_worse_than_traditional\": %d, "
          "\"bound_worse_than_greedy\": %d}\n}\n",
          plan_quality.queries,
          static_cast<unsigned long long>(plan_quality.bound_peak_sum),
          static_cast<unsigned long long>(plan_quality.traditional_peak_sum),
          static_cast<unsigned long long>(plan_quality.greedy_peak_sum),
          plan_quality.bound_worse_than_traditional,
          plan_quality.bound_worse_than_greedy);
      std::fclose(f);
      std::printf("wrote %s\n\n", json_path);
    }
  }
}

void BM_ColdEstimate(benchmark::State& state) {
  JobWorkload& wl = Workload();
  CardinalityAdvisor advisor(wl.catalog);
  const size_t i = static_cast<size_t>(state.range(0));
  auto stats = advisor.Explain(wl.queries[i]).stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        LpNormBound(wl.queries[i].num_vars(), stats).log2_bound);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ColdEstimate)->Arg(0)->Arg(8)->Arg(20);

void BM_WarmEstimate(benchmark::State& state) {
  JobWorkload& wl = Workload();
  static CardinalityAdvisor advisor(wl.catalog);
  const size_t i = static_cast<size_t>(state.range(0));
  advisor.EstimateLog2(wl.queries[i]);  // compile outside the timed loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(advisor.EstimateLog2(wl.queries[i]));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["batch_size"] = 1;
}
BENCHMARK(BM_WarmEstimate)->Arg(0)->Arg(8)->Arg(20);

// Batched what-if probes against one compiled template: one advisor call
// re-prices `batch_size` value vectors. items_processed counts estimates
// (iterations x batch size), so est/s is directly comparable with
// BM_WarmEstimate's.
void BM_BatchEstimate(benchmark::State& state) {
  JobWorkload& wl = Workload();
  static CardinalityAdvisor advisor(wl.catalog);
  const size_t i = static_cast<size_t>(state.range(0));
  const int batch_size = static_cast<int>(state.range(1));
  const auto stats = advisor.Explain(wl.queries[i]).stats;
  const std::vector<std::vector<double>> batch(
      static_cast<size_t>(batch_size), ValuesOf(stats));
  for (auto _ : state) {
    const std::vector<double> ests =
        advisor.EstimateLog2Batch(wl.queries[i], batch);
    benchmark::DoNotOptimize(ests.data());
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
  state.counters["batch_size"] = batch_size;
}
BENCHMARK(BM_BatchEstimate)
    ->Args({0, 16})
    ->Args({0, 256})
    ->Args({8, 16})
    ->Args({8, 256})
    ->Args({20, 16})
    ->Args({20, 256});

// Statistics drift between estimates (value jitter, same structure): the
// witness path re-prices, occasionally falling back to warm/cold re-solves.
void BM_WarmEstimateJitteredValues(benchmark::State& state) {
  JobWorkload& wl = Workload();
  CardinalityAdvisor advisor(wl.catalog);
  const size_t i = static_cast<size_t>(state.range(0));
  auto stats = advisor.Explain(wl.queries[i]).stats;
  auto compiled = FindBoundEngine("auto")->Compile(
      StructureOf(wl.queries[i].num_vars(), stats));
  std::vector<double> values = ValuesOf(stats);
  compiled->Evaluate(values);
  uint64_t tick = 0;
  for (auto _ : state) {
    // Deterministic +/-5% drift on one statistic per call.
    const size_t j = tick % values.size();
    const double jitter = 0.95 + 0.1 * ((tick * 2654435761u >> 16) % 1000) / 1000.0;
    const double saved = values[j];
    values[j] *= jitter;
    benchmark::DoNotOptimize(
        compiled->Evaluate(values, /*want_h_opt=*/false).log2_bound);
    values[j] = saved;
    ++tick;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WarmEstimateJitteredValues)->Arg(0)->Arg(8)->Arg(20);

}  // namespace
}  // namespace lpb

int main(int argc, char** argv) {
  lpb::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
