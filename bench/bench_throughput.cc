// Compile-once / evaluate-many throughput on a JOB-style template workload.
//
// An optimizer probes the advisor millions of times against a handful of
// query templates. This bench measures estimates/sec on the synthetic JOB
// workload (33 templates) in four regimes:
//   * cold   — a fresh LP built and solved from scratch per estimate
//              (the pre-pipeline behavior: LpNormBound on the statistics);
//   * warm   — the advisor's compiled path: per-structure compiled bound,
//              cached dual witness re-priced per call;
//   * batch  — the advisor's batched what-if path: per template, one
//              statistics assembly + structure lookup + per-bound lock for
//              a whole block of value vectors, re-priced through the LP
//              backend's multi-RHS resolve (EstimateLog2Batch);
//   * warm + value jitter — the statistics change between calls, so each
//              evaluation re-prices (and occasionally re-solves) rather
//              than hitting an unchanged optimum.
// The table reports the speedups and the advisor's witness/warm/cold
// counters, making the pipeline's cache behavior observable. The warm and
// batch regimes run once per LP backend (dense tableau vs revised simplex,
// see lp/tableau.h), so the table doubles as the perf gate on the revised
// backend's witness and block re-pricing paths.
//
// Set LPB_BENCH_JSON=<path> to also dump the table as JSON — CI uploads
// it as an artifact and bench/compare_throughput.py gates regressions
// against bench/baseline_throughput.json: warm or batch cold-normalized
// throughput (the "speedup" field) >25% below baseline fails the
// workflow, as does batch < 2x scalar warm; raw est/s is informational
// (machine-dependent) unless --strict-absolute.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bounds/bound_engine.h"
#include "bounds/normal_engine.h"
#include "datagen/job_gen.h"
#include "estimator/advisor.h"

namespace lpb {
namespace {

// Value vectors per template in the batch regime — the scale of one
// optimizer what-if burst against one structure.
constexpr int kBatchSize = 64;

// Every timed regime keeps sweeping the workload until it has measured at
// least this long — sub-50ms samples swing 2x run to run, which no perf
// gate tolerance can absorb.
constexpr double kMinMeasureSeconds = 0.5;

JobWorkload& Workload() {
  static JobWorkload wl = [] {
    JobWorkloadOptions opt;
    opt.scale = 0.05;
    return GenerateJobWorkload(opt);
  }();
  return wl;
}

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct RegimeRun {
  const char* backend;  // short name, reused by the JSON artifact
  const char* label;
  double est_per_s = 0.0;
  double speedup = 0.0;     // vs the cold regime
  int batch_size = 1;       // value vectors per advisor call
  int repeats = 0;          // workload sweeps this regime actually ran
  uint64_t witness = 0, warm = 0, cold = 0;
};

// Warm regime for one LP backend: full advisor path (statistics lookup +
// compiled evaluate) over the whole template workload, one call at a time.
RegimeRun MeasureWarm(LpBackendKind backend, const char* label, int repeats,
                      const std::vector<double>& expected) {
  JobWorkload& wl = Workload();
  AdvisorOptions opt;
  opt.engine.simplex.backend = backend;
  CardinalityAdvisor advisor(wl.catalog, opt);
  const size_t m = wl.queries.size();
  for (const Query& q : wl.queries) advisor.EstimateLog2(q);  // compile

  const AdvisorMetrics before = advisor.metrics();
  int sweeps = 0;
  double secs = 0.0;
  auto t0 = std::chrono::steady_clock::now();
  do {
    for (size_t i = 0; i < m; ++i) {
      const double est = advisor.EstimateLog2(wl.queries[i]);
      benchmark::DoNotOptimize(est);
      if (std::abs(est - expected[i]) > 1e-6) {
        std::printf("MISMATCH on %s (%s): %f vs %f\n",
                    wl.queries[i].name().c_str(), label, est, expected[i]);
      }
    }
    ++sweeps;
    secs = Seconds(t0);
  } while (sweeps < repeats || secs < kMinMeasureSeconds);
  const AdvisorMetrics after = advisor.metrics();
  RegimeRun run;
  run.backend = LpBackendName(backend);
  run.label = label;
  run.repeats = sweeps;
  run.est_per_s = static_cast<double>(sweeps) * m / secs;
  run.witness = after.witness_hits - before.witness_hits;
  run.warm = after.warm_resolves - before.warm_resolves;
  run.cold = after.cold_solves - before.cold_solves;
  return run;
}

// Batch regime for one LP backend: per template, one EstimateLog2Batch
// call re-pricing kBatchSize value vectors. With `jitter` false the block
// carries the template's own statistics values — the same estimates the
// warm regime serves one call at a time, so batch/warm is a direct
// measure of what batching amortizes. With `jitter` true each vector
// perturbs one statistic (a real what-if sweep), exercising per-column
// witness validation and occasional warm re-solves.
RegimeRun MeasureBatch(LpBackendKind backend, const char* label, int repeats,
                       const std::vector<double>& expected, bool jitter) {
  JobWorkload& wl = Workload();
  AdvisorOptions opt;
  opt.engine.simplex.backend = backend;
  CardinalityAdvisor advisor(wl.catalog, opt);
  const size_t m = wl.queries.size();

  // Per-template batches: the real values, each vector optionally with a
  // deterministic +/-2% jitter on one statistic.
  std::vector<std::vector<std::vector<double>>> batches(m);
  for (size_t i = 0; i < m; ++i) {
    const auto stats = advisor.Explain(wl.queries[i]).stats;  // also compiles
    const std::vector<double> base = ValuesOf(stats);
    batches[i].reserve(kBatchSize);
    for (int c = 0; c < kBatchSize; ++c) {
      std::vector<double> values = base;
      if (jitter) {
        const size_t j = static_cast<size_t>(c) % values.size();
        values[j] *= 0.98 + 0.04 * ((c * 2654435761u >> 16) % 1000) / 1000.0;
      }
      batches[i].push_back(std::move(values));
    }
  }

  const AdvisorMetrics before = advisor.metrics();
  int sweeps = 0;
  double secs = 0.0;
  auto t0 = std::chrono::steady_clock::now();
  do {
    for (size_t i = 0; i < m; ++i) {
      const std::vector<double> ests =
          advisor.EstimateLog2Batch(wl.queries[i], batches[i]);
      benchmark::DoNotOptimize(ests.data());
      const double tolerance = jitter ? 1.0 : 1e-6;
      if (std::abs(ests[0] - expected[i]) > tolerance) {
        std::printf("BATCH MISMATCH on %s (%s): %f vs %f\n",
                    wl.queries[i].name().c_str(), label, ests[0], expected[i]);
      }
    }
    ++sweeps;
    secs = Seconds(t0);
  } while (sweeps < repeats || secs < kMinMeasureSeconds);
  const AdvisorMetrics after = advisor.metrics();
  RegimeRun run;
  run.backend = LpBackendName(backend);
  run.label = label;
  run.batch_size = kBatchSize;
  run.repeats = sweeps;
  run.est_per_s = static_cast<double>(sweeps) * m * kBatchSize / secs;
  run.witness = after.witness_hits - before.witness_hits;
  run.warm = after.warm_resolves - before.warm_resolves;
  run.cold = after.cold_solves - before.cold_solves;
  return run;
}

void PrintCounters(const RegimeRun& run) {
  std::printf(
      "%-28s %14.0f est/s   (%.1fx)   witness=%llu warm=%llu cold=%llu\n",
      run.label, run.est_per_s, run.speedup,
      static_cast<unsigned long long>(run.witness),
      static_cast<unsigned long long>(run.warm),
      static_cast<unsigned long long>(run.cold));
}

void DumpRunsJson(std::FILE* f, const char* section,
                  const std::vector<RegimeRun>& runs) {
  std::fprintf(f, "  \"%s\": [\n", section);
  for (size_t i = 0; i < runs.size(); ++i) {
    const RegimeRun& run = runs[i];
    std::fprintf(f,
                 "    {\"backend\": \"%s\", \"est_per_s\": %.1f, "
                 "\"speedup\": %.2f, \"batch_size\": %d, "
                 "\"repeats\": %d, "
                 "\"witness\": %llu, \"warm\": %llu, \"cold\": %llu}%s\n",
                 run.backend, run.est_per_s, run.speedup, run.batch_size,
                 run.repeats,
                 static_cast<unsigned long long>(run.witness),
                 static_cast<unsigned long long>(run.warm),
                 static_cast<unsigned long long>(run.cold),
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]");
}

void PrintTable() {
  JobWorkload& wl = Workload();
  CardinalityAdvisor advisor(wl.catalog);

  // Per-query statistics, assembled once through the advisor so cold and
  // warm paths see identical inputs (Explain also pre-warms the caches,
  // which is exactly the deployment scenario: templates repeat).
  std::vector<std::vector<ConcreteStatistic>> stats;
  std::vector<double> expected;
  for (const Query& q : wl.queries) {
    auto explanation = advisor.Explain(q);
    stats.push_back(std::move(explanation.stats));
    expected.push_back(explanation.bound.log2_bound);
  }

  const int kRepeats = 30;
  const size_t m = wl.queries.size();

  // Cold: fresh LP build + solve per estimate.
  auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < kRepeats; ++r) {
    for (size_t i = 0; i < m; ++i) {
      benchmark::DoNotOptimize(
          LpNormBound(wl.queries[i].num_vars(), stats[i]).log2_bound);
    }
  }
  const double cold_s = Seconds(t0);
  const double n_est = static_cast<double>(kRepeats * m);
  const double cold_rate = n_est / cold_s;

  std::vector<RegimeRun> warm_runs = {
      MeasureWarm(LpBackendKind::kDense, "warm dense", kRepeats, expected),
      MeasureWarm(LpBackendKind::kRevised, "warm revised", kRepeats,
                  expected),
  };
  // Fewer repeats for the batch regimes: each repeat serves
  // kBatchSize x the estimates.
  const int batch_repeats = std::max(1, kRepeats / 4);
  std::vector<RegimeRun> batch_runs = {
      MeasureBatch(LpBackendKind::kDense, "batch dense", batch_repeats,
                   expected, /*jitter=*/false),
      MeasureBatch(LpBackendKind::kRevised, "batch revised", batch_repeats,
                   expected, /*jitter=*/false),
  };
  std::vector<RegimeRun> jitter_runs = {
      MeasureBatch(LpBackendKind::kDense, "batch dense what-if",
                   batch_repeats, expected, /*jitter=*/true),
      MeasureBatch(LpBackendKind::kRevised, "batch revised what-if",
                   batch_repeats, expected, /*jitter=*/true),
  };
  for (RegimeRun& run : warm_runs) run.speedup = run.est_per_s / cold_rate;
  for (RegimeRun& run : batch_runs) run.speedup = run.est_per_s / cold_rate;
  for (RegimeRun& run : jitter_runs) run.speedup = run.est_per_s / cold_rate;

  std::printf("== Estimator throughput, %zu JOB templates x %d repeats ==\n",
              m, kRepeats);
  std::printf("%-28s %14.0f est/s\n", "cold (LP per estimate)", cold_rate);
  for (const RegimeRun& run : warm_runs) PrintCounters(run);
  for (const RegimeRun& run : batch_runs) PrintCounters(run);
  for (const RegimeRun& run : jitter_runs) PrintCounters(run);
  for (size_t i = 0; i < warm_runs.size() && i < batch_runs.size(); ++i) {
    std::printf("%-28s %14.2fx  (batch of %d vs scalar warm, %s)\n",
                "batch/scalar", batch_runs[i].est_per_s / warm_runs[i].est_per_s,
                batch_runs[i].batch_size, warm_runs[i].backend);
  }
  std::printf("\n");

  if (const char* json_path = std::getenv("LPB_BENCH_JSON")) {
    if (std::FILE* f = std::fopen(json_path, "w")) {
      std::fprintf(f,
                   "{\n  \"workload\": \"job-templates\",\n"
                   "  \"templates\": %zu,\n  \"cold_warm_repeats\": %d,\n"
                   "  \"batch_size\": %d,\n"
                   "  \"cold_est_per_s\": %.1f,\n",
                   m, kRepeats, kBatchSize, cold_rate);
      DumpRunsJson(f, "warm", warm_runs);
      std::fprintf(f, ",\n");
      DumpRunsJson(f, "batch", batch_runs);
      std::fprintf(f, ",\n");
      DumpRunsJson(f, "batch_what_if", jitter_runs);
      std::fprintf(f, "\n}\n");
      std::fclose(f);
      std::printf("wrote %s\n\n", json_path);
    }
  }
}

void BM_ColdEstimate(benchmark::State& state) {
  JobWorkload& wl = Workload();
  CardinalityAdvisor advisor(wl.catalog);
  const size_t i = static_cast<size_t>(state.range(0));
  auto stats = advisor.Explain(wl.queries[i]).stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        LpNormBound(wl.queries[i].num_vars(), stats).log2_bound);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ColdEstimate)->Arg(0)->Arg(8)->Arg(20);

void BM_WarmEstimate(benchmark::State& state) {
  JobWorkload& wl = Workload();
  static CardinalityAdvisor advisor(wl.catalog);
  const size_t i = static_cast<size_t>(state.range(0));
  advisor.EstimateLog2(wl.queries[i]);  // compile outside the timed loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(advisor.EstimateLog2(wl.queries[i]));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["batch_size"] = 1;
}
BENCHMARK(BM_WarmEstimate)->Arg(0)->Arg(8)->Arg(20);

// Batched what-if probes against one compiled template: one advisor call
// re-prices `batch_size` value vectors. items_processed counts estimates
// (iterations x batch size), so est/s is directly comparable with
// BM_WarmEstimate's.
void BM_BatchEstimate(benchmark::State& state) {
  JobWorkload& wl = Workload();
  static CardinalityAdvisor advisor(wl.catalog);
  const size_t i = static_cast<size_t>(state.range(0));
  const int batch_size = static_cast<int>(state.range(1));
  const auto stats = advisor.Explain(wl.queries[i]).stats;
  const std::vector<std::vector<double>> batch(
      static_cast<size_t>(batch_size), ValuesOf(stats));
  for (auto _ : state) {
    const std::vector<double> ests =
        advisor.EstimateLog2Batch(wl.queries[i], batch);
    benchmark::DoNotOptimize(ests.data());
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
  state.counters["batch_size"] = batch_size;
}
BENCHMARK(BM_BatchEstimate)
    ->Args({0, 16})
    ->Args({0, 256})
    ->Args({8, 16})
    ->Args({8, 256})
    ->Args({20, 16})
    ->Args({20, 256});

// Statistics drift between estimates (value jitter, same structure): the
// witness path re-prices, occasionally falling back to warm/cold re-solves.
void BM_WarmEstimateJitteredValues(benchmark::State& state) {
  JobWorkload& wl = Workload();
  CardinalityAdvisor advisor(wl.catalog);
  const size_t i = static_cast<size_t>(state.range(0));
  auto stats = advisor.Explain(wl.queries[i]).stats;
  auto compiled = FindBoundEngine("auto")->Compile(
      StructureOf(wl.queries[i].num_vars(), stats));
  std::vector<double> values = ValuesOf(stats);
  compiled->Evaluate(values);
  uint64_t tick = 0;
  for (auto _ : state) {
    // Deterministic +/-5% drift on one statistic per call.
    const size_t j = tick % values.size();
    const double jitter = 0.95 + 0.1 * ((tick * 2654435761u >> 16) % 1000) / 1000.0;
    const double saved = values[j];
    values[j] *= jitter;
    benchmark::DoNotOptimize(
        compiled->Evaluate(values, /*want_h_opt=*/false).log2_bound);
    values[j] = saved;
    ++tick;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WarmEstimateJitteredValues)->Arg(0)->Arg(8)->Arg(20);

}  // namespace
}  // namespace lpb

int main(int argc, char** argv) {
  lpb::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
