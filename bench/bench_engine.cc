// Sec 5: computing the bound is an LP exponential in the query size. Times
// the Γn engine (full lattice vs cutting plane) and the Nn engine across
// path and cycle queries of growing variable count, and reports the
// Appendix D.2 non-Shannon gap instance.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "bounds/engine.h"
#include "bounds/normal_engine.h"

namespace lpb {
namespace {

ConcreteStatistic Stat(VarSet u, VarSet v, double p, double log_b) {
  ConcreteStatistic s;
  s.sigma = {u, v};
  s.p = p;
  s.log_b = log_b;
  return s;
}

// Simple statistics for a path query over n variables.
std::vector<ConcreteStatistic> PathStats(int n) {
  std::vector<ConcreteStatistic> stats;
  for (int i = 0; i + 1 < n; ++i) {
    const VarSet u = VarBit(i), v = VarBit(i + 1);
    stats.push_back(Stat(0, u | v, 1.0, 10.0));
    stats.push_back(Stat(u, v, 2.0, 6.0));
    stats.push_back(Stat(v, u, 2.0, 6.0));
    stats.push_back(Stat(u, v, kInfNorm, 3.0));
  }
  return stats;
}

std::vector<ConcreteStatistic> CycleStats(int n) {
  auto stats = PathStats(n);
  const VarSet u = VarBit(n - 1), v = VarBit(0);
  stats.push_back(Stat(0, u | v, 1.0, 10.0));
  stats.push_back(Stat(u, v, 2.0, 6.0));
  return stats;
}

void PrintTable() {
  std::printf("== Bound-computation scaling (Sec 5) ==\n");
  std::printf("%-6s %-7s %12s %12s %12s %10s %10s\n", "vars", "query",
              "Gamma-full", "Gamma-cuts", "Normal(Nn)", "bound", "rounds");
  for (int n = 4; n <= 12; n += 2) {
    for (bool cycle : {false, true}) {
      auto stats = cycle ? CycleStats(n) : PathStats(n);
      double t_full = -1.0, t_cuts = -1.0, t_norm = -1.0;
      double bound = 0.0;
      int rounds = 0;

      if (n <= 8) {
        EngineOptions full;
        full.full_lattice_max_n = 12;
        auto t0 = std::chrono::steady_clock::now();
        auto r = PolymatroidBound(n, stats, full);
        t_full = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
        bound = r.log2_bound;
      }
      if (n <= 6) {  // the dense-tableau cutting plane wall (see engine.h)
        EngineOptions cuts;
        cuts.full_lattice_max_n = 3;
        auto t0 = std::chrono::steady_clock::now();
        auto r = PolymatroidBound(n, stats, cuts);
        t_cuts = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
        bound = r.log2_bound;
        rounds = r.cut_rounds;
      }
      {
        auto t0 = std::chrono::steady_clock::now();
        auto r = NormalPolymatroidBound(n, stats);
        t_norm = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
        bound = r.base.log2_bound;
      }
      std::printf("%-6d %-7s %12.4f %12.4f %12.4f %10.3f %10d\n", n,
                  cycle ? "cycle" : "path", t_full, t_cuts, t_norm, bound,
                  rounds);
    }
  }
  std::printf("(times in seconds; -1 = skipped: full lattice too large)\n\n");
}

void BM_GammaFullLattice(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto stats = PathStats(n);
  EngineOptions opt;
  opt.full_lattice_max_n = 12;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PolymatroidBound(n, stats, opt).log2_bound);
  }
}
BENCHMARK(BM_GammaFullLattice)->Arg(4)->Arg(6)->Arg(8);

void BM_GammaCuttingPlane(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto stats = PathStats(n);
  EngineOptions opt;
  opt.full_lattice_max_n = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PolymatroidBound(n, stats, opt).log2_bound);
  }
}
BENCHMARK(BM_GammaCuttingPlane)->Arg(4)->Arg(5)->Arg(6);

void BM_NormalEngine(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto stats = PathStats(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(NormalPolymatroidBound(n, stats).base.log2_bound);
  }
}
BENCHMARK(BM_NormalEngine)->Arg(6)->Arg(10)->Arg(14);

}  // namespace
}  // namespace lpb

int main(int argc, char** argv) {
  lpb::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
