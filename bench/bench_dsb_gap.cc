// Reproduces Appendix C.3: on the single join of a (0,1/3)-relation with a
// (0,2/3)-relation, the Degree Sequence Bound stays Θ(M) while the best
// ℓp bound is Θ(M^{10/9}) — the gap grows with M as M^{1/9}. Also prints
// the closed-form bound (50) ( = (19) with p=3, q=2 ) next to the engine.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "bounds/formulas.h"
#include "bounds/normal_engine.h"
#include "datagen/alpha_beta.h"
#include "estimator/dsb.h"
#include "exec/generic_join.h"
#include "query/parser.h"
#include "stats/collector.h"

namespace lpb {
namespace {

void PrintTable() {
  std::printf(
      "== DSB vs lp-bound gap instance (App. C.3): R=(0,1/3), S=(0,2/3) "
      "==\n");
  std::printf(
      "log2 values; theory: DSB = log2(2M), lp-bound = (10/9) log2 M\n");
  std::printf("%-10s %10s %10s %10s %12s %12s %12s\n", "M", "log2M",
              "log2|Q|", "DSB", "eq(50)", "engine", "(10/9)log2M");
  for (int e = 9; e <= 18; e += 3) {
    const uint64_t m = 1ull << e;
    Catalog db;
    db.Add(AlphaBetaRelation("R", m, 0.0, 1.0 / 3));
    db.Add(AlphaBetaRelation("S", m, 0.0, 2.0 / 3));
    Query q = *ParseQuery("R(X,Y), S(Y,Z)");
    const uint64_t truth = CountJoin(q, db);

    DegreeSequence a = ComputeDegreeSequence(db.Get("R"), {1}, {0});
    DegreeSequence b = ComputeDegreeSequence(db.Get("S"), {0}, {1});
    const double dsb = SingleJoinDsbLog2(a, b);
    // Eq (50): ||deg_R(X|Y)||_3 · |S|^{1/3} · ||deg_S(Z|Y)||_2^{2/3}.
    const double eq50 = JoinEq19Log2(
        a.Log2NormP(3.0), b.Log2NormP(2.0),
        std::log2(static_cast<double>(db.Get("S").NumRows())), 3.0, 2.0);

    CollectorOptions opt;
    opt.norms = {1.0, 2.0, 3.0, 4.0, 5.0, kInfNorm};
    auto stats = CollectStatistics(q, db, opt);
    auto bound = LpNormBound(q.num_vars(), stats);

    std::printf("%-10llu %10d %10.2f %10.2f %12.2f %12.2f %12.2f\n",
                static_cast<unsigned long long>(m), e,
                truth == 0 ? 0.0 : std::log2(static_cast<double>(truth)),
                dsb, eq50, bound.log2_bound, 10.0 * e / 9.0);
  }
  std::printf("\n");
}

void BM_DsbComputation(benchmark::State& state) {
  const uint64_t m = 1ull << 15;
  Relation r = AlphaBetaRelation("R", m, 0.0, 1.0 / 3);
  Relation s = AlphaBetaRelation("S", m, 0.0, 2.0 / 3);
  DegreeSequence a = ComputeDegreeSequence(r, {1}, {0});
  DegreeSequence b = ComputeDegreeSequence(s, {0}, {1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(SingleJoinDsb(a, b));
  }
}
BENCHMARK(BM_DsbComputation);

void BM_GapInstanceBound(benchmark::State& state) {
  const uint64_t m = 1ull << 15;
  Catalog db;
  db.Add(AlphaBetaRelation("R", m, 0.0, 1.0 / 3));
  db.Add(AlphaBetaRelation("S", m, 0.0, 2.0 / 3));
  Query q = *ParseQuery("R(X,Y), S(Y,Z)");
  CollectorOptions opt;
  opt.norms = {1.0, 2.0, 3.0, 4.0, 5.0, kInfNorm};
  auto stats = CollectStatistics(q, db, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LpNormBound(q.num_vars(), stats).log2_bound);
  }
}
BENCHMARK(BM_GapInstanceBound);

}  // namespace
}  // namespace lpb

int main(int argc, char** argv) {
  lpb::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
