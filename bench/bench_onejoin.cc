// Reproduces the Appendix C.1 "One-join query" table: the self-join
// Q(X,Y,Z) = E(X,Y) ∧ E(Y,Z) on the SNAP stand-ins; the {2}-bound is very
// close to the truth while {1} is off by orders of magnitude and the
// traditional estimator underestimates.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "bounds/normal_engine.h"
#include "datagen/graph_gen.h"
#include "estimator/dsb.h"
#include "estimator/traditional.h"
#include "exec/generic_join.h"
#include "query/parser.h"
#include "stats/collector.h"

namespace lpb {
namespace {

void PrintTable() {
  std::printf(
      "== One-join query Q(X,Y,Z) = E(X,Y) ∧ E(Y,Z) (App. C.1) ==\n");
  std::printf("ratios of bound/estimate to the true cardinality\n");
  std::printf("%-18s %14s %10s %10s %10s %10s %10s\n", "dataset", "true",
              "{1}", "{1,inf}", "{2}", "DSB", "trad(DuckDB)");
  for (const GraphSpec& spec : SnapStandInSpecs()) {
    Catalog db;
    Relation g = GeneratePowerLawGraph(spec);
    g.set_name("E");
    db.Add(std::move(g));
    Query q = *ParseQuery("E(X,Y), E(Y,Z)");
    const uint64_t truth = CountJoin(q, db);

    CollectorOptions opt;
    opt.norms = {1.0, 2.0, kInfNorm};
    auto stats = CollectStatistics(q, db, opt);
    CollectorOptions two;
    two.norms = {2.0};
    two.include_cardinalities = false;
    auto stats2 = CollectStatistics(q, db, two);

    const int n = q.num_vars();
    const double agm =
        Ratio(LpNormBound(n, FilterAgmStatistics(stats)).log2_bound, truth);
    const double panda = Ratio(
        LpNormBound(n, FilterPandaStatistics(stats)).log2_bound, truth);
    const double l2 = Ratio(LpNormBound(n, stats2).log2_bound, truth);
    const Relation& e = db.Get("E");
    const double dsb =
        Ratio(SingleJoinDsbLog2(ComputeDegreeSequence(e, {1}, {0}),
                                ComputeDegreeSequence(e, {0}, {1})),
              truth);
    const double duck = Ratio(TraditionalEstimateLog2(q, db), truth);
    std::printf("%-18s %14llu %10s %10s %10s %10s %10s\n", spec.name.c_str(),
                static_cast<unsigned long long>(truth), Sci(agm).c_str(),
                Sci(panda).c_str(), Sci(l2).c_str(), Sci(dsb).c_str(),
                Sci(duck).c_str());
  }
  std::printf("\n");
}

void BM_OneJoinCount(benchmark::State& state) {
  Catalog db;
  Relation g = GeneratePowerLawGraph(SnapStandInSpecs()[0]);
  g.set_name("E");
  db.Add(std::move(g));
  Query q = *ParseQuery("E(X,Y), E(Y,Z)");
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountJoin(q, db));
  }
}
BENCHMARK(BM_OneJoinCount);

void BM_OneJoinDegreeSequence(benchmark::State& state) {
  Relation g = GeneratePowerLawGraph(SnapStandInSpecs()[3]);
  for (auto _ : state) {
    DegreeSequence d = ComputeDegreeSequence(g, {0}, {1});
    benchmark::DoNotOptimize(d.MaxDegree());
  }
}
BENCHMARK(BM_OneJoinDegreeSequence);

}  // namespace
}  // namespace lpb

int main(int argc, char** argv) {
  lpb::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
