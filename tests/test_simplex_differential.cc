// Randomized differential testing: dense tableau vs sparse revised simplex.
//
// The two LP backends (lp/dense_tableau.h, lp/revised_simplex.h) promise
// the identical contract behind SimplexTableau. This harness generates
// hundreds of seeded random LPs — mixed <=/>=/= senses, quarter-integer
// coefficient grids and zero right-hand sides (heavy degeneracy, exact
// ratio-test ties), plus naturally occurring unbounded and infeasible
// instances — and asserts the backends agree on status and objective and
// that each backend's returned witness independently satisfies primal
// feasibility, dual feasibility, and complementary slackness.
//
// The seed is overridable via LPB_DIFF_SEED so CI can run several fixed
// seeds without recompiling; failures print the seed and trial for replay.
//
// The second half differentially tests the backends where they matter:
// the Γn cutting-plane bound LPs (n <= 6 against the dense full-lattice
// reference, and the n = 8 compile that only the revised backend can
// afford, checked against the exact normal-polymatroid bound).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "bounds/bound_engine.h"
#include "bounds/engine.h"
#include "bounds/normal_engine.h"
#include "datagen/gamma_stats.h"
#include "lp/lp_problem.h"
#include "lp/simplex.h"
#include "lp/tableau.h"
#include "relation/degree_sequence.h"
#include "util/random.h"

namespace lpb {
namespace {

uint64_t HarnessSeed() {
  const char* env = std::getenv("LPB_DIFF_SEED");
  if (env != nullptr && *env != '\0') {
    return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }
  return 12345;
}

SimplexOptions Backend(LpBackendKind kind) {
  SimplexOptions options;
  options.backend = kind;
  return options;
}

// Quarter-integer coefficients: exact ties in the ratio test, the regime
// where anti-cycling rules earn their keep.
double GridCoef(Rng& rng, double lo, double hi) {
  const double raw = lo + (hi - lo) * rng.NextDouble();
  return std::round(raw * 4.0) / 4.0;
}

LpProblem RandomLp(Rng& rng) {
  const int n = 1 + static_cast<int>(rng.Uniform(6));
  const int m = 1 + static_cast<int>(rng.Uniform(10));
  LpProblem lp(n);
  for (int j = 0; j < n; ++j) {
    if (rng.Bernoulli(0.85)) lp.SetObjective(j, GridCoef(rng, -1.0, 3.0));
  }
  for (int i = 0; i < m; ++i) {
    std::vector<LpTerm> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.Bernoulli(0.6)) {
        const double c = GridCoef(rng, -2.0, 2.0);
        if (c != 0.0) terms.push_back({j, c});
      }
    }
    if (terms.empty()) terms.push_back({static_cast<int>(rng.Uniform(n)), 1.0});
    // Weighted senses: random = rows are almost always jointly infeasible,
    // so keep them a seasoning rather than the diet.
    const double sense_draw = rng.NextDouble();
    const LpSense sense = sense_draw < 0.55   ? LpSense::kLe
                          : sense_draw < 0.85 ? LpSense::kGe
                                              : LpSense::kEq;
    // Degenerate RHS (0) a third of the time; occasionally negative.
    double rhs = 0.0;
    if (!rng.Bernoulli(0.34)) {
      rhs = GridCoef(rng, rng.Bernoulli(0.15) ? -4.0 : 0.0, 6.0);
    }
    lp.AddConstraint(std::move(terms), sense, rhs);
  }
  // Half the instances get box rows: bounded feasible region, so the
  // optimal-status share stays high while the unboxed half keeps
  // exercising unbounded rays.
  if (rng.Bernoulli(0.5)) {
    for (int j = 0; j < n; ++j) {
      lp.AddConstraint({{j, 1.0}}, LpSense::kLe, GridCoef(rng, 1.0, 20.0));
    }
  }
  return lp;
}

struct WitnessCheck {
  double primal_violation = 0.0;
  double dual_violation = 0.0;
  double slackness_violation = 0.0;
  double duality_gap = 0.0;
};

// Verifies the optimal witness (x, duals) of `result` against `lp` with the
// RHS vector actually solved (empty = the problem's own).
WitnessCheck CheckWitness(const LpProblem& lp, const std::vector<double>& rhs,
                          const LpResult& result) {
  WitnessCheck check;
  const int m = lp.num_constraints();
  auto rhs_of = [&](int i) {
    return rhs.empty() ? lp.constraint(i).rhs : rhs[i];
  };
  // Primal feasibility (x >= 0 plus every constraint).
  for (double xj : result.x) {
    check.primal_violation = std::max(check.primal_violation, -xj);
  }
  for (int i = 0; i < m; ++i) {
    const double lhs = lp.EvalLhs(i, result.x);
    const double b = rhs_of(i);
    double violation = 0.0;
    switch (lp.constraint(i).sense) {
      case LpSense::kLe:
        violation = lhs - b;
        break;
      case LpSense::kGe:
        violation = b - lhs;
        break;
      case LpSense::kEq:
        violation = std::abs(lhs - b);
        break;
    }
    check.primal_violation = std::max(check.primal_violation, violation);
    // Complementary slackness, constraint side: nonzero dual => tight row.
    if (std::abs(result.duals[i]) > 1e-6 &&
        lp.constraint(i).sense != LpSense::kEq) {
      check.slackness_violation =
          std::max(check.slackness_violation, std::abs(lhs - b));
    }
  }
  // Dual feasibility: sign per sense, and reduced costs c_j - y'A_j <= 0
  // for a maximization problem; slackness, variable side: x_j > 0 => the
  // reduced cost is zero.
  std::vector<double> ya(lp.num_vars(), 0.0);
  for (int i = 0; i < m; ++i) {
    const LpConstraint& c = lp.constraint(i);
    switch (c.sense) {
      case LpSense::kLe:
        check.dual_violation = std::max(check.dual_violation, -result.duals[i]);
        break;
      case LpSense::kGe:
        check.dual_violation = std::max(check.dual_violation, result.duals[i]);
        break;
      case LpSense::kEq:
        break;
    }
    for (const LpTerm& t : c.terms) ya[t.var] += result.duals[i] * t.coef;
  }
  for (int j = 0; j < lp.num_vars(); ++j) {
    const double reduced = lp.objective_coef(j) - ya[j];
    check.dual_violation = std::max(check.dual_violation, reduced);
    if (result.x[j] > 1e-6) {
      check.slackness_violation =
          std::max(check.slackness_violation, std::abs(reduced));
    }
  }
  // Strong duality: y'b == objective.
  double dual_obj = 0.0;
  for (int i = 0; i < m; ++i) dual_obj += result.duals[i] * rhs_of(i);
  check.duality_gap = std::abs(dual_obj - result.objective);
  return check;
}

void ExpectAgreement(const LpProblem& lp, const std::vector<double>& rhs,
                     const LpResult& dense, const LpResult& revised,
                     const std::string& context) {
  ASSERT_EQ(dense.status, revised.status) << context;
  // The LpResult contract: sized x/duals regardless of status.
  EXPECT_EQ(dense.x.size(), static_cast<size_t>(lp.num_vars())) << context;
  EXPECT_EQ(revised.x.size(), static_cast<size_t>(lp.num_vars())) << context;
  EXPECT_EQ(dense.duals.size(), static_cast<size_t>(lp.num_constraints()))
      << context;
  EXPECT_EQ(revised.duals.size(), static_cast<size_t>(lp.num_constraints()))
      << context;
  if (dense.status != LpStatus::kOptimal) return;
  const double tol = 1e-7 * std::max(1.0, std::abs(dense.objective));
  EXPECT_NEAR(dense.objective, revised.objective, tol) << context;
  for (const LpResult* result : {&dense, &revised}) {
    const char* which = result == &dense ? " [dense]" : " [revised]";
    WitnessCheck check = CheckWitness(lp, rhs, *result);
    EXPECT_LE(check.primal_violation, 1e-6) << context << which;
    EXPECT_LE(check.dual_violation, 1e-6) << context << which;
    EXPECT_LE(check.slackness_violation, 1e-5) << context << which;
    EXPECT_LE(check.duality_gap,
              1e-6 * std::max(1.0, std::abs(result->objective)))
        << context << which;
  }
}

TEST(SimplexDifferential, FiveHundredRandomLpsAgree) {
  const uint64_t seed = HarnessSeed();
  Rng rng(seed);
  int optimal = 0, unbounded = 0, infeasible = 0;
  for (int trial = 0; trial < 500; ++trial) {
    LpProblem lp = RandomLp(rng);
    SimplexTableau dense(lp, Backend(LpBackendKind::kDense));
    SimplexTableau revised(lp, Backend(LpBackendKind::kRevised));
    const LpResult d = dense.Solve();
    const LpResult r = revised.Solve();
    const std::string context =
        "seed " + std::to_string(seed) + " trial " + std::to_string(trial);
    ExpectAgreement(lp, {}, d, r, context);
    if (testing::Test::HasFatalFailure()) return;
    switch (d.status) {
      case LpStatus::kOptimal:
        ++optimal;
        break;
      case LpStatus::kUnbounded:
        ++unbounded;
        break;
      case LpStatus::kInfeasible:
        ++infeasible;
        break;
      case LpStatus::kIterationLimit:
        FAIL() << "iteration limit on a tiny LP, " << context;
    }
  }
  // The generator must exercise every verdict, not just the happy path.
  EXPECT_GT(optimal, 100) << "seed " << seed;
  EXPECT_GT(unbounded + infeasible, 50) << "seed " << seed;
}

// Warm-path differential: re-solve the same matrix at redrawn RHS vectors;
// the witness/warm/cold cascades of both backends must land on the same
// verdicts and objectives as each other (statuses may legitimately change
// per RHS — infeasible redraws included).
TEST(SimplexDifferential, RandomResolvesAgree) {
  const uint64_t seed = HarnessSeed() ^ 0x9e3779b97f4a7c15ull;
  Rng rng(seed);
  for (int trial = 0; trial < 60; ++trial) {
    LpProblem lp = RandomLp(rng);
    SimplexTableau dense(lp, Backend(LpBackendKind::kDense));
    SimplexTableau revised(lp, Backend(LpBackendKind::kRevised));
    if (dense.Solve().status != revised.Solve().status) {
      ADD_FAILURE() << "cold status mismatch, seed " << seed << " trial "
                    << trial;
      continue;
    }
    std::vector<double> rhs(lp.num_constraints());
    for (int redraw = 0; redraw < 8; ++redraw) {
      for (int i = 0; i < lp.num_constraints(); ++i) {
        const double base = lp.constraint(i).rhs;
        // Mix small perturbations (witness-friendly) with full redraws
        // (dual-simplex and cold-fallback territory).
        rhs[i] = redraw % 2 == 0 ? base * (0.9 + 0.2 * rng.NextDouble())
                                 : GridCoef(rng, -2.0, 6.0);
      }
      const LpResult d = dense.ResolveWithRhs(rhs);
      const LpResult r = revised.ResolveWithRhs(rhs);
      const std::string context = "seed " + std::to_string(seed) + " trial " +
                                  std::to_string(trial) + " redraw " +
                                  std::to_string(redraw);
      ExpectAgreement(lp, rhs, d, r, context);
      if (testing::Test::HasFatalFailure()) return;
    }
  }
}

// Pricing-rule differential: the revised backend under Devex must agree
// with the dense tableau (which always prices Dantzig) on every verdict
// and objective — the rule changes the pivot path, never the optimum.
// Covers the same mixed-sense/degenerate generator as the main harness.
TEST(SimplexDifferential, DevexPricingAgreesWithDense) {
  const uint64_t seed = HarnessSeed() ^ 0x7e7e7e7eull;
  Rng rng(seed);
  for (int trial = 0; trial < 200; ++trial) {
    LpProblem lp = RandomLp(rng);
    SimplexTableau dense(lp, Backend(LpBackendKind::kDense));
    SimplexOptions devex = Backend(LpBackendKind::kRevised);
    devex.pricing = PricingRule::kDevex;
    SimplexTableau revised(lp, devex);
    const LpResult d = dense.Solve();
    const LpResult r = revised.Solve();
    ASSERT_EQ(r.pricing, PricingRule::kDevex);
    const std::string context = "devex seed " + std::to_string(seed) +
                                " trial " + std::to_string(trial);
    ExpectAgreement(lp, {}, d, r, context);
    if (testing::Test::HasFatalFailure()) return;
  }
}

// The unstable-update fallback: max_basis_updates = 1 forces the
// refactorize path after every single pivot, so every pivot exercises the
// update-then-refactorize transition; results must stay in lockstep with
// the dense backend across cold solves and warm re-solves alike.
TEST(SimplexDifferential, PerPivotRefactorizeStaysInLockstep) {
  const uint64_t seed = HarnessSeed() ^ 0xacceull;
  Rng rng(seed);
  for (int trial = 0; trial < 60; ++trial) {
    LpProblem lp = RandomLp(rng);
    SimplexTableau dense(lp, Backend(LpBackendKind::kDense));
    SimplexOptions churn = Backend(LpBackendKind::kRevised);
    churn.max_basis_updates = 1;
    SimplexTableau revised(lp, churn);
    const LpResult d = dense.Solve();
    const LpResult r = revised.Solve();
    const std::string context = "per-pivot-refactorize seed " +
                                std::to_string(seed) + " trial " +
                                std::to_string(trial);
    ExpectAgreement(lp, {}, d, r, context);
    if (testing::Test::HasFatalFailure()) return;
    if (d.status != LpStatus::kOptimal) continue;
    std::vector<double> rhs(lp.num_constraints());
    for (int redraw = 0; redraw < 4; ++redraw) {
      for (int i = 0; i < lp.num_constraints(); ++i) {
        const double base = lp.constraint(i).rhs;
        rhs[i] = redraw % 2 == 0 ? base * (0.9 + 0.2 * rng.NextDouble())
                                 : GridCoef(rng, -2.0, 6.0);
      }
      ExpectAgreement(lp, rhs, dense.ResolveWithRhs(rhs),
                      revised.ResolveWithRhs(rhs),
                      context + " redraw " + std::to_string(redraw));
      if (testing::Test::HasFatalFailure()) return;
    }
  }
}

// Regression: the revised backend's internal anti-degeneracy perturbation
// (graded up to ~1e-5 per row) must not change *verdicts*. A problem
// infeasible by less than the shifts opens up under perturbation, and an
// unconstrained objective then rides a ray — so a naive implementation
// reports kUnbounded where dense reports kInfeasible. The fix validates
// feasibility at the true RHS before trusting a perturbed verdict.
TEST(SimplexDifferential, PerturbationDoesNotMaskNearInfeasibility) {
  LpProblem lp(2);
  lp.SetObjective(0, 1.0);                              // x0 unconstrained
  lp.AddConstraint({{1, 1.0}}, LpSense::kGe, 4e-6);     // row 0: small grade
  for (int i = 0; i < 49; ++i) {
    lp.AddConstraint({{1, 1.0}}, LpSense::kLe, 1.0);    // filler rows
  }
  lp.AddConstraint({{1, 1.0}}, LpSense::kLe, 0.0);      // row 50: big grade
  // True problem: x1 >= 4e-6 and x1 <= 0 — infeasible by more than the
  // phase-1 tolerance. Perturbed: x1 in [~4.1e-6, ~5.1e-6] — feasible,
  // and max x0 is then unbounded.
  SimplexTableau dense(lp, Backend(LpBackendKind::kDense));
  SimplexTableau revised(lp, Backend(LpBackendKind::kRevised));
  const LpResult d = dense.Solve();
  const LpResult r = revised.Solve();
  EXPECT_EQ(d.status, LpStatus::kInfeasible);
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
}

// ---------------------------------------------------------------------------
// The LPs the revised backend exists for: Γn cutting-plane bounds.

// Cardinality-style statistics over random small variable sets plus
// simple conditionals deg(V|u): the advisor's statistics shapes. Shared
// with bench_throughput's CI-gated gamma_n8 pivot workload
// (datagen/gamma_stats.h) — the pivot baselines gate the LP population
// this harness validates, so the generator must not fork.
std::vector<ConcreteStatistic> RandomSimpleStats(Rng& rng, int n,
                                                 int count) {
  return RandomSimpleGammaStats(rng, n, count);
}

TEST(SimplexDifferential, GammaCuttingPlaneMatchesDenseFullLattice) {
  const uint64_t seed = HarnessSeed() ^ 0xabcdef12345ull;
  Rng rng(seed);
  for (int n = 3; n <= 6; ++n) {
    for (int trial = 0; trial < 6; ++trial) {
      const std::vector<ConcreteStatistic> stats =
          RandomSimpleStats(rng, n, 2 + n);
      // Reference: dense backend over the fully materialized lattice.
      EngineOptions full;
      full.full_lattice_max_n = 8;
      full.simplex.backend = LpBackendKind::kDense;
      const BoundResult reference = PolymatroidBound(n, stats, full);
      // Under test: cutting-plane mode (forced) on each backend.
      for (LpBackendKind kind :
           {LpBackendKind::kDense, LpBackendKind::kRevised}) {
        EngineOptions cut;
        cut.full_lattice_max_n = 2;
        cut.simplex.backend = kind;
        const BoundResult result = PolymatroidBound(n, stats, cut);
        const std::string context = "seed " + std::to_string(seed) + " n " +
                                    std::to_string(n) + " trial " +
                                    std::to_string(trial) + " backend " +
                                    LpBackendName(kind);
        ASSERT_EQ(result.status, reference.status) << context;
        if (reference.ok()) {
          EXPECT_NEAR(result.log2_bound, reference.log2_bound,
                      1e-6 * std::max(1.0, std::abs(reference.log2_bound)))
              << context;
        }
      }
    }
  }
}

// Warm-vs-cold cutting-plane differential: the same compile driven with
// incremental row appends (SimplexOptions::cut_warm_start on, the
// default) and with the pre-append behavior (every growth round rebuilds
// the tableau and re-solves two-phase) must converge to the same bound.
// The *cut families* may differ: each round's LP is degenerate, warm dual
// repair and a cold two-phase solve can land on different equal-value
// optimal vertices, and different vertices separate different cuts — the
// smoke runs show the warm driver converging in fewer rounds. What both
// drivers guarantee is termination at an optimum no un-pooled Shannon cut
// separates, so the converged bound is the full-family optimum either
// way; that value is what the differential pins, along with the warm
// driver actually exercising the append path (row_appends > 0) and the
// cold driver never doing so.
TEST(SimplexDifferential, WarmCutAppendsMatchColdCutGrowth) {
  const uint64_t base_seed = HarnessSeed();
  for (uint64_t salt : {0x11ull, 0x22ull, 0x33ull}) {
    Rng rng(base_seed ^ salt);
    const int n = 6;
    const std::vector<ConcreteStatistic> stats = RandomSimpleStats(rng, n, 8);
    for (LpBackendKind kind :
         {LpBackendKind::kDense, LpBackendKind::kRevised}) {
      EngineOptions cut;
      cut.full_lattice_max_n = 3;  // force cutting-plane mode
      cut.simplex.backend = kind;

      cut.simplex.cut_warm_start = CutWarmStart::kOn;
      auto warm_bound =
          FindBoundEngine("gamma")->Compile(StructureOf(n, stats), cut);
      cut.simplex.cut_warm_start = CutWarmStart::kOff;
      auto cold_bound =
          FindBoundEngine("gamma")->Compile(StructureOf(n, stats), cut);

      const std::string context = "seed " + std::to_string(base_seed ^ salt) +
                                  " backend " + LpBackendName(kind);
      // Two evaluations per driver: the compile-time values (cold growth
      // from the seed cuts) and a scaled redraw (typically more growth).
      std::vector<double> values = ValuesOf(stats);
      for (int round = 0; round < 2; ++round) {
        const BoundResult warm = warm_bound->Evaluate(values, false);
        const BoundResult cold = cold_bound->Evaluate(values, false);
        ASSERT_EQ(warm.status, cold.status) << context;
        if (cold.ok()) {
          EXPECT_NEAR(warm.log2_bound, cold.log2_bound,
                      1e-6 * std::max(1.0, std::abs(cold.log2_bound)))
              << context;
        }
        // The cold driver must never touch the append path; the warm
        // driver must have used it whenever it grew the pool.
        EXPECT_EQ(cold.lp_stats.row_appends, 0) << context;
        EXPECT_EQ(cold.lp_stats.warm_cut_rounds, 0) << context;
        if (round == 0 && warm.cut_rounds > 0) {
          EXPECT_GT(warm.lp_stats.warm_cut_rounds, 0) << context;
          EXPECT_GT(warm.lp_stats.row_appends, 0) << context;
        }
        for (double& v : values) v *= 1.4;
      }
    }
  }
}

// Forrest–Tomlin long-chain differential: with the update budget raised,
// one solve carries 100+ FT updates between refactorizations, and the
// factorization must stay accurate across the whole chain — both pricing
// rules, verified against the exact normal-polymatroid bound.
TEST(SimplexDifferential, ForrestTomlinCarriesLongUpdateChains) {
  Rng rng(HarnessSeed() ^ 0xfeedull);
  const int n = 7;
  const std::vector<ConcreteStatistic> stats = RandomSimpleStats(rng, n, 10);
  const BoundResult reference = NormalPolymatroidBound(n, stats).base;
  ASSERT_EQ(reference.status, LpStatus::kOptimal);

  for (PricingRule rule : {PricingRule::kDantzig, PricingRule::kDevex}) {
    EngineOptions cut;
    cut.full_lattice_max_n = 4;  // force cutting-plane mode
    cut.simplex.backend = LpBackendKind::kRevised;
    cut.simplex.pricing = rule;
    cut.simplex.max_basis_updates = 100000;  // budget >> any solve's pivots
    auto compiled =
        FindBoundEngine("gamma")->Compile(StructureOf(n, stats), cut);
    BoundResult result = compiled->Evaluate(ValuesOf(stats));
    const std::string context =
        std::string("long-chain ") + PricingRuleName(rule);
    ASSERT_EQ(result.status, LpStatus::kOptimal) << context;
    EXPECT_NEAR(result.log2_bound, reference.log2_bound,
                1e-6 * std::max(1.0, std::abs(reference.log2_bound)))
        << context;
    // The chains actually ran long: hundreds of FT updates total, and the
    // only refactorizations left are fill-budget or stability-forced ones
    // — far fewer than the update count (the 32-pivot eta cadence would
    // have refactorized ~once per 32 updates).
    EXPECT_GE(result.lp_stats.ft_updates, 100) << context;
    EXPECT_EQ(result.lp_stats.eta_updates, 0) << context;
    EXPECT_LT(result.lp_stats.refactorizations,
              result.lp_stats.ft_updates / 50 + 5)
        << context << " refac=" << result.lp_stats.refactorizations
        << " ft=" << result.lp_stats.ft_updates;
  }
}

// The acceptance bar from the roadmap: the revised backend compiles and
// evaluates a Γn *cutting-plane* bound at n = 8, where the dense tableau
// grinds (its per-pivot sweep is O(rows × 2^n) on every cut round). The
// statistics are simple, so the exact normal-polymatroid bound (Theorem
// 6.1) is an independent reference for the value.
TEST(SimplexDifferential, RevisedCompilesGammaCuttingPlaneAtN8) {
  Rng rng(HarnessSeed() ^ 0x5151ull);
  const int n = 8;
  const std::vector<ConcreteStatistic> stats = RandomSimpleStats(rng, n, 12);
  const BoundResult reference = NormalPolymatroidBound(n, stats).base;
  ASSERT_EQ(reference.status, LpStatus::kOptimal);

  EngineOptions cut;
  cut.full_lattice_max_n = 4;  // force cutting-plane mode at n = 8
  cut.simplex.backend = LpBackendKind::kRevised;
  const BoundEngine* gamma = FindBoundEngine("gamma");
  ASSERT_NE(gamma, nullptr);
  auto compiled = gamma->Compile(StructureOf(n, stats), cut);
  BoundResult result = compiled->Evaluate(ValuesOf(stats));
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_EQ(result.lp_backend, LpBackendKind::kRevised);
  EXPECT_NEAR(result.log2_bound, reference.log2_bound,
              1e-6 * std::max(1.0, std::abs(reference.log2_bound)));

  // Compile-once / evaluate-many: scaled values re-price against the
  // cached factorized basis without recompiling the cut set.
  std::vector<double> scaled = ValuesOf(stats);
  for (double& v : scaled) v *= 1.05;
  BoundResult rescored = compiled->Evaluate(scaled, /*want_h_opt=*/false);
  ASSERT_EQ(rescored.status, LpStatus::kOptimal);
  EXPECT_NEAR(rescored.log2_bound, reference.log2_bound * 1.05,
              1e-5 * std::max(1.0, std::abs(reference.log2_bound)));
}

}  // namespace
}  // namespace lpb
