#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "entropy/polymatroid.h"
#include "entropy/relation_entropy.h"
#include "entropy/set_function.h"
#include "entropy/shannon.h"
#include "relation/degree_sequence.h"
#include "util/random.h"

namespace lpb {
namespace {

TEST(SetFunction, StepFunctionDefinition) {
  // h_W(U) = 1 iff W ∩ U ≠ ∅ (Eq. 27).
  SetFunction h = SetFunction::Step(3, 0b011);
  EXPECT_EQ(h[0], 0.0);
  EXPECT_EQ(h[0b001], 1.0);
  EXPECT_EQ(h[0b100], 0.0);
  EXPECT_EQ(h[0b110], 1.0);
  EXPECT_EQ(h[0b111], 1.0);
}

TEST(SetFunction, StepFunctionsArePolymatroids) {
  for (VarSet w = 1; w < 16; ++w) {
    EXPECT_TRUE(IsPolymatroid(SetFunction::Step(4, w))) << "W=" << w;
  }
}

TEST(SetFunction, ModularFunction) {
  SetFunction h = SetFunction::Modular(3, {1.0, 2.0, 4.0});
  EXPECT_EQ(h[0b111], 7.0);
  EXPECT_EQ(h[0b101], 5.0);
  EXPECT_TRUE(IsModular(h));
  EXPECT_TRUE(IsPolymatroid(h));
}

TEST(SetFunction, StepFunctionNotModularUnlessSingleton) {
  EXPECT_TRUE(IsModular(SetFunction::Step(3, 0b001)));
  EXPECT_FALSE(IsModular(SetFunction::Step(3, 0b011)));
}

TEST(SetFunction, NormalCombinationMatchesManualSum) {
  std::vector<double> alpha(8, 0.0);
  alpha[0b011] = 2.0;
  alpha[0b100] = 1.5;
  SetFunction h = SetFunction::NormalCombination(3, alpha);
  SetFunction manual =
      2.0 * SetFunction::Step(3, 0b011) + 1.5 * SetFunction::Step(3, 0b100);
  EXPECT_LT(h.MaxDiff(manual), 1e-12);
  EXPECT_TRUE(IsPolymatroid(h));
}

TEST(SetFunction, ConditionalDefinition) {
  SetFunction h = SetFunction::Modular(2, {3.0, 4.0});
  EXPECT_NEAR(h.Conditional(0b10, 0b01), 4.0, 1e-12);  // h(Y|X)=h(XY)-h(X)
}

TEST(Polymatroid, ViolatingSubmodularityDetected) {
  SetFunction h(2);
  h[0b01] = 1.0;
  h[0b10] = 1.0;
  h[0b11] = 3.0;  // h(XY) > h(X) + h(Y) violates submodularity
  EXPECT_FALSE(IsPolymatroid(h));
}

TEST(Polymatroid, ViolatingMonotonicityDetected) {
  SetFunction h(2);
  h[0b01] = 2.0;
  h[0b10] = 2.0;
  h[0b11] = 1.0;  // h(XY) < h(X)
  EXPECT_FALSE(IsPolymatroid(h));
}

TEST(Polymatroid, ModularizeLemmaB3Properties) {
  // Random normal polymatroids: modularization must preserve h(X), lower
  // every h(U), and lower pairwise conditionals h(Xj|Xi) for earlier i.
  Rng rng(11);
  const int n = 4;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> alpha(1 << n, 0.0);
    for (VarSet w = 1; w < (1u << n); ++w) {
      if (rng.Bernoulli(0.4)) alpha[w] = rng.NextDouble() * 3.0;
    }
    SetFunction h = SetFunction::NormalCombination(n, alpha);
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);
    SetFunction hm = Modularize(h, order);
    EXPECT_TRUE(IsModular(hm));
    EXPECT_NEAR(hm[FullSet(n)], h[FullSet(n)], 1e-9);
    for (VarSet s = 1; s < (1u << n); ++s) {
      EXPECT_LE(hm[s], h[s] + 1e-9);
    }
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        EXPECT_LE(hm.Conditional(VarBit(j), VarBit(i)),
                  h.Conditional(VarBit(j), VarBit(i)) + 1e-9);
      }
    }
  }
}

TEST(Shannon, ElementalInequalityCount) {
  // n + C(n,2) * 2^(n-2).
  EXPECT_EQ(ElementalInequalities(2).size(), 2u + 1u);
  EXPECT_EQ(ElementalInequalities(3).size(), 3u + 3u * 2u);
  EXPECT_EQ(ElementalInequalities(4).size(), 4u + 6u * 4u);
}

TEST(Shannon, ElementalInequalitiesHoldForStepFunctions) {
  for (VarSet w = 1; w < 16; ++w) {
    SetFunction h = SetFunction::Step(4, w);
    for (const LinearForm& f : ElementalInequalities(4)) {
      EXPECT_GE(Evaluate(f, h), -1e-12);
    }
  }
}

TEST(Shannon, TriangleInequality10IsValid) {
  // (h(X)+2h(Y|X)) + (h(Y)+2h(Z|Y)) + (h(Z)+2h(X|Z)) >= 3h(XYZ)  (Eq. 10).
  const VarSet x = 1, y = 2, z = 4;
  LinearForm f = {
      {x, 1.0},     {x | y, 2.0}, {x, -2.0},     {y, 1.0},
      {y | z, 2.0}, {y, -2.0},    {z, 1.0},      {x | z, 2.0},
      {z, -2.0},    {x | y | z, -3.0},
  };
  EXPECT_TRUE(IsValidShannon(3, f));
}

TEST(Shannon, TriangleInequality11IsValid) {
  // (h(X)+3h(Y|X)) + (h(Z)+3h(Y|Z)) + 5h(XZ) >= 6h(XYZ)  (Eq. 11).
  const VarSet x = 1, y = 2, z = 4;
  LinearForm f = {
      {x, 1.0},  {x | y, 3.0}, {x, -3.0},     {z, 1.0},  {y | z, 3.0},
      {z, -3.0}, {x | z, 5.0}, {x | y | z, -6.0},
  };
  EXPECT_TRUE(IsValidShannon(3, f));
}

TEST(Shannon, InvalidInequalityRejected) {
  // h(X) + h(Y) >= 2h(XY) fails (take X,Y independent uniform bits).
  const VarSet x = 1, y = 2;
  LinearForm f = {{x, 1.0}, {y, 1.0}, {x | y, -2.0}};
  EXPECT_FALSE(IsValidShannon(2, f));
}

TEST(Shannon, AppendixBModularOnlyInequalityRejected) {
  // (2/3)(h(V)/2 + h(U|V)) + (2/3)(h(U)/2 + h(V|U)) >= h(UV) holds for all
  // modular functions but fails for the step function h_{UV} (Appendix B).
  const VarSet u = 1, v = 2;
  LinearForm f = {
      {v, 1.0 / 3.0}, {u | v, 2.0 / 3.0}, {v, -2.0 / 3.0},
      {u, 1.0 / 3.0}, {u | v, 2.0 / 3.0}, {u, -2.0 / 3.0},
      {u | v, -1.0},
  };
  // Check the step function counterexample directly:
  SetFunction huv = SetFunction::Step(2, 0b11);
  EXPECT_LT(Evaluate(f, huv), -1e-9);
  EXPECT_FALSE(IsValidShannon(2, f));
  // ... and that it does hold for both basic modular functions.
  EXPECT_GE(Evaluate(f, SetFunction::Step(2, 0b01)), -1e-12);
  EXPECT_GE(Evaluate(f, SetFunction::Step(2, 0b10)), -1e-12);
}

TEST(Shannon, ZhangYeungNotShannonButHoldsForSteps) {
  LinearForm zy = ZhangYeungForm(4, {0, 1, 2, 3});
  // Not a Shannon inequality: some polymatroid violates it.
  EXPECT_FALSE(IsValidShannon(4, zy));
  // But every step function (being entropic) satisfies it.
  for (VarSet w = 1; w < 16; ++w) {
    EXPECT_GE(Evaluate(zy, SetFunction::Step(4, w)), -1e-9) << "W=" << w;
  }
}

TEST(Shannon, ZhangYeungViolatedByAppendixD2Polymatroid) {
  // The polymatroid of Figure 2 (Appendix D.2): h(∅)=0, singletons 2,
  // pairs 3 except h(AB)=4 (AB is not a closed set: its closure is the top
  // element), triples and the full set 4. Variables A=0, B=1, X=2, Y=3.
  SetFunction h(4);
  const VarSet a = 1, b = 2;
  for (VarSet s = 1; s < 16; ++s) {
    switch (SetSize(s)) {
      case 1: h[s] = 2.0; break;
      case 2: h[s] = 3.0; break;
      default: h[s] = 4.0; break;
    }
  }
  h[a | b] = 4.0;
  EXPECT_TRUE(IsPolymatroid(h));
  LinearForm zy = ZhangYeungForm(4, {0, 1, 2, 3});
  // F(h) = -1 by direct evaluation: the ZY inequality fails on Γ4.
  EXPECT_NEAR(Evaluate(zy, h), -1.0, 1e-9);
}

TEST(RelationEntropy, UniformProductRelation) {
  // T = [0,4) x [0,2): h(X)=2, h(Y)=1, h(XY)=3, totally uniform.
  Relation t("T", {"X", "Y"});
  for (Value i = 0; i < 4; ++i) {
    for (Value j = 0; j < 2; ++j) t.AddRow({i, j});
  }
  SetFunction h = EntropyOfRelation(t);
  EXPECT_NEAR(h[0b01], 2.0, 1e-9);
  EXPECT_NEAR(h[0b10], 1.0, 1e-9);
  EXPECT_NEAR(h[0b11], 3.0, 1e-9);
  EXPECT_TRUE(IsTotallyUniform(t));
}

TEST(RelationEntropy, SkewedRelationNotTotallyUniform) {
  Relation t("T", {"X", "Y"});
  t.AddRow({0, 0});
  t.AddRow({0, 1});
  t.AddRow({1, 0});
  EXPECT_FALSE(IsTotallyUniform(t));
  SetFunction h = EntropyOfRelation(t);
  // Marginal on X: p = (2/3, 1/3).
  const double expected = -(2.0 / 3) * std::log2(2.0 / 3.0) -
                          (1.0 / 3) * std::log2(1.0 / 3.0);
  EXPECT_NEAR(h[0b01], expected, 1e-9);
  EXPECT_NEAR(h[0b11], std::log2(3.0), 1e-9);
}

TEST(RelationEntropy, EntropyOfRelationIsPolymatroid) {
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    Relation t("T", {"A", "B", "C"});
    for (int i = 0; i < 40; ++i) {
      t.AddRow({rng.Uniform(4), rng.Uniform(3), rng.Uniform(5)});
    }
    EXPECT_TRUE(IsPolymatroid(EntropyOfRelation(t), 1e-7));
  }
}

TEST(RelationEntropy, DiagonalRelation) {
  // T = {(k,k,k)}: every marginal is the same uniform variable.
  Relation t("T", {"X", "Y", "Z"});
  for (Value k = 0; k < 8; ++k) t.AddRow({k, k, k});
  SetFunction h = EntropyOfRelation(t);
  for (VarSet s = 1; s < 8; ++s) EXPECT_NEAR(h[s], 3.0, 1e-9);
  EXPECT_TRUE(IsTotallyUniform(t));
}

// Lemma 4.1 sanity: for the uniform distribution over a relation,
// (1/p) h(U) + h(V|U) <= log2 ||deg(V|U)||_p.
TEST(RelationEntropy, Lemma41HoldsOnRandomRelations) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    Relation t("T", {"X", "Y"});
    for (int i = 0; i < 30; ++i) t.AddRow({rng.Uniform(6), rng.Uniform(10)});
    t.Deduplicate();
    SetFunction h = EntropyOfRelation(t);
    for (double p : {0.5, 1.0, 2.0, 3.0, 7.0}) {
      const double lhs = h[0b01] / p + (h[0b11] - h[0b01]);
      const double rhs =
          ComputeDegreeSequence(t, {0}, {1}).Log2NormP(p);
      EXPECT_LE(lhs, rhs + 1e-9) << "p=" << p << " trial=" << trial;
    }
  }
}

}  // namespace
}  // namespace lpb
