#include <gtest/gtest.h>

#include <cmath>

#include "bounds/agm.h"
#include "bounds/engine.h"
#include "bounds/formulas.h"
#include "bounds/normal_engine.h"
#include "entropy/polymatroid.h"
#include "query/parser.h"
#include "relation/degree_sequence.h"
#include "util/random.h"

namespace lpb {
namespace {

ConcreteStatistic Stat(VarSet u, VarSet v, double p, double log_b) {
  ConcreteStatistic s;
  s.sigma = {u, v};
  s.p = p;
  s.log_b = log_b;
  return s;
}

// --- Polymatroid engine ----------------------------------------------------

TEST(Engine, SingleRelationCardinality) {
  // Q(X,Y) = R(X,Y), |R| <= 2^5: bound must be exactly 5.
  auto r = PolymatroidBound(2, {Stat(0, 0b11, 1.0, 5.0)});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.log2_bound, 5.0, 1e-7);
}

TEST(Engine, TriangleAgmFromCardinalities) {
  // Triangle with |R|=|S|=|T|=2^10: AGM bound 2^15.
  std::vector<ConcreteStatistic> stats = {
      Stat(0, 0b011, 1.0, 10.0),
      Stat(0, 0b110, 1.0, 10.0),
      Stat(0, 0b101, 1.0, 10.0),
  };
  auto r = PolymatroidBound(3, stats);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.log2_bound, 15.0, 1e-7);
}

TEST(Engine, TriangleMatchesAgmLp) {
  // Asymmetric sizes: engine (cardinalities only) == fractional edge cover.
  Query q = *ParseQuery("R(X,Y), S(Y,Z), T(Z,X)");
  std::vector<double> log_sizes = {8.0, 11.0, 13.0};
  AgmResult agm = AgmBound(q, log_sizes);
  std::vector<ConcreteStatistic> stats = {
      Stat(0b011, 0, 1.0, 8.0), Stat(0b110, 0, 1.0, 11.0),
      Stat(0b101, 0, 1.0, 13.0)};
  for (auto& s : stats) {
    s.sigma = {0, s.sigma.u};  // cardinality form (V|∅)
  }
  auto r = PolymatroidBound(3, stats);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.log2_bound, agm.log2_bound, 1e-6);
}

TEST(Engine, SingleJoinL2EqualsCauchySchwarz) {
  // Q = R(X,Y) ∧ S(Y,Z) with only the two ℓ2 statistics: the polymatroid
  // bound equals ||deg_R(X|Y)||_2 · ||deg_S(Z|Y)||_2 (Eq. 18), exactly.
  const double b1 = 3.7, b2 = 2.2;
  std::vector<ConcreteStatistic> stats = {
      Stat(0b010, 0b001, 2.0, b1),  // deg_R(X|Y), vars X=0,Y=1,Z=2
      Stat(0b010, 0b100, 2.0, b2),
  };
  auto r = PolymatroidBound(3, stats);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.log2_bound, JoinL2Log2(b1, b2), 1e-7);
}

TEST(Engine, TriangleSymmetricL2) {
  // Symmetric ℓ2 statistics l on all three conditionals: bound = 2l (Eq. 4).
  const double l = 4.25;
  std::vector<ConcreteStatistic> stats = {
      Stat(0b001, 0b010, 2.0, l),   // deg_R(Y|X)
      Stat(0b010, 0b100, 2.0, l),   // deg_S(Z|Y)
      Stat(0b100, 0b001, 2.0, l),   // deg_T(X|Z)
  };
  auto r = PolymatroidBound(3, stats);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.log2_bound, TriangleL2Log2(l, l, l), 1e-7);
}

TEST(Engine, BoundNeverExceedsClosedForms) {
  // With a rich stat set, the LP optimum is <= every hand-derived formula.
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const double log_r = 5.0 + 5.0 * rng.NextDouble();
    const double l2_r = 0.55 * log_r, l2_s = 0.6 * log_r, l2_t = 0.5 * log_r;
    const double inf_s = 0.3 * log_r;
    std::vector<ConcreteStatistic> stats = {
        Stat(0, 0b011, 1.0, log_r),       Stat(0, 0b110, 1.0, log_r),
        Stat(0, 0b101, 1.0, log_r),       Stat(0b001, 0b010, 2.0, l2_r),
        Stat(0b010, 0b100, 2.0, l2_s),    Stat(0b100, 0b001, 2.0, l2_t),
        Stat(0b010, 0b100, kInfNorm, inf_s),
    };
    auto r = PolymatroidBound(3, stats);
    ASSERT_TRUE(r.ok());
    EXPECT_LE(r.log2_bound,
              TriangleAgmLog2(log_r, log_r, log_r) + 1e-7);
    EXPECT_LE(r.log2_bound, TrianglePandaLog2(log_r, inf_s) + 1e-7);
    EXPECT_LE(r.log2_bound, TriangleL2Log2(l2_r, l2_s, l2_t) + 1e-7);
  }
}

TEST(Engine, DualWeightsCertifyBound) {
  std::vector<ConcreteStatistic> stats = {
      Stat(0b001, 0b010, 2.0, 4.0),
      Stat(0b010, 0b100, 2.0, 6.0),
      Stat(0b100, 0b001, 2.0, 5.0),
      Stat(0, 0b011, 1.0, 7.0),
  };
  auto r = PolymatroidBound(3, stats);
  ASSERT_TRUE(r.ok());
  double certified = 0.0;
  for (size_t i = 0; i < stats.size(); ++i) {
    EXPECT_GE(r.weights[i], -1e-9);
    certified += r.weights[i] * stats[i].log_b;
  }
  EXPECT_NEAR(certified, r.log2_bound, 1e-6);
}

TEST(Engine, OptimalVectorIsFeasiblePolymatroid) {
  std::vector<ConcreteStatistic> stats = {
      Stat(0b001, 0b010, 3.0, 4.0),
      Stat(0b010, 0b100, 2.0, 6.0),
      Stat(0, 0b101, 1.0, 7.0),
  };
  auto r = PolymatroidBound(3, stats);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(IsPolymatroid(r.h_opt, 1e-6));
  for (const auto& s : stats) {
    EXPECT_LE(Evaluate(s.Lhs(), r.h_opt), s.log_b + 1e-6);
  }
  EXPECT_NEAR(r.h_opt[FullSet(3)], r.log2_bound, 1e-7);
}

TEST(Engine, UnboundedWhenVariableUncovered) {
  // No statistic mentions variable Z: h(Z) is unconstrained.
  auto r = PolymatroidBound(3, {Stat(0, 0b011, 1.0, 5.0)});
  EXPECT_TRUE(r.unbounded());
  EXPECT_TRUE(std::isinf(r.log2_bound));
}

TEST(Engine, InfinityOnlyStatsUnbounded) {
  // Max-degree statistics alone never bound the output (no ℓ1 anchor).
  std::vector<ConcreteStatistic> stats = {
      Stat(0b001, 0b010, kInfNorm, 2.0),
      Stat(0b010, 0b100, kInfNorm, 2.0),
      Stat(0b100, 0b001, kInfNorm, 2.0),
  };
  auto r = PolymatroidBound(3, stats);
  EXPECT_TRUE(r.unbounded());
}

TEST(Engine, MoreStatisticsNeverWorsenBound) {
  std::vector<ConcreteStatistic> base = {
      Stat(0, 0b011, 1.0, 9.0), Stat(0, 0b110, 1.0, 9.0),
      Stat(0, 0b101, 1.0, 9.0)};
  auto r1 = PolymatroidBound(3, base);
  std::vector<ConcreteStatistic> more = base;
  more.push_back(Stat(0b001, 0b010, 2.0, 5.0));
  auto r2 = PolymatroidBound(3, more);
  more.push_back(Stat(0b010, 0b100, kInfNorm, 2.0));
  auto r3 = PolymatroidBound(3, more);
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
  EXPECT_LE(r2.log2_bound, r1.log2_bound + 1e-7);
  EXPECT_LE(r3.log2_bound, r2.log2_bound + 1e-7);
}

TEST(Engine, TighterStatisticsTightenBound) {
  std::vector<ConcreteStatistic> loose = {
      Stat(0, 0b011, 1.0, 10.0), Stat(0b010, 0b100, kInfNorm, 5.0)};
  std::vector<ConcreteStatistic> tight = {
      Stat(0, 0b011, 1.0, 10.0), Stat(0b010, 0b100, kInfNorm, 2.0)};
  auto rl = PolymatroidBound(3, loose);
  auto rt = PolymatroidBound(3, tight);
  ASSERT_TRUE(rl.ok() && rt.ok());
  EXPECT_NEAR(rl.log2_bound, 15.0, 1e-7);  // PANDA form |R|·D
  EXPECT_NEAR(rt.log2_bound, 12.0, 1e-7);
}

TEST(Engine, Example67PolymatroidBoundIsB) {
  // Example 6.7: triangle + unary atoms, ℓ4 statistics and unary
  // cardinalities all equal to b: the bound is exactly b.
  const double b = 6.0;
  std::vector<ConcreteStatistic> stats = {
      Stat(0, 0b001, 1.0, b),       Stat(0, 0b010, 1.0, b),
      Stat(0, 0b100, 1.0, b),       Stat(0b001, 0b010, 4.0, b / 4.0),
      Stat(0b010, 0b100, 4.0, b / 4.0), Stat(0b100, 0b001, 4.0, b / 4.0),
  };
  // Log-statistics of (40): h(X) <= b and h(X) + 4h(Y|X) <= b, i.e. the ℓ4
  // statement ||deg||_4 <= 2^{b/4} == ||deg||_4^4 <= 2^b.
  auto r = PolymatroidBound(3, stats);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.log2_bound, b, 1e-6);
}

TEST(Engine, CuttingPlaneMatchesFullLattice) {
  Rng rng(47);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 4;
    std::vector<ConcreteStatistic> stats;
    // Random chain-ish simple statistics covering all variables.
    for (int i = 0; i < n; ++i) {
      const VarSet u = VarBit(i), v = VarBit((i + 1) % n);
      stats.push_back(Stat(0, u | v, 1.0, 4.0 + 4.0 * rng.NextDouble()));
      stats.push_back(
          Stat(u, v, 1.0 + rng.Uniform(4), 1.0 + 3.0 * rng.NextDouble()));
    }
    EngineOptions full;
    full.full_lattice_max_n = 10;
    EngineOptions cuts;
    cuts.full_lattice_max_n = 1;  // force cutting-plane mode
    auto rf = PolymatroidBound(n, stats, full);
    auto rc = PolymatroidBound(n, stats, cuts);
    ASSERT_TRUE(rf.ok());
    ASSERT_TRUE(rc.ok());
    EXPECT_NEAR(rf.log2_bound, rc.log2_bound, 1e-5) << "trial " << trial;
    // cut_rounds may legitimately be 0: the seed cuts can already suffice.
    EXPECT_GE(rc.cut_rounds, 0);
  }
}

TEST(Engine, CuttingPlaneDetectsUnbounded) {
  EngineOptions cuts;
  cuts.full_lattice_max_n = 1;
  auto r = PolymatroidBound(3, {Stat(0, 0b011, 1.0, 5.0)}, cuts);
  EXPECT_TRUE(r.unbounded());
}

TEST(Engine, FiltersSplitStatisticClasses) {
  std::vector<ConcreteStatistic> stats = {
      Stat(0, 0b011, 1.0, 9.0),          // cardinality
      Stat(0b001, 0b010, 1.0, 8.0),      // ℓ1 on a conditional (projection)
      Stat(0b001, 0b010, 2.0, 5.0),      // ℓ2
      Stat(0b010, 0b100, kInfNorm, 2.0), // ℓ∞
  };
  EXPECT_EQ(FilterAgmStatistics(stats).size(), 1u);
  EXPECT_EQ(FilterPandaStatistics(stats).size(), 3u);
}

TEST(Engine, SingletonRelationsGiveZeroBound) {
  // |R| = |S| = 1 (log_b = 0): the join has at most one tuple.
  std::vector<ConcreteStatistic> stats = {
      Stat(0, 0b011, 1.0, 0.0), Stat(0, 0b110, 1.0, 0.0)};
  auto r = PolymatroidBound(3, stats);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.log2_bound, 0.0, 1e-8);
}

TEST(Engine, FractionalNormIndex) {
  // p = 1.5 is legal: (2/3)h(Y) + h(X|Y) <= b. With symmetric statistics
  // the bound is finite and between the p=1 and p=2 bounds.
  const double b = 5.0;
  auto mk = [&](double p) {
    return std::vector<ConcreteStatistic>{
        Stat(0b010, 0b001, p, b), Stat(0b010, 0b100, p, b)};
  };
  auto r15 = PolymatroidBound(3, mk(1.5));
  auto r2 = PolymatroidBound(3, mk(2.0));
  ASSERT_TRUE(r15.ok() && r2.ok());
  // Same log_b at a smaller p is a weaker constraint set: bound larger.
  EXPECT_GE(r15.log2_bound, r2.log2_bound - 1e-7);
}

TEST(Engine, SubUnitCardinalityIsInfeasible) {
  // A statistic asserting |Π_XY(R)| <= 1/2 contradicts h >= 0: entropies
  // of nonempty relations are nonnegative. The engine reports infeasible
  // (the "bound" is that the output must be empty).
  std::vector<ConcreteStatistic> stats = {
      Stat(0, 0b011, 1.0, -1.0),
      Stat(0, 0b110, 1.0, 3.0),
  };
  auto r = PolymatroidBound(3, stats);
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
}

TEST(Engine, GuardedTernaryConditionalNonSimple) {
  // A non-simple statistic (|U| = 2) exercises the Γn path that the normal
  // engine cannot take: deg(Z|XY) over a ternary atom plus a cardinality.
  std::vector<ConcreteStatistic> stats = {
      Stat(0b011, 0b100, 2.0, 2.0),  // (Z | XY), l2
      Stat(0, 0b011, 1.0, 6.0),      // |Pi_XY|
  };
  auto r = PolymatroidBound(3, stats);
  ASSERT_TRUE(r.ok());
  // h(XYZ) <= 2 + h(XY)/2 and monotonicity h(XYZ) >= h(XY) force
  // h(XY) <= 4, so the optimum is h(XYZ) = 4 (not the naive 2 + 6/2).
  EXPECT_NEAR(r.log2_bound, 4.0, 1e-6);
}

// --- Normal engine and Theorem 6.1 ----------------------------------------

TEST(NormalEngine, MatchesPolymatroidOnSimpleStats) {
  // Theorem 6.1: for simple statistics the Nn and Γn bounds coincide.
  Rng rng(53);
  for (int trial = 0; trial < 15; ++trial) {
    const int n = 3 + static_cast<int>(rng.Uniform(2));
    std::vector<ConcreteStatistic> stats;
    for (int i = 0; i < n; ++i) {
      const VarSet u = VarBit(i);
      const VarSet v = VarBit(static_cast<int>(rng.Uniform(n)));
      if (u == v) continue;
      double p = std::vector<double>{1.0, 2.0, 3.0, kInfNorm}[rng.Uniform(4)];
      stats.push_back(Stat(u, v, p, 1.0 + 5.0 * rng.NextDouble()));
      stats.push_back(Stat(0, u | v, 1.0, 4.0 + 4.0 * rng.NextDouble()));
    }
    if (stats.empty()) continue;
    auto rn = NormalPolymatroidBound(n, stats);
    auto rp = PolymatroidBound(n, stats);
    ASSERT_EQ(rn.base.status, rp.status) << "trial " << trial;
    if (!rp.ok()) continue;
    EXPECT_NEAR(rn.base.log2_bound, rp.log2_bound, 1e-5) << "trial " << trial;
  }
}

TEST(NormalEngine, AlphaReconstructsOptimum) {
  std::vector<ConcreteStatistic> stats = {
      Stat(0, 0b011, 1.0, 8.0), Stat(0b010, 0b100, kInfNorm, 3.0)};
  auto r = NormalPolymatroidBound(3, stats);
  ASSERT_TRUE(r.base.ok());
  SetFunction h = SetFunction::NormalCombination(3, r.alpha);
  EXPECT_LT(h.MaxDiff(r.base.h_opt), 1e-9);
  EXPECT_NEAR(h[FullSet(3)], r.base.log2_bound, 1e-7);
  for (double a : r.alpha) EXPECT_GE(a, -1e-9);
}

TEST(NormalEngine, NonSimpleUnderestimates) {
  // For a NON-simple statistic the Nn optimum can drop below the Γn bound;
  // it must never exceed it.
  std::vector<ConcreteStatistic> stats = {
      Stat(0b011, 0b100, 2.0, 3.0),  // (Z | XY): not simple
      Stat(0, 0b011, 1.0, 5.0),
  };
  auto rn = NormalPolymatroidBound(3, stats, /*require_simple=*/false);
  auto rp = PolymatroidBound(3, stats);
  ASSERT_TRUE(rn.base.ok());
  ASSERT_TRUE(rp.ok());
  EXPECT_LE(rn.base.log2_bound, rp.log2_bound + 1e-7);
}

TEST(NormalEngine, DispatcherPicksNormalForSimple) {
  std::vector<ConcreteStatistic> stats = {
      Stat(0, 0b011, 1.0, 8.0), Stat(0b010, 0b100, 2.0, 3.0)};
  auto r = LpNormBound(3, stats);
  auto rn = NormalPolymatroidBound(3, stats);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.log2_bound, rn.base.log2_bound, 1e-9);
}

// --- PANDA / AGM specializations on the cycle (Example 2.3 / C.5) ---------

TEST(Engine, CycleBoundsMatchExample23) {
  // (p+1)-cycle with identical relations: |R| = N, ||deg||_q^q = N for
  // q <= p, ||deg||_∞ = N^{1/(p+1)}. The {1,...,p,∞}-bound is
  // N^{(p+1)/(p+1)} · ... = L^{(p+1)p/(p+1)} ... per C.5: bound (21) with
  // q = p gives ((p+1)/(p+1))·... = log-value (k·q/(q+1))·(logN/q) where
  // k = p+1 atoms: total = N^{(p+1)/(p+1)} = ... verified numerically below.
  for (int p = 2; p <= 4; ++p) {
    const int k = p + 1;  // cycle length and variable count
    const double log_n = 12.0;
    std::vector<ConcreteStatistic> stats;
    for (int i = 0; i < k; ++i) {
      const VarSet u = VarBit(i), v = VarBit((i + 1) % k);
      stats.push_back(Stat(0, u | v, 1.0, log_n));
      for (int q = 2; q <= p; ++q) {
        stats.push_back(Stat(u, v, q, log_n / q));  // ||deg||_q^q = N
      }
      stats.push_back(Stat(u, v, kInfNorm, log_n / k));
    }
    auto r = PolymatroidBound(k, stats);
    ASSERT_TRUE(r.ok());
    // Bound (21) with q = p: each factor ||deg||_p^{p/(p+1)} = N^{1/(p+1)}
    // to the p/(p+1)... total log = k * (p/(p+1)) * (log_n / p).
    const double eq21 = k * (static_cast<double>(p) / (p + 1)) * (log_n / p);
    EXPECT_LE(r.log2_bound, eq21 + 1e-6) << "p=" << p;
    // AGM would be k/2 * log_n; PANDA = log_n + (k-2) log_n/k; both worse.
    EXPECT_LT(r.log2_bound, CycleAgmLog2(log_n, k) - 0.1);
    EXPECT_LT(r.log2_bound,
              CyclePandaLog2(log_n, log_n / k, k) - 0.1);
  }
}

}  // namespace
}  // namespace lpb
