#include <gtest/gtest.h>

#include <cmath>

#include "bounds/formulas.h"
#include "relation/degree_sequence.h"

namespace lpb {
namespace {

TEST(Formulas, TriangleAgmIsGeometricMean) {
  EXPECT_NEAR(TriangleAgmLog2(10, 10, 10), 15.0, 1e-12);
  EXPECT_NEAR(TriangleAgmLog2(8, 12, 10), 15.0, 1e-12);
}

TEST(Formulas, TrianglePanda) {
  EXPECT_NEAR(TrianglePandaLog2(10.0, 3.0), 13.0, 1e-12);
}

TEST(Formulas, TriangleL2) {
  EXPECT_NEAR(TriangleL2Log2(6.0, 6.0, 6.0), 12.0, 1e-12);
}

TEST(Formulas, TriangleL3) {
  // ( ||..||_3^3 ||..||_3^3 |T|^5 )^{1/6}: logs (3a + 3b + 5c)/6.
  EXPECT_NEAR(TriangleL3Log2(4.0, 4.0, 6.0), (12.0 + 12.0 + 30.0) / 6.0,
              1e-12);
}

TEST(Formulas, JoinPandaTakesMin) {
  EXPECT_NEAR(JoinPandaLog2(10, 12, 3, 1), 11.0, 1e-12);
  EXPECT_NEAR(JoinPandaLog2(10, 12, 1, 5), 13.0, 1e-12);
}

TEST(Formulas, JoinHolderSpecializesToL2AndPanda) {
  const double lr = 4.0, ls = 5.0, lm = 6.0;
  // p = q = 2 drops the M term: equals the Cauchy-Schwarz bound.
  EXPECT_NEAR(JoinHolderLog2(lr, ls, lm, 2, 2), JoinL2Log2(lr, ls), 1e-12);
  // p = 1, q = ∞: |R| · ||deg_S||_∞ (PANDA one-sided form).
  EXPECT_NEAR(JoinHolderLog2(lr, ls, lm, 1.0, 1e18), lr + ls, 1e-9);
}

TEST(Formulas, JoinHolderOptimalOnConjugateLine) {
  // Along fixed data, (p,q) with 1/p + 1/q = 1 dominates looser pairs:
  // compare (2,2) against (3,3) on norms of a concrete sequence.
  DegreeSequence d({4, 2, 1, 1});
  const double m = std::log2(static_cast<double>(d.size()));
  const double b22 =
      JoinHolderLog2(d.Log2NormP(2), d.Log2NormP(2), m, 2, 2);
  const double b33 =
      JoinHolderLog2(d.Log2NormP(3), d.Log2NormP(3), m, 3, 3);
  EXPECT_LE(b22, b33 + 1e-9);
}

TEST(Formulas, JoinEq19MatchesAppendixC3Specialization) {
  // p=3, q=2: ||deg_R||_3 · |S|^{1/3} · ||deg_S||_2^{2/3}  (Eq. 50).
  const double lr3 = 2.0, ls2 = 4.5, ls = 9.0;
  EXPECT_NEAR(JoinEq19Log2(lr3, ls2, ls, 3, 2),
              lr3 + (2.0 / 3.0) * ls2 + (1.0 / 3.0) * ls, 1e-12);
}

TEST(Formulas, ChainBoundPathLength3ReducesToKnownForm) {
  // n=4 variables, 3 atoms, p=2: |Q|^2 <= ||deg_R2(X1|X2)||_2^2 ·
  // ||deg_R3(X4|X3)||_2^2 (middle product empty, |R1|^0).
  const double l2_back = 3.0, l2_last = 4.0;
  EXPECT_NEAR(ChainLog2(7.0, l2_back, l2_last, {}, 2.0), l2_back + l2_last,
              1e-12);
}

TEST(Formulas, ChainBoundGeneralP) {
  // p=3, one middle factor with ||deg||_2 = m: log = ( (p-2)r1 + 2b + 2m +
  // 3l ) / 3.
  EXPECT_NEAR(ChainLog2(6.0, 3.0, 4.0, {5.0}, 3.0),
              (1.0 * 6.0 + 2.0 * 3.0 + 2.0 * 5.0 + 3.0 * 4.0) / 3.0, 1e-12);
}

TEST(Formulas, CycleBoundEquation21) {
  // q=2, triangle: Π ||deg||_2^{2/3}: log = (2/3) Σ.
  EXPECT_NEAR(CycleLog2({6.0, 6.0, 6.0}, 2.0), 12.0, 1e-12);
  // q=3, 4-cycle.
  EXPECT_NEAR(CycleLog2({4.0, 4.0, 4.0, 4.0}, 3.0), 12.0, 1e-12);
}

TEST(Formulas, CycleBaselines) {
  EXPECT_NEAR(CycleAgmLog2(10.0, 5), 25.0, 1e-12);
  EXPECT_NEAR(CyclePandaLog2(10.0, 2.0, 5), 16.0, 1e-12);
}

TEST(Formulas, CycleBoundBeatsBaselinesOnAlphaBetaInstance) {
  // Example 2.3 instance: |R| = N, ||deg||_q^q = N, ||deg||_∞ = N^{1/(p+1)}.
  const double log_n = 20.0;
  for (int p = 2; p <= 6; ++p) {
    const int k = p + 1;
    std::vector<double> logq(k, log_n / p);  // log ||deg||_p = logN/p
    const double ours = CycleLog2(logq, p);
    // k·(logN/p)·p/(p+1) = logN: the bound is Θ(N), asymptotically tight.
    EXPECT_NEAR(ours, log_n, 1e-9);
    EXPECT_LT(ours, CycleAgmLog2(log_n, k));
    EXPECT_LT(ours, CyclePandaLog2(log_n, log_n / k, k));
  }
}

TEST(Formulas, LoomisWhitney4) {
  EXPECT_NEAR(LoomisWhitney4Log2(5.0, 12.0, 6.0, 10.0),
              (10.0 + 12.0 + 12.0 + 10.0) / 4.0, 1e-12);
}

}  // namespace
}  // namespace lpb
