// Batch evaluation must be indistinguishable from the scalar sequence.
//
// EvaluateBatch / ResolveWithRhsBatch / EstimateLog2Batch all promise the
// same contract: results identical to calling the scalar entry point once
// per column, with the cached basis evolving across the batch exactly as
// it would across scalar calls. These tests hold every layer to it
// *bitwise* — two identically compiled bounds, one driven scalar and one
// batched, must produce equal doubles, equal eval paths, and equal
// counters on every engine and both LP backends. The one deliberate
// exception is the Γn cutting-plane mode, whose batch shares a cut pool
// and so promises tolerance parity on the converged bounds instead (see
// CuttingPlaneModeSharesCutPoolWithScalarParity).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "bounds/bound_engine.h"
#include "bounds/engine.h"
#include "bounds/normal_engine.h"
#include "datagen/job_gen.h"
#include "estimator/advisor.h"
#include "lp/lp_problem.h"
#include "lp/tableau.h"
#include "query/parser.h"
#include "relation/degree_sequence.h"
#include "util/random.h"
#include "util/zipf.h"

namespace lpb {
namespace {

ConcreteStatistic Stat(VarSet u, VarSet v, double p, double log_b) {
  ConcreteStatistic s;
  s.sigma = {u, v};
  s.p = p;
  s.log_b = log_b;
  return s;
}

// Simple statistics (usable by every engine including "normal").
std::vector<ConcreteStatistic> SimpleStats() {
  return {Stat(0, 0b011, 1.0, 10.0),        Stat(0, 0b110, 1.0, 9.0),
          Stat(0, 0b101, 1.0, 11.0),        Stat(0b001, 0b010, 2.0, 6.0),
          Stat(0b010, 0b100, 2.0, 5.5),     Stat(0b100, 0b001, kInfNorm, 3.0)};
}

// Mixed statistics with a non-simple shape (gamma/auto/agm/panda only).
std::vector<ConcreteStatistic> NonSimpleStats() {
  auto stats = SimpleStats();
  stats.push_back(Stat(0b011, 0b100, 2.0, 4.0));
  return stats;
}

// A batch exercising every evaluation path: the base values (witness),
// gentle scalings (witness or warm), drastic redraws (warm or cold), and
// a return to base (witness again).
std::vector<std::vector<double>> JitteredBatch(
    const std::vector<ConcreteStatistic>& stats, uint64_t seed) {
  Rng rng(seed);
  const std::vector<double> base = ValuesOf(stats);
  std::vector<std::vector<double>> batch;
  batch.push_back(base);
  for (int round = 0; round < 6; ++round) {
    std::vector<double> values = base;
    for (double& v : values) {
      v *= round % 2 == 0 ? 0.9 + 0.2 * rng.NextDouble()
                          : 0.25 + 1.5 * rng.NextDouble();
    }
    batch.push_back(std::move(values));
  }
  batch.push_back(base);
  return batch;
}

void ExpectBitwiseEqual(const BoundResult& a, const BoundResult& b,
                        const std::string& context) {
  EXPECT_EQ(a.status, b.status) << context;
  EXPECT_EQ(a.log2_bound, b.log2_bound) << context;
  EXPECT_EQ(a.eval_path, b.eval_path) << context;
  EXPECT_EQ(a.lp_backend, b.lp_backend) << context;
  EXPECT_EQ(a.lp_iterations, b.lp_iterations) << context;
  EXPECT_EQ(a.cut_rounds, b.cut_rounds) << context;
  // The per-call solver statistics are part of the parity contract too:
  // a batch column must do exactly the pivots, updates, and
  // refactorizations its scalar twin does.
  EXPECT_EQ(a.lp_pricing, b.lp_pricing) << context;
  EXPECT_EQ(a.lp_stats.phase1_pivots, b.lp_stats.phase1_pivots) << context;
  EXPECT_EQ(a.lp_stats.phase2_pivots, b.lp_stats.phase2_pivots) << context;
  EXPECT_EQ(a.lp_stats.dual_pivots, b.lp_stats.dual_pivots) << context;
  EXPECT_EQ(a.lp_stats.refactorizations, b.lp_stats.refactorizations)
      << context;
  EXPECT_EQ(a.lp_stats.ft_updates, b.lp_stats.ft_updates) << context;
  EXPECT_EQ(a.lp_stats.eta_updates, b.lp_stats.eta_updates) << context;
  EXPECT_EQ(a.lp_stats.rejected_updates, b.lp_stats.rejected_updates)
      << context;
  EXPECT_EQ(a.lp_stats.devex_resets, b.lp_stats.devex_resets) << context;
  // Kernel-level parity: a batch column must invoke exactly the kernel
  // calls its scalar twin does (cycles are timing-dependent and excluded).
  for (int k = 0; k < kNumLpKernels; ++k) {
    EXPECT_EQ(a.lp_stats.kernel_calls[k], b.lp_stats.kernel_calls[k])
        << context << " kernel " << LpKernelName(static_cast<LpKernelId>(k));
  }
  ASSERT_EQ(a.weights.size(), b.weights.size()) << context;
  for (size_t i = 0; i < a.weights.size(); ++i) {
    EXPECT_EQ(a.weights[i], b.weights[i]) << context << " weight " << i;
  }
  ASSERT_EQ(a.h_opt.size(), b.h_opt.size()) << context;
  for (VarSet s = 0; s < a.h_opt.size(); ++s) {
    EXPECT_EQ(a.h_opt[s], b.h_opt[s]) << context << " h_opt " << s;
  }
}

// Compiles `stats`' structure twice with identical options and drives one
// copy scalar, one batched; every per-column result and the final counters
// must agree bitwise. `pricing` pins the revised backend's pricing rule;
// `max_basis_updates` = 1 forces a refactorization after every pivot, the
// worst case for mid-batch factorization churn.
void CheckEngineBatchParity(const std::string& engine_name,
                            const std::vector<ConcreteStatistic>& stats,
                            int n, LpBackendKind backend, bool want_h_opt,
                            PricingRule pricing = PricingRule::kDefault,
                            int max_basis_updates = 0,
                            SimdMode simd = SimdMode::kDefault) {
  const BoundEngine* engine = FindBoundEngine(engine_name);
  ASSERT_NE(engine, nullptr);
  EngineOptions options;
  options.simplex.backend = backend;
  options.simplex.pricing = pricing;
  options.simplex.max_basis_updates = max_basis_updates;
  options.simplex.simd = simd;
  const BoundStructure structure = StructureOf(n, stats);
  ASSERT_TRUE(engine->Supports(structure));
  auto scalar_bound = engine->Compile(structure, options);
  auto batch_bound = engine->Compile(structure, options);

  const auto batch = JitteredBatch(stats, 7 + n);
  std::vector<BoundResult> scalar_results;
  scalar_results.reserve(batch.size());
  for (const std::vector<double>& values : batch) {
    scalar_results.push_back(scalar_bound->Evaluate(values, want_h_opt));
  }
  const std::vector<BoundResult> batch_results =
      batch_bound->EvaluateBatch(batch, want_h_opt);

  ASSERT_EQ(batch_results.size(), scalar_results.size());
  const std::string context = engine_name + "/" + LpBackendName(backend) +
                              "/" + PricingRuleName(pricing) +
                              (want_h_opt ? "/h_opt" : "");
  for (size_t c = 0; c < batch.size(); ++c) {
    ExpectBitwiseEqual(batch_results[c], scalar_results[c],
                       context + " column " + std::to_string(c));
  }
  EXPECT_EQ(batch_bound->counters().evaluations,
            scalar_bound->counters().evaluations) << context;
  EXPECT_EQ(batch_bound->counters().witness_hits,
            scalar_bound->counters().witness_hits) << context;
  EXPECT_EQ(batch_bound->counters().warm_resolves,
            scalar_bound->counters().warm_resolves) << context;
  EXPECT_EQ(batch_bound->counters().cold_solves,
            scalar_bound->counters().cold_solves) << context;
}

TEST(EvaluateBatch, MatchesScalarOnAllEnginesAndBackends) {
  for (LpBackendKind backend : {LpBackendKind::kDense, LpBackendKind::kRevised}) {
    for (const char* name : {"gamma", "normal", "auto", "agm", "panda"}) {
      CheckEngineBatchParity(name, SimpleStats(), 3, backend,
                             /*want_h_opt=*/false);
    }
    for (const char* name : {"gamma", "auto", "agm", "panda"}) {
      CheckEngineBatchParity(name, NonSimpleStats(), 3, backend,
                             /*want_h_opt=*/false);
    }
    // h_opt materialization must batch identically too.
    CheckEngineBatchParity("normal", SimpleStats(), 3, backend,
                           /*want_h_opt=*/true);
    CheckEngineBatchParity("gamma", NonSimpleStats(), 3, backend,
                           /*want_h_opt=*/true);
  }
}

TEST(EvaluateBatch, MatchesScalarUnderDevexPricing) {
  // The PR-4 bitwise batch≡scalar contract must survive the new pricing
  // rule: the same suite with Devex pinned as the active rule.
  for (LpBackendKind backend :
       {LpBackendKind::kDense, LpBackendKind::kRevised}) {
    for (const char* name : {"gamma", "normal", "auto", "agm", "panda"}) {
      CheckEngineBatchParity(name, SimpleStats(), 3, backend,
                             /*want_h_opt=*/false, PricingRule::kDevex);
    }
    CheckEngineBatchParity("gamma", NonSimpleStats(), 3, backend,
                           /*want_h_opt=*/true, PricingRule::kDevex);
  }
}

TEST(EvaluateBatch, MidBatchRefactorizeKeepsParity) {
  // Regression for the Forrest–Tomlin fallback: max_basis_updates = 1
  // trips NeedsRefactorize after every pivot, so any warm or cold column
  // inside a batch refactorizes mid-block — which must not desynchronize
  // the batch from the scalar sequence (the B⁻¹ memo keys on
  // factorization identity and must invalidate on every update).
  for (PricingRule pricing : {PricingRule::kDantzig, PricingRule::kDevex}) {
    CheckEngineBatchParity("gamma", NonSimpleStats(), 3,
                           LpBackendKind::kRevised, /*want_h_opt=*/false,
                           pricing, /*max_basis_updates=*/1);
    CheckEngineBatchParity("normal", SimpleStats(), 3,
                           LpBackendKind::kRevised, /*want_h_opt=*/false,
                           pricing, /*max_basis_updates=*/1);
  }
}

TEST(EvaluateBatch, MatchesScalarUnderForcedSimdModes) {
  // The batch≡scalar contract must hold with the SIMD dispatch pinned to
  // either table — the kernels are shared state between the two paths,
  // and the kernel_calls comparison inside ExpectBitwiseEqual also pins
  // the per-column kernel schedule under both modes.
  for (SimdMode simd : {SimdMode::kAuto, SimdMode::kScalar}) {
    for (LpBackendKind backend :
         {LpBackendKind::kDense, LpBackendKind::kRevised}) {
      for (const char* name : {"gamma", "normal", "auto"}) {
        CheckEngineBatchParity(name, SimpleStats(), 3, backend,
                               /*want_h_opt=*/false, PricingRule::kDefault,
                               /*max_basis_updates=*/0, simd);
      }
      CheckEngineBatchParity("gamma", NonSimpleStats(), 3, backend,
                             /*want_h_opt=*/false, PricingRule::kDefault,
                             /*max_basis_updates=*/0, simd);
    }
  }
}

TEST(EvaluateBatch, SimdModesProduceBitwiseIdenticalEstimates) {
  // The tentpole acceptance criterion: simd=auto and simd=scalar are not
  // merely close — every estimate bit is identical, on every engine and
  // both LP backends, across witness/warm/cold columns. (On machines
  // without AVX2+FMA both modes dispatch scalar and this is trivial.)
  for (LpBackendKind backend :
       {LpBackendKind::kDense, LpBackendKind::kRevised}) {
    for (const char* name : {"gamma", "normal", "auto", "agm", "panda"}) {
      const BoundEngine* engine = FindBoundEngine(name);
      ASSERT_NE(engine, nullptr);
      const BoundStructure structure = StructureOf(3, SimpleStats());
      ASSERT_TRUE(engine->Supports(structure));
      EngineOptions options;
      options.simplex.backend = backend;
      options.simplex.simd = SimdMode::kAuto;
      auto auto_bound = engine->Compile(structure, options);
      options.simplex.simd = SimdMode::kScalar;
      auto scalar_bound = engine->Compile(structure, options);

      const auto batch = JitteredBatch(SimpleStats(), 99);
      const std::vector<BoundResult> auto_results =
          auto_bound->EvaluateBatch(batch, /*want_h_opt=*/true);
      const std::vector<BoundResult> scalar_results =
          scalar_bound->EvaluateBatch(batch, /*want_h_opt=*/true);
      ASSERT_EQ(auto_results.size(), scalar_results.size());
      const std::string context =
          std::string(name) + "/" + LpBackendName(backend) + " auto-vs-scalar";
      for (size_t c = 0; c < auto_results.size(); ++c) {
        const BoundResult& a = auto_results[c];
        const BoundResult& s = scalar_results[c];
        const std::string ctx = context + " column " + std::to_string(c);
        EXPECT_EQ(a.status, s.status) << ctx;
        EXPECT_EQ(a.log2_bound, s.log2_bound) << ctx;
        EXPECT_EQ(a.eval_path, s.eval_path) << ctx;
        ASSERT_EQ(a.weights.size(), s.weights.size()) << ctx;
        for (size_t i = 0; i < a.weights.size(); ++i) {
          EXPECT_EQ(a.weights[i], s.weights[i]) << ctx << " weight " << i;
        }
        ASSERT_EQ(a.h_opt.size(), s.h_opt.size()) << ctx;
        for (VarSet v = 0; v < a.h_opt.size(); ++v) {
          EXPECT_EQ(a.h_opt[v], s.h_opt[v]) << ctx << " h_opt " << v;
        }
      }
    }
  }
}

TEST(EvaluateBatch, CuttingPlaneModeSharesCutPoolWithScalarParity) {
  // Force Γn into cutting-plane mode, where a batch shares one cut pool:
  // converged columns ride the multi-RHS block resolve and only columns
  // that still separate new cuts pay scalar top-up rounds. Both drivers
  // converge the same finite cut family per column, so bounds agree to
  // floating-point tolerance — not bitwise: the pooled path may reach a
  // different (equal-value) optimal vertex and a different pivot count.
  for (LpBackendKind backend :
       {LpBackendKind::kDense, LpBackendKind::kRevised}) {
    EngineOptions options;
    options.full_lattice_max_n = 3;
    options.simplex.backend = backend;
    const int n = 5;
    std::vector<ConcreteStatistic> stats;
    for (int i = 0; i + 1 < n; ++i) {
      const VarSet u = VarBit(i), v = VarBit(i + 1);
      stats.push_back(Stat(0, u | v, 1.0, 10.0));
      stats.push_back(Stat(u, v, 2.0, 6.0));
      stats.push_back(Stat(v, u, 2.0, 6.0));
    }
    const BoundStructure structure = StructureOf(n, stats);
    auto scalar_bound = FindBoundEngine("gamma")->Compile(structure, options);
    auto batch_bound = FindBoundEngine("gamma")->Compile(structure, options);
    const auto batch = JitteredBatch(stats, 99);
    std::vector<BoundResult> scalar_results;
    for (const std::vector<double>& values : batch) {
      scalar_results.push_back(scalar_bound->Evaluate(values, false));
    }
    const auto batch_results = batch_bound->EvaluateBatch(batch, false);
    ASSERT_EQ(batch_results.size(), scalar_results.size());
    for (size_t c = 0; c < batch.size(); ++c) {
      const std::string context = std::string(LpBackendName(backend)) +
                                  " cutting-plane column " +
                                  std::to_string(c);
      EXPECT_EQ(batch_results[c].status, scalar_results[c].status) << context;
      if (batch_results[c].ok() && scalar_results[c].ok()) {
        EXPECT_NEAR(batch_results[c].log2_bound,
                    scalar_results[c].log2_bound, 1e-6)
            << context;
      }
    }
    EXPECT_EQ(batch_bound->counters().evaluations,
              scalar_bound->counters().evaluations);
  }
}

TEST(EvaluateBatch, UnboundedStructureShortCircuitsMidBatch) {
  // An ℓ∞ conditional alone never bounds h(X): the first column solves to
  // unbounded, and every later nonnegative column must take the
  // structural shortcut — in the batch exactly as in the scalar sequence.
  // The negative column after the first unbounded one is the hard case:
  // it must NOT take the shortcut, and its result must match what the
  // scalar sequence computes from the basis-free tableau.
  std::vector<ConcreteStatistic> stats = {Stat(0b01, 0b10, kInfNorm, 5.0)};
  ASSERT_TRUE(NormalPolymatroidBound(2, stats).base.unbounded());
  for (const char* name : {"normal", "gamma", "auto"}) {
    const BoundStructure structure = StructureOf(2, stats);
    auto scalar_bound = FindBoundEngine(name)->Compile(structure);
    auto batch_bound = FindBoundEngine(name)->Compile(structure);
    const std::vector<std::vector<double>> batch = {
        {5.0}, {9.0}, {-1.0}, {2.5}, {-0.5}, {7.0}};
    std::vector<BoundResult> scalar_results;
    for (const std::vector<double>& values : batch) {
      scalar_results.push_back(scalar_bound->Evaluate(values, false));
    }
    const auto batch_results = batch_bound->EvaluateBatch(batch, false);
    ASSERT_EQ(batch_results.size(), batch.size());
    for (size_t c = 0; c < batch.size(); ++c) {
      ExpectBitwiseEqual(batch_results[c], scalar_results[c],
                         std::string(name) + " column " + std::to_string(c));
      if (batch[c][0] >= 0.0) {
        EXPECT_TRUE(batch_results[c].unbounded());
      }
    }
    // Columns after the first verdict are witness shortcuts.
    EXPECT_EQ(batch_bound->counters().witness_hits,
              scalar_bound->counters().witness_hits);
  }
}

TEST(ResolveWithRhsBatch, MatchesScalarCascadeOnBothBackends) {
  Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    // Random small LP with a feasible region in the positive orthant.
    const int n = 2 + static_cast<int>(rng.Uniform(4));
    const int rows = 2 + static_cast<int>(rng.Uniform(5));
    LpProblem lp(n);
    for (int j = 0; j < n; ++j) {
      lp.SetObjective(j, 0.5 + rng.NextDouble());
    }
    std::vector<double> base_rhs;
    for (int i = 0; i < rows; ++i) {
      std::vector<LpTerm> terms;
      for (int j = 0; j < n; ++j) {
        if (rng.NextDouble() < 0.7) {
          terms.push_back({j, 0.1 + rng.NextDouble()});
        }
      }
      if (terms.empty()) terms.push_back({0, 1.0});
      const double b = 1.0 + 10.0 * rng.NextDouble();
      lp.AddConstraint(terms, LpSense::kLe, b);
      base_rhs.push_back(b);
    }
    // Box row covering every variable, so no random draw is unbounded.
    {
      std::vector<LpTerm> box;
      for (int j = 0; j < n; ++j) box.push_back({j, 1.0});
      const double b = 20.0 + 10.0 * rng.NextDouble();
      lp.AddConstraint(box, LpSense::kLe, b);
      base_rhs.push_back(b);
    }
    // RHS batch: scalings that keep or break the cached basis.
    std::vector<std::vector<double>> batch;
    for (int c = 0; c < 6; ++c) {
      std::vector<double> rhs = base_rhs;
      for (double& b : rhs) b *= 0.3 + 1.6 * rng.NextDouble();
      batch.push_back(std::move(rhs));
    }
    for (LpBackendKind backend :
         {LpBackendKind::kDense, LpBackendKind::kRevised}) {
      SimplexOptions options;
      options.backend = backend;
      SimplexTableau scalar_tab(lp, options);
      SimplexTableau batch_tab(lp, options);
      ASSERT_EQ(scalar_tab.Solve().status, LpStatus::kOptimal);
      ASSERT_EQ(batch_tab.Solve().status, LpStatus::kOptimal);
      const auto batch_results = batch_tab.ResolveWithRhsBatch(batch);
      ASSERT_EQ(batch_results.size(), batch.size());
      for (size_t c = 0; c < batch.size(); ++c) {
        const LpResult scalar = scalar_tab.ResolveWithRhs(batch[c]);
        const std::string context = std::string(LpBackendName(backend)) +
                                    " trial " + std::to_string(trial) +
                                    " column " + std::to_string(c);
        EXPECT_EQ(batch_results[c].status, scalar.status) << context;
        EXPECT_EQ(batch_results[c].objective, scalar.objective) << context;
        EXPECT_EQ(batch_results[c].path, scalar.path) << context;
        EXPECT_EQ(batch_results[c].iterations, scalar.iterations) << context;
        ASSERT_EQ(batch_results[c].x.size(), scalar.x.size()) << context;
        for (size_t j = 0; j < scalar.x.size(); ++j) {
          EXPECT_EQ(batch_results[c].x[j], scalar.x[j]) << context;
        }
        ASSERT_EQ(batch_results[c].duals.size(), scalar.duals.size())
            << context;
        for (size_t i = 0; i < scalar.duals.size(); ++i) {
          EXPECT_EQ(batch_results[c].duals[i], scalar.duals[i]) << context;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Advisor layer.

Query Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.has_value());
  return *q;
}

Catalog SmallDb(uint64_t seed = 3) {
  Catalog db;
  Rng rng(seed);
  ZipfSampler zipf(15, 0.5);
  for (const char* name : {"R", "S", "T"}) {
    Relation r(name, {"a", "b"});
    for (int i = 0; i < 100; ++i) {
      r.AddRow({zipf.Sample(rng), zipf.Sample(rng)});
    }
    r.Deduplicate();
    db.Add(std::move(r));
  }
  return db;
}

TEST(AdvisorBatch, MultiQueryBatchMatchesScalarLoop) {
  Catalog db = SmallDb();
  std::vector<Query> queries;
  for (const char* text :
       {"R(X,Y), S(Y,Z)", "R(X,Y), S(Y,Z), T(Z,X)", "R(X,Y), R(Y,Z)",
        "S(X,Y), T(Y,Z)",  // same structure as the first: grouped
        "R(X,Y), S(Y,Z)"}) {
    queries.push_back(Parse(text));
  }
  CardinalityAdvisor scalar_advisor(db);
  CardinalityAdvisor batch_advisor(db);
  std::vector<double> expected;
  for (const Query& q : queries) {
    expected.push_back(scalar_advisor.EstimateLog2(q));
  }
  const std::vector<double> got = batch_advisor.EstimateLog2Batch(queries);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << queries[i].ToString();
  }
  const AdvisorMetrics m = batch_advisor.metrics();
  EXPECT_EQ(m.estimates, queries.size());
  // Queries sharing a structure were grouped: fewer lookups than
  // estimates.
  EXPECT_LT(m.compiled_hits + m.compiled_misses, m.estimates);
  const std::vector<double> linear = batch_advisor.EstimateBatch(queries);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(linear[i], std::exp2(expected[i]));
  }
}

TEST(AdvisorBatch, WhatIfValueBatchMatchesCompiledScalar) {
  Catalog db = SmallDb(11);
  const Query q = Parse("R(X,Y), S(Y,Z), T(Z,X)");
  CardinalityAdvisor advisor(db);
  const auto stats = advisor.Explain(q).stats;
  const auto batch = JitteredBatch(stats, 42);

  // Scalar reference: an identically compiled bound driven one vector at
  // a time. The advisor already evaluated the real values once (Explain),
  // so replay that prefix on the reference before comparing.
  auto reference = FindBoundEngine("auto")->Compile(
      StructureOf(q.num_vars(), stats));
  reference->Evaluate(ValuesOf(stats), /*want_h_opt=*/true);
  std::vector<double> expected;
  for (const std::vector<double>& values : batch) {
    expected.push_back(reference->Evaluate(values, false).log2_bound);
  }

  const std::vector<double> got = advisor.EstimateLog2Batch(q, batch);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t c = 0; c < expected.size(); ++c) {
    EXPECT_EQ(got[c], expected[c]) << "column " << c;
  }
}

TEST(AdvisorBatch, EmptyBatchesAreSafeNoOps) {
  // The DP driver can legitimately produce a level with zero probes;
  // every batch layer must treat an empty batch as a no-op, not UB.
  Catalog db = SmallDb(21);
  CardinalityAdvisor advisor(db);
  const Query q = Parse("R(X,Y), S(Y,Z)");
  const auto stats = advisor.Explain(q).stats;
  auto bound =
      FindBoundEngine("auto")->Compile(StructureOf(q.num_vars(), stats));
  EXPECT_TRUE(
      bound->EvaluateBatch(std::vector<std::vector<double>>{}, false).empty());
  const AdvisorMetrics before = advisor.metrics();
  EXPECT_TRUE(advisor.EstimateLog2Batch(std::vector<Query>{}).empty());
  const std::vector<std::vector<double>> no_values;
  EXPECT_TRUE(advisor.EstimateLog2Batch(q, no_values).empty());
  const AdvisorMetrics after = advisor.metrics();
  EXPECT_EQ(after.batch_calls - before.batch_calls, 2u);
  EXPECT_EQ(after.batch_probes, before.batch_probes);
  EXPECT_EQ(after.estimates, before.estimates);
}

TEST(AdvisorBatch, SingleElementBatchMatchesScalarBitwise) {
  // A batch of one must be indistinguishable from the scalar entry point —
  // the degenerate case the DP's level-1 loop hits on single-atom queries.
  Catalog db = SmallDb(22);
  for (const char* text : {"R(X,Y)", "R(X,Y), S(Y,Z)",
                           "R(X,Y), S(Y,Z), T(Z,X)"}) {
    const Query q = Parse(text);
    CardinalityAdvisor scalar_advisor(db);
    CardinalityAdvisor batch_advisor(db);
    const double scalar = scalar_advisor.EstimateLog2(q);
    const std::vector<double> batch =
        batch_advisor.EstimateLog2Batch(std::vector<Query>{q});
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0], scalar) << text;
  }
  // Same for the what-if overload: one value vector, identical call
  // history on both advisors (Explain, then one evaluation of the real
  // values).
  const Query q = Parse("R(X,Y), S(Y,Z)");
  CardinalityAdvisor scalar_advisor(db);
  CardinalityAdvisor batch_advisor(db);
  const auto values = ValuesOf(scalar_advisor.Explain(q).stats);
  (void)batch_advisor.Explain(q);
  const double scalar = scalar_advisor.EstimateLog2(q);
  const std::vector<double> got =
      batch_advisor.EstimateLog2Batch(q, std::vector<std::vector<double>>{values});
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], scalar);
}

TEST(AdvisorBatch, EmptyQueryRidesBatchesWithUnitBound) {
  // A 0-atom query used to walk into the bound engines' n >= 1 assertion;
  // it now answers log2 1 = 0 (the empty conjunction has one empty tuple)
  // in every entry point, wherever it sits in the batch.
  Catalog db = SmallDb(23);
  const Query empty("empty");
  const Query q1 = Parse("R(X,Y), S(Y,Z)");
  const Query q2 = Parse("R(X,Y), S(Y,Z), T(Z,X)");
  CardinalityAdvisor scalar_advisor(db);
  EXPECT_EQ(scalar_advisor.EstimateLog2(empty), 0.0);
  const double b1 = scalar_advisor.EstimateLog2(q1);
  const double b2 = scalar_advisor.EstimateLog2(q2);

  CardinalityAdvisor first_advisor(db);
  const std::vector<double> first =
      first_advisor.EstimateLog2Batch(std::vector<Query>{empty, q1, q2});
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0], 0.0);
  EXPECT_EQ(first[1], b1);
  EXPECT_EQ(first[2], b2);

  CardinalityAdvisor last_advisor(db);
  const std::vector<double> last =
      last_advisor.EstimateLog2Batch(std::vector<Query>{q1, q2, empty});
  ASSERT_EQ(last.size(), 3u);
  EXPECT_EQ(last[0], b1);
  EXPECT_EQ(last[1], b2);
  EXPECT_EQ(last[2], 0.0);

  // What-if on the empty query: only the empty value vector matches its
  // (empty) statistics set; anything else cannot be priced.
  const std::vector<std::vector<double>> probes = {{}, {1.0}};
  const std::vector<double> what_if =
      first_advisor.EstimateLog2Batch(empty, probes);
  ASSERT_EQ(what_if.size(), 2u);
  EXPECT_EQ(what_if[0], 0.0);
  EXPECT_EQ(what_if[1], kInfNorm);
}

TEST(EvaluateBatch, MixedBoundedAndUnboundedStructureGroups) {
  // The multi-query advisor batch evaluates one structure group at a time;
  // a group whose structure is structurally unbounded must come out
  // unbounded without perturbing the bounded group's results, whichever
  // group goes first.
  const std::vector<ConcreteStatistic> unbounded_stats = {
      Stat(0b01, 0b10, kInfNorm, 5.0)};
  ASSERT_TRUE(NormalPolymatroidBound(2, unbounded_stats).base.unbounded());
  for (bool unbounded_first : {true, false}) {
    for (const char* name : {"normal", "gamma", "auto"}) {
      auto bounded = FindBoundEngine(name)->Compile(
          StructureOf(3, SimpleStats()));
      auto bounded_ref = FindBoundEngine(name)->Compile(
          StructureOf(3, SimpleStats()));
      auto unbounded = FindBoundEngine(name)->Compile(
          StructureOf(2, unbounded_stats));
      auto unbounded_ref = FindBoundEngine(name)->Compile(
          StructureOf(2, unbounded_stats));
      const auto bounded_batch = JitteredBatch(SimpleStats(), 31);
      const auto unbounded_batch = JitteredBatch(unbounded_stats, 32);
      std::vector<BoundResult> b_results, u_results;
      if (unbounded_first) {
        u_results = unbounded->EvaluateBatch(unbounded_batch, false);
        b_results = bounded->EvaluateBatch(bounded_batch, false);
      } else {
        b_results = bounded->EvaluateBatch(bounded_batch, false);
        u_results = unbounded->EvaluateBatch(unbounded_batch, false);
      }
      ASSERT_EQ(b_results.size(), bounded_batch.size());
      ASSERT_EQ(u_results.size(), unbounded_batch.size());
      const std::string order = unbounded_first ? "u-first" : "b-first";
      for (size_t c = 0; c < bounded_batch.size(); ++c) {
        const BoundResult ref =
            bounded_ref->Evaluate(bounded_batch[c], false);
        ExpectBitwiseEqual(b_results[c], ref,
                           std::string(name) + "/" + order + " bounded " +
                               std::to_string(c));
        EXPECT_TRUE(b_results[c].ok());
      }
      for (size_t c = 0; c < unbounded_batch.size(); ++c) {
        const BoundResult ref =
            unbounded_ref->Evaluate(unbounded_batch[c], false);
        ExpectBitwiseEqual(u_results[c], ref,
                           std::string(name) + "/" + order + " unbounded " +
                               std::to_string(c));
        EXPECT_TRUE(u_results[c].unbounded());
      }
    }
  }
}

TEST(AdvisorBatch, NormCacheEvictionKeepsResultsExact) {
  // A byte budget small enough to evict constantly must never change
  // estimates — eviction recomputes, it does not approximate.
  Catalog db = SmallDb(5);
  AdvisorOptions tight;
  tight.norm_cache.shards = 2;
  tight.norm_cache.byte_budget = 1024;  // a handful of entries
  CardinalityAdvisor tight_advisor(db, tight);
  CardinalityAdvisor roomy_advisor(db);
  for (const char* text :
       {"R(X,Y), S(Y,Z)", "R(X,Y), S(Y,Z), T(Z,X)", "S(X,Y), T(Y,Z)",
        "R(X,Y), T(Y,X)"}) {
    const Query q = Parse(text);
    for (int round = 0; round < 3; ++round) {
      EXPECT_EQ(tight_advisor.EstimateLog2(q), roomy_advisor.EstimateLog2(q))
          << text;
    }
  }
  EXPECT_GT(tight_advisor.metrics().norm_evictions, 0u);
  EXPECT_EQ(roomy_advisor.metrics().norm_evictions, 0u);
  EXPECT_LE(tight_advisor.CacheBytes(), 1024u);
}

}  // namespace
}  // namespace lpb
