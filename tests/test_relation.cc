#include <gtest/gtest.h>

#include <cmath>

#include "relation/catalog.h"
#include "relation/degree_sequence.h"
#include "relation/relation.h"

namespace lpb {
namespace {

Relation EdgeRelation() {
  Relation r("R", {"X", "Y"});
  // X=0 has partners {10,11,12}; X=1 has {10}; X=2 has {11,12}.
  r.AddRow({0, 10});
  r.AddRow({0, 11});
  r.AddRow({0, 12});
  r.AddRow({1, 10});
  r.AddRow({2, 11});
  r.AddRow({2, 12});
  return r;
}

TEST(Relation, BasicAccessors) {
  Relation r = EdgeRelation();
  EXPECT_EQ(r.name(), "R");
  EXPECT_EQ(r.arity(), 2);
  EXPECT_EQ(r.NumRows(), 6u);
  EXPECT_EQ(r.AttrIndex("Y"), 1);
  EXPECT_EQ(r.AttrIndex("Z"), -1);
  EXPECT_EQ(r.At(2, 1), 12u);
}

TEST(Relation, DistinctCount) {
  Relation r = EdgeRelation();
  EXPECT_EQ(r.DistinctCount({0}), 3u);
  EXPECT_EQ(r.DistinctCount({1}), 3u);
  EXPECT_EQ(r.DistinctCount({0, 1}), 6u);
}

TEST(Relation, DistinctCountWithDuplicates) {
  Relation r("R", {"X"});
  r.AddRow({1});
  r.AddRow({1});
  r.AddRow({2});
  EXPECT_EQ(r.DistinctCount({0}), 2u);
}

TEST(Relation, ProjectDeduplicates) {
  Relation r = EdgeRelation();
  Relation p = r.Project({0});
  EXPECT_EQ(p.NumRows(), 3u);
  EXPECT_EQ(p.arity(), 1);
  EXPECT_EQ(p.attr(0), "X");
}

TEST(Relation, ProjectAllowsRepeatedColumns) {
  Relation r = EdgeRelation();
  Relation p = r.Project({1, 1});
  EXPECT_EQ(p.NumRows(), 3u);
  EXPECT_EQ(p.At(0, 0), p.At(0, 1));
}

TEST(Relation, DeduplicateRemovesFullRowDupes) {
  Relation r("R", {"X", "Y"});
  r.AddRow({1, 2});
  r.AddRow({1, 2});
  r.AddRow({1, 3});
  r.Deduplicate();
  EXPECT_EQ(r.NumRows(), 2u);
}

TEST(Relation, SortedOrderIsLexicographic) {
  Relation r("R", {"X", "Y"});
  r.AddRow({2, 1});
  r.AddRow({1, 9});
  r.AddRow({1, 3});
  auto order = r.SortedOrder({0, 1});
  EXPECT_EQ(r.At(order[0], 0), 1u);
  EXPECT_EQ(r.At(order[0], 1), 3u);
  EXPECT_EQ(r.At(order[2], 0), 2u);
}

TEST(Relation, EmptyRelation) {
  Relation r("R", {"X", "Y"});
  EXPECT_EQ(r.NumRows(), 0u);
  EXPECT_EQ(r.DistinctCount({0}), 0u);
  EXPECT_EQ(r.Project({0}).NumRows(), 0u);
}

TEST(DegreeSequence, SortsDescendingAndDropsZeros) {
  DegreeSequence d({1, 5, 0, 3, 0});
  EXPECT_EQ(d.degrees(), (std::vector<uint64_t>{5, 3, 1}));
  EXPECT_EQ(d.MaxDegree(), 5u);
  EXPECT_EQ(d.Total(), 9u);
}

TEST(DegreeSequence, NormsMatchHandComputation) {
  DegreeSequence d({3, 2, 1});
  EXPECT_NEAR(d.NormP(1.0), 6.0, 1e-9);
  EXPECT_NEAR(d.NormP(2.0), std::sqrt(14.0), 1e-9);
  EXPECT_NEAR(d.NormP(3.0), std::cbrt(36.0), 1e-9);
  EXPECT_NEAR(d.NormP(kInfNorm), 3.0, 1e-9);
}

TEST(DegreeSequence, Log2NormConsistentWithNormP) {
  DegreeSequence d({7, 7, 2, 1});
  for (double p : {1.0, 2.0, 3.5, 10.0}) {
    EXPECT_NEAR(std::exp2(d.Log2NormP(p)), d.NormP(p), 1e-6);
  }
}

TEST(DegreeSequence, LargePNoOverflow) {
  DegreeSequence d({1000000, 999999, 2});
  double log30 = d.Log2NormP(30.0);
  // ||d||_30 is slightly above the max degree.
  EXPECT_GT(log30, std::log2(1e6) - 1e-9);
  EXPECT_LT(log30, std::log2(1e6) + 0.1);
  EXPECT_TRUE(std::isfinite(log30));
}

TEST(DegreeSequence, NormMonotoneDecreasingInP) {
  DegreeSequence d({9, 4, 4, 1, 1, 1});
  double prev = d.NormP(0.5);
  for (double p : {1.0, 1.5, 2.0, 3.0, 5.0, 10.0, kInfNorm}) {
    double cur = d.NormP(p);
    EXPECT_LE(cur, prev + 1e-9) << "p=" << p;
    prev = cur;
  }
}

TEST(DegreeSequence, DominatedBy) {
  DegreeSequence a({3, 2, 1}), b({3, 3, 2}), c({4, 1});
  EXPECT_TRUE(a.DominatedBy(b));
  EXPECT_FALSE(b.DominatedBy(a));
  EXPECT_FALSE(a.DominatedBy(c));  // shorter but first entry larger? 4>3 ok, but len
  EXPECT_TRUE(DegreeSequence({2, 1}).DominatedBy(a));
}

TEST(ComputeDegreeSequence, SimpleBinary) {
  Relation r = EdgeRelation();
  DegreeSequence d = ComputeDegreeSequence(r, {0}, {1});
  EXPECT_EQ(d.degrees(), (std::vector<uint64_t>{3, 2, 1}));
  DegreeSequence d2 = ComputeDegreeSequence(r, {1}, {0});
  EXPECT_EQ(d2.degrees(), (std::vector<uint64_t>{2, 2, 2}));
}

TEST(ComputeDegreeSequence, DuplicateEdgesCountedOnce) {
  Relation r("R", {"X", "Y"});
  r.AddRow({0, 1});
  r.AddRow({0, 1});
  r.AddRow({0, 2});
  DegreeSequence d = ComputeDegreeSequence(r, {0}, {1});
  EXPECT_EQ(d.degrees(), (std::vector<uint64_t>{2}));
}

TEST(ComputeDegreeSequence, EmptyUGivesSingleGroup) {
  Relation r = EdgeRelation();
  DegreeSequence d = ComputeDegreeSequence(r, {}, {1});
  EXPECT_EQ(d.degrees(), (std::vector<uint64_t>{3}));  // |Π_Y(R)| = 3
}

TEST(ComputeDegreeSequence, EmptyVGivesAllOnes) {
  Relation r = EdgeRelation();
  DegreeSequence d = ComputeDegreeSequence(r, {0}, {});
  EXPECT_EQ(d.degrees(), (std::vector<uint64_t>{1, 1, 1}));
}

TEST(ComputeDegreeSequence, TernaryRelationPairConditional) {
  Relation r("R", {"A", "B", "C"});
  r.AddRow({0, 0, 1});
  r.AddRow({0, 0, 2});
  r.AddRow({0, 1, 1});
  r.AddRow({1, 0, 5});
  DegreeSequence d = ComputeDegreeSequence(r, {0, 1}, {2});
  EXPECT_EQ(d.degrees(), (std::vector<uint64_t>{2, 1, 1}));
}

TEST(DegreeSequence, SubUnitNormIndex) {
  // p in (0, 1) is legal in the paper's framework; ||d||_p is then larger
  // than ||d||_1.
  DegreeSequence d({3, 2, 1});
  EXPECT_GT(d.NormP(0.5), d.NormP(1.0));
  EXPECT_TRUE(std::isfinite(d.Log2NormP(0.5)));
}

TEST(DegreeSequence, SingleEntrySequenceAllNormsEqual) {
  DegreeSequence d({7});
  for (double p : {0.5, 1.0, 2.0, 30.0, kInfNorm}) {
    EXPECT_NEAR(d.NormP(p), 7.0, 1e-9) << p;
  }
}

TEST(DegreeSequence, EmptySequence) {
  DegreeSequence d;
  EXPECT_EQ(d.MaxDegree(), 0u);
  EXPECT_EQ(d.Total(), 0u);
  EXPECT_EQ(d.NormP(2.0), 0.0);
  EXPECT_TRUE(std::isinf(d.Log2NormP(2.0)));
}

TEST(ComputeDegreeSequence, EmptyRelation) {
  Relation r("R", {"X", "Y"});
  EXPECT_TRUE(ComputeDegreeSequence(r, {0}, {1}).empty());
}

TEST(Catalog, AddGetHas) {
  Catalog c;
  c.Add(EdgeRelation());
  EXPECT_TRUE(c.Has("R"));
  EXPECT_FALSE(c.Has("S"));
  EXPECT_EQ(c.Get("R").NumRows(), 6u);
  EXPECT_EQ(c.size(), 1u);
}

TEST(Catalog, AddReplaces) {
  Catalog c;
  c.Add(EdgeRelation());
  Relation r2("R", {"X", "Y"});
  r2.AddRow({9, 9});
  c.Add(std::move(r2));
  EXPECT_EQ(c.Get("R").NumRows(), 1u);
}

TEST(Catalog, Names) {
  Catalog c;
  c.Add(Relation("B", {"x"}));
  c.Add(Relation("A", {"x"}));
  EXPECT_EQ(c.Names(), (std::vector<std::string>{"A", "B"}));
}

}  // namespace
}  // namespace lpb
