#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/bits.h"
#include "util/random.h"
#include "util/zipf.h"

namespace lpb {
namespace {

TEST(Bits, VarBitAndContains) {
  EXPECT_EQ(VarBit(0), 1u);
  EXPECT_EQ(VarBit(3), 8u);
  EXPECT_TRUE(Contains(0b1010, 1));
  EXPECT_FALSE(Contains(0b1010, 0));
}

TEST(Bits, FullSet) {
  EXPECT_EQ(FullSet(0), 0u);
  EXPECT_EQ(FullSet(1), 1u);
  EXPECT_EQ(FullSet(4), 0b1111u);
}

TEST(Bits, SubsetPredicates) {
  EXPECT_TRUE(IsSubset(0b0101, 0b1101));
  EXPECT_FALSE(IsSubset(0b0101, 0b1001));
  EXPECT_TRUE(IsSubset(0, 0b1001));
  EXPECT_TRUE(Intersects(0b0110, 0b0010));
  EXPECT_FALSE(Intersects(0b0110, 0b1001));
}

TEST(Bits, SetSizeAndLowestVar) {
  EXPECT_EQ(SetSize(0), 0);
  EXPECT_EQ(SetSize(0b1011), 3);
  EXPECT_EQ(LowestVar(0b1000), 3);
  EXPECT_EQ(LowestVar(0b0110), 1);
}

TEST(Bits, VarRangeIteratesSetBits) {
  std::vector<int> vars;
  for (int v : VarRange(0b101101)) vars.push_back(v);
  EXPECT_EQ(vars, (std::vector<int>{0, 2, 3, 5}));
}

TEST(Bits, VarRangeEmpty) {
  int count = 0;
  for (int v : VarRange(0)) {
    (void)v;
    ++count;
  }
  EXPECT_EQ(count, 0);
}

TEST(Bits, SubsetRangeEnumeratesAllSubsets) {
  std::set<VarSet> subsets;
  for (VarSet s : SubsetRange(0b1010)) subsets.insert(s);
  EXPECT_EQ(subsets, (std::set<VarSet>{0b0000, 0b0010, 0b1000, 0b1010}));
}

TEST(Bits, SubsetRangeOfEmptySet) {
  std::vector<VarSet> subsets;
  for (VarSet s : SubsetRange(0)) subsets.push_back(s);
  EXPECT_EQ(subsets, std::vector<VarSet>{0});
}

TEST(Bits, SubsetRangeCountIsPowerOfTwo) {
  int count = 0;
  for (VarSet s : SubsetRange(0b11111)) {
    (void)s;
    ++count;
  }
  EXPECT_EQ(count, 32);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(2);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(4);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Zipf, SamplesWithinRange) {
  Rng rng(5);
  ZipfSampler zipf(100, 1.0);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 100u);
}

TEST(Zipf, SkewFavorsSmallIds) {
  Rng rng(6);
  ZipfSampler zipf(1000, 1.2);
  int zeros = 0, high = 0;
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = zipf.Sample(rng);
    if (v == 0) ++zeros;
    if (v >= 500) ++high;
  }
  EXPECT_GT(zeros, high);  // head dominates tail under heavy skew
  EXPECT_GT(zeros, 1000);
}

TEST(Zipf, ThetaZeroIsUniform) {
  Rng rng(7);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 400);
}

}  // namespace
}  // namespace lpb
