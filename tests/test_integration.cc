// End-to-end property tests tying statistics collection, the bound engines,
// the estimators and the evaluators together. The headline property is the
// paper's Theorem 1.1: for every database and every statistics set,
// |Q(D)| <= 2^{polymatroid bound}.
#include <gtest/gtest.h>

#include <cmath>

#include "bounds/agm.h"
#include "bounds/engine.h"
#include "bounds/normal_engine.h"
#include "datagen/alpha_beta.h"
#include "datagen/graph_gen.h"
#include "datagen/job_gen.h"
#include "estimator/dsb.h"
#include "estimator/traditional.h"
#include "relation/compressed_sequence.h"
#include "exec/generic_join.h"
#include "query/parser.h"
#include "stats/collector.h"
#include "util/random.h"
#include "util/zipf.h"

namespace lpb {
namespace {

Query Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.has_value());
  return *q;
}

double Log2Count(uint64_t count) {
  return count == 0 ? -1.0 : std::log2(static_cast<double>(count));
}

Catalog RandomDb(Rng& rng, const std::vector<std::string>& names, int rows,
                 int domain, double skew) {
  Catalog db;
  ZipfSampler zipf(domain, skew);
  for (const std::string& name : names) {
    Relation r(name, {"a", "b"});
    for (int i = 0; i < rows; ++i) {
      r.AddRow({zipf.Sample(rng), zipf.Sample(rng)});
    }
    r.Deduplicate();
    db.Add(std::move(r));
  }
  return db;
}

// --- Soundness: bound >= truth, for every engine and statistics set -------

TEST(Soundness, RandomDatabasesAllQueries) {
  Rng rng(2024);
  const std::vector<std::string> query_texts = {
      "R(X,Y), S(Y,Z)",
      "R(X,Y), S(Y,Z), T(Z,X)",
      "R(X,Y), S(Y,Z), T(Z,W)",
      "R(X,Y), S(Y,Z), T(Z,W), R(W,U)",
      "R(X,Y), R(Y,Z)",
      "R(X,Y), R(Y,X)",
  };
  for (int trial = 0; trial < 12; ++trial) {
    Catalog db = RandomDb(rng, {"R", "S", "T"}, 60 + trial * 15, 12,
                          0.3 + 0.05 * (trial % 5));
    for (const std::string& text : query_texts) {
      Query q = Parse(text);
      const uint64_t truth = CountJoin(q, db);
      CollectorOptions opt;
      opt.norms = {1.0, 2.0, 3.0, kInfNorm};
      auto stats = CollectStatistics(q, db, opt);
      auto bound = PolymatroidBound(q.num_vars(), stats);
      ASSERT_TRUE(bound.ok()) << text;
      EXPECT_GE(bound.log2_bound, Log2Count(truth) - 1e-6)
          << text << " trial " << trial;
      // Theorem 6.1 cross-check on the same inputs.
      auto normal = NormalPolymatroidBound(q.num_vars(), stats);
      ASSERT_TRUE(normal.base.ok());
      EXPECT_NEAR(normal.base.log2_bound, bound.log2_bound, 1e-5) << text;
    }
  }
}

TEST(Soundness, BoundHierarchyAgmPandaOurs) {
  // {1} ⊇ {1,∞} ⊇ {1..p,∞} statistic sets give non-increasing bounds, and
  // all dominate the truth.
  Rng rng(77);
  for (int trial = 0; trial < 6; ++trial) {
    Catalog db = RandomDb(rng, {"R", "S", "T"}, 120, 15, 0.5);
    Query q = Parse("R(X,Y), S(Y,Z), T(Z,X)");
    CollectorOptions opt;
    opt.norms = {1.0, 2.0, 3.0, 4.0, kInfNorm};
    auto stats = CollectStatistics(q, db, opt);
    auto agm = PolymatroidBound(q.num_vars(), FilterAgmStatistics(stats));
    auto panda = PolymatroidBound(q.num_vars(), FilterPandaStatistics(stats));
    auto ours = PolymatroidBound(q.num_vars(), stats);
    ASSERT_TRUE(agm.ok() && panda.ok() && ours.ok());
    const double truth = Log2Count(CountJoin(q, db));
    EXPECT_GE(ours.log2_bound, truth - 1e-6);
    EXPECT_LE(ours.log2_bound, panda.log2_bound + 1e-6);
    EXPECT_LE(panda.log2_bound, agm.log2_bound + 1e-6);
    // The independent AGM LP agrees with the engine restriction.
    AgmResult direct = AgmBound(q, db);
    EXPECT_NEAR(direct.log2_bound, agm.log2_bound, 1e-5);
  }
}

TEST(Soundness, PowerLawGraphTriangle) {
  GraphSpec spec;
  spec.num_nodes = 800;
  spec.num_edges = 4000;
  spec.zipf_theta = 0.85;
  Catalog db;
  Relation g = GeneratePowerLawGraph(spec);
  g.set_name("E");
  db.Add(std::move(g));
  Query q = Parse("E(X,Y), E(Y,Z), E(Z,X)");
  CollectorOptions opt;
  opt.norms = {1.0, 2.0, 3.0, kInfNorm};
  auto stats = CollectStatistics(q, db, opt);
  auto bound = LpNormBound(q.num_vars(), stats);
  ASSERT_TRUE(bound.ok());
  const uint64_t truth = CountJoin(q, db);
  EXPECT_GE(bound.log2_bound, Log2Count(truth) - 1e-6);
  // And the ℓ2 bound beats AGM on a skewed graph.
  auto agm = LpNormBound(q.num_vars(), FilterAgmStatistics(stats));
  EXPECT_LT(bound.log2_bound, agm.log2_bound);
}

TEST(Soundness, SelfJoinL2IsExact) {
  // Example 2.1: for Q = R(X,Y) ∧ R(Z,Y), the ℓ2-bound is exactly |Q|.
  Rng rng(31);
  Catalog db = RandomDb(rng, {"R"}, 150, 20, 0.6);
  Query q = Parse("R(X,Y), R(Z,Y)");
  CollectorOptions opt;
  opt.norms = {2.0};
  opt.include_cardinalities = false;
  auto stats = CollectStatistics(q, db, opt);
  auto bound = LpNormBound(q.num_vars(), stats);
  ASSERT_TRUE(bound.ok());
  EXPECT_NEAR(bound.log2_bound, Log2Count(CountJoin(q, db)), 1e-6);
}

TEST(Soundness, ChainQueryWithManyNorms) {
  Rng rng(41);
  Catalog db = RandomDb(rng, {"R", "S", "T", "U"}, 100, 14, 0.5);
  Query q = Parse("R(X1,X2), S(X2,X3), T(X3,X4), U(X4,X5)");
  CollectorOptions opt;
  opt.norms = {1.0, 2.0, 3.0, 4.0, 5.0, kInfNorm};
  auto stats = CollectStatistics(q, db, opt);
  auto bound = LpNormBound(q.num_vars(), stats);
  ASSERT_TRUE(bound.ok());
  EXPECT_GE(bound.log2_bound, Log2Count(CountJoin(q, db)) - 1e-6);
}

// --- Estimator comparisons -------------------------------------------------

TEST(Comparison, DsbBelowL2BoundOnSingleJoin) {
  // DSB <= ℓ2-bound (Cauchy-Schwarz), both above the truth.
  Rng rng(51);
  for (int trial = 0; trial < 5; ++trial) {
    Catalog db = RandomDb(rng, {"R", "S"}, 120, 18, 0.6);
    Query q = Parse("R(X,Y), S(Y,Z)");
    DegreeSequence a = ComputeDegreeSequence(db.Get("R"), {1}, {0});
    DegreeSequence b = ComputeDegreeSequence(db.Get("S"), {0}, {1});
    const double dsb = SingleJoinDsbLog2(a, b);
    const double l2 = a.Log2NormP(2.0) + b.Log2NormP(2.0);
    const double truth = Log2Count(CountJoin(q, db));
    EXPECT_LE(truth, dsb + 1e-9);
    EXPECT_LE(dsb, l2 + 1e-9);
  }
}

TEST(Comparison, AppendixC3GapInstance) {
  // R = (0,1/3)-relation, S = (0,2/3)-relation: DSB = Θ(M) while the
  // ℓp-bound is Θ(M^{10/9}) — the bounds must straddle M and M^{10/9}.
  // The log-scale gap is (1/9)log2 M - 1, so M must exceed 2^9 for the gap
  // to be visible at all; 2^15 gives ~0.67 bits.
  const uint64_t m = 32768;  // 2^15: M^{1/3} = 32, M^{2/3} = 1024 exactly
  Catalog db;
  db.Add(AlphaBetaRelation("R", m, 0.0, 1.0 / 3));
  db.Add(AlphaBetaRelation("S", m, 0.0, 2.0 / 3));
  Query q = Parse("R(X,Y), S(Y,Z)");
  CollectorOptions opt;
  opt.norms = {1.0, 2.0, 3.0, 4.0, 5.0, kInfNorm};
  auto stats = CollectStatistics(q, db, opt);
  auto bound = LpNormBound(q.num_vars(), stats);
  ASSERT_TRUE(bound.ok());
  DegreeSequence a = ComputeDegreeSequence(db.Get("R"), {1}, {0});
  DegreeSequence b = ComputeDegreeSequence(db.Get("S"), {0}, {1});
  const double dsb = SingleJoinDsbLog2(a, b);
  const double truth = Log2Count(CountJoin(q, db));
  EXPECT_LE(truth, dsb + 1e-9);
  EXPECT_LE(dsb, bound.log2_bound + 1e-9);
  // The ℓp bound exceeds the DSB on this instance (the 10/9 gap), though
  // rounding keeps the measured gap below the asymptotic (1/9) log M.
  EXPECT_GT(bound.log2_bound, dsb + 0.2);
}

TEST(Comparison, TraditionalVsBoundsOnJobQuery) {
  JobWorkloadOptions opt;
  opt.scale = 0.08;
  JobWorkload wl = GenerateJobWorkload(opt);
  const Query& q = wl.queries[0];  // q1: cast_info star
  const uint64_t truth = CountJoin(q, wl.catalog);
  CollectorOptions copt;
  copt.norms = {1.0, 2.0, 3.0, kInfNorm};
  auto stats = CollectStatistics(q, wl.catalog, copt);
  auto bound = LpNormBound(q.num_vars(), stats);
  ASSERT_TRUE(bound.ok());
  EXPECT_GE(bound.log2_bound, Log2Count(truth) - 1e-6);
  // PK/FK joins: ours should be within a few orders of magnitude, while
  // AGM explodes.
  auto agm = AgmBound(q, wl.catalog);
  EXPECT_LT(bound.log2_bound, agm.log2_bound);
}

TEST(Comparison, JobQueriesSoundAcrossTheWorkload) {
  JobWorkloadOptions opt;
  opt.scale = 0.05;
  JobWorkload wl = GenerateJobWorkload(opt);
  CollectorOptions copt;
  copt.norms = {1.0, 2.0, 3.0, kInfNorm};
  // A representative slice (full sweep lives in bench_job).
  for (int idx : {0, 2, 4, 7, 16, 30, 31}) {
    const Query& q = wl.queries[idx];
    const uint64_t truth = CountJoin(q, wl.catalog);
    auto stats = CollectStatistics(q, wl.catalog, copt);
    auto bound = LpNormBound(q.num_vars(), stats);
    ASSERT_TRUE(bound.ok()) << q.name();
    EXPECT_GE(bound.log2_bound, Log2Count(truth) - 1e-6) << q.name();
  }
}

TEST(Soundness, LoomisWhitneyTernaryAtoms) {
  // Higher-arity atoms (App. C.6): the LW4 query with pair conditionals
  // needs the Γn engine (non-simple statistics).
  Rng rng(61);
  Catalog db;
  for (const char* name : {"A", "B", "C", "D"}) {
    Relation r(name, {"u", "v", "w"});
    for (int i = 0; i < 120; ++i) {
      r.AddRow({rng.Uniform(6), rng.Uniform(6), rng.Uniform(6)});
    }
    r.Deduplicate();
    db.Add(std::move(r));
  }
  Query q = Parse("A(X,Y,Z), B(Y,Z,W), C(Z,W,X), D(W,X,Y)");
  CollectorOptions opt;
  opt.norms = {1.0, 2.0, kInfNorm};
  opt.max_u_size = 2;  // non-simple conditionals like (YZ|X)
  auto stats = CollectStatistics(q, db, opt);
  EXPECT_FALSE(AllSimple(stats));
  auto bound = PolymatroidBound(q.num_vars(), stats);
  ASSERT_TRUE(bound.ok());
  EXPECT_GE(bound.log2_bound, Log2Count(CountJoin(q, db)) - 1e-6);
}

TEST(Soundness, CompressedStatisticsRemainSound) {
  // Bounds computed from dominating compressed degree sequences (the
  // SafeBound-style summaries) are still upper bounds — compression only
  // loosens them.
  Rng rng(62);
  Catalog db = RandomDb(rng, {"R", "S"}, 200, 25, 0.7);
  Query q = Parse("R(X,Y), S(Y,Z)");
  const double truth = Log2Count(CountJoin(q, db));

  CollectorOptions opt;
  opt.norms = {1.0, 2.0, 3.0, kInfNorm};
  auto exact_stats = CollectStatistics(q, db, opt);
  auto exact = LpNormBound(q.num_vars(), exact_stats);

  // Recompute each statistic from the compressed sequence.
  auto compressed_stats = exact_stats;
  for (auto& s : compressed_stats) {
    if (s.sigma.u == 0) continue;
    const Atom& atom = q.atom(s.guard_atom);
    const Relation& rel = db.Get(atom.relation);
    std::vector<int> u_cols, v_cols;
    for (size_t j = 0; j < atom.vars.size(); ++j) {
      if (Contains(s.sigma.u, atom.vars[j])) {
        u_cols.push_back(static_cast<int>(j));
      } else {
        v_cols.push_back(static_cast<int>(j));
      }
    }
    CompressionOptions copt;
    copt.exact_head = 4;
    copt.tail_buckets = 4;
    s.log_b = CompressDominating(ComputeDegreeSequence(rel, u_cols, v_cols),
                                 copt)
                  .Log2NormP(s.p);
  }
  auto compressed = LpNormBound(q.num_vars(), compressed_stats);
  ASSERT_TRUE(exact.ok() && compressed.ok());
  EXPECT_GE(compressed.log2_bound, exact.log2_bound - 1e-7);
  EXPECT_GE(compressed.log2_bound, truth - 1e-6);
}

TEST(Soundness, AmplificationScalesTheBoundLinearly) {
  // k-amplified log-statistics (App. D.2) scale the polymatroid bound by
  // exactly k (the LP is positively homogeneous).
  Rng rng(63);
  Catalog db = RandomDb(rng, {"R", "S", "T"}, 100, 12, 0.4);
  Query q = Parse("R(X,Y), S(Y,Z), T(Z,X)");
  CollectorOptions opt;
  opt.norms = {1.0, 2.0, kInfNorm};
  auto stats = CollectStatistics(q, db, opt);
  auto base = PolymatroidBound(q.num_vars(), stats);
  ASSERT_TRUE(base.ok());
  for (double k : {2.0, 3.5}) {
    auto scaled = stats;
    for (auto& s : scaled) s.log_b *= k;
    auto r = PolymatroidBound(q.num_vars(), scaled);
    ASSERT_TRUE(r.ok());
    EXPECT_NEAR(r.log2_bound, k * base.log2_bound, 1e-5) << k;
  }
}

TEST(Comparison, WeightsRevealWhichNormsMatter) {
  // On a PK/FK join the optimal certificate uses the ℓ∞ statistic of the
  // key column (max degree 1), as reported in Appendix C.2.
  JobWorkloadOptions opt;
  opt.scale = 0.05;
  JobWorkload wl = GenerateJobWorkload(opt);
  const Query& q = wl.queries[2];  // movie_keyword ⋈ title ⋈ lookups
  CollectorOptions copt;
  copt.norms = {1.0, 2.0, kInfNorm};
  auto stats = CollectStatistics(q, wl.catalog, copt);
  auto bound = PolymatroidBound(q.num_vars(), stats);
  ASSERT_TRUE(bound.ok());
  bool uses_inf_on_key = false;
  for (size_t i = 0; i < stats.size(); ++i) {
    if (bound.weights[i] > 1e-6 && stats[i].p >= kInfNorm / 2) {
      uses_inf_on_key = true;
    }
  }
  EXPECT_TRUE(uses_inf_on_key);
  double certified = 0.0;
  for (size_t i = 0; i < stats.size(); ++i) {
    certified += bound.weights[i] * stats[i].log_b;
  }
  EXPECT_NEAR(certified, bound.log2_bound, 1e-5);
}

}  // namespace
}  // namespace lpb
