#include <gtest/gtest.h>

#include <cmath>

#include "estimator/dsb.h"
#include "estimator/traditional.h"
#include "exec/generic_join.h"
#include "query/parser.h"
#include "relation/catalog.h"
#include "relation/degree_sequence.h"

namespace lpb {
namespace {

Query Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.has_value());
  return *q;
}

Catalog JoinDb() {
  Catalog db;
  Relation r("R", {"x", "y"});
  r.AddRow({0, 0});
  r.AddRow({1, 0});
  r.AddRow({2, 1});
  r.AddRow({3, 1});
  db.Add(std::move(r));
  Relation s("S", {"y", "z"});
  s.AddRow({0, 5});
  s.AddRow({0, 6});
  s.AddRow({1, 5});
  db.Add(std::move(s));
  return db;
}

TEST(Traditional, MatchesFormula15OnSingleJoin) {
  // est = |R| |S| / max(dY(R), dY(S)) = 4*3 / max(2, 2) = 6.
  Query q = Parse("R(X,Y), S(Y,Z)");
  Catalog db = JoinDb();
  EXPECT_NEAR(TraditionalEstimate(q, db), 6.0, 1e-6);
  // True output: y=0 -> 2*2, y=1 -> 2*1: 6. (Here the estimate is exact.)
  EXPECT_EQ(CountJoin(q, db), 6u);
}

TEST(Traditional, UnderestimatesSkewedJoin) {
  Catalog db;
  Relation r("R", {"x", "y"});
  Relation s("S", {"y", "z"});
  // y=0 is a heavy hub on both sides; the uniformity assumption fails.
  for (Value i = 0; i < 50; ++i) r.AddRow({i, 0});
  for (Value i = 0; i < 50; ++i) r.AddRow({100 + i, 1 + i});
  for (Value i = 0; i < 50; ++i) s.AddRow({0, i});
  for (Value i = 0; i < 50; ++i) s.AddRow({1 + i, 100 + i});
  db.Add(std::move(r));
  db.Add(std::move(s));
  Query q = Parse("R(X,Y), S(Y,Z)");
  const double est = TraditionalEstimate(q, db);
  const uint64_t truth = CountJoin(q, db);
  EXPECT_GT(static_cast<double>(truth), 4.0 * est);  // underestimates a lot
}

TEST(Traditional, TriangleDiagonalUnderestimates) {
  // On the diagonal instance the independence assumption collapses the
  // estimate to |E|^3 / d^3 = 1, far below the 20 real triangles.
  Catalog db;
  Relation e("E", {"a", "b"});
  for (Value i = 0; i < 20; ++i) e.AddRow({i, i});
  db.Add(std::move(e));
  Query q = Parse("E(X,Y), E(Y,Z), E(Z,X)");
  const double est = TraditionalEstimate(q, db);
  const uint64_t truth = CountJoin(q, db);
  EXPECT_EQ(truth, 20u);
  EXPECT_NEAR(est, 1.0, 1e-6);
}

TEST(Traditional, EmptyRelationGivesZero) {
  Catalog db = JoinDb();
  db.Add(Relation("T", {"z", "w"}));
  Query q = Parse("R(X,Y), S(Y,Z), T(Z,W)");
  EXPECT_EQ(TraditionalEstimate(q, db), 0.0);
}

TEST(Traditional, CrossProductNoSharedVars) {
  Query q = Parse("R(X,Y), T(Z,W)");
  Catalog db = JoinDb();
  Relation t("T", {"z", "w"});
  t.AddRow({1, 2});
  t.AddRow({3, 4});
  db.Add(std::move(t));
  EXPECT_NEAR(TraditionalEstimate(q, db), 8.0, 1e-9);
  EXPECT_EQ(CountJoin(q, db), 8u);
}

TEST(Traditional, MultiwayVariableDividesByAllButMin) {
  // Star on Y over three relations with distinct counts 2, 3, 4:
  // est = Π|R| / (3 * 4).
  Catalog db;
  Relation a("A", {"y"});
  for (Value i = 0; i < 2; ++i) a.AddRow({i});
  Relation b("B", {"y", "u"});
  for (Value i = 0; i < 3; ++i) b.AddRow({i, i});
  Relation c("C", {"y", "v"});
  for (Value i = 0; i < 4; ++i) c.AddRow({i, i});
  db.Add(std::move(a));
  db.Add(std::move(b));
  db.Add(std::move(c));
  Query q = Parse("A(Y), B(Y,U), C(Y,V)");
  EXPECT_NEAR(TraditionalEstimate(q, db), 2.0 * 3.0 * 4.0 / (3.0 * 4.0),
              1e-9);
}

TEST(Dsb, MatchesEquation49) {
  DegreeSequence a({3, 2, 1});
  DegreeSequence b({4, 4, 4});
  EXPECT_EQ(SingleJoinDsb(a, b), 3u * 4 + 2 * 4 + 1 * 4);
}

TEST(Dsb, TruncatesToCommonLength) {
  DegreeSequence a({3, 2});
  DegreeSequence b({5, 5, 5});
  EXPECT_EQ(SingleJoinDsb(a, b), 15u + 10);
}

TEST(Dsb, IsAnUpperBoundOnTheJoin) {
  Catalog db = JoinDb();
  Query q = Parse("R(X,Y), S(Y,Z)");
  DegreeSequence a = ComputeDegreeSequence(db.Get("R"), {1}, {0});
  DegreeSequence b = ComputeDegreeSequence(db.Get("S"), {0}, {1});
  EXPECT_GE(SingleJoinDsb(a, b), CountJoin(q, db));
}

TEST(Dsb, TightOnCalibratedInstance) {
  // Symmetric calibrated relation: join size == DSB == ℓ2-bound.
  Catalog db;
  Relation r("R", {"x", "y"});
  // Every y-value has degree 2 on both sides (a 2-regular bipartite-ish
  // instance joined with itself).
  for (Value y = 0; y < 5; ++y) {
    r.AddRow({2 * y, y});
    r.AddRow({2 * y + 1, y});
  }
  db.Add(std::move(r));
  Query q = Parse("R(X,Y), R(Z,Y)");
  DegreeSequence d = ComputeDegreeSequence(db.Get("R"), {1}, {0});
  EXPECT_EQ(SingleJoinDsb(d, d), CountJoin(q, db));
  EXPECT_NEAR(std::exp2(d.Log2NormP(2.0) * 2.0),
              static_cast<double>(CountJoin(q, db)), 1e-6);
}

TEST(Dsb, BeatsCauchySchwarzWhenSequencesMisaligned) {
  // DSB = Σ a_i b_i <= ||a||_2 ||b||_2 always (Cauchy-Schwarz), strictly
  // when the sequences are not parallel.
  DegreeSequence a({10, 1, 1});
  DegreeSequence b({2, 2, 2});
  const double dsb = static_cast<double>(SingleJoinDsb(a, b));
  const double cs = a.NormP(2.0) * b.NormP(2.0);
  EXPECT_LT(dsb, cs - 1e-9);
}

TEST(Dsb, Log2Form) {
  DegreeSequence a({4}), b({4});
  EXPECT_NEAR(SingleJoinDsbLog2(a, b), 4.0, 1e-12);
  EXPECT_TRUE(std::isinf(SingleJoinDsbLog2(DegreeSequence(), b)));
}

}  // namespace
}  // namespace lpb
