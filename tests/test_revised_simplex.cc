#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/lp_problem.h"
#include "lp/lu_basis.h"
#include "lp/simplex.h"
#include "lp/sparse_matrix.h"
#include "lp/tableau.h"
#include "util/random.h"

namespace lpb {
namespace {

// The textbook LP used throughout test_lp.cc: max 3x + 5y s.t. x <= 4,
// 2y <= 12, 3x + 2y <= 18 -> opt 36 at (2, 6).
LpProblem Textbook() {
  LpProblem lp(2);
  lp.SetObjective(0, 3.0);
  lp.SetObjective(1, 5.0);
  lp.AddConstraint({{0, 1.0}}, LpSense::kLe, 4.0);
  lp.AddConstraint({{1, 2.0}}, LpSense::kLe, 12.0);
  lp.AddConstraint({{0, 3.0}, {1, 2.0}}, LpSense::kLe, 18.0);
  return lp;
}

TEST(SimplexTableau, SolveMatchesSolveLp) {
  LpProblem lp = Textbook();
  SimplexTableau tableau(lp);
  LpResult warm_capable = tableau.Solve();
  LpResult one_shot = SolveLp(lp);
  ASSERT_EQ(warm_capable.status, LpStatus::kOptimal);
  EXPECT_NEAR(warm_capable.objective, one_shot.objective, 1e-9);
  EXPECT_EQ(warm_capable.path, LpEvalPath::kCold);
  EXPECT_TRUE(tableau.has_optimal_basis());
  EXPECT_EQ(tableau.basis().size(), 3u);
}

TEST(SimplexTableau, WitnessReuseOnUnchangedBasis) {
  SimplexTableau tableau(Textbook());
  ASSERT_EQ(tableau.Solve().status, LpStatus::kOptimal);
  // Scale every RHS up 10%: the same constraints stay binding, so the
  // cached basis is still optimal and the resolve is a pure read-off.
  LpResult r = tableau.ResolveWithRhs({4.4, 13.2, 19.8});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.path, LpEvalPath::kWitness);
  EXPECT_EQ(r.iterations, 0);
  EXPECT_NEAR(r.objective, 36.0 * 1.1, 1e-8);
  // Duals certify the new objective against the new RHS.
  double dual_obj = r.duals[0] * 4.4 + r.duals[1] * 13.2 + r.duals[2] * 19.8;
  EXPECT_NEAR(dual_obj, r.objective, 1e-8);
}

TEST(SimplexTableau, WarmResolveWhenBasisChanges) {
  SimplexTableau tableau(Textbook());
  ASSERT_EQ(tableau.Solve().status, LpStatus::kOptimal);
  // Tighten x <= 4 to x <= 1: at the old optimum (2, 6) this constraint is
  // violated, so the cached basis is primal-infeasible and dual-simplex
  // pivots must run. New optimum: x = 1, y = 6 -> 33.
  LpResult r = tableau.ResolveWithRhs({1.0, 12.0, 18.0});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.path, LpEvalPath::kWarm);
  EXPECT_GT(r.iterations, 0);
  EXPECT_NEAR(r.objective, 33.0, 1e-8);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
  EXPECT_NEAR(r.x[1], 6.0, 1e-9);
}

TEST(SimplexTableau, ResolveWithoutBasisFallsBackToCold) {
  SimplexTableau tableau(Textbook());
  LpResult r = tableau.ResolveWithRhs({4.0, 12.0, 18.0});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.path, LpEvalPath::kCold);
  EXPECT_NEAR(r.objective, 36.0, 1e-9);
}

TEST(SimplexTableau, ResolveDetectsInfeasibleRhs) {
  SimplexTableau tableau(Textbook());
  ASSERT_EQ(tableau.Solve().status, LpStatus::kOptimal);
  // x <= -1 with x >= 0 is infeasible.
  LpResult r = tableau.ResolveWithRhs({-1.0, 12.0, 18.0});
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
  // The tableau recovers: the original RHS solves again.
  LpResult back = tableau.ResolveWithRhs({4.0, 12.0, 18.0});
  ASSERT_EQ(back.status, LpStatus::kOptimal);
  EXPECT_NEAR(back.objective, 36.0, 1e-8);
}

TEST(SimplexTableau, UnboundedProblemNeverCachesABasis) {
  LpProblem lp(2);
  lp.SetObjective(0, 1.0);
  lp.AddConstraint({{1, 1.0}}, LpSense::kLe, 3.0);  // x unconstrained
  SimplexTableau tableau(lp);
  EXPECT_EQ(tableau.Solve().status, LpStatus::kUnbounded);
  EXPECT_FALSE(tableau.has_optimal_basis());
  // Resolve degrades to a cold solve and agrees.
  LpResult r = tableau.ResolveWithRhs({5.0});
  EXPECT_EQ(r.status, LpStatus::kUnbounded);
  EXPECT_EQ(r.path, LpEvalPath::kCold);
}

TEST(SimplexTableau, GeAndEqRowsResolve) {
  // max x + 2y + 3z s.t. x + y + z = 10, x - y >= 2, z <= 4 -> 20.
  LpProblem lp(3);
  lp.SetObjective(0, 1.0);
  lp.SetObjective(1, 2.0);
  lp.SetObjective(2, 3.0);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}, {2, 1.0}}, LpSense::kEq, 10.0);
  lp.AddConstraint({{0, 1.0}, {1, -1.0}}, LpSense::kGe, 2.0);
  lp.AddConstraint({{2, 1.0}}, LpSense::kLe, 4.0);
  SimplexTableau tableau(lp);
  ASSERT_EQ(tableau.Solve().status, LpStatus::kOptimal);
  for (const std::vector<double>& rhs :
       {std::vector<double>{10.0, 2.0, 4.0}, {12.0, 2.0, 4.0},
        {10.0, 4.0, 1.0}, {8.0, 0.5, 3.0}}) {
    LpResult resolve = tableau.ResolveWithRhs(rhs);
    LpProblem fresh_lp = lp;  // same matrix; solve fresh at this rhs
    SimplexTableau fresh(fresh_lp);
    LpResult cold = fresh.Solve(rhs);
    ASSERT_EQ(resolve.status, cold.status);
    ASSERT_EQ(cold.status, LpStatus::kOptimal);
    EXPECT_NEAR(resolve.objective, cold.objective, 1e-7);
  }
}

// Property test: randomized LPs re-solved at randomized RHS vectors must
// agree with a from-scratch solve — same status, same objective, primal
// feasible, strong duality at the new RHS.
TEST(SimplexTableau, RandomResolvesMatchFromScratch) {
  Rng rng(2024);
  int witness_seen = 0, warm_seen = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 2 + static_cast<int>(rng.Uniform(4));
    const int m = 2 + static_cast<int>(rng.Uniform(6));
    LpProblem lp(n);
    for (int j = 0; j < n; ++j) lp.SetObjective(j, rng.NextDouble() * 2.0);
    std::vector<double> rhs(m);
    for (int i = 0; i < m; ++i) {
      std::vector<LpTerm> terms;
      for (int j = 0; j < n; ++j) {
        terms.push_back({j, rng.NextDouble() * 2.0});  // nonneg: bounded
      }
      // Ensure every variable appears with a nonzero coefficient in some
      // row by adding a diagonal boost to row i mod n.
      terms[trial % n].coef += 1.0;
      rhs[i] = 1.0 + 5.0 * rng.NextDouble();
      lp.AddConstraint(std::move(terms), LpSense::kLe, rhs[i]);
    }
    // Box rows so the LP is bounded for every RHS draw.
    for (int j = 0; j < n; ++j) {
      lp.AddConstraint({{j, 1.0}}, LpSense::kLe, 50.0);
      rhs.push_back(50.0);
    }

    SimplexTableau tableau(lp);
    ASSERT_EQ(tableau.Solve().status, LpStatus::kOptimal) << "trial " << trial;

    for (int redraw = 0; redraw < 6; ++redraw) {
      std::vector<double> new_rhs = rhs;
      for (int i = 0; i < m; ++i) {
        // Mix small perturbations (witness-friendly) with drastic redraws
        // that force the warm-start fallback.
        new_rhs[i] = redraw % 2 == 0 ? rhs[i] * (0.9 + 0.2 * rng.NextDouble())
                                     : 0.2 + 8.0 * rng.NextDouble();
      }
      LpResult resolve = tableau.ResolveWithRhs(new_rhs);
      LpResult cold = SolveLp([&] {
        LpProblem fresh(n);
        for (int j = 0; j < n; ++j) {
          fresh.SetObjective(j, lp.objective_coef(j));
        }
        for (int i = 0; i < lp.num_constraints(); ++i) {
          fresh.AddConstraint(lp.constraint(i).terms, lp.constraint(i).sense,
                              new_rhs[i]);
        }
        return fresh;
      }());
      ASSERT_EQ(resolve.status, cold.status)
          << "trial " << trial << " redraw " << redraw;
      ASSERT_EQ(resolve.status, LpStatus::kOptimal);
      EXPECT_NEAR(resolve.objective, cold.objective, 1e-6)
          << "trial " << trial << " redraw " << redraw;
      for (int i = 0; i < lp.num_constraints(); ++i) {
        EXPECT_LE(lp.EvalLhs(i, resolve.x), new_rhs[i] + 1e-6)
            << "trial " << trial << " constraint " << i;
      }
      double dual_obj = 0.0;
      for (int i = 0; i < lp.num_constraints(); ++i) {
        dual_obj += resolve.duals[i] * new_rhs[i];
      }
      EXPECT_NEAR(dual_obj, resolve.objective, 1e-5);
      if (resolve.path == LpEvalPath::kWitness) ++witness_seen;
      if (resolve.path == LpEvalPath::kWarm) ++warm_seen;
    }
  }
  // The mix above must exercise both reuse paths, not just cold solves.
  EXPECT_GT(witness_seen, 0);
  EXPECT_GT(warm_seen, 0);
}

// Regression tests for the LpResult failure contract: every early-return
// path (phase-1 infeasible, phase-2 unbounded, iteration limit, and the
// ResolveWithRhs fallbacks into each) must set `status` explicitly and
// size `x`/`duals` — a default-constructed LpResult reads as
// kIterationLimit with empty vectors, and solver paths that forgot to
// overwrite those leaked stale shapes to callers indexing unconditionally.
// Both backends are held to the contract.
class LpFailureContract : public testing::TestWithParam<LpBackendKind> {
 protected:
  SimplexOptions Options(int max_iterations = 0) const {
    SimplexOptions options;
    options.backend = GetParam();
    options.max_iterations = max_iterations;
    return options;
  }
  static void ExpectSized(const LpResult& r, const LpProblem& lp) {
    EXPECT_EQ(r.x.size(), static_cast<size_t>(lp.num_vars()));
    EXPECT_EQ(r.duals.size(), static_cast<size_t>(lp.num_constraints()));
  }
};

TEST_P(LpFailureContract, InfeasibleSolveSizesResult) {
  LpProblem lp(2);
  lp.SetObjective(0, 1.0);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, LpSense::kLe, 1.0);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, LpSense::kGe, 3.0);
  SimplexTableau tableau(lp, Options());
  const LpResult r = tableau.Solve();
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
  ExpectSized(r, lp);
  EXPECT_FALSE(tableau.has_optimal_basis());
}

TEST_P(LpFailureContract, UnboundedSolveSizesResult) {
  LpProblem lp(2);
  lp.SetObjective(0, 1.0);
  lp.AddConstraint({{1, 1.0}}, LpSense::kLe, 3.0);  // x unconstrained
  SimplexTableau tableau(lp, Options());
  const LpResult r = tableau.Solve();
  EXPECT_EQ(r.status, LpStatus::kUnbounded);
  ExpectSized(r, lp);
}

TEST_P(LpFailureContract, IterationLimitSizesResult) {
  // One iteration cannot finish phase 1 of this >=-heavy problem.
  LpProblem lp(3);
  for (int j = 0; j < 3; ++j) lp.SetObjective(j, 1.0);
  lp.AddConstraint({{0, 1.0}, {1, 2.0}}, LpSense::kGe, 4.0);
  lp.AddConstraint({{1, 1.0}, {2, 2.0}}, LpSense::kGe, 5.0);
  lp.AddConstraint({{0, 1.0}, {2, 1.0}}, LpSense::kLe, 9.0);
  SimplexTableau tableau(lp, Options(/*max_iterations=*/1));
  const LpResult r = tableau.Solve();
  EXPECT_EQ(r.status, LpStatus::kIterationLimit);
  ExpectSized(r, lp);
  EXPECT_FALSE(tableau.has_optimal_basis());
}

TEST_P(LpFailureContract, ResolveIntoInfeasibleSizesResult) {
  LpProblem lp = Textbook();
  SimplexTableau tableau(lp, Options());
  ASSERT_EQ(tableau.Solve().status, LpStatus::kOptimal);
  // x <= -1 with x >= 0: the warm path must fall through to a cold solve
  // that reports infeasible with properly sized vectors — not a stale
  // optimal-shaped result from the cached basis.
  const LpResult r = tableau.ResolveWithRhs({-1.0, 12.0, 18.0});
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
  ExpectSized(r, lp);
  // And the result reports which backend produced it.
  EXPECT_EQ(r.backend, GetParam());
}

TEST_P(LpFailureContract, DefaultResultIsNotSolved) {
  // The guard the contract hangs off: a default LpResult must read as a
  // failure, never as optimal.
  LpResult fresh;
  EXPECT_EQ(fresh.status, LpStatus::kIterationLimit);
  EXPECT_TRUE(fresh.x.empty());
  EXPECT_TRUE(fresh.duals.empty());
}

INSTANTIATE_TEST_SUITE_P(BothBackends, LpFailureContract,
                         testing::Values(LpBackendKind::kDense,
                                         LpBackendKind::kRevised),
                         [](const testing::TestParamInfo<LpBackendKind>& i) {
                           return std::string(LpBackendName(i.param));
                         });

// ---------------------------------------------------------------------------
// LuBasis unit tests: the Forrest–Tomlin update against a from-scratch
// refactorization of the updated basis, the unstable-update fallback, and
// the update/fill budgets.

using Scalar = LuBasis::Scalar;

// A deliberately non-trivial 5x5 sparse matrix plus spare columns to pivot
// in: column k of the basis is replaced by spare columns during updates.
SparseMatrix FtTestMatrix() {
  SparseMatrix a(5);
  a.AppendColumn({{0, 2.0}, {2, 1.0}});                       // 0
  a.AppendColumn({{1, 3.0}, {3, -1.0}});                      // 1
  a.AppendColumn({{0, 1.0}, {2, 4.0}, {4, 0.5}});             // 2
  a.AppendColumn({{3, 2.0}, {4, 1.0}});                       // 3
  a.AppendColumn({{1, 1.0}, {4, 3.0}});                       // 4
  a.AppendColumn({{0, 1.0}, {1, 1.0}, {2, 1.0}, {3, 1.0}});   // 5 (spare)
  a.AppendColumn({{2, 2.0}, {3, 1.0}, {4, -2.0}});            // 6 (spare)
  a.AppendColumn({{0, -1.0}, {4, 2.0}});                      // 7 (spare)
  return a;
}

// Reference: factorize the updated basis from scratch and compare solves.
void ExpectSameSolves(LuBasis& updated, const SparseMatrix& a,
                      const std::vector<int>& basis, const char* context) {
  LuBasis fresh;
  ASSERT_TRUE(fresh.Factorize(a, basis)) << context;
  Rng rng(99);
  const int m = static_cast<int>(basis.size());
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<Scalar> x(m), y(m);
    for (int i = 0; i < m; ++i) x[i] = y[i] = -1.0 + 2.0 * rng.NextDouble();
    std::vector<Scalar> x2 = x, y2 = y;
    updated.Ftran(x);
    fresh.Ftran(x2);
    updated.Btran(y);
    fresh.Btran(y2);
    for (int i = 0; i < m; ++i) {
      EXPECT_NEAR(static_cast<double>(x[i]), static_cast<double>(x2[i]), 1e-9)
          << context << " ftran slot " << i << " trial " << trial;
      EXPECT_NEAR(static_cast<double>(y[i]), static_cast<double>(y2[i]), 1e-9)
          << context << " btran row " << i << " trial " << trial;
    }
  }
}

// w = B⁻¹ a_col under the current factorization — what the simplex hands
// Update from the entering column's FTRAN image.
std::vector<Scalar> FtranColumn(const LuBasis& lu, const SparseMatrix& a,
                                int col) {
  std::vector<Scalar> w(lu.m(), 0.0);
  for (const SparseEntry* e = a.ColBegin(col); e != a.ColEnd(col); ++e) {
    w[e->row] = e->value;
  }
  lu.Ftran(w);
  return w;
}

TEST(LuBasisForrestTomlin, UpdateMatchesFreshFactorization) {
  SparseMatrix a = FtTestMatrix();
  std::vector<int> basis = {0, 1, 2, 3, 4};
  LuBasis lu;
  ASSERT_TRUE(lu.Factorize(a, basis));

  // Chain three FT updates through different slots (first, middle, last in
  // arbitrary position order); after each, solves must match a fresh
  // factorization of the updated basis bit-for-tolerance.
  const int replacements[][2] = {{2, 5}, {0, 6}, {4, 7}};
  for (const auto& rep : replacements) {
    const int slot = rep[0], col = rep[1];
    const std::vector<Scalar> w = FtranColumn(lu, a, col);
    ASSERT_TRUE(lu.Update(a, col, w, slot)) << "slot " << slot;
    basis[slot] = col;
    ExpectSameSolves(lu, a, basis,
                     ("after replacing slot " + std::to_string(slot)).c_str());
  }
  EXPECT_EQ(lu.update_count(), 3);
  EXPECT_FALSE(lu.NeedsRefactorize());
}

TEST(LuBasisForrestTomlin, UnstableUpdateIsRefusedAndHarmless) {
  SparseMatrix a = FtTestMatrix();
  // Column 8: numerically identical to basis column 0 — replacing any
  // *other* slot with it makes the basis singular, so the FT diagonal
  // collapses and the update must refuse.
  a.AppendColumn({{0, 2.0}, {2, 1.0}});
  std::vector<int> basis = {0, 1, 2, 3, 4};
  LuBasis lu;
  ASSERT_TRUE(lu.Factorize(a, basis));

  const std::vector<Scalar> w = FtranColumn(lu, a, 8);
  EXPECT_NEAR(static_cast<double>(w[0]), 1.0, 1e-12);  // the duplicate
  EXPECT_FALSE(lu.Update(a, 8, w, 3));  // would make B singular
  EXPECT_EQ(lu.update_count(), 0);
  // A refused update must leave the factorization untouched and usable.
  ExpectSameSolves(lu, a, basis, "after refused update");
  // And a legitimate update still goes through afterwards.
  const std::vector<Scalar> w6 = FtranColumn(lu, a, 6);
  ASSERT_TRUE(lu.Update(a, 6, w6, 1));
  basis[1] = 6;
  ExpectSameSolves(lu, a, basis, "after refused-then-accepted");
}

TEST(LuBasisForrestTomlin, UpdateBudgetTripsNeedsRefactorize) {
  SparseMatrix a = FtTestMatrix();
  std::vector<int> basis = {0, 1, 2, 3, 4};
  LuOptions options;
  options.max_updates = 2;
  LuBasis lu(options);
  ASSERT_TRUE(lu.Factorize(a, basis));
  for (int k = 0; k < 2; ++k) {
    const int slot = k == 0 ? 2 : 0;
    const int col = k == 0 ? 5 : 6;
    const std::vector<Scalar> w = FtranColumn(lu, a, col);
    ASSERT_TRUE(lu.Update(a, col, w, slot));
    basis[slot] = col;
  }
  EXPECT_TRUE(lu.NeedsRefactorize());
  // Factorize resets the budget.
  ASSERT_TRUE(lu.Factorize(a, basis));
  EXPECT_FALSE(lu.NeedsRefactorize());
  EXPECT_EQ(lu.update_count(), 0);
}

TEST(LuBasisForrestTomlin, LegacyEtaModeStillWorks) {
  SparseMatrix a = FtTestMatrix();
  std::vector<int> basis = {0, 1, 2, 3, 4};
  LuOptions options;
  options.forrest_tomlin = false;
  LuBasis lu(options);
  ASSERT_TRUE(lu.Factorize(a, basis));
  const std::vector<Scalar> w = FtranColumn(lu, a, 5);
  ASSERT_TRUE(lu.Update(a, 5, w, 2));
  basis[2] = 5;
  ExpectSameSolves(lu, a, basis, "eta update");
}

// The bound-LP shape: homogeneous >= rows (Shannon cuts) whose RHS stays 0
// while only the statistics rows move. The warm path must re-price the RHS
// using only the nonzero entries.
TEST(SimplexTableau, HomogeneousRowsStayZeroAcrossResolves) {
  Rng rng(7);
  const int n = 5;
  LpProblem lp(n);
  lp.SetObjective(n - 1, 1.0);
  std::vector<double> rhs;
  lp.AddConstraint({{0, 1.0}}, LpSense::kLe, 2.0);
  rhs.push_back(2.0);
  for (int i = 0; i + 1 < n; ++i) {
    lp.AddConstraint({{i, 1.0}, {i + 1, -1.0}}, LpSense::kGe, 0.0);
    rhs.push_back(0.0);
  }
  SimplexTableau tableau(lp);
  ASSERT_EQ(tableau.Solve().status, LpStatus::kOptimal);
  for (double head : {3.0, 1.0, 10.0, 0.5}) {
    rhs[0] = head;
    LpResult r = tableau.ResolveWithRhs(rhs);
    ASSERT_EQ(r.status, LpStatus::kOptimal);
    EXPECT_NEAR(r.objective, head, 1e-7);  // chain propagates x0's bound
  }
}

}  // namespace
}  // namespace lpb
