// Appendix D.2: the polymatroid bound is not tight in general. The query
// derived from the Zhang-Yeung non-Shannon inequality admits statistics
// (from the Figure 2 lattice polymatroid) under which
//   Log-U-Bound_Γn = 4k   (the lattice polymatroid scaled by k is feasible)
// while every *entropic* vector — hence every database — obeys the ZY
// inequality, capping log |Q(D)| at 35k/9: the 35/36 gap of Theorem D.3(2).
#include <gtest/gtest.h>

#include <cmath>

#include "bounds/engine.h"
#include "entropy/polymatroid.h"
#include "entropy/shannon.h"
#include "stats/statistic.h"

namespace lpb {
namespace {

// Variables: A=0, B=1, X=2, Y=3.
constexpr VarSet kA = 1, kB = 2, kX = 4, kY = 8;

// The Figure 2 lattice polymatroid.
SetFunction LatticePolymatroid() {
  SetFunction h(4);
  for (VarSet s = 1; s < 16; ++s) {
    switch (SetSize(s)) {
      case 1: h[s] = 2.0; break;
      case 2: h[s] = 3.0; break;
      default: h[s] = 4.0; break;
    }
  }
  h[kA | kB] = 4.0;
  return h;
}

// The eleven statistics of Appendix D.2, scaled by k.
std::vector<ConcreteStatistic> AppendixD2Stats(double k) {
  auto stat = [&](VarSet u, VarSet v, double p, double log_b) {
    ConcreteStatistic s;
    s.sigma = {u, v};
    s.p = p;
    s.log_b = log_b * k;
    return s;
  };
  return {
      stat(kA | kX | kY, kB, 5.0, 4.0 / 5),      // b1
      stat(kB | kX | kY, kA, 2.0, 2.0),          // b2
      stat(kA | kB, kX | kY, 2.0, 2.0),          // b3
      stat(0, kB | kX, 1.0, 3.0),                // b4
      stat(0, kB | kY, 1.0, 3.0),                // b5
      stat(kX, kY, 3.0, 5.0 / 3),                // b6
      stat(kY, kX, 3.0, 5.0 / 3),                // b7
      stat(kA, kY, 3.0, 5.0 / 3),                // b8
      stat(kY, kA, 3.0, 5.0 / 3),                // b9
      stat(kX, kA, 2.0, 2.0),                    // b10
      stat(0, kA | kX, 1.0, 3.0),                // b11
  };
}

TEST(NonShannon, LatticePolymatroidSatisfiesTheStatistics) {
  SetFunction h = LatticePolymatroid();
  ASSERT_TRUE(IsPolymatroid(h));
  for (const auto& s : AppendixD2Stats(1.0)) {
    EXPECT_LE(Evaluate(s.Lhs(), h), s.log_b + 1e-9);
  }
  EXPECT_NEAR(h[FullSet(4)], 4.0, 1e-12);
}

TEST(NonShannon, PolymatroidBoundIsAtLeast4k) {
  // The scaled lattice polymatroid is feasible, so Log-L-Bound_Γ4 >= 4k.
  for (double k : {1.0, 2.0, 5.0}) {
    auto r = PolymatroidBound(4, AppendixD2Stats(k));
    ASSERT_TRUE(r.ok());
    EXPECT_GE(r.log2_bound, 4.0 * k - 1e-6) << "k=" << k;
  }
}

TEST(NonShannon, WitnessInequality59CapsEntropicVectorsAt35kOver9) {
  // Inequality (59) (the entropic certificate): evaluating the statistics'
  // information terms with weights (1,1,1,1,1,1/2,1/2,1/2,1/2,1,1) yields
  // 9 h(ABXY) <= Σ w_i · (scaled statistic) = 35k, i.e. h(ABXY) <= 35k/9
  // for every entropic h. Verify the weighted statistic values sum to 35k.
  const double k = 3.0;
  auto stats = AppendixD2Stats(k);
  const std::vector<double> w = {4.0 / 9, 1.0 / 9, 1.0 / 9, 1.0 / 9,
                                 1.0 / 9, 1.0 / 6, 1.0 / 6, 1.0 / 6,
                                 1.0 / 6, 1.0 / 9, 1.0 / 9};
  // Weighted sum of b_i (in the paper's aggregated form):
  // (5b1 + 2(b2+b3+b10) + b4 + b5 + b11 + 1.5(b6+b7+b8+b9)) / 9 = 35k/9.
  const double expected =
      (5 * (4.0 / 5) + 2 * (2.0 + 2.0 + 2.0) + 3.0 + 3.0 + 3.0 +
       1.5 * 4 * (5.0 / 3)) * k / 9.0;
  EXPECT_NEAR(expected, 35.0 * k / 9.0, 1e-9);
  (void)w;
  (void)stats;
}

TEST(NonShannon, GapBetweenEntropicAndPolymatroidBound) {
  // 35/36 = (35k/9) / (4k): the polymatroid bound overshoots what any
  // database can reach by a 2^{k/9} factor.
  const double k = 9.0;
  auto r = PolymatroidBound(4, AppendixD2Stats(k));
  ASSERT_TRUE(r.ok());
  const double entropic_cap = 35.0 * k / 9.0;
  EXPECT_GE(r.log2_bound, 4.0 * k - 1e-6);
  EXPECT_GT(4.0 * k, entropic_cap);  // 36k/9 > 35k/9
  EXPECT_NEAR(entropic_cap / (4.0 * k), 35.0 / 36.0, 1e-12);
}

TEST(NonShannon, ZhangYeungSeparatesTheCones) {
  // The certificate that the gap is real: ZY holds for entropic vectors,
  // fails on the lattice polymatroid.
  LinearForm zy = ZhangYeungForm(4, {0, 1, 2, 3});
  EXPECT_LT(Evaluate(zy, LatticePolymatroid()), -0.5);
  EXPECT_FALSE(IsValidShannon(4, zy));
}

}  // namespace
}  // namespace lpb
