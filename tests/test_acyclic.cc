#include <gtest/gtest.h>

#include "datagen/job_gen.h"
#include "exec/generic_join.h"
#include "exec/yannakakis.h"
#include "query/join_tree.h"
#include "query/parser.h"
#include "relation/catalog.h"
#include "util/random.h"
#include "util/zipf.h"

namespace lpb {
namespace {

Query Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.has_value());
  return *q;
}

TEST(JoinTree, PathQuery) {
  Query q = Parse("R(X,Y), S(Y,Z), T(Z,W)");
  auto tree = BuildJoinTree(q);
  ASSERT_TRUE(tree.has_value());
  EXPECT_TRUE(HasRunningIntersection(q, *tree));
  int roots = 0;
  for (int i = 0; i < tree->num_nodes(); ++i) {
    if (tree->IsRoot(i)) ++roots;
  }
  EXPECT_EQ(roots, 1);
}

TEST(JoinTree, TriangleHasNoTree) {
  EXPECT_FALSE(BuildJoinTree(Parse("R(X,Y), S(Y,Z), T(Z,X)")).has_value());
}

TEST(JoinTree, TriangleWithCoverHasTree) {
  Query q = Parse("U(X,Y,Z), R(X,Y), S(Y,Z), T(Z,X)");
  auto tree = BuildJoinTree(q);
  ASSERT_TRUE(tree.has_value());
  EXPECT_TRUE(HasRunningIntersection(q, *tree));
}

TEST(JoinTree, DisconnectedQueryStillHasValidTree) {
  // GYO links disconnected components through an empty interface (any atom
  // can witness an empty shared set); the counting DP treats the empty key
  // as a cross product, so a single root is fine — what matters is the
  // running-intersection property.
  Query q = Parse("R(X,Y), S(Z,W)");
  auto tree = BuildJoinTree(q);
  ASSERT_TRUE(tree.has_value());
  EXPECT_TRUE(HasRunningIntersection(q, *tree));
  int roots = 0;
  for (int i = 0; i < tree->num_nodes(); ++i) {
    if (tree->IsRoot(i)) ++roots;
  }
  EXPECT_GE(roots, 1);
}

TEST(JoinTree, BottomUpOrderRespectsParents) {
  Query q = Parse(
      "cast_info(M,P,R), title(M,KT), name(P), role_type(R), kind_type(KT)");
  auto tree = BuildJoinTree(q);
  ASSERT_TRUE(tree.has_value());
  std::vector<bool> seen(q.num_atoms(), false);
  for (int i : tree->bottom_up) {
    if (!tree->IsRoot(i)) {
      EXPECT_FALSE(seen[tree->parent[i]]) << "parent before child";
    }
    seen[i] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(JoinTree, AllJobQueriesHaveTrees) {
  for (const std::string& text : JobQueryTexts()) {
    Query q = Parse(text);
    auto tree = BuildJoinTree(q);
    ASSERT_TRUE(tree.has_value()) << text;
    EXPECT_TRUE(HasRunningIntersection(q, *tree)) << text;
  }
}

Catalog RandomDb(Rng& rng, const std::vector<std::string>& names, int rows,
                 int domain) {
  Catalog db;
  ZipfSampler zipf(domain, 0.4);
  for (const std::string& name : names) {
    Relation r(name, {"a", "b"});
    for (int i = 0; i < rows; ++i) {
      r.AddRow({zipf.Sample(rng), zipf.Sample(rng)});
    }
    r.Deduplicate();
    db.Add(std::move(r));
  }
  return db;
}

TEST(Yannakakis, MatchesGenericJoinOnPaths) {
  Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    Catalog db = RandomDb(rng, {"R", "S", "T"}, 60, 10);
    for (const char* text :
         {"R(X,Y), S(Y,Z)", "R(X,Y), S(Y,Z), T(Z,W)"}) {
      Query q = Parse(text);
      auto fast = CountAcyclic(q, db);
      ASSERT_TRUE(fast.has_value()) << text;
      EXPECT_EQ(*fast, CountJoin(q, db)) << text << " trial " << trial;
    }
  }
}

TEST(Yannakakis, MatchesGenericJoinOnStars) {
  Rng rng(22);
  Catalog db = RandomDb(rng, {"R", "S", "T"}, 80, 12);
  Query q = Parse("R(M,A), S(M,B), T(M,C)");
  auto fast = CountAcyclic(q, db);
  ASSERT_TRUE(fast.has_value());
  EXPECT_EQ(*fast, CountJoin(q, db));
}

TEST(Yannakakis, RefusesCyclicQueries) {
  Rng rng(23);
  Catalog db = RandomDb(rng, {"R", "S", "T"}, 40, 8);
  EXPECT_FALSE(CountAcyclic(Parse("R(X,Y), S(Y,Z), T(Z,X)"), db).has_value());
}

TEST(Yannakakis, SelfJoins) {
  Rng rng(24);
  Catalog db = RandomDb(rng, {"R"}, 70, 10);
  for (const char* text : {"R(X,Y), R(Y,Z)", "R(X,Y), R(Z,Y)"}) {
    Query q = Parse(text);
    auto fast = CountAcyclic(q, db);
    ASSERT_TRUE(fast.has_value()) << text;
    EXPECT_EQ(*fast, CountJoin(q, db)) << text;
  }
}

TEST(Yannakakis, CartesianProductForest) {
  Catalog db;
  Relation r("R", {"x"});
  r.AddRow({1});
  r.AddRow({2});
  Relation s("S", {"y"});
  for (Value i = 0; i < 5; ++i) s.AddRow({i});
  db.Add(std::move(r));
  db.Add(std::move(s));
  auto fast = CountAcyclic(Parse("R(X), S(Y)"), db);
  ASSERT_TRUE(fast.has_value());
  EXPECT_EQ(*fast, 10u);
}

TEST(Yannakakis, EmptyRelationPropagates) {
  Catalog db;
  db.Add(Relation("R", {"x", "y"}));
  Relation s("S", {"y", "z"});
  s.AddRow({1, 2});
  db.Add(std::move(s));
  auto fast = CountAcyclic(Parse("R(X,Y), S(Y,Z)"), db);
  ASSERT_TRUE(fast.has_value());
  EXPECT_EQ(*fast, 0u);
}

TEST(Yannakakis, RepeatedVariableSelection) {
  Catalog db;
  Relation r("R", {"x", "y"});
  r.AddRow({1, 1});
  r.AddRow({1, 2});
  r.AddRow({3, 3});
  db.Add(std::move(r));
  Relation s("S", {"x", "z"});
  s.AddRow({1, 9});
  s.AddRow({3, 9});
  db.Add(std::move(s));
  Query q = Parse("R(X,X), S(X,Z)");
  auto fast = CountAcyclic(q, db);
  ASSERT_TRUE(fast.has_value());
  EXPECT_EQ(*fast, CountJoin(q, db));
  EXPECT_EQ(*fast, 2u);
}

TEST(Yannakakis, MatchesGenericJoinOnJobWorkload) {
  JobWorkloadOptions opt;
  opt.scale = 0.05;
  JobWorkload wl = GenerateJobWorkload(opt);
  for (int idx : {0, 3, 6, 8, 20, 27, 32}) {
    const Query& q = wl.queries[idx];
    auto fast = CountAcyclic(q, wl.catalog);
    ASSERT_TRUE(fast.has_value()) << q.name();
    EXPECT_EQ(*fast, CountJoin(q, wl.catalog)) << q.name();
  }
}

TEST(Yannakakis, TernaryAtoms) {
  Rng rng(25);
  Catalog db;
  Relation r("R", {"a", "b", "c"});
  for (int i = 0; i < 60; ++i) {
    r.AddRow({rng.Uniform(5), rng.Uniform(5), rng.Uniform(5)});
  }
  r.Deduplicate();
  db.Add(std::move(r));
  Relation s("S", {"b", "c", "d"});
  for (int i = 0; i < 60; ++i) {
    s.AddRow({rng.Uniform(5), rng.Uniform(5), rng.Uniform(5)});
  }
  s.Deduplicate();
  db.Add(std::move(s));
  Query q = Parse("R(A,B,C), S(B,C,D)");
  auto fast = CountAcyclic(q, db);
  ASSERT_TRUE(fast.has_value());
  EXPECT_EQ(*fast, CountJoin(q, db));
}

}  // namespace
}  // namespace lpb
