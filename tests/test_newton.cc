#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bounds/newton.h"
#include "relation/degree_sequence.h"
#include "util/random.h"

namespace lpb {
namespace {

TEST(Newton, PowerSumsMatchHandComputation) {
  DegreeSequence d({3, 2, 1});
  auto s = PowerSums(d, 3);
  EXPECT_NEAR(s[0], 6.0, 1e-9);    // 3+2+1
  EXPECT_NEAR(s[1], 14.0, 1e-9);   // 9+4+1
  EXPECT_NEAR(s[2], 36.0, 1e-9);   // 27+8+1
}

TEST(Newton, ElementarySymmetricFromPowerSums) {
  // d = (3,2,1): e1 = 6, e2 = 11, e3 = 6.
  auto e = ElementarySymmetric({6.0, 14.0, 36.0});
  ASSERT_EQ(e.size(), 3u);
  EXPECT_NEAR(e[0], 6.0, 1e-9);
  EXPECT_NEAR(e[1], 11.0, 1e-9);
  EXPECT_NEAR(e[2], 6.0, 1e-9);
}

TEST(Newton, RoundTripSmallSequences) {
  // Lemma A.1: the first m norms determine the sequence exactly.
  std::vector<std::vector<uint64_t>> cases = {
      {5}, {4, 2}, {3, 2, 1}, {7, 7, 7}, {9, 5, 2, 1}, {6, 4, 4, 2, 1},
  };
  for (const auto& degrees : cases) {
    DegreeSequence d{std::vector<uint64_t>(degrees)};
    auto sums = PowerSums(d, static_cast<int>(degrees.size()));
    auto rec = DegreesFromPowerSums(sums);
    ASSERT_EQ(rec.size(), degrees.size());
    for (size_t i = 0; i < degrees.size(); ++i) {
      EXPECT_NEAR(rec[i], static_cast<double>(d.degrees()[i]), 1e-6)
          << "sequence index " << i;
    }
  }
}

TEST(Newton, RoundTripRandomSequences) {
  Rng rng(71);
  for (int trial = 0; trial < 20; ++trial) {
    const int m = 2 + static_cast<int>(rng.Uniform(5));
    std::vector<uint64_t> degrees(m);
    for (auto& deg : degrees) deg = 1 + rng.Uniform(20);
    DegreeSequence d{std::vector<uint64_t>(degrees)};
    auto rec = DegreesFromPowerSums(PowerSums(d, m));
    ASSERT_EQ(rec.size(), static_cast<size_t>(m)) << "trial " << trial;
    for (int i = 0; i < m; ++i) {
      EXPECT_NEAR(rec[i], static_cast<double>(d.degrees()[i]), 1e-4)
          << "trial " << trial;
    }
  }
}

TEST(Newton, MonotoneDirectionOfTheCorrespondence) {
  // Appendix C.3's caveat: norm-domination does NOT imply degree-sequence
  // domination. d' = (a, a) has smaller or equal ℓ1/ℓ2 than d = (a+e, a-e)
  // yet d'_2 > d_2.
  DegreeSequence d({6, 2});   // a=4, e=2
  DegreeSequence dp({4, 4});
  EXPECT_LE(dp.NormP(1.0), d.NormP(1.0) + 1e-12);
  EXPECT_LE(dp.NormP(2.0), d.NormP(2.0) + 1e-12);
  EXPECT_FALSE(dp.DominatedBy(d));  // 4 > 2 in the second position
}

TEST(Newton, EmptyInput) {
  EXPECT_TRUE(DegreesFromPowerSums({}).empty());
}

TEST(Newton, SingleElement) {
  auto rec = DegreesFromPowerSums({42.0});
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_NEAR(rec[0], 42.0, 1e-9);
}

TEST(Newton, NormsDetermineSequenceUniquely) {
  // Two different sequences of equal length must differ in some norm p<=m.
  DegreeSequence a({5, 3, 2});
  DegreeSequence b({5, 4, 1});
  auto sa = PowerSums(a, 3), sb = PowerSums(b, 3);
  bool differ = false;
  for (int p = 0; p < 3; ++p) {
    if (std::abs(sa[p] - sb[p]) > 1e-9) differ = true;
  }
  EXPECT_TRUE(differ);
}

}  // namespace
}  // namespace lpb
