#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "exec/generic_join.h"
#include "exec/hash_join.h"
#include "exec/partition.h"
#include "query/parser.h"
#include "relation/catalog.h"
#include "relation/degree_sequence.h"
#include "util/random.h"

namespace lpb {
namespace {

Query Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.has_value());
  return *q;
}

Catalog RandomBinaryDb(Rng& rng, const std::vector<std::string>& names,
                       int rows, int domain) {
  Catalog db;
  for (const std::string& name : names) {
    Relation r(name, {"a", "b"});
    for (int i = 0; i < rows; ++i) {
      r.AddRow({rng.Uniform(domain), rng.Uniform(domain)});
    }
    r.Deduplicate();
    db.Add(std::move(r));
  }
  return db;
}

// Brute-force evaluator for cross-checks: enumerates the variable domain.
uint64_t BruteForceCount(const Query& q, const Catalog& db, int domain) {
  const int n = q.num_vars();
  std::vector<Value> assignment(n, 0);
  uint64_t count = 0;
  while (true) {
    bool ok = true;
    for (const Atom& atom : q.atoms()) {
      const Relation& rel = db.Get(atom.relation);
      bool found = false;
      for (size_t r = 0; r < rel.NumRows() && !found; ++r) {
        bool match = true;
        for (size_t j = 0; j < atom.vars.size(); ++j) {
          if (rel.At(r, static_cast<int>(j)) != assignment[atom.vars[j]]) {
            match = false;
            break;
          }
        }
        found = match;
      }
      if (!found) {
        ok = false;
        break;
      }
    }
    if (ok) ++count;
    int i = 0;
    for (; i < n; ++i) {
      if (++assignment[i] < static_cast<Value>(domain)) break;
      assignment[i] = 0;
    }
    if (i == n) break;
  }
  return count;
}

TEST(GenericJoin, SingleJoinHandChecked) {
  Catalog db;
  Relation r("R", {"x", "y"});
  r.AddRow({1, 10});
  r.AddRow({2, 10});
  r.AddRow({3, 11});
  db.Add(std::move(r));
  Relation s("S", {"y", "z"});
  s.AddRow({10, 7});
  s.AddRow({10, 8});
  s.AddRow({12, 9});
  db.Add(std::move(s));
  Query q = Parse("R(X,Y), S(Y,Z)");
  EXPECT_EQ(CountJoin(q, db), 4u);  // y=10: 2 x 2
}

TEST(GenericJoin, TriangleHandChecked) {
  Catalog db;
  Relation e("E", {"a", "b"});
  // Triangle 1-2-3 plus a dangling edge.
  for (auto [a, b] : std::vector<std::pair<Value, Value>>{
           {1, 2}, {2, 1}, {2, 3}, {3, 2}, {1, 3}, {3, 1}, {4, 1}}) {
    e.AddRow({a, b});
  }
  db.Add(std::move(e));
  Query q = Parse("E(X,Y), E(Y,Z), E(Z,X)");
  EXPECT_EQ(CountJoin(q, db), 6u);  // 3! orientations of the one triangle
}

TEST(GenericJoin, MaterializeMatchesCount) {
  Rng rng(3);
  Catalog db = RandomBinaryDb(rng, {"R", "S"}, 60, 8);
  Query q = Parse("R(X,Y), S(Y,Z)");
  Relation out = MaterializeJoin(q, db);
  EXPECT_EQ(out.NumRows(), CountJoin(q, db));
  EXPECT_EQ(out.arity(), 3);
  // Spot-check membership of a few output rows.
  for (size_t i = 0; i < std::min<size_t>(out.NumRows(), 5); ++i) {
    bool in_r = false;
    const Relation& r = db.Get("R");
    for (size_t j = 0; j < r.NumRows(); ++j) {
      if (r.At(j, 0) == out.At(i, 0) && r.At(j, 1) == out.At(i, 1)) {
        in_r = true;
      }
    }
    EXPECT_TRUE(in_r);
  }
}

TEST(GenericJoin, EmptyInputEmptyOutput) {
  Catalog db;
  db.Add(Relation("R", {"x", "y"}));
  Relation s("S", {"y", "z"});
  s.AddRow({1, 2});
  db.Add(std::move(s));
  Query q = Parse("R(X,Y), S(Y,Z)");
  EXPECT_EQ(CountJoin(q, db), 0u);
}

TEST(GenericJoin, CartesianProduct) {
  Catalog db;
  Relation r("R", {"x"});
  r.AddRow({1});
  r.AddRow({2});
  Relation s("S", {"y"});
  s.AddRow({5});
  s.AddRow({6});
  s.AddRow({7});
  db.Add(std::move(r));
  db.Add(std::move(s));
  EXPECT_EQ(CountJoin(Parse("R(X), S(Y)"), db), 6u);
}

TEST(GenericJoin, RepeatedVariableSelection) {
  Catalog db;
  Relation r("R", {"x", "y"});
  r.AddRow({1, 1});
  r.AddRow({1, 2});
  r.AddRow({3, 3});
  db.Add(std::move(r));
  EXPECT_EQ(CountJoin(Parse("R(X,X)"), db), 2u);
}

TEST(GenericJoin, SelfJoinPath) {
  Catalog db;
  Relation r("R", {"x", "y"});
  r.AddRow({1, 2});
  r.AddRow({2, 3});
  r.AddRow({2, 4});
  db.Add(std::move(r));
  // Paths of length 2: (1,2,3), (1,2,4).
  EXPECT_EQ(CountJoin(Parse("R(X,Y), R(Y,Z)"), db), 2u);
}

TEST(GenericJoin, AgreesWithBruteForceOnRandomTriangles) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Catalog db = RandomBinaryDb(rng, {"R", "S", "T"}, 25, 5);
    Query q = Parse("R(X,Y), S(Y,Z), T(Z,X)");
    EXPECT_EQ(CountJoin(q, db), BruteForceCount(q, db, 5)) << trial;
  }
}

TEST(GenericJoin, AgreesWithBruteForceOnRandomPaths) {
  Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    Catalog db = RandomBinaryDb(rng, {"R", "S", "T"}, 30, 6);
    Query q = Parse("R(X,Y), S(Y,Z), T(Z,W)");
    EXPECT_EQ(CountJoin(q, db), BruteForceCount(q, db, 6)) << trial;
  }
}

TEST(GenericJoin, TernaryAtomsLoomisWhitney) {
  Rng rng(7);
  Catalog db;
  for (const char* name : {"A", "B", "C"}) {
    Relation r(name, {"u", "v", "w"});
    for (int i = 0; i < 40; ++i) {
      r.AddRow({rng.Uniform(4), rng.Uniform(4), rng.Uniform(4)});
    }
    r.Deduplicate();
    db.Add(std::move(r));
  }
  Query q = Parse("A(X,Y,Z), B(Y,Z,W), C(Z,W,X)");
  EXPECT_EQ(CountJoin(q, db), BruteForceCount(q, db, 4));
}

TEST(GenericJoin, CustomVariableOrderSameResult) {
  Rng rng(8);
  Catalog db = RandomBinaryDb(rng, {"R", "S", "T"}, 40, 7);
  Query q = Parse("R(X,Y), S(Y,Z), T(Z,X)");
  const uint64_t expected = CountJoin(q, db);
  JoinOptions opt;
  std::vector<int> order = {0, 1, 2};
  std::sort(order.begin(), order.end());
  do {
    opt.var_order = order;
    EXPECT_EQ(CountJoin(q, db, opt), expected);
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(HashJoin, MatchesGenericJoin) {
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    Catalog db = RandomBinaryDb(rng, {"R", "S", "T"}, 40, 6);
    for (const char* text :
         {"R(X,Y), S(Y,Z)", "R(X,Y), S(Y,Z), T(Z,X)",
          "R(X,Y), S(Y,Z), T(Z,W)"}) {
      Query q = Parse(text);
      EXPECT_EQ(CountByHashJoin(q, db).output_count, CountJoin(q, db))
          << text;
    }
  }
}

TEST(HashJoin, ReportsIntermediateSizes) {
  Catalog db;
  Relation r("R", {"x", "y"});
  for (Value i = 0; i < 10; ++i) r.AddRow({i, 0});
  Relation s("S", {"y", "z"});
  for (Value i = 0; i < 10; ++i) s.AddRow({0, i});
  Relation t("T", {"z", "w"});
  t.AddRow({999, 999});
  db.Add(std::move(r));
  db.Add(std::move(s));
  db.Add(std::move(t));
  Query q = Parse("R(X,Y), S(Y,Z), T(Z,W)");
  HashJoinStats stats = CountByHashJoin(q, db);
  EXPECT_EQ(stats.output_count, 0u);
  // The blown-up intermediate is visible even though the output is empty.
  ASSERT_EQ(stats.intermediate_sizes.size(), 3u);
  EXPECT_EQ(stats.intermediate_sizes[1], 100u);
}

TEST(HashJoin, AtomOrderDoesNotChangeResult) {
  Rng rng(10);
  Catalog db = RandomBinaryDb(rng, {"R", "S", "T"}, 35, 6);
  Query q = Parse("R(X,Y), S(Y,Z), T(Z,X)");
  const uint64_t expected = CountByHashJoin(q, db).output_count;
  EXPECT_EQ(CountByHashJoin(q, db, {2, 0, 1}).output_count, expected);
  EXPECT_EQ(CountByHashJoin(q, db, {1, 2, 0}).output_count, expected);
}

TEST(HashJoin, RejectsWrongLengthAtomOrder) {
  Rng rng(16);
  Catalog db = RandomBinaryDb(rng, {"R", "S", "T"}, 30, 6);
  Query q = Parse("R(X,Y), S(Y,Z), T(Z,X)");
  HashJoinStats stats = CountByHashJoin(q, db, {0, 1});
  EXPECT_FALSE(stats.ok);
  EXPECT_EQ(stats.output_count, 0u);
  EXPECT_TRUE(stats.intermediate_sizes.empty());
  EXPECT_NE(stats.error.find("length"), std::string::npos) << stats.error;
}

TEST(HashJoin, RejectsOutOfRangeAtomOrder) {
  Rng rng(17);
  Catalog db = RandomBinaryDb(rng, {"R", "S", "T"}, 30, 6);
  Query q = Parse("R(X,Y), S(Y,Z), T(Z,X)");
  HashJoinStats high = CountByHashJoin(q, db, {0, 1, 3});
  EXPECT_FALSE(high.ok);
  EXPECT_TRUE(high.intermediate_sizes.empty());
  EXPECT_NE(high.error.find("out of range"), std::string::npos) << high.error;
  HashJoinStats negative = CountByHashJoin(q, db, {0, -1, 2});
  EXPECT_FALSE(negative.ok);
  EXPECT_NE(negative.error.find("out of range"), std::string::npos)
      << negative.error;
}

TEST(HashJoin, RejectsDuplicateAtomOrder) {
  Rng rng(18);
  Catalog db = RandomBinaryDb(rng, {"R", "S", "T"}, 30, 6);
  Query q = Parse("R(X,Y), S(Y,Z), T(Z,X)");
  // A duplicate both double-joins atom 1 and silently drops atom 2 — before
  // validation this returned a wrong count instead of an error.
  HashJoinStats stats = CountByHashJoin(q, db, {0, 1, 1});
  EXPECT_FALSE(stats.ok);
  EXPECT_EQ(stats.output_count, 0u);
  EXPECT_TRUE(stats.intermediate_sizes.empty());
  EXPECT_NE(stats.error.find("repeats"), std::string::npos) << stats.error;
}

TEST(HashJoin, RejectsEmptyQuery) {
  Catalog db;
  Query q("empty");
  HashJoinStats stats = CountByHashJoin(q, db);
  EXPECT_FALSE(stats.ok);
  EXPECT_EQ(stats.output_count, 0u);
  EXPECT_TRUE(stats.intermediate_sizes.empty());
}

TEST(HashJoin, ValidExplicitOrderStaysOk) {
  Rng rng(19);
  Catalog db = RandomBinaryDb(rng, {"R", "S", "T"}, 30, 6);
  Query q = Parse("R(X,Y), S(Y,Z), T(Z,X)");
  HashJoinStats stats = CountByHashJoin(q, db, {2, 0, 1});
  EXPECT_TRUE(stats.ok);
  EXPECT_TRUE(stats.error.empty());
  EXPECT_EQ(stats.output_count, CountByHashJoin(q, db).output_count);
}

TEST(Partition, StrongSatisfactionCheck) {
  // deg = (4,1): ||deg||_2^2 = 17. Strong satisfaction needs
  // |Π_U| · max^2 <= B^2: 2 * 16 = 32 > 17 -> not strong for B = sqrt(17).
  Relation r("R", {"u", "v"});
  for (Value j = 0; j < 4; ++j) r.AddRow({0, j});
  r.AddRow({1, 9});
  const double log_b = 0.5 * std::log2(17.0);
  EXPECT_FALSE(StronglySatisfiesLog2(r, {0}, {1}, 2.0, log_b));
  // A uniform relation strongly satisfies its own ℓp statistic.
  Relation u("U", {"u", "v"});
  for (Value i = 0; i < 4; ++i) {
    for (Value j = 0; j < 3; ++j) u.AddRow({i, 100 + j});
  }
  const double log_b2 =
      ComputeDegreeSequence(u, {0}, {1}).Log2NormP(2.0);
  EXPECT_TRUE(StronglySatisfiesLog2(u, {0}, {1}, 2.0, log_b2));
}

TEST(Partition, PartsAreDisjointAndCoverRelation) {
  Rng rng(11);
  Relation r("R", {"u", "v"});
  for (int i = 0; i < 200; ++i) {
    r.AddRow({rng.Uniform(20), rng.Uniform(50)});
  }
  r.Deduplicate();
  auto parts = PartitionStrong(r, {0}, {1}, 2.0);
  size_t total = 0;
  for (const Relation& p : parts) total += p.NumRows();
  EXPECT_EQ(total, r.NumRows());
}

TEST(Partition, EveryPartStronglySatisfies) {
  // Lemma 2.5's guarantee.
  Rng rng(12);
  for (double p : {1.0, 2.0, 3.0}) {
    Relation r("R", {"u", "v"});
    for (int i = 0; i < 300; ++i) {
      // Heavy skew: u = 0 is a big hub.
      const Value u = rng.Bernoulli(0.3) ? 0 : rng.Uniform(40);
      r.AddRow({u, rng.Uniform(80)});
    }
    r.Deduplicate();
    const double log_b = ComputeDegreeSequence(r, {0}, {1}).Log2NormP(p);
    auto parts = PartitionStrong(r, {0}, {1}, p);
    for (const Relation& part : parts) {
      EXPECT_TRUE(StronglySatisfiesLog2(part, {0}, {1}, p, log_b))
          << "p=" << p;
    }
  }
}

TEST(Partition, PartitionedCountEqualsDirectCount) {
  Rng rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    Catalog db = RandomBinaryDb(rng, {"R", "S"}, 80, 10);
    Query q = Parse("R(X,Y), S(Y,Z)");
    std::vector<PartitionSpec> specs = {
        {0, {1}, {0}, 2.0},  // partition R on deg(X|Y)
        {1, {0}, {1}, 2.0},  // partition S on deg(Z|Y)
    };
    auto result = CountJoinPartitioned(q, db, specs);
    EXPECT_EQ(result.count, CountJoin(q, db)) << trial;
    EXPECT_GE(result.subqueries, 1u);
  }
}

TEST(Partition, PartitionedTriangleCount) {
  Rng rng(14);
  Catalog db = RandomBinaryDb(rng, {"E"}, 150, 15);
  Query q = Parse("E(X,Y), E(Y,Z), E(Z,X)");
  std::vector<PartitionSpec> specs = {{0, {0}, {1}, 2.0}};
  auto result = CountJoinPartitioned(q, db, specs);
  EXPECT_EQ(result.count, CountJoin(q, db));
}

TEST(Partition, NoSpecsReducesToPlainJoin) {
  Rng rng(15);
  Catalog db = RandomBinaryDb(rng, {"R", "S"}, 50, 8);
  Query q = Parse("R(X,Y), S(Y,Z)");
  auto result = CountJoinPartitioned(q, db, {});
  EXPECT_EQ(result.count, CountJoin(q, db));
  EXPECT_EQ(result.subqueries, 1u);
}

}  // namespace
}  // namespace lpb
