// The kernel layer's bitwise contract (lp/kernels.h).
//
// Every dispatched double kernel promises bit-identical results between
// the scalar table and whatever GetLpKernels(kAuto) dispatches to on this
// machine — the AVX2+FMA variants realize the exact scalar operation
// order, not an approximation of it. These tests drive each kernel across
// every size in [1, 67] (covering all vector-remainder classes several
// times over) and every misalignment of the inputs, because the AVX2
// variants use unaligned loads and a regression here would be silent on
// aligned-only data. On machines without AVX2+FMA both tables are the
// scalar one and the comparisons hold trivially.
//
// Also here: the Arena allocator the backends use for kernel-fed scratch
// (alignment, reuse-after-reset, capacity stability), and the blocked
// FTRAN's lane-for-lane bitwise equivalence with the solo FTRAN.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "lp/kernels.h"
#include "lp/lu_basis.h"
#include "lp/sparse_matrix.h"
#include "util/arena.h"
#include "util/random.h"

namespace lpb {
namespace {

constexpr int kMaxN = 67;   // > 16 AVX2 iterations + every remainder class
constexpr int kMaxOff = 4;  // misalignment offsets, in elements

// Deterministic fill with values of mixed magnitude and sign (subnormals
// and huge values excluded: the contract is about operation order, not
// about exotic ranges the LP never produces).
std::vector<double> RandomVec(Rng& rng, int n, int off) {
  std::vector<double> v(n + off);
  for (double& x : v) {
    x = (rng.NextDouble() - 0.5) * std::ldexp(1.0, int(rng.Next() % 40) - 20);
  }
  return v;
}

TEST(LpKernels, AxpyBitwiseParityAcrossSizesAndAlignments) {
  const LpKernels& scalar = GetLpKernels(SimdMode::kScalar);
  const LpKernels& dispatch = GetLpKernels(SimdMode::kAuto);
  Rng rng(101);
  for (int n = 1; n <= kMaxN; ++n) {
    for (int off = 0; off < kMaxOff; ++off) {
      const std::vector<double> x = RandomVec(rng, n, off);
      const std::vector<double> y0 = RandomVec(rng, n, off);
      const double a = rng.NextDouble() * 4.0 - 2.0;
      std::vector<double> ys = y0;
      std::vector<double> yv = y0;
      scalar.axpy_d(a, x.data() + off, ys.data() + off, n);
      dispatch.axpy_d(a, x.data() + off, yv.data() + off, n);
      for (int i = 0; i < n + off; ++i) {
        ASSERT_EQ(ys[i], yv[i]) << "n=" << n << " off=" << off << " i=" << i;
      }
    }
  }
}

TEST(LpKernels, DotBitwiseParityAcrossSizesAndAlignments) {
  const LpKernels& scalar = GetLpKernels(SimdMode::kScalar);
  const LpKernels& dispatch = GetLpKernels(SimdMode::kAuto);
  Rng rng(202);
  for (int n = 1; n <= kMaxN; ++n) {
    for (int off = 0; off < kMaxOff; ++off) {
      const std::vector<double> x = RandomVec(rng, n, off);
      const std::vector<double> y = RandomVec(rng, n, off);
      const double s = scalar.dot_d(x.data() + off, y.data() + off, n);
      const double v = dispatch.dot_d(x.data() + off, y.data() + off, n);
      // Bitwise, not approximate: the four-accumulator layout is part of
      // the contract precisely so this comparison can be ==.
      ASSERT_EQ(s, v) << "n=" << n << " off=" << off;
    }
  }
}

TEST(LpKernels, NormalizeRhsBitwiseParityAcrossSizesAndAlignments) {
  const LpKernels& scalar = GetLpKernels(SimdMode::kScalar);
  const LpKernels& dispatch = GetLpKernels(SimdMode::kAuto);
  Rng rng(303);
  for (int n = 1; n <= kMaxN; ++n) {
    for (int off = 0; off < kMaxOff; ++off) {
      std::vector<double> sign(n + off);
      for (double& s : sign) s = rng.Bernoulli(0.5) ? 1.0 : -1.0;
      const std::vector<double> b = RandomVec(rng, n, off);
      std::vector<double> term = RandomVec(rng, n, off);
      // The perturb = 0 case (term identically +0.0) is the hot one.
      if (n % 3 == 0) std::fill(term.begin(), term.end(), 0.0);
      std::vector<double> outs(n + off, -1.0);
      std::vector<double> outv(n + off, -1.0);
      scalar.normalize_rhs_d(sign.data() + off, b.data() + off,
                             term.data() + off, outs.data() + off, n);
      dispatch.normalize_rhs_d(sign.data() + off, b.data() + off,
                               term.data() + off, outv.data() + off, n);
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(outs[off + i], outv[off + i])
            << "n=" << n << " off=" << off << " i=" << i;
      }
    }
  }
}

TEST(LpKernels, EqualAgreesWithScalarSemantics) {
  const LpKernels& scalar = GetLpKernels(SimdMode::kScalar);
  const LpKernels& dispatch = GetLpKernels(SimdMode::kAuto);
  Rng rng(404);
  for (int n = 1; n <= kMaxN; ++n) {
    for (int off = 0; off < kMaxOff; ++off) {
      const std::vector<double> x = RandomVec(rng, n, off);
      std::vector<double> y = x;
      EXPECT_TRUE(scalar.equal_d(x.data() + off, y.data() + off, n));
      EXPECT_TRUE(dispatch.equal_d(x.data() + off, y.data() + off, n));
      // A single flipped element at every position must be caught by both
      // variants — this is what guards the unchanged-RHS fast exit.
      for (int i = 0; i < n; ++i) {
        y[off + i] = x[off + i] + 1.0;
        EXPECT_FALSE(scalar.equal_d(x.data() + off, y.data() + off, n))
            << "n=" << n << " i=" << i;
        EXPECT_FALSE(dispatch.equal_d(x.data() + off, y.data() + off, n))
            << "n=" << n << " i=" << i;
        y[off + i] = x[off + i];
      }
    }
  }
}

TEST(LpKernels, EqualTreatsNanAsUnequalAndSignedZeroAsEqual) {
  const LpKernels& scalar = GetLpKernels(SimdMode::kScalar);
  const LpKernels& dispatch = GetLpKernels(SimdMode::kAuto);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (int n : {1, 3, 4, 5, 8, 11}) {
    std::vector<double> x(n, 1.0);
    std::vector<double> y(n, 1.0);
    // NaN != NaN per IEEE — an x vector that went NaN must never be
    // reported "unchanged" (the fast exit would then serve garbage).
    x[n / 2] = nan;
    y[n / 2] = nan;
    EXPECT_FALSE(scalar.equal_d(x.data(), y.data(), n)) << "n=" << n;
    EXPECT_FALSE(dispatch.equal_d(x.data(), y.data(), n)) << "n=" << n;
    // -0.0 == +0.0 per IEEE: a sign-of-zero difference is not a change.
    x[n / 2] = 0.0;
    y[n / 2] = -0.0;
    EXPECT_TRUE(scalar.equal_d(x.data(), y.data(), n)) << "n=" << n;
    EXPECT_TRUE(dispatch.equal_d(x.data(), y.data(), n)) << "n=" << n;
  }
}

TEST(LpKernels, CallCountersBumpPerInvocation) {
  const LpKernels& k = GetLpKernels(SimdMode::kAuto);
  double x[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  double y[8] = {8, 7, 6, 5, 4, 3, 2, 1};
  const LpKernelCounters base = g_lp_kernel_counters;
  LpAxpyD(k, 0.5, x, y, 8);
  (void)LpDotD(k, x, y, 8);
  (void)LpDotD(k, x, y, 8);
  (void)LpEqualD(k, x, y, 8);
  EXPECT_EQ(g_lp_kernel_counters.calls[kLpKernelAxpy] -
                base.calls[kLpKernelAxpy], 1u);
  EXPECT_EQ(g_lp_kernel_counters.calls[kLpKernelDot] -
                base.calls[kLpKernelDot], 2u);
  EXPECT_EQ(g_lp_kernel_counters.calls[kLpKernelEqual] -
                base.calls[kLpKernelEqual], 1u);
}

TEST(LpKernels, DispatchNameMatchesCpu) {
  EXPECT_STREQ(LpKernelDispatchName(SimdMode::kScalar), "scalar");
  const char* auto_name = LpKernelDispatchName(SimdMode::kAuto);
  if (CpuHasAvx2Fma()) {
    EXPECT_STREQ(auto_name, "avx2");
    // Distinct tables: the parity tests above were not comparing a
    // function against itself.
    EXPECT_NE(GetLpKernels(SimdMode::kAuto).dot_d,
              GetLpKernels(SimdMode::kScalar).dot_d);
  } else {
    EXPECT_STREQ(auto_name, "scalar");
  }
}

// ---------------------------------------------------------------------------
// Arena

TEST(Arena, AlignmentAndReuseAfterReset) {
  Arena arena(1 << 12);
  std::vector<void*> first;
  for (int round = 0; round < 3; ++round) {
    arena.Reset();
    std::vector<void*> got;
    // Mixed sizes, including deliberately unround ones.
    for (std::size_t count : {7u, 64u, 1u, 33u, 256u}) {
      double* p = arena.AllocArray<double>(count);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kArenaAlign, 0u)
          << "count=" << count;
      // The block is genuinely writable end to end.
      for (std::size_t i = 0; i < count; ++i) p[i] = double(i);
      got.push_back(p);
    }
    long double* q = arena.AllocArray<long double>(19);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % kArenaAlign, 0u);
    got.push_back(q);
    if (round == 0) {
      first = got;
    } else {
      // Same allocation sequence after Reset => same pointers: the steady
      // state of repeated Builds touches the allocator not at all.
      EXPECT_EQ(got, first) << "round " << round;
    }
  }
}

TEST(Arena, CapacityStableAcrossResetCycles) {
  Arena arena(1 << 10);
  auto cycle = [&] {
    arena.Reset();
    arena.AllocArray<double>(100);
    arena.AllocArray<double>(500);  // spills into a second chunk
    arena.AllocArray<long double>(40);
  };
  cycle();
  const std::size_t cap = arena.CapacityBytes();
  EXPECT_GT(cap, 0u);
  for (int i = 0; i < 10; ++i) cycle();
  // No growth while the request shapes repeat.
  EXPECT_EQ(arena.CapacityBytes(), cap);
}

TEST(Arena, OversizeRequestGetsDedicatedChunk) {
  Arena arena(64);  // tiny chunks so a big request must outgrow one
  double* big = arena.AllocArray<double>(4096);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big) % kArenaAlign, 0u);
  big[0] = 1.0;
  big[4095] = 2.0;
  EXPECT_EQ(big[0], 1.0);
  EXPECT_EQ(big[4095], 2.0);
}

// ---------------------------------------------------------------------------
// Blocked FTRAN vs solo FTRAN

// A random well-conditioned m x m basis: identity diagonal plus sparse
// off-diagonal noise, factorized as columns 0..m-1 of a SparseMatrix.
void BuildRandomBasis(Rng& rng, int m, SparseMatrix& a,
                      std::vector<int>& basis) {
  a = SparseMatrix(m);
  basis.resize(m);
  for (int j = 0; j < m; ++j) {
    std::vector<SparseEntry> col;
    col.push_back({j, 1.0 + rng.NextDouble()});
    for (int i = 0; i < m; ++i) {
      if (i != j && rng.Bernoulli(0.2)) {
        col.push_back({i, rng.NextDouble() - 0.5});
      }
    }
    basis[j] = a.AppendColumn(std::move(col));
  }
}

TEST(FtranBlock, LanesBitwiseMatchSoloFtran) {
  Rng rng(777);
  for (int m : {1, 2, 5, 13, 32}) {
    SparseMatrix a;
    std::vector<int> basis;
    BuildRandomBasis(rng, m, a, basis);
    LuBasis lu;
    ASSERT_TRUE(lu.Factorize(a, basis)) << "m=" << m;
    for (int lanes = 1; lanes <= LuBasis::kMaxFtranBlockLanes; ++lanes) {
      // Random dense RHS per lane, including exact zeros so the
      // skip-on-zero guards are exercised in both code paths.
      std::vector<std::vector<long double>> rhs(lanes);
      std::vector<long double> block(std::size_t(m) * lanes);
      for (int l = 0; l < lanes; ++l) {
        rhs[l].resize(m);
        for (int i = 0; i < m; ++i) {
          rhs[l][i] = rng.Bernoulli(0.3)
                          ? 0.0L
                          : static_cast<long double>(rng.NextDouble() - 0.5);
          block[std::size_t(i) * lanes + l] = rhs[l][i];
        }
      }
      lu.FtranBlock(block.data(), lanes);
      for (int l = 0; l < lanes; ++l) {
        std::vector<long double> solo = rhs[l];
        lu.Ftran(solo);
        for (int i = 0; i < m; ++i) {
          ASSERT_EQ(solo[i], block[std::size_t(i) * lanes + l])
              << "m=" << m << " lanes=" << lanes << " lane=" << l
              << " i=" << i;
        }
      }
    }
  }
}

}  // namespace
}  // namespace lpb
