#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "datagen/job_gen.h"
#include "exec/generic_join.h"
#include "exec/yannakakis.h"
#include "query/parser.h"
#include "bounds/normal_engine.h"
#include "estimator/advisor.h"
#include "stats/collector.h"
#include "util/random.h"
#include "util/zipf.h"

namespace lpb {
namespace {

Query Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.has_value());
  return *q;
}

Catalog SmallDb(uint64_t seed = 3) {
  Catalog db;
  Rng rng(seed);
  ZipfSampler zipf(15, 0.5);
  for (const char* name : {"R", "S", "T"}) {
    Relation r(name, {"a", "b"});
    for (int i = 0; i < 100; ++i) {
      r.AddRow({zipf.Sample(rng), zipf.Sample(rng)});
    }
    r.Deduplicate();
    db.Add(std::move(r));
  }
  return db;
}

TEST(Advisor, MatchesCollectorPipeline) {
  Catalog db = SmallDb();
  CardinalityAdvisor advisor(db);
  for (const char* text :
       {"R(X,Y), S(Y,Z)", "R(X,Y), S(Y,Z), T(Z,X)", "R(X,Y), R(Y,Z)"}) {
    Query q = Parse(text);
    CollectorOptions copt;
    copt.norms = AdvisorOptions{}.norms;
    auto stats = CollectStatistics(q, db, copt);
    auto expected = LpNormBound(q.num_vars(), stats);
    EXPECT_NEAR(advisor.EstimateLog2(q), expected.log2_bound, 1e-9) << text;
  }
}

TEST(Advisor, EstimatesAreSound) {
  Catalog db = SmallDb(7);
  CardinalityAdvisor advisor(db);
  for (const char* text :
       {"R(X,Y), S(Y,Z)", "R(X,Y), S(Y,Z), T(Z,W)", "R(X,Y), T(Y,X)"}) {
    Query q = Parse(text);
    const uint64_t truth = CountJoin(q, db);
    if (truth == 0) continue;
    EXPECT_GE(advisor.EstimateLog2(q),
              std::log2(static_cast<double>(truth)) - 1e-6)
        << text;
  }
}

TEST(Advisor, CacheIsSharedAcrossQueries) {
  Catalog db = SmallDb();
  CardinalityAdvisor advisor(db);
  advisor.EstimateLog2(Parse("R(X,Y), S(Y,Z)"));
  const size_t after_first = advisor.CacheSize();
  EXPECT_GT(after_first, 0u);
  // The triangle reuses R's and S's sequences; only T's are new.
  advisor.EstimateLog2(Parse("R(X,Y), S(Y,Z), T(Z,X)"));
  const size_t after_second = advisor.CacheSize();
  EXPECT_GT(after_second, after_first);
  // Re-running adds nothing.
  advisor.EstimateLog2(Parse("R(X,Y), S(Y,Z), T(Z,X)"));
  EXPECT_EQ(advisor.CacheSize(), after_second);
}

TEST(Advisor, SelfJoinSharesCacheEntries) {
  Catalog db = SmallDb();
  CardinalityAdvisor advisor(db);
  advisor.EstimateLog2(Parse("R(X,Y), R(Y,Z)"));
  // Two atoms over the same relation with the same column splits: the
  // cache holds entries for R only (cardinality + two conditionals).
  EXPECT_LE(advisor.CacheSize(), 3u);
}

TEST(Advisor, InvalidateDropsOnlyThatRelation) {
  Catalog db = SmallDb();
  CardinalityAdvisor advisor(db);
  advisor.EstimateLog2(Parse("R(X,Y), S(Y,Z)"));
  const size_t full = advisor.CacheSize();
  advisor.Invalidate("R");
  EXPECT_LT(advisor.CacheSize(), full);
  EXPECT_GT(advisor.CacheSize(), 0u);  // S entries survive
}

TEST(Advisor, ExplainProducesCertificate) {
  Catalog db = SmallDb();
  CardinalityAdvisor advisor(db);
  Query q = Parse("R(X,Y), S(Y,Z)");
  auto explanation = advisor.Explain(q);
  ASSERT_TRUE(explanation.bound.ok());
  double certified = 0.0;
  for (size_t i = 0; i < explanation.stats.size(); ++i) {
    certified +=
        explanation.bound.weights[i] * explanation.stats[i].log_b;
    EXPECT_FALSE(explanation.stats[i].label.empty());
  }
  EXPECT_NEAR(certified, explanation.bound.log2_bound, 1e-5);
}

TEST(Advisor, JobWorkloadThroughput) {
  JobWorkloadOptions opt;
  opt.scale = 0.05;
  JobWorkload wl = GenerateJobWorkload(opt);
  CardinalityAdvisor advisor(wl.catalog);
  int sound = 0;
  for (const Query& q : wl.queries) {
    const double est = advisor.EstimateLog2(q);
    auto truth = CountAcyclic(q, wl.catalog);
    ASSERT_TRUE(truth.has_value());
    if (*truth == 0 ||
        est >= std::log2(static_cast<double>(*truth)) - 1e-6) {
      ++sound;
    }
  }
  EXPECT_EQ(sound, static_cast<int>(wl.queries.size()));
  // The cache holds one entry per (relation, column split), far fewer than
  // 33 x per-query statistics.
  EXPECT_LT(advisor.CacheSize(), 100u);
}

TEST(Advisor, RepeatedTemplatesReuseCompiledWitness) {
  Catalog db = SmallDb();
  CardinalityAdvisor advisor(db);
  Query q = Parse("R(X,Y), S(Y,Z), T(Z,X)");
  const double first = advisor.EstimateLog2(q);
  AdvisorMetrics m = advisor.metrics();
  EXPECT_EQ(m.estimates, 1u);
  EXPECT_EQ(m.compiled_misses, 1u);
  EXPECT_EQ(m.cold_solves, 1u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(advisor.EstimateLog2(q), first, 1e-9);
  }
  m = advisor.metrics();
  EXPECT_EQ(m.estimates, 6u);
  EXPECT_EQ(m.compiled_hits, 5u);
  // Unchanged statistics keep the cached basis optimal: pure witness reuse.
  EXPECT_EQ(m.witness_hits, 5u);
  EXPECT_EQ(advisor.CompiledCacheSize(), 1u);
}

TEST(Advisor, SameStructureDifferentRelationsSharesCompiledBound) {
  Catalog db = SmallDb();
  CardinalityAdvisor advisor(db);
  // Same hypergraph + statistic shapes over different relations: one
  // compiled structure, two statistics snapshots.
  advisor.EstimateLog2(Parse("R(X,Y), S(Y,Z)"));
  advisor.EstimateLog2(Parse("S(X,Y), T(Y,Z)"));
  EXPECT_EQ(advisor.CompiledCacheSize(), 1u);
  const AdvisorMetrics m = advisor.metrics();
  EXPECT_EQ(m.compiled_misses, 1u);
  EXPECT_EQ(m.compiled_hits, 1u);
}

TEST(Advisor, ExplainReportsEvalPathAndMetrics) {
  Catalog db = SmallDb();
  CardinalityAdvisor advisor(db);
  Query q = Parse("R(X,Y), S(Y,Z)");
  auto cold = advisor.Explain(q);
  EXPECT_EQ(cold.bound.eval_path, LpEvalPath::kCold);
  EXPECT_EQ(cold.metrics.compiled_misses, 1u);
  auto warm = advisor.Explain(q);
  EXPECT_EQ(warm.bound.eval_path, LpEvalPath::kWitness);
  EXPECT_EQ(warm.metrics.witness_hits, 1u);
  EXPECT_NEAR(warm.bound.log2_bound, cold.bound.log2_bound, 1e-9);
}

TEST(Advisor, InvalidateRefreshesValuesButKeepsCompiledBounds) {
  Catalog db = SmallDb();
  CardinalityAdvisor advisor(db);
  Query q = Parse("R(X,Y), S(Y,Z)");
  const double before = advisor.EstimateLog2(q);
  advisor.Invalidate("R");
  EXPECT_EQ(advisor.CompiledCacheSize(), 1u);  // structure cache survives
  EXPECT_NEAR(advisor.EstimateLog2(q), before, 1e-9);  // same data: same bound
}

TEST(Advisor, ConcurrentEstimatesAreConsistent) {
  Catalog db = SmallDb();
  CardinalityAdvisor advisor(db);
  const std::vector<std::string> texts = {
      "R(X,Y), S(Y,Z)", "R(X,Y), S(Y,Z), T(Z,X)", "R(X,Y), R(Y,Z)",
      "S(X,Y), T(Y,Z)"};
  std::vector<double> expected;
  for (const auto& text : texts) expected.push_back(
      advisor.EstimateLog2(Parse(text)));

  constexpr int kThreads = 8;
  constexpr int kIters = 50;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const size_t qi = (t + i) % texts.size();
        const double est = advisor.EstimateLog2(Parse(texts[qi]));
        if (std::abs(est - expected[qi]) > 1e-9) ++mismatches[t];
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0) << t;
  const AdvisorMetrics m = advisor.metrics();
  EXPECT_EQ(m.estimates,
            static_cast<uint64_t>(kThreads * kIters + texts.size()));
  EXPECT_EQ(m.compiled_hits + m.compiled_misses, m.estimates);
  EXPECT_GT(m.witness_hits, 0u);
}

TEST(Advisor, EstimateLinearSpace) {
  Catalog db = SmallDb();
  CardinalityAdvisor advisor(db);
  Query q = Parse("R(X,Y), S(Y,Z)");
  EXPECT_NEAR(std::log2(advisor.Estimate(q)), advisor.EstimateLog2(q), 1e-9);
}

}  // namespace
}  // namespace lpb
