#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "relation/compressed_sequence.h"
#include "relation/csv.h"
#include "relation/degree_sequence.h"
#include "util/random.h"
#include "util/zipf.h"

namespace lpb {
namespace {

TEST(Csv, ParseWithHeader) {
  auto rel = RelationFromCsv("R", "x,y\n1,2\n3,4\n");
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(rel->arity(), 2);
  EXPECT_EQ(rel->attr(0), "x");
  EXPECT_EQ(rel->NumRows(), 2u);
  EXPECT_EQ(rel->At(1, 1), 4u);
}

TEST(Csv, ParseWithoutHeader) {
  CsvOptions opt;
  opt.has_header = false;
  auto rel = RelationFromCsv("R", "1,2\n3,4\n", opt);
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(rel->attr(0), "c0");
  EXPECT_EQ(rel->NumRows(), 2u);
}

TEST(Csv, SnapStyleTabsAndComments) {
  CsvOptions opt;
  opt.delimiter = '\t';
  opt.has_header = false;
  auto rel = RelationFromCsv(
      "E", "# Directed graph\n# src\tdst\n0\t1\n1\t2\n", opt);
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(rel->NumRows(), 2u);
  EXPECT_EQ(rel->At(1, 0), 1u);
}

TEST(Csv, RejectsRaggedRows) {
  std::string error;
  EXPECT_FALSE(RelationFromCsv("R", "x,y\n1,2\n3\n", {}, &error).has_value());
  EXPECT_NE(error.find("expected 2 fields"), std::string::npos);
}

TEST(Csv, RejectsNonNumeric) {
  std::string error;
  EXPECT_FALSE(
      RelationFromCsv("R", "x\nfoo\n", {}, &error).has_value());
  EXPECT_NE(error.find("not an unsigned integer"), std::string::npos);
}

TEST(Csv, RejectsEmpty) {
  std::string error;
  EXPECT_FALSE(RelationFromCsv("R", "", {}, &error).has_value());
}

TEST(Csv, WhitespaceTolerant) {
  auto rel = RelationFromCsv("R", "x, y\n 1 , 2 \n");
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(rel->attr(1), "y");
  EXPECT_EQ(rel->At(0, 1), 2u);
}

TEST(Csv, RoundTripThroughString) {
  Relation r("R", {"a", "b"});
  r.AddRow({10, 20});
  r.AddRow({30, 40});
  auto parsed = RelationFromCsv("R", RelationToCsv(r));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->NumRows(), 2u);
  EXPECT_EQ(parsed->At(0, 0), 10u);
  EXPECT_EQ(parsed->At(1, 1), 40u);
  EXPECT_EQ(parsed->attrs(), r.attrs());
}

TEST(Csv, RoundTripThroughFile) {
  Relation r("R", {"a", "b"});
  Rng rng(5);
  for (int i = 0; i < 100; ++i) r.AddRow({rng.Uniform(50), rng.Uniform(50)});
  const std::string path =
      (std::filesystem::temp_directory_path() / "lpb_csv_test.csv").string();
  ASSERT_TRUE(SaveRelationCsv(r, path));
  auto loaded = LoadRelationCsv("R", path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->NumRows(), r.NumRows());
  for (size_t i = 0; i < r.NumRows(); ++i) {
    EXPECT_EQ(loaded->At(i, 0), r.At(i, 0));
    EXPECT_EQ(loaded->At(i, 1), r.At(i, 1));
  }
}

TEST(Csv, LoadMissingFileFails) {
  std::string error;
  EXPECT_FALSE(
      LoadRelationCsv("R", "/nonexistent/nope.csv", {}, &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(Compression, DominatesOriginal) {
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<uint64_t> degs;
    ZipfSampler zipf(1000, 1.1);
    for (int i = 0; i < 500; ++i) degs.push_back(1 + zipf.Sample(rng));
    DegreeSequence d(std::move(degs));
    DegreeSequence c = CompressDominating(d);
    ASSERT_EQ(c.size(), d.size());
    EXPECT_TRUE(d.DominatedBy(c)) << "trial " << trial;
  }
}

TEST(Compression, ShrinksStorage) {
  std::vector<uint64_t> degs;
  for (uint64_t i = 1; i <= 400; ++i) degs.push_back(i);  // all distinct
  DegreeSequence d(std::move(degs));
  CompressionOptions opt;
  opt.exact_head = 8;
  opt.tail_buckets = 8;
  DegreeSequence c = CompressDominating(d, opt);
  EXPECT_EQ(DistinctDegreeValues(d), 400u);
  EXPECT_LE(DistinctDegreeValues(c), 16u);
}

TEST(Compression, NormsDominateToo) {
  // Dominating sequences have dominating ℓp norms — so bounds computed
  // from the summary stay sound.
  std::vector<uint64_t> degs;
  Rng rng(11);
  for (int i = 0; i < 300; ++i) degs.push_back(1 + rng.Uniform(100));
  DegreeSequence d(std::move(degs));
  DegreeSequence c = CompressDominating(d);
  for (double p : {1.0, 2.0, 3.0, 10.0, kInfNorm}) {
    EXPECT_GE(c.Log2NormP(p), d.Log2NormP(p) - 1e-12) << "p=" << p;
  }
}

TEST(Compression, HeadIsExact) {
  std::vector<uint64_t> degs = {100, 90, 80, 70, 5, 4, 3, 2, 1};
  DegreeSequence d{std::vector<uint64_t>(degs)};
  CompressionOptions opt;
  opt.exact_head = 4;
  opt.tail_buckets = 2;
  DegreeSequence c = CompressDominating(d, opt);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(c.degrees()[i], degs[i]);
}

TEST(Compression, ShortSequencesUnchanged) {
  DegreeSequence d({5, 3, 1});
  DegreeSequence c = CompressDominating(d);
  EXPECT_EQ(c.degrees(), d.degrees());
}

}  // namespace
}  // namespace lpb
