#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/lp_problem.h"
#include "lp/simplex.h"
#include "util/random.h"

namespace lpb {
namespace {

TEST(Simplex, TrivialSingleVariable) {
  // max x s.t. x <= 5.
  LpProblem lp(1);
  lp.SetObjective(0, 1.0);
  lp.AddConstraint({{0, 1.0}}, LpSense::kLe, 5.0);
  LpResult r = SolveLp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 5.0, 1e-9);
  EXPECT_NEAR(r.x[0], 5.0, 1e-9);
}

TEST(Simplex, TwoVariableTextbook) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  ->  opt 36 at (2, 6).
  LpProblem lp(2);
  lp.SetObjective(0, 3.0);
  lp.SetObjective(1, 5.0);
  lp.AddConstraint({{0, 1.0}}, LpSense::kLe, 4.0);
  lp.AddConstraint({{1, 2.0}}, LpSense::kLe, 12.0);
  lp.AddConstraint({{0, 3.0}, {1, 2.0}}, LpSense::kLe, 18.0);
  LpResult r = SolveLp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 36.0, 1e-9);
  EXPECT_NEAR(r.x[0], 2.0, 1e-9);
  EXPECT_NEAR(r.x[1], 6.0, 1e-9);
}

TEST(Simplex, UnboundedDetected) {
  LpProblem lp(2);
  lp.SetObjective(0, 1.0);
  lp.AddConstraint({{1, 1.0}}, LpSense::kLe, 3.0);  // x unconstrained
  LpResult r = SolveLp(lp);
  EXPECT_EQ(r.status, LpStatus::kUnbounded);
}

TEST(Simplex, InfeasibleDetected) {
  // x <= 1 and x >= 2.
  LpProblem lp(1);
  lp.SetObjective(0, 1.0);
  lp.AddConstraint({{0, 1.0}}, LpSense::kLe, 1.0);
  lp.AddConstraint({{0, 1.0}}, LpSense::kGe, 2.0);
  LpResult r = SolveLp(lp);
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
}

TEST(Simplex, EqualityConstraint) {
  // max x + y s.t. x + y = 3, x <= 1  ->  opt 3 (x=1, y=2 or any split).
  LpProblem lp(2);
  lp.SetObjective(0, 1.0);
  lp.SetObjective(1, 1.0);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, LpSense::kEq, 3.0);
  lp.AddConstraint({{0, 1.0}}, LpSense::kLe, 1.0);
  LpResult r = SolveLp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-9);
  EXPECT_NEAR(r.x[0] + r.x[1], 3.0, 1e-9);
}

TEST(Simplex, GreaterEqualWithPhase1) {
  // min x + y s.t. x + 2y >= 4, 3x + y >= 6  (as max of negation).
  LpProblem lp(2);
  lp.SetObjective(0, -1.0);
  lp.SetObjective(1, -1.0);
  lp.AddConstraint({{0, 1.0}, {1, 2.0}}, LpSense::kGe, 4.0);
  lp.AddConstraint({{0, 3.0}, {1, 1.0}}, LpSense::kGe, 6.0);
  LpResult r = SolveLp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  // Optimum at intersection: x = 8/5, y = 6/5, objective -(14/5).
  EXPECT_NEAR(-r.objective, 14.0 / 5.0, 1e-9);
}

TEST(Simplex, NegativeRhsNormalized) {
  // -x <= -2  ==  x >= 2; max -x  ->  x = 2.
  LpProblem lp(1);
  lp.SetObjective(0, -1.0);
  lp.AddConstraint({{0, -1.0}}, LpSense::kLe, -2.0);
  LpResult r = SolveLp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 2.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degenerate vertex: several constraints through the origin.
  LpProblem lp(3);
  lp.SetObjective(0, 0.75);
  lp.SetObjective(1, -150.0);
  lp.SetObjective(2, 0.02);
  lp.AddConstraint({{0, 0.25}, {1, -60.0}, {2, -0.04}}, LpSense::kLe, 0.0);
  lp.AddConstraint({{0, 0.5}, {1, -90.0}, {2, -0.02}}, LpSense::kLe, 0.0);
  lp.AddConstraint({{2, 1.0}}, LpSense::kLe, 1.0);
  LpResult r = SolveLp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);  // Bland's rule must kick in
  EXPECT_NEAR(r.objective, 1.0 / 20.0, 1e-6);
}

TEST(Simplex, DualsSatisfyStrongDuality) {
  LpProblem lp(2);
  lp.SetObjective(0, 3.0);
  lp.SetObjective(1, 5.0);
  lp.AddConstraint({{0, 1.0}}, LpSense::kLe, 4.0);
  lp.AddConstraint({{1, 2.0}}, LpSense::kLe, 12.0);
  lp.AddConstraint({{0, 3.0}, {1, 2.0}}, LpSense::kLe, 18.0);
  LpResult r = SolveLp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  double dual_obj = r.duals[0] * 4.0 + r.duals[1] * 12.0 + r.duals[2] * 18.0;
  EXPECT_NEAR(dual_obj, r.objective, 1e-8);
  for (double y : r.duals) EXPECT_GE(y, -1e-9);  // <=-duals nonneg for max
}

TEST(Simplex, DualsOfGeConstraintNonPositive) {
  // max -x s.t. x >= 2: dual of the >= constraint must be <= 0.
  LpProblem lp(1);
  lp.SetObjective(0, -1.0);
  lp.AddConstraint({{0, 1.0}}, LpSense::kGe, 2.0);
  LpResult r = SolveLp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -2.0, 1e-9);
  EXPECT_LE(r.duals[0], 1e-9);
  EXPECT_NEAR(r.duals[0] * 2.0, r.objective, 1e-8);
}

TEST(Simplex, RedundantConstraintsHandled) {
  LpProblem lp(1);
  lp.SetObjective(0, 1.0);
  for (int i = 0; i < 10; ++i) {
    lp.AddConstraint({{0, 1.0}}, LpSense::kLe, 5.0 + i);
  }
  LpResult r = SolveLp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 5.0, 1e-9);
}

TEST(Simplex, RedundantEqualityRows) {
  // x + y = 2 stated twice; max x s.t. x <= 1.5.
  LpProblem lp(2);
  lp.SetObjective(0, 1.0);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, LpSense::kEq, 2.0);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, LpSense::kEq, 2.0);
  lp.AddConstraint({{0, 1.0}}, LpSense::kLe, 1.5);
  LpResult r = SolveLp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.5, 1e-9);
}

TEST(Simplex, ZeroObjectiveFeasibility) {
  LpProblem lp(2);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, LpSense::kGe, 1.0);
  LpResult r = SolveLp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 0.0, 1e-9);
}

TEST(Simplex, NoConstraintsZeroObjective) {
  LpProblem lp(3);
  LpResult r = SolveLp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 0.0, 1e-12);
}

TEST(Simplex, NoConstraintsPositiveObjectiveUnbounded) {
  LpProblem lp(1);
  lp.SetObjective(0, 2.0);
  LpResult r = SolveLp(lp);
  EXPECT_EQ(r.status, LpStatus::kUnbounded);
}

// Property test: random feasible-by-construction LPs — the simplex optimum
// must be >= the value of the known feasible point and its solution must
// satisfy every constraint.
TEST(Simplex, RandomProblemsRespectFeasibilityAndOptimality) {
  Rng rng(99);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 2 + static_cast<int>(rng.Uniform(5));
    const int m = 1 + static_cast<int>(rng.Uniform(8));
    // Random known point in [0, 5]^n.
    std::vector<double> point(n);
    for (double& p : point) p = 5.0 * rng.NextDouble();

    LpProblem lp(n);
    for (int j = 0; j < n; ++j) lp.SetObjective(j, rng.NextDouble() * 2.0);
    for (int i = 0; i < m; ++i) {
      std::vector<LpTerm> terms;
      double lhs_at_point = 0.0;
      for (int j = 0; j < n; ++j) {
        double c = rng.NextDouble() * 2.0;  // nonneg coefs keep it bounded
        terms.push_back({j, c});
        lhs_at_point += c * point[j];
      }
      lp.AddConstraint(std::move(terms), LpSense::kLe,
                       lhs_at_point + rng.NextDouble());
    }
    // Bound the box so the LP is bounded even with tiny coefficients.
    for (int j = 0; j < n; ++j) {
      lp.AddConstraint({{j, 1.0}}, LpSense::kLe, 100.0);
    }

    LpResult r = SolveLp(lp);
    ASSERT_EQ(r.status, LpStatus::kOptimal) << "trial " << trial;
    double point_obj = 0.0;
    for (int j = 0; j < n; ++j) point_obj += lp.objective_coef(j) * point[j];
    EXPECT_GE(r.objective, point_obj - 1e-7) << "trial " << trial;
    for (int i = 0; i < lp.num_constraints(); ++i) {
      EXPECT_LE(lp.EvalLhs(i, r.x), lp.constraint(i).rhs + 1e-6)
          << "trial " << trial << " constraint " << i;
    }
    // Strong duality: y'b == c'x*.
    double dual_obj = 0.0;
    for (int i = 0; i < lp.num_constraints(); ++i) {
      dual_obj += r.duals[i] * lp.constraint(i).rhs;
    }
    EXPECT_NEAR(dual_obj, r.objective, 1e-5) << "trial " << trial;
  }
}

TEST(LpProblem, EvalLhs) {
  LpProblem lp(2);
  int c = lp.AddConstraint({{0, 2.0}, {1, -1.0}}, LpSense::kLe, 1.0);
  EXPECT_NEAR(lp.EvalLhs(c, {3.0, 4.0}), 2.0, 1e-12);
}

TEST(Simplex, HomogeneousGeRowsNeedNoPhase1) {
  // max x + y s.t. x - y >= 0, x <= 3, y <= 3: the homogeneous >= row is
  // converted to a <= row with a slack basis (no artificial variable).
  LpProblem lp(2);
  lp.SetObjective(0, 1.0);
  lp.SetObjective(1, 1.0);
  lp.AddConstraint({{0, 1.0}, {1, -1.0}}, LpSense::kGe, 0.0);
  lp.AddConstraint({{0, 1.0}}, LpSense::kLe, 3.0);
  lp.AddConstraint({{1, 1.0}}, LpSense::kLe, 3.0);
  LpResult r = SolveLp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 6.0, 1e-9);
}

TEST(Simplex, ManyHomogeneousRowsDegenerateOrigin) {
  // A cutting-plane-shaped LP: dozens of homogeneous rows all tight at the
  // origin. The lexicographic ratio test must terminate and find the
  // optimum.
  Rng rng(123);
  const int n = 6;
  LpProblem lp(n);
  for (int j = 0; j < n; ++j) lp.SetObjective(j, 1.0);
  for (int i = 0; i < 60; ++i) {
    std::vector<LpTerm> terms;
    for (int j = 0; j < n; ++j) {
      terms.push_back({j, rng.NextDouble() * 2.0 - 1.0});
    }
    lp.AddConstraint(std::move(terms), LpSense::kGe, 0.0);
  }
  for (int j = 0; j < n; ++j) {
    lp.AddConstraint({{j, 1.0}}, LpSense::kLe, 1.0);
  }
  LpResult r = SolveLp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_GE(r.objective, -1e-9);
  EXPECT_LE(r.objective, 6.0 + 1e-9);
  for (int i = 0; i < lp.num_constraints(); ++i) {
    double slackish = lp.constraint(i).sense == LpSense::kGe
                          ? lp.EvalLhs(i, r.x) - lp.constraint(i).rhs
                          : lp.constraint(i).rhs - lp.EvalLhs(i, r.x);
    EXPECT_GE(slackish, -1e-7) << "constraint " << i;
  }
}

TEST(Simplex, PerturbationOptionStaysAccurate) {
  SimplexOptions opt;
  opt.perturb = 1e-9;
  LpProblem lp(2);
  lp.SetObjective(0, 3.0);
  lp.SetObjective(1, 5.0);
  lp.AddConstraint({{0, 1.0}}, LpSense::kLe, 4.0);
  lp.AddConstraint({{1, 2.0}}, LpSense::kLe, 12.0);
  lp.AddConstraint({{0, 3.0}, {1, 2.0}}, LpSense::kLe, 18.0);
  LpResult r = SolveLp(lp, opt);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 36.0, 1e-5);
}

TEST(Simplex, EqualityWithNegativeRhs) {
  // -x - y = -3 normalizes to x + y = 3.
  LpProblem lp(2);
  lp.SetObjective(0, 1.0);
  lp.AddConstraint({{0, -1.0}, {1, -1.0}}, LpSense::kEq, -3.0);
  LpResult r = SolveLp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-9);
}

TEST(Simplex, DualOfEqualityConstraint) {
  // max 2x s.t. x + y = 5 (dual should certify 2*5): y* = 2.
  LpProblem lp(2);
  lp.SetObjective(0, 2.0);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, LpSense::kEq, 5.0);
  LpResult r = SolveLp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 10.0, 1e-9);
  EXPECT_NEAR(r.duals[0] * 5.0, r.objective, 1e-8);
}

TEST(Simplex, LargeSparseChainScales) {
  // A 400-variable chain: x_i - x_{i+1} >= 0, x_0 <= 1; max x_399.
  const int n = 400;
  LpProblem lp(n);
  lp.SetObjective(n - 1, 1.0);
  lp.AddConstraint({{0, 1.0}}, LpSense::kLe, 1.0);
  for (int i = 0; i + 1 < n; ++i) {
    lp.AddConstraint({{i, 1.0}, {i + 1, -1.0}}, LpSense::kGe, 0.0);
  }
  LpResult r = SolveLp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-7);
}

TEST(Simplex, MixedSenseSystem) {
  // max x + 2y + 3z s.t. x + y + z = 10, x - y >= 2, z <= 4.
  LpProblem lp(3);
  lp.SetObjective(0, 1.0);
  lp.SetObjective(1, 2.0);
  lp.SetObjective(2, 3.0);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}, {2, 1.0}}, LpSense::kEq, 10.0);
  lp.AddConstraint({{0, 1.0}, {1, -1.0}}, LpSense::kGe, 2.0);
  lp.AddConstraint({{2, 1.0}}, LpSense::kLe, 4.0);
  LpResult r = SolveLp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  // Optimum: z = 4, then max x + 2y with x + y = 6, x - y >= 2 -> x = 4,
  // y = 2: 4 + 4 + 12 = 20.
  EXPECT_NEAR(r.objective, 20.0, 1e-8);
}

}  // namespace
}  // namespace lpb
