// Concurrency stress for the advisor's shared structures — the test the
// CI TSan lane runs. Eight threads hammer EstimateBatch / EstimateLog2 /
// Explain on overlapping query templates (so they contend on the same
// sharded norm-store entries and the same compiled-bound mutexes) while
// another thread churns Invalidate. Correctness bar: every estimate equals
// the single-threaded value to within an ulp-level tolerance (queries
// sharing a compiled structure may be served from whichever alternate
// optimal basis a racing thread cached — mathematically equal, bitwise
// not guaranteed; the catalog never changes, so invalidation must be
// invisible in results), and the cumulative counters reconcile.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "estimator/advisor.h"
#include "estimator/norm_cache.h"
#include "query/parser.h"
#include "util/random.h"
#include "util/zipf.h"

namespace lpb {
namespace {

constexpr int kThreads = 8;
constexpr int kRoundsPerThread = 40;

// Alternate optimal bases agree on the objective only to rounding; see
// the file comment.
bool Mismatch(double got, double want) {
  if (std::isinf(want)) return !std::isinf(got);
  return std::abs(got - want) > 1e-8 * std::max(1.0, std::abs(want));
}

Query Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.has_value());
  return *q;
}

Catalog StressDb(uint64_t seed = 17) {
  Catalog db;
  Rng rng(seed);
  ZipfSampler zipf(31, 0.6);
  for (const char* name : {"R", "S", "T", "U", "V", "W"}) {
    Relation r(name, {"a", "b"});
    for (int i = 0; i < 200; ++i) {
      r.AddRow({zipf.Sample(rng), zipf.Sample(rng)});
    }
    r.Deduplicate();
    db.Add(std::move(r));
  }
  return db;
}

std::vector<Query> StressQueries() {
  std::vector<Query> queries;
  for (const char* text :
       {"R(X,Y), S(Y,Z)", "R(X,Y), S(Y,Z), T(Z,X)", "T(X,Y), U(Y,Z)",
        "U(X,Y), V(Y,Z), W(Z,X)", "R(X,Y), V(Y,Z)", "S(X,Y), W(Y,X)",
        "R(X,Y), S(Y,Z), T(Z,W), U(W,V2)"}) {
    queries.push_back(Parse(text));
  }
  return queries;
}

TEST(AdvisorConcurrent, EightThreadsBatchEstimatesStayExact) {
  Catalog db = StressDb();
  const std::vector<Query> queries = StressQueries();

  // Single-threaded ground truth from an independent advisor.
  CardinalityAdvisor reference(db);
  std::vector<double> expected;
  for (const Query& q : queries) expected.push_back(reference.EstimateLog2(q));

  // Small sharded store with an eviction-prone budget: contention AND
  // recomputation race with invalidation, the worst case for the store.
  AdvisorOptions options;
  options.norm_cache.shards = 4;
  options.norm_cache.byte_budget = 64 << 10;
  CardinalityAdvisor advisor(db, options);

  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> served{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int round = 0; round < kRoundsPerThread; ++round) {
        switch (rng.Uniform(4)) {
          case 0: {
            // Grouped multi-query batch across every template.
            const std::vector<double> got = advisor.EstimateLog2Batch(queries);
            for (size_t i = 0; i < queries.size(); ++i) {
              if (Mismatch(got[i], expected[i])) mismatches.fetch_add(1);
            }
            served.fetch_add(queries.size());
            break;
          }
          case 1: {
            // What-if batch: the real values repeated must reproduce the
            // scalar estimate on every column.
            const size_t i = rng.Uniform(queries.size());
            const auto stats = advisor.Explain(queries[i]).stats;
            served.fetch_add(1);  // the Explain
            const std::vector<std::vector<double>> batch(8, ValuesOf(stats));
            const std::vector<double> got =
                advisor.EstimateLog2Batch(queries[i], batch);
            for (double v : got) {
              if (Mismatch(v, expected[i])) mismatches.fetch_add(1);
            }
            served.fetch_add(batch.size());
            break;
          }
          case 2: {
            const size_t i = rng.Uniform(queries.size());
            if (Mismatch(advisor.EstimateLog2(queries[i]), expected[i])) {
              mismatches.fetch_add(1);
            }
            served.fetch_add(1);
            break;
          }
          case 3: {
            const size_t i = rng.Uniform(queries.size());
            const auto explanation = advisor.Explain(queries[i]);
            if (Mismatch(explanation.bound.log2_bound, expected[i])) {
              mismatches.fetch_add(1);
            }
            served.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  // Invalidation churn: the catalog is static, so dropping statistics must
  // never change results — only force recomputation.
  std::atomic<bool> stop{false};
  threads.emplace_back([&] {
    Rng rng(77);
    const char* names[] = {"R", "S", "T", "U", "V", "W"};
    while (!stop.load(std::memory_order_relaxed)) {
      advisor.Invalidate(names[rng.Uniform(6)]);
      std::this_thread::yield();
    }
  });
  for (int t = 0; t < kThreads; ++t) threads[t].join();
  stop.store(true);
  threads.back().join();

  EXPECT_EQ(mismatches.load(), 0u);
  const AdvisorMetrics m = advisor.metrics();
  EXPECT_EQ(m.estimates, served.load());
  EXPECT_EQ(m.witness_hits + m.warm_resolves + m.cold_solves, m.estimates);
  // All threads asked for the same handful of structures; the compiled
  // cache must not have ballooned past them.
  EXPECT_LE(advisor.CompiledCacheSize(), queries.size());
}

TEST(AdvisorConcurrent, CompiledMapSnapshotSurvivesWriterBursts) {
  // The compiled-bound map is read via an RCU-style atomic snapshot: a
  // burst of writers (threads compiling fresh structures) must never
  // serialize or corrupt concurrent readers of already-compiled entries.
  // Self-join chains of increasing length give every thread its own
  // stream of never-before-seen structures (distinct statistic shape
  // multisets), while reader threads hammer one pre-compiled template.
  Catalog db = StressDb(29);
  const Query hot = Parse("R(X,Y), S(Y,Z)");
  CardinalityAdvisor advisor(db);
  const double expected = advisor.EstimateLog2(hot);

  // Writer queries: chains R(X1,X2), R(X2,X3), ... of distinct lengths.
  std::vector<Query> fresh;
  const char* rels[] = {"R", "S", "T", "U", "V", "W"};
  for (int len = 2; len <= 5; ++len) {
    for (const char* rel : rels) {
      std::string text;
      for (int a = 0; a < len; ++a) {
        if (a > 0) text += ", ";
        text += std::string(rel) + "(X" + std::to_string(a) + ",X" +
                std::to_string(a + 1) + ")";
      }
      fresh.push_back(Parse(text));
    }
  }
  // Ground truth from an isolated advisor.
  CardinalityAdvisor reference(db);
  std::vector<double> fresh_expected;
  for (const Query& q : fresh) {
    fresh_expected.push_back(reference.EstimateLog2(q));
  }

  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      if (t % 2 == 0) {
        // Writer: compile a disjoint slice of the fresh structures.
        for (size_t i = t / 2; i < fresh.size(); i += kThreads / 2) {
          if (Mismatch(advisor.EstimateLog2(fresh[i]), fresh_expected[i])) {
            mismatches.fetch_add(1);
          }
        }
      } else {
        // Reader: the hot template must stay exact and lock-free through
        // every snapshot swap the writers publish.
        for (int round = 0; round < 300; ++round) {
          if (Mismatch(advisor.EstimateLog2(hot), expected)) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0u);
  // Chain length varies the shape multiset, but chains over different
  // relations share a structure — the cache holds one entry per length
  // plus the hot template's.
  EXPECT_LE(advisor.CompiledCacheSize(), 5u);
  EXPECT_GE(advisor.CompiledCacheSize(), 4u);
}

TEST(NormCacheBatch, BatchLookupsAreBitwiseTheScalarSequence) {
  // GetBatch/PutBatch run the same per-key code as Get/Put, so against two
  // caches fed identically, every field of every lookup — found, norms
  // (==, not near), generation — must agree, as must the LRU-driven
  // eviction and size books.
  NormCacheOptions options;
  options.shards = 4;
  options.byte_budget = 8 << 10;  // eviction-prone: parity must survive LRU
  ShardedNormCache scalar(options);
  ShardedNormCache batch(options);

  Rng rng(99);
  const char* rels[] = {"R", "S", "T", "U", "V"};
  std::vector<ShardedNormCache::Key> keys;
  for (const char* rel : rels) {
    keys.emplace_back(rel, std::vector<int>{}, std::vector<int>{0});
    keys.emplace_back(rel, std::vector<int>{0}, std::vector<int>{1});
    keys.emplace_back(rel, std::vector<int>{1}, std::vector<int>{0});
  }
  for (int round = 0; round < 50; ++round) {
    // A batch of 1-6 keys, possibly with repeats (admission batches mixing
    // hot templates repeat keys).
    std::vector<ShardedNormCache::Key> probe;
    const size_t n = 1 + rng.Uniform(6);
    for (size_t k = 0; k < n; ++k) {
      probe.push_back(keys[rng.Uniform(keys.size())]);
    }
    std::vector<ShardedNormCache::Lookup> scalar_got;
    for (const auto& key : probe) scalar_got.push_back(scalar.Get(key));
    const std::vector<ShardedNormCache::Lookup> batch_got =
        batch.GetBatch(probe);
    ASSERT_EQ(batch_got.size(), probe.size());
    std::vector<ShardedNormCache::PutItem> puts;
    for (size_t k = 0; k < probe.size(); ++k) {
      EXPECT_EQ(batch_got[k].found, scalar_got[k].found);
      EXPECT_EQ(batch_got[k].generation, scalar_got[k].generation);
      EXPECT_EQ(batch_got[k].norms, scalar_got[k].norms);  // bitwise
      if (!scalar_got[k].found) {
        // Deterministic fake "computation" both caches insert.
        std::vector<double> norms = {static_cast<double>(round),
                                     static_cast<double>(k),
                                     rng.NextDouble()};
        scalar.Put(probe[k], norms, scalar_got[k].generation);
        puts.push_back({probe[k], norms, batch_got[k].generation});
      }
    }
    batch.PutBatch(std::move(puts));
    // Occasional invalidation, mirrored to both.
    if (round % 7 == 3) {
      const char* rel = rels[rng.Uniform(5)];
      scalar.InvalidateRelation(rel);
      batch.InvalidateRelation(rel);
    }
    EXPECT_EQ(batch.Size(), scalar.Size());
    EXPECT_EQ(batch.Bytes(), scalar.Bytes());
    EXPECT_EQ(batch.Evictions(), scalar.Evictions());
    EXPECT_EQ(batch.Hits(), scalar.Hits());
    EXPECT_EQ(batch.Misses(), scalar.Misses());
  }
}

TEST(NormCacheBatch, OneLockAcquisitionPerDistinctShardPerBatch) {
  // The whole point of the batch entry points: shard-mutex acquisitions
  // scale with distinct shards touched, not with keys. With one shard,
  // any batch costs exactly one acquisition.
  NormCacheOptions one;
  one.shards = 1;
  ShardedNormCache cache(one);
  std::vector<ShardedNormCache::Key> keys;
  for (const char* rel : {"R", "S", "T", "U", "V", "W"}) {
    keys.emplace_back(rel, std::vector<int>{}, std::vector<int>{0});
    keys.emplace_back(rel, std::vector<int>{0}, std::vector<int>{1});
  }
  uint64_t before = cache.LockAcquisitions();
  auto lookups = cache.GetBatch(keys);
  EXPECT_EQ(cache.LockAcquisitions(), before + 1);  // 12 keys, 1 shard
  std::vector<ShardedNormCache::PutItem> puts;
  for (size_t k = 0; k < keys.size(); ++k) {
    puts.push_back({keys[k], {1.0, 2.0}, lookups[k].generation});
  }
  before = cache.LockAcquisitions();
  cache.PutBatch(std::move(puts));
  EXPECT_EQ(cache.LockAcquisitions(), before + 1);
  before = cache.LockAcquisitions();
  lookups = cache.GetBatch(keys);  // warm: still one acquisition
  EXPECT_EQ(cache.LockAcquisitions(), before + 1);
  for (const auto& lookup : lookups) EXPECT_TRUE(lookup.found);

  // Many shards: a batch over k distinct relations costs at most
  // min(k, shards) acquisitions (scalar would cost keys.size()).
  NormCacheOptions many;
  many.shards = 16;
  ShardedNormCache sharded(many);
  before = sharded.LockAcquisitions();
  sharded.GetBatch(keys);
  EXPECT_LE(sharded.LockAcquisitions() - before, 6u);  // 6 relations
  EXPECT_GE(sharded.LockAcquisitions() - before, 1u);

  // And through the advisor: a warm multi-query batch visits each touched
  // shard once, so the acquisition delta is bounded by the shard count,
  // not by the statistics count.
  Catalog db = StressDb();
  const std::vector<Query> queries = StressQueries();
  AdvisorOptions aopt;
  aopt.norm_cache.shards = 4;
  CardinalityAdvisor advisor(db, aopt);
  advisor.EstimateLog2Batch(queries);  // warm statistics + structures
  const uint64_t locks_before = advisor.metrics().norm_shard_locks;
  const uint64_t stats_before =
      advisor.metrics().norm_hits + advisor.metrics().norm_misses;
  advisor.EstimateLog2Batch(queries);
  const uint64_t lock_delta =
      advisor.metrics().norm_shard_locks - locks_before;
  const uint64_t stat_delta =
      advisor.metrics().norm_hits + advisor.metrics().norm_misses -
      stats_before;
  EXPECT_LE(lock_delta, 4u);         // ≈ distinct shards touched
  EXPECT_GT(stat_delta, lock_delta);  // many statistics per lock visit
}

TEST(NormCacheBatch, PutBatchRefusesEntriesInvalidatedSinceLookup) {
  ShardedNormCache cache;  // default 16 shards
  const ShardedNormCache::Key stale_key{"R", {0}, {1}};
  const ShardedNormCache::Key fresh_key{"S", {0}, {1}};
  const auto stale_gen = cache.Get(stale_key).generation;
  const auto fresh_gen = cache.Get(fresh_key).generation;
  // R is invalidated while "the computation" runs; S is not.
  cache.InvalidateRelation("R");
  cache.PutBatch({{stale_key, {1.0}, stale_gen}, {fresh_key, {2.0}, fresh_gen}});
  EXPECT_FALSE(cache.Get(stale_key).found);  // refused
  EXPECT_TRUE(cache.Get(fresh_key).found);   // the rest of the batch lands
  EXPECT_EQ(cache.Size(), 1u);
}

TEST(NormCacheBatch, EightThreadMixedBatchAndInvalidateStress) {
  // Batch lookups/inserts racing scalar traffic and invalidation across
  // shared shards: the books (hits + misses == lookups served) and the
  // found=>nonempty-norms invariant must hold throughout. TSan-checked in
  // the CI lane.
  NormCacheOptions options;
  options.shards = 4;
  options.byte_budget = 16 << 10;
  ShardedNormCache cache(options);
  const char* rels[] = {"R", "S", "T", "U", "V", "W"};
  std::vector<ShardedNormCache::Key> keys;
  for (const char* rel : rels) {
    for (int u = 0; u < 2; ++u) {
      keys.emplace_back(rel, std::vector<int>{u}, std::vector<int>{1 - u});
    }
  }
  std::atomic<uint64_t> lookups_served{0};
  std::atomic<uint64_t> violations{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(3000 + t);
      for (int round = 0; round < 150; ++round) {
        if (t % 4 == 3) {
          cache.InvalidateRelation(rels[rng.Uniform(6)]);
          continue;
        }
        std::vector<ShardedNormCache::Key> probe;
        const size_t n = 1 + rng.Uniform(8);
        for (size_t k = 0; k < n; ++k) {
          probe.push_back(keys[rng.Uniform(keys.size())]);
        }
        const auto got = cache.GetBatch(probe);
        lookups_served.fetch_add(got.size());
        std::vector<ShardedNormCache::PutItem> puts;
        for (size_t k = 0; k < got.size(); ++k) {
          if (got[k].found) {
            if (got[k].norms.empty()) violations.fetch_add(1);
          } else {
            puts.push_back({probe[k], {1.0, 2.0, 3.0}, got[k].generation});
          }
        }
        if (!puts.empty()) cache.PutBatch(std::move(puts));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(cache.Hits() + cache.Misses(), lookups_served.load());
}

TEST(AdvisorBatchAssembly, BatchedStatisticsAreBitwiseScalarOnAllEngines) {
  // AssembleStatisticsBatch must return, per query, exactly the statistics
  // the scalar Explain path assembles — same order, same labels, same
  // log_b to the last bit — on every bound engine and both LP backends
  // (the assembly is upstream of the engine, but engine choice changes
  // which statistics downstream code trusts, so pin all of them).
  Catalog db = StressDb();
  const std::vector<Query> queries = StressQueries();
  for (const char* engine : {"gamma", "normal", "auto", "agm", "panda"}) {
    for (const LpBackendKind backend :
         {LpBackendKind::kDense, LpBackendKind::kRevised}) {
      AdvisorOptions options;
      options.bound_engine = engine;
      options.engine.simplex.backend = backend;
      CardinalityAdvisor advisor(db, options);
      // Repeats across queries exercise the batch dedup path.
      std::vector<Query> doubled = queries;
      doubled.insert(doubled.end(), queries.begin(), queries.end());
      const auto batched = advisor.AssembleStatisticsBatch(doubled);
      ASSERT_EQ(batched.size(), doubled.size());
      for (size_t i = 0; i < doubled.size(); ++i) {
        const auto scalar = advisor.Explain(doubled[i]).stats;
        ASSERT_EQ(batched[i].size(), scalar.size())
            << engine << " query " << i;
        for (size_t s = 0; s < scalar.size(); ++s) {
          EXPECT_EQ(batched[i][s].log_b, scalar[s].log_b)  // bitwise
              << engine << " query " << i << " stat " << s;
          EXPECT_EQ(batched[i][s].p, scalar[s].p);
          EXPECT_EQ(batched[i][s].guard_atom, scalar[s].guard_atom);
          EXPECT_EQ(batched[i][s].sigma.u, scalar[s].sigma.u);
          EXPECT_EQ(batched[i][s].sigma.v, scalar[s].sigma.v);
        }
      }
    }
  }
}

TEST(AdvisorConcurrent, ShardedStoreScalesAcrossRelations) {
  // Pure statistics-store contention: threads repeatedly estimate
  // single-relation queries over distinct relations, which hash to
  // distinct shards; with the store pre-warmed this is lock-read-copy
  // only and must stay exact throughout.
  Catalog db = StressDb(23);
  const std::vector<Query> queries = {
      Parse("R(X,Y), R(Y,Z)"), Parse("S(X,Y), S(Y,Z)"),
      Parse("T(X,Y), T(Y,Z)"), Parse("U(X,Y), U(Y,Z)"),
      Parse("V(X,Y), V(Y,Z)"), Parse("W(X,Y), W(Y,Z)")};
  CardinalityAdvisor advisor(db);
  std::vector<double> expected;
  for (const Query& q : queries) expected.push_back(advisor.EstimateLog2(q));

  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const Query& q = queries[t % queries.size()];
      const double want = expected[t % queries.size()];
      for (int round = 0; round < 200; ++round) {
        if (Mismatch(advisor.EstimateLog2(q), want)) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
}  // namespace lpb
