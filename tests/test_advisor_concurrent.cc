// Concurrency stress for the advisor's shared structures — the test the
// CI TSan lane runs. Eight threads hammer EstimateBatch / EstimateLog2 /
// Explain on overlapping query templates (so they contend on the same
// sharded norm-store entries and the same compiled-bound mutexes) while
// another thread churns Invalidate. Correctness bar: every estimate equals
// the single-threaded value to within an ulp-level tolerance (queries
// sharing a compiled structure may be served from whichever alternate
// optimal basis a racing thread cached — mathematically equal, bitwise
// not guaranteed; the catalog never changes, so invalidation must be
// invisible in results), and the cumulative counters reconcile.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "estimator/advisor.h"
#include "query/parser.h"
#include "util/random.h"
#include "util/zipf.h"

namespace lpb {
namespace {

constexpr int kThreads = 8;
constexpr int kRoundsPerThread = 40;

// Alternate optimal bases agree on the objective only to rounding; see
// the file comment.
bool Mismatch(double got, double want) {
  if (std::isinf(want)) return !std::isinf(got);
  return std::abs(got - want) > 1e-8 * std::max(1.0, std::abs(want));
}

Query Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.has_value());
  return *q;
}

Catalog StressDb(uint64_t seed = 17) {
  Catalog db;
  Rng rng(seed);
  ZipfSampler zipf(31, 0.6);
  for (const char* name : {"R", "S", "T", "U", "V", "W"}) {
    Relation r(name, {"a", "b"});
    for (int i = 0; i < 200; ++i) {
      r.AddRow({zipf.Sample(rng), zipf.Sample(rng)});
    }
    r.Deduplicate();
    db.Add(std::move(r));
  }
  return db;
}

std::vector<Query> StressQueries() {
  std::vector<Query> queries;
  for (const char* text :
       {"R(X,Y), S(Y,Z)", "R(X,Y), S(Y,Z), T(Z,X)", "T(X,Y), U(Y,Z)",
        "U(X,Y), V(Y,Z), W(Z,X)", "R(X,Y), V(Y,Z)", "S(X,Y), W(Y,X)",
        "R(X,Y), S(Y,Z), T(Z,W), U(W,V2)"}) {
    queries.push_back(Parse(text));
  }
  return queries;
}

TEST(AdvisorConcurrent, EightThreadsBatchEstimatesStayExact) {
  Catalog db = StressDb();
  const std::vector<Query> queries = StressQueries();

  // Single-threaded ground truth from an independent advisor.
  CardinalityAdvisor reference(db);
  std::vector<double> expected;
  for (const Query& q : queries) expected.push_back(reference.EstimateLog2(q));

  // Small sharded store with an eviction-prone budget: contention AND
  // recomputation race with invalidation, the worst case for the store.
  AdvisorOptions options;
  options.norm_cache.shards = 4;
  options.norm_cache.byte_budget = 64 << 10;
  CardinalityAdvisor advisor(db, options);

  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> served{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int round = 0; round < kRoundsPerThread; ++round) {
        switch (rng.Uniform(4)) {
          case 0: {
            // Grouped multi-query batch across every template.
            const std::vector<double> got = advisor.EstimateLog2Batch(queries);
            for (size_t i = 0; i < queries.size(); ++i) {
              if (Mismatch(got[i], expected[i])) mismatches.fetch_add(1);
            }
            served.fetch_add(queries.size());
            break;
          }
          case 1: {
            // What-if batch: the real values repeated must reproduce the
            // scalar estimate on every column.
            const size_t i = rng.Uniform(queries.size());
            const auto stats = advisor.Explain(queries[i]).stats;
            served.fetch_add(1);  // the Explain
            const std::vector<std::vector<double>> batch(8, ValuesOf(stats));
            const std::vector<double> got =
                advisor.EstimateLog2Batch(queries[i], batch);
            for (double v : got) {
              if (Mismatch(v, expected[i])) mismatches.fetch_add(1);
            }
            served.fetch_add(batch.size());
            break;
          }
          case 2: {
            const size_t i = rng.Uniform(queries.size());
            if (Mismatch(advisor.EstimateLog2(queries[i]), expected[i])) {
              mismatches.fetch_add(1);
            }
            served.fetch_add(1);
            break;
          }
          case 3: {
            const size_t i = rng.Uniform(queries.size());
            const auto explanation = advisor.Explain(queries[i]);
            if (Mismatch(explanation.bound.log2_bound, expected[i])) {
              mismatches.fetch_add(1);
            }
            served.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  // Invalidation churn: the catalog is static, so dropping statistics must
  // never change results — only force recomputation.
  std::atomic<bool> stop{false};
  threads.emplace_back([&] {
    Rng rng(77);
    const char* names[] = {"R", "S", "T", "U", "V", "W"};
    while (!stop.load(std::memory_order_relaxed)) {
      advisor.Invalidate(names[rng.Uniform(6)]);
      std::this_thread::yield();
    }
  });
  for (int t = 0; t < kThreads; ++t) threads[t].join();
  stop.store(true);
  threads.back().join();

  EXPECT_EQ(mismatches.load(), 0u);
  const AdvisorMetrics m = advisor.metrics();
  EXPECT_EQ(m.estimates, served.load());
  EXPECT_EQ(m.witness_hits + m.warm_resolves + m.cold_solves, m.estimates);
  // All threads asked for the same handful of structures; the compiled
  // cache must not have ballooned past them.
  EXPECT_LE(advisor.CompiledCacheSize(), queries.size());
}

TEST(AdvisorConcurrent, CompiledMapSnapshotSurvivesWriterBursts) {
  // The compiled-bound map is read via an RCU-style atomic snapshot: a
  // burst of writers (threads compiling fresh structures) must never
  // serialize or corrupt concurrent readers of already-compiled entries.
  // Self-join chains of increasing length give every thread its own
  // stream of never-before-seen structures (distinct statistic shape
  // multisets), while reader threads hammer one pre-compiled template.
  Catalog db = StressDb(29);
  const Query hot = Parse("R(X,Y), S(Y,Z)");
  CardinalityAdvisor advisor(db);
  const double expected = advisor.EstimateLog2(hot);

  // Writer queries: chains R(X1,X2), R(X2,X3), ... of distinct lengths.
  std::vector<Query> fresh;
  const char* rels[] = {"R", "S", "T", "U", "V", "W"};
  for (int len = 2; len <= 5; ++len) {
    for (const char* rel : rels) {
      std::string text;
      for (int a = 0; a < len; ++a) {
        if (a > 0) text += ", ";
        text += std::string(rel) + "(X" + std::to_string(a) + ",X" +
                std::to_string(a + 1) + ")";
      }
      fresh.push_back(Parse(text));
    }
  }
  // Ground truth from an isolated advisor.
  CardinalityAdvisor reference(db);
  std::vector<double> fresh_expected;
  for (const Query& q : fresh) {
    fresh_expected.push_back(reference.EstimateLog2(q));
  }

  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      if (t % 2 == 0) {
        // Writer: compile a disjoint slice of the fresh structures.
        for (size_t i = t / 2; i < fresh.size(); i += kThreads / 2) {
          if (Mismatch(advisor.EstimateLog2(fresh[i]), fresh_expected[i])) {
            mismatches.fetch_add(1);
          }
        }
      } else {
        // Reader: the hot template must stay exact and lock-free through
        // every snapshot swap the writers publish.
        for (int round = 0; round < 300; ++round) {
          if (Mismatch(advisor.EstimateLog2(hot), expected)) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0u);
  // Chain length varies the shape multiset, but chains over different
  // relations share a structure — the cache holds one entry per length
  // plus the hot template's.
  EXPECT_LE(advisor.CompiledCacheSize(), 5u);
  EXPECT_GE(advisor.CompiledCacheSize(), 4u);
}

TEST(AdvisorConcurrent, ShardedStoreScalesAcrossRelations) {
  // Pure statistics-store contention: threads repeatedly estimate
  // single-relation queries over distinct relations, which hash to
  // distinct shards; with the store pre-warmed this is lock-read-copy
  // only and must stay exact throughout.
  Catalog db = StressDb(23);
  const std::vector<Query> queries = {
      Parse("R(X,Y), R(Y,Z)"), Parse("S(X,Y), S(Y,Z)"),
      Parse("T(X,Y), T(Y,Z)"), Parse("U(X,Y), U(Y,Z)"),
      Parse("V(X,Y), V(Y,Z)"), Parse("W(X,Y), W(Y,Z)")};
  CardinalityAdvisor advisor(db);
  std::vector<double> expected;
  for (const Query& q : queries) expected.push_back(advisor.EstimateLog2(q));

  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const Query& q = queries[t % queries.size()];
      const double want = expected[t % queries.size()];
      for (int round = 0; round < 200; ++round) {
        if (Mismatch(advisor.EstimateLog2(q), want)) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
}  // namespace lpb
