// Appendix B: the modular bound (the Jayaraman et al. LP) vs the
// polymatroid bound, Example B.1's unsoundness on short cycles, and
// Theorem B.2's equality under the girth condition.
#include <gtest/gtest.h>

#include <cmath>

#include "bounds/engine.h"
#include "bounds/modular.h"
#include "exec/generic_join.h"
#include "query/hypergraph.h"
#include "query/parser.h"
#include "relation/catalog.h"
#include "stats/collector.h"

namespace lpb {
namespace {

ConcreteStatistic Stat(VarSet u, VarSet v, double p, double log_b) {
  ConcreteStatistic s;
  s.sigma = {u, v};
  s.p = p;
  s.log_b = log_b;
  return s;
}

TEST(Modular, NeverExceedsPolymatroidBound) {
  // Mn ⊂ Γn: the modular optimum is a lower bound on the Γn optimum.
  std::vector<ConcreteStatistic> stats = {
      Stat(0, 0b011, 1.0, 8.0),
      Stat(0b001, 0b010, 2.0, 3.0),
      Stat(0b010, 0b100, 3.0, 4.0),
  };
  auto mod = ModularBound(3, stats);
  auto poly = PolymatroidBound(3, stats);
  ASSERT_TRUE(mod.base.ok());
  ASSERT_TRUE(poly.ok());
  EXPECT_LE(mod.base.log2_bound, poly.log2_bound + 1e-7);
}

TEST(Modular, WeightsReconstructOptimum) {
  std::vector<ConcreteStatistic> stats = {
      Stat(0, 0b011, 1.0, 8.0), Stat(0b010, 0b100, 2.0, 3.0)};
  auto mod = ModularBound(3, stats);
  ASSERT_TRUE(mod.base.ok());
  double total = 0.0;
  for (double w : mod.var_weights) total += w;
  EXPECT_NEAR(total, mod.base.log2_bound, 1e-9);
}

TEST(Modular, ExampleB1TwoCycleIsUnsound) {
  // Q(U,V) = R(U,V) ∧ S(V,U) with p = 2 and R = S = diagonal of size N:
  // the modular LP certifies N^{2/3}, but |Q| = N. (Girth 2 < p + 1 = 3.)
  const double log_n = 8.0;  // N = 256
  // ||deg_R(V|U)||_2 = sqrt(N): log = log_n / 2.
  std::vector<ConcreteStatistic> stats = {
      Stat(0b01, 0b10, 2.0, log_n / 2),  // deg_R(V|U)
      Stat(0b10, 0b01, 2.0, log_n / 2),  // deg_S(U|V)
  };
  auto mod = ModularBound(2, stats);
  ASSERT_TRUE(mod.base.ok());
  EXPECT_NEAR(mod.base.log2_bound, 2.0 * log_n / 3.0, 1e-6);

  // The actual diagonal instance beats the modular "bound".
  Catalog db;
  Relation r("R", {"u", "v"});
  for (Value i = 0; i < 256; ++i) r.AddRow({i, i});
  Relation s = r;
  s.set_name("S");
  db.Add(std::move(r));
  db.Add(std::move(s));
  Query q = *ParseQuery("R(U,V), S(V,U)");
  const uint64_t truth = CountJoin(q, db);
  EXPECT_EQ(truth, 256u);
  EXPECT_GT(std::log2(static_cast<double>(truth)),
            mod.base.log2_bound + 1.0);

  // The polymatroid bound is sound on the same statistics.
  auto poly = PolymatroidBound(2, stats);
  ASSERT_TRUE(poly.ok());
  EXPECT_GE(poly.log2_bound,
            std::log2(static_cast<double>(truth)) - 1e-6);
}

TEST(Modular, TheoremB2GirthConditionRestoresEquality) {
  // Triangle (girth 3) with p = 2 statistics: girth >= p + 1, so the
  // modular and polymatroid bounds coincide.
  const double b = 4.0;
  std::vector<ConcreteStatistic> tri = {
      Stat(0b001, 0b010, 2.0, b),
      Stat(0b010, 0b100, 2.0, b),
      Stat(0b100, 0b001, 2.0, b),
  };
  auto mod = ModularBound(3, tri);
  auto poly = PolymatroidBound(3, tri);
  ASSERT_TRUE(mod.base.ok() && poly.ok());
  EXPECT_NEAR(mod.base.log2_bound, poly.log2_bound, 1e-6);

  // 4-cycle with p = 3: girth 4 >= p + 1.
  std::vector<ConcreteStatistic> cyc4;
  for (int i = 0; i < 4; ++i) {
    cyc4.push_back(Stat(VarBit(i), VarBit((i + 1) % 4), 3.0, b));
  }
  auto mod4 = ModularBound(4, cyc4);
  auto poly4 = PolymatroidBound(4, cyc4);
  ASSERT_TRUE(mod4.base.ok() && poly4.ok());
  EXPECT_NEAR(mod4.base.log2_bound, poly4.log2_bound, 1e-6);
}

TEST(Modular, TriangleWithL3ViolatesGirthAndSplits) {
  // Triangle (girth 3) with p = 3 statistics: girth < p + 1, the modular
  // bound drops strictly below the polymatroid bound (Example 2.3's ℓ3
  // regime needs girth 4).
  const double b = 4.0;
  std::vector<ConcreteStatistic> tri;
  for (int i = 0; i < 3; ++i) {
    tri.push_back(Stat(VarBit(i), VarBit((i + 1) % 3), 3.0, b));
  }
  auto mod = ModularBound(3, tri);
  auto poly = PolymatroidBound(3, tri);
  ASSERT_TRUE(mod.base.ok() && poly.ok());
  EXPECT_LT(mod.base.log2_bound, poly.log2_bound - 0.1);
}

TEST(Modular, GirthHelperAgreesWithHypergraph) {
  Query tri = *ParseQuery("R(X,Y), S(Y,Z), T(Z,X)");
  EXPECT_EQ(Hypergraph(tri).BinaryGirth(), 3);
  Query two = *ParseQuery("R(U,V), S(V,U)");
  EXPECT_EQ(Hypergraph(two).BinaryGirth(), 2);
}

TEST(Modular, UnboundedWithoutCoverage) {
  auto mod = ModularBound(2, {Stat(0, 0b01, 1.0, 3.0)});
  EXPECT_TRUE(mod.base.unbounded());
}

TEST(Modular, MeasuredStatisticsStayBelowPolymatroid) {
  // On real data with mixed norms the ordering Mn <= Nn/Γn always holds.
  Catalog db;
  Relation r("R", {"x", "y"});
  for (Value i = 0; i < 40; ++i) {
    r.AddRow({i % 7, i});
    r.AddRow({i % 5, 100 + i});
  }
  db.Add(std::move(r));
  Query q = *ParseQuery("R(X,Y), R(Y,Z)");
  CollectorOptions opt;
  opt.norms = {1.0, 2.0, 3.0, kInfNorm};
  auto stats = CollectStatistics(q, db, opt);
  auto mod = ModularBound(q.num_vars(), stats);
  auto poly = PolymatroidBound(q.num_vars(), stats);
  ASSERT_TRUE(mod.base.ok() && poly.ok());
  EXPECT_LE(mod.base.log2_bound, poly.log2_bound + 1e-7);
}

}  // namespace
}  // namespace lpb
