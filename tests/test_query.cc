#include <gtest/gtest.h>

#include "query/hypergraph.h"
#include "query/parser.h"
#include "query/query.h"

namespace lpb {
namespace {

TEST(Query, AddAtomInternsVariables) {
  Query q;
  q.AddAtom("R", {"X", "Y"});
  q.AddAtom("S", {"Y", "Z"});
  EXPECT_EQ(q.num_vars(), 3);
  EXPECT_EQ(q.num_atoms(), 2);
  EXPECT_EQ(q.VarIndex("Y"), 1);
  EXPECT_EQ(q.VarIndex("W"), -1);
  EXPECT_EQ(q.atom(1).vars, (std::vector<int>{1, 2}));
}

TEST(Query, AllVarsAndAtomVarSet) {
  Query q;
  q.AddAtom("R", {"X", "Y"});
  q.AddAtom("S", {"Y", "Z"});
  EXPECT_EQ(q.AllVars(), 0b111u);
  EXPECT_EQ(q.atom(0).var_set(), 0b011u);
  EXPECT_EQ(q.atom(1).var_set(), 0b110u);
}

TEST(Query, RepeatedVariableInAtom) {
  Query q;
  q.AddAtom("R", {"X", "X"});
  EXPECT_EQ(q.num_vars(), 1);
  EXPECT_EQ(q.atom(0).vars, (std::vector<int>{0, 0}));
  EXPECT_EQ(q.atom(0).var_set(), 0b1u);
}

TEST(Query, ToStringRendersAtoms) {
  Query q;
  q.AddAtom("R", {"X", "Y"});
  q.AddAtom("S", {"Y", "Z"});
  EXPECT_EQ(q.ToString(), "R(X, Y), S(Y, Z)");
}

TEST(Parser, BodyOnly) {
  auto q = ParseQuery("R(X,Y), S(Y,Z)");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->num_atoms(), 2);
  EXPECT_EQ(q->num_vars(), 3);
}

TEST(Parser, WithHead) {
  auto q = ParseQuery("Q(X, Y, Z) :- R(X,Y), S(Y,Z).");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->name(), "Q");
  EXPECT_EQ(q->num_vars(), 3);
  // Head order fixes variable ids.
  EXPECT_EQ(q->VarIndex("X"), 0);
  EXPECT_EQ(q->VarIndex("Z"), 2);
}

TEST(Parser, HeadMustCoverBody) {
  std::string error;
  auto q = ParseQuery("Q(X) :- R(X,Y)", &error);
  EXPECT_FALSE(q.has_value());
  EXPECT_NE(error.find("head"), std::string::npos);
}

TEST(Parser, WhitespaceInsensitive) {
  auto q = ParseQuery("  R ( X , Y ) ,S(Y,Z)  .  ");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->num_atoms(), 2);
}

TEST(Parser, RejectsGarbage) {
  std::string error;
  EXPECT_FALSE(ParseQuery("R(X,Y) extra", &error).has_value());
  EXPECT_FALSE(ParseQuery("R(X,", &error).has_value());
  EXPECT_FALSE(ParseQuery("(X,Y)", &error).has_value());
  EXPECT_FALSE(ParseQuery("R()", &error).has_value());
  EXPECT_FALSE(ParseQuery("", &error).has_value());
}

TEST(Parser, SelfJoinSameRelationTwice) {
  auto q = ParseQuery("R(X,Y), R(Y,Z)");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->atom(0).relation, "R");
  EXPECT_EQ(q->atom(1).relation, "R");
  EXPECT_EQ(q->num_vars(), 3);
}

TEST(Parser, UnderscoreAndDigitsInIdentifiers) {
  auto q = ParseQuery("movie_info(M, IT1), info_type(IT1)");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->atom(0).relation, "movie_info");
  EXPECT_EQ(q->VarIndex("IT1"), 1);
}

Query Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.has_value()) << text;
  return *q;
}

TEST(Hypergraph, PathIsAlphaAcyclic) {
  Hypergraph h(Parse("R(X,Y), S(Y,Z), T(Z,W)"));
  EXPECT_TRUE(h.IsAlphaAcyclic());
  EXPECT_TRUE(h.IsBergeAcyclic());
  EXPECT_TRUE(h.IsConnected());
  EXPECT_EQ(h.BinaryGirth(), 0);
}

TEST(Hypergraph, TriangleIsCyclic) {
  Hypergraph h(Parse("R(X,Y), S(Y,Z), T(Z,X)"));
  EXPECT_FALSE(h.IsAlphaAcyclic());
  EXPECT_FALSE(h.IsBergeAcyclic());
  EXPECT_EQ(h.BinaryGirth(), 3);
}

TEST(Hypergraph, TriangleWithCoveringEdgeIsAlphaAcyclic) {
  // Example 6.7 / Appendix D: triangle plus covering atoms stays cyclic,
  // but a full ternary atom over {X,Y,Z} absorbs the triangle.
  Hypergraph h(Parse("U(X,Y,Z), R(X,Y), S(Y,Z), T(Z,X)"));
  EXPECT_TRUE(h.IsAlphaAcyclic());
  EXPECT_FALSE(h.IsBergeAcyclic());  // shared pairs create incidence cycles
}

TEST(Hypergraph, StarIsBergeAcyclic) {
  // A star hypergraph's incidence graph is a tree, hence Berge-acyclic.
  Hypergraph h(Parse("R(M,P), S(M,K), T(M,C)"));
  EXPECT_TRUE(h.IsAlphaAcyclic());
  EXPECT_TRUE(h.IsBergeAcyclic());
}

TEST(Hypergraph, DuplicateAtomsBreakBergeAcyclicity) {
  Hypergraph h(Parse("R(X,Y), S(X,Y)"));
  EXPECT_TRUE(h.IsAlphaAcyclic());
  EXPECT_FALSE(h.IsBergeAcyclic());
  EXPECT_EQ(h.BinaryGirth(), 2);  // parallel edges
}

TEST(Hypergraph, DisconnectedQuery) {
  Hypergraph h(Parse("R(X,Y), S(Z,W)"));
  EXPECT_FALSE(h.IsConnected());
  EXPECT_TRUE(h.IsAlphaAcyclic());
}

TEST(Hypergraph, CycleGirthMatchesLength) {
  for (int k = 3; k <= 6; ++k) {
    Query q;
    for (int i = 0; i < k; ++i) {
      q.AddAtom("R" + std::to_string(i),
                {"X" + std::to_string(i), "X" + std::to_string((i + 1) % k)});
    }
    Hypergraph h(q);
    EXPECT_EQ(h.BinaryGirth(), k) << "cycle length " << k;
    EXPECT_FALSE(h.IsAlphaAcyclic());
  }
}

TEST(Hypergraph, ChordShortensGirth) {
  // 5-cycle plus chord X0-X2 gives girth 3.
  Query q = Parse(
      "A(X0,X1), B(X1,X2), C(X2,X3), D(X3,X4), E(X4,X0), F(X0,X2)");
  Hypergraph h(q);
  EXPECT_EQ(h.BinaryGirth(), 3);
}

TEST(Hypergraph, LoomisWhitneyIsCyclic) {
  Hypergraph h(Parse("A(X,Y,Z), B(Y,Z,W), C(Z,W,X), D(W,X,Y)"));
  EXPECT_FALSE(h.IsAlphaAcyclic());
  EXPECT_EQ(h.BinaryGirth(), 0);  // no binary atoms
}

TEST(Hypergraph, JobStyleStarWithLookupsIsAcyclic) {
  Query q = Parse(
      "cast_info(M,P,R), movie_keyword(M,K), title(M,KT), name(P), "
      "keyword(K), role_type(R), kind_type(KT)");
  Hypergraph h(q);
  EXPECT_TRUE(h.IsAlphaAcyclic());
  EXPECT_TRUE(h.IsConnected());
}

}  // namespace
}  // namespace lpb
