// AdvisorService behavior: serving correctness (a submitted estimate equals
// the direct advisor call), admission-batch coalescing, the shutdown
// contract (queued requests drain to completion, later submits are rejected
// with quiet NaN), the advisor batch-path edge cases the service leans on,
// and a 16-client stress with concurrent invalidation churn — the serving
// half of what the CI TSan lane runs.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "estimator/advisor.h"
#include "query/parser.h"
#include "serve/advisor_service.h"
#include "util/random.h"
#include "util/zipf.h"

namespace lpb {
namespace {

// Queries sharing a compiled structure may be served from whichever
// alternate optimal basis a racing thread cached — mathematically equal,
// bitwise not guaranteed (see test_advisor_concurrent.cc).
bool Mismatch(double got, double want) {
  if (std::isinf(want)) return !std::isinf(got);
  return std::abs(got - want) > 1e-8 * std::max(1.0, std::abs(want));
}

Query Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.has_value());
  return *q;
}

Catalog ServeDb(uint64_t seed = 17) {
  Catalog db;
  Rng rng(seed);
  ZipfSampler zipf(31, 0.6);
  for (const char* name : {"R", "S", "T", "U", "V", "W"}) {
    Relation r(name, {"a", "b"});
    for (int i = 0; i < 200; ++i) {
      r.AddRow({zipf.Sample(rng), zipf.Sample(rng)});
    }
    r.Deduplicate();
    db.Add(std::move(r));
  }
  return db;
}

std::vector<Query> ServeQueries() {
  std::vector<Query> queries;
  for (const char* text :
       {"R(X,Y), S(Y,Z)", "R(X,Y), S(Y,Z), T(Z,X)", "T(X,Y), U(Y,Z)",
        "U(X,Y), V(Y,Z), W(Z,X)", "R(X,Y), V(Y,Z)", "S(X,Y), W(Y,X)",
        "R(X,Y), S(Y,Z), T(Z,W), U(W,V2)"}) {
    queries.push_back(Parse(text));
  }
  return queries;
}

TEST(AdvisorService, SubmittedEstimatesMatchDirectCalls) {
  Catalog db = ServeDb();
  const std::vector<Query> queries = ServeQueries();
  CardinalityAdvisor reference(db);
  std::vector<double> expected;
  for (const Query& q : queries) expected.push_back(reference.EstimateLog2(q));

  CardinalityAdvisor advisor(db);
  AdvisorServiceOptions options;
  options.workers = 2;
  AdvisorService service(advisor, options);
  // Mix of sync and future-based submission, repeated so both the cold
  // (compile) and warm (witness) paths flow through the service.
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_FALSE(Mismatch(service.EstimateLog2(queries[i]), expected[i]));
    }
    std::vector<std::future<double>> futures;
    for (const Query& q : queries) futures.push_back(service.SubmitLog2(q));
    for (size_t i = 0; i < futures.size(); ++i) {
      EXPECT_FALSE(Mismatch(futures[i].get(), expected[i]));
    }
  }
  service.Shutdown();
  const AdvisorServiceMetrics m = service.metrics();
  EXPECT_EQ(m.submitted, 6u * queries.size());
  EXPECT_EQ(m.completed, m.submitted);
  EXPECT_EQ(m.rejected, 0u);
  EXPECT_EQ(m.coalesced, m.completed);
  EXPECT_EQ(m.latency.count, m.completed);
  // Dedup bookkeeping: every batch evaluates at least one distinct query
  // and never more than its request count.
  EXPECT_GE(m.evaluated, m.batches);
  EXPECT_LE(m.evaluated, m.coalesced);
  EXPECT_GE(m.DedupFactor(), 1.0);
}

TEST(AdvisorService, IdenticalQueriesInOneBatchShareOneEvaluation) {
  Catalog db = ServeDb();
  const std::vector<Query> queries = ServeQueries();
  CardinalityAdvisor reference(db);
  const double expected = reference.EstimateLog2(queries[0]);

  CardinalityAdvisor advisor(db);
  advisor.EstimateLog2(queries[0]);  // pre-compile
  // One worker and a generous window so one pipelined burst of the SAME
  // query lands in one admission batch.
  AdvisorServiceOptions options;
  options.workers = 1;
  options.max_batch = 64;
  options.batch_window_us = 20000;
  AdvisorService service(advisor, options);

  constexpr int kBurst = 48;
  std::vector<std::future<double>> inflight;
  for (int k = 0; k < kBurst; ++k) {
    inflight.push_back(service.SubmitLog2(queries[0]));
  }
  for (std::future<double>& f : inflight) {
    EXPECT_FALSE(Mismatch(f.get(), expected));
  }
  service.Shutdown();

  const AdvisorServiceMetrics m = service.metrics();
  EXPECT_EQ(m.completed, static_cast<uint64_t>(kBurst));
  // All repeats of a query within one admission batch share one
  // evaluation, so distinct evaluations equal the batch count here.
  EXPECT_EQ(m.evaluated, m.batches);
  EXPECT_LT(m.evaluated, m.completed);
  EXPECT_GT(m.DedupFactor(), 1.0);
}

TEST(AdvisorService, PipelinedSubmitsCoalesceIntoBatches) {
  Catalog db = ServeDb();
  const std::vector<Query> queries = ServeQueries();
  CardinalityAdvisor advisor(db);
  for (const Query& q : queries) advisor.EstimateLog2(q);  // pre-compile

  // One worker and a generous microbatch window: everything submitted
  // while the worker is busy (or waiting out the window) must coalesce.
  AdvisorServiceOptions options;
  options.workers = 1;
  options.max_batch = 64;
  options.batch_window_us = 20000;
  AdvisorService service(advisor, options);

  constexpr int kRounds = 4;
  constexpr int kPipeline = 32;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::future<double>> inflight;
    for (int k = 0; k < kPipeline; ++k) {
      inflight.push_back(service.SubmitLog2(queries[k % queries.size()]));
    }
    for (std::future<double>& f : inflight) EXPECT_TRUE(std::isfinite(f.get()));
  }
  service.Shutdown();

  const AdvisorServiceMetrics m = service.metrics();
  EXPECT_EQ(m.completed, static_cast<uint64_t>(kRounds * kPipeline));
  // Coalescing must actually engage: far fewer advisor calls than
  // requests, a >1 mean, and some batch beyond a singleton.
  EXPECT_LT(m.batches, m.completed);
  EXPECT_GT(m.MeanBatchSize(), 1.0);
  EXPECT_GT(m.max_coalesced, 1u);
  EXPECT_LE(m.max_coalesced, static_cast<uint64_t>(options.max_batch));
}

TEST(AdvisorService, ShutdownDrainsQueuedRequests) {
  Catalog db = ServeDb();
  const std::vector<Query> queries = ServeQueries();
  CardinalityAdvisor reference(db);
  std::vector<double> expected;
  for (const Query& q : queries) expected.push_back(reference.EstimateLog2(q));

  CardinalityAdvisor advisor(db);
  // A long window keeps the worker dwelling in PopBatch, so Shutdown runs
  // with requests genuinely in flight / queued.
  AdvisorServiceOptions options;
  options.workers = 1;
  options.batch_window_us = 50000;
  AdvisorService service(advisor, options);

  std::vector<std::future<double>> inflight;
  for (int round = 0; round < 8; ++round) {
    for (const Query& q : queries) inflight.push_back(service.SubmitLog2(q));
  }
  service.Shutdown();
  // Every accepted request must still resolve to the real estimate — the
  // close-then-drain contract — with no hang and no dropped future.
  for (size_t i = 0; i < inflight.size(); ++i) {
    EXPECT_FALSE(Mismatch(inflight[i].get(), expected[i % queries.size()]));
  }
  const AdvisorServiceMetrics m = service.metrics();
  EXPECT_EQ(m.completed + m.rejected, static_cast<uint64_t>(inflight.size()));

  // Post-shutdown submissions complete immediately with quiet NaN.
  std::future<double> late = service.SubmitLog2(queries[0]);
  EXPECT_TRUE(std::isnan(late.get()));
  EXPECT_TRUE(std::isnan(service.EstimateLog2(queries[0])));
  EXPECT_GE(service.metrics().rejected, 2u);

  // Shutdown is idempotent (the destructor will run it again too).
  service.Shutdown();
}

TEST(AdvisorService, DestructorWithInFlightRequestsCompletesFutures) {
  Catalog db = ServeDb();
  const std::vector<Query> queries = ServeQueries();
  CardinalityAdvisor advisor(db);
  std::vector<std::future<double>> inflight;
  {
    AdvisorServiceOptions options;
    options.workers = 1;
    options.batch_window_us = 50000;
    AdvisorService service(advisor, options);
    for (const Query& q : queries) inflight.push_back(service.SubmitLog2(q));
  }
  // The destructor drained the queue; every future is resolved and real.
  for (std::future<double>& f : inflight) EXPECT_TRUE(std::isfinite(f.get()));
}

TEST(AdvisorBatchEdgeCases, EmptyQueryVectorYieldsEmptyResult) {
  Catalog db = ServeDb();
  CardinalityAdvisor advisor(db);
  EXPECT_TRUE(advisor.EstimateLog2Batch(std::vector<Query>{}).empty());
  EXPECT_TRUE(advisor.EstimateBatch(std::vector<Query>{}).empty());
  EXPECT_TRUE(advisor.AssembleStatisticsBatch({}).empty());
  EXPECT_EQ(advisor.metrics().estimates, 0u);
}

TEST(AdvisorBatchEdgeCases, EmptyLogBBatchYieldsEmptyResult) {
  Catalog db = ServeDb();
  CardinalityAdvisor advisor(db);
  const Query q = Parse("R(X,Y), S(Y,Z)");
  EXPECT_TRUE(advisor.EstimateLog2Batch(q, {}).empty());
}

TEST(AdvisorBatchEdgeCases, ZeroAtomQueriesServeTrivialBound) {
  Catalog db = ServeDb();
  CardinalityAdvisor advisor(db);
  const Query empty;  // 0 atoms: |Q(D)| = 1, log2 = 0
  EXPECT_DOUBLE_EQ(advisor.EstimateLog2(empty), 0.0);
  // Mixed into a multi-query batch, and assembled batch-wise.
  const std::vector<Query> mixed = {Parse("R(X,Y), S(Y,Z)"), empty};
  const std::vector<double> got = advisor.EstimateLog2Batch(mixed);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_DOUBLE_EQ(got[1], 0.0);
  EXPECT_DOUBLE_EQ(got[0], advisor.EstimateLog2(mixed[0]));
  const auto stats = advisor.AssembleStatisticsBatch(mixed);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_FALSE(stats[0].empty());
  EXPECT_TRUE(stats[1].empty());
}

TEST(AdvisorBatchEdgeCases, MisSizedWhatIfVectorsYieldInfinity) {
  Catalog db = ServeDb();
  CardinalityAdvisor advisor(db);
  const Query q = Parse("R(X,Y), S(Y,Z)");
  const auto stats = advisor.Explain(q).stats;
  const double expected = advisor.EstimateLog2(q);
  std::vector<std::vector<double>> batch;
  batch.push_back(ValuesOf(stats));                      // well-sized
  batch.push_back({});                                   // too short
  batch.push_back(std::vector<double>(stats.size() + 3,  // too long
                                      1.0));
  const std::vector<double> got = advisor.EstimateLog2Batch(q, batch);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_FALSE(Mismatch(got[0], expected));
  EXPECT_TRUE(std::isinf(got[1]));
  EXPECT_TRUE(std::isinf(got[2]));
}

TEST(AdvisorService, SixteenClientStressWithInvalidationChurn) {
  Catalog db = ServeDb(23);
  const std::vector<Query> queries = ServeQueries();
  CardinalityAdvisor reference(db);
  std::vector<double> expected;
  for (const Query& q : queries) expected.push_back(reference.EstimateLog2(q));

  // Eviction-prone statistics store + invalidation churn: recomputation
  // races the ticker while 16 clients pipeline submissions.
  AdvisorOptions aopt;
  aopt.norm_cache.shards = 4;
  aopt.norm_cache.byte_budget = 64 << 10;
  CardinalityAdvisor advisor(db, aopt);
  AdvisorServiceOptions sopt;
  sopt.workers = 2;
  sopt.max_batch = 32;
  sopt.batch_window_us = 200;
  AdvisorService service(advisor, sopt);

  constexpr int kClients = 16;
  constexpr int kRounds = 8;
  constexpr int kPipeline = 8;
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients + 1);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(500 + c);
      std::vector<std::future<double>> inflight;
      std::vector<size_t> picked;
      for (int round = 0; round < kRounds; ++round) {
        inflight.clear();
        picked.clear();
        for (int k = 0; k < kPipeline; ++k) {
          const size_t i = rng.Uniform(queries.size());
          picked.push_back(i);
          inflight.push_back(service.SubmitLog2(queries[i]));
        }
        for (int k = 0; k < kPipeline; ++k) {
          if (Mismatch(inflight[k].get(), expected[picked[k]])) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  std::atomic<bool> stop{false};
  threads.emplace_back([&] {
    Rng rng(77);
    const char* names[] = {"R", "S", "T", "U", "V", "W"};
    while (!stop.load(std::memory_order_relaxed)) {
      service.Invalidate(names[rng.Uniform(6)]);
      std::this_thread::yield();
    }
  });
  for (int c = 0; c < kClients; ++c) threads[c].join();
  stop.store(true);
  threads.back().join();
  service.Shutdown();

  EXPECT_EQ(mismatches.load(), 0u);
  const AdvisorServiceMetrics m = service.metrics();
  const uint64_t want = uint64_t{kClients} * kRounds * kPipeline;
  EXPECT_EQ(m.submitted, want);
  EXPECT_EQ(m.completed, want);
  EXPECT_EQ(m.rejected, 0u);
  EXPECT_EQ(m.coalesced, m.completed);
  EXPECT_EQ(m.latency.count, m.completed);
  EXPECT_LE(m.max_coalesced, static_cast<uint64_t>(sopt.max_batch));
  // Worker-side dedup: the advisor evaluates one distinct query per
  // repeat group, never more than the request count, and its own books
  // reconcile against exactly that evaluated count.
  EXPECT_GE(m.evaluated, m.batches);
  EXPECT_LE(m.evaluated, want);
  const AdvisorMetrics am = advisor.metrics();
  EXPECT_EQ(am.estimates, m.evaluated);
  EXPECT_EQ(am.witness_hits + am.warm_resolves + am.cold_solves, m.evaluated);
  EXPECT_EQ(am.norm_hits + am.norm_misses > 0, true);
}

}  // namespace
}  // namespace lpb
