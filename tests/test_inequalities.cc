// Verifies, one by one, that every numbered information inequality the
// paper uses is (or is not) a valid Shannon inequality, using the
// IsValidShannon decision procedure. This pins the theory layer the bound
// engine rests on directly to the text of the paper.
#include <gtest/gtest.h>

#include <vector>

#include "entropy/shannon.h"
#include "util/bits.h"

namespace lpb {
namespace {

// Helper: accumulate c * h(S) terms.
class FormBuilder {
 public:
  FormBuilder& Add(VarSet s, double c) {
    form_.push_back({s, c});
    return *this;
  }
  // c * h(V | U) = c h(U∪V) - c h(U).
  FormBuilder& AddCond(VarSet v, VarSet u, double c) {
    form_.push_back({u | v, c});
    if (u != 0) form_.push_back({u, -c});
    return *this;
  }
  LinearForm Build() const { return form_; }

 private:
  LinearForm form_;
};

constexpr VarSet X = 1, Y = 2, Z = 4, W = 8;

TEST(PaperInequalities, Eq10TriangleL2) {
  // (h(X)+2h(Y|X)) + (h(Y)+2h(Z|Y)) + (h(Z)+2h(X|Z)) >= 3h(XYZ).
  LinearForm f = FormBuilder()
                     .Add(X, 1).AddCond(Y, X, 2)
                     .Add(Y, 1).AddCond(Z, Y, 2)
                     .Add(Z, 1).AddCond(X, Z, 2)
                     .Add(X | Y | Z, -3)
                     .Build();
  EXPECT_TRUE(IsValidShannon(3, f));
}

TEST(PaperInequalities, Eq11TriangleL3L1) {
  // (h(X)+3h(Y|X)) + (h(Z)+3h(Y|Z)) + 5h(XZ) >= 6h(XYZ).
  LinearForm f = FormBuilder()
                     .Add(X, 1).AddCond(Y, X, 3)
                     .Add(Z, 1).AddCond(Y, Z, 3)
                     .Add(X | Z, 5)
                     .Add(X | Y | Z, -6)
                     .Build();
  EXPECT_TRUE(IsValidShannon(3, f));
}

TEST(PaperInequalities, Eq18CauchySchwarzForm) {
  // (1/2)(h(Y)+2h(X|Y)) + (1/2)(h(Y)+2h(Z|Y)) >= h(XYZ).
  LinearForm f = FormBuilder()
                     .Add(Y, 0.5).AddCond(X, Y, 1.0)
                     .Add(Y, 0.5).AddCond(Z, Y, 1.0)
                     .Add(X | Y | Z, -1)
                     .Build();
  EXPECT_TRUE(IsValidShannon(3, f));
}

TEST(PaperInequalities, Eq48HolderFamily) {
  // (1/p)h(Y)+h(X|Y) + (1/q)h(Y)+h(Z|Y) + (1-1/p-1/q)h(Y) >= h(XYZ)
  // for 1/p + 1/q <= 1.
  for (auto [p, q] : std::vector<std::pair<double, double>>{
           {2, 2}, {3, 1.5}, {4, 2}, {1.2, 6}}) {
    LinearForm f = FormBuilder()
                       .Add(Y, 1.0 / p).AddCond(X, Y, 1.0)
                       .Add(Y, 1.0 / q).AddCond(Z, Y, 1.0)
                       .Add(Y, 1.0 - 1.0 / p - 1.0 / q)
                       .Add(X | Y | Z, -1)
                       .Build();
    EXPECT_TRUE(IsValidShannon(3, f)) << "p=" << p << " q=" << q;
  }
}

TEST(PaperInequalities, Eq19Family) {
  // (1/p h(Y)+h(X|Y)) + (1 - q/(p(q-1))) h(YZ)
  //   + q/(p(q-1)) (1/q h(Y)+h(Z|Y)) >= h(XYZ), for 1/p+1/q <= 1.
  for (auto [p, q] : std::vector<std::pair<double, double>>{
           {2, 2}, {3, 2}, {4, 3}, {6, 1.25}}) {
    const double e = q / (p * (q - 1.0));
    LinearForm f = FormBuilder()
                       .Add(Y, 1.0 / p).AddCond(X, Y, 1.0)
                       .Add(Y | Z, 1.0 - e)
                       .Add(Y, e / q).AddCond(Z, Y, e)
                       .Add(X | Y | Z, -1)
                       .Build();
    EXPECT_TRUE(IsValidShannon(3, f)) << "p=" << p << " q=" << q;
  }
}

TEST(PaperInequalities, Eq20ChainFamily) {
  // Chain inequality (20) for n = 4 variables, p in {2, 3, 4}:
  // (p-2)h(X1X2) + (h(X2)+2h(X1|X2)) + (h(X2)+(p-1)h(X3|X2))
  //   + (h(X3)+p h(X4|X3)) >= p h(X1..X4).
  for (double p : {2.0, 3.0, 4.0}) {
    LinearForm f = FormBuilder()
                       .Add(X | Y, p - 2)
                       .Add(Y, 1).AddCond(X, Y, 2)
                       .Add(Y, 1).AddCond(Z, Y, p - 1)
                       .Add(Z, 1).AddCond(W, Z, p)
                       .Add(X | Y | Z | W, -p)
                       .Build();
    EXPECT_TRUE(IsValidShannon(4, f)) << "p=" << p;
  }
}

TEST(PaperInequalities, Eq51CycleFamily) {
  // Σ_i (h(X_i) + q h(X_{i+1}|X_i)) >= (q+1) h(X_0..X_{k-1}) needs
  // q <= k - 1 (the girth condition); valid at q = k-1, invalid at q = k.
  for (int k : {3, 4}) {
    for (int q = 1; q <= k; ++q) {
      FormBuilder b;
      for (int i = 0; i < k; ++i) {
        b.Add(VarBit(i), 1)
            .AddCond(VarBit((i + 1) % k), VarBit(i), q);
      }
      b.Add(FullSet(k), -(q + 1.0));
      const bool valid = IsValidShannon(k, b.Build());
      EXPECT_EQ(valid, q <= k - 1) << "k=" << k << " q=" << q;
    }
  }
}

TEST(PaperInequalities, Eq41Example67) {
  // h(X)+h(Y)+h(Z) + (h(X)+4h(Y|X)) + (h(Y)+4h(Z|Y)) + (h(Z)+4h(X|Z))
  //   >= 6 h(XYZ).
  LinearForm f = FormBuilder()
                     .Add(X, 1).Add(Y, 1).Add(Z, 1)
                     .Add(X, 1).AddCond(Y, X, 4)
                     .Add(Y, 1).AddCond(Z, Y, 4)
                     .Add(Z, 1).AddCond(X, Z, 4)
                     .Add(X | Y | Z, -6)
                     .Build();
  EXPECT_TRUE(IsValidShannon(3, f));
}

TEST(PaperInequalities, LoomisWhitneyC6) {
  // 4h(XYZW) <= (h(X)+2h(YZ|X)) + h(YZW) + (h(Z)+2h(WX|Z)) + h(WXY).
  LinearForm f = FormBuilder()
                     .Add(X, 1).AddCond(Y | Z, X, 2)
                     .Add(Y | Z | W, 1)
                     .Add(Z, 1).AddCond(W | X, Z, 2)
                     .Add(W | X | Y, 1)
                     .Add(X | Y | Z | W, -4)
                     .Build();
  EXPECT_TRUE(IsValidShannon(4, f));
}

TEST(PaperInequalities, TriangleL2WithWrongCoefficientFails) {
  // Dropping the h(X_i) terms from (10) breaks it: 2Σh(X_{i+1}|X_i) is not
  // >= 3h(XYZ) in general (take the diagonal distribution).
  LinearForm f = FormBuilder()
                     .AddCond(Y, X, 2)
                     .AddCond(Z, Y, 2)
                     .AddCond(X, Z, 2)
                     .Add(X | Y | Z, -3)
                     .Build();
  EXPECT_FALSE(IsValidShannon(3, f));
}

TEST(PaperInequalities, SubadditivityAndShearer) {
  // h(X)+h(Y)+h(Z) >= h(XYZ)  and the Shearer form
  // h(XY)+h(YZ)+h(ZX) >= 2h(XYZ).
  EXPECT_TRUE(IsValidShannon(
      3, FormBuilder().Add(X, 1).Add(Y, 1).Add(Z, 1).Add(X | Y | Z, -1)
             .Build()));
  EXPECT_TRUE(IsValidShannon(
      3, FormBuilder().Add(X | Y, 1).Add(Y | Z, 1).Add(Z | X, 1)
             .Add(X | Y | Z, -2).Build()));
  // ... but the AGM-style form with coefficient 2.5 fails.
  EXPECT_FALSE(IsValidShannon(
      3, FormBuilder().Add(X | Y, 1).Add(Y | Z, 1).Add(Z | X, 1)
             .Add(X | Y | Z, -2.5).Build()));
}

}  // namespace
}  // namespace lpb
