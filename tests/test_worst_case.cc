#include <gtest/gtest.h>

#include <cmath>

#include "bounds/normal_engine.h"
#include "bounds/worst_case.h"
#include "entropy/relation_entropy.h"
#include "entropy/set_function.h"
#include "exec/generic_join.h"
#include "query/parser.h"
#include "stats/collector.h"

namespace lpb {
namespace {

ConcreteStatistic Stat(VarSet u, VarSet v, double p, double log_b) {
  ConcreteStatistic s;
  s.sigma = {u, v};
  s.p = p;
  s.log_b = log_b;
  return s;
}

TEST(WorstCase, BasicNormalRelationShape) {
  // Example 6.6: T^{X,Z}_N over (X,Y,Z).
  Relation t = BasicNormalRelation({"X", "Y", "Z"}, 0b101, 4);
  EXPECT_EQ(t.NumRows(), 4u);
  EXPECT_EQ(t.At(2, 0), 2u);
  EXPECT_EQ(t.At(2, 1), 0u);
  EXPECT_EQ(t.At(2, 2), 2u);
}

TEST(WorstCase, BasicNormalRelationIsTotallyUniform) {
  // Proposition 6.5 (1).
  for (VarSet w = 1; w < 8; ++w) {
    EXPECT_TRUE(IsTotallyUniform(BasicNormalRelation({"A", "B", "C"}, w, 5)));
  }
}

TEST(WorstCase, BasicNormalRelationEntropyIsScaledStep) {
  // Proposition 6.5 (2): h_{T^W_N} = log2(N) · h_W.
  const VarSet w = 0b011;
  Relation t = BasicNormalRelation({"A", "B", "C"}, w, 8);
  SetFunction h = EntropyOfRelation(t);
  SetFunction expected = 3.0 * SetFunction::Step(3, w);
  EXPECT_LT(h.MaxDiff(expected), 1e-9);
}

TEST(WorstCase, DomainProductMultipliesSizesAndAddsEntropies) {
  // Eq. (38).
  Relation t1 = BasicNormalRelation({"A", "B"}, 0b01, 3);
  Relation t2 = BasicNormalRelation({"A", "B"}, 0b11, 4);
  Relation prod = DomainProduct(t1, t2);
  EXPECT_EQ(prod.NumRows(), 12u);
  SetFunction h = EntropyOfRelation(prod);
  SetFunction expected =
      EntropyOfRelation(t1) + EntropyOfRelation(t2);
  EXPECT_LT(h.MaxDiff(expected), 1e-9);
  EXPECT_TRUE(IsTotallyUniform(prod));
}

TEST(WorstCase, Example66NormalRelations) {
  // T1 = product of three singleton steps = full cube, |T1| = N^3;
  // T2 = diagonal, |T2| = N; T3 = T^{XY} ⊗ T^{YZ}, |T3| = N^2.
  const uint64_t n = 3;
  std::vector<std::string> attrs = {"X", "Y", "Z"};
  Relation t1 = DomainProduct(
      DomainProduct(BasicNormalRelation(attrs, 0b001, n),
                    BasicNormalRelation(attrs, 0b010, n)),
      BasicNormalRelation(attrs, 0b100, n));
  EXPECT_EQ(t1.NumRows(), n * n * n);
  Relation t2 = BasicNormalRelation(attrs, 0b111, n);
  EXPECT_EQ(t2.NumRows(), n);
  Relation t3 = DomainProduct(BasicNormalRelation(attrs, 0b011, n),
                              BasicNormalRelation(attrs, 0b110, n));
  EXPECT_EQ(t3.NumRows(), n * n);
}

TEST(WorstCase, Example67WorstCaseInstanceAchievesBound) {
  // Example 6.7: optimal solution is α* = b · h_{XYZ}; the normal database
  // is the diagonal and |Q(D)| = ⌊2^b⌋ >= B/2.
  Query q = *ParseQuery(
      "R1(X,Y), R2(Y,Z), R3(Z,X), S1(X), S2(Y), S3(Z)");
  const double b = 6.0;
  std::vector<ConcreteStatistic> stats = {
      Stat(VarBit(q.VarIndex("X")), VarBit(q.VarIndex("Y")), 4.0, b / 4),
      Stat(VarBit(q.VarIndex("Y")), VarBit(q.VarIndex("Z")), 4.0, b / 4),
      Stat(VarBit(q.VarIndex("Z")), VarBit(q.VarIndex("X")), 4.0, b / 4),
      Stat(0, VarBit(q.VarIndex("X")), 1.0, b),
      Stat(0, VarBit(q.VarIndex("Y")), 1.0, b),
      Stat(0, VarBit(q.VarIndex("Z")), 1.0, b),
  };
  auto bound = NormalPolymatroidBound(q.num_vars(), stats);
  ASSERT_TRUE(bound.base.ok());
  EXPECT_NEAR(bound.base.log2_bound, b, 1e-6);

  WorstCaseInstance wc = BuildWorstCaseDatabase(q, bound.alpha);
  const uint64_t count = CountJoin(q, wc.database);
  // Tightness within the rounding constant: |Q(D)| >= 2^{bound}/2^c, c = 1.
  EXPECT_GE(static_cast<double>(count),
            std::exp2(bound.base.log2_bound) / 2.0 - 1e-6);
  EXPECT_EQ(count, wc.witness.NumRows());
}

TEST(WorstCase, DatabaseSatisfiesTheStatistics) {
  // Corollary 6.3's feasibility half: the projections satisfy (Σ, B).
  Query q = *ParseQuery("R(X,Y), S(Y,Z)");
  std::vector<ConcreteStatistic> stats = {
      Stat(0, 0b011, 1.0, 6.0),
      Stat(0, 0b110, 1.0, 6.0),
      Stat(0b010, 0b001, 2.0, 4.0),
      Stat(0b010, 0b100, 2.0, 4.0),
  };
  auto bound = NormalPolymatroidBound(q.num_vars(), stats);
  ASSERT_TRUE(bound.base.ok());
  WorstCaseInstance wc = BuildWorstCaseDatabase(q, bound.alpha);
  for (const auto& s : stats) {
    // Identify the guarding atom by variable containment.
    for (int a = 0; a < q.num_atoms(); ++a) {
      if (!IsSubset(s.sigma.All(), q.atom(a).var_set())) continue;
      const double measured =
          MeasureLog2Norm(q, a, wc.database, s.sigma, s.p);
      EXPECT_LE(measured, s.log_b + 1e-6) << ToString(s, q);
    }
  }
  // And the join achieves the bound within the 2^c constant (c <= #steps).
  const double count = static_cast<double>(CountJoin(q, wc.database));
  EXPECT_GE(std::log2(count + 0.5), bound.base.log2_bound - 2.0);
}

TEST(WorstCase, SingleJoinSelfJoinFreeTightness) {
  // ℓ2-only single join: bound = b1 + b2; worst case database must reach it
  // up to rounding.
  Query q = *ParseQuery("R(X,Y), S(Y,Z)");
  std::vector<ConcreteStatistic> stats = {
      Stat(0b010, 0b001, 2.0, 3.0),
      Stat(0b010, 0b100, 2.0, 3.0),
  };
  auto bound = NormalPolymatroidBound(q.num_vars(), stats);
  ASSERT_TRUE(bound.base.ok());
  EXPECT_NEAR(bound.base.log2_bound, 6.0, 1e-6);
  WorstCaseInstance wc = BuildWorstCaseDatabase(q, bound.alpha);
  const double count = static_cast<double>(CountJoin(q, wc.database));
  EXPECT_GE(std::log2(count), bound.base.log2_bound - 2.0);
}

TEST(WorstCase, ChainQueryTightness) {
  // 4-variable chain with mixed ℓ1/ℓ2/ℓ∞ simple statistics: the worst-case
  // database must achieve the bound within the rounding constant 2^c,
  // c = #nonzero step coefficients (here <= 4 after basic-solution
  // sparsity).
  Query q = *ParseQuery("R(X1,X2), S(X2,X3), T(X3,X4)");
  std::vector<ConcreteStatistic> stats;
  auto var = [&](const char* name) { return VarBit(q.VarIndex(name)); };
  stats.push_back(Stat(0, var("X1") | var("X2"), 1.0, 8.0));
  stats.push_back(Stat(var("X2"), var("X3"), 2.0, 3.0));
  stats.push_back(Stat(var("X3"), var("X4"), kInfNorm, 2.0));
  auto bound = NormalPolymatroidBound(q.num_vars(), stats);
  ASSERT_TRUE(bound.base.ok());
  WorstCaseInstance wc = BuildWorstCaseDatabase(q, bound.alpha);
  // Feasibility of the witness database.
  for (const auto& s : stats) {
    for (int a = 0; a < q.num_atoms(); ++a) {
      if (!IsSubset(s.sigma.All(), q.atom(a).var_set())) continue;
      EXPECT_LE(MeasureLog2Norm(q, a, wc.database, s.sigma, s.p),
                s.log_b + 1e-6)
          << ToString(s, q);
    }
  }
  const double count = static_cast<double>(CountJoin(q, wc.database));
  ASSERT_GT(count, 0.0);
  EXPECT_GE(std::log2(count), bound.base.log2_bound - 4.0);
}

TEST(WorstCase, AmplifiedStatisticsShrinkRelativeRoundingLoss) {
  // Corollary 6.3 is "within a query-dependent constant": amplifying the
  // statistics (k·b) makes the achieved/bound ratio approach 1 in the log.
  Query q = *ParseQuery("R(X,Y), S(Y,Z)");
  double prev_relative = 1e9;
  for (double k : {1.0, 2.0, 4.0}) {
    std::vector<ConcreteStatistic> stats = {
        Stat(0b010, 0b001, 2.0, 1.3 * k),
        Stat(0b010, 0b100, 2.0, 1.1 * k),
    };
    auto bound = NormalPolymatroidBound(q.num_vars(), stats);
    ASSERT_TRUE(bound.base.ok());
    WorstCaseInstance wc = BuildWorstCaseDatabase(q, bound.alpha);
    const double count = static_cast<double>(CountJoin(q, wc.database));
    ASSERT_GT(count, 0.0);
    const double gap = bound.base.log2_bound - std::log2(count);
    EXPECT_GE(gap, -1e-9);  // the database never exceeds the bound
    // Each of the <= 2 step coefficients loses < 1 bit to ⌊2^α⌋ rounding.
    EXPECT_LE(gap, 2.0);
    const double relative = gap / bound.base.log2_bound;
    EXPECT_LE(relative, prev_relative + 1e-9) << "k=" << k;
    prev_relative = relative;
  }
  EXPECT_LT(prev_relative, 0.1);
}

TEST(WorstCase, ProductDatabaseIsAsymptoticallyWorse) {
  // Example 6.7's second half: any product database obeying the ℓ4
  // statistics has |Q| <= B^{3/5} ≪ B. Verify the normal instance beats the
  // best product instance (N_X = N_Y = N_Z = B^{1/5}).
  const double b = 10.0;  // B = 1024
  const double product_best = std::exp2(3.0 * b / 5.0);
  const double normal_db = std::exp2(b) / 2.0;
  EXPECT_GT(normal_db, product_best * 4.0);
}

}  // namespace
}  // namespace lpb
